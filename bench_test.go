// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6), plus ablation benches for the design choices called out in
// DESIGN.md. Each benchmark reports the experiment's headline rate as a
// custom metric so `go test -bench` output doubles as a results summary.
package vmcloud

import (
	"testing"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/experiments"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/pricing"
	"vmcloud/internal/scaling"
	"vmcloud/internal/schema"
	"vmcloud/internal/simtime"
	"vmcloud/internal/units"
	"vmcloud/internal/workload"
)

// BenchmarkTable2EC2Pricing regenerates Table 2: instance-hour pricing.
func BenchmarkTable2EC2Pricing(b *testing.B) {
	aws := pricing.AWS2012()
	small, err := aws.Compute.Instance("small")
	if err != nil {
		b.Fatal(err)
	}
	var last money.Money
	for i := 0; i < b.N; i++ {
		last = aws.Compute.HourCost(small, 50*time.Hour)
	}
	b.ReportMetric(last.Dollars(), "$small-50h")
}

// BenchmarkTable3Bandwidth regenerates Table 3: tiered egress pricing
// (Example 1's 10 GB result).
func BenchmarkTable3Bandwidth(b *testing.B) {
	aws := pricing.AWS2012()
	var last money.Money
	for i := 0; i < b.N; i++ {
		last = aws.Transfer.EgressCost(10 * units.GB)
	}
	b.ReportMetric(last.Dollars(), "$egress-10GB")
}

// BenchmarkTable4Storage regenerates Table 4: tiered storage pricing
// (Example 9's 550 GB-year).
func BenchmarkTable4Storage(b *testing.B) {
	aws := pricing.AWS2012()
	var last money.Money
	for i := 0; i < b.N; i++ {
		last = aws.Storage.CostFor(550*units.GB, 12)
	}
	b.ReportMetric(last.Dollars(), "$storage-550GBy")
}

// BenchmarkRunningExample regenerates the paper's worked Examples 1–9.
func BenchmarkRunningExample(b *testing.B) {
	var matches int
	for i := 0; i < b.N; i++ {
		checks, err := experiments.RunWorkedExamples()
		if err != nil {
			b.Fatal(err)
		}
		matches = 0
		for _, c := range checks {
			if c.Match {
				matches++
			}
		}
	}
	// 6 of 7 match; Example 3 reproduces the formula, not the paper's typo.
	b.ReportMetric(float64(matches), "examples-matched")
}

// BenchmarkIntroExample regenerates the introduction's $62-vs-$64.60
// motivating example.
func BenchmarkIntroExample(b *testing.B) {
	var ex experiments.IntroExample
	var err error
	for i := 0; i < b.N; i++ {
		ex, err = experiments.RunIntroExample()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ex.With.Total().Dollars(), "$with-views")
}

// BenchmarkFigure5aTable6 regenerates Figure 5(a) / Table 6: scenario MV1
// across the 3/5/10-query workloads. The custom metrics are the improved-
// performance rates (paper: 25% / 36% / 60%).
func BenchmarkFigure5aTable6(b *testing.B) {
	var rows []experiments.MV1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunMV1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].IPRate*100, "IP%-3q")
	b.ReportMetric(rows[1].IPRate*100, "IP%-5q")
	b.ReportMetric(rows[2].IPRate*100, "IP%-10q")
}

// BenchmarkFigure5bTable7 regenerates Figure 5(b) / Table 7: scenario MV2.
// The custom metrics are the improved-cost rates (paper: 75% / 72% / 75%).
func BenchmarkFigure5bTable7(b *testing.B) {
	var rows []experiments.MV2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunMV2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ICRate*100, "IC%-3q")
	b.ReportMetric(rows[1].ICRate*100, "IC%-5q")
	b.ReportMetric(rows[2].ICRate*100, "IC%-10q")
}

// BenchmarkFigure5cTable8 regenerates Figure 5(c) / Table 8 column α=0.3
// (paper rates: 55% / 50% / 68%).
func BenchmarkFigure5cTable8(b *testing.B) {
	benchMV3(b, 0.3)
}

// BenchmarkFigure5dTable8 regenerates Figure 5(d) / Table 8 column α=0.7
// (paper rates: 32% / 35% / 45%; the figure caption says α=0.65 — see
// BenchmarkFigure5dAlpha065).
func BenchmarkFigure5dTable8(b *testing.B) {
	benchMV3(b, 0.7)
}

// BenchmarkFigure5dAlpha065 runs the caption's α=0.65 variant.
func BenchmarkFigure5dAlpha065(b *testing.B) {
	benchMV3(b, 0.65)
}

func benchMV3(b *testing.B, alpha float64) {
	b.Helper()
	var rows []experiments.MV3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunMV3(alpha)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Rate*100, "rate%-3q")
	b.ReportMetric(rows[1].Rate*100, "rate%-5q")
	b.ReportMetric(rows[2].Rate*100, "rate%-10q")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationKnapsackVsExhaustive compares the knapsack DP against
// the exhaustive oracle on the 10-query MV1 instance: runtime difference
// plus the oracle-vs-DP time gap as a metric.
func BenchmarkAblationKnapsackVsExhaustive(b *testing.B) {
	s, err := experiments.NewSetup(10, experiments.OneShot())
	if err != nil {
		b.Fatal(err)
	}
	budget, err := s.MV1Budget()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("knapsack", func(b *testing.B) {
		var sel optimizer.Selection
		for i := 0; i < b.N; i++ {
			sel, err = s.Ev.SolveMV1(s.Cands, budget)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(sel.Time.Hours(), "h-selected")
	})
	b.Run("exhaustive", func(b *testing.B) {
		var sel optimizer.Selection
		for i := 0; i < b.N; i++ {
			sel, err = s.Ev.SolveExhaustive(s.Cands,
				func(t time.Duration, _ costmodel.Bill) float64 { return t.Hours() },
				func(_ time.Duration, bill costmodel.Bill) bool { return bill.Total() <= budget },
			)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(sel.Time.Hours(), "h-selected")
	})
	b.Run("greedy", func(b *testing.B) {
		var sel optimizer.Selection
		for i := 0; i < b.N; i++ {
			sel, err = s.Ev.SolveGreedyMV1(s.Cands, budget)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(sel.Time.Hours(), "h-selected")
	})
	b.Run("exact-greedy", func(b *testing.B) {
		var sel optimizer.Selection
		for i := 0; i < b.N; i++ {
			sel, err = s.Ev.SolveExactGreedyMV1(s.Cands, budget)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(sel.Time.Hours(), "h-selected")
	})
}

// BenchmarkAblationBillingGranularity prices the running example's 50.5 h
// workload under each billing granularity — the rounding design choice the
// paper's Example 2 hinges on.
func BenchmarkAblationBillingGranularity(b *testing.B) {
	for _, g := range []units.BillingGranularity{
		units.BillPerHour, units.BillPerMinute, units.BillPerSecond, units.BillExact,
	} {
		g := g
		b.Run(g.String(), func(b *testing.B) {
			prov := pricing.AWS2012()
			prov.Compute.Granularity = g
			small, err := prov.Compute.Instance("small")
			if err != nil {
				b.Fatal(err)
			}
			var last money.Money
			for i := 0; i < b.N; i++ {
				last = prov.Compute.HourCost(small, 50*time.Hour+30*time.Minute).MulInt(2)
			}
			b.ReportMetric(last.Dollars(), "$50.5h-2xsmall")
		})
	}
}

// BenchmarkAblationSlabVsGraduated prices Example 3's storage timeline
// under both tier semantics — the ambiguity Section 6 of DESIGN.md
// documents.
func BenchmarkAblationSlabVsGraduated(b *testing.B) {
	tl := simtime.Timeline{
		Initial: 512 * units.GB,
		Horizon: 12,
		Events:  []simtime.Event{{At: 7, Delta: 2048 * units.GB}},
	}
	for _, mode := range []pricing.TierMode{pricing.Slab, pricing.Graduated} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			prov := pricing.AWS2012()
			prov.Storage.Table.Mode = mode
			var last money.Money
			var err error
			for i := 0; i < b.N; i++ {
				last, err = costmodel.StorageCost(prov, tl)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Dollars(), "$storage")
		})
	}
}

// BenchmarkAblationScaleOutVsViews runs the introduction's tradeoff sweep:
// the cheapest way to bring the daily 10-query workload under 16 cluster
// hours, scale-out vs views. Metrics report the two answers' fleet sizes.
func BenchmarkAblationScaleOutVsViews(b *testing.B) {
	l, err := lattice.New(schema.Sales(), 200_000_000)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.Sales(l, 10)
	if err != nil {
		b.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	var without, with int
	for i := 0; i < b.N; i++ {
		opts, err := scaling.Sweep(scaling.Config{FleetSizes: []int{2, 5, 10, 20, 40}}, w)
		if err != nil {
			b.Fatal(err)
		}
		without, with = scaling.Crossover(opts, 16*time.Hour)
	}
	b.ReportMetric(float64(without), "instances-no-views")
	b.ReportMetric(float64(with), "instances-with-views")
}

// BenchmarkAblationCandidateBudget sweeps the candidate-set size handed to
// the knapsack, measuring solve time and achieved workload time.
func BenchmarkAblationCandidateBudget(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		k := k
		b.Run(string(rune('0'+k))+"cands", func(b *testing.B) {
			s, err := experiments.NewSetup(10, experiments.OneShot())
			if err != nil {
				b.Fatal(err)
			}
			cands := s.Cands
			if len(cands) > k {
				cands = cands[:k]
			}
			budget, err := s.MV1Budget()
			if err != nil {
				b.Fatal(err)
			}
			var sel optimizer.Selection
			for i := 0; i < b.N; i++ {
				sel, err = s.Ev.SolveMV1(cands, budget)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sel.Time.Hours(), "h-selected")
		})
	}
}

// BenchmarkAblationPipelinedMaterialization compares Formula 7's
// materialize-everything-from-base cost against the pipelined plan the
// execution engine actually uses (coarser views built from finer ones).
func BenchmarkAblationPipelinedMaterialization(b *testing.B) {
	s, err := experiments.NewSetup(10, experiments.OneShot())
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]lattice.Point, len(s.Cands))
	for i, c := range s.Cands {
		pts[i] = c.Point
	}
	var formula7, pipelined time.Duration
	for i := 0; i < b.N; i++ {
		formula7 = s.Est.TotalMaterializationTime(pts)
		pipelined = s.Est.TotalMaterializationTimePipelined(pts)
	}
	b.ReportMetric(formula7.Hours(), "h-formula7")
	b.ReportMetric(pipelined.Hours(), "h-pipelined")
}
