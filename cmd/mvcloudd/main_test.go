package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"vmcloud/internal/obs"
)

// TestServeAndShutdown boots the daemon on an ephemeral port, exercises
// the API over real TCP, then checks graceful shutdown.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr: "127.0.0.1:0", cacheSize: 32,
			requestTimeout: 30 * time.Second, shutdownGrace: 5 * time.Second,
			ready: ready,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
	post := func() (*http.Response, string) {
		resp, err := http.Post(base+"/v1/advise", "application/json",
			strings.NewReader(`{"scenario":"mv1","budget":25,"fact_rows":10000000,"queries":5}`))
		if err != nil {
			t.Fatalf("POST advise: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}
	if resp, body := post(); resp.StatusCode != 200 || !strings.Contains(body, `"recommendation"`) {
		t.Fatalf("advise: %d %s", resp.StatusCode, body)
	}
	if resp, _ := post(); resp.Header.Get("X-Cache") != "hit" {
		t.Error("repeated advise did not hit the cache")
	}
	if code, body := get("/v1/tariffs"); code != 200 || !strings.Contains(body, "aws-2012") {
		t.Fatalf("tariffs: %d %s", code, body)
	}
	if code, body := get("/v1/stats"); code != 200 || !strings.Contains(body, `"cache_hits":1`) {
		t.Fatalf("stats: %d %s", code, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
}

// TestDaemonTelemetry boots the daemon with the pprof listener and the
// slow-solve log enabled and exercises the whole observability surface
// over real TCP: /metrics validates against the exposition contract,
// /v1/version reports the build stamp, ?debug=phases returns the
// per-phase breakdown, the profiler answers on its own socket, and —
// critically — the API socket does NOT serve /debug/pprof/.
func TestDaemonTelemetry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	debugReady := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr: "127.0.0.1:0", debugAddr: "127.0.0.1:0", cacheSize: 32,
			requestTimeout: 30 * time.Second, shutdownGrace: 5 * time.Second,
			slowSolve: time.Nanosecond, // every cold solve logs
			ready:     ready, debugReady: debugReady,
		})
	}()
	var base, debugBase string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	select {
	case addr := <-debugReady:
		debugBase = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("debug listener never became ready")
	}

	body := `{"scenario":"mv1","budget":25,"fact_rows":10000000,"queries":5}`
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/advise?debug=phases", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST advise: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != want {
			t.Fatalf("request %d: status %d, X-Cache %q", i, resp.StatusCode, resp.Header.Get("X-Cache"))
		}
		if phases := resp.Header.Get("X-Solve-Phases"); (want == "miss") != (phases != "") {
			t.Errorf("request %d (%s): X-Solve-Phases = %q", i, want, phases)
		} else if want == "miss" && !strings.Contains(phases, "total=") {
			t.Errorf("phase header missing total: %q", phases)
		}
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	samples, err := obs.ValidateText(payload)
	if err != nil {
		t.Fatalf("invalid exposition over TCP: %v", err)
	}
	var sawHit bool
	for _, s := range samples {
		if s.Name == "mvcloud_http_requests_total" && s.Label("endpoint") == "advise" &&
			s.Label("outcome") == "hit" && s.Value == 1 {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("hit outcome not visible in scraped metrics")
	}

	resp, err = http.Get(base + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	vbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(vbody), `"go_version"`) {
		t.Errorf("version: %d %s", resp.StatusCode, vbody)
	}

	// The profiler lives on the debug socket only.
	resp, err = http.Get(debugBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("debug pprof index: %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("API socket serves /debug/pprof/ — profiler leaked onto the serving mux")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
}

// TestRunBadAddr checks the listen-failure path.
func TestRunBadAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, options{addr: "256.0.0.1:bogus", shutdownGrace: time.Second}); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestLogf covers the default no-op logger wiring.
func TestLogf(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var logged []string
	go func() {
		errc <- run(ctx, options{
			addr: "127.0.0.1:0", shutdownGrace: time.Second, ready: ready,
			logf: func(format string, args ...any) {
				logged = append(logged, fmt.Sprintf(format, args...))
			},
		})
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(logged) < 2 || !strings.Contains(logged[0], "listening") {
		t.Errorf("log lines: %q", logged)
	}
}

// TestServeClusterMode boots the single-binary cluster daemon
// (-cluster 3) on an ephemeral port and exercises the fault-tolerant
// frontend over real TCP: forwarded solves carry X-Worker, repeats hit
// the frontend cache, tenant-scoped routes work end to end, and
// /v1/stats exposes the routing plane.
func TestServeClusterMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr: "127.0.0.1:0", cacheSize: 32,
			requestTimeout: 30 * time.Second, shutdownGrace: 5 * time.Second,
			clusterWorkers: 3, clusterSeed: 42,
			ready: ready,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	body := `{"scenario":"mv1","budget":25,"fact_rows":10000000,"queries":5}`
	post := func(path string) *http.Response {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	resp := post("/v1/advise")
	if resp.StatusCode != 200 {
		t.Fatalf("advise: %d", resp.StatusCode)
	}
	if w := resp.Header.Get("X-Worker"); !strings.HasPrefix(w, "worker-") {
		t.Errorf("X-Worker = %q, want a ring worker on the forwarded miss", w)
	}
	if resp := post("/v1/advise"); resp.Header.Get("X-Cache") != "hit" {
		t.Error("repeat did not hit the frontend cache")
	}
	// The tenant namespace is disjoint: same body, fresh forward.
	if resp := post("/v1/t/acme/advise"); resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("tenant-scoped request: X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}

	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	for _, want := range []string{`"cluster"`, `"worker-0"`, `"worker-2"`, `"tenants"`, `"acme":1`} {
		if !strings.Contains(string(sbody), want) {
			t.Errorf("/v1/stats missing %s: %s", want, sbody)
		}
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
}
