package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeAndShutdown boots the daemon on an ephemeral port, exercises
// the API over real TCP, then checks graceful shutdown.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr: "127.0.0.1:0", cacheSize: 32,
			requestTimeout: 30 * time.Second, shutdownGrace: 5 * time.Second,
			ready: ready,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
	post := func() (*http.Response, string) {
		resp, err := http.Post(base+"/v1/advise", "application/json",
			strings.NewReader(`{"scenario":"mv1","budget":25,"fact_rows":10000000,"queries":5}`))
		if err != nil {
			t.Fatalf("POST advise: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}
	if resp, body := post(); resp.StatusCode != 200 || !strings.Contains(body, `"recommendation"`) {
		t.Fatalf("advise: %d %s", resp.StatusCode, body)
	}
	if resp, _ := post(); resp.Header.Get("X-Cache") != "hit" {
		t.Error("repeated advise did not hit the cache")
	}
	if code, body := get("/v1/tariffs"); code != 200 || !strings.Contains(body, "aws-2012") {
		t.Fatalf("tariffs: %d %s", code, body)
	}
	if code, body := get("/v1/stats"); code != 200 || !strings.Contains(body, `"cache_hits":1`) {
		t.Fatalf("stats: %d %s", code, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never shut down")
	}
}

// TestRunBadAddr checks the listen-failure path.
func TestRunBadAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, options{addr: "256.0.0.1:bogus", shutdownGrace: time.Second}); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestLogf covers the default no-op logger wiring.
func TestLogf(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var logged []string
	go func() {
		errc <- run(ctx, options{
			addr: "127.0.0.1:0", shutdownGrace: time.Second, ready: ready,
			logf: func(format string, args ...any) {
				logged = append(logged, fmt.Sprintf(format, args...))
			},
		})
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(logged) < 2 || !strings.Contains(logged[0], "listening") {
		t.Errorf("log lines: %q", logged)
	}
}
