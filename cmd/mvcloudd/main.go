// Command mvcloudd is the advisory daemon: a long-running HTTP server
// exposing the view-materialization advisor as a JSON API, with an LRU
// cache over solved recommendations (the advisor is deterministic, so
// identical configurations are served from memory).
//
// Usage:
//
//	mvcloudd [-addr :8080] [-cache-size 256] [-cache-max-mb 64]
//	         [-request-timeout 30s] [-shutdown-grace 10s]
//	         [-debug-addr localhost:6060] [-slow-solve 0]
//	         [-cluster 0] [-cluster-seed 0]
//
// Endpoints:
//
//	POST /v1/advise   solve mv1/mv2/mv3 or sweep the pareto frontier
//	POST /v1/compare  fan the problem out across provider × instance ×
//	                  fleet configurations and rank the outcomes
//	GET  /v1/tariffs  the built-in provider catalog
//	GET  /v1/stats    serving and cache counters
//	GET  /v1/version  build/VCS stamp of the running binary
//	GET  /metrics     Prometheus text-format telemetry
//	GET  /healthz     liveness probe
//
// Example:
//
//	curl -s localhost:8080/v1/advise -d '{"scenario":"mv1","budget":25}'
//	curl -s localhost:8080/v1/compare -d '{"budget":25,"limit":"4h"}'
//
// -cluster N serves the fault-tolerant cluster mode in a single
// binary: a stateless frontend on -addr routing solves to N in-process
// workers by rendezvous hashing, with health-checked failover, hedged
// heavy requests, and shed-or-stale degradation. -cluster-seed keys
// the ring (frontends sharing a worker tier must agree on it).
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/ — a separate socket, so production traffic on -addr can
// never reach the profiler. -slow-solve logs a structured line with the
// per-phase breakdown for every cold solve at least that slow.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -shutdown-grace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vmcloud/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cache    = flag.Int("cache-size", 256, "max memoized recommendations (negative disables)")
		cacheMB  = flag.Int64("cache-max-mb", 64, "max resident megabytes per cache (negative unbounds)")
		reqTO    = flag.Duration("request-timeout", 30*time.Second, "per-request solve timeout")
		graceTO  = flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown drain window")
		maxRows  = flag.Int64("max-fact-rows", 0, "largest accepted fact_rows (0 = server default)")
		maxSteps = flag.Int("max-pareto-steps", 0, "largest accepted pareto sweep (0 = server default)")
		maxGrid  = flag.Int("max-compare-configs", 0, "largest accepted compare grid (0 = server default)")
		cmpWork  = flag.Int("compare-workers", 0, "compare fan-out worker pool size (0 = GOMAXPROCS)")
		advWork  = flag.Int("advise-workers", 0, "concurrent advise solves admitted (0 = GOMAXPROCS)")
		hvyWork  = flag.Int("heavy-workers", 0, "concurrent compare/sweep solves admitted (0 = GOMAXPROCS)")
		advQueue = flag.Int("advise-queue", 0, "advise solves queued beyond the workers before shedding 429 (0 = server default, negative = no queue)")
		hvyQueue = flag.Int("heavy-queue", 0, "compare/sweep solves queued beyond the workers before shedding 429 (0 = server default, negative = no queue)")
		dbgAddr  = flag.String("debug-addr", "", "pprof listen address (empty disables; use localhost:6060)")
		slowTO   = flag.Duration("slow-solve", 0, "log cold solves at least this slow with their phase breakdown (0 disables)")
		cluster  = flag.Int("cluster", 0, "run as a cluster frontend with this many in-process workers (0 = single-node)")
		clSeed   = flag.Int64("cluster-seed", 0, "rendezvous ring seed (must agree across frontends sharing a worker tier)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, options{
		addr: *addr, cacheSize: *cache, cacheMaxBytes: *cacheMB << 20, requestTimeout: *reqTO,
		shutdownGrace: *graceTO, maxFactRows: *maxRows, maxParetoSteps: *maxSteps,
		maxCompareConfigs: *maxGrid, compareWorkers: *cmpWork,
		adviseWorkers: *advWork, heavyWorkers: *hvyWork,
		adviseQueue: *advQueue, heavyQueue: *hvyQueue,
		debugAddr: *dbgAddr, slowSolve: *slowTO,
		clusterWorkers: *cluster, clusterSeed: *clSeed,
		logf: log.Printf,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "mvcloudd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr              string
	cacheSize         int
	cacheMaxBytes     int64
	requestTimeout    time.Duration
	shutdownGrace     time.Duration
	maxFactRows       int64
	maxParetoSteps    int
	maxCompareConfigs int
	compareWorkers    int
	// Admission-control sizing: bounded solve-worker pools and queues
	// for the cheap (advise) and heavy (compare/sweep) endpoint
	// classes; zero values take the server defaults.
	adviseWorkers int
	heavyWorkers  int
	adviseQueue   int
	heavyQueue    int
	// debugAddr, when non-empty, starts a second listener serving
	// net/http/pprof — isolated from the API socket by construction.
	debugAddr string
	// slowSolve is the slow-solve log threshold (0 disables).
	slowSolve time.Duration
	// clusterWorkers, when positive, serves single-binary cluster mode:
	// a frontend routing to this many in-process workers over the
	// in-memory transport; clusterSeed keys the rendezvous ring.
	clusterWorkers int
	clusterSeed    int64
	// ready, if non-nil, receives the bound address once listening —
	// lets tests use ":0" and discover the port.
	ready chan<- string
	// debugReady, if non-nil, receives the bound debug address.
	debugReady chan<- string
	logf       func(format string, args ...any)
}

// run serves until ctx is cancelled, then drains gracefully.
func run(ctx context.Context, o options) error {
	if o.logf == nil {
		o.logf = func(string, ...any) {}
	}
	base := server.Options{
		CacheSize:          o.cacheSize,
		CacheMaxBytes:      o.cacheMaxBytes,
		RequestTimeout:     o.requestTimeout,
		MaxFactRows:        o.maxFactRows,
		MaxParetoSteps:     o.maxParetoSteps,
		MaxCompareConfigs:  o.maxCompareConfigs,
		CompareWorkers:     o.compareWorkers,
		AdviseWorkers:      o.adviseWorkers,
		HeavyWorkers:       o.heavyWorkers,
		AdviseQueue:        o.adviseQueue,
		HeavyQueue:         o.heavyQueue,
		SlowSolveThreshold: o.slowSolve,
	}
	var api http.Handler
	if o.clusterWorkers > 0 {
		lc := server.NewLocalCluster(server.LocalClusterOptions{
			Workers:  o.clusterWorkers,
			Frontend: base,
			Worker:   base,
			Cluster:  server.ClusterOptions{Seed: o.clusterSeed},
		})
		defer lc.Close()
		o.logf("mvcloudd cluster mode: frontend + %d in-process workers (ring seed %d)",
			o.clusterWorkers, o.clusterSeed)
		api = lc
	} else {
		api = server.New(base)
	}
	hs := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		// WriteTimeout backstops the handler's own solve timeout.
		WriteTimeout: o.requestTimeout + 10*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	o.logf("mvcloudd listening on %s (cache %d entries, request timeout %v)",
		ln.Addr(), o.cacheSize, o.requestTimeout)
	if o.ready != nil {
		o.ready <- ln.Addr().String()
	}

	var ds *http.Server
	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		ds = &http.Server{Handler: debugMux(), ReadHeaderTimeout: 5 * time.Second}
		o.logf("mvcloudd pprof on %s/debug/pprof/", dln.Addr())
		if o.debugReady != nil {
			o.debugReady <- dln.Addr().String()
		}
		go func() {
			if err := ds.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				o.logf("mvcloudd debug server: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	o.logf("mvcloudd draining (grace %v)", o.shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.shutdownGrace)
	defer cancel()
	if ds != nil {
		ds.Shutdown(shutdownCtx)
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// debugMux builds the pprof handler set explicitly rather than
// importing net/http/pprof for its DefaultServeMux side effect — the
// API mux must never inherit the profiler routes.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
