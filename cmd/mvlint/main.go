// Command mvlint machine-enforces the repo's load-bearing invariants:
// determinism of the solver packages, the no-retain buffer-lending
// contracts, the hotpath allocation discipline and exact money
// arithmetic.
//
// Usage:
//
//	go run ./cmd/mvlint ./...          lint packages (testdata skipped)
//	go run ./cmd/mvlint -list          describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// print as file:line:col: [analyzer] message. Intentional exceptions
// are annotated in source as //mvlint:allow <analyzer> -- <reason>;
// malformed directives are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"vmcloud/internal/analysis"
	"vmcloud/internal/analysis/mvlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mvlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and their contracts, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := mvlint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mvlint:", err)
		return 2
	}
	moduleDir, err := analysis.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "mvlint:", err)
		return 2
	}
	diags, err := analysis.Run(moduleDir, patterns, suite)
	if err != nil {
		fmt.Fprintln(stderr, "mvlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mvlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
