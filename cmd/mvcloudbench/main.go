// Command mvcloudbench is the fleet-scale load harness for the advisory
// daemon: it synthesizes deterministic multi-tenant advise/compare/sweep
// traffic, drives the real serving stack — in-process by default, or over
// TCP against a running mvcloudd — and reports per-endpoint latency
// percentiles, throughput and cache-hit allocations as a machine-readable
// LOAD_<date>.json snapshot.
//
// Usage:
//
//	mvcloudbench [-seed 1] [-tenants 4] [-schemas 2] [-requests 5000]
//	             [-concurrency 64] [-hit-ratio 0.9] [-mix 8:1:1]
//	             [-mode inprocess|tcp] [-addr http://localhost:8080]
//	             [-out LOAD_2026-08-08.json] [-date 2026-08-08]
//	             [-compare LOAD_baseline.json]
//	             [-overload] [-advise-p95 2s]
//	             [-cluster 0] [-cluster-kill -1]
//
// Modes:
//
//	inprocess  build the handler stack in this process (no network); the
//	           numbers isolate the serving layer and include the
//	           cache-hit allocs/request probe
//	tcp        POST over HTTP to -addr; full network stack, no alloc probe
//
// With -compare, the fresh run is diffed against the committed baseline
// under the SLO gate (p95 may not more than double; hit-path allocations
// may not grow past baseline×1.5+2) and the exit status is non-zero on
// regression — the latency-SLO sibling of scripts/bench.sh --compare.
//
// With -overload, the harness instead runs the overload scenario: an
// in-process server whose heavy class (compare/sweep) has one worker and
// no queue, plus injected per-solve latency, flooded with a sweep-heavy
// mix (2:1:8 unless -mix is given). The run then gates the overload
// contract — zero hard errors, the heavy flood visibly shed with 429s,
// the cheap advise class untouched by the shedding and its p95 under
// -advise-p95, and zero solve goroutines left after drain — and exits
// non-zero on any violation.
//
// With -cluster N, the harness runs the cluster chaos scenario: an
// in-process frontend + N-worker fleet (rendezvous sharding, health
// checks, failover) under load while -cluster-kill workers (default
// N-1 — all but one) are killed mid-run. The gate is the fault-
// tolerance contract: zero hard errors (every response a success,
// degraded, stale serve, or 429+Retry-After), full outcome accounting,
// and zero solve goroutines left anywhere in the topology after drain.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"vmcloud/internal/loadgen"
	"vmcloud/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mvcloudbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mvcloudbench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		seed        = fs.Int64("seed", 1, "traffic synthesis seed")
		tenants     = fs.Int("tenants", 4, "distinct tenant parameter families")
		schemas     = fs.Int("schemas", 2, "distinct schema variants per tenant")
		requests    = fs.Int("requests", 5000, "total request count")
		concurrency = fs.Int("concurrency", 64, "concurrent clients")
		hitRatio    = fs.Float64("hit-ratio", 0.9, "target cache-hit ratio in [0,1)")
		mixFlag     = fs.String("mix", "8:1:1", "advise:compare:sweep weights")
		mode        = fs.String("mode", "inprocess", "inprocess or tcp")
		addr        = fs.String("addr", "http://localhost:8080", "base URL for -mode tcp")
		outPath     = fs.String("out", "", "write LOAD json snapshot to this path")
		date        = fs.String("date", time.Now().UTC().Format("2006-01-02"), "date stamped into the snapshot")
		comparePath = fs.String("compare", "", "diff against this baseline LOAD json and gate")
		overload    = fs.Bool("overload", false, "run the overload scenario and gate the shedding contract")
		adviseP95   = fs.Duration("advise-p95", 2*time.Second, "advise p95 bound for the -overload gate")
		cluster     = fs.Int("cluster", 0, "run the cluster chaos scenario with this many in-process workers")
		clusterKill = fs.Int("cluster-kill", -1, "workers killed mid-run in -cluster mode (-1 = all but one)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *cluster > 0 {
		if *mode != "inprocess" {
			return fmt.Errorf("-cluster requires -mode inprocess (the topology is built in this process)")
		}
		if *overload || *comparePath != "" {
			return fmt.Errorf("-cluster is mutually exclusive with -overload and -compare")
		}
		if !set["requests"] {
			*requests = 600
		}
		if !set["concurrency"] {
			*concurrency = 16
		}
		if !set["hit-ratio"] {
			*hitRatio = 0.3
		}
	}

	if *overload {
		if *mode != "inprocess" {
			return fmt.Errorf("-overload requires -mode inprocess (it configures the server and checks solve-goroutine drain)")
		}
		if *comparePath != "" {
			return fmt.Errorf("-overload and -compare are mutually exclusive (overload snapshots are not SLO baselines)")
		}
		// The scenario wants a sweep flood hitting mostly-fresh bodies;
		// honor explicit flags, flip only the defaults.
		if !set["mix"] {
			*mixFlag = "2:1:8"
		}
		if !set["hit-ratio"] {
			*hitRatio = 0.3
		}
		if !set["requests"] {
			*requests = 600
		}
		if !set["concurrency"] {
			*concurrency = 16
		}
	}

	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	cfg := loadgen.Config{
		Seed:        *seed,
		Tenants:     *tenants,
		Schemas:     *schemas,
		Requests:    *requests,
		Concurrency: *concurrency,
		HitRatio:    *hitRatio,
		Mix:         mix,
	}

	var target loadgen.Target
	var srv *server.Server
	var lc *server.LocalCluster
	switch *mode {
	case "inprocess":
		if *cluster > 0 {
			lc = server.NewLocalCluster(server.LocalClusterOptions{
				Workers:  *cluster,
				Frontend: server.Options{RequestTimeout: time.Minute},
				Worker:   server.Options{RequestTimeout: time.Minute},
				Cluster: server.ClusterOptions{
					Seed:           *seed,
					HealthInterval: 20 * time.Millisecond,
				},
			})
			defer lc.Close()
			target = loadgen.NewHandlerTarget(lc)
			break
		}
		opts := server.Options{}
		if *overload {
			// One heavy worker, no heavy queue, and 50ms of injected
			// latency per solve: the sweep flood piles onto a class that
			// can't absorb it, so admission control must shed. Advise
			// keeps its own pool and must not feel any of it.
			opts = server.Options{
				RequestTimeout: time.Minute,
				HeavyWorkers:   1,
				HeavyQueue:     -1,
				Chaos: &server.ChaosConfig{
					Seed:        *seed,
					LatencyProb: 1,
					Latency:     50 * time.Millisecond,
				},
			}
		}
		srv = server.New(opts)
		target = loadgen.NewHandlerTarget(srv)
	case "tcp":
		target = &loadgen.HTTPTarget{
			BaseURL: *addr,
			Client: &http.Client{
				Timeout: 2 * time.Minute,
				Transport: &http.Transport{
					MaxIdleConns:        *concurrency,
					MaxIdleConnsPerHost: *concurrency,
				},
			},
		}
	default:
		return fmt.Errorf("unknown -mode %q (want inprocess or tcp)", *mode)
	}

	if lc != nil {
		// Kill the victims once the run is underway: in-flight forwards
		// observe connection resets and fail over; later requests find
		// the corpses ejected by the health loop.
		kill := *clusterKill
		if kill < 0 {
			kill = *cluster - 1
		}
		if kill >= *cluster {
			kill = *cluster - 1
		}
		victims := lc.WorkerIDs()[:kill]
		go func() {
			time.Sleep(150 * time.Millisecond)
			for _, id := range victims {
				lc.KillWorker(id)
			}
		}()
		fmt.Fprintf(out, "cluster scenario: %d workers, killing %d mid-run\n", *cluster, kill)
	}

	res, err := loadgen.Run(cfg, target)
	if err != nil {
		return err
	}
	rep := res.Snapshot(*date)
	fmt.Fprint(out, rep.Render())

	if *outPath != "" {
		data, err := rep.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}

	if *overload {
		return gateOverload(out, res, srv, *adviseP95)
	}
	if lc != nil {
		return gateCluster(out, res, lc)
	}

	if *comparePath != "" {
		data, err := os.ReadFile(*comparePath)
		if err != nil {
			return err
		}
		baseline, err := loadgen.ParseReport(data)
		if err != nil {
			return err
		}
		rows, regressions := loadgen.Compare(baseline, rep, loadgen.Gate{})
		fmt.Fprintf(out, "\nvs %s (%s):\n", *comparePath, baseline.Date)
		for _, row := range rows {
			fmt.Fprintln(out, " ", row)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(out, "REGRESSION:", r)
			}
			return fmt.Errorf("%d SLO regression(s)", len(regressions))
		}
		fmt.Fprintln(out, "SLO gate: ok")
	}
	return nil
}

// gateOverload checks the overload contract against a finished run and
// the in-process server it ran on, printing the verdicts and returning
// an error (non-zero exit) when any gate fails.
func gateOverload(out io.Writer, res *loadgen.Result, srv *server.Server, adviseBound time.Duration) error {
	var heavyShed, degraded, stale int
	for _, ep := range []string{"compare", "sweep"} {
		heavyShed += res.Endpoints[ep].Shed
	}
	for _, st := range res.Endpoints {
		degraded += st.Degraded
		stale += st.Stale
	}
	adv := res.Endpoints["advise"]

	var fails []string
	check := func(ok bool, format string, a ...any) {
		verdict := "ok  "
		if !ok {
			verdict = "FAIL"
			fails = append(fails, fmt.Sprintf(format, a...))
		}
		fmt.Fprintf(out, "  %s %s\n", verdict, fmt.Sprintf(format, a...))
	}

	fmt.Fprintf(out, "\noverload gates (shed=%d degraded=%d stale=%d):\n", heavyShed, degraded, stale)
	check(res.Errors == 0, "hard errors: %d (want 0; sheds are 429s, not errors)", res.Errors)
	check(heavyShed > 0, "heavy shed: %d (want > 0; the flood must visibly shed)", heavyShed)
	check(adv.Requests > 0, "advise requests: %d (want > 0; mix must exercise the cheap class)", adv.Requests)
	check(adv.Shed == 0, "advise shed: %d (want 0; cheap class must not feel heavy overload)", adv.Shed)
	check(adv.Latency.P95 <= adviseBound, "advise p95: %v (bound %v)", adv.Latency.P95, adviseBound)

	drained := true
	deadline := time.Now().Add(10 * time.Second)
	for srv.InflightSolves() != 0 {
		if time.Now().After(deadline) {
			drained = false
			break
		}
		time.Sleep(time.Millisecond)
	}
	check(drained, "solve goroutines after drain: %d (want 0 within 10s)", srv.InflightSolves())

	if len(fails) > 0 {
		return fmt.Errorf("overload gate: %d violation(s)", len(fails))
	}
	fmt.Fprintln(out, "overload gate: ok")
	return nil
}

// gateCluster checks the fault-tolerance contract after a cluster
// chaos run: no response was anything but a success, degraded answer,
// stale serve, or 429; and the whole topology drained.
func gateCluster(out io.Writer, res *loadgen.Result, lc *server.LocalCluster) error {
	var served, shed, degraded, stale int
	for _, st := range res.Endpoints {
		served += st.Hits + st.Misses + st.Coalesced
		shed += st.Shed
		degraded += st.Degraded
		stale += st.Stale
	}

	var fails []string
	check := func(ok bool, format string, a ...any) {
		verdict := "ok  "
		if !ok {
			verdict = "FAIL"
			fails = append(fails, fmt.Sprintf(format, a...))
		}
		fmt.Fprintf(out, "  %s %s\n", verdict, fmt.Sprintf(format, a...))
	}

	fmt.Fprintf(out, "\ncluster gates (served=%d shed=%d degraded=%d stale=%d):\n", served, shed, degraded, stale)
	check(res.Errors == 0, "hard errors: %d (want 0; every response success/degraded/stale/429)", res.Errors)
	check(served > 0, "served: %d (want > 0; the survivors must carry the ring)", served)
	check(served+shed == res.Total, "accounting: served %d + shed %d vs total %d", served, shed, res.Total)

	drained := true
	deadline := time.Now().Add(10 * time.Second)
	for lc.InflightSolves() != 0 {
		if time.Now().After(deadline) {
			drained = false
			break
		}
		time.Sleep(time.Millisecond)
	}
	check(drained, "solve goroutines after drain: %d (want 0 within 10s)", lc.InflightSolves())

	if len(fails) > 0 {
		return fmt.Errorf("cluster gate: %d violation(s)", len(fails))
	}
	fmt.Fprintln(out, "cluster gate: ok")
	return nil
}

// parseMix reads "a:c:s" integer weights.
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	if _, err := fmt.Sscanf(s, "%d:%d:%d", &m.Advise, &m.Compare, &m.Sweep); err != nil {
		return m, fmt.Errorf("bad -mix %q (want a:c:s, e.g. 8:1:1): %v", s, err)
	}
	if m.Advise < 0 || m.Compare < 0 || m.Sweep < 0 || m.Advise+m.Compare+m.Sweep == 0 {
		return m, fmt.Errorf("bad -mix %q: weights must be non-negative and not all zero", s)
	}
	return m, nil
}
