package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmcloud/internal/loadgen"
	"vmcloud/internal/server"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("8:1:1")
	if err != nil || m.Advise != 8 || m.Compare != 1 || m.Sweep != 1 {
		t.Fatalf("parseMix(8:1:1) = %+v, %v", m, err)
	}
	for _, bad := range []string{"", "8:1", "a:b:c", "0:0:0", "-1:1:1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestRunInProcess runs a small in-process load, writes the snapshot,
// and immediately gates the same run against it — which must pass.
func TestRunInProcess(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "LOAD_test.json")

	var sb strings.Builder
	err := run([]string{
		"-seed", "11", "-requests", "300", "-concurrency", "8",
		"-date", "2026-08-08", "-out", outPath,
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "endpoint") {
		t.Errorf("no table in output:\n%s", sb.String())
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Date != "2026-08-08" || rep.Requests != 300 {
		t.Errorf("snapshot header: %+v", rep)
	}
	for _, ep := range []string{"advise", "compare", "sweep"} {
		e, ok := rep.Endpoints[ep]
		if !ok {
			t.Fatalf("snapshot missing %s", ep)
		}
		if e.HitAllocsPerRequest < 0 || e.HitAllocsPerRequest > 2 {
			t.Errorf("%s hit allocs %.1f outside [0,2]", ep, e.HitAllocsPerRequest)
		}
	}

	// Same seed and config against the just-written baseline must gate ok.
	sb.Reset()
	err = run([]string{
		"-seed", "11", "-requests", "300", "-concurrency", "8",
		"-date", "2026-08-08", "-compare", outPath,
	}, &sb)
	if err != nil {
		t.Fatalf("self-compare gated: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "SLO gate: ok") {
		t.Errorf("no gate verdict:\n%s", sb.String())
	}
}

// TestCompareGateFails fabricates a regressed run and checks the gate
// exits with an error.
func TestCompareGateFails(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// Baseline with impossible numbers: any real run regresses vs it.
	if err := os.WriteFile(base, []byte(`{
  "date": "2026-01-01",
  "endpoints": {
    "advise": {"p95_ms": 0.000001, "hit_allocs_per_request": 0},
    "compare": {"p95_ms": 0.000001, "hit_allocs_per_request": 0},
    "sweep": {"p95_ms": 0.000001, "hit_allocs_per_request": 0}
  }
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{
		"-seed", "11", "-requests", "200", "-concurrency", "4", "-compare", base,
	}, &sb)
	if err == nil {
		t.Fatalf("gate passed against impossible baseline:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("error %v not a regression verdict", err)
	}
}

// TestRunTCP drives the tcp mode against an httptest server.
func TestRunTCP(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()

	var sb strings.Builder
	err := run([]string{
		"-mode", "tcp", "-addr", ts.URL,
		"-seed", "5", "-requests", "150", "-concurrency", "8",
	}, &sb)
	if err != nil {
		t.Fatalf("tcp run: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "0 errors") {
		t.Errorf("tcp run reported errors:\n%s", sb.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "warp"}, &sb); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-mix", "1:2"}, &sb); err == nil {
		t.Error("bad mix accepted")
	}
	if err := run([]string{"-overload", "-mode", "tcp"}, &sb); err == nil {
		t.Error("-overload with -mode tcp accepted")
	}
	if err := run([]string{"-overload", "-compare", "x.json"}, &sb); err == nil {
		t.Error("-overload with -compare accepted")
	}
}

// TestRunOverload runs the overload scenario end to end through the CLI
// and checks every gate comes back ok: the sweep flood sheds, advise
// stays clean, and the run drains. This is the same run CI's overload
// smoke step performs via scripts/load.sh --overload.
func TestRunOverload(t *testing.T) {
	var sb strings.Builder
	// The advise bound is generous here because this test also runs
	// under the race detector, where cold solves are several times
	// slower; the CI smoke via scripts/load.sh uses the tight default.
	err := run([]string{"-overload", "-seed", "11", "-requests", "300", "-advise-p95", "10s"}, &sb)
	if err != nil {
		t.Fatalf("overload run gated: %v\n%s", err, sb.String())
	}
	outStr := sb.String()
	if !strings.Contains(outStr, "overload gate: ok") {
		t.Errorf("no gate verdict:\n%s", outStr)
	}
	if strings.Contains(outStr, "FAIL") {
		t.Errorf("gate verdicts contain FAIL:\n%s", outStr)
	}
	if !strings.Contains(outStr, "heavy shed:") {
		t.Errorf("no shed verdict line:\n%s", outStr)
	}
}
