// Command experiments regenerates every table and figure of the paper's
// evaluation section: Figure 5(a)–(d), Tables 6–8, the nine worked
// examples of Sections 3–4 and the introduction's motivating example.
//
// Usage:
//
//	experiments [-csv DIR] [-alpha3 0.3] [-alpha7 0.7] [-large] [-large-seed 1]
//
// With -csv, each table is additionally written as a CSV file into DIR.
// With -large, it additionally runs the beyond-the-paper stress
// experiment: a generated 4-dimension × 4-level (256-cuboid) lattice
// solved by both the linearized knapsack and the exact-evaluator
// metaheuristic search under identical constraints.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vmcloud/internal/experiments"
	"vmcloud/internal/report"
)

func main() {
	csvDir := flag.String("csv", "", "directory to write CSV versions of the tables")
	alphaC := flag.Float64("alpha3", 0.3, "tradeoff weight for Figure 5(c)")
	alphaD := flag.Float64("alpha7", 0.7, "tradeoff weight for Figure 5(d); the paper's caption also mentions 0.65")
	large := flag.Bool("large", false, "also run the 256-cuboid knapsack-vs-search stress experiment")
	largeSeed := flag.Int64("large-seed", 1, "workload and search seed for -large")
	flag.Parse()

	if err := run(*csvDir, *alphaC, *alphaD); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *large {
		if err := runLarge(*largeSeed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// runLarge prints the large-lattice solver comparison (beyond the
// paper's evaluation: the setting the internal/search engine exists for).
func runLarge(seed int64) error {
	fmt.Println("== Large lattice: linearized knapsack vs metaheuristic search ==")
	res, err := experiments.RunLargeLattice(experiments.LargeLatticeConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println(experiments.LargeLatticeTable(res))
	fmt.Printf("mv3 objective (α=%.2g): knapsack %.4f, search %.4f\n",
		res.Alpha, res.MV3Objective(res.KnapsackMV3), res.MV3Objective(res.SearchMV3))
	return nil
}

func run(csvDir string, alphaC, alphaD float64) error {
	fmt.Println("== Worked examples (paper Sections 1, 3, 4) ==")
	checks, err := experiments.RunWorkedExamples()
	if err != nil {
		return err
	}
	ext := report.NewTable("", "example", "description", "computed", "paper", "match", "note")
	for _, c := range checks {
		ext.AddRow(c.ID, c.Description, c.Computed, c.Paper, c.Match, c.Note)
	}
	fmt.Println(ext)

	intro, err := experiments.RunIntroExample()
	if err != nil {
		return err
	}
	fmt.Printf("Intro example: without views %v, with views %v (speedup %s, cost increase %s)\n\n",
		intro.Without.Total(), intro.With.Total(),
		report.Percent(intro.SpeedupRate), report.Percent(intro.CostIncreaseRate))

	fmt.Println("== Scenario MV1: budget limit (one-shot regime) ==")
	mv1, err := experiments.RunMV1()
	if err != nil {
		return err
	}
	t6 := experiments.Table6(mv1)
	fmt.Println(t6)
	fmt.Println(experiments.Figure5a(mv1))

	fmt.Println("== Scenario MV2: response-time limit (recurring regime) ==")
	mv2, err := experiments.RunMV2()
	if err != nil {
		return err
	}
	t7 := experiments.Table7(mv2)
	fmt.Println(t7)
	fmt.Println(experiments.Figure5b(mv2))

	fmt.Println("== Scenario MV3: time/cost tradeoff (recurring regime) ==")
	mv3c, err := experiments.RunMV3(alphaC)
	if err != nil {
		return err
	}
	mv3d, err := experiments.RunMV3(alphaD)
	if err != nil {
		return err
	}
	t8, err := experiments.Table8(mv3c, mv3d)
	if err != nil {
		return err
	}
	fmt.Println(t8)
	fmt.Println(experiments.Figure5cd(mv3c, "c"))
	fmt.Println(experiments.Figure5cd(mv3d, "d"))

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		for name, tbl := range map[string]*report.Table{
			"table6.csv":   t6,
			"table7.csv":   t7,
			"table8.csv":   t8,
			"examples.csv": ext,
		} {
			f, err := os.Create(filepath.Join(csvDir, name))
			if err != nil {
				return err
			}
			if err := tbl.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Println("CSV tables written to", csvDir)
	}
	return nil
}
