package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFullSuite(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.3, 0.7); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table6.csv", "table7.csv", "table8.csv", "examples.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestRunWithoutCSV(t *testing.T) {
	if err := run("", 0.3, 0.65); err != nil {
		t.Fatal(err)
	}
}
