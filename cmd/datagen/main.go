// Command datagen synthesizes the paper's supply-chain sales dataset
// (Table 1 schema: day/month/year × department/region/country × profit)
// at any scale and saves it as a binary dataset file or prints a preview.
//
// Usage:
//
//	datagen -rows 200000 -seed 1 -out sales.ds
//	datagen -rows 10 -preview
package main

import (
	"flag"
	"fmt"
	"os"

	"vmcloud/internal/datagen"
	"vmcloud/internal/piglet"
	"vmcloud/internal/report"
)

func main() {
	var (
		rows    = flag.Int("rows", 200_000, "fact rows to generate")
		seed    = flag.Int64("seed", 1, "generator seed")
		skew    = flag.Float64("skew", 1.2, "department popularity Zipf exponent (>1)")
		out     = flag.String("out", "", "output dataset file (gob)")
		preview = flag.Bool("preview", false, "print the first rows as a table")
	)
	flag.Parse()
	if err := run(*rows, *seed, *skew, *out, *preview); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(rows int, seed int64, skew float64, out string, preview bool) error {
	ds, err := datagen.GenerateSales(datagen.Config{Rows: rows, Seed: seed, HotDeptSkew: skew})
	if err != nil {
		return err
	}
	fmt.Printf("generated %d fact rows (%v on disk), seed %d\n",
		ds.Facts.Rows(), ds.FactSize(), seed)

	if preview {
		rel, err := piglet.DatasetRelation(ds)
		if err != nil {
			return err
		}
		t := report.NewTable("preview", rel.Cols...)
		n := len(rel.Rows)
		if n > 10 {
			n = 10
		}
		for _, row := range rel.Rows[:n] {
			cells := make([]any, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			t.AddRow(cells...)
		}
		fmt.Println(t)
	}
	if out != "" {
		if err := ds.SaveFile(out); err != nil {
			return err
		}
		fmt.Println("dataset written to", out)
	}
	return nil
}
