package main

import (
	"os"
	"path/filepath"
	"testing"

	"vmcloud/internal/storage"
)

func TestRunGeneratesAndSaves(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sales.ds")
	if err := run(1000, 7, 1.2, out, true); err != nil {
		t.Fatal(err)
	}
	ds, err := storage.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Facts.Rows() != 1000 {
		t.Errorf("rows = %d, want 1000", ds.Facts.Rows())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 1, 1.2, "", false); err == nil {
		t.Error("zero rows accepted")
	}
	if err := run(10, 1, 0.5, "", false); err == nil {
		t.Error("bad skew accepted")
	}
	if err := run(10, 1, 1.2, filepath.Join(t.TempDir(), "no", "such", "dir", "x.ds"), false); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestMainSmoke(t *testing.T) {
	// run() without output or preview just reports.
	if err := run(50, 3, 1.5, "", false); err != nil {
		t.Fatal(err)
	}
	_ = os.Stdout
}
