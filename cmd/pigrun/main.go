// Command pigrun executes a Piglet script (the Pig Latin stand-in the
// paper's workload was written in) on the in-process MapReduce runtime
// over a sales dataset — either loaded from a file produced by datagen or
// generated on the fly.
//
// Usage:
//
//	pigrun -script q1.pig -data sales.ds
//	pigrun -rows 50000 -script q1.pig
//	echo "raw = LOAD 'sales' AS (day, month, year, department, region, country, profit);
//	      g = GROUP raw BY (year, country);
//	      o = FOREACH g GENERATE group, SUM(raw.profit);
//	      DUMP o;" | pigrun -rows 10000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vmcloud/internal/datagen"
	"vmcloud/internal/mapreduce"
	"vmcloud/internal/piglet"
	"vmcloud/internal/storage"
)

func main() {
	var (
		script   = flag.String("script", "", "Piglet script file; stdin when empty")
		data     = flag.String("data", "", "dataset file from datagen; generated when empty")
		rows     = flag.Int("rows", 100_000, "rows to generate when -data is empty")
		seed     = flag.Int64("seed", 1, "generator seed when -data is empty")
		mappers  = flag.Int("mappers", 0, "map tasks (0 = GOMAXPROCS)")
		reducers = flag.Int("reducers", 0, "reduce tasks (0 = GOMAXPROCS)")
		maxRows  = flag.Int("maxrows", 20, "output rows to print per relation (0 = all)")
	)
	flag.Parse()
	if err := run(*script, *data, *rows, *seed, *mappers, *reducers, *maxRows); err != nil {
		fmt.Fprintln(os.Stderr, "pigrun:", err)
		os.Exit(1)
	}
}

func run(scriptPath, dataPath string, rows int, seed int64, mappers, reducers, maxRows int) error {
	var src []byte
	var err error
	if scriptPath != "" {
		src, err = os.ReadFile(scriptPath)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}

	var ds *storage.Dataset
	if dataPath != "" {
		ds, err = storage.LoadFile(dataPath)
	} else {
		ds, err = datagen.GenerateSales(datagen.Config{Rows: rows, Seed: seed})
	}
	if err != nil {
		return err
	}
	rel, err := piglet.DatasetRelation(ds)
	if err != nil {
		return err
	}

	rn := &piglet.Runner{
		Catalog: piglet.Catalog{"sales": rel},
		MR:      mapreduce.Config{Mappers: mappers, Reducers: reducers},
	}
	res, err := rn.RunScript(string(src))
	if err != nil {
		return err
	}
	for _, out := range res.Outputs {
		fmt.Printf("-- %s (%d rows) --\n", out.Name, len(out.Rel.Rows))
		printRel(out.Rel, maxRows)
	}
	fmt.Printf("MapReduce: %d job(s), %d input records, %d map outputs, %d shuffled, %d groups\n",
		res.Jobs, res.Counters.InputRecords, res.Counters.MapOutputRecords,
		res.Counters.ShuffledRecords, res.Counters.DistinctKeys)
	return nil
}

func printRel(rel *piglet.Relation, maxRows int) {
	limited := rel
	if maxRows > 0 && len(rel.Rows) > maxRows {
		limited = &piglet.Relation{Cols: rel.Cols, Rows: rel.Rows[:maxRows]}
		defer fmt.Printf("... %d more rows\n", len(rel.Rows)-maxRows)
	}
	fmt.Print(limited.String())
}
