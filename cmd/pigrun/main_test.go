package main

import (
	"os"
	"path/filepath"
	"testing"

	"vmcloud/internal/datagen"
)

func writeScript(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "q.pig")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const q1 = `raw = LOAD 'sales' AS (day, month, year, department, region, country, profit);
grp = GROUP raw BY (year, country);
out = FOREACH grp GENERATE group, SUM(raw.profit) AS total;
STORE out INTO 'result';
`

func TestRunGeneratedData(t *testing.T) {
	script := writeScript(t, q1)
	if err := run(script, "", 2000, 5, 2, 2, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunSavedDataset(t *testing.T) {
	ds, err := datagen.GenerateSales(datagen.Config{Rows: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(t.TempDir(), "sales.ds")
	if err := ds.SaveFile(dataPath); err != nil {
		t.Fatal(err)
	}
	script := writeScript(t, q1)
	if err := run(script, dataPath, 0, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.pig"), "", 100, 1, 0, 0, 10); err == nil {
		t.Error("missing script accepted")
	}
	bad := writeScript(t, "this is not piglet;")
	if err := run(bad, "", 100, 1, 0, 0, 10); err == nil {
		t.Error("bad script accepted")
	}
	script := writeScript(t, q1)
	if err := run(script, filepath.Join(t.TempDir(), "missing.ds"), 0, 0, 0, 0, 10); err == nil {
		t.Error("missing dataset accepted")
	}
	if err := run(script, "", 0, 1, 0, 0, 10); err == nil {
		t.Error("zero generated rows accepted")
	}
}
