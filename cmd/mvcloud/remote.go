// Remote mode: with -server, mvcloud becomes a thin client for a
// running mvcloudd — the same flags are assembled into the wire-form
// request JSON, posted through internal/client (which retries 429
// sheds after the server's Retry-After hint and transient failures
// with jittered backoff under a retry budget), and the server's JSON
// response is printed verbatim.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"vmcloud/internal/client"
	"vmcloud/internal/compare"
	"vmcloud/internal/core"
	"vmcloud/internal/money"
	"vmcloud/internal/server"
)

// newRemote builds the retrying client for one CLI invocation. The
// seed doubles as the jitter seed so retried runs are reproducible.
func newRemote(base string, seed int64) *client.Client {
	return &client.Client{
		BaseURL: base,
		HTTP:    &http.Client{Timeout: 2 * time.Minute},
		Seed:    seed,
	}
}

// postJSON marshals req, posts it and pretty-prints the response.
func postJSON(c *client.Client, path string, req any, out io.Writer) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.Do(context.Background(), path, body)
	if err != nil {
		return err
	}
	var buf json.RawMessage = resp
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(buf)
}

// remoteAdvise posts the advisory problem to POST /v1/advise.
func remoteAdvise(base string, o runOpts, out io.Writer) error {
	req := server.AdviseRequest{
		Scenario: o.scenario,
		ConfigJSON: core.ConfigJSON{
			Provider:     o.provider,
			InstanceType: o.instance,
			Instances:    o.fleet,
			FactRows:     o.rows,
			Queries:      o.queries,
			Frequency:    o.freq,
			Solver:       o.solver,
			Seed:         o.seed,
		},
	}
	if o.providerFile != "" {
		spec, err := os.ReadFile(o.providerFile)
		if err != nil {
			return err
		}
		req.ProviderSpec = spec
		req.Provider = ""
	}
	switch o.scenario {
	case "mv1":
		budget, err := money.Parse(o.budget)
		if err != nil {
			return err
		}
		req.Budget = &budget
	case "mv2":
		req.Limit = o.limit
	case "mv3":
		req.Alpha = &o.alpha
	case "pareto":
		req.Steps = o.steps
	default:
		return fmt.Errorf("unknown scenario %q (want mv1, mv2, mv3 or pareto)", o.scenario)
	}
	return postJSON(newRemote(base, o.seed), "/v1/advise", &req, out)
}

// remoteCompare posts the comparison to POST /v1/compare.
func remoteCompare(base string, o compareOpts, out io.Writer) error {
	budget, err := money.Parse(o.budget)
	if err != nil {
		return err
	}
	fleets, err := parseFleets(o.fleets)
	if err != nil {
		return err
	}
	alpha := o.alpha
	req := compare.RequestJSON{
		Scenarios:      splitList(o.scenarios),
		Budget:         &budget,
		Limit:          o.limit,
		Alpha:          &alpha,
		Steps:          o.steps,
		Providers:      splitList(o.providers),
		InstanceTypes:  splitList(o.instances),
		FleetSizes:     fleets,
		BreakEvenSteps: o.breakEven,
		ConfigJSON: core.ConfigJSON{
			FactRows:  o.rows,
			Queries:   o.queries,
			Frequency: o.freq,
			Solver:    o.solver,
			Seed:      o.seed,
		},
	}
	return postJSON(newRemote(base, o.seed), "/v1/compare", &req, out)
}

// sweepOpts carries the sweep flags into remote mode.
type sweepOpts struct {
	scenario, budget, limit      string
	alpha                        float64
	queries, freq                int
	providers, instances, fleets string
	rows                         int64
	solver                       string
	seed                         int64
}

// remoteSweep posts the tariff-grid sweep to POST /v1/sweep.
func remoteSweep(base string, o sweepOpts, out io.Writer) error {
	fleets, err := parseFleets(o.fleets)
	if err != nil {
		return err
	}
	alpha := o.alpha
	req := compare.SweepRequestJSON{
		Scenario:      o.scenario,
		Limit:         o.limit,
		Alpha:         &alpha,
		Providers:     splitList(o.providers),
		InstanceTypes: splitList(o.instances),
		FleetSizes:    fleets,
		ConfigJSON: core.ConfigJSON{
			FactRows:  o.rows,
			Queries:   o.queries,
			Frequency: o.freq,
			Solver:    o.solver,
			Seed:      o.seed,
		},
	}
	if o.budget != "" {
		budget, err := money.Parse(o.budget)
		if err != nil {
			return err
		}
		req.Budget = &budget
	}
	return postJSON(newRemote(base, o.seed), "/v1/sweep", &req, out)
}

// parseFleets reads a comma-separated fleet-size list into ints.
func parseFleets(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		var n int
		if _, err := fmt.Sscanf(f, "%d", &n); err != nil {
			return nil, fmt.Errorf("bad fleet size %q: %v", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}
