package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vmcloud/internal/server"
)

// TestRemoteAdvise drives the -server path against a real daemon
// handler over TCP and checks the wire response comes back whole.
func TestRemoteAdvise(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()

	var sb strings.Builder
	err := remoteAdvise(ts.URL, runOpts{
		scenario: "mv1", budget: "25.00", queries: 3, freq: 10,
		provider: "aws-2012", instance: "small", fleet: 5,
		rows: 10_000_000, solver: "knapsack",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Scenario       string          `json:"scenario"`
		Recommendation json.RawMessage `json:"recommendation"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &resp); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, sb.String())
	}
	if resp.Scenario != "mv1" || len(resp.Recommendation) == 0 {
		t.Fatalf("thin response: %s", sb.String())
	}
}

// TestRemoteCompareAndSweep drives the two subcommand remote paths.
func TestRemoteCompareAndSweep(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{}))
	defer ts.Close()

	var sb strings.Builder
	err := remoteCompare(ts.URL, compareOpts{
		budget: "25.00", limit: "4h", alpha: 0.5, steps: 3,
		queries: 3, freq: 10, providers: "aws-2012", instances: "small",
		fleets: "5", rows: 10_000_000, breakEven: -1, solver: "knapsack",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"results"`) || !strings.Contains(sb.String(), `"recommendation"`) {
		t.Errorf("compare response unrecognized:\n%.400s", sb.String())
	}

	sb.Reset()
	err = remoteSweep(ts.URL, sweepOpts{
		scenario: "mv1", budget: "25.00", queries: 3, freq: 10,
		providers: "aws-2012", instances: "small", fleets: "3,5",
		rows: 10_000_000, solver: "knapsack",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"cells"`) && !strings.Contains(sb.String(), `"scenario"`) {
		t.Errorf("sweep response unrecognized:\n%.400s", sb.String())
	}
}

// TestRemoteAdviseRetriesShed fronts the daemon with a proxy that
// sheds the first attempt exactly as admission control does (429 +
// Retry-After) and checks the CLI's client retries through to the
// answer instead of surfacing the shed.
func TestRemoteAdviseRetriesShed(t *testing.T) {
	daemon := server.New(server.Options{})
	attempts := 0
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded: solve queue full, retry later", http.StatusTooManyRequests)
			return
		}
		daemon.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	var sb strings.Builder
	err := remoteAdvise(proxy.URL, runOpts{
		scenario: "mv1", budget: "25.00", queries: 3, freq: 10,
		provider: "aws-2012", instance: "small", fleet: 5,
		rows: 10_000_000, solver: "knapsack",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("%d attempts, want 2 (shed then success)", attempts)
	}
	if !strings.Contains(sb.String(), `"recommendation"`) {
		t.Errorf("no recommendation after retry:\n%.400s", sb.String())
	}
}
