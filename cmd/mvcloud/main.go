// Command mvcloud is the view-materialization advisor CLI: given a
// workload size, a cloud tariff and one of the paper's three objectives,
// it prints the recommended view set and the itemized monthly bill.
//
// Usage:
//
//	mvcloud -scenario mv1 -budget 25.00 [-queries 10] [-provider aws-2012]
//	mvcloud -scenario mv2 -limit 4h
//	mvcloud -scenario mv3 -alpha 0.65
//	mvcloud -scenario pareto -steps 11
//	mvcloud -tariffs            # print the built-in provider catalog
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/report"
	"vmcloud/internal/schema"
	"vmcloud/internal/workload"
)

func main() {
	var (
		scenario  = flag.String("scenario", "mv1", "mv1 (budget), mv2 (deadline), mv3 (tradeoff) or pareto")
		budgetStr = flag.String("budget", "25.00", "MV1 budget in dollars")
		limitStr  = flag.String("limit", "4h", "MV2 response-time limit (Go duration)")
		alpha     = flag.Float64("alpha", 0.5, "MV3 weight on time (0..1)")
		steps     = flag.Int("steps", 11, "pareto sweep steps")
		queries   = flag.Int("queries", 10, "sales workload size (1..10)")
		freq      = flag.Int("freq", 30, "executions of each query per month")
		provider  = flag.String("provider", "aws-2012", "tariff name (see -tariffs)")
		provFile  = flag.String("provider-file", "", "load the tariff from a JSON file instead of -provider")
		instance  = flag.String("instance", "small", "instance type")
		fleet     = flag.Int("fleet", 5, "number of instances")
		rows      = flag.Int64("rows", 200_000_000, "fact table rows (≈size/50B)")
		tariffs   = flag.Bool("tariffs", false, "print the provider catalog and exit")
		invoice   = flag.Bool("invoice", false, "print an itemized invoice for the recommendation")
	)
	flag.Parse()

	if *tariffs {
		printTariffs()
		return
	}
	if err := run(runOpts{
		scenario: *scenario, budget: *budgetStr, limit: *limitStr,
		alpha: *alpha, steps: *steps, queries: *queries, freq: *freq,
		provider: *provider, providerFile: *provFile,
		instance: *instance, fleet: *fleet, rows: *rows, invoice: *invoice,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "mvcloud:", err)
		os.Exit(1)
	}
}

func printTariffs() {
	for _, name := range pricing.ProviderNames() {
		p, _ := pricing.Lookup(name)
		t := report.NewTable(fmt.Sprintf("%s — compute (%s billing)", p.Name, p.Compute.Granularity),
			"instance", "$/hour", "RAM", "ECU", "local storage")
		for _, in := range p.Compute.InstanceNames() {
			it, _ := p.Compute.Instance(in)
			t.AddRow(it.Name, it.PricePerHour, it.RAM, it.ECU, it.LocalStorage)
		}
		fmt.Println(t)
		st := report.NewTable(fmt.Sprintf("%s — storage ($/GB/month, %s)", p.Name, p.Storage.Table.Mode), "up to", "price")
		for _, tier := range p.Storage.Table.Tiers {
			bound := "∞"
			if tier.UpTo != 0 {
				bound = tier.UpTo.String()
			}
			st.AddRow(bound, tier.PricePerGB)
		}
		fmt.Println(st)
	}
}

type runOpts struct {
	scenario, budget, limit string
	alpha                   float64
	steps, queries, freq    int
	provider, providerFile  string
	instance                string
	fleet                   int
	rows                    int64
	invoice                 bool
}

func run(o runOpts) error {
	var prov pricing.Provider
	var err error
	if o.providerFile != "" {
		prov, err = pricing.LoadProviderFile(o.providerFile)
	} else {
		prov, err = pricing.Lookup(o.provider)
	}
	if err != nil {
		return err
	}
	l, err := lattice.New(schema.Sales(), o.rows)
	if err != nil {
		return err
	}
	w, err := workload.Sales(l, o.queries)
	if err != nil {
		return err
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = o.freq
	}
	adv, err := core.New(core.Config{
		Provider:     &prov,
		InstanceType: o.instance,
		Instances:    o.fleet,
		FactRows:     o.rows,
		Workload:     w,
	})
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %s   workload: %d queries × %d/month   candidates: %d\n\n",
		adv.Cl, o.queries, o.freq, len(adv.Candidates))

	printRec := func(rec core.Recommendation) {
		fmt.Print(rec.Render())
		if o.invoice {
			plan := adv.PlanFor(rec.Selection)
			fmt.Println("\nitemized invoice:")
			fmt.Print(costmodel.Itemize(plan, rec.Selection.Bill))
		}
	}

	switch o.scenario {
	case "mv1":
		budget, err := money.Parse(o.budget)
		if err != nil {
			return err
		}
		rec, err := adv.AdviseBudget(budget)
		if err != nil {
			return err
		}
		printRec(rec)
	case "mv2":
		limit, err := time.ParseDuration(o.limit)
		if err != nil {
			return err
		}
		rec, err := adv.AdviseDeadline(limit)
		if err != nil {
			return err
		}
		printRec(rec)
	case "mv3":
		rec, err := adv.AdviseTradeoff(o.alpha)
		if err != nil {
			return err
		}
		printRec(rec)
	case "pareto":
		front, err := adv.ParetoFront(o.steps)
		if err != nil {
			return err
		}
		t := report.NewTable("time/cost Pareto frontier", "α", "workload time", "monthly bill", "views")
		for _, p := range front {
			t.AddRow(fmt.Sprintf("%.2f", p.Alpha), fmt.Sprintf("%.3fh", p.Time.Hours()), p.Cost, p.Views)
		}
		fmt.Println(t)
	default:
		return fmt.Errorf("unknown scenario %q (want mv1, mv2, mv3 or pareto)", o.scenario)
	}
	return nil
}
