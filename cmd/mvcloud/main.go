// Command mvcloud is the view-materialization advisor CLI: given a
// workload size, a cloud tariff and one of the paper's three objectives,
// it prints the recommended view set and the itemized monthly bill.
//
// Usage:
//
//	mvcloud -scenario mv1 -budget 25.00 [-queries 10] [-provider aws-2012]
//	mvcloud -scenario mv2 -limit 4h
//	mvcloud -scenario mv3 -alpha 0.65
//	mvcloud -scenario pareto -steps 11
//	mvcloud -scenario mv1 -solver search -seed 42   # metaheuristic engine
//	mvcloud -tariffs            # print the built-in provider catalog
//
// With -server, the same flags are posted as wire-form JSON to a
// running mvcloudd instead of solving in-process; overload sheds (429 +
// Retry-After) and transient failures are retried with jittered backoff
// under a retry budget (see internal/client):
//
//	mvcloud -server http://localhost:8080 -scenario mv1 -budget 25.00
//	mvcloud compare -server http://localhost:8080 -budget 25.00
//	mvcloud sweep -server http://localhost:8080 -scenario mv1 -budget 25.00
//
// The compare subcommand fans the same advisory problem out across every
// provider in the catalog (or a chosen subset) and prints the ranked
// cross-provider comparison — cost/time matrix, per-scenario winners and
// budget break-even points:
//
//	mvcloud compare -budget 25.00 -limit 4h
//	mvcloud compare -providers aws-2012,stratus -fleets 3,5 -json
//
// The sweep subcommand re-prices a single objective across a tariff grid
// (providers × instance types × fleet sizes) and prints every cell's
// decomposed bill plus the winning configuration — the raw cross-tariff
// study under the comparison:
//
//	mvcloud sweep -scenario mv1 -budget 25.00 -fleets 1,3,5,8
//	mvcloud sweep -scenario mv3 -alpha 0.65 -providers aws-2012,stratus -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"vmcloud/internal/compare"
	"vmcloud/internal/core"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/report"
	"vmcloud/internal/schema"
	"vmcloud/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		if err := runCompareArgs(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mvcloud compare:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		if err := runSweepArgs(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mvcloud sweep:", err)
			os.Exit(1)
		}
		return
	}
	var (
		scenario  = flag.String("scenario", "mv1", "mv1 (budget), mv2 (deadline), mv3 (tradeoff) or pareto")
		budgetStr = flag.String("budget", "25.00", "MV1 budget in dollars")
		limitStr  = flag.String("limit", "4h", "MV2 response-time limit (Go duration)")
		alpha     = flag.Float64("alpha", 0.5, "MV3 weight on time (0..1)")
		steps     = flag.Int("steps", 11, "pareto sweep steps")
		queries   = flag.Int("queries", 10, "sales workload size (1..10)")
		freq      = flag.Int("freq", 30, "executions of each query per month")
		provider  = flag.String("provider", "aws-2012", "tariff name (see -tariffs)")
		provFile  = flag.String("provider-file", "", "load the tariff from a JSON file instead of -provider")
		instance  = flag.String("instance", "small", "instance type")
		fleet     = flag.Int("fleet", 5, "number of instances")
		rows      = flag.Int64("rows", 200_000_000, "fact table rows (≈size/50B)")
		solver    = flag.String("solver", "knapsack", "optimization engine: knapsack, search or auto")
		seed      = flag.Int64("seed", 0, "search solver seed (identical seeds reproduce identical selections)")
		tariffs   = flag.Bool("tariffs", false, "print the provider catalog and exit")
		invoice   = flag.Bool("invoice", false, "print an itemized invoice for the recommendation")
		serverURL = flag.String("server", "", "base URL of a running mvcloudd; POST /v1/advise there (with shed-aware retries) instead of solving in-process")
	)
	flag.Parse()

	if *tariffs {
		printTariffs()
		return
	}
	o := runOpts{
		scenario: *scenario, budget: *budgetStr, limit: *limitStr,
		alpha: *alpha, steps: *steps, queries: *queries, freq: *freq,
		provider: *provider, providerFile: *provFile,
		instance: *instance, fleet: *fleet, rows: *rows, invoice: *invoice,
		solver: *solver, seed: *seed,
	}
	var err error
	if *serverURL != "" {
		err = remoteAdvise(*serverURL, o, os.Stdout)
	} else {
		err = run(o, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvcloud:", err)
		os.Exit(1)
	}
}

func printTariffs() {
	for _, name := range pricing.ProviderNames() {
		p, _ := pricing.Lookup(name)
		t := report.NewTable(fmt.Sprintf("%s — compute (%s billing)", p.Name, p.Compute.Granularity),
			"instance", "$/hour", "RAM", "ECU", "local storage")
		for _, in := range p.Compute.InstanceNames() {
			it, _ := p.Compute.Instance(in)
			t.AddRow(it.Name, it.PricePerHour, it.RAM, it.ECU, it.LocalStorage)
		}
		fmt.Println(t)
		st := report.NewTable(fmt.Sprintf("%s — storage ($/GB/month, %s)", p.Name, p.Storage.Table.Mode), "up to", "price")
		for _, tier := range p.Storage.Table.Tiers {
			bound := "∞"
			if tier.UpTo != 0 {
				bound = tier.UpTo.String()
			}
			st.AddRow(bound, tier.PricePerGB)
		}
		fmt.Println(st)
	}
}

type runOpts struct {
	scenario, budget, limit string
	alpha                   float64
	steps, queries, freq    int
	provider, providerFile  string
	instance                string
	fleet                   int
	rows                    int64
	invoice                 bool
	solver                  string
	seed                    int64
}

func run(o runOpts, out io.Writer) error {
	var prov pricing.Provider
	var err error
	if o.providerFile != "" {
		prov, err = pricing.LoadProviderFile(o.providerFile)
	} else {
		prov, err = pricing.Lookup(o.provider)
	}
	if err != nil {
		return err
	}
	l, err := lattice.New(schema.Sales(), o.rows)
	if err != nil {
		return err
	}
	w, err := workload.Sales(l, o.queries)
	if err != nil {
		return err
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = o.freq
	}
	adv, err := core.New(core.Config{
		Provider:     &prov,
		InstanceType: o.instance,
		Instances:    o.fleet,
		FactRows:     o.rows,
		Workload:     w,
		Solver:       o.solver,
		Seed:         o.seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cluster: %s   workload: %d queries × %d/month   candidates: %d   solver: %s\n\n",
		adv.Cl, o.queries, o.freq, len(adv.Candidates), adv.Solver)

	printRec := func(rec core.Recommendation) {
		fmt.Fprint(out, rec.Render())
		if o.invoice {
			plan := adv.PlanFor(rec.Selection)
			fmt.Fprintln(out, "\nitemized invoice:")
			fmt.Fprint(out, costmodel.Itemize(plan, rec.Selection.Bill))
		}
	}

	switch o.scenario {
	case "mv1":
		budget, err := money.Parse(o.budget)
		if err != nil {
			return err
		}
		rec, err := adv.AdviseBudget(budget)
		if err != nil {
			return err
		}
		printRec(rec)
	case "mv2":
		limit, err := time.ParseDuration(o.limit)
		if err != nil {
			return err
		}
		rec, err := adv.AdviseDeadline(limit)
		if err != nil {
			return err
		}
		printRec(rec)
	case "mv3":
		rec, err := adv.AdviseTradeoff(o.alpha)
		if err != nil {
			return err
		}
		printRec(rec)
	case "pareto":
		front, err := adv.ParetoFront(o.steps)
		if err != nil {
			return err
		}
		t := report.NewTable("time/cost Pareto frontier", "α", "workload time", "monthly bill", "views")
		for _, p := range front {
			t.AddRow(fmt.Sprintf("%.2f", p.Alpha), fmt.Sprintf("%.3fh", p.Time.Hours()), p.Cost, p.Views)
		}
		fmt.Fprintln(out, t)
	default:
		return fmt.Errorf("unknown scenario %q (want mv1, mv2, mv3 or pareto)", o.scenario)
	}
	return nil
}

// runCompareArgs parses and runs the compare subcommand.
func runCompareArgs(args []string, out *os.File) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	var (
		scenarios = fs.String("scenarios", "", "comma-separated subset of mv1,mv2,mv3,pareto (default: derived from -budget/-limit)")
		budgetStr = fs.String("budget", "25.00", "MV1 budget in dollars")
		limitStr  = fs.String("limit", "4h", "MV2 response-time limit (Go duration)")
		alpha     = fs.Float64("alpha", 0.5, "MV3 weight on time (0..1)")
		steps     = fs.Int("steps", 11, "pareto sweep steps per configuration")
		queries   = fs.Int("queries", 10, "sales workload size (1..10)")
		freq      = fs.Int("freq", 30, "executions of each query per month")
		providers = fs.String("providers", "", "comma-separated tariff names (default: the full catalog)")
		instances = fs.String("instances", "small", "comma-separated instance types to try")
		fleets    = fs.String("fleets", "5", "comma-separated cluster sizes to try")
		rows      = fs.Int64("rows", 200_000_000, "fact table rows (≈size/50B)")
		solver    = fs.String("solver", "knapsack", "optimization engine: knapsack, search or auto")
		seed      = fs.Int64("seed", 0, "search solver seed")
		breakEven = fs.Int("break-even", 8, "budget sweep resolution (negative disables)")
		workers   = fs.Int("workers", 0, "fan-out worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		asJSON    = fs.Bool("json", false, "print the comparison in the /v1/compare wire format")
		serverURL = fs.String("server", "", "base URL of a running mvcloudd; POST /v1/compare there instead of solving in-process")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := compareOpts{
		scenarios: *scenarios, budget: *budgetStr, limit: *limitStr, alpha: *alpha,
		steps: *steps, queries: *queries, freq: *freq, providers: *providers,
		instances: *instances, fleets: *fleets, rows: *rows, breakEven: *breakEven,
		workers: *workers, solver: *solver, seed: *seed,
	}
	if *serverURL != "" {
		return remoteCompare(*serverURL, o, out)
	}
	req, err := buildCompareRequest(o)
	if err != nil {
		return err
	}
	comp, err := compare.Run(req)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(comp.JSON())
	}
	fmt.Fprint(out, comp.Render())
	return nil
}

type compareOpts struct {
	scenarios, budget, limit     string
	alpha                        float64
	steps, queries, freq         int
	providers, instances, fleets string
	rows                         int64
	breakEven, workers           int
	solver                       string
	seed                         int64
}

// gridInputs are the workload and tariff-grid flags the compare and
// sweep subcommands share; resolveGrid is the single place they are
// turned into request fields, so the two subcommands cannot drift.
type gridInputs struct {
	queries, freq                int
	rows                         int64
	providers, instances, fleets string
}

func resolveGrid(o gridInputs) (w workload.Workload, provs []pricing.Provider, instanceTypes []string, fleetSizes []int, err error) {
	l, err := lattice.New(schema.Sales(), o.rows)
	if err != nil {
		return w, nil, nil, nil, err
	}
	w, err = workload.Sales(l, o.queries)
	if err != nil {
		return w, nil, nil, nil, err
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = o.freq
	}
	for _, name := range splitList(o.providers) {
		p, err := pricing.Lookup(name)
		if err != nil {
			return w, nil, nil, nil, err
		}
		provs = append(provs, p)
	}
	instanceTypes = splitList(o.instances)
	for _, f := range splitList(o.fleets) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return w, nil, nil, nil, fmt.Errorf("bad fleet size %q: %v", f, err)
		}
		fleetSizes = append(fleetSizes, n)
	}
	return w, provs, instanceTypes, fleetSizes, nil
}

func buildCompareRequest(o compareOpts) (compare.Request, error) {
	budget, err := money.Parse(o.budget)
	if err != nil {
		return compare.Request{}, err
	}
	limit, err := time.ParseDuration(o.limit)
	if err != nil {
		return compare.Request{}, err
	}
	w, provs, instanceTypes, fleetSizes, err := resolveGrid(gridInputs{
		queries: o.queries, freq: o.freq, rows: o.rows,
		providers: o.providers, instances: o.instances, fleets: o.fleets,
	})
	if err != nil {
		return compare.Request{}, err
	}
	req := compare.Request{
		Workload:       w,
		Providers:      provs,
		InstanceTypes:  instanceTypes,
		FleetSizes:     fleetSizes,
		FactRows:       o.rows,
		Budget:         budget,
		Limit:          limit,
		Alpha:          o.alpha,
		Steps:          o.steps,
		BreakEvenSteps: o.breakEven,
		Workers:        o.workers,
		Solver:         o.solver,
		Seed:           o.seed,
	}
	if o.scenarios != "" {
		req.Scenarios = splitList(o.scenarios)
	}
	return req, nil
}

// runSweepArgs parses and runs the sweep subcommand.
func runSweepArgs(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		scenario  = fs.String("scenario", "", "objective to sweep: mv1, mv2 or mv3 (default: derived from -budget/-limit)")
		budgetStr = fs.String("budget", "", "MV1 budget in dollars")
		limitStr  = fs.String("limit", "", "MV2 response-time limit (Go duration)")
		alpha     = fs.Float64("alpha", 0.5, "MV3 weight on time (0..1)")
		queries   = fs.Int("queries", 10, "sales workload size (1..10)")
		freq      = fs.Int("freq", 30, "executions of each query per month")
		providers = fs.String("providers", "", "comma-separated tariff names (default: the full catalog)")
		instances = fs.String("instances", "small", "comma-separated instance types to try")
		fleets    = fs.String("fleets", "5", "comma-separated cluster sizes to try")
		rows      = fs.Int64("rows", 200_000_000, "fact table rows (≈size/50B)")
		solver    = fs.String("solver", "knapsack", "optimization engine: knapsack, search or auto")
		seed      = fs.Int64("seed", 0, "search solver seed")
		workers   = fs.Int("workers", 0, "fan-out worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		asJSON    = fs.Bool("json", false, "print the sweep in the /v1/sweep wire format")
		serverURL = fs.String("server", "", "base URL of a running mvcloudd; POST /v1/sweep there instead of solving in-process")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serverURL != "" {
		return remoteSweep(*serverURL, sweepOpts{
			scenario: *scenario, budget: *budgetStr, limit: *limitStr, alpha: *alpha,
			queries: *queries, freq: *freq, providers: *providers,
			instances: *instances, fleets: *fleets, rows: *rows,
			solver: *solver, seed: *seed,
		}, out)
	}
	req := compare.SweepRequest{
		Scenario: *scenario,
		Alpha:    *alpha,
		FactRows: *rows,
		Solver:   *solver,
		Seed:     *seed,
		Workers:  *workers,
	}
	if *budgetStr != "" {
		budget, err := money.Parse(*budgetStr)
		if err != nil {
			return err
		}
		req.Budget = budget
	}
	if *limitStr != "" {
		limit, err := time.ParseDuration(*limitStr)
		if err != nil {
			return err
		}
		req.Limit = limit
	}
	var err error
	req.Workload, req.Providers, req.InstanceTypes, req.FleetSizes, err = resolveGrid(gridInputs{
		queries: *queries, freq: *freq, rows: *rows,
		providers: *providers, instances: *instances, fleets: *fleets,
	})
	if err != nil {
		return err
	}
	sw, err := compare.RunSweep(req)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(sw.JSON())
	}
	fmt.Fprint(out, sw.Render())
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
