package main

import "testing"

func TestRunScenarios(t *testing.T) {
	const rows = 10_000_000 // keep lattice math fast
	cases := []struct {
		name     string
		scenario string
	}{
		{"mv1", "mv1"},
		{"mv2", "mv2"},
		{"mv3", "mv3"},
		{"pareto", "pareto"},
	}
	for _, c := range cases {
		o := runOpts{scenario: c.scenario, budget: "25.00", limit: "4h", alpha: 0.5,
			steps: 5, queries: 5, freq: 30, provider: "aws-2012",
			instance: "small", fleet: 5, rows: rows, invoice: true}
		if err := run(o); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	base := runOpts{budget: "1", limit: "1h", alpha: 0.5, steps: 5, queries: 3,
		freq: 1, provider: "aws-2012", instance: "small", fleet: 5, rows: 10_000_000}
	for name, mut := range map[string]func(*runOpts){
		"unknown scenario":      func(o *runOpts) { o.scenario = "warp" },
		"bad budget":            func(o *runOpts) { o.scenario = "mv1"; o.budget = "not-money" },
		"bad duration":          func(o *runOpts) { o.scenario = "mv2"; o.limit = "not-a-duration" },
		"unknown provider":      func(o *runOpts) { o.scenario = "mv1"; o.provider = "nonexistent-cloud" },
		"oversized workload":    func(o *runOpts) { o.scenario = "mv1"; o.queries = 99 },
		"missing provider file": func(o *runOpts) { o.scenario = "mv1"; o.providerFile = "/nonexistent/tariff.json" },
	} {
		o := base
		mut(&o)
		if err := run(o); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPrintTariffs(t *testing.T) {
	printTariffs() // must not panic
}
