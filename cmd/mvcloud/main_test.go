package main

import (
	"io"
	"os"
	"testing"
)

func TestRunScenarios(t *testing.T) {
	const rows = 10_000_000 // keep lattice math fast
	cases := []struct {
		name     string
		scenario string
	}{
		{"mv1", "mv1"},
		{"mv2", "mv2"},
		{"mv3", "mv3"},
		{"pareto", "pareto"},
	}
	for _, c := range cases {
		o := runOpts{scenario: c.scenario, budget: "25.00", limit: "4h", alpha: 0.5,
			steps: 5, queries: 5, freq: 30, provider: "aws-2012",
			instance: "small", fleet: 5, rows: rows, invoice: true}
		if err := run(o, io.Discard); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	base := runOpts{budget: "1", limit: "1h", alpha: 0.5, steps: 5, queries: 3,
		freq: 1, provider: "aws-2012", instance: "small", fleet: 5, rows: 10_000_000}
	for name, mut := range map[string]func(*runOpts){
		"unknown scenario":      func(o *runOpts) { o.scenario = "warp" },
		"bad budget":            func(o *runOpts) { o.scenario = "mv1"; o.budget = "not-money" },
		"bad duration":          func(o *runOpts) { o.scenario = "mv2"; o.limit = "not-a-duration" },
		"unknown provider":      func(o *runOpts) { o.scenario = "mv1"; o.provider = "nonexistent-cloud" },
		"oversized workload":    func(o *runOpts) { o.scenario = "mv1"; o.queries = 99 },
		"missing provider file": func(o *runOpts) { o.scenario = "mv1"; o.providerFile = "/nonexistent/tariff.json" },
	} {
		o := base
		mut(&o)
		if err := run(o, io.Discard); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPrintTariffs(t *testing.T) {
	printTariffs() // must not panic
}

func TestBuildCompareRequest(t *testing.T) {
	req, err := buildCompareRequest(compareOpts{
		budget: "25.00", limit: "4h", alpha: 0.5, steps: 5, queries: 5, freq: 30,
		providers: "aws-2012, stratus", instances: "small,large", fleets: "3,5",
		rows: 10_000_000, breakEven: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Providers) != 2 || req.Providers[0].Name != "aws-2012" {
		t.Errorf("providers = %v", req.Providers)
	}
	if len(req.InstanceTypes) != 2 || len(req.FleetSizes) != 2 {
		t.Errorf("grid = %v × %v", req.InstanceTypes, req.FleetSizes)
	}
	if req.BreakEvenSteps != -1 {
		t.Errorf("break-even = %d", req.BreakEvenSteps)
	}
}

func TestRunCompareArgs(t *testing.T) {
	args := []string{"-rows", "10000000", "-queries", "4", "-fleets", "5",
		"-budget", "25.00", "-limit", "4h", "-break-even", "3"}
	if err := runCompareArgs(args, os.Stdout); err != nil {
		t.Errorf("table output: %v", err)
	}
	if err := runCompareArgs(append(args, "-json"), os.Stdout); err != nil {
		t.Errorf("json output: %v", err)
	}
}

func TestRunCompareArgsErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown provider": {"-providers", "atlantis", "-rows", "10000000"},
		"bad budget":       {"-budget", "not-money", "-rows", "10000000"},
		"bad limit":        {"-limit", "not-a-duration", "-rows", "10000000"},
		"bad fleet":        {"-fleets", "three", "-rows", "10000000"},
		"bad scenario":     {"-scenarios", "warp", "-rows", "10000000"},
		"unknown flag":     {"-warp-factor", "9"},
	} {
		if err := runCompareArgs(args, os.Stdout); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunSearchSolver(t *testing.T) {
	for _, scenario := range []string{"mv1", "mv2", "mv3", "pareto"} {
		o := runOpts{scenario: scenario, budget: "25.00", limit: "4h", alpha: 0.5,
			steps: 5, queries: 5, freq: 30, provider: "aws-2012",
			instance: "small", fleet: 5, rows: 10_000_000,
			solver: "search", seed: 42}
		if err := run(o, io.Discard); err != nil {
			t.Errorf("%s with -solver search: %v", scenario, err)
		}
	}
	o := runOpts{scenario: "mv1", budget: "25.00", limit: "4h", alpha: 0.5,
		steps: 5, queries: 5, freq: 30, provider: "aws-2012",
		instance: "small", fleet: 5, rows: 10_000_000, solver: "quantum"}
	if err := run(o, io.Discard); err == nil {
		t.Error("unknown -solver accepted")
	}
}

func TestCompareRequestCarriesSolver(t *testing.T) {
	req, err := buildCompareRequest(compareOpts{
		budget: "25.00", limit: "4h", alpha: 0.5, steps: 5, queries: 5, freq: 30,
		providers: "aws-2012", instances: "small", fleets: "5",
		rows: 10_000_000, breakEven: -1, solver: "search", seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if req.Solver != "search" || req.Seed != 7 {
		t.Fatalf("solver/seed = %q/%d, want search/7", req.Solver, req.Seed)
	}
}
