package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// TestSearchCLIGoldens pins the exact stdout of seeded `mvcloud -solver
// search` runs on the paper's sales lattice. The incremental evaluation
// engine must keep these byte-identical: a pinned seed must keep
// selecting — and pricing — exactly the same views after the refactor.
func TestSearchCLIGoldens(t *testing.T) {
	cases := []struct {
		name string
		o    runOpts
	}{
		{"mv1_search_seed42", runOpts{scenario: "mv1", budget: "25.00", limit: "4h", alpha: 0.5,
			steps: 5, queries: 10, freq: 30, provider: "aws-2012",
			instance: "small", fleet: 5, rows: 10_000_000, invoice: true,
			solver: "search", seed: 42}},
		{"mv2_search_seed7", runOpts{scenario: "mv2", budget: "25.00", limit: "4h", alpha: 0.5,
			steps: 5, queries: 10, freq: 30, provider: "aws-2012",
			instance: "small", fleet: 5, rows: 10_000_000,
			solver: "search", seed: 7}},
		{"pareto_search_seed5", runOpts{scenario: "pareto", budget: "25.00", limit: "4h", alpha: 0.5,
			steps: 5, queries: 10, freq: 30, provider: "aws-2012",
			instance: "small", fleet: 5, rows: 10_000_000,
			solver: "search", seed: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(c.o, &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test ./cmd/mvcloud -run Golden -update): %v", err)
			}
			if buf.String() != string(want) {
				t.Errorf("output drifted from pre-refactor golden %s:\ngot:\n%s\nwant:\n%s", path, buf.String(), want)
			}
		})
	}
}
