package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// checkGolden compares output against testdata/<name>.golden, rewriting
// it under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./cmd/mvcloud -run Golden -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("output drifted from committed golden %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestSweepCLIGolden pins the exact stdout of a tariff-grid sweep over
// the paper's 16-node sales lattice — the structure-sharing kernel must
// keep re-pricing every cell to exactly these bills. CI smoke-runs the
// same subcommand.
func TestSweepCLIGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"sweep_mv1_fleets", []string{"-scenario", "mv1", "-budget", "25.00", "-fleets", "3,5", "-rows", "10000000"}},
		{"sweep_mv3_search", []string{"-scenario", "mv3", "-alpha", "0.65", "-fleets", "5", "-rows", "10000000", "-solver", "search", "-seed", "42"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runSweepArgs(c.args, &buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.name, buf.Bytes())
		})
	}
}

// TestSearchCLIGoldens pins the exact stdout of seeded `mvcloud -solver
// search` runs on the paper's sales lattice. The incremental evaluation
// engine must keep these byte-identical: a pinned seed must keep
// selecting — and pricing — exactly the same views after the refactor.
func TestSearchCLIGoldens(t *testing.T) {
	cases := []struct {
		name string
		o    runOpts
	}{
		{"mv1_search_seed42", runOpts{scenario: "mv1", budget: "25.00", limit: "4h", alpha: 0.5,
			steps: 5, queries: 10, freq: 30, provider: "aws-2012",
			instance: "small", fleet: 5, rows: 10_000_000, invoice: true,
			solver: "search", seed: 42}},
		{"mv2_search_seed7", runOpts{scenario: "mv2", budget: "25.00", limit: "4h", alpha: 0.5,
			steps: 5, queries: 10, freq: 30, provider: "aws-2012",
			instance: "small", fleet: 5, rows: 10_000_000,
			solver: "search", seed: 7}},
		{"pareto_search_seed5", runOpts{scenario: "pareto", budget: "25.00", limit: "4h", alpha: 0.5,
			steps: 5, queries: 10, freq: 30, provider: "aws-2012",
			instance: "small", fleet: 5, rows: 10_000_000,
			solver: "search", seed: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(c.o, &buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.name, buf.Bytes())
		})
	}
}
