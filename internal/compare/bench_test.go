package compare

import (
	"runtime"
	"testing"
	"time"

	"vmcloud/internal/money"
)

// The acceptance bar for the fan-out: solving the full catalog grid on
// the worker pool must beat the sequential baseline (Workers = 1) on any
// multi-core machine. Run with:
//
//	go test ./internal/compare -bench BenchmarkCompare -benchtime 5x

func benchRequest(b *testing.B) Request {
	return Request{
		Workload:       testWorkload(b, 10),
		FactRows:       50_000_000,
		Scenarios:      []string{"mv1", "mv2", "mv3"},
		Budget:         money.FromDollars(25),
		Limit:          4 * time.Hour,
		BreakEvenSteps: 8,
		FleetSizes:     []int{3, 5},
	}
}

func runCompareBench(b *testing.B, workers int) {
	req := benchRequest(b)
	req.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := Run(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(comp.Configs) == 0 {
			b.Fatal("empty comparison")
		}
	}
}

// BenchmarkCompareSequential is the baseline: one worker solves the
// whole provider × fleet grid in order.
func BenchmarkCompareSequential(b *testing.B) { runCompareBench(b, 1) }

// BenchmarkCompareParallel fans the same grid out over GOMAXPROCS
// workers — the repo's first parallel solve path.
func BenchmarkCompareParallel(b *testing.B) { runCompareBench(b, runtime.GOMAXPROCS(0)) }
