// sweep.go implements the tariff-grid sweep: one workload, one
// objective, re-priced across every provider × instance type × fleet
// size cell of a grid. Where Run (the full comparison) layers winners,
// frontiers and break-even flips on top of multiple scenarios, Sweep is
// the raw study underneath — the per-cell bill decomposition the paper's
// cross-tariff tables are made of — and the leanest consumer of the
// structure-sharing comparison kernel: one structural build, then a
// pure re-bill per cell.
package compare

import (
	"context"
	"fmt"
	"strings"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/money"
	"vmcloud/internal/obs"
	"vmcloud/internal/pricing"
	"vmcloud/internal/report"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// SweepRequest describes a tariff-grid sweep: the advisory problem of
// Request restricted to a single objective. Zero values follow the repo
// convention of selecting the paper's experimental defaults.
type SweepRequest struct {
	// Providers are the tariffs to sweep; empty means the full built-in
	// catalog. InstanceTypes and FleetSizes span the grid exactly as in
	// Request.
	Providers     []pricing.Provider
	InstanceTypes []string
	FleetSizes    []int

	// Workload is required; the remaining problem fields parameterize the
	// advisory problem exactly as core.Config does.
	Workload          workload.Workload
	FactRows          int64
	Months            float64
	CandidateBudget   int
	MaintenanceRuns   int
	UpdateRatio       float64
	MaintenancePolicy views.MaintenancePolicy
	JobOverhead       time.Duration
	Solver            string
	Seed              int64

	// Scenario is the single objective swept: "mv1", "mv2" or "mv3".
	// Empty derives it from the parameters given: mv1 when Budget > 0,
	// mv2 when Limit > 0, mv3 otherwise.
	Scenario string
	// Budget is the MV1 spending limit; required for mv1.
	Budget money.Money
	// Limit is the MV2 response-time limit; required for mv2.
	Limit time.Duration
	// Alpha is the MV3 weight on time; zero selects 0.5.
	Alpha float64

	// Workers bounds the fan-out worker pool; zero selects GOMAXPROCS.
	Workers int

	// Trace, when non-nil, accumulates per-phase durations across the
	// whole grid; see Request.Trace.
	Trace *obs.Trace

	// Ctx, when non-nil, bounds the whole grid; see Request.Ctx.
	Ctx context.Context
}

// SweepCell is one grid cell: the objective solved on one tariff.
type SweepCell struct {
	Key
	DatasetSize units.DataSize
	Rec         core.Recommendation
}

// Sweep is the solved grid, ordered by provider, instance type, fleet.
type Sweep struct {
	// Scenario echoes the solved objective.
	Scenario string
	// Cells is the full grid.
	Cells []SweepCell
	// Best is the winning cell's key under the scenario's ranking (the
	// same rule Run's winners use).
	Best Key
	// Skipped lists configurations dropped because the provider does not
	// offer the instance type.
	Skipped []Key
	// Degraded reports whether any cell's search stopped at the request
	// deadline with its best incumbent (see SweepRequest.Ctx); degraded
	// sweeps must not be memoized.
	Degraded bool
}

// canonSweepScenario validates/derives the single swept objective.
func canonSweepScenario(explicit string, haveBudget, haveLimit bool) (string, error) {
	s := strings.ToLower(strings.TrimSpace(explicit))
	if s == "" {
		switch {
		case haveBudget:
			s = "mv1"
		case haveLimit:
			s = "mv2"
		default:
			s = "mv3"
		}
	}
	switch s {
	case "mv1", "mv2", "mv3":
		return s, nil
	default:
		return "", fmt.Errorf("compare: unknown sweep scenario %q (want mv1, mv2 or mv3)", explicit)
	}
}

// normalize validates the request and applies every default, reusing the
// comparison's request normalization for the shared grid fields.
func (r SweepRequest) normalize() (normalized, string, error) {
	scenario, err := canonSweepScenario(r.Scenario, r.Budget > 0, r.Limit > 0)
	if err != nil {
		return normalized{}, "", err
	}
	n, err := Request{
		Providers:         r.Providers,
		InstanceTypes:     r.InstanceTypes,
		FleetSizes:        r.FleetSizes,
		Workload:          r.Workload,
		FactRows:          r.FactRows,
		Months:            r.Months,
		CandidateBudget:   r.CandidateBudget,
		MaintenanceRuns:   r.MaintenanceRuns,
		UpdateRatio:       r.UpdateRatio,
		MaintenancePolicy: r.MaintenancePolicy,
		JobOverhead:       r.JobOverhead,
		Solver:            r.Solver,
		Seed:              r.Seed,
		Scenarios:         []string{scenario},
		Budget:            r.Budget,
		Limit:             r.Limit,
		Alpha:             r.Alpha,
		BreakEvenSteps:    -1, // the sweep has no budget sub-sweep
		Workers:           r.Workers,
		Trace:             r.Trace,
		Ctx:               r.Ctx,
	}.normalize()
	if err != nil {
		return normalized{}, "", err
	}
	return n, scenario, nil
}

// RunSweep solves the grid on a bounded worker pool. The
// pricing-invariant structure is built once; every cell is a tariff
// re-bind plus one scenario solve. The result is deterministic for
// identical requests regardless of worker count or scheduling.
func RunSweep(req SweepRequest) (*Sweep, error) {
	n, scenario, err := req.normalize()
	if err != nil {
		return nil, err
	}
	keys, providers, skipped := n.cells()
	if len(keys) == 0 {
		return nil, fmt.Errorf("compare: no runnable configurations (every provider × instance pairing was skipped)")
	}
	shared, err := n.shared()
	if err != nil {
		return nil, err
	}

	cells := make([]SweepCell, len(keys))
	errs := make([]error, len(keys))
	fanOut(n.Workers, len(keys), func(i int) {
		if n.Ctx != nil && n.Ctx.Err() != nil {
			errs[i] = n.Ctx.Err()
			return
		}
		cells[i], errs[i] = n.solveSweepCell(shared, scenario, keys[i], providers[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("compare: %s: %w", keys[i], err)
		}
	}

	sw := &Sweep{Scenario: scenario, Cells: cells, Skipped: skipped}
	for _, c := range cells {
		if c.Rec.Selection.Degraded {
			sw.Degraded = true
			break
		}
	}
	best := Winner{}
	first := true
	for _, c := range cells {
		w := Winner{
			Scenario: scenario,
			Key:      c.Key,
			Time:     c.Rec.Selection.Time,
			Cost:     c.Rec.Selection.Bill.Total(),
			Feasible: c.Rec.Selection.Feasible,
		}
		if first || better(scenario, n.Alpha, w, best) {
			best, first = w, false
		}
	}
	sw.Best = best.Key
	return sw, nil
}

// solveSweepCell re-prices the shared structure for one cell and solves
// the swept objective.
func (n normalized) solveSweepCell(shared *core.Shared, scenario string, k Key, prov pricing.Provider) (SweepCell, error) {
	adv, err := shared.Advisor(prov, k.InstanceType, k.Instances)
	if err != nil {
		return SweepCell{}, err
	}
	var rec core.Recommendation
	switch scenario {
	case "mv1":
		rec, err = adv.AdviseBudget(n.Budget)
	case "mv2":
		rec, err = adv.AdviseDeadline(n.Limit)
	default: // mv3
		rec, err = adv.AdviseTradeoff(n.Alpha)
	}
	if err != nil {
		return SweepCell{}, err
	}
	return SweepCell{Key: k, DatasetSize: core.DatasetSizeOf(adv), Rec: rec}, nil
}

// Render produces the human-readable sweep report: the full grid with
// the bill decomposed per cell (compute/storage/transfer — what is
// price), plus the winner line.
func (s *Sweep) Render() string {
	var sb strings.Builder
	t := report.NewTable(fmt.Sprintf("scenario %s — tariff grid", s.Scenario),
		"configuration", "workload time", "total cost", "compute", "storage", "transfer", "feasible", "views")
	for _, c := range s.Cells {
		bill := c.Rec.Selection.Bill
		t.AddRow(c.Key.String(),
			fmt.Sprintf("%.3fh", c.Rec.Selection.Time.Hours()),
			bill.Total(),
			bill.Compute.Total(),
			bill.Storage,
			bill.Transfer,
			c.Rec.Selection.Feasible,
			len(c.Rec.Selection.Points))
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "best configuration: %s\n", s.Best)
	if len(s.Skipped) > 0 {
		names := make([]string, len(s.Skipped))
		for i, k := range s.Skipped {
			names[i] = k.String()
		}
		fmt.Fprintf(&sb, "skipped (instance type not offered): %s\n", strings.Join(names, ", "))
	}
	return sb.String()
}
