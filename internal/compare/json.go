package compare

import (
	"fmt"
	"slices"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// RequestJSON is the wire form of Request, as accepted by POST
// /v1/compare. It embeds the advise ConfigJSON for the shared problem
// fields (fact_rows, months, workload, ...); the per-configuration
// fields (provider, instance_type, instances) are replaced by the
// fan-out lists and must be left empty.
type RequestJSON struct {
	// Scenarios selects the objectives ("mv1", "mv2", "mv3", "pareto");
	// empty derives the set from the parameters given (see Request).
	Scenarios []string `json:"scenarios,omitempty"`
	// Budget is the MV1 spending limit ("$25.00" or a number of dollars).
	Budget *money.Money `json:"budget,omitempty"`
	// Limit is the MV2 response-time limit as a Go duration ("4h").
	Limit string `json:"limit,omitempty"`
	// Alpha is the MV3 weight on time in [0,1]; default 0.5.
	Alpha *float64 `json:"alpha,omitempty"`
	// Steps is the per-configuration pareto sweep resolution; default 11.
	Steps int `json:"steps,omitempty"`

	// Providers names built-in tariffs; empty means the full catalog.
	Providers []string `json:"providers,omitempty"`
	// InstanceTypes lists configurations to try per provider; default
	// ["small"].
	InstanceTypes []string `json:"instance_types,omitempty"`
	// FleetSizes lists cluster sizes to try; default [5].
	FleetSizes []int `json:"fleet_sizes,omitempty"`
	// BreakEvenSteps is the mv1 budget-sweep resolution; 0 selects 8,
	// negative disables the sweep.
	BreakEvenSteps int `json:"break_even_steps,omitempty"`

	core.ConfigJSON
}

// Normalize canonicalizes the request in place, exactly as the advise
// path does: defaults applied, scenario set resolved and ordered,
// provider/instance/fleet lists sorted and deduplicated, the workload
// rewritten in explicit form. Two spellings of the same comparison
// normalize to identical structs, which is what the server's cache keys
// rely on.
func (rj *RequestJSON) Normalize() error {
	if err := normalizeGrid(&rj.ConfigJSON, &rj.Providers, &rj.InstanceTypes, &rj.FleetSizes); err != nil {
		return err
	}

	// Scenario set: derive, validate, canonicalize order (shared with the
	// native Request path).
	var err error
	rj.Scenarios, err = canonScenarios(rj.Scenarios, rj.Budget != nil, rj.Limit != "")
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, s := range rj.Scenarios {
		want[s] = true
	}

	// Scenario parameters: validate what is needed, zero what is not (so
	// irrelevant parameters cannot fragment the cache).
	if want["mv1"] {
		if rj.Budget == nil {
			return fmt.Errorf("compare: budget required for scenario mv1")
		}
		if *rj.Budget <= 0 {
			return fmt.Errorf("compare: non-positive budget %v", *rj.Budget)
		}
		if rj.BreakEvenSteps == 0 {
			rj.BreakEvenSteps = defaultBreakEvenSteps
		}
		if rj.BreakEvenSteps < 0 {
			rj.BreakEvenSteps = -1
		}
	} else {
		rj.Budget = nil
		rj.BreakEvenSteps = 0
	}
	if want["mv2"] {
		if rj.Limit == "" {
			return fmt.Errorf("compare: limit required for scenario mv2")
		}
		d, err := time.ParseDuration(rj.Limit)
		if err != nil {
			return fmt.Errorf("compare: limit: %v", err)
		}
		if d <= 0 {
			return fmt.Errorf("compare: non-positive limit %v", d)
		}
		rj.Limit = d.String()
	} else {
		rj.Limit = ""
	}
	if want["mv3"] {
		if rj.Alpha == nil {
			a := defaultAlpha
			rj.Alpha = &a
		}
		if *rj.Alpha < 0 || *rj.Alpha > 1 {
			return fmt.Errorf("compare: alpha %g out of [0,1]", *rj.Alpha)
		}
	} else {
		rj.Alpha = nil
	}
	if want["pareto"] {
		if rj.Steps == 0 {
			rj.Steps = defaultParetoSteps
		}
		if rj.Steps < 2 {
			return fmt.Errorf("compare: pareto needs at least 2 steps, got %d", rj.Steps)
		}
	} else {
		rj.Steps = 0
	}

	// Shared problem fields: reuse the advise canonicalization, then strip
	// the per-configuration fields it defaulted.
	if err := rj.ConfigJSON.Normalize(); err != nil {
		return err
	}
	rj.ConfigJSON.Provider = ""
	rj.ConfigJSON.InstanceType = ""
	rj.ConfigJSON.Instances = 0
	return nil
}

// Configs returns the size of the fan-out grid implied by a normalized
// request — what server-side ceilings are checked against.
func (rj RequestJSON) Configs() int {
	return len(rj.Providers) * len(rj.InstanceTypes) * len(rj.FleetSizes)
}

// Resolve converts an already-normalized wire request into a Request
// ready for Run.
func (rj RequestJSON) Resolve() (Request, error) {
	req := Request{
		InstanceTypes:   rj.InstanceTypes,
		FleetSizes:      rj.FleetSizes,
		FactRows:        rj.FactRows,
		Months:          rj.Months,
		CandidateBudget: rj.CandidateBudget,
		MaintenanceRuns: rj.MaintenanceRuns,
		UpdateRatio:     rj.UpdateRatio,
		Scenarios:       rj.Scenarios,
		Steps:           rj.Steps,
		BreakEvenSteps:  rj.BreakEvenSteps,
		Solver:          rj.Solver,
		Seed:            rj.Seed,
	}
	var err error
	req.Providers, req.Workload, req.MaintenancePolicy, req.JobOverhead, err = resolveGrid(rj.Providers, rj.ConfigJSON)
	if err != nil {
		return Request{}, err
	}
	if rj.Budget != nil {
		req.Budget = *rj.Budget
	}
	if rj.Limit != "" {
		d, err := time.ParseDuration(rj.Limit)
		if err != nil {
			return Request{}, fmt.Errorf("compare: limit: %v", err)
		}
		req.Limit = d
	}
	if rj.Alpha != nil {
		req.Alpha = *rj.Alpha
	}
	return req, nil
}

// normalizeGrid canonicalizes the grid half every compare-family wire
// request shares — the advise-style singular fields rejected, providers
// defaulted to the full catalog and validated, instance types and fleet
// sizes defaulted, all lists sorted and deduplicated. One implementation
// serves RequestJSON and SweepRequestJSON, so /v1/compare and /v1/sweep
// cannot drift on grid semantics.
func normalizeGrid(cj *core.ConfigJSON, providers *[]string, instanceTypes *[]string, fleetSizes *[]int) error {
	if cj.Provider != "" || len(cj.ProviderSpec) > 0 {
		return fmt.Errorf("compare: use \"providers\" (a list) instead of the advise %q field", "provider")
	}
	if cj.InstanceType != "" {
		return fmt.Errorf("compare: use \"instance_types\" (a list) instead of the advise %q field", "instance_type")
	}
	if cj.Instances != 0 {
		return fmt.Errorf("compare: use \"fleet_sizes\" (a list) instead of the advise %q field", "instances")
	}
	if len(*providers) == 0 {
		*providers = pricing.ProviderNames()
	}
	*providers = dedupeSorted(*providers)
	for _, name := range *providers {
		if !pricing.Exists(name) {
			return fmt.Errorf("pricing: unknown provider %q (have %v)", name, pricing.ProviderNames())
		}
	}
	if len(*instanceTypes) == 0 {
		*instanceTypes = []string{defaultInstanceType}
	}
	*instanceTypes = dedupeSorted(*instanceTypes)
	if len(*fleetSizes) == 0 {
		*fleetSizes = []int{defaultFleetSize}
	}
	*fleetSizes = dedupeSortedInts(*fleetSizes)
	for _, f := range *fleetSizes {
		if f < 1 {
			return fmt.Errorf("compare: fleet size %d < 1", f)
		}
	}
	return nil
}

// resolveGrid resolves the normalized shared fields both wire forms
// carry: provider lookups, maintenance policy, job overhead, and the
// workload against the sales lattice.
func resolveGrid(names []string, cj core.ConfigJSON) ([]pricing.Provider, workload.Workload, views.MaintenancePolicy, time.Duration, error) {
	var provs []pricing.Provider
	for _, name := range names {
		p, err := pricing.Lookup(name)
		if err != nil {
			return nil, workload.Workload{}, 0, 0, err
		}
		provs = append(provs, p)
	}
	var policy views.MaintenancePolicy
	if cj.MaintenancePolicy == "deferred" {
		policy = views.DeferredMaintenance
	}
	var overhead time.Duration
	if cj.JobOverhead != "" {
		d, err := time.ParseDuration(cj.JobOverhead)
		if err != nil {
			return nil, workload.Workload{}, 0, 0, fmt.Errorf("compare: job_overhead: %v", err)
		}
		overhead = d
	}
	l, err := lattice.New(schema.Sales(), cj.FactRows)
	if err != nil {
		return nil, workload.Workload{}, 0, 0, err
	}
	w, err := workload.FromJSON(l, cj.Workload)
	if err != nil {
		return nil, workload.Workload{}, 0, 0, err
	}
	return provs, w, policy, overhead, nil
}

// ScenarioResultJSON is one matrix cell on the wire.
type ScenarioResultJSON struct {
	Scenario       string                  `json:"scenario"`
	Recommendation core.RecommendationJSON `json:"recommendation"`
}

// ConfigResultJSON is one matrix row on the wire.
type ConfigResultJSON struct {
	Key
	DatasetSize string                 `json:"dataset_size"`
	Results     []ScenarioResultJSON   `json:"results,omitempty"`
	Pareto      []core.ParetoPointJSON `json:"pareto,omitempty"`
}

// WinnerJSON is a per-scenario winner on the wire.
type WinnerJSON struct {
	Scenario string `json:"scenario"`
	Key
	Time     string      `json:"time"`
	Hours    float64     `json:"time_hours"`
	Cost     money.Money `json:"cost"`
	Feasible bool        `json:"feasible"`
}

// ParetoEntryJSON is one global frontier point on the wire.
type ParetoEntryJSON struct {
	Key
	core.ParetoPointJSON
}

// FlipJSON is one break-even flip on the wire.
type FlipJSON struct {
	Budget money.Money `json:"budget"`
	From   Key         `json:"from"`
	To     Key         `json:"to"`
}

// BreakEvenJSON is the budget sweep on the wire.
type BreakEvenJSON struct {
	Budgets []money.Money `json:"budgets"`
	Winners []Key         `json:"winners"`
	Flips   []FlipJSON    `json:"flips"`
}

// ComparisonJSON is the body of a successful POST /v1/compare.
type ComparisonJSON struct {
	Scenarios []string           `json:"scenarios"`
	Configs   []ConfigResultJSON `json:"configs"`
	Winners   []WinnerJSON       `json:"winners,omitempty"`
	Pareto    []ParetoEntryJSON  `json:"pareto,omitempty"`
	BreakEven *BreakEvenJSON     `json:"break_even,omitempty"`
	Skipped   []Key              `json:"skipped,omitempty"`
	// Degraded marks a comparison with at least one deadline-degraded
	// cell; omitted when false so pre-deadline bodies are byte-identical.
	Degraded bool `json:"degraded,omitempty"`
	// Report is the human-readable rendering (Comparison.Render).
	Report string `json:"report"`
}

// JSON renders the comparison in wire form.
func (c *Comparison) JSON() ComparisonJSON {
	out := ComparisonJSON{
		Scenarios: c.Scenarios,
		Skipped:   c.Skipped,
		Degraded:  c.Degraded,
		Report:    c.Render(),
	}
	for _, cfg := range c.Configs {
		cj := ConfigResultJSON{
			Key:         cfg.Key,
			DatasetSize: cfg.DatasetSize.String(),
			Pareto:      core.ParetoJSON(cfg.Pareto),
		}
		if len(cfg.Pareto) == 0 {
			cj.Pareto = nil
		}
		for _, r := range cfg.Results {
			cj.Results = append(cj.Results, ScenarioResultJSON{Scenario: r.Scenario, Recommendation: r.Rec.JSON()})
		}
		out.Configs = append(out.Configs, cj)
	}
	for _, w := range c.Winners {
		out.Winners = append(out.Winners, WinnerJSON{
			Scenario: w.Scenario,
			Key:      w.Key,
			Time:     w.Time.String(),
			Hours:    w.Time.Hours(),
			Cost:     w.Cost,
			Feasible: w.Feasible,
		})
	}
	for _, p := range c.Pareto {
		out.Pareto = append(out.Pareto, ParetoEntryJSON{
			Key: p.Key,
			ParetoPointJSON: core.ParetoPointJSON{
				Alpha:    p.Point.Alpha,
				Time:     p.Point.Time.String(),
				Hours:    p.Point.Time.Hours(),
				Cost:     p.Point.Cost,
				Views:    p.Point.Views,
				Degraded: p.Point.Degraded,
			},
		})
	}
	if c.BreakEven != nil {
		be := &BreakEvenJSON{Budgets: c.BreakEven.Budgets, Winners: c.BreakEven.Winners}
		for _, f := range c.BreakEven.Flips {
			be.Flips = append(be.Flips, FlipJSON{Budget: f.Budget, From: f.From, To: f.To})
		}
		out.BreakEven = be
	}
	return out
}

func dedupeSorted(xs []string) []string {
	out := append([]string(nil), xs...)
	slices.Sort(out)
	return slices.Compact(out)
}

func dedupeSortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	slices.Sort(out)
	return slices.Compact(out)
}
