package compare

import (
	"encoding/json"
	"testing"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/workload"
)

const testRows = 10_000_000 // keep lattice math fast

func testWorkload(t testing.TB, n int) workload.Workload {
	t.Helper()
	l, err := lattice.New(schema.Sales(), testRows)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Sales(l, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	return w
}

func testRequest(t testing.TB) Request {
	return Request{
		Workload:  testWorkload(t, 5),
		FactRows:  testRows,
		Scenarios: []string{"mv1", "mv2", "mv3", "pareto"},
		Budget:    money.FromDollars(25),
		Limit:     4 * time.Hour,
		Steps:     5,
	}
}

func TestRunFullCatalog(t *testing.T) {
	comp, err := Run(testRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	// Default instance type "small" is offered by every built-in provider.
	if got, want := len(comp.Configs), len(pricing.ProviderNames()); got != want {
		t.Fatalf("configs = %d, want %d (one per catalog provider)", got, want)
	}
	for i := 1; i < len(comp.Configs); i++ {
		if !comp.Configs[i-1].Key.less(comp.Configs[i].Key) {
			t.Errorf("configs not sorted: %v before %v", comp.Configs[i-1].Key, comp.Configs[i].Key)
		}
	}
	if got := len(comp.Winners); got != 3 {
		t.Fatalf("winners = %d, want 3 (mv1, mv2, mv3)", got)
	}
	for _, w := range comp.Winners {
		if w.Provider == "" {
			t.Errorf("scenario %s has no winner", w.Scenario)
		}
	}
	if len(comp.Pareto) == 0 {
		t.Error("global pareto frontier is empty")
	}
	if comp.BreakEven == nil {
		t.Fatal("break-even sweep missing despite mv1 budget")
	}
	if got := len(comp.BreakEven.Budgets); got != 8 {
		t.Errorf("break-even budgets = %d, want default 8", got)
	}
	if len(comp.BreakEven.Winners) != len(comp.BreakEven.Budgets) {
		t.Error("one winner per sweep budget expected")
	}
	if comp.Render() == "" {
		t.Error("empty render")
	}
}

// The comparison's per-scenario winners must agree with what independent
// single-provider advisors say: for every configuration the matrix entry
// equals a fresh core.New solve, and the winner is the best matrix entry
// under the scenario's ranking.
func TestWinnersAgreeWithIndependentAdvisors(t *testing.T) {
	req := testRequest(t)
	req.Scenarios = []string{"mv1", "mv2", "mv3"}
	req.BreakEvenSteps = -1
	comp, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	type metrics struct {
		time     time.Duration
		cost     money.Money
		feasible bool
	}
	independent := map[Key]map[string]metrics{}
	for _, name := range pricing.ProviderNames() {
		prov, err := pricing.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		adv, err := core.New(core.Config{
			Provider:     &prov,
			InstanceType: "small",
			Instances:    5,
			FactRows:     testRows,
			Workload:     req.Workload,
		})
		if err != nil {
			t.Fatal(err)
		}
		k := Key{Provider: name, InstanceType: "small", Instances: 5}
		independent[k] = map[string]metrics{}
		for _, s := range req.Scenarios {
			var rec core.Recommendation
			switch s {
			case "mv1":
				rec, err = adv.AdviseBudget(req.Budget)
			case "mv2":
				rec, err = adv.AdviseDeadline(req.Limit)
			case "mv3":
				rec, err = adv.AdviseTradeoff(0.5)
			}
			if err != nil {
				t.Fatal(err)
			}
			independent[k][s] = metrics{rec.Selection.Time, rec.Selection.Bill.Total(), rec.Selection.Feasible}
		}
	}
	// Matrix entries match the independent solves exactly.
	for _, cfg := range comp.Configs {
		for _, r := range cfg.Results {
			want, ok := independent[cfg.Key][r.Scenario]
			if !ok {
				t.Fatalf("no independent solve for %v %s", cfg.Key, r.Scenario)
			}
			got := metrics{r.Rec.Selection.Time, r.Rec.Selection.Bill.Total(), r.Rec.Selection.Feasible}
			if got != want {
				t.Errorf("%v %s: compare %+v, independent advisor %+v", cfg.Key, r.Scenario, got, want)
			}
		}
	}
	// Winners are best under each scenario's ranking over the independent
	// solves.
	for _, w := range comp.Winners {
		for k, byScenario := range independent {
			m := byScenario[w.Scenario]
			other := Winner{Scenario: w.Scenario, Key: k, Time: m.time, Cost: m.cost, Feasible: m.feasible}
			if better(w.Scenario, 0.5, other, w) {
				t.Errorf("scenario %s: winner %v beaten by %v", w.Scenario, w.Key, k)
			}
		}
	}
}

// The merged report must not depend on the order providers are listed,
// or on how many workers solve the grid.
func TestRunOrderAndWorkerIndependence(t *testing.T) {
	base := testRequest(t)
	cat := pricing.Catalog()
	forward := []pricing.Provider{cat["aws-2012"], cat["cumulus"], cat["meridian"], cat["nimbus"], cat["stratus"]}
	reverse := []pricing.Provider{cat["stratus"], cat["nimbus"], cat["meridian"], cat["cumulus"], cat["aws-2012"]}

	var got []ComparisonJSON
	for _, variant := range []struct {
		providers []pricing.Provider
		workers   int
	}{
		{forward, 1},
		{reverse, 1},
		{forward, 8},
		{reverse, 3},
	} {
		req := base
		req.Providers = variant.providers
		req.Workers = variant.workers
		comp, err := Run(req)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, comp.JSON())
	}
	want, err := json.Marshal(got[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		b, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(want) {
			t.Errorf("variant %d produced a different comparison", i)
		}
	}
}

func TestRunSkipsUnofferedInstanceTypes(t *testing.T) {
	req := testRequest(t)
	req.Scenarios = []string{"mv3"}
	req.InstanceTypes = []string{"micro"} // nimbus and meridian have no micro
	comp, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Skipped) != 2 {
		t.Errorf("skipped = %v, want nimbus and meridian micro configs", comp.Skipped)
	}
	if got, want := len(comp.Configs), len(pricing.ProviderNames())-2; got != want {
		t.Errorf("configs = %d, want %d", got, want)
	}
}

// Run must not mutate the caller's request: scenario canonicalization
// and list dedupe work on fresh slices.
func TestRunDoesNotMutateRequest(t *testing.T) {
	req := testRequest(t)
	req.Scenarios = []string{"mv3", "mv3", "mv1"}
	req.InstanceTypes = []string{"small", "small"}
	req.FleetSizes = []int{5, 5}
	req.BreakEvenSteps = -1
	comp, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := req.Scenarios; len(got) != 3 || got[0] != "mv3" || got[1] != "mv3" || got[2] != "mv1" {
		t.Errorf("caller's Scenarios mutated: %v", got)
	}
	if len(req.InstanceTypes) != 2 || len(req.FleetSizes) != 2 {
		t.Errorf("caller's lists mutated: %v %v", req.InstanceTypes, req.FleetSizes)
	}
	// Duplicate grid entries collapse instead of doubling the matrix.
	if got, want := len(comp.Configs), len(pricing.ProviderNames()); got != want {
		t.Errorf("configs = %d, want %d (duplicates collapsed)", got, want)
	}
	if got := comp.Scenarios; len(got) != 2 || got[0] != "mv1" || got[1] != "mv3" {
		t.Errorf("canonical scenarios = %v, want [mv1 mv3]", got)
	}
}

func TestRunValidation(t *testing.T) {
	w := testWorkload(t, 3)
	cases := map[string]Request{
		"mv1 without budget":  {Workload: w, FactRows: testRows, Scenarios: []string{"mv1"}},
		"mv2 without limit":   {Workload: w, FactRows: testRows, Scenarios: []string{"mv2"}},
		"unknown scenario":    {Workload: w, FactRows: testRows, Scenarios: []string{"warp"}},
		"bad alpha":           {Workload: w, FactRows: testRows, Scenarios: []string{"mv3"}, Alpha: 1.5},
		"bad fleet":           {Workload: w, FactRows: testRows, Scenarios: []string{"mv3"}, FleetSizes: []int{0}},
		"no runnable configs": {Workload: w, FactRows: testRows, Scenarios: []string{"mv3"}, InstanceTypes: []string{"mega"}},
	}
	for name, req := range cases {
		if _, err := Run(req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Break-even sweep: winners are recorded per budget, and flips only occur
// between distinct winners. With a generous budget range the largest
// budget's winner must match the mv1 matrix winner at the same budget
// when that budget equals the request budget.
func TestBreakEvenSweep(t *testing.T) {
	req := testRequest(t)
	req.Scenarios = []string{"mv1"}
	req.BreakEvenSteps = 5
	comp, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	be := comp.BreakEven
	if be == nil {
		t.Fatal("no break-even sweep")
	}
	if len(be.Budgets) != 5 || len(be.Winners) != 5 {
		t.Fatalf("sweep size = %d/%d, want 5/5", len(be.Budgets), len(be.Winners))
	}
	if be.Budgets[0] != req.Budget.DivInt(2) || be.Budgets[4] != req.Budget.MulInt(2) {
		t.Errorf("sweep range = [%v, %v], want [budget/2, 2·budget]", be.Budgets[0], be.Budgets[4])
	}
	for _, f := range be.Flips {
		if f.From == f.To {
			t.Errorf("flip with identical endpoints: %+v", f)
		}
	}
}

func TestRequestJSONNormalizeCanonical(t *testing.T) {
	// Two spellings of the same comparison normalize identically.
	a := RequestJSON{}
	b := RequestJSON{
		Providers:     append([]string(nil), pricing.ProviderNames()...),
		InstanceTypes: []string{"small", "small"},
		FleetSizes:    []int{5, 5},
	}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("normal forms differ:\n%s\n%s", ja, jb)
	}
	// The advise per-configuration fields are rejected.
	for name, rj := range map[string]RequestJSON{
		"provider":      {ConfigJSON: core.ConfigJSON{Provider: "aws-2012"}},
		"instance_type": {ConfigJSON: core.ConfigJSON{InstanceType: "small"}},
		"instances":     {ConfigJSON: core.ConfigJSON{Instances: 5}},
	} {
		if err := rj.Normalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRequestJSONResolveRoundTrip(t *testing.T) {
	budget := money.FromDollars(25)
	rj := RequestJSON{Budget: &budget, Limit: "4h"}
	rj.ConfigJSON.FactRows = testRows
	rj.ConfigJSON.Queries = 5
	if err := rj.Normalize(); err != nil {
		t.Fatal(err)
	}
	req, err := rj.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Providers) != len(pricing.ProviderNames()) {
		t.Errorf("providers = %d, want full catalog", len(req.Providers))
	}
	if req.Limit != 4*time.Hour || req.Budget != budget {
		t.Errorf("params = %v/%v", req.Limit, req.Budget)
	}
	comp, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	cj := comp.JSON()
	if len(cj.Configs) != len(comp.Configs) || cj.Report == "" {
		t.Error("wire form incomplete")
	}
	if _, err := json.Marshal(cj); err != nil {
		t.Fatal(err)
	}
}
