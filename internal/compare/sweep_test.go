package compare

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/views"
)

func sweepRequest(t testing.TB) SweepRequest {
	return SweepRequest{
		Workload:   testWorkload(t, 10),
		FactRows:   testRows,
		Scenario:   "mv1",
		Budget:     money.FromDollars(25),
		FleetSizes: []int{3, 5},
	}
}

func TestSweepFullCatalog(t *testing.T) {
	sw, err := RunSweep(sweepRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(pricing.ProviderNames()) * 2
	if len(sw.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(sw.Cells), wantCells)
	}
	if sw.Scenario != "mv1" {
		t.Errorf("scenario = %q", sw.Scenario)
	}
	var zero Key
	if sw.Best == zero {
		t.Error("no best configuration picked")
	}
	// Deterministically ordered by provider, instance, fleet.
	for i := 1; i < len(sw.Cells); i++ {
		if !sw.Cells[i-1].Key.less(sw.Cells[i].Key) {
			t.Errorf("cells out of order at %d: %v !< %v", i, sw.Cells[i-1].Key, sw.Cells[i].Key)
		}
	}
	if out := sw.Render(); out == "" {
		t.Error("empty render")
	}
}

// TestSweepCellsMatchIndependentAdvisors pins the kernel re-pricing to
// the per-config ground truth: every sweep cell must equal a fresh
// advisor built from scratch for that tariff.
func TestSweepCellsMatchIndependentAdvisors(t *testing.T) {
	req := sweepRequest(t)
	req.Providers = []pricing.Provider{mustLookup(t, "aws-2012"), mustLookup(t, "stratus")}
	sw, err := RunSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sw.Cells {
		prov := mustLookup(t, c.Provider)
		adv, err := core.New(core.Config{
			Provider:     &prov,
			InstanceType: c.InstanceType,
			Instances:    c.Instances,
			FactRows:     req.FactRows,
			Workload:     req.Workload,
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := adv.AdviseBudget(req.Budget)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c.Rec, want) {
			t.Errorf("%s: sweep cell diverged from fresh advisor:\ngot  %+v\nwant %+v", c.Key, c.Rec, want)
		}
	}
}

func mustLookup(t testing.TB, name string) pricing.Provider {
	t.Helper()
	p, err := pricing.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSweepWorkerIndependence(t *testing.T) {
	req := sweepRequest(t)
	seq := req
	seq.Workers = 1
	par := req
	par.Workers = 8
	a, err := RunSweep(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(par)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a.JSON())
	bj, _ := json.Marshal(b.JSON())
	if string(aj) != string(bj) {
		t.Error("sweep result depends on worker count")
	}
}

func TestSweepScenarioDerivation(t *testing.T) {
	req := sweepRequest(t)
	req.Scenario = ""
	sw, err := RunSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Scenario != "mv1" {
		t.Errorf("budget-only request derived %q, want mv1", sw.Scenario)
	}
	req = sweepRequest(t)
	req.Scenario = ""
	req.Budget = 0
	req.Limit = 4 * time.Hour
	sw, err = RunSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Scenario != "mv2" {
		t.Errorf("limit-only request derived %q, want mv2", sw.Scenario)
	}
	req = sweepRequest(t)
	req.Scenario = ""
	req.Budget = 0
	sw, err = RunSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Scenario != "mv3" {
		t.Errorf("bare request derived %q, want mv3", sw.Scenario)
	}
}

func TestSweepValidation(t *testing.T) {
	req := sweepRequest(t)
	req.Scenario = "pareto"
	if _, err := RunSweep(req); err == nil {
		t.Error("pareto accepted as a sweep scenario")
	}
	req = sweepRequest(t)
	req.Budget = 0
	req.Scenario = "mv1"
	if _, err := RunSweep(req); err == nil {
		t.Error("mv1 sweep without budget accepted")
	}
	req = sweepRequest(t)
	req.FleetSizes = []int{0}
	if _, err := RunSweep(req); err == nil {
		t.Error("zero fleet size accepted")
	}
	req = sweepRequest(t)
	req.Workload.Queries = nil
	if _, err := RunSweep(req); err == nil {
		t.Error("empty workload accepted")
	}
}

// TestSweepDeferredPolicy exercises the grid under the second
// maintenance policy (the deferred path routes through the kernel's
// group-served accounting).
func TestSweepDeferredPolicy(t *testing.T) {
	req := sweepRequest(t)
	req.MaintenancePolicy = views.DeferredMaintenance
	sw, err := RunSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sw.Cells {
		prov := mustLookup(t, c.Provider)
		adv, err := core.New(core.Config{
			Provider:          &prov,
			InstanceType:      c.InstanceType,
			Instances:         c.Instances,
			FactRows:          req.FactRows,
			Workload:          req.Workload,
			MaintenancePolicy: views.DeferredMaintenance,
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := adv.AdviseBudget(req.Budget)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c.Rec, want) {
			t.Errorf("%s: deferred sweep cell diverged from fresh advisor", c.Key)
		}
	}
}

func TestSweepRequestJSONNormalizeCanonical(t *testing.T) {
	a := SweepRequestJSON{}
	budget := money.FromDollars(25)
	a.Budget = &budget
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.Scenario != "mv1" {
		t.Errorf("derived scenario %q", a.Scenario)
	}
	if len(a.Providers) != len(pricing.ProviderNames()) {
		t.Errorf("providers not defaulted: %v", a.Providers)
	}
	// Normalization is a fixed point.
	b := a
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("normalize not idempotent:\n%s\n%s", aj, bj)
	}
	// Irrelevant parameters are zeroed.
	alpha := 0.7
	c := SweepRequestJSON{Scenario: "mv1", Alpha: &alpha, Limit: "4h"}
	c.Budget = &budget
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Alpha != nil || c.Limit != "" {
		t.Errorf("irrelevant parameters survived: alpha=%v limit=%q", c.Alpha, c.Limit)
	}
	// Advise-style singular fields are rejected.
	d := SweepRequestJSON{}
	d.Budget = &budget
	d.ConfigJSON.Provider = "aws-2012"
	if err := d.Normalize(); err == nil {
		t.Error("singular provider field accepted")
	}
}

func TestSweepRequestJSONResolveRoundTrip(t *testing.T) {
	rj := SweepRequestJSON{Scenario: "mv2", Limit: "4h", FleetSizes: []int{3, 5}, Providers: []string{"aws-2012"}}
	if err := rj.Normalize(); err != nil {
		t.Fatal(err)
	}
	req, err := rj.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sw, err := RunSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(sw.Cells))
	}
	if sw.Scenario != "mv2" {
		t.Errorf("scenario %q", sw.Scenario)
	}
	for _, c := range sw.Cells {
		if !c.Rec.Selection.Feasible {
			t.Errorf("%s infeasible at a 4h limit", c.Key)
		}
	}
}
