package compare

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// TestRunCancelledReturnsPromptly pins the deadline-propagation
// contract for the compare fan-out: a dead context stops the per-cell
// workers at cell boundaries and the whole run unwinds promptly with
// the context's error instead of grinding through the full grid.
func TestRunCancelledReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := testRequest(t)
	req.Ctx = ctx

	start := time.Now()
	_, err := Run(req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled compare run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancelled compare took %v to unwind, want < 2s", elapsed)
	}
}

// TestSweepCancelledReturnsPromptly is the same contract for the tariff
// sweep grid.
func TestSweepCancelledReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := SweepRequest{
		Workload:   testWorkload(t, 5),
		FactRows:   testRows,
		Scenario:   "mv3",
		FleetSizes: []int{3, 5},
		Ctx:        ctx,
	}

	start := time.Now()
	_, err := RunSweep(req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancelled sweep took %v to unwind, want < 2s", elapsed)
	}
}

// TestRunUnexpiredContextIsByteStable checks the zero-cost half: a
// context that never fires must not change a single byte of the
// comparison relative to a context-free run.
func TestRunUnexpiredContextIsByteStable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()

	base := testRequest(t)
	base.Scenarios = []string{"mv1"}
	withCtx := base
	withCtx.Ctx = ctx

	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(withCtx)
	if err != nil {
		t.Fatal(err)
	}
	if a.Degraded || b.Degraded {
		t.Fatal("undisturbed run marked degraded")
	}
	aj, err := json.Marshal(a.JSON())
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Error("unexpired context changed the comparison bytes")
	}
}
