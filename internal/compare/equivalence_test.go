package compare

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
)

// randomCatalog derives a deterministic set of valid tariff variants
// from a seed: perturbed instance prices and ECUs, storage and egress
// slab rates, and billing granularities over the built-in fixtures'
// shapes.
func randomCatalog(seed int64, n int) []pricing.Provider {
	rng := rand.New(rand.NewSource(seed))
	names := pricing.ProviderNames()
	out := make([]pricing.Provider, 0, n)
	for i := 0; i < n; i++ {
		base, _ := pricing.Lookup(names[rng.Intn(len(names))])
		p := base.Clone()
		p.Name = fmt.Sprintf("rand-%d-%d", seed, i)
		for name, it := range p.Compute.Instances {
			it.PricePerHour = it.PricePerHour.MulFloat(0.25 + 1.5*rng.Float64())
			it.ECU = it.ECU * (0.5 + rng.Float64())
			p.Compute.Instances[name] = it
		}
		for j := range p.Storage.Table.Tiers {
			p.Storage.Table.Tiers[j].PricePerGB = p.Storage.Table.Tiers[j].PricePerGB.MulFloat(0.5 + rng.Float64())
		}
		for j := range p.Transfer.Egress.Tiers {
			p.Transfer.Egress.Tiers[j].PricePerGB = p.Transfer.Egress.Tiers[j].PricePerGB.MulFloat(0.5 + rng.Float64())
		}
		switch rng.Intn(3) {
		case 0:
			p.Compute.Granularity = units.BillPerHour
		case 1:
			p.Compute.Granularity = units.BillPerMinute
		case 2:
			p.Compute.Granularity = units.BillPerSecond
		}
		out = append(out, p)
	}
	return out
}

// TestKernelCompareMatchesPerConfigAdvisors is the comparison kernel's
// acceptance property: across random catalogs, both maintenance
// policies, and both solvers (knapsack and seeded search), every cell of
// compare.Run's matrix — recommendations, pareto frontiers and
// break-even outcomes — must be byte-identical (JSON) and deeply equal
// to what an independent per-config core.New advisor produces, i.e. the
// pre-kernel fan-out.
func TestKernelCompareMatchesPerConfigAdvisors(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, policy := range []views.MaintenancePolicy{views.ImmediateMaintenance, views.DeferredMaintenance} {
			for _, solver := range []string{core.SolverKnapsack, core.SolverSearch} {
				t.Run(fmt.Sprintf("seed%d_policy%d_%s", seed, policy, solver), func(t *testing.T) {
					req := Request{
						Providers:         randomCatalog(seed, 3),
						FleetSizes:        []int{2, 5},
						Workload:          testWorkload(t, 7),
						FactRows:          testRows,
						Scenarios:         []string{"mv1", "mv2", "mv3", "pareto"},
						Budget:            money.FromDollars(10 + float64(seed)*7),
						Limit:             4 * time.Hour,
						Steps:             5,
						BreakEvenSteps:    4,
						MaintenancePolicy: policy,
						Solver:            solver,
						Seed:              seed * 101,
					}
					comp, err := Run(req)
					if err != nil {
						t.Fatal(err)
					}
					for _, cfg := range comp.Configs {
						var prov pricing.Provider
						for _, p := range req.Providers {
							if p.Name == cfg.Provider {
								prov = p.Clone()
							}
						}
						adv, err := core.New(core.Config{
							Provider:          &prov,
							InstanceType:      cfg.InstanceType,
							Instances:         cfg.Instances,
							FactRows:          req.FactRows,
							Workload:          req.Workload,
							MaintenancePolicy: policy,
							Solver:            solver,
							Seed:              req.Seed,
						})
						if err != nil {
							t.Fatal(err)
						}
						for _, sr := range cfg.Results {
							var want core.Recommendation
							switch sr.Scenario {
							case "mv1":
								want, err = adv.AdviseBudget(req.Budget)
							case "mv2":
								want, err = adv.AdviseDeadline(req.Limit)
							case "mv3":
								want, err = adv.AdviseTradeoff(0.5)
							}
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(sr.Rec, want) {
								t.Errorf("%s %s: kernel cell diverged from per-config advisor:\ngot  %+v\nwant %+v",
									cfg.Key, sr.Scenario, sr.Rec, want)
								continue
							}
							// Byte-level: the wire forms must agree too.
							gj, _ := json.Marshal(sr.Rec.JSON())
							wj, _ := json.Marshal(want.JSON())
							if string(gj) != string(wj) {
								t.Errorf("%s %s: wire forms differ", cfg.Key, sr.Scenario)
							}
						}
						wantFront, err := adv.ParetoFront(req.Steps)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(cfg.Pareto, wantFront) {
							t.Errorf("%s: pareto frontier diverged", cfg.Key)
						}
						// Break-even outcomes: the kernel sweep must match the
						// pre-kernel ground truth, Evaluator.SolveMV1 per budget.
						for bi, bo := range cfg.breakEven {
							b := sweepBudgetAt(req.Budget, bi, req.BreakEvenSteps)
							want, err := adv.Ev.SolveMV1(adv.Candidates, b)
							if err != nil {
								t.Fatal(err)
							}
							if bo.time != want.Time || bo.cost != want.Bill.Total() || bo.feasible != want.Feasible {
								t.Errorf("%s budget %v: break-even outcome diverged: got (%v,%v,%v) want (%v,%v,%v)",
									cfg.Key, b, bo.time, bo.cost, bo.feasible,
									want.Time, want.Bill.Total(), want.Feasible)
							}
						}
					}
				})
			}
		}
	}
}

// sweepBudgetAt reproduces normalize()'s break-even budget spacing.
func sweepBudgetAt(budget money.Money, i, steps int) money.Money {
	lo, hi := budget.DivInt(2), budget.MulInt(2)
	frac := float64(i) / float64(steps-1)
	return lo.Add(hi.Sub(lo).MulFloat(frac))
}
