package compare

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSweepRequestNormalize hammers the /v1/sweep wire-request
// canonicalization the server's memoization keys are built from,
// mirroring the ConfigJSON fuzz. The contract: arbitrary JSON never
// panics; whatever Normalize accepts must (a) re-normalize to a fixed
// point, (b) resolve into a runnable SweepRequest, (c) canonicalize
// order- and duplicate-insensitively over the grid lists — two
// spellings of the same sweep must marshal to identical cache keys —
// and (d) keep genuinely different grids on different keys: growing the
// fleet grid must change the canonical form, never collide.
func FuzzSweepRequestNormalize(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"budget":25}`,
		`{"budget":25,"fleet_sizes":[3,5]}`,
		`{"budget":25,"fleet_sizes":[5,3,3]}`,
		`{"limit":"4h","providers":["aws-2012","stratus"]}`,
		`{"scenario":"mv3","alpha":0.25,"instance_types":["small","large"]}`,
		`{"scenario":"mv2","limit":"90m","queries":5,"fact_rows":10000000}`,
		`{"scenario":"pareto"}`,
		`{"budget":25,"provider":"aws-2012"}`,
		`{"budget":25,"fleet_sizes":[0]}`,
		`{"budget":25,"fleet_sizes":[-3]}`,
		`{"budget":-1}`,
		`{"budget":25,"limit":"4h"}`,
		`{"alpha":2}`,
		`{"budget":25,"providers":["nonesuch"]}`,
		`{"budget":25,"instance_types":["small"],"solver":"search","seed":9}`,
		`{"budget":25,"workload":[{"levels":["year","country"],"frequency":30}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var rj SweepRequestJSON
		if err := json.Unmarshal(data, &rj); err != nil {
			return // not JSON at all — the decoder rejects it upstream
		}
		if err := rj.Normalize(); err != nil {
			return // rejected inputs just need to not panic
		}
		first, err := json.Marshal(rj)
		if err != nil {
			t.Fatalf("normalized sweep does not marshal: %v", err)
		}
		if err := rj.Normalize(); err != nil {
			t.Fatalf("re-normalizing an accepted sweep failed: %v\ninput: %s", err, data)
		}
		second, err := json.Marshal(rj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("Normalize is not a fixed point:\nfirst:  %s\nsecond: %s\ninput: %s", first, second, data)
		}
		if _, err := rj.Resolve(); err != nil {
			t.Fatalf("accepted sweep failed to resolve: %v\ninput: %s", err, data)
		}

		// Equal sweeps, different spelling: re-decode the original input
		// and scramble the grid lists (reverse order, duplicate the first
		// element). The canonical form — and therefore the cache key —
		// must come out identical.
		var scrambled SweepRequestJSON
		if err := json.Unmarshal(data, &scrambled); err != nil {
			t.Fatalf("re-decoding accepted input failed: %v", err)
		}
		reverse(scrambled.Providers)
		reverse(scrambled.InstanceTypes)
		reverseInts(scrambled.FleetSizes)
		if len(scrambled.FleetSizes) > 0 {
			scrambled.FleetSizes = append(scrambled.FleetSizes, scrambled.FleetSizes[0])
		}
		if len(scrambled.Providers) > 0 {
			scrambled.Providers = append(scrambled.Providers, scrambled.Providers[0])
		}
		if err := scrambled.Normalize(); err != nil {
			t.Fatalf("scrambled spelling of an accepted sweep was rejected: %v\ninput: %s", err, data)
		}
		scrambledKey, err := json.Marshal(scrambled)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, scrambledKey) {
			t.Fatalf("equal sweeps produced different cache keys:\ncanonical: %s\nscrambled: %s\ninput: %s", first, scrambledKey, data)
		}

		// Unequal grids must not collide: a strictly larger fleet grid is
		// a different sweep and must canonicalize to a different key.
		if rj.FleetSizes[len(rj.FleetSizes)-1] > 1<<30 {
			return // +1 below would overflow into an invalid size
		}
		grown := rj
		grown.FleetSizes = append(append([]int(nil), rj.FleetSizes...), rj.FleetSizes[len(rj.FleetSizes)-1]+1)
		if err := grown.Normalize(); err != nil {
			t.Fatalf("grown grid rejected: %v", err)
		}
		grownKey, err := json.Marshal(grown)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(first, grownKey) {
			t.Fatalf("different grids collided on one cache key: %s\ninput: %s", first, data)
		}
	})
}

func reverse(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
