package compare

import (
	"fmt"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/money"
)

// SweepRequestJSON is the wire form of SweepRequest, as accepted by POST
// /v1/sweep. Like the compare wire form it embeds the advise ConfigJSON
// for the shared problem fields; the per-configuration fields are
// replaced by the grid lists.
type SweepRequestJSON struct {
	// Scenario is the single swept objective: "mv1", "mv2" or "mv3".
	// Empty derives it from the parameters given (see SweepRequest).
	Scenario string `json:"scenario,omitempty"`
	// Budget is the MV1 spending limit ("$25.00" or a number of dollars).
	Budget *money.Money `json:"budget,omitempty"`
	// Limit is the MV2 response-time limit as a Go duration ("4h").
	Limit string `json:"limit,omitempty"`
	// Alpha is the MV3 weight on time in [0,1]; default 0.5.
	Alpha *float64 `json:"alpha,omitempty"`

	// Providers names built-in tariffs; empty means the full catalog.
	Providers []string `json:"providers,omitempty"`
	// InstanceTypes lists configurations to try per provider; default
	// ["small"].
	InstanceTypes []string `json:"instance_types,omitempty"`
	// FleetSizes lists cluster sizes to try; default [5].
	FleetSizes []int `json:"fleet_sizes,omitempty"`

	core.ConfigJSON
}

// Normalize canonicalizes the request in place, exactly as the compare
// wire form does: defaults applied, the scenario resolved, grid lists
// sorted and deduplicated, the workload rewritten in explicit form. Two
// spellings of the same sweep normalize to identical structs — the
// server's memoization keys rely on it.
func (rj *SweepRequestJSON) Normalize() error {
	if err := normalizeGrid(&rj.ConfigJSON, &rj.Providers, &rj.InstanceTypes, &rj.FleetSizes); err != nil {
		return err
	}

	scenario, err := canonSweepScenario(rj.Scenario, rj.Budget != nil, rj.Limit != "")
	if err != nil {
		return err
	}
	rj.Scenario = scenario

	// Scenario parameters: validate what is needed, zero what is not (so
	// irrelevant parameters cannot fragment the cache).
	switch scenario {
	case "mv1":
		if rj.Budget == nil {
			return fmt.Errorf("compare: budget required for scenario mv1")
		}
		if *rj.Budget <= 0 {
			return fmt.Errorf("compare: non-positive budget %v", *rj.Budget)
		}
		rj.Limit, rj.Alpha = "", nil
	case "mv2":
		if rj.Limit == "" {
			return fmt.Errorf("compare: limit required for scenario mv2")
		}
		d, err := time.ParseDuration(rj.Limit)
		if err != nil {
			return fmt.Errorf("compare: limit: %v", err)
		}
		if d <= 0 {
			return fmt.Errorf("compare: non-positive limit %v", d)
		}
		rj.Limit = d.String()
		rj.Budget, rj.Alpha = nil, nil
	default: // mv3
		if rj.Alpha == nil {
			a := defaultAlpha
			rj.Alpha = &a
		}
		if *rj.Alpha < 0 || *rj.Alpha > 1 {
			return fmt.Errorf("compare: alpha %g out of [0,1]", *rj.Alpha)
		}
		rj.Budget, rj.Limit = nil, ""
	}

	// Shared problem fields: reuse the advise canonicalization, then strip
	// the per-configuration fields it defaulted.
	if err := rj.ConfigJSON.Normalize(); err != nil {
		return err
	}
	rj.ConfigJSON.Provider = ""
	rj.ConfigJSON.InstanceType = ""
	rj.ConfigJSON.Instances = 0
	return nil
}

// Configs returns the size of the grid implied by a normalized request.
func (rj SweepRequestJSON) Configs() int {
	return len(rj.Providers) * len(rj.InstanceTypes) * len(rj.FleetSizes)
}

// Resolve converts an already-normalized wire request into a
// SweepRequest ready for RunSweep.
func (rj SweepRequestJSON) Resolve() (SweepRequest, error) {
	req := SweepRequest{
		InstanceTypes:   rj.InstanceTypes,
		FleetSizes:      rj.FleetSizes,
		FactRows:        rj.FactRows,
		Months:          rj.Months,
		CandidateBudget: rj.CandidateBudget,
		MaintenanceRuns: rj.MaintenanceRuns,
		UpdateRatio:     rj.UpdateRatio,
		Scenario:        rj.Scenario,
		Solver:          rj.Solver,
		Seed:            rj.Seed,
	}
	var err error
	req.Providers, req.Workload, req.MaintenancePolicy, req.JobOverhead, err = resolveGrid(rj.Providers, rj.ConfigJSON)
	if err != nil {
		return SweepRequest{}, err
	}
	if rj.Budget != nil {
		req.Budget = *rj.Budget
	}
	if rj.Limit != "" {
		d, err := time.ParseDuration(rj.Limit)
		if err != nil {
			return SweepRequest{}, fmt.Errorf("compare: limit: %v", err)
		}
		req.Limit = d
	}
	if rj.Alpha != nil {
		req.Alpha = *rj.Alpha
	}
	return req, nil
}

// SweepCellJSON is one grid cell on the wire.
type SweepCellJSON struct {
	Key
	DatasetSize    string                  `json:"dataset_size"`
	Recommendation core.RecommendationJSON `json:"recommendation"`
}

// SweepJSON is the body of a successful POST /v1/sweep.
type SweepJSON struct {
	Scenario string          `json:"scenario"`
	Cells    []SweepCellJSON `json:"cells"`
	Best     Key             `json:"best"`
	Skipped  []Key           `json:"skipped,omitempty"`
	// Degraded marks a sweep with at least one deadline-degraded cell;
	// omitted when false.
	Degraded bool `json:"degraded,omitempty"`
	// Report is the human-readable rendering (Sweep.Render).
	Report string `json:"report"`
}

// JSON renders the sweep in wire form.
func (s *Sweep) JSON() SweepJSON {
	out := SweepJSON{
		Scenario: s.Scenario,
		Best:     s.Best,
		Skipped:  s.Skipped,
		Degraded: s.Degraded,
		Report:   s.Render(),
	}
	for _, c := range s.Cells {
		out.Cells = append(out.Cells, SweepCellJSON{
			Key:            c.Key,
			DatasetSize:    c.DatasetSize.String(),
			Recommendation: c.Rec.JSON(),
		})
	}
	return out
}
