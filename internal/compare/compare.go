// Package compare answers the question the single-provider advisor
// cannot: "which cloud should this workload run on, and with which
// materialized views?" It fans the advisor out across every requested
// provider × instance type × cluster size configuration on a bounded
// worker pool — one core.Advisor (and thus one optimizer.Evaluator) per
// configuration, solves running concurrently — and merges the results
// deterministically into a ranked Comparison: the full cost/time matrix,
// the per-scenario winner, a cross-provider Pareto frontier, and the
// budget break-even points where the winning provider flips.
//
// This is the multi-CSP extension the paper lists as future work (§8),
// in the spirit of Perriot et al.'s cross-tariff cost models.
package compare

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/money"
	"vmcloud/internal/obs"
	"vmcloud/internal/pricing"
	"vmcloud/internal/report"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// Scenario names accepted by Request.Scenarios, in canonical order.
var scenarioOrder = []string{"mv1", "mv2", "mv3", "pareto"}

// Defaults shared by the native (Request) and wire (RequestJSON)
// normalization paths — change them here and both stay in sync.
const (
	defaultInstanceType   = "small"
	defaultFleetSize      = 5
	defaultAlpha          = 0.5
	defaultParetoSteps    = 11
	defaultBreakEvenSteps = 8
)

// canonScenarios validates a scenario list and returns it as a fresh
// slice in canonical order with duplicates collapsed. An empty list
// derives the set from which parameters were given: mv1 when a budget
// was, mv2 when a limit was, and mv3 always (pareto only explicitly).
// Both the native and the JSON request forms canonicalize through here,
// so the CLI/facade and the server can never disagree on scenario rules.
func canonScenarios(explicit []string, haveBudget, haveLimit bool) ([]string, error) {
	want := map[string]bool{}
	if len(explicit) == 0 {
		want["mv3"] = true
		if haveBudget {
			want["mv1"] = true
		}
		if haveLimit {
			want["mv2"] = true
		}
	}
	for _, s := range explicit {
		switch s {
		case "mv1", "mv2", "mv3", "pareto":
			want[s] = true
		default:
			return nil, fmt.Errorf("compare: unknown scenario %q (want mv1, mv2, mv3 or pareto)", s)
		}
	}
	out := make([]string, 0, len(want))
	for _, s := range scenarioOrder {
		if want[s] {
			out = append(out, s)
		}
	}
	return out, nil
}

// Request describes a cross-provider comparison. Zero values follow the
// repo convention of selecting the paper's experimental defaults.
type Request struct {
	// Providers are the tariffs to compare; empty means the full built-in
	// catalog (pricing.Catalog).
	Providers []pricing.Provider
	// InstanceTypes are the configuration names to try on each provider;
	// empty means {"small"}. Types a provider does not offer are skipped
	// (recorded in Comparison.Skipped).
	InstanceTypes []string
	// FleetSizes are the cluster sizes (nbIC) to try; empty means {5}.
	FleetSizes []int

	// Workload is required: the queries every configuration is priced for.
	Workload workload.Workload
	// FactRows, Months, CandidateBudget, MaintenanceRuns, UpdateRatio,
	// MaintenancePolicy and JobOverhead parameterize each advisory problem
	// exactly as core.Config does (zero values = paper defaults).
	FactRows          int64
	Months            float64
	CandidateBudget   int
	MaintenanceRuns   int
	UpdateRatio       float64
	MaintenancePolicy views.MaintenancePolicy
	JobOverhead       time.Duration
	// Solver and Seed select the optimization engine per configuration,
	// exactly as core.Config does ("knapsack" default, "search", "auto").
	Solver string
	Seed   int64

	// Scenarios selects which objectives to solve per configuration, from
	// "mv1", "mv2", "mv3" and "pareto". Empty derives the set from the
	// parameters given: mv1 when Budget > 0, mv2 when Limit > 0, and mv3
	// always (pareto only when named explicitly).
	Scenarios []string
	// Budget is the MV1 spending limit; required when mv1 is requested.
	Budget money.Money
	// Limit is the MV2 response-time limit; required when mv2 is requested.
	Limit time.Duration
	// Alpha is the MV3 weight on time; zero selects 0.5.
	Alpha float64
	// Steps is the per-configuration pareto sweep resolution; zero
	// selects 11.
	Steps int

	// BreakEvenSteps is the resolution of the budget sweep used to locate
	// winner flips (mv1 only): budgets are spaced evenly over
	// [Budget/2, 2·Budget]. Zero selects 8; negative disables the sweep.
	BreakEvenSteps int

	// Workers bounds the fan-out worker pool; zero selects GOMAXPROCS.
	// One worker reproduces the sequential baseline.
	Workers int

	// Trace, when non-nil, accumulates per-phase durations across the
	// whole fan-out (its phase slots are atomic, so concurrent cells
	// record safely). Nil records nothing.
	Trace *obs.Trace

	// Ctx, when non-nil, bounds the whole fan-out: cells not yet started
	// when it expires are abandoned (Run returns the context error), and
	// search-solver cells already in flight stop at their best incumbent,
	// marking the comparison Degraded (see core.Config.Ctx). Nil means no
	// deadline.
	Ctx context.Context
}

// Key identifies one fanned-out configuration.
type Key struct {
	Provider     string `json:"provider"`
	InstanceType string `json:"instance_type"`
	Instances    int    `json:"instances"`
}

// String renders "provider/instance×n".
func (k Key) String() string {
	return fmt.Sprintf("%s/%s×%d", k.Provider, k.InstanceType, k.Instances)
}

func (k Key) less(o Key) bool {
	if k.Provider != o.Provider {
		return k.Provider < o.Provider
	}
	if k.InstanceType != o.InstanceType {
		return k.InstanceType < o.InstanceType
	}
	return k.Instances < o.Instances
}

// ScenarioResult is one solved objective for one configuration.
type ScenarioResult struct {
	Scenario string
	Rec      core.Recommendation
}

// ConfigResult is one row of the comparison matrix: every requested
// scenario solved for one provider × instance × fleet configuration.
type ConfigResult struct {
	Key
	DatasetSize units.DataSize
	// Results holds one entry per requested mv scenario, in canonical
	// scenario order.
	Results []ScenarioResult
	// Pareto is this configuration's frontier (when "pareto" is requested).
	Pareto []core.ParetoPoint
	// breakEven[i] is this configuration's mv1 outcome at sweep budget i.
	breakEven []budgetOutcome
}

// Result returns the recommendation solved for the given scenario.
func (c ConfigResult) Result(scenario string) (core.Recommendation, bool) {
	for _, r := range c.Results {
		if r.Scenario == scenario {
			return r.Rec, true
		}
	}
	return core.Recommendation{}, false
}

// budgetOutcome is one cell of the break-even sweep.
type budgetOutcome struct {
	time     time.Duration
	cost     money.Money
	feasible bool
}

// Winner names the best configuration for one scenario.
type Winner struct {
	Scenario string
	Key
	Time     time.Duration
	Cost     money.Money
	Feasible bool
}

// ParetoEntry is one point of the merged cross-provider frontier.
type ParetoEntry struct {
	Key
	Point core.ParetoPoint
}

// Flip marks a budget at which the winning configuration changes.
type Flip struct {
	// Budget is the first sweep budget at which To leads.
	Budget money.Money
	From   Key
	To     Key
}

// BreakEven is the budget sweep: the mv1 winner at each budget and the
// flip points between consecutive sweep budgets. Flip budgets are exact
// only to the sweep resolution.
type BreakEven struct {
	Budgets []money.Money
	Winners []Key
	Flips   []Flip
}

// Comparison is the merged, deterministically ordered report.
type Comparison struct {
	// Scenarios echoes the solved scenario set in canonical order.
	Scenarios []string
	// Configs is the full matrix, sorted by provider, instance type, fleet.
	Configs []ConfigResult
	// Winners holds one entry per mv scenario, in canonical order.
	Winners []Winner
	// Pareto is the global non-dominated frontier across all
	// configurations (when "pareto" is requested).
	Pareto []ParetoEntry
	// BreakEven is the mv1 budget sweep (nil when disabled or mv1 absent).
	BreakEven *BreakEven
	// Skipped lists configurations dropped because the provider does not
	// offer the instance type.
	Skipped []Key
	// Degraded reports whether any cell's search stopped at the request
	// deadline with its best incumbent (see Request.Ctx). Degraded
	// comparisons are exactly priced but timing-dependent, so callers
	// must not memoize them.
	Degraded bool
}

// normalized is a validated request with every default applied.
type normalized struct {
	Request
	scenarios    map[string]bool
	sweepBudgets []money.Money
}

func (r Request) normalize() (normalized, error) {
	n := normalized{Request: r, scenarios: map[string]bool{}}
	if len(n.Providers) == 0 {
		cat := pricing.Catalog()
		for _, name := range pricing.ProviderNames() {
			n.Providers = append(n.Providers, cat[name])
		}
	}
	seen := map[string]bool{}
	// Deep-copy the tariffs once here: cells sharing a provider (several
	// fleet sizes, several instance types) can then alias one read-only
	// copy without a per-cell defensive clone, and the caller's slice is
	// never retained.
	cloned := make([]pricing.Provider, 0, len(n.Providers))
	for _, p := range n.Providers {
		if err := p.Validate(); err != nil {
			return normalized{}, err
		}
		if seen[p.Name] {
			return normalized{}, fmt.Errorf("compare: duplicate provider %q", p.Name)
		}
		seen[p.Name] = true
		cloned = append(cloned, p.Clone())
	}
	n.Providers = cloned
	if len(n.InstanceTypes) == 0 {
		n.InstanceTypes = []string{defaultInstanceType}
	}
	n.InstanceTypes = dedupeSorted(n.InstanceTypes)
	if len(n.FleetSizes) == 0 {
		n.FleetSizes = []int{defaultFleetSize}
	}
	n.FleetSizes = dedupeSortedInts(n.FleetSizes)
	for _, f := range n.FleetSizes {
		if f < 1 {
			return normalized{}, fmt.Errorf("compare: fleet size %d < 1", f)
		}
	}
	var err error
	n.Request.Scenarios, err = canonScenarios(n.Request.Scenarios, n.Budget > 0, n.Limit > 0)
	if err != nil {
		return normalized{}, err
	}
	for _, s := range n.Request.Scenarios {
		n.scenarios[s] = true
	}
	if n.scenarios["mv1"] && n.Budget <= 0 {
		return normalized{}, fmt.Errorf("compare: scenario mv1 requires a positive budget")
	}
	if n.scenarios["mv2"] && n.Limit <= 0 {
		return normalized{}, fmt.Errorf("compare: scenario mv2 requires a positive limit")
	}
	if n.Alpha == 0 {
		n.Alpha = defaultAlpha
	}
	if n.Alpha < 0 || n.Alpha > 1 {
		return normalized{}, fmt.Errorf("compare: alpha %g out of [0,1]", n.Alpha)
	}
	if n.Steps == 0 {
		n.Steps = defaultParetoSteps
	}
	if n.scenarios["pareto"] && n.Steps < 2 {
		return normalized{}, fmt.Errorf("compare: pareto needs at least 2 steps, got %d", n.Steps)
	}
	if n.BreakEvenSteps == 0 {
		n.BreakEvenSteps = defaultBreakEvenSteps
	}
	if n.scenarios["mv1"] && n.BreakEvenSteps >= 2 {
		lo, hi := n.Budget.DivInt(2), n.Budget.MulInt(2)
		for i := 0; i < n.BreakEvenSteps; i++ {
			frac := float64(i) / float64(n.BreakEvenSteps-1)
			n.sweepBudgets = append(n.sweepBudgets, lo.Add(hi.Sub(lo).MulFloat(frac)))
		}
	}
	n.Solver, err = core.CanonSolver(n.Solver)
	if err != nil {
		return normalized{}, err
	}
	if n.Solver != core.SolverSearch {
		// Comparisons are sales-schema-only, so "auto" can never reach
		// search (candidate pools stay at or below AutoSearchThreshold);
		// drop the unused seed, matching the wire canonicalization.
		n.Seed = 0
	}
	if n.Workers == 0 {
		n.Workers = runtime.GOMAXPROCS(0)
	}
	if n.Workers < 1 {
		n.Workers = 1
	}
	return n, nil
}

// shared builds the pricing-invariant structure of a normalized request
// — the one place the grid engines (Run, RunSweep) translate the shared
// problem fields into a core.Config, so a future field cannot be
// threaded into one engine and silently defaulted in the other.
func (n normalized) shared() (*core.Shared, error) {
	return core.NewShared(core.Config{
		FactRows:          n.FactRows,
		Months:            n.Months,
		Workload:          n.Workload,
		CandidateBudget:   n.CandidateBudget,
		MaintenanceRuns:   n.MaintenanceRuns,
		UpdateRatio:       n.UpdateRatio,
		MaintenancePolicy: n.MaintenancePolicy,
		JobOverhead:       n.JobOverhead,
		Solver:            n.Solver,
		Seed:              n.Seed,
		Trace:             n.Trace,
		Ctx:               n.Ctx,
	})
}

// fanOut runs solve(i) for i in [0, jobs) on a bounded worker pool —
// the shared concurrency scaffold of the grid engines. Workers beyond
// the job count are not spawned.
func fanOut(workers, jobs int, solve func(int)) {
	if workers > jobs {
		workers = jobs
	}
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				solve(i)
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// cells expands the provider × instance × fleet grid in deterministic
// order, separating configurations whose instance type the provider does
// not offer.
func (n normalized) cells() (keys []Key, providers []pricing.Provider, skipped []Key) {
	provs := append([]pricing.Provider(nil), n.Providers...)
	sort.Slice(provs, func(i, j int) bool { return provs[i].Name < provs[j].Name })
	types := append([]string(nil), n.InstanceTypes...)
	sort.Strings(types)
	fleets := append([]int(nil), n.FleetSizes...)
	sort.Ints(fleets)
	for _, p := range provs {
		for _, it := range types {
			_, offered := p.Compute.Instances[it]
			for _, f := range fleets {
				k := Key{Provider: p.Name, InstanceType: it, Instances: f}
				if !offered {
					skipped = append(skipped, k)
					continue
				}
				keys = append(keys, k)
				providers = append(providers, p)
			}
		}
	}
	return keys, providers, skipped
}

// Run solves every configuration on a bounded worker pool and merges the
// outcomes. The result is deterministic: identical requests produce
// identical comparisons regardless of worker count, scheduling, or the
// order providers were listed in.
//
// The pricing-invariant structure — lattice, workload canonicalization,
// HRU candidates, answering lists — is built exactly once (core.Shared's
// comparison kernel) and shared read-only by every worker; each grid
// cell then costs only a tariff re-bind (cluster + re-priced time
// scalars) and the scenario solves.
func Run(req Request) (*Comparison, error) {
	n, err := req.normalize()
	if err != nil {
		return nil, err
	}
	keys, providers, skipped := n.cells()
	if len(keys) == 0 {
		return nil, fmt.Errorf("compare: no runnable configurations (every provider × instance pairing was skipped)")
	}
	shared, err := n.shared()
	if err != nil {
		return nil, err
	}

	results := make([]ConfigResult, len(keys))
	errs := make([]error, len(keys))
	fanOut(n.Workers, len(keys), func(i int) {
		// Cooperative cancellation between cells: a cell that has not
		// started when the deadline passes is abandoned outright (cells in
		// flight stop via the search solver's own deadline gate).
		if n.Ctx != nil && n.Ctx.Err() != nil {
			errs[i] = n.Ctx.Err()
			return
		}
		results[i], errs[i] = n.solveCell(shared, keys[i], providers[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("compare: %s: %w", keys[i], err)
		}
	}

	comp := &Comparison{
		Scenarios: append([]string(nil), n.Request.Scenarios...),
		Configs:   results,
		Skipped:   skipped,
		Degraded:  anyDegraded(results),
	}
	for _, s := range n.Request.Scenarios {
		if s == "pareto" {
			comp.Pareto = mergeFrontiers(results)
			continue
		}
		comp.Winners = append(comp.Winners, pickWinner(s, n.Alpha, results))
	}
	if len(n.sweepBudgets) > 0 {
		comp.BreakEven = buildBreakEven(n.sweepBudgets, results)
	}
	return comp, nil
}

// solveCell re-prices the shared structure for one tariff cell and
// solves every requested scenario plus the break-even budget sweep. Each
// cell owns its advisor (a per-tariff kernel binding over the read-only
// shared structure), so cells are fully independent and safe to run
// concurrently.
func (n normalized) solveCell(shared *core.Shared, k Key, prov pricing.Provider) (ConfigResult, error) {
	adv, err := shared.Advisor(prov, k.InstanceType, k.Instances)
	if err != nil {
		return ConfigResult{}, err
	}
	out := ConfigResult{Key: k, DatasetSize: core.DatasetSizeOf(adv)}
	if mvs := len(n.Request.Scenarios) - boolToInt(n.scenarios["pareto"]); mvs > 0 {
		out.Results = make([]ScenarioResult, 0, mvs)
	}
	for _, s := range n.Request.Scenarios {
		var rec core.Recommendation
		switch s {
		case "mv1":
			rec, err = adv.AdviseBudget(n.Budget)
		case "mv2":
			rec, err = adv.AdviseDeadline(n.Limit)
		case "mv3":
			rec, err = adv.AdviseTradeoff(n.Alpha)
		case "pareto":
			out.Pareto, err = adv.ParetoFront(n.Steps)
			if err != nil {
				return ConfigResult{}, err
			}
			continue
		}
		if err != nil {
			return ConfigResult{}, err
		}
		out.Results = append(out.Results, ScenarioResult{Scenario: s, Rec: rec})
	}
	// The budget sweep re-prices MV1 at every sweep budget on the cell's
	// session: the knapsack items and the baseline are already cached, so
	// each budget costs one DP plus the exact re-bill.
	if len(n.sweepBudgets) > 0 {
		out.breakEven = make([]budgetOutcome, 0, len(n.sweepBudgets))
		sess := adv.Session()
		for _, b := range n.sweepBudgets {
			t, cost, feasible, err := sess.BudgetOutcome(b)
			if err != nil {
				return ConfigResult{}, err
			}
			out.breakEven = append(out.breakEven, budgetOutcome{time: t, cost: cost, feasible: feasible})
		}
	}
	return out, nil
}

// anyDegraded reports whether any cell carries a deadline-degraded
// recommendation or frontier point.
func anyDegraded(results []ConfigResult) bool {
	for _, cr := range results {
		for _, sr := range cr.Results {
			if sr.Rec.Selection.Degraded {
				return true
			}
		}
		for _, p := range cr.Pareto {
			if p.Degraded {
				return true
			}
		}
	}
	return false
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// better reports whether outcome a beats b under the scenario's ranking:
// mv1 prefers feasible, then faster, then cheaper; mv2 prefers feasible,
// then cheaper, then faster; mv3 minimizes α·T[h] + (1−α)·C[$] (the raw
// Formula 15 objective — cross-provider comparison needs absolute units).
// Key order breaks remaining ties, so rankings are total and
// deterministic.
func better(scenario string, alpha float64, a, b Winner) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	switch scenario {
	case "mv1":
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
	case "mv2":
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		if a.Time != b.Time {
			return a.Time < b.Time
		}
	default: // mv3
		oa := alpha*a.Time.Hours() + (1-alpha)*a.Cost.Dollars()
		ob := alpha*b.Time.Hours() + (1-alpha)*b.Cost.Dollars()
		if oa != ob {
			return oa < ob
		}
	}
	return a.Key.less(b.Key)
}

func pickWinner(scenario string, alpha float64, configs []ConfigResult) Winner {
	var best Winner
	first := true
	for _, c := range configs {
		rec, ok := c.Result(scenario)
		if !ok {
			continue
		}
		w := Winner{
			Scenario: scenario,
			Key:      c.Key,
			Time:     rec.Selection.Time,
			Cost:     rec.Selection.Bill.Total(),
			Feasible: rec.Selection.Feasible,
		}
		if first || better(scenario, alpha, w, best) {
			best, first = w, false
		}
	}
	return best
}

// mergeFrontiers flattens every configuration's frontier and keeps the
// globally non-dominated points, ordered by time then cost then key.
func mergeFrontiers(configs []ConfigResult) []ParetoEntry {
	var all []ParetoEntry
	for _, c := range configs {
		for _, p := range c.Pareto {
			all = append(all, ParetoEntry{Key: c.Key, Point: p})
		}
	}
	var front []ParetoEntry
	for i, p := range all {
		dominated := false
		for j, q := range all {
			if i == j {
				continue
			}
			if q.Point.Time <= p.Point.Time && q.Point.Cost <= p.Point.Cost &&
				(q.Point.Time < p.Point.Time || q.Point.Cost < p.Point.Cost) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Point.Time != front[j].Point.Time {
			return front[i].Point.Time < front[j].Point.Time
		}
		if front[i].Point.Cost != front[j].Point.Cost {
			return front[i].Point.Cost < front[j].Point.Cost
		}
		return front[i].Key.less(front[j].Key)
	})
	// Collapse duplicate (time, cost) points: keep the first key.
	out := front[:0]
	for _, p := range front {
		if len(out) > 0 && out[len(out)-1].Point.Time == p.Point.Time && out[len(out)-1].Point.Cost == p.Point.Cost {
			continue
		}
		out = append(out, p)
	}
	return out
}

func buildBreakEven(budgets []money.Money, configs []ConfigResult) *BreakEven {
	be := &BreakEven{Budgets: budgets}
	for bi := range budgets {
		var best Winner
		first := true
		for _, c := range configs {
			o := c.breakEven[bi]
			w := Winner{Key: c.Key, Time: o.time, Cost: o.cost, Feasible: o.feasible}
			if first || better("mv1", 0.5, w, best) {
				best, first = w, false
			}
		}
		be.Winners = append(be.Winners, best.Key)
	}
	for i := 1; i < len(be.Winners); i++ {
		if be.Winners[i] != be.Winners[i-1] {
			be.Flips = append(be.Flips, Flip{Budget: budgets[i], From: be.Winners[i-1], To: be.Winners[i]})
		}
	}
	return be
}

// Render produces the human-readable comparison report.
func (c *Comparison) Render() string {
	var sb strings.Builder
	for _, s := range c.Scenarios {
		if s == "pareto" {
			continue
		}
		t := report.NewTable(fmt.Sprintf("scenario %s — cost/time matrix", s),
			"configuration", "workload time", "total cost", "feasible", "views")
		for _, cfg := range c.Configs {
			rec, ok := cfg.Result(s)
			if !ok {
				continue
			}
			t.AddRow(cfg.Key.String(),
				fmt.Sprintf("%.3fh", rec.Selection.Time.Hours()),
				rec.Selection.Bill.Total(),
				rec.Selection.Feasible,
				len(rec.Selection.Points))
		}
		sb.WriteString(t.String())
	}
	if len(c.Winners) > 0 {
		t := report.NewTable("winners", "scenario", "configuration", "workload time", "total cost", "feasible")
		for _, w := range c.Winners {
			t.AddRow(w.Scenario, w.Key.String(), fmt.Sprintf("%.3fh", w.Time.Hours()), w.Cost, w.Feasible)
		}
		sb.WriteString(t.String())
	}
	if len(c.Pareto) > 0 {
		t := report.NewTable("cross-provider pareto frontier", "configuration", "α", "workload time", "cost", "views")
		for _, p := range c.Pareto {
			t.AddRow(p.Key.String(), fmt.Sprintf("%.2f", p.Point.Alpha),
				fmt.Sprintf("%.3fh", p.Point.Time.Hours()), p.Point.Cost, p.Point.Views)
		}
		sb.WriteString(t.String())
	}
	if c.BreakEven != nil {
		t := report.NewTable("budget break-even sweep (mv1 winner per budget)", "budget", "winner")
		for i, b := range c.BreakEven.Budgets {
			t.AddRow(b, c.BreakEven.Winners[i].String())
		}
		sb.WriteString(t.String())
		for _, f := range c.BreakEven.Flips {
			fmt.Fprintf(&sb, "winner flips from %s to %s at ≈%v\n", f.From, f.To, f.Budget)
		}
		if len(c.BreakEven.Flips) == 0 {
			sb.WriteString("no winner flips across the swept budget range\n")
		}
	}
	if len(c.Skipped) > 0 {
		names := make([]string, len(c.Skipped))
		for i, k := range c.Skipped {
			names[i] = k.String()
		}
		fmt.Fprintf(&sb, "skipped (instance type not offered): %s\n", strings.Join(names, ", "))
	}
	return sb.String()
}
