package cluster

import (
	"testing"
	"time"

	"vmcloud/internal/engine"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/units"
)

func twoSmalls(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(pricing.AWS2012(), "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	if _, err := New(pricing.AWS2012(), "small", 0); err == nil {
		t.Error("zero instances accepted")
	}
	if _, err := New(pricing.AWS2012(), "gigantic", 2); err == nil {
		t.Error("unknown instance accepted")
	}
}

func TestThroughputCalibration(t *testing.T) {
	// Two small instances (1 ECU each) at 25 GB/ECU/h scan 50 GB/h, so a
	// 10 GB full scan takes 0.2 h — the paper's per-query figure.
	c := twoSmalls(t)
	if got := c.Throughput(); got != 50*units.GB {
		t.Errorf("throughput = %v, want 50 GB/h", got)
	}
	if got := c.TimeFor(10 * units.GB); got != 12*time.Minute {
		t.Errorf("TimeFor(10GB) = %v, want 12m (0.2h)", got)
	}
	if c.TimeFor(0) != 0 || c.TimeFor(-units.GB) != 0 {
		t.Error("non-positive work should take zero time")
	}
}

func TestECUScalesThroughput(t *testing.T) {
	small := twoSmalls(t)
	large, err := New(pricing.AWS2012(), "large", 2)
	if err != nil {
		t.Fatal(err)
	}
	if large.Throughput() != small.Throughput().MulInt(4) {
		t.Errorf("large fleet throughput = %v, want 4× small's %v", large.Throughput(), small.Throughput())
	}
	if large.TimeFor(40*units.GB) >= small.TimeFor(40*units.GB) {
		t.Error("larger instances should be faster")
	}
}

// The paper's Example 2: 50 h on two small instances costs $12.
func TestComputeCostExample2(t *testing.T) {
	c := twoSmalls(t)
	if got := c.ComputeCost(50 * time.Hour); got != money.FromDollars(12) {
		t.Errorf("cost(50h) = %v, want $12", got)
	}
	// Round-up: 49h30m bills as 50 h per instance.
	if got := c.ComputeCost(49*time.Hour + 30*time.Minute); got != money.FromDollars(12) {
		t.Errorf("cost(49.5h) = %v, want $12", got)
	}
}

func TestDataScale(t *testing.T) {
	c := twoSmalls(t)
	c.DataScale = 1000
	// 10 MB of local work at scale 1000 models ≈10 GB in the cloud: ≈0.2 h.
	got := c.TimeFor(10 * units.MB)
	want := c.scaleFreeTime(t, 10*units.MB)
	if got <= want {
		t.Errorf("scaled time %v should exceed unscaled %v", got, want)
	}
	// 10 MB × 1000 = 10000 MB ≈ 9.77 GB → 9.77/50 h ≈ 11.7 min.
	if got < 11*time.Minute || got > 12*time.Minute {
		t.Errorf("scaled time = %v, want ≈11.7m", got)
	}
}

func (c *Cluster) scaleFreeTime(t *testing.T, w units.DataSize) time.Duration {
	t.Helper()
	saved := c.DataScale
	c.DataScale = 1
	defer func() { c.DataScale = saved }()
	return c.TimeFor(w)
}

func TestTimeForStats(t *testing.T) {
	c := twoSmalls(t)
	s := engine.Stats{BytesScanned: 100 * units.GB}
	if got := c.TimeForStats(s); got != 2*time.Hour {
		t.Errorf("TimeForStats(100GB) = %v, want 2h", got)
	}
}

func TestCostForWork(t *testing.T) {
	c := twoSmalls(t)
	// 100 GB → 2 h → 2 instances × 2 h × $0.12 = $0.48.
	if got := c.CostForWork(100 * units.GB); got != money.FromDollars(0.48) {
		t.Errorf("CostForWork = %v, want $0.48", got)
	}
}

func TestHourlyRateAndString(t *testing.T) {
	c := twoSmalls(t)
	if c.HourlyRate() != money.FromDollars(0.24) {
		t.Errorf("HourlyRate = %v, want $0.24", c.HourlyRate())
	}
	if c.String() == "" {
		t.Error("String empty")
	}
}

func TestFinerGranularityCheaper(t *testing.T) {
	aws, err := New(pricing.AWS2012(), "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	nimbus, err := New(pricing.NimbusCompute(), "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	d := 10 * time.Minute
	// AWS bills a full hour for 10 minutes, Nimbus bills per second.
	if aws.ComputeCost(d) != money.FromDollars(0.24) {
		t.Errorf("aws 10m = %v", aws.ComputeCost(d))
	}
	want := money.FromDollars(0.09).MulFloat(float64(d) / float64(time.Hour)).MulInt(2)
	if nimbus.ComputeCost(d) != want {
		t.Errorf("nimbus 10m = %v, want %v", nimbus.ComputeCost(d), want)
	}
}

func TestElasticVsPooledBilling(t *testing.T) {
	c := twoSmalls(t) // hour-rounded AWS billing
	jobs := []time.Duration{12 * time.Minute, 12 * time.Minute, 12 * time.Minute}

	pooled := c.PooledComputeCost(jobs)   // 36m → 1 started hour → $0.24
	elastic := c.ElasticComputeCost(jobs) // 3 × 1 started hour → $0.72
	if pooled != money.FromDollars(0.24) {
		t.Errorf("pooled = %v, want $0.24", pooled)
	}
	if elastic != money.FromDollars(0.72) {
		t.Errorf("elastic = %v, want $0.72", elastic)
	}
	if elastic <= pooled {
		t.Error("hour-rounded elastic should cost more than pooled for small jobs")
	}

	// Under per-second billing the two converge.
	nimbus, err := New(pricing.NimbusCompute(), "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	pn := nimbus.PooledComputeCost(jobs)
	en := nimbus.ElasticComputeCost(jobs)
	diff := en.Sub(pn)
	if diff < 0 {
		diff = -diff
	}
	if diff > money.FromDollars(0.01) {
		t.Errorf("per-second elastic %v vs pooled %v differ by %v", en, pn, diff)
	}
	if c.ElasticComputeCost(nil) != 0 {
		t.Error("no jobs should cost nothing")
	}
}
