// Package cluster simulates the rented compute fleet: a fixed number of
// identical instances (the paper's nbIC assumption, Section 4) with a
// linear scan-throughput model that converts data volumes processed by the
// execution engine into cloud wall-clock hours, and a billing adapter that
// charges every instance for the whole run at the provider's granularity.
package cluster

import (
	"fmt"
	"time"

	"vmcloud/internal/engine"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/units"
)

// DefaultThroughputPerECU is the data volume one EC2 Compute Unit scans per
// hour. Calibrated so that a 2-small-instance cluster processes a full-scan
// query over 10 GB in ≈0.2 h, the figure the paper's experimental section
// reports.
const DefaultThroughputPerECU = 25 * units.GB

// Cluster is a fleet of identical instances rented from one provider.
type Cluster struct {
	// Provider supplies the tariff.
	Provider pricing.Provider
	// Instance is the rented configuration (identical across the fleet).
	Instance pricing.InstanceType
	// NbInstances is the paper's nbIC: the constant fleet size.
	NbInstances int
	// ThroughputPerECU is the volume one ECU scans per hour.
	ThroughputPerECU units.DataSize
	// DataScale multiplies observed work volumes before timing, letting a
	// scaled-down local dataset stand in for the full-size one (e.g. 1000
	// when 10 MB of local data model 10 GB in the cloud). Zero means 1.
	DataScale float64
	// JobOverhead is the fixed per-job startup latency (scheduling,
	// container launch, shuffle setup — ~2 min on the paper's Hadoop 0.20
	// cluster). It floors every job's duration regardless of input size,
	// which is what keeps tiny-view queries from becoming free.
	JobOverhead time.Duration
}

// New builds a cluster of nb instances of the named type from the provider.
func New(p pricing.Provider, instanceName string, nb int) (*Cluster, error) {
	if nb <= 0 {
		return nil, fmt.Errorf("cluster: non-positive instance count %d", nb)
	}
	it, err := p.Compute.Instance(instanceName)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		Provider:         p,
		Instance:         it,
		NbInstances:      nb,
		ThroughputPerECU: DefaultThroughputPerECU,
	}, nil
}

// scale returns the effective DataScale.
func (c *Cluster) scale() float64 {
	if c.DataScale <= 0 {
		return 1
	}
	return c.DataScale
}

// Throughput returns the fleet's aggregate scan rate per hour.
func (c *Cluster) Throughput() units.DataSize {
	perInst := c.ThroughputPerECU.MulFloat(c.Instance.ECU)
	return perInst.MulInt(int64(c.NbInstances))
}

// TimeFor converts a processed data volume into cluster wall-clock time.
func (c *Cluster) TimeFor(work units.DataSize) time.Duration {
	if work <= 0 {
		return 0
	}
	scaled := work.MulFloat(c.scale())
	hours := scaled.GBs() / c.Throughput().GBs()
	return units.HoursToDuration(hours)
}

// TimeForJob converts a processed volume into the wall-clock time of one
// job run: fixed startup overhead plus the scan time.
func (c *Cluster) TimeForJob(work units.DataSize) time.Duration {
	return c.JobOverhead + c.TimeFor(work)
}

// TimeForStats converts engine work counters into cluster time.
func (c *Cluster) TimeForStats(s engine.Stats) time.Duration {
	return c.TimeFor(s.BytesScanned)
}

// ComputeCost bills the whole fleet for a run of duration d: every instance
// is charged for the full wall clock at the provider's billing granularity
// (the paper's Example 2: 2 × RoundUp(50 h) × $0.12).
func (c *Cluster) ComputeCost(d time.Duration) money.Money {
	per := c.Provider.Compute.HourCost(c.Instance, d)
	return per.MulInt(int64(c.NbInstances))
}

// CostForWork is TimeFor followed by ComputeCost.
func (c *Cluster) CostForWork(work units.DataSize) money.Money {
	return c.ComputeCost(c.TimeFor(work))
}

// ElasticComputeCost bills a set of jobs as if the fleet were provisioned
// per job and released immediately after — the "variable resources" model
// the paper defers to future work (Section 4). Every job is rounded up to
// the provider's billing granularity separately, so under hour-rounded
// tariffs elasticity is far more expensive for many small jobs than
// keeping one pooled fleet running (ComputeCost over the summed duration),
// while under per-second billing the two converge.
func (c *Cluster) ElasticComputeCost(jobs []time.Duration) money.Money {
	var total money.Money
	for _, d := range jobs {
		total = total.Add(c.ComputeCost(d))
	}
	return total
}

// PooledComputeCost bills the same jobs on one continuously-rented fleet:
// a single round-up over the summed wall clock (the paper's Formula 4
// treatment, cf. Example 2's RoundUp(50 h)).
func (c *Cluster) PooledComputeCost(jobs []time.Duration) money.Money {
	var sum time.Duration
	for _, d := range jobs {
		sum += d
	}
	return c.ComputeCost(sum)
}

// HourlyRate returns the fleet's total price per billed hour.
func (c *Cluster) HourlyRate() money.Money {
	return c.Instance.PricePerHour.MulInt(int64(c.NbInstances))
}

// String summarizes the fleet.
func (c *Cluster) String() string {
	return fmt.Sprintf("%d×%s@%s (%s, %v/h aggregate)",
		c.NbInstances, c.Instance.Name, c.Provider.Name, c.HourlyRate(), c.Throughput())
}
