package server

import (
	"fmt"
	"net/http"
)

// LocalClusterOptions configures a single-process cluster: one
// stateless frontend plus N workers wired over a MemTransport.
type LocalClusterOptions struct {
	// Workers is the fleet size; default 3.
	Workers int
	// Frontend seeds the frontend server's Options. Frontend.Cluster is
	// built by NewLocalCluster (Workers, Transport, and any fields set
	// in Cluster below); Frontend.Chaos worker-kill/partition
	// probabilities select which workers start dead or partitioned.
	Frontend Options
	// Worker seeds every worker server's Options. Workers never get
	// Cluster set and never see the frontend's worker-level chaos (solve
	// latency/panic chaos belongs here instead).
	Worker Options
	// Cluster refines the routing plane (seed, health tuning, hedging).
	// Workers and Transport are overwritten by NewLocalCluster.
	Cluster ClusterOptions
}

// LocalCluster is the whole topology inside one process: the frontend,
// its workers, and the fault-injectable transport between them. It
// backs `mvcloudd -cluster N`, the cluster loadgen scenarios, and the
// tier-1 chaos tests — everything runs under `go test -race` with no
// sockets.
type LocalCluster struct {
	Frontend *Server
	Workers  []*Server
	// Transport is the in-process fabric; tests inject kill/partition
	// faults through it (or via the typed helpers below).
	Transport *MemTransport
	ids       []string
}

// NewLocalCluster builds the fleet, the transport, and the frontend,
// applying any seeded worker-kill/partition chaos from
// opts.Frontend.Chaos before the frontend's first health check.
func NewLocalCluster(opts LocalClusterOptions) *LocalCluster {
	n := opts.Workers
	if n <= 0 {
		n = 3
	}
	lc := &LocalCluster{Transport: NewMemTransport(), ids: make([]string, n)}
	for i := 0; i < n; i++ {
		lc.ids[i] = fmt.Sprintf("worker-%d", i)
		w := New(opts.Worker)
		lc.Workers = append(lc.Workers, w)
		lc.Transport.Register(lc.ids[i], w)
	}
	// Seeded chaos faults apply before the frontend exists, so its
	// health loop's very first sweep sees the broken fleet.
	for _, id := range lc.ids {
		if opts.Frontend.Chaos.killsWorker(id) {
			lc.Transport.Kill(id)
		}
		if opts.Frontend.Chaos.partitionsWorker(id) {
			lc.Transport.Partition(id)
		}
	}
	copts := opts.Cluster
	copts.Workers = lc.ids
	copts.Transport = lc.Transport
	fopts := opts.Frontend
	fopts.Cluster = &copts
	lc.Frontend = New(fopts)
	return lc
}

// ServeHTTP delegates to the frontend — a LocalCluster drops in
// wherever a *Server handler does (httptest, loadgen HandlerTarget).
func (lc *LocalCluster) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	lc.Frontend.ServeHTTP(w, r)
}

// WorkerIDs returns the ring member IDs in index order
// ("worker-0" ... "worker-N-1").
func (lc *LocalCluster) WorkerIDs() []string { return append([]string(nil), lc.ids...) }

// KillWorker / ReviveWorker / PartitionWorker / HealWorker inject and
// clear transport faults on one worker by ID.
func (lc *LocalCluster) KillWorker(id string)      { lc.Transport.Kill(id) }
func (lc *LocalCluster) ReviveWorker(id string)    { lc.Transport.Revive(id) }
func (lc *LocalCluster) PartitionWorker(id string) { lc.Transport.Partition(id) }
func (lc *LocalCluster) HealWorker(id string)      { lc.Transport.Heal(id) }

// InflightSolves sums the live solve goroutines across the frontend
// and every worker — the whole-topology leak detector: after traffic
// drains it must return to zero even when workers were killed
// mid-solve.
func (lc *LocalCluster) InflightSolves() int64 {
	n := lc.Frontend.InflightSolves()
	for _, w := range lc.Workers {
		n += w.InflightSolves()
	}
	return n
}

// Close stops the frontend's background loops. Workers have none, but
// Close covers them too in case they grow some.
func (lc *LocalCluster) Close() {
	lc.Frontend.Close()
	for _, w := range lc.Workers {
		w.Close()
	}
}
