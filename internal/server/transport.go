package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vmcloud/internal/client"
)

// WorkerReply is what one forwarded attempt observed from a worker:
// the status, the response body, and the serving metadata the frontend
// relays (degradation marker, shed backoff hint, cache disposition).
type WorkerReply struct {
	Status     int
	Body       []byte
	Degraded   bool
	RetryAfter time.Duration
	XCache     string
}

// Transport moves one solve request from the frontend to a named
// worker. Implementations must honor ctx — the frontend's per-attempt
// timeout is the only thing that turns a network partition into a
// detectable failure — and must be safe for concurrent use.
//
// Two implementations ship: MemTransport runs the whole topology
// in-process (tier-1 tests, -cluster single-binary mode) and
// HTTPTransport speaks to real workers over TCP via the retrying
// client (with retries disabled — failover policy belongs to the
// frontend, which knows the ring, not to the transport).
type Transport interface {
	// Forward posts body to path on worker, with account carried as the
	// tenant namespace. A reply is returned for any HTTP response,
	// including 4xx/5xx; err is reserved for transport-level failure
	// (connection refused/reset, timeout, partition).
	Forward(ctx context.Context, worker, path, account string, body []byte) (*WorkerReply, error)
	// Check probes worker's liveness (GET /healthz or equivalent).
	Check(ctx context.Context, worker string) error
}

// errWorkerDown and errWorkerPartitioned are the transport-level
// failures MemTransport injects: a killed worker refuses instantly
// (like a closed TCP port), a partitioned one hangs until the attempt
// deadline (like a black-holed route).
var (
	errWorkerDown        = errors.New("worker down: connection refused")
	errWorkerKilledMid   = errors.New("worker died mid-request: connection reset")
	errUnknownWorker     = errors.New("unknown worker")
	errWorkerPartitioned = errors.New("worker partitioned: request timed out")
)

// memWorker is one in-process worker endpoint plus its fault state.
type memWorker struct {
	srv *Server

	mu          sync.Mutex
	killed      bool
	partitioned bool
	// killedCh is closed while the worker is killed, so forwards in
	// flight observe the death immediately (connection reset) instead
	// of waiting out their deadline. Recreated on revive.
	killedCh chan struct{}
}

// MemTransport runs a worker fleet in-process: forwards are direct
// ServeHTTP calls on the workers' serving stacks, with kill and
// partition faults injectable per worker. It powers `mvcloudd -cluster
// N`, the race-mode chaos e2e, and every tier-1 cluster test — the
// whole topology inside one process, no sockets.
type MemTransport struct {
	mu      sync.Mutex
	workers map[string]*memWorker
}

// NewMemTransport builds an empty in-process transport; Register adds
// workers.
func NewMemTransport() *MemTransport {
	return &MemTransport{workers: make(map[string]*memWorker)}
}

// Register adds (or replaces) a worker.
func (t *MemTransport) Register(worker string, srv *Server) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.workers[worker] = &memWorker{srv: srv, killedCh: make(chan struct{})}
}

func (t *MemTransport) worker(name string) *memWorker {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.workers[name]
}

// Kill marks worker dead: new forwards fail instantly, forwards in
// flight observe a connection reset, and the worker-side request
// contexts are cancelled (a dead process stops solving).
func (t *MemTransport) Kill(worker string) {
	w := t.worker(worker)
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.killed {
		w.killed = true
		close(w.killedCh)
	}
}

// Revive brings a killed worker back.
func (t *MemTransport) Revive(worker string) {
	w := t.worker(worker)
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.killed {
		w.killed = false
		w.killedCh = make(chan struct{})
	}
}

// Partition black-holes worker: forwards to it hang until their
// context deadline instead of failing fast.
func (t *MemTransport) Partition(worker string) {
	w := t.worker(worker)
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.partitioned = true
}

// Heal ends worker's partition.
func (t *MemTransport) Heal(worker string) {
	w := t.worker(worker)
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.partitioned = false
}

// Forward implements Transport against the in-process fleet.
func (t *MemTransport) Forward(ctx context.Context, worker, path, account string, body []byte) (*WorkerReply, error) {
	w := t.worker(worker)
	if w == nil {
		return nil, errUnknownWorker
	}
	w.mu.Lock()
	killed, partitioned, killedCh := w.killed, w.partitioned, w.killedCh
	w.mu.Unlock()
	if killed {
		return nil, errWorkerDown
	}
	if partitioned {
		// A partition doesn't refuse — it swallows. Only the caller's
		// deadline bounds the wait, exactly like a black-holed route.
		<-ctx.Done()
		return nil, errWorkerPartitioned
	}

	// The worker request lives under rctx: it dies when the frontend
	// attempt gives up OR when the worker is killed mid-flight, so the
	// worker-side flight group sees its waiter leave and cancels the
	// solve — an in-process stand-in for "the TCP connection died".
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan *WorkerReply, 1)
	go func() {
		req, err := http.NewRequestWithContext(rctx, http.MethodPost, path, bytes.NewReader(body))
		if err != nil {
			done <- &WorkerReply{Status: http.StatusInternalServerError, Body: []byte(err.Error())}
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if account != "" {
			req.Header.Set("X-Account", account)
		}
		rec := newMemRecorder()
		w.srv.ServeHTTP(rec, req)
		done <- rec.reply()
	}()
	select {
	case rep := <-done:
		return rep, nil
	case <-killedCh:
		return nil, errWorkerKilledMid
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Check implements Transport: a killed worker fails, a partitioned one
// hangs out the probe deadline, a live one answers /healthz.
func (t *MemTransport) Check(ctx context.Context, worker string) error {
	w := t.worker(worker)
	if w == nil {
		return errUnknownWorker
	}
	w.mu.Lock()
	killed, partitioned := w.killed, w.partitioned
	w.mu.Unlock()
	if killed {
		return errWorkerDown
	}
	if partitioned {
		<-ctx.Done()
		return errWorkerPartitioned
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	rec := newMemRecorder()
	w.srv.ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		return fmt.Errorf("healthz returned %d", rec.status)
	}
	return nil
}

// memRecorder captures one in-process worker response: status,
// headers, and a copy of the body.
type memRecorder struct {
	h      http.Header
	status int
	body   bytes.Buffer
}

func newMemRecorder() *memRecorder {
	return &memRecorder{h: make(http.Header, 4), status: http.StatusOK}
}

func (r *memRecorder) Header() http.Header         { return r.h }
func (r *memRecorder) WriteHeader(s int)           { r.status = s }
func (r *memRecorder) Write(b []byte) (int, error) { return r.body.Write(b) }

// reply converts the recorded response to the wire form, copying the
// body out of the recorder (the reply may outlive it).
func (r *memRecorder) reply() *WorkerReply {
	return &WorkerReply{
		Status:     r.status,
		Body:       append([]byte(nil), r.body.Bytes()...),
		Degraded:   r.h.Get("X-Degraded") == "true",
		XCache:     r.h.Get("X-Cache"),
		RetryAfter: parseRetryAfter(r.h.Get("Retry-After")),
	}
}

// HTTPTransport forwards over TCP to real worker processes via the
// retrying client — with retries disabled, because the frontend owns
// failover (it knows the ring and the health state; the transport
// retrying underneath it would double-charge the retry budget).
type HTTPTransport struct {
	clients map[string]*client.Client
	httpc   *http.Client
}

// NewHTTPTransport builds a transport over worker ID → base URL
// (e.g. "worker-0" → "http://10.0.0.5:8080"). httpc is the shared
// underlying client; nil uses http.DefaultClient.
func NewHTTPTransport(workers map[string]string, httpc *http.Client) *HTTPTransport {
	t := &HTTPTransport{clients: make(map[string]*client.Client, len(workers)), httpc: httpc}
	for id, base := range workers {
		t.clients[id] = &client.Client{BaseURL: base, HTTP: httpc, MaxRetries: -1}
	}
	return t
}

// Forward implements Transport over HTTP.
func (t *HTTPTransport) Forward(ctx context.Context, worker, path, account string, body []byte) (*WorkerReply, error) {
	cl := t.clients[worker]
	if cl == nil {
		return nil, errUnknownWorker
	}
	if account != "" {
		// The tenant namespace rides the path, not a header, so the
		// retrying client needs no header plumbing.
		path = "/v1/t/" + account + path[len("/v1"):]
	}
	res, err := cl.DoResult(ctx, path, body)
	if err == nil {
		return &WorkerReply{Status: http.StatusOK, Body: res.Body, Degraded: res.Degraded, XCache: res.XCache}, nil
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		return &WorkerReply{
			Status:     se.Status,
			Body:       []byte(se.Body),
			RetryAfter: se.RetryAfter,
		}, nil
	}
	return nil, err
}

// Check implements Transport: GET /healthz on the worker.
func (t *HTTPTransport) Check(ctx context.Context, worker string) error {
	cl := t.clients[worker]
	if cl == nil {
		return errUnknownWorker
	}
	httpc := t.httpc
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

// parseRetryAfter reads a whole-seconds Retry-After value, 0 when
// absent or malformed.
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// workerErrorMessage extracts the "error" field from a worker's JSON
// error body, falling back to the raw body.
func workerErrorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(body))
}
