package server

import (
	"bytes"
	"net/http"
	"net/url"
	"testing"
)

// nullResponseWriter is a reusable ResponseWriter that retains nothing,
// so a measurement loop sees only the handler stack's own allocations.
type nullResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) WriteHeader(s int)   { w.status = s }
func (w *nullResponseWriter) Write(b []byte) (int, error) {
	w.n += len(b)
	return len(b), nil
}

// resettableBody replays the same request body without reallocating.
type resettableBody struct{ bytes.Reader }

func (*resettableBody) Close() error { return nil }

// TestCacheHitAllocBudget pins the zero-alloc claim for the cache-hit
// fast path: a byte-identical repeat of a cached request must cost at
// most 2 heap allocations end to end through ServeHTTP (pooled read
// buffer, byte-keyed LRU probes, interned labels, shared header values,
// response written straight from cache-owned bytes). The load harness
// (cmd/mvcloudbench) reports the same number per endpoint; this test is
// the gate that keeps it from creeping.
func TestCacheHitAllocBudget(t *testing.T) {
	for _, c := range []struct {
		endpoint string
		body     string
	}{
		{"/v1/advise", adviseBody("mv1", `"budget":25`)},
		{"/v1/compare", sweepBody(`"fleet_sizes":[3]`)},
		{"/v1/sweep", sweepBody(`"fleet_sizes":[3]`)},
	} {
		t.Run(c.endpoint, func(t *testing.T) {
			s := testServer()
			if w := do(t, s, "POST", c.endpoint, c.body); w.Code != 200 {
				t.Fatalf("prime: %d: %s", w.Code, w.Body.String())
			}
			// Confirm the repeat actually takes the hit path before timing.
			if w := do(t, s, "POST", c.endpoint, c.body); w.Header().Get("X-Cache") != "hit" {
				t.Fatalf("repeat X-Cache = %q, want hit", w.Header().Get("X-Cache"))
			}

			body := &resettableBody{}
			req := &http.Request{
				Method: "POST",
				URL:    &url.URL{Path: c.endpoint},
				Body:   body,
			}
			w := &nullResponseWriter{h: make(http.Header)}
			allocs := testing.AllocsPerRun(200, func() {
				body.Reset([]byte(c.body))
				w.status = 0
				s.ServeHTTP(w, req)
				if w.status != 200 {
					t.Fatalf("status %d on hit path", w.status)
				}
			})
			if allocs > 2 {
				t.Errorf("cache-hit path costs %.1f allocs/request, budget 2", allocs)
			}
		})
	}
}

// BenchmarkAdviseCacheHitHot is the allocation-visible twin of
// BenchmarkAdviseCacheHit: it reuses the request and response writer so
// -benchmem shows the handler stack's own hit-path allocations rather
// than httptest recorder churn.
func BenchmarkAdviseCacheHitHot(b *testing.B) {
	s := New(Options{})
	w := postAdvise(b, s, benchBody)
	if w.Header().Get("X-Cache") != "miss" {
		b.Fatal("prime request did not miss")
	}
	body := &resettableBody{}
	req := &http.Request{
		Method: "POST",
		URL:    &url.URL{Path: "/v1/advise"},
		Body:   body,
	}
	nw := &nullResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Reset(benchBody)
		s.ServeHTTP(nw, req)
		if nw.status != 200 {
			b.Fatalf("status %d", nw.status)
		}
	}
}

// TestClusterFrontendCacheHitAllocBudget pins the same zero-alloc
// budget for a cluster frontend's hit path: routing only touches cold
// keys, so a warm repeat must cost exactly what a single-node hit does
// — the ring, health tracker and transport stay entirely off the path.
func TestClusterFrontendCacheHitAllocBudget(t *testing.T) {
	lc := NewLocalCluster(LocalClusterOptions{
		Workers: 2,
		// No background health loop: AllocsPerRun needs a quiet process.
		Cluster: ClusterOptions{HealthInterval: -1},
	})
	defer lc.Close()
	bodyStr := adviseBody("mv1", `"budget":25`)
	if w := do(t, lc.Frontend, "POST", "/v1/advise", bodyStr); w.Code != 200 {
		t.Fatalf("prime: %d: %s", w.Code, w.Body.String())
	}
	if w := do(t, lc.Frontend, "POST", "/v1/advise", bodyStr); w.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", w.Header().Get("X-Cache"))
	}

	body := &resettableBody{}
	req := &http.Request{
		Method: "POST",
		URL:    &url.URL{Path: "/v1/advise"},
		Body:   body,
	}
	w := &nullResponseWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(200, func() {
		body.Reset([]byte(bodyStr))
		w.status = 0
		lc.Frontend.ServeHTTP(w, req)
		if w.status != 200 {
			t.Fatalf("status %d on hit path", w.status)
		}
	})
	if allocs > 2 {
		t.Errorf("cluster-frontend hit path costs %.1f allocs/request, budget 2", allocs)
	}
}
