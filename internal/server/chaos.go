package server

import (
	"context"
	"hash/fnv"
	"time"
)

// ChaosConfig is the fault-injection harness: a deterministic chaos
// layer wrapped around the solve path, used by the overload loadgen
// scenarios and the race-mode e2e tests to exercise degradation,
// shedding, and panic containment without depending on real machine
// load. All decisions are pure functions of (Seed, site, cache key), so
// a given request either always or never gets a given fault regardless
// of goroutine scheduling — runs are reproducible and assertions can be
// exact.
type ChaosConfig struct {
	// Seed selects the fault pattern; two servers with the same seed and
	// probabilities inject faults on exactly the same request keys.
	Seed int64
	// LatencyProb is the probability a solve sleeps Latency before
	// running (deadline pressure: with a short RequestTimeout this forces
	// degraded responses and queue buildup).
	LatencyProb float64
	// Latency is the injected sleep; it respects the solve context, so a
	// cancelled solve does not linger in the sleep.
	Latency time.Duration
	// PanicProb is the probability a solve panics inside the recovered
	// region (exercising panic containment end to end).
	PanicProb float64
	// WorkerKillProb is the probability a cluster worker starts dead
	// (keyed per worker ID, not per request): its transport refuses
	// every forward with an immediate connection-reset-style error
	// until the worker is revived. Exercises failover and health
	// ejection.
	WorkerKillProb float64
	// PartitionProb is the probability a cluster worker starts
	// partitioned (keyed per worker ID): forwards to it hang until the
	// attempt deadline instead of failing fast — the nastier fault,
	// since only timeouts reveal it.
	PartitionProb float64
}

// roll maps (seed, site, key) to [0, 1) via FNV-1a. site keeps the
// latency and panic decisions for one key independent of each other.
func (c *ChaosConfig) roll(site string, key string) float64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(c.Seed >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(site))
	h.Write([]byte(key))
	// 53 bits of hash → exactly representable float64 in [0, 1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// sleep injects the configured latency for keys the seed selects,
// returning early if the solve context dies first.
func (c *ChaosConfig) sleep(ctx context.Context, key string) {
	if c == nil || c.LatencyProb <= 0 || c.Latency <= 0 {
		return
	}
	if c.roll("latency", key) >= c.LatencyProb {
		return
	}
	t := time.NewTimer(c.Latency)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// killsWorker reports whether the seed selects worker id to start
// dead. Keyed by worker, not request: a killed worker fails every
// forward, exactly like a crashed process.
func (c *ChaosConfig) killsWorker(id string) bool {
	if c == nil || c.WorkerKillProb <= 0 {
		return false
	}
	return c.roll("worker-kill", id) < c.WorkerKillProb
}

// partitionsWorker reports whether the seed selects worker id to start
// network-partitioned (forwards hang rather than fail fast).
func (c *ChaosConfig) partitionsWorker(id string) bool {
	if c == nil || c.PartitionProb <= 0 {
		return false
	}
	return c.roll("partition", id) < c.PartitionProb
}

// panics reports whether the seed selects this key for an injected
// solver panic. The caller raises the panic inside its recovered
// region, so containment — not the injection itself — is what gets
// tested.
func (c *ChaosConfig) panics(key string) bool {
	if c == nil || c.PanicProb <= 0 {
		return false
	}
	return c.roll("panic", key) < c.PanicProb
}
