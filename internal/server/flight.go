package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent identical cold solves: while one
// request is computing the response for a cache key, later arrivals for
// the same key wait on the same in-flight call instead of launching
// duplicate solves. A stampede of K identical requests therefore costs
// exactly one lattice build + solve; the K-1 followers are billed only a
// channel wait. The group holds no history — an entry lives exactly as
// long as its solve, so memory is bounded by in-flight distinct keys.
//
// The group also owns solve-lifetime bookkeeping: every waiter (leader
// and followers alike) is refcounted, and when the last waiter abandons
// a call (timeout or client disconnect) the solve's context is
// cancelled and the key retired immediately — the next request for the
// key leads a fresh solve instead of wedging on the abandoned one.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight solve. done is closed after out is set,
// so any number of followers can read out without further locking.
// waiters and cancel are guarded by the owning group's mutex.
type flightCall struct {
	done chan struct{}
	out  outcome
	// waiters counts requests currently blocked on done; when it drops
	// to zero before the solve finishes, nobody wants the result and the
	// solve is cancelled.
	waiters int
	// cancel stops the solve's context; set by the leader via setCancel
	// once the solve goroutine's context exists.
	cancel context.CancelFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the in-flight call for key, creating it if absent.
// leader is true for the caller that must actually run the solve and
// eventually call finish. Every joiner — leader included — must
// eventually either observe done or call leave.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		return c, false
	}
	c = &flightCall{done: make(chan struct{}), waiters: 1}
	g.calls[key] = c
	return c, true
}

// setCancel attaches the solve's cancel function to the call. If every
// waiter already left while the leader was starting the solve, the
// solve is cancelled on the spot.
func (g *flightGroup) setCancel(c *flightCall, cancel context.CancelFunc) {
	g.mu.Lock()
	c.cancel = cancel
	orphaned := c.waiters == 0
	g.mu.Unlock()
	if orphaned {
		cancel()
	}
}

// leave drops one waiter from the call (request timed out or client
// disconnected). When the last waiter leaves before the solve finishes,
// the solve is cancelled and the key retired so the next arrival leads
// a fresh solve — an abandoned call can never wedge the key.
func (g *flightGroup) leave(key string, c *flightCall) {
	g.mu.Lock()
	c.waiters--
	var cancel context.CancelFunc
	if c.waiters <= 0 {
		cancel = c.cancel
		if g.calls[key] == c {
			delete(g.calls, key)
		}
	}
	g.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// finish publishes the outcome to every waiter and retires the key, so
// the next request for it consults the response cache (or, on error,
// retries the solve) instead of reading a stale call. The key is only
// retired if this call still owns it — leave may have already retired
// it and a fresh call may be in flight. The solve context is cancelled
// afterwards to release its deadline timer.
func (g *flightGroup) finish(key string, c *flightCall, out outcome) {
	g.mu.Lock()
	if g.calls[key] == c {
		delete(g.calls, key)
	}
	cancel := c.cancel
	g.mu.Unlock()
	c.out = out
	close(c.done)
	if cancel != nil {
		cancel()
	}
}

// len reports the number of in-flight keys (test hook).
func (g *flightGroup) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
