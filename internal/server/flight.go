package server

import "sync"

// flightGroup coalesces concurrent identical cold solves: while one
// request is computing the response for a cache key, later arrivals for
// the same key wait on the same in-flight call instead of launching
// duplicate solves. A stampede of K identical requests therefore costs
// exactly one lattice build + solve; the K-1 followers are billed only a
// channel wait. The group holds no history — an entry lives exactly as
// long as its solve, so memory is bounded by in-flight distinct keys.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight solve. done is closed after out is set,
// so any number of followers can read out without further locking.
type flightCall struct {
	done chan struct{}
	out  outcome
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the in-flight call for key, creating it if absent.
// leader is true for the caller that must actually run the solve and
// eventually call finish.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the outcome to every waiter and retires the key, so
// the next request for it consults the response cache (or, on error,
// retries the solve) instead of reading a stale call.
func (g *flightGroup) finish(key string, c *flightCall, out outcome) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.out = out
	close(c.done)
}
