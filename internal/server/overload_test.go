package server

import (
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// drainSolves polls until no solve goroutine is live, failing the test
// if any survives the deadline — the detached-goroutine leak detector.
func drainSolves(t *testing.T, s *Server, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for s.InflightSolves() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.InflightSolves(); n != 0 {
		t.Fatalf("%d solve goroutines still live after %v", n, within)
	}
}

// TestShedRetryAfter drives the admission-control contract
// deterministically: with the heavy class's one worker occupied (a
// phantom backlog entry — no timing involved) and no queue, a sweep
// leader must be shed with 429 + a sane Retry-After, the cheap class
// must be unaffected, and the counters must surface the shed on
// /v1/stats and /metrics. Releasing the backlog restores service.
func TestShedRetryAfter(t *testing.T) {
	s := New(Options{HeavyWorkers: 1, HeavyQueue: -1})
	s.admHeavy.backlog.Add(1) // stand-in for an in-flight heavy solve

	w := do(t, s, "POST", "/v1/sweep", sweepBody(`"fleet_sizes":[3,5]`))
	if w.Code != 429 {
		t.Fatalf("status = %d, want 429; body %s", w.Code, w.Body.String())
	}
	ra := w.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 60 {
		t.Errorf("Retry-After = %q, want an integer in [1,60]", ra)
	}
	if !strings.Contains(w.Body.String(), "overloaded") {
		t.Errorf("shed body: %s", w.Body.String())
	}

	// The cheap class has its own pool: advise is untouched by the
	// heavy-class overload.
	if w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`)); w.Code != 200 {
		t.Fatalf("advise during heavy overload: status %d: %s", w.Code, w.Body.String())
	}

	if got := s.stats.shedCount(); got != 1 {
		t.Errorf("shed count = %d, want 1", got)
	}
	samples := scrape(t, s)
	if v, _ := findSample(samples, "mvcloud_stats_shed_total", nil); v != 1 {
		t.Errorf("mvcloud_stats_shed_total = %g, want 1", v)
	}
	if v, _ := findSample(samples, "mvcloud_http_requests_total",
		map[string]string{"endpoint": "sweep", "outcome": "shed"}); v != 1 {
		t.Errorf("requests_total{sweep,shed} = %g, want 1", v)
	}

	// Backlog drains → the same request is admitted and served.
	s.admHeavy.backlog.Add(-1)
	if w := do(t, s, "POST", "/v1/sweep", sweepBody(`"fleet_sizes":[3,5]`)); w.Code != 200 {
		t.Fatalf("post-drain sweep: status %d: %s", w.Code, w.Body.String())
	}
	drainSolves(t, s, 5*time.Second)
}

// TestStaleServeUnderShed pins the degradation ladder's stale tier: a
// shed advise request whose response was evicted from the primary
// cache is served the evicted entry with X-Cache: stale instead of a
// 429, byte-identical to the original response; a shed request with no
// stale entry still gets the 429.
func TestStaleServeUnderShed(t *testing.T) {
	s := New(Options{CacheSize: 1, AdviseWorkers: 1, AdviseQueue: -1})

	bodyA := adviseBody("mv1", `"budget":25`)
	wA := do(t, s, "POST", "/v1/advise", bodyA)
	if wA.Code != 200 {
		t.Fatalf("prime A: status %d: %s", wA.Code, wA.Body.String())
	}
	// B evicts A from the 1-entry primary cache into the stale tier.
	if w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":40`)); w.Code != 200 {
		t.Fatalf("prime B: status %d: %s", w.Code, w.Body.String())
	}
	if s.stale.Len() == 0 {
		t.Fatal("eviction did not populate the stale tier")
	}
	drainSolves(t, s, 5*time.Second)

	s.admCheap.backlog.Add(1) // cheap class saturated from here on

	// A's leader is shed, but its evicted response survives: 200, marked.
	w := do(t, s, "POST", "/v1/advise", bodyA)
	if w.Code != 200 {
		t.Fatalf("stale serve: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "stale" {
		t.Errorf("X-Cache = %q, want \"stale\"", got)
	}
	if w.Body.String() != wA.Body.String() {
		t.Error("stale response is not byte-identical to the original")
	}
	if got := s.stats.staleCount(); got != 1 {
		t.Errorf("stale count = %d, want 1", got)
	}

	// A request with no stale entry has nothing to fall back on: 429.
	if w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":33`)); w.Code != 429 {
		t.Errorf("shed without stale entry: status %d, want 429", w.Code)
	}

	samples := scrape(t, s)
	if v, _ := findSample(samples, "mvcloud_stats_stale_total", nil); v != 1 {
		t.Errorf("mvcloud_stats_stale_total = %g, want 1", v)
	}
	if v, _ := findSample(samples, "mvcloud_http_requests_total",
		map[string]string{"endpoint": "advise", "outcome": "stale"}); v != 1 {
		t.Errorf("requests_total{advise,stale} = %g, want 1", v)
	}
	s.admCheap.backlog.Add(-1)
	drainSolves(t, s, 5*time.Second)
}

// TestPanicContainment injects a solver panic on every solve (chaos
// PanicProb 1) and checks containment end to end: the request gets a
// 500, the panic is counted, and the daemon keeps serving — including
// further panicking solves — without dying.
func TestPanicContainment(t *testing.T) {
	s := New(Options{Chaos: &ChaosConfig{Seed: 1, PanicProb: 1}})

	w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`))
	if w.Code != 500 {
		t.Fatalf("status = %d, want 500; body %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "solve panic") {
		t.Errorf("panic body: %s", w.Body.String())
	}
	// The daemon survived: liveness and a second (also panicking) solve.
	if w := do(t, s, "GET", "/healthz", ""); w.Code != 200 {
		t.Fatalf("healthz after panic: status %d", w.Code)
	}
	if w := do(t, s, "POST", "/v1/compare", sweepBody(`"fleet_sizes":[3]`)); w.Code != 500 {
		t.Errorf("second panicking solve: status %d, want 500", w.Code)
	}
	if got := s.stats.panicCount(); got != 2 {
		t.Errorf("panic count = %d, want 2", got)
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("panicked solve cached %d entries", n)
	}
	samples := scrape(t, s)
	if v, _ := findSample(samples, "mvcloud_stats_solve_panics_total", nil); v != 2 {
		t.Errorf("mvcloud_stats_solve_panics_total = %g, want 2", v)
	}
	if v, _ := findSample(samples, "mvcloud_http_requests_total",
		map[string]string{"endpoint": "advise", "outcome": "panic"}); v != 1 {
		t.Errorf("requests_total{advise,panic} = %g, want 1", v)
	}
	drainSolves(t, s, 5*time.Second)
}

// TestDegradedAdvise puts a search solve under deadline pressure
// (chaos latency longer than RequestTimeout) and checks the graceful
// half of the ladder: 200 with the best incumbent, X-Degraded: true,
// "degraded":true on the wire, counted — and never cached, because a
// degraded body is timing-dependent.
func TestDegradedAdvise(t *testing.T) {
	s := New(Options{
		RequestTimeout: 100 * time.Millisecond,
		DegradeGrace:   5 * time.Second,
		// A wide worker pool keeps the admission wait estimate (mean solve
		// latency ≈ the deadline here, by construction) from shedding what
		// this test wants degraded.
		AdviseWorkers: 32,
		Chaos:         &ChaosConfig{Seed: 1, LatencyProb: 1, Latency: 10 * time.Second},
	})
	body := adviseBody("mv1", `"budget":25,"solver":"search"`)

	for round := 1; round <= 2; round++ {
		drainSolves(t, s, 5*time.Second)
		start := time.Now()
		w := do(t, s, "POST", "/v1/advise", body)
		elapsed := time.Since(start)
		if w.Code != 200 {
			t.Fatalf("round %d: status %d: %s", round, w.Code, w.Body.String())
		}
		// The chaos sleep respects the solve deadline: the response lands
		// at ~RequestTimeout, nowhere near the 10s injected latency.
		if elapsed > 3*time.Second {
			t.Errorf("round %d: degraded response took %v", round, elapsed)
		}
		if got := w.Header().Get("X-Degraded"); got != "true" {
			t.Errorf("round %d: X-Degraded = %q, want \"true\"", round, got)
		}
		// Round 2 being a miss proves round 1's degraded body was never
		// memoized.
		if got := w.Header().Get("X-Cache"); got != "miss" {
			t.Errorf("round %d: X-Cache = %q, want \"miss\"", round, got)
		}
		if !strings.Contains(w.Body.String(), `"degraded":true`) {
			t.Errorf("round %d: wire body lacks degraded flag: %s", round, w.Body.String())
		}
		if !strings.Contains(w.Body.String(), `"recommendation"`) {
			t.Errorf("round %d: degraded response has no recommendation", round)
		}
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("degraded responses were cached (%d entries)", n)
	}
	if got := s.stats.degradedCount(); got != 2 {
		t.Errorf("degraded count = %d, want 2", got)
	}
	samples := scrape(t, s)
	if v, _ := findSample(samples, "mvcloud_stats_degraded_total", nil); v != 2 {
		t.Errorf("mvcloud_stats_degraded_total = %g, want 2", v)
	}
	if v, _ := findSample(samples, "mvcloud_http_requests_total",
		map[string]string{"endpoint": "advise", "outcome": "degraded"}); v != 2 {
		t.Errorf("requests_total{advise,degraded} = %g, want 2", v)
	}
	drainSolves(t, s, 5*time.Second)
}

// TestNoDetachedSolvesAfterCancelledRequests is the leak regression
// test for the old detached-goroutine design: K requests whose clients
// are already gone must cancel their solves, leave no live solve
// goroutines, no in-flight keys, and — crucially — no cache entries
// (the old design's orphaned solves kept running and warmed the cache
// with results nobody asked to wait for).
func TestNoDetachedSolvesAfterCancelledRequests(t *testing.T) {
	s := New(Options{
		RequestTimeout: 30 * time.Second,
		Chaos:          &ChaosConfig{Seed: 1, LatencyProb: 1, Latency: 10 * time.Second},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client hung up before the handler even ran

	const K = 8
	for i := 0; i < K; i++ {
		body := adviseBody("mv1", `"budget":`+strconv.Itoa(20+i))
		req := httptest.NewRequest("POST", "/v1/advise", strings.NewReader(body)).WithContext(ctx)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != 503 {
			t.Fatalf("request %d: status %d, want 503 (cancelled)", i, w.Code)
		}
	}
	// Every abandoned solve must unwind long before its 10s injected
	// latency: cancellation, not completion, is what ends it.
	drainSolves(t, s, 3*time.Second)
	if n := s.flight.len(); n != 0 {
		t.Errorf("%d flight keys still registered", n)
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("cancelled solves warmed the cache with %d entries", n)
	}
}
