package server

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"vmcloud/internal/shard"
)

// shardHealth is shorthand for the detector tuning tests use.
func shardHealth(failThreshold int, cooldown time.Duration) shard.HealthConfig {
	return shard.HealthConfig{FailThreshold: failThreshold, Cooldown: cooldown}
}

// testCluster builds a LocalCluster with the background health loop
// disabled (tests drive the failure detector through CheckHealthNow)
// and registers cleanup.
func testCluster(t *testing.T, opts LocalClusterOptions) *LocalCluster {
	t.Helper()
	if opts.Cluster.HealthInterval == 0 {
		opts.Cluster.HealthInterval = -1
	}
	lc := NewLocalCluster(opts)
	t.Cleanup(lc.Close)
	return lc
}

// drainCluster waits for every solve goroutine across the whole
// topology — frontend and workers — to exit.
func drainCluster(t *testing.T, lc *LocalCluster, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for lc.InflightSolves() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := lc.InflightSolves(); n != 0 {
		t.Fatalf("%d solve goroutines still live across the cluster after %v", n, within)
	}
}

// ownerOf learns which worker the ring assigns a request by running it
// on a throwaway cluster with the same seed and fleet size (routing is
// a pure function of seed, worker IDs, and the canonical cache key, so
// the answer transfers to any identically-configured cluster). The
// probe cluster is healthy, so the caller's fault-detection tuning —
// tight attempt timeouts, hedge delays — is replaced with generous
// values: under -race a cold solve can outlast an AttemptTimeout sized
// for a partition drill, and the probe must never shed.
func ownerOf(t *testing.T, opts LocalClusterOptions, path, body string) string {
	t.Helper()
	opts.Cluster.AttemptTimeout = time.Minute
	opts.Cluster.HedgeAfter = 0
	lc := testCluster(t, opts)
	w := do(t, lc.Frontend, "POST", path, body)
	if w.Code != 200 {
		t.Fatalf("owner probe: status %d: %s", w.Code, w.Body.String())
	}
	owner := w.Header().Get("X-Worker")
	if owner == "" {
		t.Fatal("owner probe: no X-Worker header on a forwarded miss")
	}
	drainCluster(t, lc, 5*time.Second)
	return owner
}

// TestClusterForwardAndMemoize pins the frontend's basic contract: a
// cold request is forwarded to exactly one ring worker (X-Worker set,
// X-Cache: miss), the response fills the frontend cache, and the
// byte-identical repeat is served locally with no further forwards.
func TestClusterForwardAndMemoize(t *testing.T) {
	lc := testCluster(t, LocalClusterOptions{Workers: 3})
	body := adviseBody("mv1", `"budget":25`)

	w := do(t, lc.Frontend, "POST", "/v1/advise", body)
	if w.Code != 200 {
		t.Fatalf("cold: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("cold X-Cache = %q, want \"miss\"", got)
	}
	worker := w.Header().Get("X-Worker")
	if !strings.HasPrefix(worker, "worker-") {
		t.Errorf("X-Worker = %q, want a ring worker ID", worker)
	}
	if got := lc.Frontend.cluster.forwards.Load(); got != 1 {
		t.Errorf("forwards = %d, want 1", got)
	}

	// The worker solved it too, so its own cache holds the entry.
	drainCluster(t, lc, 5*time.Second)

	w2 := do(t, lc.Frontend, "POST", "/v1/advise", body)
	if w2.Code != 200 || w2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d, X-Cache %q, want 200/hit", w2.Code, w2.Header().Get("X-Cache"))
	}
	if w2.Body.String() != w.Body.String() {
		t.Error("cached repeat is not byte-identical to the forwarded original")
	}
	if got := lc.Frontend.cluster.forwards.Load(); got != 1 {
		t.Errorf("forwards after cache hit = %d, want still 1", got)
	}
}

// TestClusterRoutingDeterministic pins cross-frontend agreement: two
// independent frontends sharing a seed and fleet shape must route the
// same request to the same worker ID — the property that keeps each
// worker's cache hot for "its" keys no matter which frontend a client
// hits.
func TestClusterRoutingDeterministic(t *testing.T) {
	opts := LocalClusterOptions{Workers: 4, Cluster: ClusterOptions{Seed: 42}}
	body := adviseBody("mv1", `"budget":31`)
	a := ownerOf(t, opts, "/v1/advise", body)
	b := ownerOf(t, opts, "/v1/advise", body)
	if a != b {
		t.Errorf("same seed routed %q vs %q", a, b)
	}
	// A different seed should (for this key) be free to disagree; more
	// importantly it must still serve. Exact divergence is pinned by the
	// ring's own property tests.
	if w := do(t, testCluster(t, LocalClusterOptions{Workers: 4, Cluster: ClusterOptions{Seed: 7}}).Frontend,
		"POST", "/v1/advise", body); w.Code != 200 {
		t.Errorf("other-seed cluster: status %d", w.Code)
	}
}

// TestClusterFailoverOnDeadWorker kills a key's owner before the
// request: the first attempt fails fast (connection refused), the
// frontend fails over to the ring successor, and the client sees a
// plain 200 — the failure is invisible apart from the X-Worker header.
func TestClusterFailoverOnDeadWorker(t *testing.T) {
	opts := LocalClusterOptions{Workers: 3, Cluster: ClusterOptions{Seed: 5}}
	body := adviseBody("mv1", `"budget":25`)
	owner := ownerOf(t, opts, "/v1/advise", body)

	lc := testCluster(t, opts)
	lc.KillWorker(owner)
	w := do(t, lc.Frontend, "POST", "/v1/advise", body)
	if w.Code != 200 {
		t.Fatalf("failover: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Worker"); got == owner || got == "" {
		t.Errorf("X-Worker = %q, want a successor of dead %q", got, owner)
	}
	if got := lc.Frontend.cluster.failovers.Load(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	drainCluster(t, lc, 5*time.Second)
}

// TestClusterAllDownDegrades is the darkest corner: every worker dead.
// A key the frontend's stale tier still holds is served with
// X-Cache: stale; anything else is shed with 429 + Retry-After. No
// hangs, no raw 5xx.
func TestClusterAllDownDegrades(t *testing.T) {
	lc := testCluster(t, LocalClusterOptions{
		Workers:  2,
		Frontend: Options{CacheSize: 1},
	})
	bodyA := adviseBody("mv1", `"budget":25`)
	bodyB := adviseBody("mv1", `"budget":40`)

	if w := do(t, lc.Frontend, "POST", "/v1/advise", bodyA); w.Code != 200 {
		t.Fatalf("prime A: status %d: %s", w.Code, w.Body.String())
	}
	// B evicts A from the 1-entry frontend cache into the stale tier.
	if w := do(t, lc.Frontend, "POST", "/v1/advise", bodyB); w.Code != 200 {
		t.Fatalf("prime B: status %d: %s", w.Code, w.Body.String())
	}
	if lc.Frontend.stale.Len() == 0 {
		t.Fatal("eviction did not populate the frontend stale tier")
	}
	drainCluster(t, lc, 5*time.Second)
	for _, id := range lc.WorkerIDs() {
		lc.KillWorker(id)
	}

	// A's response is only in the stale tier: served, clearly marked.
	start := time.Now()
	w := do(t, lc.Frontend, "POST", "/v1/advise", bodyA)
	if w.Code != 200 || w.Header().Get("X-Cache") != "stale" {
		t.Fatalf("stale serve: status %d, X-Cache %q: %s", w.Code, w.Header().Get("X-Cache"), w.Body.String())
	}
	// B is still in the primary cache: an ordinary hit, fleet or no fleet.
	if w := do(t, lc.Frontend, "POST", "/v1/advise", bodyB); w.Header().Get("X-Cache") != "hit" {
		t.Errorf("resident key during outage: X-Cache = %q, want \"hit\"", w.Header().Get("X-Cache"))
	}
	// A cold key has nothing to fall back on: shed with backoff advice.
	w = do(t, lc.Frontend, "POST", "/v1/advise", adviseBody("mv1", `"budget":77`))
	if w.Code != 429 {
		t.Fatalf("cold key during outage: status %d, want 429: %s", w.Code, w.Body.String())
	}
	if secs, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", w.Header().Get("Retry-After"))
	}
	if !strings.Contains(w.Body.String(), "no healthy worker") {
		t.Errorf("shed body: %s", w.Body.String())
	}
	// Dead workers refuse instantly; nothing above may burn a timeout.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("all-down handling took %v, want fast-fail", elapsed)
	}
	if got := lc.Frontend.cluster.allDown.Load(); got < 2 {
		t.Errorf("allDown = %d, want ≥ 2", got)
	}
	drainCluster(t, lc, 5*time.Second)
}

// TestClusterHealthEjectionAndRecovery drives the failure detector
// deterministically: consecutive probe failures eject a worker, the
// cooldown grants a half-open probe, and a successful probe closes the
// breaker.
func TestClusterHealthEjectionAndRecovery(t *testing.T) {
	lc := testCluster(t, LocalClusterOptions{
		Workers: 2,
		Cluster: ClusterOptions{
			Health: shardHealth(2, 30*time.Millisecond),
		},
	})
	lc.KillWorker("worker-0")
	lc.Frontend.CheckHealthNow()
	lc.Frontend.CheckHealthNow()

	if !ejected(lc, "worker-0") {
		t.Fatal("worker-0 not ejected after 2 failed probes")
	}
	if ejected(lc, "worker-1") {
		t.Fatal("healthy worker-1 ejected")
	}

	// Still inside the cooldown: no probe slot, stays ejected.
	lc.Frontend.CheckHealthNow()
	if !ejected(lc, "worker-0") {
		t.Fatal("worker-0 probed before its cooldown elapsed")
	}

	lc.ReviveWorker("worker-0")
	time.Sleep(40 * time.Millisecond)
	lc.Frontend.CheckHealthNow()
	if ejected(lc, "worker-0") {
		t.Fatal("worker-0 still ejected after a successful half-open probe")
	}
}

func ejected(lc *LocalCluster, id string) bool {
	for _, w := range lc.Frontend.cluster.health.Snapshot() {
		if w.Worker == id {
			return w.Ejected
		}
	}
	return false
}

// TestClusterPartitionFailsOver pins the nastier fault: a partitioned
// owner swallows the request instead of refusing it, so only the
// per-attempt timeout reveals the failure — after which the successor
// serves.
func TestClusterPartitionFailsOver(t *testing.T) {
	opts := LocalClusterOptions{
		Workers: 2,
		Cluster: ClusterOptions{Seed: 11, AttemptTimeout: 100 * time.Millisecond},
	}
	body := adviseBody("mv1", `"budget":25`)
	owner := ownerOf(t, opts, "/v1/advise", body)

	lc := testCluster(t, opts)
	// Warm every worker's own cache so the successor answers the
	// failover instantly: the test times the partition *detection* (one
	// AttemptTimeout), and must not also race the successor's cold
	// solve against that same 100ms budget under -race.
	for _, ws := range lc.Workers {
		do(t, ws, "POST", "/v1/advise", body)
		drainSolves(t, ws, 5*time.Second)
	}
	lc.PartitionWorker(owner)
	start := time.Now()
	w := do(t, lc.Frontend, "POST", "/v1/advise", body)
	elapsed := time.Since(start)
	if w.Code != 200 {
		t.Fatalf("partition failover: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Worker"); got == owner {
		t.Errorf("served by the partitioned owner %q", got)
	}
	if elapsed < 100*time.Millisecond {
		t.Errorf("response in %v — the partition cannot have been detected before the attempt timeout", elapsed)
	}
	if got := lc.Frontend.cluster.failovers.Load(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	drainCluster(t, lc, 5*time.Second)
}

// TestClusterHedgedRequestWins pins hedging: a heavy (compare) solve
// whose primary is partitioned is duplicated onto the successor after
// the hedge delay, and the hedge's answer is served long before the
// primary's attempt timeout would fire.
func TestClusterHedgedRequestWins(t *testing.T) {
	opts := LocalClusterOptions{
		Workers: 2,
		Cluster: ClusterOptions{
			Seed:           3,
			AttemptTimeout: 5 * time.Second,
			HedgeAfter:     30 * time.Millisecond,
		},
	}
	body := sweepBody(`"fleet_sizes":[3]`)
	owner := ownerOf(t, opts, "/v1/compare", body)

	lc := testCluster(t, opts)
	// Warm the workers so the hedge is answered from the successor's
	// cache: the test pins the hedging mechanics, and a cold heavy
	// solve under -race could outlast even the 5s attempt timeout.
	for _, ws := range lc.Workers {
		do(t, ws, "POST", "/v1/compare", body)
		drainSolves(t, ws, 10*time.Second)
	}
	lc.PartitionWorker(owner)
	start := time.Now()
	w := do(t, lc.Frontend, "POST", "/v1/compare", body)
	elapsed := time.Since(start)
	if w.Code != 200 {
		t.Fatalf("hedged compare: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Worker"); got == owner {
		t.Errorf("served by the partitioned primary %q", got)
	}
	if elapsed >= 5*time.Second {
		t.Errorf("response took %v — the hedge should beat the attempt timeout", elapsed)
	}
	cl := lc.Frontend.cluster
	if cl.hedges.Load() != 1 || cl.hedgeWins.Load() != 1 {
		t.Errorf("hedges = %d, hedgeWins = %d, want 1/1", cl.hedges.Load(), cl.hedgeWins.Load())
	}
	// The hedged win is a success, not a failover.
	if got := cl.failovers.Load(); got != 0 {
		t.Errorf("failovers = %d, want 0", got)
	}
	drainCluster(t, lc, 5*time.Second)
}

// TestClusterWorkerShedPassthrough: an alive-but-overloaded owner's
// 429 is relayed with its Retry-After rather than treated as a failure
// — failing over would load the successor exactly when the fleet can
// least afford it.
func TestClusterWorkerShedPassthrough(t *testing.T) {
	lc := testCluster(t, LocalClusterOptions{
		Workers: 1,
		Worker:  Options{AdviseWorkers: 1, AdviseQueue: -1},
	})
	// A phantom backlog entry stands in for an in-flight solve on the
	// worker — deterministic, no timing.
	lc.Workers[0].admCheap.backlog.Add(1)

	w := do(t, lc.Frontend, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`))
	if w.Code != 429 {
		t.Fatalf("status %d, want 429 passthrough: %s", w.Code, w.Body.String())
	}
	if secs, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", w.Header().Get("Retry-After"))
	}
	cl := lc.Frontend.cluster
	if got := cl.failovers.Load(); got != 0 {
		t.Errorf("failovers = %d, want 0 (shed is not a failure)", got)
	}
	if got := cl.allDown.Load(); got != 0 {
		t.Errorf("allDown = %d, want 0", got)
	}

	// Backlog drains → the same request is admitted and served.
	lc.Workers[0].admCheap.backlog.Add(-1)
	if w := do(t, lc.Frontend, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`)); w.Code != 200 {
		t.Fatalf("post-drain advise: status %d: %s", w.Code, w.Body.String())
	}
	drainCluster(t, lc, 5*time.Second)
}

// TestClusterDegradedNotMemoized: a worker that degrades at its solve
// deadline marks the response, and the frontend relays the marker
// without memoizing the timing-dependent body — the repeat forwards
// again.
func TestClusterDegradedNotMemoized(t *testing.T) {
	lc := testCluster(t, LocalClusterOptions{
		Workers: 2,
		Worker: Options{
			RequestTimeout: 100 * time.Millisecond,
			DegradeGrace:   5 * time.Second,
			AdviseWorkers:  32,
			Chaos:          &ChaosConfig{Seed: 1, LatencyProb: 1, Latency: 10 * time.Second},
		},
	})
	body := adviseBody("mv1", `"budget":25,"solver":"search"`)
	for round := 1; round <= 2; round++ {
		w := do(t, lc.Frontend, "POST", "/v1/advise", body)
		if w.Code != 200 {
			t.Fatalf("round %d: status %d: %s", round, w.Code, w.Body.String())
		}
		if got := w.Header().Get("X-Degraded"); got != "true" {
			t.Errorf("round %d: X-Degraded = %q, want \"true\"", round, got)
		}
		// Round 2 missing proves round 1's degraded body was not cached.
		if got := w.Header().Get("X-Cache"); got != "miss" {
			t.Errorf("round %d: X-Cache = %q, want \"miss\"", round, got)
		}
		drainCluster(t, lc, 10*time.Second)
	}
	if n := lc.Frontend.cache.Len(); n != 0 {
		t.Errorf("frontend memoized %d degraded responses", n)
	}
}

// TestClusterStatsAndMetrics: the routing plane surfaces on /v1/stats
// (cluster section with per-worker health) and /metrics.
func TestClusterStatsAndMetrics(t *testing.T) {
	lc := testCluster(t, LocalClusterOptions{Workers: 2})
	if w := do(t, lc.Frontend, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`)); w.Code != 200 {
		t.Fatalf("prime: status %d", w.Code)
	}
	drainCluster(t, lc, 5*time.Second)

	w := do(t, lc.Frontend, "GET", "/v1/stats", "")
	for _, want := range []string{`"cluster"`, `"workers"`, `"worker-0"`, `"worker-1"`, `"forwards":1`} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("/v1/stats missing %s: %s", want, w.Body.String())
		}
	}
	samples := scrape(t, lc.Frontend)
	if v, _ := findSample(samples, "mvcloud_cluster_forwards_total", nil); v != 1 {
		t.Errorf("mvcloud_cluster_forwards_total = %g, want 1", v)
	}
	if v, _ := findSample(samples, "mvcloud_cluster_workers", nil); v != 2 {
		t.Errorf("mvcloud_cluster_workers = %g, want 2", v)
	}
	if v, _ := findSample(samples, "mvcloud_cluster_workers_ejected", nil); v != 0 {
		t.Errorf("mvcloud_cluster_workers_ejected = %g, want 0", v)
	}
}

// TestHedgeDelay pins the hedge-delay policy in isolation: fixed
// override wins, too few observations disable hedging, and once the
// class has history the delay is the observed quantile floored at
// HedgeFloor.
func TestHedgeDelay(t *testing.T) {
	lc := testCluster(t, LocalClusterOptions{
		Workers: 1,
		Cluster: ClusterOptions{HedgeMinObservations: 5, HedgeFloor: time.Millisecond},
	})
	s := lc.Frontend
	em := s.m.compare

	if d := s.hedgeDelay(em); d != 0 {
		t.Errorf("hedgeDelay with no history = %v, want 0", d)
	}
	for i := 0; i < 10; i++ {
		em.observe(outcomeSolve, 100*time.Millisecond)
	}
	d := s.hedgeDelay(em)
	if d < time.Millisecond {
		t.Errorf("hedgeDelay with history = %v, want ≥ floor", d)
	}
	if d < 100*time.Millisecond {
		t.Errorf("hedgeDelay = %v, want ≥ the observed 100ms latency (conservative quantile)", d)
	}

	s.cluster.opts.HedgeAfter = 7 * time.Millisecond
	if d := s.hedgeDelay(em); d != 7*time.Millisecond {
		t.Errorf("HedgeAfter override: hedgeDelay = %v, want 7ms", d)
	}
}

// TestClusterChaosSeededFaults: the deterministic chaos harness
// pre-kills/partitions the same workers for the same seed, so chaos
// runs reproduce exactly.
func TestClusterChaosSeededFaults(t *testing.T) {
	faults := func(seed int64) (killed []string) {
		c := &ChaosConfig{Seed: seed, WorkerKillProb: 0.5}
		for _, id := range []string{"worker-0", "worker-1", "worker-2", "worker-3"} {
			if c.killsWorker(id) {
				killed = append(killed, id)
			}
		}
		return
	}
	a, b := faults(9), faults(9)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("same seed chose different victims: %v vs %v", a, b)
	}
	// With prob 0.5 over 4 workers, seeds that kill at least one worker
	// exist in any short scan; pin one seed's choice is stable rather
	// than a specific victim set.
	found := false
	for seed := int64(0); seed < 16 && !found; seed++ {
		found = len(faults(seed)) > 0
	}
	if !found {
		t.Error("no seed in [0,16) kills any worker at prob 0.5 — roll is broken")
	}
}
