// Package server exposes the view-materialization advisor as a JSON HTTP
// API — the serving layer of cmd/mvcloudd.
//
// Endpoints:
//
//	POST /v1/advise  — solve one of the paper's scenarios (mv1/mv2/mv3)
//	                   or sweep the pareto frontier for a JSON-described
//	                   advisory problem
//	POST /v1/compare — fan the same advisory problem out across provider
//	                   × instance × fleet configurations and return the
//	                   ranked cross-provider comparison
//	POST /v1/sweep   — re-price one objective across a tariff grid
//	                   (providers × instance types × fleet sizes) and
//	                   return every cell's bill plus the winner
//	GET  /v1/tariffs — the built-in provider catalog, structured and as
//	                   pre-rendered tables
//	GET  /v1/stats   — serving counters: requests, cache hits/misses,
//	                   per-scenario breakdown
//	GET  /healthz    — liveness probe
//
// The advisor is deterministic: the same advisory problem always yields
// the same recommendation — including the metaheuristic search solver,
// whose seed is part of the canonicalized request (and zeroed for the
// seed-independent knapsack solver, so seed spellings cannot fragment
// the key space). Advise and compare responses are therefore memoized in
// a shared size-bounded LRU cache keyed by the endpoint plus the
// canonicalized request (defaults applied, workload resolved, tariff
// re-marshaled), so a repeated configuration skips lattice construction,
// candidate generation and the solve entirely. Handlers are safe for
// concurrent use. The cache-hit path writes the response straight from
// the cache-owned bytes without copying or allocating (values are
// replaced wholesale, never mutated in place), and concurrent identical
// cold requests are coalesced into a single solve (X-Cache: miss for
// the leader, coalesced for the followers, hit once warm).
// GET /v1/stats breaks cache occupancy and hit rates down per endpoint.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmcloud/internal/compare"
	"vmcloud/internal/core"
	"vmcloud/internal/money"
	"vmcloud/internal/obs"
	"vmcloud/internal/pricing"
	"vmcloud/internal/report"
)

// Options tunes a Server. Zero values select sensible defaults.
type Options struct {
	// CacheSize bounds the advise cache entry count; default 256.
	// Negative disables caching.
	CacheSize int
	// CacheMaxBytes bounds the resident bytes of each advise cache
	// (responses and raw-body keys are bounded separately); default
	// 64 MB. Negative removes the byte bound.
	CacheMaxBytes int64
	// RequestTimeout bounds one solve's wall clock; default 30s. Every
	// solve runs under a context carrying this deadline: search-based
	// solves stop at the deadline and return their best incumbent marked
	// degraded, and a solve all of whose waiters have left (timeout,
	// disconnect) is cancelled outright rather than orphaned.
	RequestTimeout time.Duration
	// DegradeGrace is how much longer than RequestTimeout a request
	// waits for its solve's degraded result before giving up with 503;
	// default 2s. The solve's own deadline fires first, so under
	// deadline pressure clients normally get a degraded 200, not a
	// timeout.
	DegradeGrace time.Duration
	// AdviseWorkers and HeavyWorkers bound the concurrent solves of the
	// cheap (advise) and heavy (compare + sweep) admission classes;
	// default GOMAXPROCS each. The classes have separate pools, so a
	// flood of heavy solves cannot starve cheap ones.
	AdviseWorkers int
	HeavyWorkers  int
	// AdviseQueue and HeavyQueue bound how many admitted solves may wait
	// behind the running ones before new leaders are shed with 429 +
	// Retry-After; default 256 each, negative for no queue at all (shed
	// as soon as every worker is busy).
	AdviseQueue int
	HeavyQueue  int
	// Chaos, when non-nil, enables the deterministic fault-injection
	// harness (seeded injected solve latency and panics, plus worker
	// kill/partition faults in cluster mode); used by the overload and
	// cluster-chaos load scenarios and tests, never in normal serving.
	Chaos *ChaosConfig
	// Cluster, when non-nil, runs this server as a stateless cluster
	// frontend: requests are canonicalized, memoized and coalesced
	// locally, but cold solves are forwarded to the ring-selected
	// worker over Cluster.Transport instead of solving in-process.
	Cluster *ClusterOptions
	// MaxFactRows rejects absurd dataset sizes; default 100 billion rows.
	MaxFactRows int64
	// MaxQueries bounds an explicit workload; default 64.
	MaxQueries int
	// MaxCandidates bounds candidate_budget; default 16 (the lattice has
	// 16 cuboids).
	MaxCandidates int
	// MaxParetoSteps bounds a pareto sweep; default 101.
	MaxParetoSteps int
	// MaxCompareConfigs bounds the provider × instance × fleet grid a
	// single compare request may fan out; default 64.
	MaxCompareConfigs int
	// CompareWorkers bounds the compare fan-out worker pool; default
	// GOMAXPROCS.
	CompareWorkers int
	// SlowSolveThreshold, when positive, logs a structured line to
	// SlowLog for every cold solve whose wall time reaches it, with the
	// per-phase breakdown. Zero disables slow-solve logging.
	SlowSolveThreshold time.Duration
	// SlowLog receives slow-solve log lines (one JSON object per line);
	// defaults to os.Stderr when SlowSolveThreshold is set.
	SlowLog io.Writer
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.CacheMaxBytes == 0 {
		o.CacheMaxBytes = 64 << 20
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxFactRows == 0 {
		o.MaxFactRows = 100_000_000_000
	}
	if o.MaxQueries == 0 {
		o.MaxQueries = 64
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 16
	}
	if o.MaxParetoSteps == 0 {
		o.MaxParetoSteps = 101
	}
	if o.MaxCompareConfigs == 0 {
		o.MaxCompareConfigs = 64
	}
	if o.DegradeGrace == 0 {
		o.DegradeGrace = 2 * time.Second
	}
	if o.AdviseWorkers == 0 {
		o.AdviseWorkers = runtime.GOMAXPROCS(0)
	}
	if o.HeavyWorkers == 0 {
		o.HeavyWorkers = runtime.GOMAXPROCS(0)
	}
	if o.AdviseQueue == 0 {
		o.AdviseQueue = 256
	}
	if o.HeavyQueue == 0 {
		o.HeavyQueue = 256
	}
	if o.SlowSolveThreshold > 0 && o.SlowLog == nil {
		o.SlowLog = os.Stderr
	}
	return o
}

// Server is the HTTP serving layer over the advisor core.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *lruCache
	// rawKeys maps verbatim request bodies to their canonical cache key,
	// letting byte-identical repeats skip JSON decoding and request
	// canonicalization (which builds a lattice to resolve the workload).
	rawKeys *lruCache
	// flight coalesces concurrent identical cold solves so a stampede of
	// K requests for one canonical key costs exactly one solve.
	flight *flightGroup
	stats  *stats
	// reg is this server's metric namespace (plus obs.Default, rendered
	// after it by GET /metrics); m holds the resolved instruments.
	reg *obs.Registry
	m   serverMetrics
	// admCheap and admHeavy are the two admission classes: bounded solve
	// queues + worker pools for advise vs compare/sweep.
	admCheap *admission
	admHeavy *admission
	// stale holds responses evicted from the primary cache; shed advise
	// requests may be served from it (X-Cache: stale) instead of a 429.
	stale *lruCache
	// chaos is the optional fault-injection harness (Options.Chaos).
	chaos *ChaosConfig
	// inflightSolves counts live solve goroutines — the leak-detection
	// hook behind InflightSolves.
	inflightSolves atomic.Int64
	// slowMu serializes slow-solve log lines.
	slowMu sync.Mutex
	// cluster, when non-nil, turns this server into a stateless cluster
	// frontend: cold solves are forwarded to ring-selected workers
	// instead of running locally (Options.Cluster).
	cluster *clusterState
	// closed stops background goroutines (the cluster health loop);
	// closeOnce makes Close idempotent.
	closed    chan struct{}
	closeOnce sync.Once
	// tenants lazily registers per-account request counters for
	// /metrics (bounded; see tenant.go).
	tenants tenantMetrics
}

// New builds a server. Cluster-frontend servers (Options.Cluster set)
// start a background health-check loop; call Close to stop it. New
// panics on an invalid cluster configuration — a frontend that cannot
// route is a construction error, not a runtime condition.
func New(opts Options) *Server {
	s := &Server{
		opts:   opts.withDefaults(),
		flight: newFlightGroup(),
		stats:  newStats(time.Now()),
		reg:    obs.NewRegistry(),
		closed: make(chan struct{}),
	}
	s.cache = newLRUCache(s.opts.CacheSize, s.opts.CacheMaxBytes)
	s.rawKeys = newLRUCache(s.opts.CacheSize, s.opts.CacheMaxBytes)
	s.stale = newLRUCache(s.opts.CacheSize, s.opts.CacheMaxBytes)
	// Responses the primary cache evicts for capacity become the stale
	// serving tier (graceful degradation under overload).
	s.cache.onEvict = func(key string, val []byte) { s.stale.Put(key, val) }
	s.chaos = s.opts.Chaos
	s.m = s.newServerMetrics(s.reg)
	s.admCheap = newAdmission("cheap", s.opts.AdviseWorkers, s.opts.AdviseQueue,
		s.m.advise.latency[outcomeSolve], s.m.advise.latency[outcomeDegraded])
	s.admHeavy = newAdmission("heavy", s.opts.HeavyWorkers, s.opts.HeavyQueue,
		s.m.compare.latency[outcomeSolve], s.m.compare.latency[outcomeDegraded],
		s.m.sweep.latency[outcomeSolve], s.m.sweep.latency[outcomeDegraded])
	if opts.Cluster != nil {
		cl, err := newClusterState(*opts.Cluster, s.opts.RequestTimeout)
		if err != nil {
			panic("server: " + err.Error())
		}
		s.cluster = cl
		cl.registerClusterMetrics(s.reg)
		if cl.opts.HealthInterval > 0 {
			go s.healthLoop()
		}
	}
	s.tenants.init(s.reg)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/advise", s.counted("advise", s.handleAdvise))
	s.mux.HandleFunc("POST /v1/compare", s.counted("compare", s.handleCompare))
	s.mux.HandleFunc("POST /v1/sweep", s.counted("sweep", s.handleSweep))
	// Tenant-scoped aliases: the {account} path segment namespaces the
	// memoization caches and the per-tenant stats, so tenants can
	// neither poison nor read each other's entries. The default routes
	// accept the same namespace via the X-Account header.
	s.mux.HandleFunc("POST /v1/t/{account}/advise", s.counted("advise", s.handleAdvise))
	s.mux.HandleFunc("POST /v1/t/{account}/compare", s.counted("compare", s.handleCompare))
	s.mux.HandleFunc("POST /v1/t/{account}/sweep", s.counted("sweep", s.handleSweep))
	s.mux.HandleFunc("GET /v1/tariffs", s.counted("tariffs", s.handleTariffs))
	s.mux.HandleFunc("GET /v1/stats", s.counted("stats", s.handleStats))
	s.mux.HandleFunc("GET /v1/version", s.counted("version", s.handleVersion))
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))
	return s
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics renders the server's metric registry followed by the
// process-wide solver registry — exactly what GET /metrics serves.
// Exposed for the load harness, which embeds the server-side latency
// histograms in its report.
func (s *Server) Metrics(w io.Writer) error {
	if err := s.reg.WritePrometheus(w); err != nil {
		return err
	}
	return obs.Default.WritePrometheus(w)
}

// InflightSolves reports the number of live solve goroutines (queued,
// running, or finishing). After every request has drained it must
// return to zero — the leak-detection hook for tests and the load
// harness, replacing "count goroutines and hope".
func (s *Server) InflightSolves() int64 { return s.inflightSolves.Load() }

func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.request(endpoint)
		s.m.inflight.Add(1)
		h(w, r)
		s.m.inflight.Add(-1)
	}
}

// AdviseRequest is the body of POST /v1/advise: a scenario selector, its
// parameter, and the advisory problem (flattened ConfigJSON fields).
type AdviseRequest struct {
	// Scenario is "mv1" (budget), "mv2" (deadline), "mv3" (tradeoff) or
	// "pareto"; default "mv1".
	Scenario string `json:"scenario,omitempty"`
	// Budget is the MV1 spending limit ("$25.00" or a number of dollars);
	// required for mv1.
	Budget *money.Money `json:"budget,omitempty"`
	// Limit is the MV2 response-time limit as a Go duration ("4h");
	// required for mv2.
	Limit string `json:"limit,omitempty"`
	// Alpha is the MV3 weight on time in [0,1]; default 0.5.
	Alpha *float64 `json:"alpha,omitempty"`
	// Steps is the pareto sweep resolution; default 11.
	Steps int `json:"steps,omitempty"`

	core.ConfigJSON
}

// normalize canonicalizes the request in place: scenario defaults and
// parameter validation, scenario-irrelevant parameters zeroed (so they
// cannot fragment the cache), and the config fully resolved.
func (s *Server) normalize(req *AdviseRequest) error {
	req.Scenario = strings.ToLower(strings.TrimSpace(req.Scenario))
	if req.Scenario == "" {
		req.Scenario = "mv1"
	}
	switch req.Scenario {
	case "mv1":
		if req.Budget == nil {
			return errors.New("budget required for scenario mv1")
		}
		if req.Budget.IsNegative() {
			return fmt.Errorf("negative budget %v", *req.Budget)
		}
		req.Limit, req.Alpha, req.Steps = "", nil, 0
	case "mv2":
		if req.Limit == "" {
			return errors.New("limit required for scenario mv2")
		}
		d, err := time.ParseDuration(req.Limit)
		if err != nil {
			return fmt.Errorf("limit: %v", err)
		}
		if d <= 0 {
			return fmt.Errorf("non-positive limit %v", d)
		}
		req.Limit = d.String()
		req.Budget, req.Alpha, req.Steps = nil, nil, 0
	case "mv3":
		if req.Alpha == nil {
			a := 0.5
			req.Alpha = &a
		}
		if *req.Alpha < 0 || *req.Alpha > 1 {
			return fmt.Errorf("alpha %g out of [0,1]", *req.Alpha)
		}
		req.Budget, req.Limit, req.Steps = nil, "", 0
	case "pareto":
		if req.Steps == 0 {
			req.Steps = 11
		}
		if req.Steps < 2 || req.Steps > s.opts.MaxParetoSteps {
			return fmt.Errorf("steps %d out of [2,%d]", req.Steps, s.opts.MaxParetoSteps)
		}
		req.Budget, req.Limit, req.Alpha = nil, "", nil
	default:
		return fmt.Errorf("unknown scenario %q (want mv1, mv2, mv3 or pareto)", req.Scenario)
	}
	if err := req.ConfigJSON.Normalize(); err != nil {
		return err
	}
	if req.FactRows > s.opts.MaxFactRows {
		return fmt.Errorf("fact_rows %d exceeds the server limit %d", req.FactRows, s.opts.MaxFactRows)
	}
	if len(req.Workload) > s.opts.MaxQueries {
		return fmt.Errorf("workload of %d queries exceeds the server limit %d", len(req.Workload), s.opts.MaxQueries)
	}
	if req.CandidateBudget > s.opts.MaxCandidates {
		return fmt.Errorf("candidate_budget %d exceeds the server limit %d", req.CandidateBudget, s.opts.MaxCandidates)
	}
	return nil
}

// outcome is a finished solve: the marshaled response body or an error,
// plus the leader's per-phase trace (shared with followers; a Trace is
// read-safe under concurrency) and the overload disposition — shed by
// admission control (optionally with a stale body to serve instead of
// the 429), degraded at the solve deadline, or a contained panic.
type outcome struct {
	body   []byte
	err    error
	phases *obs.Trace
	// degraded marks a solve that stopped at its deadline with the best
	// incumbent; the body is valid but timing-dependent, so it is never
	// cached and the response carries X-Degraded: true.
	degraded bool
	// shed means admission control (or, in cluster mode, an all-down
	// ring neighborhood) refused the solve; retryAfter is the backoff to
	// advertise and shedMsg the optional reason (defaulting to the
	// admission-control message). When stale is also set, body holds an
	// evicted cache entry to serve (200, X-Cache: stale) instead.
	shed       bool
	stale      bool
	retryAfter time.Duration
	shedMsg    string
	// panicked marks a solve that panicked and was contained; err holds
	// the panic value and the response is a 500.
	panicked bool
	// worker, in cluster mode, names the worker that served the solve
	// (surfaced as X-Worker for tests and debugging).
	worker string
}

// AdviseResponse is the body of a successful POST /v1/advise.
type AdviseResponse struct {
	Scenario string `json:"scenario"`
	// DatasetSize is the base cuboid volume the config implies.
	DatasetSize string `json:"dataset_size"`
	// Candidates is the size of the pre-selected candidate view pool.
	Candidates     int                      `json:"candidates"`
	Recommendation *core.RecommendationJSON `json:"recommendation,omitempty"`
	Pareto         []core.ParetoPointJSON   `json:"pareto,omitempty"`
	// Degraded is set when the solve stopped at its deadline and the
	// recommendation (or some pareto point) is a best incumbent rather
	// than a converged result. Omitted when false, so non-degraded
	// responses are byte-identical to earlier server versions.
	Degraded bool `json:"degraded,omitempty"`
}

// memoSpec wires one deterministic POST endpoint into the shared
// memoization flow: raw-body fast path, canonical-key response cache,
// bounded solve with background cache warm on timeout/cancel. The
// endpoint name namespaces both caches, so identical bodies posted to
// different endpoints can never alias.
type memoSpec struct {
	endpoint string
	// canon decodes and canonicalizes the raw body into handler state and
	// returns the canonical cache key plus the stats label.
	canon func(raw []byte) (key, label string, err error)
	// reload rebuilds handler state from a canonical key — the raw-body
	// fast path hit but the cached response was evicted. The canonical
	// key is itself a normalized request body.
	reload func(key string) error
	// solve computes the marshaled, newline-terminated response body from
	// the handler state canon or reload established, recording per-phase
	// durations on tr (never nil; solve implementations thread it into
	// the core config and time their own encode step). ctx carries the
	// solve deadline; implementations thread it into the core so the
	// search degrades at the deadline, and report whether the result is
	// degraded (true ⇒ the body must not be cached).
	solve func(ctx context.Context, tr *obs.Trace) ([]byte, bool, error)
}

// maxRequestBytes bounds one request body.
const maxRequestBytes = 1 << 20

// reqBuf is a pooled request-read buffer. The buffer accumulates
// "<endpoint>\x00<verbatim body>" — exactly the raw-key layout — so the
// hit path probes both LRUs without assembling a single string.
type reqBuf struct{ b []byte }

var reqBufPool = sync.Pool{New: func() any { return &reqBuf{b: make([]byte, 0, 4096)} }}

// errBodyTooLarge is built once at init: readBody runs on every
// request and must not pay fmt's reflection-and-allocate on the
// oversized-body rejection path either.
var errBodyTooLarge = errors.New("request body exceeds " + strconv.Itoa(maxRequestBytes) + " bytes")

// readBody appends r to buf until EOF, failing once the buffer exceeds
// limit bytes. Reading into a pooled buffer keeps the steady-state hit
// path allocation-free where io.ReadAll would grow a fresh slice per
// request.
//
//mvlint:hotpath
func readBody(r io.Reader, buf []byte, limit int) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if len(buf) > limit {
			return buf, errBodyTooLarge
		}
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// knownLabels interns the stats labels the hit path touches, so parsing
// a packed raw-key entry never allocates a fresh string.
var knownLabels = [...]string{"mv1", "mv2", "mv3", "pareto", "compare", "sweep"}

//mvlint:hotpath
func internLabel(b []byte) string {
	for _, l := range knownLabels {
		if string(b) == l {
			return l
		}
	}
	return string(b)
}

// probeState carries what the cache probe learned into the slow path:
// the verbatim body and, when the raw-key LRU still knew the body but
// the response was evicted, the recovered canonical key.
type probeState struct {
	// rawKey is the pooled "<endpoint>\x00<account>\x00<body>" buffer
	// (valid only for the duration of the request); raw is the body
	// slice of it.
	rawKey []byte
	raw    []byte
	// account is the request's tenant namespace ("" for the default
	// namespace); part of both cache key layouts.
	account string
	// label/key/cacheKey are set when the probe recovered the canonical
	// key from the raw-key LRU (evicted-response case); empty otherwise.
	label, key, cacheKey string
	// start is when serveMemoized began handling the request, and em the
	// endpoint's outcome-split instruments — carried through so the slow
	// path's latency observation covers body read and canonicalization.
	start time.Time
	em    *endpointMetrics
}

// slowFn is a handler's miss path. Implementations are top-level
// functions (not per-request closures), so the hit path stays
// allocation-free; they decode request state and hand a memoSpec to
// finishMemoized.
type slowFn func(s *Server, w http.ResponseWriter, r *http.Request, ps probeState)

// serveMemoized runs the shared flow. A byte-identical body seen before
// maps straight to its response cache key (the raw-key LRU stores
// "<label>\x00<endpoint>\x00<canonical key>"), skipping JSON decoding and
// canonicalization — which builds a lattice to resolve the workload — on
// every repeat. The repeat-hit path is allocation-free: pooled read
// buffer, byte-keyed LRU probes, interned labels, shared header values,
// the response written straight from cache-owned bytes, and no
// per-request closures (the slow path is a static slowFn). Cold keys go
// through the flight group, so concurrent identical requests coalesce
// onto a single solve.
func (s *Server) serveMemoized(w http.ResponseWriter, r *http.Request, endpoint string, em *endpointMetrics, slow slowFn) {
	start := time.Now()
	account, ok := accountFrom(r)
	if !ok {
		s.stats.failure()
		writeError(w, http.StatusBadRequest, "invalid account id (want 1-64 chars of [a-zA-Z0-9_-])")
		em.observe(outcomeError, time.Since(start))
		return
	}
	if account != "" {
		s.stats.tenantRequest(account)
		s.tenants.record(account)
	}
	rb := reqBufPool.Get().(*reqBuf)
	defer func() { rb.b = rb.b[:0]; reqBufPool.Put(rb) }()
	rb.b = append(rb.b[:0], endpoint...)
	rb.b = append(rb.b, 0)
	rb.b = append(rb.b, account...)
	rb.b = append(rb.b, 0)
	prefix := len(rb.b)
	var err error
	rb.b, err = readBody(r.Body, rb.b, prefix+maxRequestBytes)
	if err != nil {
		s.stats.failure()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read request: %v", err))
		em.observe(outcomeError, time.Since(start))
		return
	}
	ps := probeState{rawKey: rb.b, raw: rb.b[prefix:], account: account, start: start, em: em}

	if packed, ok := s.rawKeys.view(rb.b); ok {
		if i := bytes.IndexByte(packed, 0); i >= 0 {
			// Fast path: the response for this verbatim body is resident.
			if body, ok := s.cache.view(packed[i+1:]); ok {
				s.stats.advise(endpoint, internLabel(packed[:i]), true)
				writeBody(w, http.StatusOK, body, "hit")
				em.observe(outcomeHit, time.Since(start))
				return
			}
			// Response evicted; the canonical key spares re-canonicalizing.
			ps.label = internLabel(packed[:i])
			ps.cacheKey = string(packed[i+1:])
			ps.key = ps.cacheKey[prefix:]
		}
	}
	slow(s, w, r, ps)
}

// finishMemoized is the shared miss path: canonicalize (or reload from
// the recovered canonical key), re-probe the response cache for
// differently-spelled equivalents, then solve under the flight group.
func (s *Server) finishMemoized(w http.ResponseWriter, r *http.Request, spec memoSpec, ps probeState) {
	key, label, cacheKey := ps.key, ps.label, ps.cacheKey
	if key == "" {
		var err error
		key, label, err = spec.canon(ps.raw)
		if err != nil {
			s.stats.failure()
			writeError(w, http.StatusBadRequest, err.Error())
			ps.em.observe(outcomeError, time.Since(ps.start))
			return
		}
		cacheKey = spec.endpoint + "\x00" + ps.account + "\x00" + key
		s.rawKeys.Put(string(ps.rawKey), []byte(label+"\x00"+cacheKey))
		// A differently-spelled equivalent request may have already
		// cached the canonical response.
		if cached, ok := s.cache.Get(cacheKey); ok {
			s.stats.advise(spec.endpoint, label, true)
			writeBody(w, http.StatusOK, cached, "hit")
			ps.em.observe(outcomeHit, time.Since(ps.start))
			return
		}
	} else if s.cluster == nil {
		// The canonical key was recovered from the raw-key LRU; rebuild
		// the handler state the local solve needs. A cluster frontend
		// skips this: it forwards the canonical body instead of solving.
		if err := spec.reload(key); err != nil {
			s.stats.failure()
			writeError(w, http.StatusInternalServerError, err.Error())
			ps.em.observe(outcomeError, time.Since(ps.start))
			return
		}
	}

	// Singleflight: the first request for a cold key runs the solve; any
	// concurrent identical request joins the same in-flight call. The
	// solve runs under its own deadline context (not the request's — a
	// follower may outlive the leader's request); when every waiter
	// leaves early, the flight group cancels the solve rather than
	// letting it run detached. The leader's trace rides the outcome, so
	// followers can surface the phase breakdown too.
	call, leader := s.flight.join(cacheKey)
	if leader {
		sctx, cancel := context.WithTimeout(context.Background(), s.opts.RequestTimeout)
		s.flight.setCancel(call, cancel)
		if s.cluster != nil {
			go s.runForward(sctx, spec, label, ps.account, key, cacheKey, ps.em, call)
		} else {
			go s.runSolve(sctx, spec, label, cacheKey, call)
		}
	}

	// The request waits past the solve deadline by DegradeGrace: the
	// solve's own deadline fires first and delivers a degraded result,
	// so this backstop only trips when a solve fails to degrade
	// promptly (e.g. wedged outside the search loop).
	ctx := r.Context()
	backstop := time.NewTimer(s.opts.RequestTimeout + s.opts.DegradeGrace)
	defer backstop.Stop()
	select {
	case <-call.done:
		s.respondSolved(w, r, spec.endpoint, label, leader, call.out, ps)
	case <-backstop.C:
		s.flight.leave(cacheKey, call)
		s.stats.failure()
		writeError(w, http.StatusServiceUnavailable, "request timed out")
		ps.em.observe(outcomeError, time.Since(ps.start))
	case <-ctx.Done():
		s.flight.leave(cacheKey, call)
		s.stats.failure()
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
		ps.em.observe(outcomeError, time.Since(ps.start))
	}
}

// respondSolved maps a finished solve's outcome onto the HTTP response
// and the outcome-split instruments.
func (s *Server) respondSolved(w http.ResponseWriter, r *http.Request, endpoint, label string, leader bool, out outcome, ps probeState) {
	if out.worker != "" {
		w.Header().Set("X-Worker", out.worker)
	}
	switch {
	case out.shed && out.stale:
		// Admission (or an all-down ring neighborhood) refused the solve
		// but an evicted cached response for this exact key survives:
		// serve it, clearly marked.
		s.stats.staleServe()
		writeBody(w, http.StatusOK, out.body, "stale")
		ps.em.observe(outcomeStale, time.Since(ps.start))
	case out.shed:
		s.stats.shedReq()
		w.Header().Set("Retry-After", strconv.FormatInt(ceilSeconds(out.retryAfter), 10))
		msg := out.shedMsg
		if msg == "" {
			msg = "overloaded: solve queue full, retry later"
		}
		writeError(w, http.StatusTooManyRequests, msg)
		ps.em.observe(outcomeShed, time.Since(ps.start))
	case out.panicked:
		s.stats.panicked()
		s.stats.failure()
		writeError(w, http.StatusInternalServerError, out.err.Error())
		ps.em.observe(outcomePanic, time.Since(ps.start))
	case out.err != nil:
		s.stats.failure()
		status := http.StatusBadRequest
		if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, out.err.Error())
		ps.em.observe(outcomeError, time.Since(ps.start))
	default:
		if out.phases != nil && wantPhases(r) {
			w.Header().Set("X-Solve-Phases", out.phases.String())
		}
		if out.degraded {
			w.Header()["X-Degraded"] = headerValTrue
		}
		switch {
		case leader && out.degraded:
			s.stats.advise(endpoint, label, false)
			s.stats.degrade()
			writeBody(w, http.StatusOK, out.body, "miss")
			ps.em.observe(outcomeDegraded, time.Since(ps.start))
		case leader:
			s.stats.advise(endpoint, label, false)
			writeBody(w, http.StatusOK, out.body, "miss")
			ps.em.observe(outcomeSolve, time.Since(ps.start))
		default:
			s.stats.coalesce(endpoint, label)
			writeBody(w, http.StatusOK, out.body, "coalesced")
			ps.em.observe(outcomeCoalesced, time.Since(ps.start))
		}
	}
}

// ceilSeconds rounds d up to whole seconds for a Retry-After header,
// never below 1.
func ceilSeconds(d time.Duration) int64 {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// runSolve is the solve leader's goroutine: admission, chaos, the solve
// itself under panic containment, cache fill, and outcome publication.
// ctx is the solve's deadline context, cancelled by the flight group
// when the last waiter leaves.
func (s *Server) runSolve(ctx context.Context, spec memoSpec, label, cacheKey string, call *flightCall) {
	s.inflightSolves.Add(1)
	defer s.inflightSolves.Add(-1)

	adm := s.admissionFor(spec.endpoint)
	ok, retry := adm.admit(s.opts.RequestTimeout)
	if !ok {
		out := outcome{shed: true, retryAfter: retry}
		if staleEligible(spec.endpoint) {
			if b, hit := s.stale.Get(cacheKey); hit {
				out.body, out.stale = b, true
			}
		}
		s.flight.finish(cacheKey, call, out)
		return
	}
	if !adm.acquire(ctx) {
		// Abandoned while queued: every waiter already left.
		s.flight.finish(cacheKey, call, outcome{err: ctx.Err()})
		return
	}
	defer adm.release()

	s.stats.solve()
	tr := obs.NewTrace()
	t0 := tr.StartTimer()
	s.chaos.sleep(ctx, cacheKey)
	b, degraded, err, panicked := s.safeSolve(ctx, spec, cacheKey, tr)
	tr.ObserveSince(obs.PhaseTotal, t0)
	s.m.observePhases(tr)
	s.logSlowSolve(spec.endpoint, label, tr)
	// Degraded bodies are timing-dependent — the one kind of response
	// that must never be memoized.
	if err == nil && !degraded {
		s.cache.Put(cacheKey, b)
	}
	s.flight.finish(cacheKey, call, outcome{body: b, err: err, phases: tr, degraded: degraded, panicked: panicked})
}

// safeSolve runs the endpoint's solve with panic containment: a panic
// anywhere in the solve pipeline becomes a 500 for this request instead
// of killing the daemon. The chaos panic is raised inside the recovered
// region, so fault injection exercises the same containment real
// panics would hit.
func (s *Server) safeSolve(ctx context.Context, spec memoSpec, cacheKey string, tr *obs.Trace) (b []byte, degraded bool, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			b, degraded = nil, false
			err = fmt.Errorf("solve panic: %v", r)
			panicked = true
		}
	}()
	if s.chaos.panics(cacheKey) {
		panic("chaos: injected solver panic")
	}
	b, degraded, err = spec.solve(ctx, tr)
	return
}

// wantPhases reports whether the request opted into the X-Solve-Phases
// debug header. A plain substring probe of the raw query keeps the cold
// path from paying url.Query()'s map build; the probe only ever runs on
// solve/coalesced responses.
func wantPhases(r *http.Request) bool {
	return strings.Contains(r.URL.RawQuery, "debug=phases")
}

// logSlowSolve writes one structured JSON line for a cold solve that
// reached the configured threshold, carrying the per-phase breakdown —
// the "where did this request's time go" record the trace exists for.
func (s *Server) logSlowSolve(endpoint, label string, tr *obs.Trace) {
	th := s.opts.SlowSolveThreshold
	if th <= 0 || tr.Duration(obs.PhaseTotal) < th {
		return
	}
	b := make([]byte, 0, 256)
	b = append(b, `{"msg":"slow_solve","endpoint":"`...)
	b = append(b, endpoint...)
	b = append(b, `","label":"`...)
	b = append(b, label...)
	b = append(b, `","duration_seconds":`...)
	b = strconv.AppendFloat(b, tr.Duration(obs.PhaseTotal).Seconds(), 'g', -1, 64)
	b = append(b, `,"phases":`...)
	b = tr.AppendJSON(b)
	b = append(b, '}', '\n')
	s.slowMu.Lock()
	s.opts.SlowLog.Write(b)
	s.slowMu.Unlock()
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.serveMemoized(w, r, "advise", s.m.advise, adviseSlow)
}

// adviseSlow is the advise miss path; being a top-level function keeps
// its closures (and the decoded request they capture) off the hit path.
func adviseSlow(s *Server, w http.ResponseWriter, r *http.Request, ps probeState) {
	var req AdviseRequest
	s.finishMemoized(w, r, memoSpec{
		endpoint: "advise",
		canon: func(raw []byte) (string, string, error) {
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil {
				return "", "", fmt.Errorf("parse request: %v", err)
			}
			if err := s.normalize(&req); err != nil {
				return "", "", err
			}
			kb, err := json.Marshal(req)
			if err != nil {
				return "", "", err
			}
			return string(kb), req.Scenario, nil
		},
		reload: func(key string) error {
			return json.Unmarshal([]byte(key), &req)
		},
		solve: func(ctx context.Context, tr *obs.Trace) ([]byte, bool, error) {
			resp, err := s.solve(ctx, req, tr)
			if err != nil {
				return nil, false, err
			}
			t0 := tr.StartTimer()
			b, err := json.Marshal(resp)
			tr.ObserveSince(obs.PhaseEncode, t0)
			if err != nil {
				return nil, false, err
			}
			return append(b, '\n'), resp.Degraded, nil
		},
	}, ps)
}

// handleCompare serves POST /v1/compare: the advisory problem fanned out
// across the provider × instance × fleet grid on the compare worker
// pool, with the same canonicalized-request memoization as advise.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	s.serveMemoized(w, r, "compare", s.m.compare, compareSlow)
}

func compareSlow(s *Server, w http.ResponseWriter, r *http.Request, ps probeState) {
	var req compare.RequestJSON
	s.finishMemoized(w, r, memoSpec{
		endpoint: "compare",
		canon: func(raw []byte) (string, string, error) {
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil {
				return "", "", fmt.Errorf("parse request: %v", err)
			}
			if err := s.normalizeCompare(&req); err != nil {
				return "", "", err
			}
			kb, err := json.Marshal(req)
			if err != nil {
				return "", "", err
			}
			return string(kb), "compare", nil
		},
		reload: func(key string) error {
			return json.Unmarshal([]byte(key), &req)
		},
		solve: func(ctx context.Context, tr *obs.Trace) ([]byte, bool, error) {
			creq, err := req.Resolve()
			if err != nil {
				return nil, false, err
			}
			creq.Workers = s.opts.CompareWorkers
			creq.Trace = tr
			creq.Ctx = ctx
			comp, err := compare.Run(creq)
			if err != nil {
				return nil, false, err
			}
			t0 := tr.StartTimer()
			b, err := json.Marshal(comp.JSON())
			tr.ObserveSince(obs.PhaseEncode, t0)
			if err != nil {
				return nil, false, err
			}
			return append(b, '\n'), comp.Degraded, nil
		},
	}, ps)
}

// handleSweep serves POST /v1/sweep: a tariff-grid sweep of one
// objective over one workload — the comparison kernel's raw re-pricing
// study — memoized exactly like advise and compare under its own
// endpoint namespace of the shared LRU.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.serveMemoized(w, r, "sweep", s.m.sweep, sweepSlow)
}

func sweepSlow(s *Server, w http.ResponseWriter, r *http.Request, ps probeState) {
	var req compare.SweepRequestJSON
	s.finishMemoized(w, r, memoSpec{
		endpoint: "sweep",
		canon: func(raw []byte) (string, string, error) {
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil {
				return "", "", fmt.Errorf("parse request: %v", err)
			}
			if err := s.normalizeSweep(&req); err != nil {
				return "", "", err
			}
			kb, err := json.Marshal(req)
			if err != nil {
				return "", "", err
			}
			return string(kb), "sweep", nil
		},
		reload: func(key string) error {
			return json.Unmarshal([]byte(key), &req)
		},
		solve: func(ctx context.Context, tr *obs.Trace) ([]byte, bool, error) {
			sreq, err := req.Resolve()
			if err != nil {
				return nil, false, err
			}
			sreq.Workers = s.opts.CompareWorkers
			sreq.Trace = tr
			sreq.Ctx = ctx
			sw, err := compare.RunSweep(sreq)
			if err != nil {
				return nil, false, err
			}
			t0 := tr.StartTimer()
			b, err := json.Marshal(sw.JSON())
			tr.ObserveSince(obs.PhaseEncode, t0)
			if err != nil {
				return nil, false, err
			}
			return append(b, '\n'), sw.Degraded, nil
		},
	}, ps)
}

// normalizeSweep canonicalizes a sweep request and applies the
// server-side ceilings.
func (s *Server) normalizeSweep(req *compare.SweepRequestJSON) error {
	if err := req.Normalize(); err != nil {
		return err
	}
	if req.FactRows > s.opts.MaxFactRows {
		return fmt.Errorf("fact_rows %d exceeds the server limit %d", req.FactRows, s.opts.MaxFactRows)
	}
	if len(req.ConfigJSON.Workload) > s.opts.MaxQueries {
		return fmt.Errorf("workload of %d queries exceeds the server limit %d", len(req.ConfigJSON.Workload), s.opts.MaxQueries)
	}
	if req.CandidateBudget > s.opts.MaxCandidates {
		return fmt.Errorf("candidate_budget %d exceeds the server limit %d", req.CandidateBudget, s.opts.MaxCandidates)
	}
	if n := req.Configs(); n > s.opts.MaxCompareConfigs {
		return fmt.Errorf("sweep grid of %d configurations exceeds the server limit %d", n, s.opts.MaxCompareConfigs)
	}
	return nil
}

// normalizeCompare canonicalizes a compare request and applies the
// server-side ceilings.
func (s *Server) normalizeCompare(req *compare.RequestJSON) error {
	if err := req.Normalize(); err != nil {
		return err
	}
	if req.FactRows > s.opts.MaxFactRows {
		return fmt.Errorf("fact_rows %d exceeds the server limit %d", req.FactRows, s.opts.MaxFactRows)
	}
	if len(req.ConfigJSON.Workload) > s.opts.MaxQueries {
		return fmt.Errorf("workload of %d queries exceeds the server limit %d", len(req.ConfigJSON.Workload), s.opts.MaxQueries)
	}
	if req.CandidateBudget > s.opts.MaxCandidates {
		return fmt.Errorf("candidate_budget %d exceeds the server limit %d", req.CandidateBudget, s.opts.MaxCandidates)
	}
	if req.Steps > s.opts.MaxParetoSteps {
		return fmt.Errorf("steps %d exceeds the server limit %d", req.Steps, s.opts.MaxParetoSteps)
	}
	if req.BreakEvenSteps > s.opts.MaxParetoSteps {
		return fmt.Errorf("break_even_steps %d exceeds the server limit %d", req.BreakEvenSteps, s.opts.MaxParetoSteps)
	}
	if n := req.Configs(); n > s.opts.MaxCompareConfigs {
		return fmt.Errorf("comparison grid of %d configurations exceeds the server limit %d", n, s.opts.MaxCompareConfigs)
	}
	return nil
}

// solve runs the expensive path: advisor construction (lattice +
// candidate generation) and the scenario solve. The request is already
// normalized, so the config resolves without re-canonicalizing. ctx
// carries the solve deadline into the search, whose result surfaces as
// Degraded when the deadline stopped it early.
func (s *Server) solve(ctx context.Context, req AdviseRequest, tr *obs.Trace) (AdviseResponse, error) {
	cfg, err := req.ConfigJSON.Resolve()
	if err != nil {
		return AdviseResponse{}, err
	}
	cfg.Trace = tr
	cfg.Ctx = ctx
	adv, err := core.New(cfg)
	if err != nil {
		return AdviseResponse{}, err
	}
	resp := AdviseResponse{
		Scenario:    req.Scenario,
		DatasetSize: core.DatasetSizeOf(adv).String(),
		Candidates:  len(adv.Candidates),
	}
	switch req.Scenario {
	case "mv1":
		rec, err := adv.AdviseBudget(*req.Budget)
		if err != nil {
			return AdviseResponse{}, err
		}
		rj := rec.JSON()
		resp.Recommendation = &rj
		resp.Degraded = rec.Selection.Degraded
	case "mv2":
		limit, err := time.ParseDuration(req.Limit)
		if err != nil {
			return AdviseResponse{}, err
		}
		rec, err := adv.AdviseDeadline(limit)
		if err != nil {
			return AdviseResponse{}, err
		}
		rj := rec.JSON()
		resp.Recommendation = &rj
		resp.Degraded = rec.Selection.Degraded
	case "mv3":
		rec, err := adv.AdviseTradeoff(*req.Alpha)
		if err != nil {
			return AdviseResponse{}, err
		}
		rj := rec.JSON()
		resp.Recommendation = &rj
		resp.Degraded = rec.Selection.Degraded
	case "pareto":
		front, err := adv.ParetoFront(req.Steps)
		if err != nil {
			return AdviseResponse{}, err
		}
		resp.Pareto = core.ParetoJSON(front)
		for _, p := range front {
			if p.Degraded {
				resp.Degraded = true
				break
			}
		}
	default:
		return AdviseResponse{}, fmt.Errorf("unknown scenario %q", req.Scenario)
	}
	return resp, nil
}

// TariffsResponse is the body of GET /v1/tariffs: each built-in provider
// in the pricing wire format, plus pre-rendered tables for display.
type TariffsResponse struct {
	Providers []json.RawMessage `json:"providers"`
	Tables    []*report.Table   `json:"tables"`
}

func (s *Server) handleTariffs(w http.ResponseWriter, r *http.Request) {
	var resp TariffsResponse
	for _, name := range pricing.ProviderNames() {
		p, err := pricing.Lookup(name)
		if err != nil {
			s.stats.failure()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		raw, err := pricing.MarshalProvider(p)
		if err != nil {
			s.stats.failure()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp.Providers = append(resp.Providers, raw)

		ct := report.NewTable(fmt.Sprintf("%s — compute (%s billing)", p.Name, p.Compute.Granularity),
			"instance", "$/hour", "RAM", "ECU", "local storage")
		for _, in := range p.Compute.InstanceNames() {
			it, _ := p.Compute.Instance(in)
			ct.AddRow(it.Name, it.PricePerHour, it.RAM, it.ECU, it.LocalStorage)
		}
		st := report.NewTable(fmt.Sprintf("%s — storage ($/GB/month, %s)", p.Name, p.Storage.Table.Mode),
			"up to", "price")
		for _, tier := range p.Storage.Table.Tiers {
			bound := "∞"
			if tier.UpTo != 0 {
				bound = tier.UpTo.String()
			}
			st.AddRow(bound, tier.PricePerGB)
		}
		resp.Tables = append(resp.Tables, ct, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.stats.snapshot(time.Now(), s.cache.Len(), s.cache.Cap(),
		s.cache.NamespaceStats(), s.rawKeys.NamespaceStats())
	snap.Cache.Bytes = s.cache.Bytes() + s.rawKeys.Bytes()
	if s.cluster != nil {
		snap.Cluster = s.cluster.statsJSON()
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// encBufPool pools the encode buffers behind writeJSON, so the
// uncached GET endpoints (stats, tariffs, healthz) don't grow a fresh
// marshal buffer per request.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); encBufPool.Put(buf) }()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeBody(w, status, buf.Bytes(), "")
}

// Shared header values: assigning a preallocated []string into the
// header map keeps the cache-hit path allocation-free where
// Header().Set would build a fresh single-element slice per call. The
// slices are never mutated and the keys are already in canonical form.
var (
	headerValJSON      = []string{"application/json"}
	headerValHit       = []string{"hit"}
	headerValMiss      = []string{"miss"}
	headerValCoalesced = []string{"coalesced"}
	headerValStale     = []string{"stale"}
	headerValTrue      = []string{"true"}
)

// writeBody sends a pre-marshaled, newline-terminated JSON body. The
// body may alias cache-owned memory: it is only ever written to the
// wire, never mutated.
//
//mvlint:hotpath
func writeBody(w http.ResponseWriter, status int, body []byte, cache string) {
	h := w.Header()
	h["Content-Type"] = headerValJSON
	switch cache {
	case "hit":
		h["X-Cache"] = headerValHit
	case "miss":
		h["X-Cache"] = headerValMiss
	case "coalesced":
		h["X-Cache"] = headerValCoalesced
	case "stale":
		h["X-Cache"] = headerValStale
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	b, _ := json.Marshal(map[string]string{"error": msg})
	writeBody(w, status, append(b, '\n'), "")
}
