// Package server exposes the view-materialization advisor as a JSON HTTP
// API — the serving layer of cmd/mvcloudd.
//
// Endpoints:
//
//	POST /v1/advise  — solve one of the paper's scenarios (mv1/mv2/mv3)
//	                   or sweep the pareto frontier for a JSON-described
//	                   advisory problem
//	GET  /v1/tariffs — the built-in provider catalog, structured and as
//	                   pre-rendered tables
//	GET  /v1/stats   — serving counters: requests, cache hits/misses,
//	                   per-scenario breakdown
//	GET  /healthz    — liveness probe
//
// The advisor is deterministic: the same advisory problem always yields
// the same recommendation. Advise responses are therefore memoized in a
// size-bounded LRU cache keyed by the canonicalized request (defaults
// applied, workload resolved, tariff re-marshaled), so a repeated
// configuration skips lattice construction, candidate generation and the
// knapsack DP entirely. Handlers are safe for concurrent use; cached
// bodies are immutable byte slices shared across readers.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/report"
)

// Options tunes a Server. Zero values select sensible defaults.
type Options struct {
	// CacheSize bounds the advise cache entry count; default 256.
	// Negative disables caching.
	CacheSize int
	// CacheMaxBytes bounds the resident bytes of each advise cache
	// (responses and raw-body keys are bounded separately); default
	// 64 MB. Negative removes the byte bound.
	CacheMaxBytes int64
	// RequestTimeout bounds one advise solve; default 30s. The solve
	// itself is not cancellable mid-knapsack, so a timed-out request
	// returns 503 while the orphaned solve finishes (and still warms the
	// cache for the retry).
	RequestTimeout time.Duration
	// MaxFactRows rejects absurd dataset sizes; default 100 billion rows.
	MaxFactRows int64
	// MaxQueries bounds an explicit workload; default 64.
	MaxQueries int
	// MaxCandidates bounds candidate_budget; default 16 (the lattice has
	// 16 cuboids).
	MaxCandidates int
	// MaxParetoSteps bounds a pareto sweep; default 101.
	MaxParetoSteps int
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.CacheMaxBytes == 0 {
		o.CacheMaxBytes = 64 << 20
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxFactRows == 0 {
		o.MaxFactRows = 100_000_000_000
	}
	if o.MaxQueries == 0 {
		o.MaxQueries = 64
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 16
	}
	if o.MaxParetoSteps == 0 {
		o.MaxParetoSteps = 101
	}
	return o
}

// Server is the HTTP serving layer over the advisor core.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *lruCache
	// rawKeys maps verbatim request bodies to their canonical cache key,
	// letting byte-identical repeats skip JSON decoding and request
	// canonicalization (which builds a lattice to resolve the workload).
	rawKeys *lruCache
	stats   *stats
}

// New builds a server.
func New(opts Options) *Server {
	s := &Server{
		opts:  opts.withDefaults(),
		stats: newStats(time.Now()),
	}
	s.cache = newLRUCache(s.opts.CacheSize, s.opts.CacheMaxBytes)
	s.rawKeys = newLRUCache(s.opts.CacheSize, s.opts.CacheMaxBytes)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/advise", s.counted("advise", s.handleAdvise))
	s.mux.HandleFunc("GET /v1/tariffs", s.counted("tariffs", s.handleTariffs))
	s.mux.HandleFunc("GET /v1/stats", s.counted("stats", s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealthz))
	return s
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.request(endpoint)
		h(w, r)
	}
}

// AdviseRequest is the body of POST /v1/advise: a scenario selector, its
// parameter, and the advisory problem (flattened ConfigJSON fields).
type AdviseRequest struct {
	// Scenario is "mv1" (budget), "mv2" (deadline), "mv3" (tradeoff) or
	// "pareto"; default "mv1".
	Scenario string `json:"scenario,omitempty"`
	// Budget is the MV1 spending limit ("$25.00" or a number of dollars);
	// required for mv1.
	Budget *money.Money `json:"budget,omitempty"`
	// Limit is the MV2 response-time limit as a Go duration ("4h");
	// required for mv2.
	Limit string `json:"limit,omitempty"`
	// Alpha is the MV3 weight on time in [0,1]; default 0.5.
	Alpha *float64 `json:"alpha,omitempty"`
	// Steps is the pareto sweep resolution; default 11.
	Steps int `json:"steps,omitempty"`

	core.ConfigJSON
}

// normalize canonicalizes the request in place: scenario defaults and
// parameter validation, scenario-irrelevant parameters zeroed (so they
// cannot fragment the cache), and the config fully resolved.
func (s *Server) normalize(req *AdviseRequest) error {
	req.Scenario = strings.ToLower(strings.TrimSpace(req.Scenario))
	if req.Scenario == "" {
		req.Scenario = "mv1"
	}
	switch req.Scenario {
	case "mv1":
		if req.Budget == nil {
			return errors.New("budget required for scenario mv1")
		}
		if req.Budget.IsNegative() {
			return fmt.Errorf("negative budget %v", *req.Budget)
		}
		req.Limit, req.Alpha, req.Steps = "", nil, 0
	case "mv2":
		if req.Limit == "" {
			return errors.New("limit required for scenario mv2")
		}
		d, err := time.ParseDuration(req.Limit)
		if err != nil {
			return fmt.Errorf("limit: %v", err)
		}
		if d <= 0 {
			return fmt.Errorf("non-positive limit %v", d)
		}
		req.Limit = d.String()
		req.Budget, req.Alpha, req.Steps = nil, nil, 0
	case "mv3":
		if req.Alpha == nil {
			a := 0.5
			req.Alpha = &a
		}
		if *req.Alpha < 0 || *req.Alpha > 1 {
			return fmt.Errorf("alpha %g out of [0,1]", *req.Alpha)
		}
		req.Budget, req.Limit, req.Steps = nil, "", 0
	case "pareto":
		if req.Steps == 0 {
			req.Steps = 11
		}
		if req.Steps < 2 || req.Steps > s.opts.MaxParetoSteps {
			return fmt.Errorf("steps %d out of [2,%d]", req.Steps, s.opts.MaxParetoSteps)
		}
		req.Budget, req.Limit, req.Alpha = nil, "", nil
	default:
		return fmt.Errorf("unknown scenario %q (want mv1, mv2, mv3 or pareto)", req.Scenario)
	}
	if err := req.ConfigJSON.Normalize(); err != nil {
		return err
	}
	if req.FactRows > s.opts.MaxFactRows {
		return fmt.Errorf("fact_rows %d exceeds the server limit %d", req.FactRows, s.opts.MaxFactRows)
	}
	if len(req.Workload) > s.opts.MaxQueries {
		return fmt.Errorf("workload of %d queries exceeds the server limit %d", len(req.Workload), s.opts.MaxQueries)
	}
	if req.CandidateBudget > s.opts.MaxCandidates {
		return fmt.Errorf("candidate_budget %d exceeds the server limit %d", req.CandidateBudget, s.opts.MaxCandidates)
	}
	return nil
}

// outcome is a finished solve: the marshaled response body or an error.
type outcome struct {
	body []byte
	err  error
}

// AdviseResponse is the body of a successful POST /v1/advise.
type AdviseResponse struct {
	Scenario string `json:"scenario"`
	// DatasetSize is the base cuboid volume the config implies.
	DatasetSize string `json:"dataset_size"`
	// Candidates is the size of the pre-selected candidate view pool.
	Candidates     int                      `json:"candidates"`
	Recommendation *core.RecommendationJSON `json:"recommendation,omitempty"`
	Pareto         []core.ParetoPointJSON   `json:"pareto,omitempty"`
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.stats.failure()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read request: %v", err))
		return
	}

	// Fast path: a byte-identical body seen before maps straight to its
	// canonical cache key (stored as "<scenario> <key>"), skipping JSON
	// decoding and canonicalization — which builds a lattice to resolve
	// the workload — on every repeat.
	var req AdviseRequest
	var key string
	decoded := false
	if packed, ok := s.rawKeys.Get(string(raw)); ok {
		scenario, ck, found := strings.Cut(string(packed), " ")
		if found {
			req.Scenario, key = scenario, ck
		}
	}
	if key == "" {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.stats.failure()
			writeError(w, http.StatusBadRequest, fmt.Sprintf("parse request: %v", err))
			return
		}
		if err := s.normalize(&req); err != nil {
			s.stats.failure()
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		kb, err := json.Marshal(req)
		if err != nil {
			s.stats.failure()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		key = string(kb)
		decoded = true
		s.rawKeys.Put(string(raw), []byte(req.Scenario+" "+key))
	}
	if cached, ok := s.cache.Get(key); ok {
		s.stats.advise(req.Scenario, true)
		writeBody(w, http.StatusOK, cached, "hit")
		return
	}
	if !decoded {
		// The fast path skipped decoding but the response was evicted; the
		// canonical key is itself a normalized request body, so rebuild
		// the request from it before solving.
		if err := json.Unmarshal([]byte(key), &req); err != nil {
			s.stats.failure()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}

	done := make(chan outcome, 1)
	go func() {
		resp, err := s.solve(req)
		if err != nil {
			done <- outcome{nil, err}
			return
		}
		b, err := json.Marshal(resp)
		if err == nil {
			b = append(b, '\n')
		}
		done <- outcome{b, err}
	}()

	ctx := r.Context()
	timeout := time.NewTimer(s.opts.RequestTimeout)
	defer timeout.Stop()
	select {
	case out := <-done:
		if out.err != nil {
			s.stats.failure()
			writeError(w, http.StatusBadRequest, out.err.Error())
			return
		}
		s.cache.Put(key, out.body)
		s.stats.advise(req.Scenario, false)
		writeBody(w, http.StatusOK, out.body, "miss")
	case <-timeout.C:
		s.warmLater(key, done)
		s.stats.failure()
		writeError(w, http.StatusServiceUnavailable, "request timed out")
	case <-ctx.Done():
		s.warmLater(key, done)
		s.stats.failure()
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	}
}

// warmLater lets an orphaned solve (timed-out or cancelled request)
// finish in the background and warm the cache for the retry.
func (s *Server) warmLater(key string, done <-chan outcome) {
	go func() {
		if out := <-done; out.err == nil {
			s.cache.Put(key, out.body)
		}
	}()
}

// solve runs the expensive path: advisor construction (lattice +
// candidate generation) and the scenario solve. The request is already
// normalized, so the config resolves without re-canonicalizing.
func (s *Server) solve(req AdviseRequest) (AdviseResponse, error) {
	cfg, err := req.ConfigJSON.Resolve()
	if err != nil {
		return AdviseResponse{}, err
	}
	adv, err := core.New(cfg)
	if err != nil {
		return AdviseResponse{}, err
	}
	resp := AdviseResponse{
		Scenario:    req.Scenario,
		DatasetSize: core.DatasetSizeOf(adv).String(),
		Candidates:  len(adv.Candidates),
	}
	switch req.Scenario {
	case "mv1":
		rec, err := adv.AdviseBudget(*req.Budget)
		if err != nil {
			return AdviseResponse{}, err
		}
		rj := rec.JSON()
		resp.Recommendation = &rj
	case "mv2":
		limit, err := time.ParseDuration(req.Limit)
		if err != nil {
			return AdviseResponse{}, err
		}
		rec, err := adv.AdviseDeadline(limit)
		if err != nil {
			return AdviseResponse{}, err
		}
		rj := rec.JSON()
		resp.Recommendation = &rj
	case "mv3":
		rec, err := adv.AdviseTradeoff(*req.Alpha)
		if err != nil {
			return AdviseResponse{}, err
		}
		rj := rec.JSON()
		resp.Recommendation = &rj
	case "pareto":
		front, err := adv.ParetoFront(req.Steps)
		if err != nil {
			return AdviseResponse{}, err
		}
		resp.Pareto = core.ParetoJSON(front)
	default:
		return AdviseResponse{}, fmt.Errorf("unknown scenario %q", req.Scenario)
	}
	return resp, nil
}

// TariffsResponse is the body of GET /v1/tariffs: each built-in provider
// in the pricing wire format, plus pre-rendered tables for display.
type TariffsResponse struct {
	Providers []json.RawMessage `json:"providers"`
	Tables    []*report.Table   `json:"tables"`
}

func (s *Server) handleTariffs(w http.ResponseWriter, r *http.Request) {
	var resp TariffsResponse
	for _, name := range pricing.ProviderNames() {
		p, err := pricing.Lookup(name)
		if err != nil {
			s.stats.failure()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		raw, err := pricing.MarshalProvider(p)
		if err != nil {
			s.stats.failure()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp.Providers = append(resp.Providers, raw)

		ct := report.NewTable(fmt.Sprintf("%s — compute (%s billing)", p.Name, p.Compute.Granularity),
			"instance", "$/hour", "RAM", "ECU", "local storage")
		for _, in := range p.Compute.InstanceNames() {
			it, _ := p.Compute.Instance(in)
			ct.AddRow(it.Name, it.PricePerHour, it.RAM, it.ECU, it.LocalStorage)
		}
		st := report.NewTable(fmt.Sprintf("%s — storage ($/GB/month, %s)", p.Name, p.Storage.Table.Mode),
			"up to", "price")
		for _, tier := range p.Storage.Table.Tiers {
			bound := "∞"
			if tier.UpTo != 0 {
				bound = tier.UpTo.String()
			}
			st.AddRow(bound, tier.PricePerGB)
		}
		resp.Tables = append(resp.Tables, ct, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.stats.snapshot(time.Now(), s.cache.Len(), s.cache.Cap())
	snap.Cache.Bytes = s.cache.Bytes() + s.rawKeys.Bytes()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeBody(w, status, append(b, '\n'), "")
}

// writeBody sends a pre-marshaled, newline-terminated JSON body. Cached
// bodies are shared across goroutines, so the slice is never modified.
func writeBody(w http.ResponseWriter, status int, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	if cache != "" {
		w.Header().Set("X-Cache", cache)
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	b, _ := json.Marshal(map[string]string{"error": msg})
	writeBody(w, status, append(b, '\n'), "")
}
