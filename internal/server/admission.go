package server

import (
	"context"
	"sync/atomic"
	"time"

	"vmcloud/internal/obs"
)

// admission is one endpoint class's bounded solve queue plus worker
// pool — the backpressure layer that keeps a flood of heavy solves from
// starving cheap ones. The server runs two classes: "cheap" (advise)
// and "heavy" (compare + sweep), each with its own pool, so the classes
// cannot contend for workers at all.
//
// Only solve leaders pass through admission: cache hits and coalesced
// followers ride the existing fast paths untouched. A leader is
// admitted when the class backlog (admitted, not yet finished solves)
// is under queue+workers AND the estimated wait — backlog × observed
// mean solve latency ÷ workers — fits inside the request deadline.
// Otherwise the request is shed with 429 and a Retry-After derived from
// that same estimate.
type admission struct {
	name    string
	workers int
	queue   int
	// sem holds the worker slots; acquiring blocks until a slot frees or
	// the solve's context dies.
	sem chan struct{}
	// backlog counts solves admitted and not yet finished (queued +
	// running).
	backlog atomic.Int64
	// lat are the class endpoints' solve-latency histograms
	// (mvcloud_http_request_duration_seconds{outcome="solve"}); their
	// Sum/Count is the observed mean solve latency feeding the wait
	// estimate and Retry-After.
	lat []*obs.Histogram
}

func newAdmission(name string, workers, queue int, lat ...*obs.Histogram) *admission {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &admission{
		name:    name,
		workers: workers,
		queue:   queue,
		sem:     make(chan struct{}, workers),
		lat:     lat,
	}
}

// meanSolve is the observed mean solve latency of the class, zero until
// the first solve completes.
func (a *admission) meanSolve() time.Duration {
	var n int64
	var sum time.Duration
	for _, h := range a.lat {
		n += h.Count()
		sum += h.Sum()
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// estWait estimates how long a solve admitted behind `backlog` others
// would wait before finishing: backlog solves spread over the worker
// pool at the observed mean latency. Zero while no latency has been
// observed yet (a cold class never sheds on the estimate).
func (a *admission) estWait(backlog int64) time.Duration {
	mean := a.meanSolve()
	if mean <= 0 || backlog <= 0 {
		return 0
	}
	return time.Duration(backlog) * mean / time.Duration(a.workers)
}

// admit decides one leader's fate. ok means the solve was enqueued (the
// caller must acquire a worker slot and eventually release it). When
// shedding, retryAfter is how long the caller should tell the client to
// back off: the estimated drain time of the current backlog, clamped to
// [1s, 60s].
func (a *admission) admit(deadline time.Duration) (ok bool, retryAfter time.Duration) {
	backlog := a.backlog.Add(1)
	full := backlog > int64(a.workers+a.queue)
	wait := a.estWait(backlog)
	if full || (deadline > 0 && wait > deadline) {
		a.backlog.Add(-1)
		retry := wait
		if retry < time.Second {
			retry = time.Second
		}
		if retry > time.Minute {
			retry = time.Minute
		}
		return false, retry
	}
	return true, 0
}

// acquire blocks until a worker slot frees or ctx dies; it reports
// whether a slot was obtained. On false the solve was abandoned while
// queued and the caller must not run it (the backlog entry is already
// released).
func (a *admission) acquire(ctx context.Context) bool {
	// An already-dead context never gets a slot, even if one is free —
	// keeps the abandoned-solve path deterministic instead of racing the
	// select below.
	select {
	case <-ctx.Done():
		a.backlog.Add(-1)
		return false
	default:
	}
	select {
	case a.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		a.backlog.Add(-1)
		return false
	}
}

// release frees the worker slot and the backlog entry after a solve.
func (a *admission) release() {
	<-a.sem
	a.backlog.Add(-1)
}

// admissionFor maps an endpoint to its class.
func (s *Server) admissionFor(endpoint string) *admission {
	if endpoint == "advise" {
		return s.admCheap
	}
	return s.admHeavy
}

// staleEligible reports whether a shed request on this endpoint may be
// served a stale evicted cache entry instead of a 429. Only advise
// qualifies: its responses are small and per-problem, exactly what a
// client polling under overload wants; compare/sweep grids are the
// floods being shed in the first place.
func staleEligible(endpoint string) bool { return endpoint == "advise" }
