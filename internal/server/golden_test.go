package server

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// TestAdviseSearchGoldens pins the exact response bytes of seeded search
// advisories on the paper's sales lattice. The incremental evaluation
// engine must keep these byte-identical: any drift means the refactor
// changed what a pinned seed selects (or how it is priced), breaking the
// memoization contract and every recorded experiment number.
func TestAdviseSearchGoldens(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"mv1_search_seed42", adviseBody("mv1", `"budget":25,"solver":"search","seed":42`)},
		{"mv2_search_seed7", adviseBody("mv2", `"limit":"4h","solver":"search","seed":7`)},
		{"mv3_search_seed3", adviseBody("mv3", `"alpha":0.5,"solver":"search","seed":3`)},
		{"pareto_search_seed5", adviseBody("pareto", `"steps":5,"solver":"search","seed":5`)},
		{"mv1_knapsack", adviseBody("mv1", `"budget":25`)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, testServer(), "POST", "/v1/advise", c.body)
			if w.Code != 200 {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
			path := filepath.Join("testdata", c.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, w.Body.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test ./internal/server -run Golden -update): %v", err)
			}
			if got := w.Body.String(); got != string(want) {
				t.Errorf("response drifted from pre-refactor golden %s:\ngot:  %s\nwant: %s", path, got, want)
			}
		})
	}
}
