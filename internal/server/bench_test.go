package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// The acceptance bar for the serving layer: an advise request answered
// from the LRU cache must be at least an order of magnitude faster than
// the cold path (advisor construction + candidate generation + knapsack
// solve + response marshaling). Run with:
//
//	go test ./internal/server -bench BenchmarkAdvise -benchmem

var benchBody = []byte(`{"scenario":"mv1","budget":25,"queries":10,"frequency":30}`)

func postAdvise(b *testing.B, s *Server, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/advise", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != 200 {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	return w
}

// BenchmarkAdviseCold measures the uncached path: every iteration uses a
// fresh server, so the full lattice + candidates + DP + marshal pipeline
// runs each time.
func BenchmarkAdviseCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(Options{})
		postAdvise(b, s, benchBody)
	}
}

// BenchmarkAdviseCacheHit measures the memoized path: one server, the
// cache primed, every timed iteration is an identical request.
func BenchmarkAdviseCacheHit(b *testing.B) {
	s := New(Options{})
	w := postAdvise(b, s, benchBody)
	if w.Header().Get("X-Cache") != "miss" {
		b.Fatal("prime request did not miss")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := postAdvise(b, s, benchBody)
		if w.Header().Get("X-Cache") != "hit" {
			b.Fatal("hit path fell through to a solve")
		}
	}
}

// BenchmarkTariffs measures GET /v1/tariffs, which renders every catalog
// provider. The pricing catalog is built once per process and handed out
// as cheap deep copies, so this no longer reconstructs every fixture
// (with its ~60 money.MustParse calls) per request.
func BenchmarkTariffs(b *testing.B) {
	s := New(Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/v1/tariffs", nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("status %d", w.Code)
		}
	}
}

var compareBenchBody = []byte(`{"budget":25,"limit":"4h","queries":10,"frequency":30,"fact_rows":50000000}`)

func postCompare(b *testing.B, s *Server, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/compare", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != 200 {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	return w
}

// BenchmarkCompareCold measures the uncached cross-provider fan-out:
// every iteration solves the full catalog grid.
func BenchmarkCompareCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(Options{})
		postCompare(b, s, compareBenchBody)
	}
}

// BenchmarkCompareCacheHit measures the memoized comparison path.
func BenchmarkCompareCacheHit(b *testing.B) {
	s := New(Options{})
	w := postCompare(b, s, compareBenchBody)
	if w.Header().Get("X-Cache") != "miss" {
		b.Fatal("prime request did not miss")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := postCompare(b, s, compareBenchBody)
		if w.Header().Get("X-Cache") != "hit" {
			b.Fatal("hit path fell through to a solve")
		}
	}
}

// BenchmarkAdviseCacheHitWithMetrics measures the hit path while a
// scraper hammers /metrics from another goroutine — the bench.sh
// --compare gate covers it, so a future exposition change that makes
// scraping contend with serving (a lock on the record path, say) shows
// up as an ns/op regression here rather than as mystery tail latency in
// production. Exposition reads the same atomics the hot path writes and
// takes only the registration mutex, which Observe/Inc never touch.
func BenchmarkAdviseCacheHitWithMetrics(b *testing.B) {
	s := New(Options{})
	w := postAdvise(b, s, benchBody)
	if w.Header().Get("X-Cache") != "miss" {
		b.Fatal("prime request did not miss")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				req := httptest.NewRequest("GET", "/metrics", nil)
				s.ServeHTTP(httptest.NewRecorder(), req)
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := postAdvise(b, s, benchBody)
		if w.Header().Get("X-Cache") != "hit" {
			b.Fatal("hit path fell through to a solve")
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkMetricsExposition measures one full /metrics render on a
// server with every series registered — the page a Prometheus scraper
// pulls every 15s must stay cheap enough to be invisible.
func BenchmarkMetricsExposition(b *testing.B) {
	s := New(Options{})
	postAdvise(b, s, benchBody) // populate at least one solve's series
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/metrics", nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// BenchmarkAdviseCacheMissDistinct measures the steady-state miss path on
// a warm server: each iteration is a distinct config (unique frequency),
// so lattice construction and the solve run every time but server setup
// does not.
func BenchmarkAdviseCacheMissDistinct(b *testing.B) {
	s := New(Options{CacheSize: 1}) // keep the cache from absorbing the sweep
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		body := fmt.Appendf(nil, `{"scenario":"mv1","budget":25,"queries":10,"frequency":%d}`, i%1000+1)
		postAdvise(b, s, body)
	}
}

// BenchmarkClusterAdviseCacheHitHot measures the cluster frontend's
// warm hit path with a reused request and response writer — it must
// report 0 allocs/op, identical to the single-node benchmark, because
// routing never touches warm keys.
func BenchmarkClusterAdviseCacheHitHot(b *testing.B) {
	lc := NewLocalCluster(LocalClusterOptions{
		Workers: 2,
		Cluster: ClusterOptions{HealthInterval: -1},
	})
	defer lc.Close()
	w := postAdvise(b, lc.Frontend, benchBody)
	if w.Header().Get("X-Cache") != "miss" {
		b.Fatal("prime request did not miss")
	}
	body := &resettableBody{}
	req := &http.Request{
		Method: "POST",
		URL:    &url.URL{Path: "/v1/advise"},
		Body:   body,
	}
	nw := &nullResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Reset(benchBody)
		lc.Frontend.ServeHTTP(nw, req)
		if nw.status != 200 {
			b.Fatalf("status %d", nw.status)
		}
	}
}
