package server

import (
	"encoding/json"
	"testing"
)

// TestSearchSolverByteIdenticalAcrossServers is the serving half of the
// search determinism contract: the same seeded request solved cold on
// two independent servers must produce byte-identical bodies — if it did
// not, memoized and freshly-solved responses could disagree.
func TestSearchSolverByteIdenticalAcrossServers(t *testing.T) {
	body := adviseBody("mv1", `"budget":25,"solver":"search","seed":42`)
	a := do(t, testServer(), "POST", "/v1/advise", body)
	b := do(t, testServer(), "POST", "/v1/advise", body)
	if a.Code != 200 || b.Code != 200 {
		t.Fatalf("status %d/%d: %s", a.Code, b.Code, a.Body.String())
	}
	if a.Body.String() != b.Body.String() {
		t.Fatalf("identical seeded requests differ across servers:\n%s\nvs\n%s", a.Body.String(), b.Body.String())
	}
	var resp struct {
		Recommendation struct {
			Strategy string `json:"strategy"`
		} `json:"recommendation"`
	}
	if err := json.Unmarshal(a.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Recommendation.Strategy != "mv1-search" {
		t.Errorf("strategy = %q, want mv1-search", resp.Recommendation.Strategy)
	}
}

// TestSearchSeedPartOfCacheKey pins the memoization contract: the seed
// participates in the canonical key for the search solver, so different
// seeds can never alias, while repeats of the same seed hit.
func TestSearchSeedPartOfCacheKey(t *testing.T) {
	s := testServer()
	seed1 := adviseBody("mv1", `"budget":25,"solver":"search","seed":1`)
	seed2 := adviseBody("mv1", `"budget":25,"solver":"search","seed":2`)

	if w := do(t, s, "POST", "/v1/advise", seed1); w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first seed-1 request X-Cache = %q", w.Header().Get("X-Cache"))
	}
	if w := do(t, s, "POST", "/v1/advise", seed2); w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("seed-2 request aliased seed-1: X-Cache = %q", w.Header().Get("X-Cache"))
	}
	w := do(t, s, "POST", "/v1/advise", seed1)
	if w.Header().Get("X-Cache") != "hit" {
		t.Fatalf("seed-1 repeat X-Cache = %q, want hit", w.Header().Get("X-Cache"))
	}
}

// TestKnapsackSeedCanonicalized: the DP solver ignores the seed, so the
// normalizer zeroes it and differing spellings share one cache entry.
func TestKnapsackSeedCanonicalized(t *testing.T) {
	s := testServer()
	if w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"solver":"knapsack","seed":5`)); w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"seed":9`))
	if w.Header().Get("X-Cache") != "hit" {
		t.Fatalf("knapsack seed spelling fragmented the cache: X-Cache = %q", w.Header().Get("X-Cache"))
	}
}

func TestUnknownSolverRejected(t *testing.T) {
	s := testServer()
	w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"solver":"quantum"`))
	if w.Code != 400 {
		t.Fatalf("status = %d, want 400: %s", w.Code, w.Body.String())
	}
}

// TestCompareSolverThreaded: /v1/compare accepts the solver/seed fields
// and stamps search strategies into every cell.
func TestCompareSolverThreaded(t *testing.T) {
	s := testServer()
	w := do(t, s, "POST", "/v1/compare", compareBody(`"solver":"search","seed":7,"providers":["aws-2012"]`))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Configs []struct {
			Results []struct {
				Recommendation struct {
					Strategy string `json:"strategy"`
				} `json:"recommendation"`
			} `json:"results"`
		} `json:"configs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Configs) == 0 || len(resp.Configs[0].Results) == 0 {
		t.Fatalf("empty comparison: %s", w.Body.String())
	}
	for _, cfg := range resp.Configs {
		for _, r := range cfg.Results {
			if got := r.Recommendation.Strategy; got != "mv1-search" && got != "mv2-search" && got != "mv3-search" {
				t.Errorf("strategy = %q, want a *-search strategy", got)
			}
		}
	}
}

// TestStatsPerEndpointCaches covers the per-endpoint cache breakdown of
// GET /v1/stats: entry/byte/hit/miss counts split by endpoint.
func TestStatsPerEndpointCaches(t *testing.T) {
	s := testServer()
	advise := adviseBody("mv1", `"budget":25`)
	do(t, s, "POST", "/v1/advise", advise)
	do(t, s, "POST", "/v1/advise", advise) // hit
	do(t, s, "POST", "/v1/compare", compareBody(`"providers":["aws-2012"]`))

	w := do(t, s, "GET", "/v1/stats", "")
	var got statsJSON
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	adv, ok := got.Caches["advise"]
	if !ok {
		t.Fatalf("no advise cache stats: %v", got.Caches)
	}
	if adv.Entries != 1 || adv.RawEntries != 1 {
		t.Errorf("advise entries = %d raw %d, want 1/1", adv.Entries, adv.RawEntries)
	}
	if adv.Hits != 1 || adv.Misses != 1 {
		t.Errorf("advise hits/misses = %d/%d, want 1/1", adv.Hits, adv.Misses)
	}
	if adv.Bytes <= 0 || adv.RawBytes <= 0 {
		t.Errorf("advise bytes = %d raw %d, want > 0", adv.Bytes, adv.RawBytes)
	}
	cmp, ok := got.Caches["compare"]
	if !ok {
		t.Fatalf("no compare cache stats: %v", got.Caches)
	}
	if cmp.Entries != 1 || cmp.Misses != 1 || cmp.Hits != 0 {
		t.Errorf("compare entries/hits/misses = %d/%d/%d, want 1/0/1", cmp.Entries, cmp.Hits, cmp.Misses)
	}
	// The per-endpoint split must reconcile with the aggregate.
	if adv.Entries+cmp.Entries != got.Cache.Entries {
		t.Errorf("entries %d+%d != aggregate %d", adv.Entries, cmp.Entries, got.Cache.Entries)
	}
	if adv.Hits+cmp.Hits != got.Advise.CacheHits {
		t.Errorf("hits %d+%d != aggregate %d", adv.Hits, cmp.Hits, got.Advise.CacheHits)
	}
}

// TestAutoSeedCanonicalized: on the wire "auto" can never reach search
// (sales-only schema, candidate pool capped at the auto threshold), so
// its seed must be canonicalized away like the knapsack's.
func TestAutoSeedCanonicalized(t *testing.T) {
	s := testServer()
	if w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"solver":"auto","seed":1`)); w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"solver":"auto","seed":2`))
	if w.Header().Get("X-Cache") != "hit" {
		t.Fatalf("auto seed spelling fragmented the cache: X-Cache = %q", w.Header().Get("X-Cache"))
	}
}
