package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const testRows = 10_000_000 // keep lattice math fast

func testServer() *Server {
	return New(Options{})
}

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func adviseBody(scenario string, extra string) string {
	b := fmt.Sprintf(`{"scenario":%q,"fact_rows":%d,"queries":5`, scenario, testRows)
	if extra != "" {
		b += "," + extra
	}
	return b + "}"
}

func TestEndpoints(t *testing.T) {
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		// wantBody substrings that must appear in the response.
		wantBody []string
	}{
		{"healthz", "GET", "/healthz", "", 200, []string{`"status":"ok"`}},
		{"healthz wrong method", "POST", "/healthz", "", 405, nil},
		{"stats", "GET", "/v1/stats", "", 200, []string{`"uptime_seconds"`, `"cache"`}},
		{"tariffs", "GET", "/v1/tariffs", "", 200,
			[]string{`"aws-2012"`, `"stratus"`, `"nimbus"`, `"headers"`, `"$0.12"`}},
		{"tariffs wrong method", "POST", "/v1/tariffs", "{}", 405, nil},
		{"advise wrong method", "GET", "/v1/advise", "", 405, nil},
		{"unknown path", "GET", "/v2/advise", "", 404, nil},

		{"mv1", "POST", "/v1/advise", adviseBody("mv1", `"budget":25`), 200,
			[]string{`"scenario":"mv1"`, `"recommendation"`, `"views":[`, `"feasible":true`, `"report"`}},
		{"mv1 string budget", "POST", "/v1/advise", adviseBody("mv1", `"budget":"$25.00"`), 200,
			[]string{`"scenario":"mv1"`}},
		{"mv2", "POST", "/v1/advise", adviseBody("mv2", `"limit":"4h"`), 200,
			[]string{`"scenario":"mv2"`, `"recommendation"`}},
		{"mv3", "POST", "/v1/advise", adviseBody("mv3", `"alpha":0.5`), 200,
			[]string{`"scenario":"mv3"`, `"recommendation"`}},
		{"mv3 default alpha", "POST", "/v1/advise", adviseBody("mv3", ""), 200,
			[]string{`"scenario":"mv3"`}},
		{"pareto", "POST", "/v1/advise", adviseBody("pareto", `"steps":5`), 200,
			[]string{`"scenario":"pareto"`, `"pareto":[`, `"alpha"`}},
		{"default scenario is mv1", "POST", "/v1/advise", adviseBody("", `"budget":25`), 200,
			[]string{`"scenario":"mv1"`}},
		{"explicit workload", "POST", "/v1/advise",
			fmt.Sprintf(`{"scenario":"mv1","budget":25,"fact_rows":%d,"workload":[{"levels":["year","country"],"frequency":30},{"levels":["month","region"]}]}`, testRows),
			200, []string{`"recommendation"`}},
		{"inline provider spec", "POST", "/v1/advise",
			fmt.Sprintf(`{"scenario":"mv1","budget":25,"fact_rows":%d,"queries":3,"provider_spec":{"name":"tiny-cloud","compute":{"granularity":"per-hour","instances":[{"name":"small","price_per_hour":"$0.10","ecu":1}]},"storage":{"mode":"slab","tiers":[{"price_per_gb":"$0.10"}]},"transfer":{"ingress_free":true,"egress":{"mode":"graduated","tiers":[{"price_per_gb":"$0.10"}]}}}}`, testRows),
			200, []string{`"recommendation"`}},

		{"bad json", "POST", "/v1/advise", `{"scenario":`, 400, []string{`"error"`}},
		{"unknown field", "POST", "/v1/advise", `{"scenario":"mv1","budget":25,"bogus":1}`, 400, []string{"bogus"}},
		{"unknown scenario", "POST", "/v1/advise", adviseBody("warp", ""), 400, []string{"unknown scenario"}},
		{"mv1 missing budget", "POST", "/v1/advise", adviseBody("mv1", ""), 400, []string{"budget required"}},
		{"mv1 negative budget", "POST", "/v1/advise", adviseBody("mv1", `"budget":-5`), 400, []string{"negative budget"}},
		{"mv2 missing limit", "POST", "/v1/advise", adviseBody("mv2", ""), 400, []string{"limit required"}},
		{"mv2 bad limit", "POST", "/v1/advise", adviseBody("mv2", `"limit":"soon"`), 400, []string{"limit"}},
		{"mv3 alpha out of range", "POST", "/v1/advise", adviseBody("mv3", `"alpha":1.5`), 400, []string{"alpha"}},
		{"pareto too many steps", "POST", "/v1/advise", adviseBody("pareto", `"steps":9999`), 400, []string{"steps"}},
		{"unknown provider", "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"provider":"nonexistent"`), 400, []string{"unknown provider"}},
		{"oversized workload", "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"queries":99`), 400, []string{"workload"}},
		{"absurd fact rows", "POST", "/v1/advise", `{"scenario":"mv1","budget":25,"fact_rows":999000000000000}`, 400, []string{"fact_rows"}},
		{"bad maintenance policy", "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"maintenance_policy":"psychic"`), 400, []string{"maintenance policy"}},
		{"bad job overhead", "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"job_overhead":"a while"`), 400, []string{"job_overhead"}},
		{"bad workload level", "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"workload":[{"levels":["eon","country"]}]`), 400, []string{"eon"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := testServer()
			w := do(t, s, c.method, c.path, c.body)
			if w.Code != c.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, c.wantStatus, w.Body.String())
			}
			for _, sub := range c.wantBody {
				if !strings.Contains(w.Body.String(), sub) {
					t.Errorf("body missing %q:\n%s", sub, w.Body.String())
				}
			}
			if ct := w.Header().Get("Content-Type"); w.Code != 405 && w.Code != 404 && ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
		})
	}
}

// TestCacheHit checks that a repeated identical request — and an
// equivalent one spelled differently — is served from the cache.
func TestCacheHit(t *testing.T) {
	s := testServer()
	first := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`))
	if first.Code != 200 || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first: status %d, X-Cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	second := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`))
	if second.Code != 200 || second.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second: status %d, X-Cache %q", second.Code, second.Header().Get("X-Cache"))
	}
	if first.Body.String() != second.Body.String() {
		t.Error("cached body differs from computed body")
	}
	// Same advisory problem, different spelling: string budget, explicit
	// defaults, reordered keys.
	spelled := do(t, s, "POST", "/v1/advise",
		fmt.Sprintf(`{"queries":5,"budget":"$25","scenario":"mv1","fact_rows":%d,"instances":5,"instance_type":"small","provider":"aws-2012"}`, testRows))
	if spelled.Header().Get("X-Cache") != "hit" {
		t.Errorf("canonicalized equivalent request missed the cache")
	}
	// A different budget must not hit.
	other := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":26`))
	if other.Header().Get("X-Cache") != "miss" {
		t.Error("different budget unexpectedly hit the cache")
	}
}

// TestEvictedResponseRecovery exercises the corner where a raw body still
// maps to its canonical key but the response itself was evicted: the
// handler must rebuild the request from the canonical key and re-solve.
func TestEvictedResponseRecovery(t *testing.T) {
	for _, scenario := range []struct{ name, body string }{
		{"mv1", adviseBody("mv1", `"budget":25`)},
		{"mv2", adviseBody("mv2", `"limit":"4h"`)},
		{"pareto", adviseBody("pareto", `"steps":5`)},
	} {
		t.Run(scenario.name, func(t *testing.T) {
			s := testServer()
			first := do(t, s, "POST", "/v1/advise", scenario.body)
			if first.Code != 200 {
				t.Fatalf("prime: %d %s", first.Code, first.Body.String())
			}
			s.cache = newLRUCache(s.opts.CacheSize, s.opts.CacheMaxBytes) // evict every response, keep rawKeys
			again := do(t, s, "POST", "/v1/advise", scenario.body)
			if again.Code != 200 || again.Header().Get("X-Cache") != "miss" {
				t.Fatalf("recovery: status %d, X-Cache %q: %s",
					again.Code, again.Header().Get("X-Cache"), again.Body.String())
			}
			if first.Body.String() != again.Body.String() {
				t.Error("re-solved response differs from original")
			}
		})
	}
}

// TestConcurrentAdvise hammers the server with parallel clients mixing
// scenarios and checks every response is correct and internally
// consistent.
func TestConcurrentAdvise(t *testing.T) {
	s := testServer()
	bodies := []string{
		adviseBody("mv1", `"budget":25`),
		adviseBody("mv2", `"limit":"4h"`),
		adviseBody("mv3", `"alpha":0.25`),
		adviseBody("pareto", `"steps":5`),
	}
	want := make([]string, len(bodies))
	for i, b := range bodies {
		w := do(t, s, "POST", "/v1/advise", b)
		if w.Code != 200 {
			t.Fatalf("prime %d: status %d: %s", i, w.Code, w.Body.String())
		}
		want[i] = w.Body.String()
	}
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(bodies))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, b := range bodies {
				w := do(t, s, "POST", "/v1/advise", b)
				if w.Code != 200 {
					errs <- fmt.Errorf("client %d body %d: status %d", c, i, w.Code)
					return
				}
				if w.Body.String() != want[i] {
					errs <- fmt.Errorf("client %d body %d: response differs", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentColdMisses has parallel clients racing on distinct
// uncached configs — exercising the compute-then-insert path under
// contention and LRU eviction (cache smaller than the config count).
func TestConcurrentColdMisses(t *testing.T) {
	s := New(Options{CacheSize: 4})
	const clients = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := adviseBody("mv1", fmt.Sprintf(`"budget":25,"frequency":%d`, c+1))
			w := do(t, s, "POST", "/v1/advise", body)
			if w.Code != 200 {
				errs <- fmt.Errorf("client %d: status %d: %s", c, w.Code, w.Body.String())
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := s.cache.Len(); n > 4 {
		t.Errorf("cache grew to %d entries, cap 4", n)
	}
}

func TestStatsCounts(t *testing.T) {
	s := testServer()
	do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`))
	do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`))
	do(t, s, "POST", "/v1/advise", adviseBody("mv1", "")) // 400
	w := do(t, s, "GET", "/v1/stats", "")
	var got statsJSON
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Advise.CacheMisses != 1 || got.Advise.CacheHits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", got.Advise.CacheHits, got.Advise.CacheMisses)
	}
	if got.Advise.Errors != 1 {
		t.Errorf("errors = %d, want 1", got.Advise.Errors)
	}
	if got.Advise.ByScenario["mv1"] != 2 {
		t.Errorf("mv1 count = %d, want 2", got.Advise.ByScenario["mv1"])
	}
	if got.ByEndpoint["advise"] != 3 || got.ByEndpoint["stats"] != 1 {
		t.Errorf("endpoint counts = %v", got.ByEndpoint)
	}
	if got.Cache.Entries != 1 || got.Cache.Capacity != 256 {
		t.Errorf("cache = %+v", got.Cache)
	}
}

// TestAdviseTimeout forces an immediate solve deadline and checks the
// new contract: the request fails fast with 503, and — unlike the old
// detached-goroutine design — no orphaned solve lingers to warm the
// cache with a result nobody waited for.
func TestAdviseTimeout(t *testing.T) {
	s := New(Options{RequestTimeout: time.Nanosecond})
	w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25`))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", w.Code, w.Body.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.InflightSolves() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.InflightSolves(); n != 0 {
		t.Fatalf("%d solves still in flight after drain", n)
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("cache has %d entries; a timed-out solve must not warm it", n)
	}
	if n := s.flight.len(); n != 0 {
		t.Errorf("%d flight keys still registered after drain", n)
	}
}

// TestRecommendationShape decodes a full response and sanity-checks the
// wire structure end to end.
func TestRecommendationShape(t *testing.T) {
	s := testServer()
	w := do(t, s, "POST", "/v1/advise", adviseBody("mv1", `"budget":25,"frequency":30`))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Scenario       string `json:"scenario"`
		DatasetSize    string `json:"dataset_size"`
		Candidates     int    `json:"candidates"`
		Recommendation struct {
			Feasible bool     `json:"feasible"`
			Views    []string `json:"views"`
			Points   [][]int  `json:"points"`
			Time     string   `json:"time"`
			Bill     struct {
				Total string `json:"total"`
			} `json:"bill"`
			Baseline struct {
				Hours float64 `json:"time_hours"`
			} `json:"baseline"`
			Report string `json:"report"`
		} `json:"recommendation"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Candidates == 0 || resp.DatasetSize == "" {
		t.Errorf("missing context fields: %+v", resp)
	}
	if len(resp.Recommendation.Views) != len(resp.Recommendation.Points) {
		t.Errorf("views/points mismatch: %v vs %v", resp.Recommendation.Views, resp.Recommendation.Points)
	}
	if !strings.HasPrefix(resp.Recommendation.Bill.Total, "$") {
		t.Errorf("bill total %q not a dollar string", resp.Recommendation.Bill.Total)
	}
	if _, err := time.ParseDuration(resp.Recommendation.Time); err != nil {
		t.Errorf("time %q not a duration: %v", resp.Recommendation.Time, err)
	}
	if !strings.Contains(resp.Recommendation.Report, "Scenario MV1") {
		t.Errorf("report missing scenario header:\n%s", resp.Recommendation.Report)
	}
}
