package server

import (
	"net/http"
	"sync"

	"vmcloud/internal/obs"
)

// Tenant namespaces. An account ID arrives either as the {account}
// path segment of the tenant-scoped routes (POST
// /v1/t/{account}/advise and friends) or as the X-Account header on
// the default routes. The account is folded into both cache key
// layouts — the raw-body fast-path key and the canonical response key
// — so two tenants posting byte-identical bodies occupy disjoint cache
// entries: one tenant can neither poison nor read another's cache. The
// empty account is the default namespace, and requests in it pay
// nothing for the feature (no stats, no metric series, one extra NUL
// byte in a pooled buffer).

// accountFrom extracts and validates the request's account ID. ok is
// false only for a present-but-invalid ID; an absent ID is the valid
// default namespace "".
//
//mvlint:hotpath
func accountFrom(r *http.Request) (account string, ok bool) {
	account = r.PathValue("account")
	if account == "" {
		account = r.Header.Get("X-Account")
	}
	if account == "" {
		return "", true
	}
	return account, validAccount(account)
}

// validAccount enforces the account ID charset: 1-64 chars of
// [a-zA-Z0-9_-]. The charset excludes NUL by construction, so an
// account can never forge the cache-key layout, and excludes '/' so a
// path-segment account can never smuggle extra segments.
//
//mvlint:hotpath
func validAccount(a string) bool {
	if len(a) == 0 || len(a) > 64 {
		return false
	}
	for i := 0; i < len(a); i++ {
		c := a[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantMetrics lazily registers one request counter per account on
// the server registry (mvcloud_tenant_requests_total{account=...}).
// Registration is guarded — the obs registry panics on duplicate
// series — and bounded at maxTenantSeries accounts, beyond which
// requests count against the "other" series, so a tenant-ID flood
// cannot balloon the exposition.
type tenantMetrics struct {
	reg *obs.Registry

	mu       sync.RWMutex
	counters map[string]*obs.Counter
}

func (t *tenantMetrics) init(reg *obs.Registry) {
	t.reg = reg
	t.counters = make(map[string]*obs.Counter)
}

// record counts one request for account. The steady-state path for a
// known account is a read-locked map probe plus an atomic add.
//
//mvlint:hotpath
func (t *tenantMetrics) record(account string) {
	t.mu.RLock()
	c := t.counters[account]
	t.mu.RUnlock()
	if c == nil {
		c = t.register(account)
	}
	c.Inc()
}

func (t *tenantMetrics) register(account string) *obs.Counter {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.counters[account]; c != nil {
		return c
	}
	series := account
	if len(t.counters) >= maxTenantSeries {
		series = "other"
	}
	c := t.counters[series]
	if c == nil {
		c = t.reg.Counter("mvcloud_tenant_requests_total",
			"Requests received per account namespace.", "account", series)
		t.counters[series] = c
	}
	if series != account && len(t.counters) < maxTenantSeries {
		// Alias the overflowed account to the shared series so its next
		// request takes the fast path.
		t.counters[account] = c
	}
	return c
}
