package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"vmcloud/internal/compare"
	"vmcloud/internal/core"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
)

func compareBody(extra string) string {
	b := fmt.Sprintf(`{"budget":25,"limit":"4h","fact_rows":%d,"queries":5`, testRows)
	if extra != "" {
		b += "," + extra
	}
	return b + "}"
}

func TestCompareEndpoint(t *testing.T) {
	s := testServer()
	w := do(t, s, "POST", "/v1/compare", compareBody(""))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("X-Cache") != "miss" {
		t.Errorf("first compare X-Cache = %q", w.Header().Get("X-Cache"))
	}
	var resp compare.ComparisonJSON
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if got, want := len(resp.Configs), len(pricing.ProviderNames()); got != want {
		t.Errorf("configs = %d, want %d (full catalog)", got, want)
	}
	if len(resp.Winners) != 3 {
		t.Errorf("winners = %d, want 3 (mv1, mv2, mv3)", len(resp.Winners))
	}
	if resp.BreakEven == nil {
		t.Error("break-even sweep missing")
	}
	if resp.Report == "" {
		t.Error("no rendered report")
	}
	// Byte-identical repeat is a cache hit with an identical body.
	w2 := do(t, s, "POST", "/v1/compare", compareBody(""))
	if w2.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeat X-Cache = %q", w2.Header().Get("X-Cache"))
	}
	if w2.Body.String() != w.Body.String() {
		t.Error("cache hit body differs from the miss body")
	}
}

// The acceptance bar for the comparison engine: /v1/compare winners must
// be exactly what N independent per-provider /v1/advise calls imply
// under each scenario's ranking (feasible first, then time for mv1 /
// cost for mv2 / the raw α-objective for mv3, provider name as the final
// tie-break).
func TestCompareWinnersMatchIndependentAdvise(t *testing.T) {
	s := testServer()
	type outcome struct {
		provider string
		hours    float64
		time     time.Duration
		cost     money.Money
		feasible bool
	}
	perScenario := map[string][]outcome{}
	for _, prov := range pricing.ProviderNames() {
		for scenario, param := range map[string]string{
			"mv1": `"budget":25`,
			"mv2": `"limit":"4h"`,
			"mv3": `"alpha":0.5`,
		} {
			body := adviseBody(scenario, param+fmt.Sprintf(`,"provider":%q`, prov))
			w := do(t, s, "POST", "/v1/advise", body)
			if w.Code != 200 {
				t.Fatalf("advise %s %s: status %d: %s", prov, scenario, w.Code, w.Body.String())
			}
			var resp struct {
				Recommendation core.RecommendationJSON `json:"recommendation"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			d, err := time.ParseDuration(resp.Recommendation.Time)
			if err != nil {
				t.Fatal(err)
			}
			perScenario[scenario] = append(perScenario[scenario], outcome{
				provider: prov,
				hours:    resp.Recommendation.Hours,
				time:     d,
				cost:     resp.Recommendation.Bill.Total,
				feasible: resp.Recommendation.Feasible,
			})
		}
	}
	better := func(scenario string, a, b outcome) bool {
		if a.feasible != b.feasible {
			return a.feasible
		}
		switch scenario {
		case "mv1":
			if a.time != b.time {
				return a.time < b.time
			}
			if a.cost != b.cost {
				return a.cost < b.cost
			}
		case "mv2":
			if a.cost != b.cost {
				return a.cost < b.cost
			}
			if a.time != b.time {
				return a.time < b.time
			}
		default:
			oa := 0.5*a.time.Hours() + 0.5*a.cost.Dollars()
			ob := 0.5*b.time.Hours() + 0.5*b.cost.Dollars()
			if oa != ob {
				return oa < ob
			}
		}
		return a.provider < b.provider
	}

	w := do(t, s, "POST", "/v1/compare", compareBody(`"alpha":0.5`))
	if w.Code != 200 {
		t.Fatalf("compare: status %d: %s", w.Code, w.Body.String())
	}
	var resp compare.ComparisonJSON
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Winners) != 3 {
		t.Fatalf("winners = %d, want 3", len(resp.Winners))
	}
	for _, win := range resp.Winners {
		outs := perScenario[win.Scenario]
		if len(outs) != len(pricing.ProviderNames()) {
			t.Fatalf("%s: %d advise outcomes", win.Scenario, len(outs))
		}
		expect := outs[0]
		for _, o := range outs[1:] {
			if better(win.Scenario, o, expect) {
				expect = o
			}
		}
		if win.Provider != expect.provider {
			t.Errorf("%s winner = %s, independent advise says %s", win.Scenario, win.Provider, expect.provider)
		}
		d, err := time.ParseDuration(win.Time)
		if err != nil {
			t.Fatal(err)
		}
		if d != expect.time || win.Cost != expect.cost || win.Feasible != expect.feasible {
			t.Errorf("%s winner metrics = (%v, %v, %v), advise says (%v, %v, %v)",
				win.Scenario, d, win.Cost, win.Feasible, expect.time, expect.cost, expect.feasible)
		}
	}
}

// Listing providers in a different order is the same canonical request:
// the second spelling must hit the cache and serve the identical body.
func TestCompareProviderOrderIndependence(t *testing.T) {
	s := testServer()
	names := pricing.ProviderNames()
	fwd := `"` + strings.Join(names, `","`) + `"`
	var rev []string
	for i := len(names) - 1; i >= 0; i-- {
		rev = append(rev, names[i])
	}
	bwd := `"` + strings.Join(rev, `","`) + `"`

	w1 := do(t, s, "POST", "/v1/compare", compareBody(`"providers":[`+fwd+`]`))
	if w1.Code != 200 {
		t.Fatalf("status %d: %s", w1.Code, w1.Body.String())
	}
	w2 := do(t, s, "POST", "/v1/compare", compareBody(`"providers":[`+bwd+`]`))
	if w2.Code != 200 {
		t.Fatalf("status %d: %s", w2.Code, w2.Body.String())
	}
	if w2.Header().Get("X-Cache") != "hit" {
		t.Errorf("reversed provider list missed the cache (X-Cache %q)", w2.Header().Get("X-Cache"))
	}
	if w1.Body.String() != w2.Body.String() {
		t.Error("provider order changed the comparison")
	}
}

// The same raw body is valid for both POST endpoints; the raw-body fast
// path must not alias across them.
func TestCompareAdviseNoCacheAliasing(t *testing.T) {
	s := testServer()
	body := fmt.Sprintf(`{"budget":25,"fact_rows":%d,"queries":3}`, testRows)
	wa := do(t, s, "POST", "/v1/advise", body)
	if wa.Code != 200 {
		t.Fatalf("advise: status %d: %s", wa.Code, wa.Body.String())
	}
	wc := do(t, s, "POST", "/v1/compare", body)
	if wc.Code != 200 {
		t.Fatalf("compare: status %d: %s", wc.Code, wc.Body.String())
	}
	if wc.Header().Get("X-Cache") != "miss" {
		t.Errorf("compare aliased the advise raw-key entry (X-Cache %q)", wc.Header().Get("X-Cache"))
	}
	if !strings.Contains(wc.Body.String(), `"configs"`) {
		t.Error("compare served an advise-shaped body")
	}
	// And the reverse direction still hits per-endpoint.
	wa2 := do(t, s, "POST", "/v1/advise", body)
	if wa2.Header().Get("X-Cache") != "hit" {
		t.Errorf("advise repeat missed (X-Cache %q)", wa2.Header().Get("X-Cache"))
	}
	if wa2.Body.String() != wa.Body.String() {
		t.Error("advise hit body differs")
	}
}

func TestCompareValidation(t *testing.T) {
	s := testServer()
	cases := []struct {
		name string
		body string
		want string
	}{
		{"unknown provider", compareBody(`"providers":["atlantis"]`), "unknown provider"},
		{"advise provider field", compareBody(`"provider":"aws-2012"`), "providers"},
		{"advise instance_type field", compareBody(`"instance_type":"small"`), "instance_types"},
		{"advise instances field", compareBody(`"instances":5`), "fleet_sizes"},
		{"unknown scenario", compareBody(`"scenarios":["warp"]`), "unknown scenario"},
		{"mv1 without budget", fmt.Sprintf(`{"scenarios":["mv1"],"fact_rows":%d,"queries":3}`, testRows), "budget required"},
		{"bad fleet size", compareBody(`"fleet_sizes":[0]`), "fleet size"},
		{"grid too large", compareBody(`"fleet_sizes":[1,2,3,4,5,6,7,8,9,10,11,12,13]`), "exceeds the server limit"},
		{"unknown field", compareBody(`"surprise":1`), "unknown field"},
		{"malformed json", `{"budget":`, "parse request"},
	}
	for _, c := range cases {
		w := do(t, s, "POST", "/v1/compare", c.body)
		if w.Code != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, w.Code, w.Body.String())
			continue
		}
		if !strings.Contains(w.Body.String(), c.want) {
			t.Errorf("%s: body %q lacks %q", c.name, w.Body.String(), c.want)
		}
	}
}

func TestCompareStats(t *testing.T) {
	s := testServer()
	do(t, s, "POST", "/v1/compare", compareBody(""))
	do(t, s, "POST", "/v1/compare", compareBody(""))
	w := do(t, s, "GET", "/v1/stats", "")
	var snap struct {
		ByEndpoint map[string]int64 `json:"by_endpoint"`
		Advise     struct {
			ByScenario map[string]int64 `json:"by_scenario"`
		} `json:"advise"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ByEndpoint["compare"] != 2 {
		t.Errorf("compare endpoint count = %d, want 2", snap.ByEndpoint["compare"])
	}
	if snap.Advise.ByScenario["compare"] != 2 {
		t.Errorf("compare scenario count = %d, want 2", snap.Advise.ByScenario["compare"])
	}
}
