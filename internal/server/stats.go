package server

import (
	"sync"
	"time"
)

// stats aggregates serving counters for GET /v1/stats. A single mutex is
// plenty: counter updates are nanoseconds next to an advisor solve.
type stats struct {
	mu         sync.Mutex
	start      time.Time
	requests   int64
	byEndpoint map[string]int64
	byScenario map[string]int64
	hits       int64
	misses     int64
	errors     int64
}

func newStats(now time.Time) *stats {
	return &stats{
		start:      now,
		byEndpoint: make(map[string]int64),
		byScenario: make(map[string]int64),
	}
}

func (s *stats) request(endpoint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.byEndpoint[endpoint]++
}

func (s *stats) advise(scenario string, hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byScenario[scenario]++
	if hit {
		s.hits++
	} else {
		s.misses++
	}
}

func (s *stats) failure() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errors++
}

// statsJSON is the wire form of the counters.
type statsJSON struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      int64            `json:"requests"`
	ByEndpoint    map[string]int64 `json:"by_endpoint"`
	Advise        adviseStatsJSON  `json:"advise"`
	Cache         cacheStatsJSON   `json:"cache"`
}

type adviseStatsJSON struct {
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	Errors      int64            `json:"errors"`
	ByScenario  map[string]int64 `json:"by_scenario"`
}

type cacheStatsJSON struct {
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Bytes    int64 `json:"bytes"`
}

func (s *stats) snapshot(now time.Time, cacheLen, cacheCap int) statsJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	byEndpoint := make(map[string]int64, len(s.byEndpoint))
	for k, v := range s.byEndpoint {
		byEndpoint[k] = v
	}
	byScenario := make(map[string]int64, len(s.byScenario))
	for k, v := range s.byScenario {
		byScenario[k] = v
	}
	return statsJSON{
		UptimeSeconds: now.Sub(s.start).Seconds(),
		Requests:      s.requests,
		ByEndpoint:    byEndpoint,
		Advise: adviseStatsJSON{
			CacheHits:   s.hits,
			CacheMisses: s.misses,
			Errors:      s.errors,
			ByScenario:  byScenario,
		},
		Cache: cacheStatsJSON{Entries: cacheLen, Capacity: cacheCap},
	}
}
