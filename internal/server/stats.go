package server

import (
	"sync"
	"time"
)

// stats aggregates serving counters for GET /v1/stats. A single mutex is
// plenty: counter updates are nanoseconds next to an advisor solve.
type stats struct {
	mu         sync.Mutex
	start      time.Time
	requests   int64
	byEndpoint map[string]int64
	byScenario map[string]int64
	hits       int64
	misses     int64
	errors     int64
	// coalesced counts requests that neither hit the response cache nor
	// ran their own solve: they joined another request's in-flight solve
	// for the same canonical key (the stampede path).
	coalesced int64
	// solves counts solves actually executed — the number the
	// singleflight regression test pins: under a K-way stampede of one
	// key it must advance by exactly 1.
	solves int64
	// shed/degraded/stale/panics are the overload-path outcomes: requests
	// refused by admission control, responses returned at the solve
	// deadline with the best incumbent, shed requests served an evicted
	// cache entry, and solver panics contained to 500s.
	shed     int64
	degraded int64
	stale    int64
	panics   int64
	// hitsByEndpoint/missesByEndpoint split the memoization outcome per
	// endpoint — once solver choice (and its seed) multiplies the key
	// space, the aggregate alone can no longer tell which endpoint's
	// cache is earning its memory.
	hitsByEndpoint      map[string]int64
	missesByEndpoint    map[string]int64
	coalescedByEndpoint map[string]int64
	// byTenant counts requests per account namespace, capped at
	// maxTenantSeries distinct accounts (beyond that, "other") so a
	// tenant-ID flood cannot balloon the stats map.
	byTenant map[string]int64
}

// maxTenantSeries bounds the distinct accounts tracked individually in
// stats and /metrics.
const maxTenantSeries = 256

func newStats(now time.Time) *stats {
	return &stats{
		start:               now,
		byEndpoint:          make(map[string]int64),
		byScenario:          make(map[string]int64),
		hitsByEndpoint:      make(map[string]int64),
		missesByEndpoint:    make(map[string]int64),
		coalescedByEndpoint: make(map[string]int64),
		byTenant:            make(map[string]int64),
	}
}

// tenantRequest counts one request in an account namespace.
func (s *stats) tenantRequest(account string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byTenant[account]; !ok && len(s.byTenant) >= maxTenantSeries {
		account = "other"
	}
	s.byTenant[account]++
}

func (s *stats) request(endpoint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.byEndpoint[endpoint]++
}

func (s *stats) advise(endpoint, scenario string, hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byScenario[scenario]++
	if hit {
		s.hits++
		s.hitsByEndpoint[endpoint]++
	} else {
		s.misses++
		s.missesByEndpoint[endpoint]++
	}
}

// coalesce records a request that joined another request's in-flight
// solve instead of hitting the cache or solving itself.
func (s *stats) coalesce(endpoint, scenario string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byScenario[scenario]++
	s.coalesced++
	s.coalescedByEndpoint[endpoint]++
}

// solve records one actually-executed solve.
func (s *stats) solve() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.solves++
}

// solveCount reads the executed-solve counter (test hook and /v1/stats).
func (s *stats) solveCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solves
}

// shedReq records a request refused by admission control.
func (s *stats) shedReq() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shed++
}

// degrade records a response served degraded at the solve deadline.
func (s *stats) degrade() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degraded++
}

// staleServe records a shed request served a stale evicted cache entry.
func (s *stats) staleServe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stale++
}

// panicked records a solver panic contained to a 500.
func (s *stats) panicked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.panics++
}

func (s *stats) shedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}

func (s *stats) degradedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

func (s *stats) staleCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stale
}

func (s *stats) panicCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.panics
}

func (s *stats) failure() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errors++
}

// The accessors below feed the /metrics CounterFunc re-exports: each
// reads one counter under the mutex at exposition time, so dashboards
// scrape the same numbers /v1/stats reports.

func (s *stats) endpointRequests(endpoint string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byEndpoint[endpoint]
}

func (s *stats) endpointHits(endpoint string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hitsByEndpoint[endpoint]
}

func (s *stats) endpointMisses(endpoint string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.missesByEndpoint[endpoint]
}

func (s *stats) endpointCoalesced(endpoint string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coalescedByEndpoint[endpoint]
}

func (s *stats) errorCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errors
}

// statsJSON is the wire form of the counters.
type statsJSON struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      int64            `json:"requests"`
	ByEndpoint    map[string]int64 `json:"by_endpoint"`
	Advise        adviseStatsJSON  `json:"advise"`
	Cache         cacheStatsJSON   `json:"cache"`
	// Caches breaks the shared memoization caches down per endpoint:
	// resident response/raw-key entries and bytes plus hit/miss counts.
	Caches map[string]endpointCacheJSON `json:"caches"`
	// Tenants counts requests per account namespace (absent when no
	// tenant-scoped request has been seen, keeping default responses
	// byte-identical to earlier versions).
	Tenants map[string]int64 `json:"tenants,omitempty"`
	// Cluster is the frontend routing plane (cluster mode only).
	Cluster *clusterStatsJSON `json:"cluster,omitempty"`
}

// endpointCacheJSON is one endpoint's slice of the memoization caches.
type endpointCacheJSON struct {
	// Entries/Bytes cover the canonical-key response cache.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// RawEntries/RawBytes cover the raw-body fast-path key cache.
	RawEntries int   `json:"raw_entries"`
	RawBytes   int64 `json:"raw_bytes"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	// Coalesced counts requests served by joining another request's
	// in-flight solve (singleflight stampede suppression).
	Coalesced int64 `json:"coalesced"`
}

type adviseStatsJSON struct {
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Coalesced requests joined an in-flight identical solve; Solves is
	// how many solves actually executed (misses ≥ solves when requests
	// coalesce; a K-way stampede is 1 miss + K-1 coalesced + 1 solve).
	Coalesced int64 `json:"coalesced"`
	Solves    int64 `json:"solves"`
	Errors    int64 `json:"errors"`
	// Shed/Degraded/Stale/Panics are the overload outcomes: 429s from
	// admission control, deadline-degraded responses, stale cache serves
	// under shedding, and contained solver panics.
	Shed       int64            `json:"shed"`
	Degraded   int64            `json:"degraded"`
	Stale      int64            `json:"stale"`
	Panics     int64            `json:"panics"`
	ByScenario map[string]int64 `json:"by_scenario"`
}

type cacheStatsJSON struct {
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Bytes    int64 `json:"bytes"`
}

func (s *stats) snapshot(now time.Time, cacheLen, cacheCap int, resp, raw map[string]NamespaceStat) statsJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	byEndpoint := make(map[string]int64, len(s.byEndpoint))
	for k, v := range s.byEndpoint {
		byEndpoint[k] = v
	}
	byScenario := make(map[string]int64, len(s.byScenario))
	for k, v := range s.byScenario {
		byScenario[k] = v
	}
	caches := make(map[string]endpointCacheJSON)
	for ns, st := range resp {
		c := caches[ns]
		c.Entries, c.Bytes = st.Entries, st.Bytes
		caches[ns] = c
	}
	for ns, st := range raw {
		c := caches[ns]
		c.RawEntries, c.RawBytes = st.Entries, st.Bytes
		caches[ns] = c
	}
	for ns, n := range s.hitsByEndpoint {
		c := caches[ns]
		c.Hits = n
		caches[ns] = c
	}
	for ns, n := range s.missesByEndpoint {
		c := caches[ns]
		c.Misses = n
		caches[ns] = c
	}
	for ns, n := range s.coalescedByEndpoint {
		c := caches[ns]
		c.Coalesced = n
		caches[ns] = c
	}
	var tenants map[string]int64
	if len(s.byTenant) > 0 {
		tenants = make(map[string]int64, len(s.byTenant))
		for k, v := range s.byTenant {
			tenants[k] = v
		}
	}
	return statsJSON{
		UptimeSeconds: now.Sub(s.start).Seconds(),
		Requests:      s.requests,
		ByEndpoint:    byEndpoint,
		Advise: adviseStatsJSON{
			CacheHits:   s.hits,
			CacheMisses: s.misses,
			Coalesced:   s.coalesced,
			Solves:      s.solves,
			Errors:      s.errors,
			Shed:        s.shed,
			Degraded:    s.degraded,
			Stale:       s.stale,
			Panics:      s.panics,
			ByScenario:  byScenario,
		},
		Cache:   cacheStatsJSON{Entries: cacheLen, Capacity: cacheCap},
		Caches:  caches,
		Tenants: tenants,
	}
}
