package server

import (
	"fmt"
	"sync"
	"testing"
)

// TestLRUConcurrentStress hammers Get/Put/view/NamespaceStats/Bytes/Len
// from many goroutines — run under -race this is the memory-model check
// for the serving caches — and then asserts the byte-accounting
// invariants hold exactly: the resident byte counter must equal the sum
// of the surviving entries' sizes, the namespace breakdown must
// partition the cache, and both configured bounds must be respected.
// Writers concurrently scribble on every Get result, so a defensive-copy
// regression shows up as corrupted reads.
func TestLRUConcurrentStress(t *testing.T) {
	const (
		workers  = 16
		rounds   = 500
		capacity = 64
		maxBytes = 4096
		keySpace = 200
	)
	c := newLRUCache(capacity, maxBytes)
	namespaces := []string{"advise", "compare", "sweep"}
	valFor := func(ns string, k int) []byte {
		// Value length varies with the key so refreshes change entry sizes.
		return []byte(fmt.Sprintf("%s-value-%d-%s", ns, k, "xxxxxxxxxxxxxxxx"[:k%16]))
	}
	keyFor := func(ns string, k int) string {
		return fmt.Sprintf("%s\x00key-%d", ns, k)
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ns := namespaces[(g+i)%len(namespaces)]
				k := (g*31 + i*7) % keySpace
				key := keyFor(ns, k)
				switch i % 5 {
				case 0, 1:
					// Put hands ownership to the cache: always a fresh slice.
					c.Put(key, valFor(ns, k))
				case 2:
					if v, ok := c.Get(key); ok {
						if string(v) != string(valFor(ns, k)) {
							t.Errorf("corrupt read for %q: %q", key, v)
						}
						// Scribble on the returned copy; later readers must
						// still see pristine bytes.
						for j := range v {
							v[j] = '!'
						}
					}
				case 3:
					if v, ok := c.view([]byte(key)); ok {
						// Views are read-only: verify, never mutate.
						if string(v) != string(valFor(ns, k)) {
							t.Errorf("corrupt view for %q: %q", key, v)
						}
					}
				case 4:
					stats := c.NamespaceStats()
					var total int64
					for _, st := range stats {
						total += st.Bytes
					}
					// A concurrent snapshot can't be compared to live
					// counters exactly, but it can never exceed the hard
					// byte bound.
					if total > maxBytes {
						t.Errorf("namespace bytes %d exceed bound %d", total, maxBytes)
					}
					_ = c.Bytes()
					_ = c.Len()
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiescent invariants: exact byte accounting, bounds respected,
	// namespace stats partition the cache.
	stats := c.NamespaceStats()
	var nsBytes int64
	var nsEntries int
	for _, st := range stats {
		nsBytes += st.Bytes
		nsEntries += st.Entries
	}
	if got := c.Bytes(); got != nsBytes {
		t.Errorf("byte counter %d != sum of entry sizes %d", got, nsBytes)
	}
	if got := c.Len(); got != nsEntries {
		t.Errorf("len %d != sum of namespace entries %d", got, nsEntries)
	}
	if c.Len() > capacity {
		t.Errorf("len %d exceeds capacity %d", c.Len(), capacity)
	}
	if c.Bytes() > maxBytes {
		t.Errorf("bytes %d exceed bound %d", c.Bytes(), maxBytes)
	}
	for ns := range stats {
		found := false
		for _, want := range namespaces {
			if ns == want {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected namespace %q", ns)
		}
	}
	// Every surviving entry still round-trips pristine bytes despite the
	// concurrent scribbling above.
	for _, ns := range namespaces {
		for k := 0; k < keySpace; k++ {
			if v, ok := c.Get(keyFor(ns, k)); ok {
				if want := valFor(ns, k); string(v) != string(want) {
					t.Errorf("entry %q corrupted: %q != %q", keyFor(ns, k), v, want)
				}
			}
		}
	}
}
