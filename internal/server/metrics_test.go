package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"vmcloud/internal/obs"
)

func scrape(t *testing.T, s *Server) []obs.Sample {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("GET /metrics: status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	samples, err := obs.ValidateText(w.Body.Bytes())
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, w.Body.String())
	}
	return samples
}

// findSample returns the value of the sample matching name and every
// given label, and whether it exists.
func findSample(samples []obs.Sample, name string, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Label(k) != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// TestMetricsEndpointValidates is the format gate CI leans on: every
// render must satisfy the exposition contract (ValidateText), and the
// registered series set must cover the three memoized endpoints across
// all four outcomes plus the solver, cache, stats and process families —
// all present from the first scrape, before any traffic, because series
// are preallocated at registration.
func TestMetricsEndpointValidates(t *testing.T) {
	s := New(Options{})
	samples := scrape(t, s)

	for _, ep := range memoizedEndpoints {
		for _, oc := range outcomeNames {
			lbl := map[string]string{"endpoint": ep, "outcome": oc}
			if _, ok := findSample(samples, "mvcloud_http_requests_total", lbl); !ok {
				t.Errorf("missing series mvcloud_http_requests_total{endpoint=%q,outcome=%q}", ep, oc)
			}
			if _, ok := findSample(samples, "mvcloud_http_request_duration_seconds_count", lbl); !ok {
				t.Errorf("missing histogram series for endpoint=%q outcome=%q", ep, oc)
			}
		}
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if _, ok := findSample(samples, "mvcloud_solve_phase_duration_seconds_count",
			map[string]string{"phase": p.String()}); !ok {
			t.Errorf("missing phase histogram for %q", p)
		}
	}
	for _, name := range []string{
		"mvcloud_solver_kernel_builds_total",
		"mvcloud_solver_kernel_rebinds_total",
		"mvcloud_solver_incremental_moves_total",
		"mvcloud_solver_search_evals_total",
	} {
		if _, ok := findSample(samples, name, nil); !ok {
			t.Errorf("missing solver series %s", name)
		}
	}
	for _, cache := range []string{"responses", "rawkeys"} {
		for _, name := range []string{"mvcloud_cache_entries", "mvcloud_cache_bytes", "mvcloud_cache_evictions_total"} {
			if _, ok := findSample(samples, name, map[string]string{"cache": cache}); !ok {
				t.Errorf("missing series %s{cache=%q}", name, cache)
			}
		}
	}
	for _, name := range []string{
		"mvcloud_stats_solves_total", "mvcloud_stats_errors_total",
		"mvcloud_stats_shed_total", "mvcloud_stats_degraded_total",
		"mvcloud_stats_stale_total", "mvcloud_stats_solve_panics_total",
		"mvcloud_process_start_time_seconds", "mvcloud_process_uptime_seconds",
		"mvcloud_go_goroutines", "mvcloud_http_inflight_requests",
	} {
		if _, ok := findSample(samples, name, nil); !ok {
			t.Errorf("missing series %s", name)
		}
	}
	// The scrape itself is in flight while rendering, so the gauge reads 1.
	if v, ok := findSample(samples, "mvcloud_http_inflight_requests", nil); !ok || v != 1 {
		t.Errorf("inflight gauge = %g during scrape, want 1 (the scrape itself)", v)
	}
}

// TestMetricsOutcomeCounts drives known traffic and checks the outcome
// split: one solve, two hits, one error on advise; stats re-exports
// agree with the HTTP-layer counters.
func TestMetricsOutcomeCounts(t *testing.T) {
	s := New(Options{})
	body := `{"scenario":"mv1","budget":25,"queries":10,"frequency":30}`
	for i, want := range []string{"miss", "hit", "hit"} {
		req := httptest.NewRequest("POST", "/v1/advise", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != 200 || w.Header().Get("X-Cache") != want {
			t.Fatalf("request %d: status %d, X-Cache %q (want %s)", i, w.Code, w.Header().Get("X-Cache"), want)
		}
	}
	req := httptest.NewRequest("POST", "/v1/advise", strings.NewReader(`{"scenario":"nope"}`))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code == 200 {
		t.Fatal("bad scenario accepted")
	}

	samples := scrape(t, s)
	for oc, want := range map[string]float64{"solve": 1, "hit": 2, "error": 1, "coalesced": 0} {
		lbl := map[string]string{"endpoint": "advise", "outcome": oc}
		if v, _ := findSample(samples, "mvcloud_http_requests_total", lbl); v != want {
			t.Errorf("requests_total{outcome=%q} = %g, want %g", oc, v, want)
		}
		if v, _ := findSample(samples, "mvcloud_http_request_duration_seconds_count", lbl); v != want {
			t.Errorf("duration_seconds_count{outcome=%q} = %g, want %g", oc, v, want)
		}
	}
	if v, _ := findSample(samples, "mvcloud_stats_cache_hits_total", map[string]string{"endpoint": "advise"}); v != 2 {
		t.Errorf("stats hits = %g, want 2", v)
	}
	if v, _ := findSample(samples, "mvcloud_stats_solves_total", nil); v != 1 {
		t.Errorf("stats solves = %g, want 1", v)
	}
	// The cold solve must have fed the per-phase histograms.
	if v, _ := findSample(samples, "mvcloud_solve_phase_duration_seconds_count",
		map[string]string{"phase": "total"}); v != 1 {
		t.Errorf("phase total count = %g, want 1", v)
	}
	if v, _ := findSample(samples, "mvcloud_solve_phase_duration_seconds_count",
		map[string]string{"phase": "solve"}); v < 1 {
		t.Errorf("phase solve count = %g, want >= 1", v)
	}
}

// parsePhases decodes an X-Solve-Phases header value.
func parsePhases(t *testing.T, header string) map[string]time.Duration {
	t.Helper()
	out := map[string]time.Duration{}
	for _, pair := range strings.Split(header, ";") {
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			t.Fatalf("malformed phase pair %q in %q", pair, header)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			t.Fatalf("bad duration in %q: %v", pair, err)
		}
		out[name] = d
	}
	return out
}

// TestDebugPhasesHeader: a cold solve with ?debug=phases carries the
// per-phase breakdown, the phases are disjoint sections of the total
// span (so they sum to at most the total), and cache hits never carry
// the header (the fast path never builds a trace).
func TestDebugPhasesHeader(t *testing.T) {
	s := New(Options{})
	body := `{"scenario":"mv1","budget":25,"queries":10,"frequency":30}`
	req := httptest.NewRequest("POST", "/v1/advise?debug=phases", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != 200 || w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("cold request: status %d, X-Cache %q", w.Code, w.Header().Get("X-Cache"))
	}
	header := w.Header().Get("X-Solve-Phases")
	if header == "" {
		t.Fatal("cold solve with debug=phases has no X-Solve-Phases header")
	}
	phases := parsePhases(t, header)
	total, ok := phases["total"]
	if !ok || total <= 0 {
		t.Fatalf("no total phase in %q", header)
	}
	for _, want := range []string{"lattice", "candidates", "kernel", "bind", "solve", "encode"} {
		if phases[want] <= 0 {
			t.Errorf("phase %q missing from %q", want, header)
		}
	}
	var sum time.Duration
	for name, d := range phases {
		if name == "total" {
			continue
		}
		if d > total {
			t.Errorf("phase %s (%v) exceeds total (%v)", name, d, total)
		}
		sum += d
	}
	// The phases partition the leader's work; unattributed time (request
	// decode, cache bookkeeping) makes sum < total, never the reverse.
	if sum > total+time.Millisecond {
		t.Errorf("phase sum %v exceeds total %v", sum, total)
	}

	// A hit — with or without debug=phases — has no trace to surface.
	req = httptest.NewRequest("POST", "/v1/advise?debug=phases", strings.NewReader(body))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request missed")
	}
	if h := w.Header().Get("X-Solve-Phases"); h != "" {
		t.Errorf("cache hit carries X-Solve-Phases %q", h)
	}

	// Without the query parameter a cold solve stays header-free.
	body2 := `{"scenario":"mv1","budget":25,"queries":10,"frequency":31}`
	req = httptest.NewRequest("POST", "/v1/advise", strings.NewReader(body2))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("distinct request did not miss")
	}
	if h := w.Header().Get("X-Solve-Phases"); h != "" {
		t.Errorf("undebugged solve carries X-Solve-Phases %q", h)
	}
}

// TestDebugPhasesOnCompareAndSweep: the breakdown works on every
// memoized endpoint, not just advise.
func TestDebugPhasesOnCompareAndSweep(t *testing.T) {
	s := New(Options{})
	for path, body := range map[string]string{
		"/v1/compare": `{"budget":25,"limit":"4h","queries":10,"frequency":30}`,
		"/v1/sweep":   sweepBody(`"fleet_sizes":[3,5]`),
	} {
		req := httptest.NewRequest("POST", path+"?debug=phases", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("%s: status %d: %s", path, w.Code, w.Body.String())
		}
		header := w.Header().Get("X-Solve-Phases")
		if header == "" {
			t.Errorf("%s: no X-Solve-Phases on cold solve", path)
			continue
		}
		phases := parsePhases(t, header)
		if phases["total"] <= 0 || phases["solve"] <= 0 {
			t.Errorf("%s: incomplete phases %q", path, header)
		}
	}
}

// TestSlowSolveLog: a cold solve past the threshold writes one
// structured JSON line with the phase breakdown; under a high threshold
// nothing is written.
func TestSlowSolveLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(Options{SlowSolveThreshold: time.Nanosecond, SlowLog: &buf})
	body := `{"scenario":"mv1","budget":25,"queries":10,"frequency":30}`
	req := httptest.NewRequest("POST", "/v1/advise", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one log line, got %q", line)
	}
	var rec struct {
		Msg      string             `json:"msg"`
		Endpoint string             `json:"endpoint"`
		Label    string             `json:"label"`
		Duration float64            `json:"duration_seconds"`
		Phases   map[string]float64 `json:"phases"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow log is not valid JSON: %v\n%s", err, line)
	}
	if rec.Msg != "slow_solve" || rec.Endpoint != "advise" {
		t.Errorf("record = %+v", rec)
	}
	if rec.Duration <= 0 || rec.Phases["total"] <= 0 || rec.Phases["solve"] <= 0 {
		t.Errorf("missing durations in %+v", rec)
	}

	// A hit never logs: the threshold only sees cold solves.
	buf.Reset()
	req = httptest.NewRequest("POST", "/v1/advise", strings.NewReader(body))
	s.ServeHTTP(httptest.NewRecorder(), req)
	if buf.Len() != 0 {
		t.Errorf("cache hit wrote a slow log: %q", buf.String())
	}

	// Threshold far above any solve: silent.
	var quiet bytes.Buffer
	s2 := New(Options{SlowSolveThreshold: time.Hour, SlowLog: &quiet})
	req = httptest.NewRequest("POST", "/v1/advise", strings.NewReader(body))
	s2.ServeHTTP(httptest.NewRecorder(), req)
	if quiet.Len() != 0 {
		t.Errorf("sub-threshold solve logged: %q", quiet.String())
	}
}

// TestVersionEndpoint: GET /v1/version reports the build stamp.
func TestVersionEndpoint(t *testing.T) {
	s := New(Options{})
	req := httptest.NewRequest("GET", "/v1/version", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var v VersionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", v.GoVersion, runtime.Version())
	}
	if v.Module != "vmcloud" {
		t.Errorf("module = %q, want vmcloud", v.Module)
	}
	// The endpoint is counted like any other route.
	samples := scrape(t, s)
	if got, _ := findSample(samples, "mvcloud_stats_requests_total",
		map[string]string{"endpoint": "version"}); got != 1 {
		t.Errorf("stats requests{version} = %g, want 1", got)
	}
}

// TestSolverCountersAdvance: a cold solve moves the process-wide solver
// counters (kernel builds, search evaluations ride along on sweep
// scenarios; the plain knapsack path at least builds one kernel).
func TestSolverCountersAdvance(t *testing.T) {
	before := func() (int64, int64) {
		return obs.KernelBuilds.Value(), obs.SearchEvals.Value()
	}
	b0, e0 := before()
	s := New(Options{})
	body := adviseBody("mv1", `"budget":25,"solver":"search","seed":42`)
	req := httptest.NewRequest("POST", "/v1/advise", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	b1, e1 := before()
	if b1 <= b0 {
		t.Errorf("kernel builds did not advance: %d -> %d", b0, b1)
	}
	if e1 <= e0 {
		t.Errorf("search evals did not advance: %d -> %d", e0, e1)
	}
}
