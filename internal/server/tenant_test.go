package server

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// doAccount is do with an X-Account header.
func doAccount(t *testing.T, s *Server, method, path, account, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
	if account != "" {
		req.Header.Set("X-Account", account)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestTenantCacheIsolation pins the core tenancy property: the account
// is part of the cache key, so byte-identical bodies from different
// accounts occupy disjoint entries — neither tenant can read (or
// poison) the other's cache.
func TestTenantCacheIsolation(t *testing.T) {
	s := testServer()
	body := adviseBody("mv1", `"budget":25`)

	if w := doAccount(t, s, "POST", "/v1/advise", "acme", body); w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("acme cold: X-Cache = %q, want miss", w.Header().Get("X-Cache"))
	}
	// Same body, other tenant: must NOT hit acme's entry.
	if w := doAccount(t, s, "POST", "/v1/advise", "globex", body); w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("globex cold: X-Cache = %q, want miss (cross-tenant hit!)", w.Header().Get("X-Cache"))
	}
	// Nor may the default namespace see either.
	if w := do(t, s, "POST", "/v1/advise", body); w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("default-namespace cold: X-Cache = %q, want miss", w.Header().Get("X-Cache"))
	}
	// Each namespace is warm for itself.
	for _, acct := range []string{"acme", "globex", ""} {
		if w := doAccount(t, s, "POST", "/v1/advise", acct, body); w.Header().Get("X-Cache") != "hit" {
			t.Errorf("account %q repeat: X-Cache = %q, want hit", acct, w.Header().Get("X-Cache"))
		}
	}
	drainSolves(t, s, 5*time.Second)
}

// TestTenantPathAndHeaderEquivalent: the /v1/t/{account}/... path
// segment and the X-Account header name the same namespace — a request
// via one warms the cache for the other.
func TestTenantPathAndHeaderEquivalent(t *testing.T) {
	s := testServer()
	body := adviseBody("mv1", `"budget":25`)

	if w := do(t, s, "POST", "/v1/t/acme/advise", body); w.Code != 200 || w.Header().Get("X-Cache") != "miss" {
		t.Fatalf("path-scoped cold: status %d, X-Cache %q", w.Code, w.Header().Get("X-Cache"))
	}
	if w := doAccount(t, s, "POST", "/v1/advise", "acme", body); w.Header().Get("X-Cache") != "hit" {
		t.Errorf("header spelling missed the path spelling's entry: X-Cache = %q", w.Header().Get("X-Cache"))
	}
	drainSolves(t, s, 5*time.Second)
}

// TestTenantInvalidAccount: malformed account IDs are rejected up
// front with 400, before any body parsing.
func TestTenantInvalidAccount(t *testing.T) {
	s := testServer()
	for _, bad := range []string{
		"has space", "naughty/../path", "semi;colon", "uniçode",
		strings.Repeat("x", 65),
	} {
		w := doAccount(t, s, "POST", "/v1/advise", bad, adviseBody("mv1", `"budget":25`))
		if w.Code != 400 {
			t.Errorf("account %q: status %d, want 400", bad, w.Code)
		}
		if !strings.Contains(w.Body.String(), "invalid account id") {
			t.Errorf("account %q: body %s", bad, w.Body.String())
		}
	}
	// 64 chars is the boundary: valid.
	if w := doAccount(t, s, "POST", "/v1/advise", strings.Repeat("x", 64), adviseBody("mv1", `"budget":25`)); w.Code != 200 {
		t.Errorf("64-char account: status %d, want 200", w.Code)
	}
	drainSolves(t, s, 5*time.Second)
}

// TestTenantStatsAndMetrics: per-account request counts surface on
// /v1/stats (tenants section) and /metrics (account label), and the
// default namespace stays invisible — no tenants key at all until a
// tenant-scoped request arrives.
func TestTenantStatsAndMetrics(t *testing.T) {
	s := testServer()
	body := adviseBody("mv1", `"budget":25`)

	if w := do(t, s, "GET", "/v1/stats", ""); strings.Contains(w.Body.String(), `"tenants"`) {
		t.Error("/v1/stats has a tenants section before any tenant-scoped request")
	}

	doAccount(t, s, "POST", "/v1/advise", "acme", body)
	doAccount(t, s, "POST", "/v1/advise", "acme", body)
	do(t, s, "POST", "/v1/t/globex/advise", body)
	drainSolves(t, s, 5*time.Second)

	w := do(t, s, "GET", "/v1/stats", "")
	for _, want := range []string{`"tenants"`, `"acme":2`, `"globex":1`} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("/v1/stats missing %s: %s", want, w.Body.String())
		}
	}
	samples := scrape(t, s)
	if v, _ := findSample(samples, "mvcloud_tenant_requests_total",
		map[string]string{"account": "acme"}); v != 2 {
		t.Errorf(`tenant_requests_total{account="acme"} = %g, want 2`, v)
	}
	if v, _ := findSample(samples, "mvcloud_tenant_requests_total",
		map[string]string{"account": "globex"}); v != 1 {
		t.Errorf(`tenant_requests_total{account="globex"} = %g, want 1`, v)
	}
}

// TestTenantSeriesBounded: a flood of distinct account IDs cannot
// balloon the stats map or the metric exposition — past
// maxTenantSeries, new accounts land in "other".
func TestTenantSeriesBounded(t *testing.T) {
	s := testServer()
	// Invalid JSON bodies keep this fast: the tenant is counted during
	// request intake, before body parsing rejects the request.
	for i := 0; i < maxTenantSeries+10; i++ {
		doAccount(t, s, "POST", "/v1/advise", fmt.Sprintf("acct-%d", i), "{nope")
	}
	w := do(t, s, "GET", "/v1/stats", "")
	if !strings.Contains(w.Body.String(), `"other":10`) {
		t.Errorf(`/v1/stats overflow bucket: want "other":10 in %s`, w.Body.String())
	}
	s.stats.mu.Lock()
	n := len(s.stats.byTenant)
	s.stats.mu.Unlock()
	if n > maxTenantSeries+1 {
		t.Errorf("byTenant grew to %d series, cap is %d + other", n, maxTenantSeries)
	}
	samples := scrape(t, s)
	if v, _ := findSample(samples, "mvcloud_tenant_requests_total",
		map[string]string{"account": "other"}); v != 10 {
		t.Errorf(`tenant_requests_total{account="other"} = %g, want 10`, v)
	}
}

// TestTenantClusterForwarding: in cluster mode the account crosses the
// transport (header in-process, path over HTTP) so worker-side caches
// are tenant-disjoint too, and the frontend's tenant counters tick.
func TestTenantClusterForwarding(t *testing.T) {
	lc := testCluster(t, LocalClusterOptions{Workers: 2})
	body := adviseBody("mv1", `"budget":25`)

	if w := do(t, lc.Frontend, "POST", "/v1/t/acme/advise", body); w.Code != 200 {
		t.Fatalf("tenant forward: status %d: %s", w.Code, w.Body.String())
	}
	drainCluster(t, lc, 5*time.Second)
	// The serving worker memoized under acme's namespace, not the
	// default one: a default-namespace probe of every worker misses.
	for i, ws := range lc.Workers {
		if n := ws.cache.Len(); n > 0 {
			if w := do(t, ws, "POST", "/v1/advise", body); w.Header().Get("X-Cache") == "hit" {
				t.Errorf("worker %d: default namespace hit a tenant-scoped entry", i)
			}
			if w := doAccount(t, ws, "POST", "/v1/advise", "acme", body); w.Header().Get("X-Cache") != "hit" {
				t.Errorf("worker %d: acme namespace did not reach the forwarded entry", i)
			}
		}
	}
	for _, ws := range lc.Workers {
		drainSolves(t, ws, 5*time.Second)
	}
	w := do(t, lc.Frontend, "GET", "/v1/stats", "")
	if !strings.Contains(w.Body.String(), `"acme":1`) {
		t.Errorf("frontend /v1/stats missing acme count: %s", w.Body.String())
	}
}
