package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vmcloud/internal/obs"
	"vmcloud/internal/shard"
)

// ClusterOptions turns a Server into a stateless cluster frontend: it
// keeps its own canonicalization, memoization, singleflight and stale
// tiers, but routes every cold solve to a worker chosen by rendezvous
// hashing on the canonical cache key — so each worker's LRU, kernel
// sessions and pools stay hot for "its" problems — with health-checked
// failover to the ring successor, optional hedging for heavy solves,
// and shed-or-stale degradation when a key's whole candidate set is
// down. Zero values select defaults.
type ClusterOptions struct {
	// Workers are the worker IDs forming the ring; required, and must
	// be resolvable by Transport.
	Workers []string
	// Transport moves solves to workers; required (MemTransport for
	// in-process fleets, HTTPTransport for real ones).
	Transport Transport
	// Seed keys the rendezvous ring and must agree across every
	// frontend sharing the worker tier.
	Seed int64
	// Health tunes the failure detector (consecutive-failure and
	// latency-EWMA ejection, half-open cooldown).
	Health shard.HealthConfig
	// HealthInterval is the active health-check period (default 1s).
	// Negative disables the background loop — tests drive the detector
	// deterministically through CheckHealthNow.
	HealthInterval time.Duration
	// CheckTimeout bounds one health probe (default 500ms).
	CheckTimeout time.Duration
	// AttemptTimeout bounds one forwarded attempt (default half the
	// request timeout, so a partition burning the first attempt still
	// leaves the successor a full try inside the request's deadline).
	AttemptTimeout time.Duration
	// MaxAttempts bounds the failover budget per request: the primary
	// plus MaxAttempts-1 ring successors (default 2).
	MaxAttempts int
	// HedgeQuantile picks the per-class latency quantile after which a
	// heavy (compare/sweep) solve is hedged to the next worker (default
	// 0.95). Hedging starts only after HedgeMinObservations solves
	// (default 20) and never fires below HedgeFloor (default 10ms).
	HedgeQuantile        float64
	HedgeMinObservations int
	HedgeFloor           time.Duration
	// HedgeAfter, when positive, is a fixed hedge delay overriding the
	// quantile machinery (tests pin exact behaviour with it).
	HedgeAfter time.Duration
}

func (o ClusterOptions) withDefaults(requestTimeout time.Duration) ClusterOptions {
	if o.HealthInterval == 0 {
		o.HealthInterval = time.Second
	}
	if o.CheckTimeout <= 0 {
		o.CheckTimeout = 500 * time.Millisecond
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = requestTimeout / 2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.95
	}
	if o.HedgeMinObservations <= 0 {
		o.HedgeMinObservations = 20
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = 10 * time.Millisecond
	}
	return o
}

// clusterState is the frontend's routing plane: the ring, the failure
// detector, and the fan-out counters.
type clusterState struct {
	opts      ClusterOptions
	ring      *shard.Ring
	health    *shard.Tracker
	transport Transport

	// forwards/failovers/hedges/hedgeWins count routing decisions:
	// attempts sent, attempts that fell over to a successor, hedges
	// launched, and hedges that beat the primary.
	forwards  atomic.Int64
	failovers atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	// allDown counts requests whose every candidate was unusable or
	// failed — the shed-or-stale degradation path.
	allDown atomic.Int64
}

// newClusterState validates and builds the routing plane.
func newClusterState(opts ClusterOptions, requestTimeout time.Duration) (*clusterState, error) {
	if opts.Transport == nil {
		return nil, errors.New("cluster: Transport required")
	}
	ring, err := shard.New(opts.Seed, opts.Workers)
	if err != nil {
		return nil, err
	}
	o := opts.withDefaults(requestTimeout)
	return &clusterState{
		opts:      o,
		ring:      ring,
		health:    shard.NewTracker(o.Health, ring.Workers()),
		transport: o.Transport,
	}, nil
}

// registerClusterMetrics exposes the routing plane on /metrics.
func (cl *clusterState) registerClusterMetrics(reg *obs.Registry) {
	reg.CounterFunc("mvcloud_cluster_forwards_total", "Solve attempts forwarded to workers.",
		func() float64 { return float64(cl.forwards.Load()) })
	reg.CounterFunc("mvcloud_cluster_failovers_total", "Forwarded attempts that failed over to a ring successor.",
		func() float64 { return float64(cl.failovers.Load()) })
	reg.CounterFunc("mvcloud_cluster_hedges_total", "Hedged attempts launched for slow heavy solves.",
		func() float64 { return float64(cl.hedges.Load()) })
	reg.CounterFunc("mvcloud_cluster_hedge_wins_total", "Hedged attempts that returned before the primary.",
		func() float64 { return float64(cl.hedgeWins.Load()) })
	reg.CounterFunc("mvcloud_cluster_all_down_total", "Requests whose every ring candidate was down (shed or served stale).",
		func() float64 { return float64(cl.allDown.Load()) })
	reg.GaugeFunc("mvcloud_cluster_workers", "Workers in the ring.",
		func() float64 { return float64(cl.ring.Len()) })
	reg.GaugeFunc("mvcloud_cluster_workers_ejected", "Workers currently ejected by the failure detector.",
		func() float64 {
			n := 0
			for _, w := range cl.health.Snapshot() {
				if w.Ejected {
					n++
				}
			}
			return float64(n)
		})
}

// clusterStatsJSON is the /v1/stats cluster section.
type clusterStatsJSON struct {
	Workers   []shard.WorkerHealth `json:"workers"`
	Forwards  int64                `json:"forwards"`
	Failovers int64                `json:"failovers"`
	Hedges    int64                `json:"hedges"`
	HedgeWins int64                `json:"hedge_wins"`
	AllDown   int64                `json:"all_down"`
}

func (cl *clusterState) statsJSON() *clusterStatsJSON {
	return &clusterStatsJSON{
		Workers:   cl.health.Snapshot(),
		Forwards:  cl.forwards.Load(),
		Failovers: cl.failovers.Load(),
		Hedges:    cl.hedges.Load(),
		HedgeWins: cl.hedgeWins.Load(),
		AllDown:   cl.allDown.Load(),
	}
}

// healthLoop drives active health checks until the server closes.
func (s *Server) healthLoop() {
	t := time.NewTicker(s.cluster.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.CheckHealthNow()
		}
	}
}

// CheckHealthNow probes every worker once, concurrently, and feeds the
// failure detector. The background loop calls it each interval; tests
// call it directly for deterministic detector transitions. Ejected
// workers are probed only when their cooldown grants the half-open
// slot, so a dead worker costs one probe per cooldown, not one per
// interval.
func (s *Server) CheckHealthNow() {
	cl := s.cluster
	if cl == nil {
		return
	}
	var wg sync.WaitGroup
	for _, w := range cl.ring.Workers() {
		if cl.health.Ejected(w) && !cl.health.Usable(w, time.Now()) {
			continue
		}
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), cl.opts.CheckTimeout)
			defer cancel()
			start := time.Now()
			if err := cl.transport.Check(ctx, w); err != nil {
				cl.health.ReportFailure(w, time.Now())
			} else {
				cl.health.ReportSuccess(w, time.Since(start), time.Now())
			}
		}(w)
	}
	wg.Wait()
}

// hedgeEligible marks the heavy endpoints: a straggling compare/sweep
// is expensive enough that duplicating it on the successor beats
// waiting, while advise solves are too cheap to be worth hedging.
func hedgeEligible(endpoint string) bool {
	return endpoint == "compare" || endpoint == "sweep"
}

// hedgeDelay is how long a heavy forward waits before hedging: the
// configured fixed delay, or the endpoint's observed solve-latency
// quantile once enough solves have been seen. Zero means "don't
// hedge".
func (s *Server) hedgeDelay(em *endpointMetrics) time.Duration {
	cl := s.cluster
	if cl.opts.HedgeAfter > 0 {
		return cl.opts.HedgeAfter
	}
	h := em.latency[outcomeSolve]
	if h.Count() < int64(cl.opts.HedgeMinObservations) {
		return 0
	}
	d := h.Quantile(cl.opts.HedgeQuantile)
	if d < cl.opts.HedgeFloor {
		d = cl.opts.HedgeFloor
	}
	return d
}

// runForward is the cluster-mode counterpart of runSolve: the solve
// leader forwards the canonical request body to the ring-selected
// worker (with failover and hedging) instead of solving locally, then
// fills the frontend cache and publishes the outcome to the flight
// group. ctx is the solve's deadline context, cancelled by the flight
// group when the last waiter leaves.
func (s *Server) runForward(ctx context.Context, spec memoSpec, label, account, key, cacheKey string, em *endpointMetrics, call *flightCall) {
	s.inflightSolves.Add(1)
	defer s.inflightSolves.Add(-1)
	s.stats.solve()
	out := s.forward(ctx, spec.endpoint, account, key, cacheKey, em)
	// The frontend memoizes exactly what a worker would: successful,
	// non-degraded bodies. Degraded and stale bodies are
	// timing-dependent; sheds and errors have nothing to cache.
	if out.err == nil && !out.degraded && !out.shed && len(out.body) > 0 {
		s.cache.Put(cacheKey, out.body)
	}
	s.flight.finish(cacheKey, call, out)
}

// forward walks the key's ring preference order: the owner first, then
// successors, skipping workers the failure detector has ejected, up to
// the MaxAttempts failover budget. Heavy solves may hedge to the next
// candidate after the hedge delay. When every candidate is down or
// failed, the request degrades: the frontend's stale tier if it holds
// the key, otherwise a shed with Retry-After set to the detector
// cooldown — never a hang, never a raw 5xx.
func (s *Server) forward(ctx context.Context, endpoint, account, body, cacheKey string, em *endpointMetrics) outcome {
	cl := s.cluster
	cands := cl.ring.Prefer(cacheKey, make([]string, 0, cl.ring.Len()))
	bodyBytes := []byte(body)

	attempts := 0
	hedge := time.Duration(0)
	if hedgeEligible(endpoint) {
		hedge = s.hedgeDelay(em)
	}
	for i := 0; i < len(cands) && attempts < cl.opts.MaxAttempts; i++ {
		w := cands[i]
		if !cl.health.Usable(w, time.Now()) {
			continue
		}
		attempts++
		var out outcome
		var failover bool
		if hedge > 0 && attempts == 1 {
			out, failover = s.forwardHedged(ctx, w, cands[i+1:], endpoint, account, bodyBytes, cacheKey, hedge)
		} else {
			out, failover = s.forwardOnce(ctx, w, endpoint, account, bodyBytes, cacheKey)
		}
		if !failover {
			return out
		}
		cl.failovers.Add(1)
	}

	// Every candidate down, ejected, or failed: degrade rather than
	// error. The stale tier is consulted for every endpoint here —
	// unlike admission sheds, where only advise qualifies — because an
	// outdated answer beats no answer when the fleet is gone.
	cl.allDown.Add(1)
	out := outcome{shed: true, retryAfter: cl.health.Cooldown(), shedMsg: "no healthy worker for this request, retry later"}
	if b, ok := s.stale.Get(cacheKey); ok {
		out.body, out.stale = b, true
	}
	return out
}

// forwardOnce sends one attempt to one worker under the per-attempt
// timeout and classifies the result. failover=true means the worker is
// unhealthy (transport failure or 5xx) and the caller should try the
// next candidate; otherwise the outcome is final (success, shed
// passthrough, or client error).
func (s *Server) forwardOnce(ctx context.Context, worker, endpoint, account string, body []byte, cacheKey string) (outcome, bool) {
	cl := s.cluster
	cl.forwards.Add(1)
	actx, cancel := context.WithTimeout(ctx, cl.opts.AttemptTimeout)
	defer cancel()
	start := time.Now()
	rep, err := cl.transport.Forward(actx, worker, "/v1/"+endpoint, account, body)
	lat := time.Since(start)
	if err != nil || rep.Status >= 500 {
		// Transport failure or worker-side 5xx: count against the
		// detector and fail over. (A contained worker panic rides this
		// path too — the successor re-solves, and a deterministic panic
		// is bounded by the failover budget.)
		cl.health.ReportFailure(worker, time.Now())
		return outcome{}, true
	}
	cl.health.ReportSuccess(worker, lat, time.Now())
	switch {
	case rep.Status == http.StatusOK:
		return outcome{body: rep.Body, degraded: rep.Degraded, worker: worker}, false
	case rep.Status == http.StatusTooManyRequests:
		// The owner is alive but refusing work: pass the shed through
		// with the worker's own backoff hint rather than failing over —
		// a loaded fleet does not need the successor loaded too.
		out := outcome{shed: true, retryAfter: rep.RetryAfter, worker: worker}
		if staleEligible(endpoint) {
			if b, ok := s.stale.Get(cacheKey); ok {
				out.body, out.stale = b, true
			}
		}
		return out, false
	default:
		// 4xx: the request itself is bad; retrying elsewhere cannot fix
		// it.
		return outcome{err: errors.New(workerErrorMessage(rep.Body)), worker: worker}, false
	}
}

// forwardHedged races the primary attempt against a delayed hedge to
// the next usable candidate: whichever returns a non-failover result
// first wins, and the loser's context is cancelled on return. Both
// attempts failing is a failover for the caller's loop.
func (s *Server) forwardHedged(ctx context.Context, primary string, successors []string, endpoint, account string, body []byte, cacheKey string, delay time.Duration) (outcome, bool) {
	cl := s.cluster
	type attemptResult struct {
		out      outcome
		failover bool
		hedged   bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptResult, 2)
	launch := func(worker string, hedged bool) {
		go func() {
			out, failover := s.forwardOnce(hctx, worker, endpoint, account, body, cacheKey)
			results <- attemptResult{out, failover, hedged}
		}()
	}
	launch(primary, false)

	timer := time.NewTimer(delay)
	defer timer.Stop()
	pending := 1
	hedgeLaunched := false
	for {
		select {
		case r := <-results:
			pending--
			if !r.failover {
				if r.hedged {
					cl.hedgeWins.Add(1)
				}
				return r.out, false
			}
			if pending == 0 {
				return outcome{}, true
			}
		case <-timer.C:
			if hedgeLaunched {
				continue
			}
			hedgeLaunched = true
			for _, w := range successors {
				if cl.health.Usable(w, time.Now()) {
					cl.hedges.Add(1)
					pending++
					launch(w, true)
					break
				}
			}
		}
	}
}

// Close releases the server's background resources (today: the cluster
// health-check loop). Safe to call on a non-cluster server and safe to
// call twice.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
}
