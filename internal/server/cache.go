package server

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded, mutex-guarded LRU map from canonical
// request keys to marshaled response bodies. It is bounded both in
// entry count and in resident bytes (keys + values), so operators can
// cap the daemon's cache memory. Get returns a defensive copy, so the
// interior bytes can never be mutated through an escaped slice; Put
// takes ownership of the passed value (callers must not modify it
// afterwards).
type lruCache struct {
	mu       sync.Mutex
	cap      int
	capBytes int64
	bytes    int64
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	// evictions counts entries removed by the capacity bounds (not
	// replacements), exported as mvcloud_cache_evictions_total.
	evictions int64
	// onEvict, when non-nil, receives each capacity-evicted entry (the
	// graceful-degradation hook: the server feeds evicted responses into
	// its stale cache). Called with c.mu held, so the callback must not
	// touch this cache; ownership of val transfers to the callback.
	onEvict func(key string, val []byte)
}

type lruEntry struct {
	key string
	val []byte
}

func (e *lruEntry) size() int64 { return int64(len(e.key) + len(e.val)) }

// newLRUCache builds a cache holding at most capacity entries and
// maxBytes resident bytes; capacity < 1 disables caching (every Get
// misses, every Put is dropped), maxBytes < 1 means unbounded bytes.
func newLRUCache(capacity int, maxBytes int64) *lruCache {
	return &lruCache{
		cap:      capacity,
		capBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns a copy of the cached value and marks the key most recently
// used. Copying keeps the cached bytes unaliased: a caller scribbling on
// the returned slice cannot corrupt what later readers are served.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return append([]byte(nil), el.Value.(*lruEntry).val...), true
}

// view returns the cached value without copying and marks the key most
// recently used. The key is taken as bytes so the compiler's
// map[string] lookup optimization applies — a hot-path probe allocates
// nothing. The returned slice aliases cache-owned memory: values are
// only ever replaced wholesale (never scribbled in place), so the view
// stays byte-stable for as long as the caller holds it, but the caller
// must treat it as read-only and must not retain it past the request.
// Callers that hand the bytes to arbitrary code want Get's defensive
// copy instead.
//
//mvlint:hotpath
func (c *lruCache) view(key []byte) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.entries[string(key)]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.order.MoveToFront(el)
	val := el.Value.(*lruEntry).val
	c.mu.Unlock()
	return val, true
}

// Put inserts or refreshes a value, evicting least recently used
// entries while either bound is exceeded. An entry larger than the
// byte bound is not cached at all.
func (c *lruCache) Put(key string, val []byte) {
	if c.cap < 1 {
		return
	}
	entry := &lruEntry{key: key, val: val}
	if c.capBytes > 0 && entry.size() > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		old := el.Value.(*lruEntry)
		c.bytes += entry.size() - old.size()
		old.val = val
	} else {
		c.entries[key] = c.order.PushFront(entry)
		c.bytes += entry.size()
	}
	for c.order.Len() > c.cap || (c.capBytes > 0 && c.bytes > c.capBytes) {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		e := oldest.Value.(*lruEntry)
		delete(c.entries, e.key)
		c.bytes -= e.size()
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(e.key, e.val)
		}
	}
}

// NamespaceStat is the per-namespace slice of a cache's footprint.
type NamespaceStat struct {
	Entries int
	Bytes   int64
}

// NamespaceStats breaks the cache's footprint down by key namespace —
// the prefix up to the first NUL byte, which under the server's key
// scheme is the endpoint name. Keys without a NUL fall under "". The
// walk is O(entries), fine for a stats endpoint over a bounded cache.
func (c *lruCache) NamespaceStats() map[string]NamespaceStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]NamespaceStat)
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		ns := ""
		for i := 0; i < len(e.key); i++ {
			if e.key[i] == 0 {
				ns = e.key[:i]
				break
			}
		}
		st := out[ns]
		st.Entries++
		st.Bytes += e.size()
		out[ns] = st
	}
	return out
}

// Len returns the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the resident key+value byte count.
func (c *lruCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Evictions returns the lifetime capacity-eviction count.
func (c *lruCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Cap returns the configured entry capacity.
func (c *lruCache) Cap() int { return c.cap }
