package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"vmcloud/internal/compare"
	"vmcloud/internal/pricing"
)

func sweepBody(extra string) string {
	b := fmt.Sprintf(`{"budget":25,"fact_rows":%d,"queries":5`, testRows)
	if extra != "" {
		b += "," + extra
	}
	return b + "}"
}

func TestSweepEndpoint(t *testing.T) {
	s := testServer()
	w := do(t, s, "POST", "/v1/sweep", sweepBody(`"fleet_sizes":[3,5]`))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("X-Cache") != "miss" {
		t.Errorf("first sweep X-Cache = %q", w.Header().Get("X-Cache"))
	}
	var resp compare.SweepJSON
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scenario != "mv1" {
		t.Errorf("scenario = %q, want mv1 (derived from budget)", resp.Scenario)
	}
	if got, want := len(resp.Cells), 2*len(pricing.ProviderNames()); got != want {
		t.Errorf("cells = %d, want %d (catalog × 2 fleets)", got, want)
	}
	if resp.Best.Provider == "" {
		t.Error("no best configuration")
	}
	if resp.Report == "" {
		t.Error("no rendered report")
	}
	// Byte-identical repeat is a cache hit with an identical body.
	w2 := do(t, s, "POST", "/v1/sweep", sweepBody(`"fleet_sizes":[3,5]`))
	if w2.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeat X-Cache = %q", w2.Header().Get("X-Cache"))
	}
	if w2.Body.String() != w.Body.String() {
		t.Error("cache hit body differs from the miss body")
	}
	// Two spellings of the same sweep share one canonical cache entry.
	w3 := do(t, s, "POST", "/v1/sweep", sweepBody(`"fleet_sizes":[5,3,3],"scenario":"mv1"`))
	if w3.Header().Get("X-Cache") != "hit" {
		t.Errorf("respelled sweep X-Cache = %q, want hit", w3.Header().Get("X-Cache"))
	}
}

// A sweep and a compare of the same body must not alias in the cache —
// the endpoint namespaces the shared LRU.
func TestSweepCompareCacheNamespacing(t *testing.T) {
	s := testServer()
	body := sweepBody("")
	ws := do(t, s, "POST", "/v1/sweep", body)
	if ws.Code != 200 {
		t.Fatalf("sweep: %d: %s", ws.Code, ws.Body.String())
	}
	wc := do(t, s, "POST", "/v1/compare", body)
	if wc.Code != 200 {
		t.Fatalf("compare: %d: %s", wc.Code, wc.Body.String())
	}
	if wc.Header().Get("X-Cache") != "miss" {
		t.Errorf("compare after sweep of same body X-Cache = %q, want miss", wc.Header().Get("X-Cache"))
	}
	if ws.Body.String() == wc.Body.String() {
		t.Error("sweep and compare bodies alias")
	}
}

func TestSweepValidationAndLimits(t *testing.T) {
	s := testServer()
	cases := []struct {
		name, body, wantErr string
	}{
		{"bad scenario", sweepBody(`"scenario":"pareto"`), "unknown sweep scenario"},
		{"mv2 without limit", `{"scenario":"mv2"}`, "limit required"},
		{"singular provider", sweepBody(`"provider":"aws-2012"`), "instead of the advise"},
		{"grid too large", sweepBody(`"fleet_sizes":[1,2,3,4,5,6,7,8,9,10,11,12,13,14]`), "exceeds the server limit"},
		{"unknown provider", sweepBody(`"providers":["nonesuch"]`), "unknown provider"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, s, "POST", "/v1/sweep", c.body)
			if w.Code != 400 {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), c.wantErr) {
				t.Errorf("error %q does not mention %q", w.Body.String(), c.wantErr)
			}
		})
	}
}

// GET /v1/stats reports the sweep endpoint's cache occupancy under its
// own namespace once a sweep has been served.
func TestSweepStatsNamespace(t *testing.T) {
	s := testServer()
	if w := do(t, s, "POST", "/v1/sweep", sweepBody("")); w.Code != 200 {
		t.Fatalf("sweep: %d: %s", w.Code, w.Body.String())
	}
	w := do(t, s, "GET", "/v1/stats", "")
	if w.Code != 200 {
		t.Fatalf("stats: %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), `"sweep"`) {
		t.Errorf("stats do not break out the sweep namespace: %s", w.Body.String())
	}
}
