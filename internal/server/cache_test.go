package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := newLRUCache(2, 0)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Errorf("a = %q, %v", v, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2, 0)
	c.Put("a", []byte("1"))
	c.Put("a", []byte("one"))
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); string(v) != "one" {
		t.Errorf("a = %q", v)
	}
}

func TestLRUDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := newLRUCache(capacity, 0)
		c.Put("a", []byte("1"))
		if _, ok := c.Get("a"); ok {
			t.Errorf("cap %d: cache stored an entry", capacity)
		}
		if c.Len() != 0 {
			t.Errorf("cap %d: len = %d", capacity, c.Len())
		}
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(16, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("got %q for %q", v, key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("len = %d exceeds cap", c.Len())
	}
}

// Get must return an unaliased copy: a caller mutating the returned
// slice cannot corrupt what subsequent readers are served.
func TestLRUGetReturnsCopy(t *testing.T) {
	c := newLRUCache(4, 0)
	c.Put("k", []byte("pristine"))
	v1, ok := c.Get("k")
	if !ok {
		t.Fatal("miss")
	}
	for i := range v1 {
		v1[i] = 'X'
	}
	v2, ok := c.Get("k")
	if !ok {
		t.Fatal("miss after mutation")
	}
	if string(v2) != "pristine" {
		t.Errorf("cached value corrupted through returned slice: %q", v2)
	}
}

// Re-Put of an existing key with a different-sized value must keep the
// byte account exact in both directions, and eviction must honour the
// refreshed sizes.
func TestLRURefreshByteAccounting(t *testing.T) {
	c := newLRUCache(10, 100)
	c.Put("a", []byte("12345")) // 6 bytes
	c.Put("b", []byte("xy"))    // 3 bytes
	if got := c.Bytes(); got != 9 {
		t.Fatalf("initial bytes = %d, want 9", got)
	}
	c.Put("a", []byte("1234567890")) // grow: 6 → 11
	if got := c.Bytes(); got != 14 {
		t.Errorf("after grow bytes = %d, want 14", got)
	}
	c.Put("a", []byte("1")) // shrink: 11 → 2
	if got := c.Bytes(); got != 5 {
		t.Errorf("after shrink bytes = %d, want 5", got)
	}
	if v, _ := c.Get("a"); string(v) != "1" {
		t.Errorf("a = %q after refresh", v)
	}
	// A refresh that pushes the account over the byte bound evicts LRU
	// entries using the refreshed sizes.
	c.Put("b", make([]byte, 98)) // "b"(1) + 98 = 99, + "a"(2) = 101 > 100
	if _, ok := c.Get("a"); ok {
		t.Error("a survived an over-bound refresh of b")
	}
	if got := c.Bytes(); got != 99 {
		t.Errorf("after refresh eviction bytes = %d, want 99", got)
	}
}

func TestLRUByteBound(t *testing.T) {
	c := newLRUCache(100, 10)
	c.Put("a", []byte("123"))  // 4 bytes
	c.Put("b", []byte("4567")) // 5 bytes
	if c.Bytes() != 9 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d", c.Bytes(), c.Len())
	}
	c.Put("c", []byte("89")) // 3 bytes → over 10, evicts "a"
	if _, ok := c.Get("a"); ok {
		t.Error("a survived byte eviction")
	}
	if c.Bytes() != 8 || c.Len() != 2 {
		t.Errorf("after eviction bytes=%d len=%d", c.Bytes(), c.Len())
	}
	// An entry alone exceeding the bound is not cached.
	c.Put("huge", []byte("0123456789ab"))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized entry cached")
	}
	// Refreshing an entry adjusts the byte account.
	c.Put("b", []byte("4"))
	if c.Bytes() != 5 {
		t.Errorf("after refresh bytes=%d", c.Bytes())
	}
}
