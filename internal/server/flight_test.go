package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestFlightGroupCoalesces pins the group's contract directly: joiners
// during an in-flight call share one outcome, and a finished key is
// retired so the next join leads a fresh call.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	c1, leader := g.join("k")
	if !leader {
		t.Fatal("first join is not the leader")
	}
	c2, leader2 := g.join("k")
	if leader2 {
		t.Fatal("second join elected a second leader")
	}
	if c1 != c2 {
		t.Fatal("joiners got distinct calls")
	}
	other, leaderOther := g.join("other")
	if !leaderOther || other == c1 {
		t.Fatal("distinct keys must not share a call")
	}

	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-c1.done
			results[i] = c1.out.body
		}(i)
	}
	g.finish("k", c1, outcome{body: []byte("solved")})
	wg.Wait()
	for i, r := range results {
		if string(r) != "solved" {
			t.Errorf("waiter %d read %q", i, r)
		}
	}

	// The key is retired: the next join must lead again.
	if _, leader := g.join("k"); !leader {
		t.Error("finished key still has an in-flight call")
	}
}

// TestSingleflightStampede is the regression test for stampede
// suppression: K identical cold /v1/advise requests fired concurrently
// must execute exactly one underlying solve, and every response must be
// byte-identical to the pinned golden. Before singleflight, each of the
// K requests ran its own lattice build + knapsack; the stats solve
// counter would read K.
func TestSingleflightStampede(t *testing.T) {
	const K = 32
	s := testServer()
	body := adviseBody("mv1", `"budget":25`) // matches testdata/mv1_knapsack.golden

	var (
		start   = make(chan struct{})
		wg      sync.WaitGroup
		mu      sync.Mutex
		bodies  = make(map[string]int) // response body → count
		xcaches = make(map[string]int) // X-Cache value → count
	)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			w := do(t, s, "POST", "/v1/advise", body)
			mu.Lock()
			defer mu.Unlock()
			if w.Code != 200 {
				bodies[fmt.Sprintf("status %d: %s", w.Code, w.Body.String())]++
				return
			}
			bodies[w.Body.String()]++
			xcaches[w.Header().Get("X-Cache")]++
		}()
	}
	close(start)
	wg.Wait()

	if got := s.stats.solveCount(); got != 1 {
		t.Errorf("stampede of %d identical requests executed %d solves, want exactly 1", K, got)
	}
	if len(bodies) != 1 {
		t.Fatalf("stampede produced %d distinct responses, want 1: %v", len(bodies), keysOf(bodies))
	}
	for resp, n := range bodies {
		if n != K {
			t.Errorf("response seen %d times, want %d", n, K)
		}
		golden, err := os.ReadFile(filepath.Join("testdata", "mv1_knapsack.golden"))
		if err != nil {
			t.Fatalf("missing golden: %v", err)
		}
		if resp != string(golden) {
			t.Errorf("stampede response drifted from golden:\ngot:  %s\nwant: %s", resp, golden)
		}
	}
	// Depending on scheduling each request hit, coalesced or led the one
	// miss — but a second solve is impossible, so "miss" appears at most
	// once.
	if xcaches["miss"] > 1 {
		t.Errorf("X-Cache reported %d misses, want at most 1 (got %v)", xcaches["miss"], xcaches)
	}
	if total := xcaches["miss"] + xcaches["hit"] + xcaches["coalesced"]; total != K {
		t.Errorf("X-Cache outcomes sum to %d, want %d: %v", total, K, xcaches)
	}

	// /v1/stats reports the same story.
	var snap statsJSON
	if err := json.Unmarshal(do(t, s, "GET", "/v1/stats", "").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Advise.Solves != 1 {
		t.Errorf("stats solves = %d, want 1", snap.Advise.Solves)
	}
	if got := snap.Advise.CacheHits + snap.Advise.CacheMisses + snap.Advise.Coalesced; got != K {
		t.Errorf("stats outcomes sum to %d, want %d (%+v)", got, K, snap.Advise)
	}
}

// TestSingleflightErrorNotCached checks that a failed solve is not
// published to the cache and does not wedge the key: the next request
// retries the solve.
func TestSingleflightErrorNotCached(t *testing.T) {
	s := testServer()
	bad := adviseBody("mv1", `"budget":25,"candidate_budget":99`) // rejected by normalize
	if w := do(t, s, "POST", "/v1/advise", bad); w.Code != 400 {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if w := do(t, s, "POST", "/v1/advise", bad); w.Code != 400 {
		t.Fatalf("repeat status %d, want 400", w.Code)
	}
	if n := s.cache.Len(); n != 0 {
		t.Errorf("failed request cached %d entries", n)
	}
}

// TestFlightAbandonedLeaderCancels pins the new waiter-refcount
// contract: when every waiter leaves an in-flight call, the solve's
// context is cancelled and the key retired immediately — the next
// arrival leads a fresh solve instead of wedging on the abandoned one.
func TestFlightAbandonedLeaderCancels(t *testing.T) {
	g := newFlightGroup()
	c, leader := g.join("k")
	if !leader {
		t.Fatal("first join is not the leader")
	}
	cancelled := false
	g.setCancel(c, func() { cancelled = true })
	if cancelled {
		t.Fatal("cancel fired while a waiter was still present")
	}

	g.leave("k", c)
	if !cancelled {
		t.Error("last waiter left but the solve was not cancelled")
	}
	if n := g.len(); n != 0 {
		t.Errorf("abandoned key still registered (%d in flight)", n)
	}

	// The key is free: a fresh leader takes over while the old solve may
	// still be unwinding.
	c2, leader2 := g.join("k")
	if !leader2 {
		t.Fatal("abandoned key did not elect a fresh leader")
	}
	if c2 == c {
		t.Fatal("fresh join reused the abandoned call")
	}
	// The stale call's finish must not clobber the fresh one.
	g.finish("k", c, outcome{body: []byte("stale")})
	if got := g.len(); got != 1 {
		t.Errorf("stale finish retired the fresh call (%d in flight, want 1)", got)
	}
	g.finish("k", c2, outcome{body: []byte("fresh")})
	if got := g.len(); got != 0 {
		t.Errorf("%d calls in flight after finish, want 0", got)
	}
}

// TestFlightFollowerKeepsSolveAlive checks the other half of the
// refcount contract: the leader's request abandoning the call does NOT
// cancel the solve while a follower still waits, and the follower gets
// the result.
func TestFlightFollowerKeepsSolveAlive(t *testing.T) {
	g := newFlightGroup()
	c, _ := g.join("k")
	if _, leader := g.join("k"); leader {
		t.Fatal("second join elected a second leader")
	}
	cancelled := false
	g.setCancel(c, func() { cancelled = true })

	g.leave("k", c) // the leader's request gives up…
	if cancelled {
		t.Fatal("solve cancelled while a follower still waits")
	}
	g.finish("k", c, outcome{body: []byte("solved")})
	<-c.done
	if string(c.out.body) != "solved" {
		t.Errorf("follower read %q, want \"solved\"", c.out.body)
	}
	// finish releases the solve context once the outcome is published.
	if !cancelled {
		t.Error("finish did not release the solve context")
	}
}

// TestFlightSetCancelAfterAbandon covers the startup race: every waiter
// leaves before the leader goroutine even attaches its cancel func.
// setCancel must fire it on the spot.
func TestFlightSetCancelAfterAbandon(t *testing.T) {
	g := newFlightGroup()
	c, _ := g.join("k")
	g.leave("k", c)
	cancelled := false
	g.setCancel(c, func() { cancelled = true })
	if !cancelled {
		t.Error("setCancel on a fully-abandoned call did not cancel the solve")
	}
}

func keysOf(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		if len(k) > 120 {
			k = k[:120] + "..."
		}
		out = append(out, k)
	}
	return out
}

// TestFlightLeaderDeathOnKilledWorker is the cluster-mode singleflight
// death test: a worker killed mid-solve must (a) fail the in-flight
// forward immediately, (b) let the frontend re-elect onto the ring
// successor within the same request, (c) retire the flight key so
// later requests are not stuck joining a dead call, and (d) leave zero
// solve goroutines anywhere in the topology — including on the killed
// worker, whose request context dies with it.
func TestFlightLeaderDeathOnKilledWorker(t *testing.T) {
	opts := LocalClusterOptions{
		Workers: 2,
		// Slow, deterministic worker solves give the test a window to
		// kill the serving worker mid-solve.
		Worker: Options{
			AdviseWorkers: 32,
			Chaos:         &ChaosConfig{Seed: 1, LatencyProb: 1, Latency: 400 * time.Millisecond},
		},
		Cluster: ClusterOptions{Seed: 21, AttemptTimeout: 10 * time.Second},
	}
	body := adviseBody("mv1", `"budget":25`)
	owner := ownerOf(t, opts, "/v1/advise", body)

	lc := testCluster(t, opts)
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/advise", bytes.NewReader([]byte(body)))
		lc.Frontend.ServeHTTP(w, req)
		done <- w
	}()

	// Wait until the solve is actually in flight on the owner, then
	// kill it mid-solve.
	deadline := time.Now().Add(5 * time.Second)
	for lc.InflightSolves() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if lc.InflightSolves() == 0 {
		t.Fatal("solve never started")
	}
	lc.KillWorker(owner)

	w := <-done
	if w.Code != 200 {
		t.Fatalf("leader death: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Worker"); got == owner || got == "" {
		t.Errorf("X-Worker = %q, want the successor of killed %q", got, owner)
	}
	if got := lc.Frontend.cluster.failovers.Load(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}

	// Every solve goroutine — frontend leader, dead worker's cancelled
	// solve, successor's solve — must drain.
	drainCluster(t, lc, 10*time.Second)
	if n := lc.Frontend.flight.len(); n != 0 {
		t.Errorf("frontend flight group holds %d keys after the request finished", n)
	}
	for i, ws := range lc.Workers {
		if n := ws.flight.len(); n != 0 {
			t.Errorf("worker %d flight group holds %d keys", i, n)
		}
	}

	// The key is retired and the successor's answer was memoized: the
	// repeat is a local hit, no forward, no join on a dead call.
	w2 := do(t, lc.Frontend, "POST", "/v1/advise", body)
	if w2.Code != 200 || w2.Header().Get("X-Cache") != "hit" {
		t.Errorf("post-death repeat: status %d, X-Cache %q, want 200/hit", w2.Code, w2.Header().Get("X-Cache"))
	}
}
