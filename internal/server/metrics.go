package server

import (
	"bytes"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"vmcloud/internal/obs"
)

// outcomeKind classifies how a memoized request was served, the
// `outcome` label of the HTTP metrics: a response-cache hit, a follower
// coalesced onto another request's in-flight solve, a solve run by this
// request (the leader), an error (bad request, timeout, cancel, failed
// solve), or one of the overload outcomes — shed (429 under admission
// control), degraded (solve stopped at its deadline with the best
// incumbent), stale (shed request served an evicted cache entry), panic
// (solve panicked and was contained to a 500).
type outcomeKind uint8

const (
	outcomeHit outcomeKind = iota
	outcomeCoalesced
	outcomeSolve
	outcomeError
	outcomeShed
	outcomeDegraded
	outcomeStale
	outcomePanic
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"hit", "coalesced", "solve", "error", "shed", "degraded", "stale", "panic"}

// endpointMetrics is one POST endpoint's outcome-split instruments,
// fully resolved at registration so the request path never touches a
// label or a map.
type endpointMetrics struct {
	requests [numOutcomes]*obs.Counter
	latency  [numOutcomes]*obs.Histogram
}

// observe records one finished request: two atomic ops, no allocation —
// this is what the cache-hit path pays for its telemetry.
//
//mvlint:hotpath
func (em *endpointMetrics) observe(o outcomeKind, d time.Duration) {
	em.requests[o].Inc()
	em.latency[o].Observe(d)
}

// serverMetrics is the server's registered instrument set.
type serverMetrics struct {
	advise  *endpointMetrics
	compare *endpointMetrics
	sweep   *endpointMetrics
	// inflight tracks requests currently inside a handler.
	inflight *obs.Gauge
	// phases aggregates per-phase cold-solve durations across requests;
	// indexed by obs.Phase.
	phases [obs.NumPhases]*obs.Histogram
}

// memoizedEndpoints are the POST endpoints with outcome-split series.
var memoizedEndpoints = [...]string{"advise", "compare", "sweep"}

// plainEndpoints are the GET endpoints; they get request-count series
// only (their latency is dominated by JSON encoding, not worth a
// histogram each).
var plainEndpoints = [...]string{"tariffs", "stats", "healthz", "metrics", "version"}

func newEndpointMetrics(reg *obs.Registry, endpoint string) *endpointMetrics {
	em := &endpointMetrics{}
	for o := outcomeKind(0); o < numOutcomes; o++ {
		em.requests[o] = reg.Counter("mvcloud_http_requests_total",
			"Finished HTTP requests by endpoint and serving outcome.",
			"endpoint", endpoint, "outcome", outcomeNames[o])
		em.latency[o] = reg.Histogram("mvcloud_http_request_duration_seconds",
			"HTTP request latency by endpoint and serving outcome.",
			obs.DefLatencyBuckets,
			"endpoint", endpoint, "outcome", outcomeNames[o])
	}
	return em
}

// newServerMetrics registers the server's full series set on reg. The
// callback series (cache occupancy, the /v1/stats counters re-exported
// as families, process uptime) read their sources at exposition time,
// so they cost the hot path nothing at all.
func (s *Server) newServerMetrics(reg *obs.Registry) serverMetrics {
	m := serverMetrics{
		advise:   newEndpointMetrics(reg, "advise"),
		compare:  newEndpointMetrics(reg, "compare"),
		sweep:    newEndpointMetrics(reg, "sweep"),
		inflight: reg.Gauge("mvcloud_http_inflight_requests", "Requests currently inside a handler."),
	}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		m.phases[p] = reg.Histogram("mvcloud_solve_phase_duration_seconds",
			"Cold-solve time by pipeline phase (lattice, candidates, kernel, bind, solve, encode, total).",
			obs.DefLatencyBuckets, "phase", p.String())
	}

	for _, c := range []struct {
		name  string
		cache *lruCache
	}{{"responses", s.cache}, {"rawkeys", s.rawKeys}} {
		cache := c.cache
		reg.GaugeFunc("mvcloud_cache_entries", "Resident entries per memoization cache.",
			func() float64 { return float64(cache.Len()) }, "cache", c.name)
		reg.GaugeFunc("mvcloud_cache_bytes", "Resident key+value bytes per memoization cache.",
			func() float64 { return float64(cache.Bytes()) }, "cache", c.name)
		reg.CounterFunc("mvcloud_cache_evictions_total", "LRU evictions per memoization cache.",
			func() float64 { return float64(cache.Evictions()) }, "cache", c.name)
	}

	// The /v1/stats counters, re-exported as series so dashboards need
	// only one source of truth. Per-endpoint request counts cover every
	// route; the memoization split covers the POST endpoints.
	st := s.stats
	for _, e := range memoizedEndpoints {
		e := e
		reg.CounterFunc("mvcloud_stats_requests_total", "Requests received by endpoint (/v1/stats by_endpoint).",
			func() float64 { return float64(st.endpointRequests(e)) }, "endpoint", e)
		reg.CounterFunc("mvcloud_stats_cache_hits_total", "Response-cache hits by endpoint.",
			func() float64 { return float64(st.endpointHits(e)) }, "endpoint", e)
		reg.CounterFunc("mvcloud_stats_cache_misses_total", "Response-cache misses by endpoint.",
			func() float64 { return float64(st.endpointMisses(e)) }, "endpoint", e)
		reg.CounterFunc("mvcloud_stats_coalesced_total", "Requests served by joining an in-flight solve, by endpoint.",
			func() float64 { return float64(st.endpointCoalesced(e)) }, "endpoint", e)
	}
	for _, e := range plainEndpoints {
		e := e
		reg.CounterFunc("mvcloud_stats_requests_total", "Requests received by endpoint (/v1/stats by_endpoint).",
			func() float64 { return float64(st.endpointRequests(e)) }, "endpoint", e)
	}
	reg.CounterFunc("mvcloud_stats_solves_total", "Solves actually executed (misses minus coalesced joins).",
		func() float64 { return float64(st.solveCount()) })
	reg.CounterFunc("mvcloud_stats_errors_total", "Requests that failed (bad request, timeout, cancel, solve error).",
		func() float64 { return float64(st.errorCount()) })
	reg.CounterFunc("mvcloud_stats_shed_total", "Requests shed by admission control (429 + Retry-After).",
		func() float64 { return float64(st.shedCount()) })
	reg.CounterFunc("mvcloud_stats_degraded_total", "Responses served degraded (solve stopped at its deadline with the best incumbent).",
		func() float64 { return float64(st.degradedCount()) })
	reg.CounterFunc("mvcloud_stats_stale_total", "Shed requests served a stale evicted cache entry (X-Cache: stale).",
		func() float64 { return float64(st.staleCount()) })
	reg.CounterFunc("mvcloud_stats_solve_panics_total", "Solver panics contained to 500 responses.",
		func() float64 { return float64(st.panicCount()) })

	start := s.stats.start
	reg.GaugeFunc("mvcloud_process_start_time_seconds", "Unix time the server was constructed.",
		func() float64 { return float64(start.UnixNano()) / 1e9 })
	reg.GaugeFunc("mvcloud_process_uptime_seconds", "Seconds since the server was constructed.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("mvcloud_go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	return m
}

// observePhases folds one cold solve's trace into the per-phase
// histograms, skipping phases the solve never entered.
func (m *serverMetrics) observePhases(tr *obs.Trace) {
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if d := tr.Duration(p); d > 0 {
			m.phases[p].Observe(d)
		}
	}
}

// handleMetrics serves GET /metrics: the server's registry followed by
// the process-wide obs.Default (solver counters), in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); encBufPool.Put(buf) }()
	if err := s.reg.WritePrometheus(buf); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if err := obs.Default.WritePrometheus(buf); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// VersionResponse is the body of GET /v1/version.
type VersionResponse struct {
	// Module and Version identify the main module as built.
	Module  string `json:"module"`
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision/Time/Modified are the VCS stamp when the binary was built
	// from a checkout (empty under plain `go test`).
	Revision string `json:"vcs_revision,omitempty"`
	Time     string `json:"vcs_time,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
}

// buildVersion reads the build-info stamp once; the result never
// changes within a process.
func buildVersion() VersionResponse {
	v := VersionResponse{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Path
	v.Version = bi.Main.Version
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			v.Revision = kv.Value
		case "vcs.time":
			v.Time = kv.Value
		case "vcs.modified":
			v.Modified = kv.Value == "true"
		}
	}
	return v
}

var versionInfo = buildVersion()

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, versionInfo)
}
