// Package datagen synthesizes the paper's supply-chain sales dataset: fact
// rows with a calendar date (2000–2010), a geographic department and a
// profit measure, plus the hierarchy rollup maps (day→month→year and
// department→region→country) and display labels.
//
// The paper's dataset is private; this generator reproduces its schema
// (Table 1), its hierarchy cardinalities and its date range at any physical
// scale, deterministically from a seed.
package datagen

import (
	"fmt"
	"math/rand"
	"time"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/storage"
)

// Config controls generation.
type Config struct {
	// Rows is the number of fact rows to generate.
	Rows int
	// Seed makes generation deterministic.
	Seed int64
	// HotDeptSkew is the Zipf exponent applied to department popularity;
	// values > 1 concentrate sales in a few departments. Zero selects the
	// default of 1.2.
	HotDeptSkew float64
}

// Default returns the configuration used by the experiment harness: 200k
// rows ≈ 10 MB, standing in for the paper's 10 GB extract at 1/1000 scale.
func Default() Config {
	return Config{Rows: 200_000, Seed: 1, HotDeptSkew: 1.2}
}

// countries and the paper's named examples (France→Auvergne→Puy-de-Dôme,
// Italy→Campanie→Naples) head the label lists.
var countries = []string{
	"France", "Italy", "Germany", "Spain", "Portugal",
	"Belgium", "Switzerland", "Austria", "Netherlands", "Poland",
}

// GenerateSales builds a sales dataset per the config.
func GenerateSales(cfg Config) (*storage.Dataset, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("datagen: non-positive row count %d", cfg.Rows)
	}
	if cfg.HotDeptSkew == 0 {
		cfg.HotDeptSkew = 1.2
	}
	if cfg.HotDeptSkew <= 1 {
		return nil, fmt.Errorf("datagen: HotDeptSkew must exceed 1, got %g", cfg.HotDeptSkew)
	}
	s := schema.Sales()
	timeDim, _, err := s.Dimension("time")
	if err != nil {
		return nil, err
	}
	geoDim, _, err := s.Dimension("geography")
	if err != nil {
		return nil, err
	}
	days := timeDim.Levels[0].Cardinality
	months := timeDim.Levels[1].Cardinality
	years := timeDim.Levels[2].Cardinality
	depts := geoDim.Levels[0].Cardinality
	regions := geoDim.Levels[1].Cardinality
	nCountries := geoDim.Levels[2].Cardinality

	ds := &storage.Dataset{
		Schema: s,
		Maps:   map[string][]int32{},
		Labels: map[string][]string{},
	}

	// Calendar: exact Gregorian mapping for 2000-01-01 .. 2010-12-31.
	dayToMonth := make([]int32, 0, days)
	dayLabels := make([]string, 0, days)
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	for d := start; d.Year() <= 2010; d = d.AddDate(0, 0, 1) {
		dayToMonth = append(dayToMonth, int32((d.Year()-2000)*12+int(d.Month())-1))
		dayLabels = append(dayLabels, d.Format("2006-01-02"))
	}
	if len(dayToMonth) != days {
		return nil, fmt.Errorf("datagen: calendar produced %d days, schema expects %d", len(dayToMonth), days)
	}
	monthToYear := make([]int32, months)
	monthLabels := make([]string, months)
	for m := 0; m < months; m++ {
		monthToYear[m] = int32(m / 12)
		monthLabels[m] = fmt.Sprintf("%04d-%02d", 2000+m/12, m%12+1)
	}
	yearLabels := make([]string, years)
	for y := 0; y < years; y++ {
		yearLabels[y] = fmt.Sprintf("%04d", 2000+y)
	}

	// Geography: dept d belongs to region d/10, region r to country r/8.
	deptToRegion := make([]int32, depts)
	deptLabels := make([]string, depts)
	for d := 0; d < depts; d++ {
		deptToRegion[d] = int32(d / (depts / regions))
	}
	regionToCountry := make([]int32, regions)
	regionLabels := make([]string, regions)
	for r := 0; r < regions; r++ {
		regionToCountry[r] = int32(r / (regions / nCountries))
		regionLabels[r] = fmt.Sprintf("%s-R%d", countryCode(int(regionToCountry[r])), r%(regions/nCountries)+1)
	}
	regionLabels[0] = "Auvergne"
	campanie := int(regions / nCountries) // first region of Italy (country 1)
	regionLabels[campanie] = "Campanie"
	for d := 0; d < depts; d++ {
		deptLabels[d] = fmt.Sprintf("%s-D%d", regionLabels[deptToRegion[d]], d%(depts/regions)+1)
	}
	deptLabels[0] = "Puy-de-Dôme"
	deptLabels[campanie*(depts/regions)] = "Naples"

	ds.Maps[schema.MapName("day", "month")] = dayToMonth
	ds.Maps[schema.MapName("month", "year")] = monthToYear
	ds.Maps[schema.MapName("department", "region")] = deptToRegion
	ds.Maps[schema.MapName("region", "country")] = regionToCountry
	ds.Labels["day"] = dayLabels
	ds.Labels["month"] = monthLabels
	ds.Labels["year"] = yearLabels
	ds.Labels["department"] = deptLabels
	ds.Labels["region"] = regionLabels
	ds.Labels["country"] = countries[:nCountries]

	// Facts: uniform dates with a mild seasonal bump in December, Zipfian
	// department popularity, log-ish positive profits in cents.
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.HotDeptSkew, 1, uint64(depts-1))
	facts := storage.NewTable("facts", lattice.Point{0, 0}, 1, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		day := int32(rng.Intn(days))
		if rng.Float64() < 0.15 { // seasonal bump: re-draw into December
			m := dayToMonth[day]
			if m%12 != 11 {
				day = int32(rng.Intn(days))
			}
		}
		dept := int32(zipf.Uint64())
		// Profit between $10.00 and ~$1000.00, right-skewed.
		profit := int64(1000 + rng.Intn(9000) + rng.Intn(9000)*rng.Intn(11))
		if err := facts.Append([]int32{day, dept}, []int64{profit}); err != nil {
			return nil, err
		}
	}
	ds.Facts = facts
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: generated dataset invalid: %w", err)
	}
	return ds, nil
}

// GenerateInsertBatch builds a batch of fresh fact rows at the dataset's
// base grain — the update stream that drives incremental view maintenance
// (views.ApplyInsertBatch). Deterministic from the seed.
func GenerateInsertBatch(ds *storage.Dataset, rows int, seed int64) (*storage.Table, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("datagen: non-positive batch size %d", rows)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	days := ds.Schema.Dimensions[0].Levels[0].Cardinality
	depts := ds.Schema.Dimensions[1].Levels[0].Cardinality
	rng := rand.New(rand.NewSource(seed))
	batch := storage.NewTable("batch", lattice.Point{0, 0}, len(ds.Schema.Measures), rows)
	keys := make([]int32, 2)
	vals := make([]int64, len(ds.Schema.Measures))
	for i := 0; i < rows; i++ {
		keys[0] = int32(rng.Intn(days))
		keys[1] = int32(rng.Intn(depts))
		for m := range vals {
			vals[m] = int64(rng.Intn(9000) + 1000)
		}
		if err := batch.Append(keys, vals); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

func countryCode(c int) string {
	codes := []string{"FR", "IT", "DE", "ES", "PT", "BE", "CH", "AT", "NL", "PL"}
	if c < len(codes) {
		return codes[c]
	}
	return fmt.Sprintf("C%d", c)
}
