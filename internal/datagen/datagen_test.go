package datagen

import (
	"testing"

	"vmcloud/internal/schema"
)

func TestGenerateSalesValid(t *testing.T) {
	ds, err := GenerateSales(Config{Rows: 5000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Facts.Rows() != 5000 {
		t.Errorf("rows = %d, want 5000", ds.Facts.Rows())
	}
}

func TestGenerateSalesDeterministic(t *testing.T) {
	a, err := GenerateSales(Config{Rows: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSales(Config{Rows: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 1000; r++ {
		if a.Facts.Keys[0][r] != b.Facts.Keys[0][r] ||
			a.Facts.Keys[1][r] != b.Facts.Keys[1][r] ||
			a.Facts.Measures[0][r] != b.Facts.Measures[0][r] {
			t.Fatalf("row %d differs between identically-seeded runs", r)
		}
	}
	c, err := GenerateSales(Config{Rows: 1000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < 1000; r++ {
		if a.Facts.Keys[0][r] != c.Facts.Keys[0][r] || a.Facts.Measures[0][r] != c.Facts.Measures[0][r] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestCalendarExact(t *testing.T) {
	ds, err := GenerateSales(Config{Rows: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2m := ds.Maps[schema.MapName("day", "month")]
	if len(d2m) != 4018 {
		t.Fatalf("calendar days = %d, want 4018 (2000–2010 incl. 3 leap years)", len(d2m))
	}
	// 2000-01-01 is day 0, month 0.
	if d2m[0] != 0 {
		t.Errorf("day 0 month = %d, want 0", d2m[0])
	}
	// 2000-02-29 exists (leap year): day index 31+29-1 = 59 is still Feb.
	if d2m[59] != 1 {
		t.Errorf("2000-02-29 mapped to month %d, want 1", d2m[59])
	}
	// 2000-03-01 is day 60.
	if d2m[60] != 2 {
		t.Errorf("2000-03-01 mapped to month %d, want 2", d2m[60])
	}
	// Last day is 2010-12-31 → month 131.
	if d2m[len(d2m)-1] != 131 {
		t.Errorf("last day month = %d, want 131", d2m[len(d2m)-1])
	}
	if ds.Labels["day"][59] != "2000-02-29" {
		t.Errorf("day 59 label = %q, want 2000-02-29", ds.Labels["day"][59])
	}
	m2y := ds.Maps[schema.MapName("month", "year")]
	if m2y[11] != 0 || m2y[12] != 1 || m2y[131] != 10 {
		t.Errorf("month→year map wrong: %d %d %d", m2y[11], m2y[12], m2y[131])
	}
}

func TestGeographyHierarchy(t *testing.T) {
	ds, err := GenerateSales(Config{Rows: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2r := ds.Maps[schema.MapName("department", "region")]
	r2c := ds.Maps[schema.MapName("region", "country")]
	if len(d2r) != 800 || len(r2c) != 80 {
		t.Fatalf("map sizes = %d, %d; want 800, 80", len(d2r), len(r2c))
	}
	// Paper's example: Puy-de-Dôme ∈ Auvergne ∈ France.
	if ds.Labels["department"][0] != "Puy-de-Dôme" {
		t.Errorf("dept 0 = %q", ds.Labels["department"][0])
	}
	if ds.Labels["region"][d2r[0]] != "Auvergne" {
		t.Errorf("region of dept 0 = %q", ds.Labels["region"][d2r[0]])
	}
	if ds.Labels["country"][r2c[d2r[0]]] != "France" {
		t.Errorf("country of dept 0 = %q", ds.Labels["country"][r2c[d2r[0]]])
	}
	// Naples ∈ Campanie ∈ Italy.
	naples := -1
	for i, l := range ds.Labels["department"] {
		if l == "Naples" {
			naples = i
			break
		}
	}
	if naples < 0 {
		t.Fatal("Naples not found")
	}
	if ds.Labels["region"][d2r[naples]] != "Campanie" {
		t.Errorf("region of Naples = %q", ds.Labels["region"][d2r[naples]])
	}
	if ds.Labels["country"][r2c[d2r[naples]]] != "Italy" {
		t.Errorf("country of Naples = %q", ds.Labels["country"][r2c[d2r[naples]]])
	}
}

func TestSkewProducesHotDepartments(t *testing.T) {
	ds, err := GenerateSales(Config{Rows: 50_000, Seed: 3, HotDeptSkew: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int32]int{}
	for _, d := range ds.Facts.Keys[1] {
		counts[d]++
	}
	// The hottest department should take well above the uniform 1/800 share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50_000/800*5 {
		t.Errorf("hottest department has %d rows; expected strong skew", max)
	}
}

func TestProfitsPositive(t *testing.T) {
	ds, err := GenerateSales(Config{Rows: 10_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ds.Facts.Measures[0] {
		if p <= 0 {
			t.Fatalf("row %d profit = %d, want > 0", i, p)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := GenerateSales(Config{Rows: 0, Seed: 1}); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := GenerateSales(Config{Rows: 10, Seed: 1, HotDeptSkew: 0.5}); err == nil {
		t.Error("skew ≤ 1 accepted")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := Default()
	if cfg.Rows <= 0 || cfg.HotDeptSkew <= 1 {
		t.Errorf("Default() = %+v not generatable", cfg)
	}
}
