// Package schema describes star schemas with dimension hierarchies — the
// metadata layer under the sales warehouse of the paper's running example
// (Table 1: Year, Month, Day, Country, Region, Department, Profit).
//
// Each dimension is a linear hierarchy of levels ordered fine → coarse and
// implicitly topped by the ALL level (a single value), so the sales schema's
// two dimensions Time (day→month→year→ALL) and Geography
// (department→region→country→ALL) induce the 4×4 = 16-cuboid lattice the
// view-selection machinery works over.
package schema

import (
	"fmt"
	"math"

	"vmcloud/internal/units"
)

// AllLevel is the name of the implicit coarsest level of every hierarchy.
const AllLevel = "all"

// Level is one granularity of a dimension hierarchy.
type Level struct {
	// Name identifies the level, e.g. "month".
	Name string
	// Cardinality is the number of distinct values at this level.
	Cardinality int
}

// Dimension is a linear hierarchy of levels ordered fine → coarse. The ALL
// level is appended automatically by NewDimension and always last.
type Dimension struct {
	Name   string
	Levels []Level
}

// NewDimension builds a dimension from fine→coarse levels, appending ALL.
func NewDimension(name string, levels ...Level) Dimension {
	ls := make([]Level, 0, len(levels)+1)
	ls = append(ls, levels...)
	ls = append(ls, Level{Name: AllLevel, Cardinality: 1})
	return Dimension{Name: name, Levels: ls}
}

// LevelIndex returns the index of the named level, fine = 0.
func (d Dimension) LevelIndex(name string) (int, error) {
	for i, l := range d.Levels {
		if l.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("schema: dimension %s has no level %q", d.Name, name)
}

// Finest returns the finest (index 0) level.
func (d Dimension) Finest() Level { return d.Levels[0] }

// NumLevels returns the number of levels including ALL.
func (d Dimension) NumLevels() int { return len(d.Levels) }

// MeasureKind enumerates the supported additive measure aggregations.
type MeasureKind int

const (
	// Sum accumulates the measure (profit totals).
	Sum MeasureKind = iota
	// Count counts contributing fact rows.
	Count
	// MinAgg keeps the minimum.
	MinAgg
	// MaxAgg keeps the maximum.
	MaxAgg
)

// String implements fmt.Stringer.
func (k MeasureKind) String() string {
	switch k {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case MinAgg:
		return "min"
	case MaxAgg:
		return "max"
	default:
		return fmt.Sprintf("MeasureKind(%d)", int(k))
	}
}

// Measure is a numeric fact attribute and its default aggregation.
type Measure struct {
	Name string
	Kind MeasureKind
}

// Schema is a star schema: dimensions plus measures.
type Schema struct {
	Name       string
	Dimensions []Dimension
	Measures   []Measure
	// RowBytes is the average encoded width of one fact row; used by the
	// size estimators to convert row counts into data volumes.
	RowBytes units.DataSize
}

// Validate checks structural invariants.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema: unnamed schema")
	}
	if len(s.Dimensions) == 0 {
		return fmt.Errorf("schema %s: no dimensions", s.Name)
	}
	seen := map[string]bool{}
	for _, d := range s.Dimensions {
		if len(d.Levels) < 2 {
			return fmt.Errorf("schema %s: dimension %s has no levels besides ALL", s.Name, d.Name)
		}
		if d.Levels[len(d.Levels)-1].Name != AllLevel {
			return fmt.Errorf("schema %s: dimension %s does not end with ALL", s.Name, d.Name)
		}
		prev := 0
		for i, l := range d.Levels {
			if l.Cardinality < 1 {
				return fmt.Errorf("schema %s: level %s.%s has cardinality %d", s.Name, d.Name, l.Name, l.Cardinality)
			}
			if seen[l.Name] && l.Name != AllLevel {
				return fmt.Errorf("schema %s: duplicate level name %q", s.Name, l.Name)
			}
			seen[l.Name] = true
			// Coarser levels cannot have more values than finer ones.
			if i > 0 && l.Cardinality > prev {
				return fmt.Errorf("schema %s: level %s.%s cardinality %d exceeds finer level's %d",
					s.Name, d.Name, l.Name, l.Cardinality, prev)
			}
			prev = l.Cardinality
		}
	}
	if len(s.Measures) == 0 {
		return fmt.Errorf("schema %s: no measures", s.Name)
	}
	if s.RowBytes <= 0 {
		return fmt.Errorf("schema %s: non-positive RowBytes", s.Name)
	}
	return nil
}

// Dimension returns the dimension with the given name.
func (s *Schema) Dimension(name string) (Dimension, int, error) {
	for i, d := range s.Dimensions {
		if d.Name == name {
			return d, i, nil
		}
	}
	return Dimension{}, 0, fmt.Errorf("schema %s: no dimension %q", s.Name, name)
}

// Measure returns the measure with the given name.
func (s *Schema) Measure(name string) (Measure, int, error) {
	for i, m := range s.Measures {
		if m.Name == name {
			return m, i, nil
		}
	}
	return Measure{}, 0, fmt.Errorf("schema %s: no measure %q", s.Name, name)
}

// MapName names the hierarchy mapping from one level to the next coarser
// level of a dimension, e.g. "day->month". Datasets publish a child→parent
// index array under this name for every adjacent level pair.
func MapName(from, to string) string { return from + "->" + to }

// Synthetic builds a deterministic star schema with dims dimensions and
// levels hierarchy levels per dimension (counting the implicit ALL
// level), inducing a levels^dims-cuboid lattice. It exists to stress the
// lattice machinery and the metaheuristic view-selection solvers beyond
// the paper's 2-dimension, 16-cuboid sales schema — e.g. Synthetic(4, 4)
// yields the 256-cuboid lattice the large-schema experiments run on.
//
// Dimension d is named "dim<d>" with levels "d<d>l<k>" (k = 0 finest).
// The finest level of dimension d has cardinality 512·(d+1) and each
// coarser level divides it by 8, so dimensions are asymmetric (as real
// schemas are) while cardinalities stay strictly non-increasing
// coarse-ward. The single measure is a summed "value"; RowBytes grows
// with the dimension count.
func Synthetic(dims, levels int) (*Schema, error) {
	if dims < 1 {
		return nil, fmt.Errorf("schema: synthetic schema needs at least 1 dimension, got %d", dims)
	}
	if levels < 2 {
		return nil, fmt.Errorf("schema: synthetic schema needs at least 2 levels per dimension (one plus ALL), got %d", levels)
	}
	// The lattice has levels^dims nodes and the finest cardinality grows
	// as factor^(levels-2); bound the node count (the quantity that
	// actually OOMs lattice construction) and the hierarchy depth (the
	// quantity that overflows cardinality arithmetic).
	if levels > 12 {
		return nil, fmt.Errorf("schema: synthetic schema depth %d too large (max 12 levels per dimension)", levels)
	}
	const maxNodes = 1 << 20
	nodes := 1
	for d := 0; d < dims; d++ {
		nodes *= levels
		if nodes > maxNodes {
			return nil, fmt.Errorf("schema: synthetic schema %d×%d induces more than %d cuboids", dims, levels, maxNodes)
		}
	}
	const factor = 8
	s := &Schema{
		Name:     fmt.Sprintf("synthetic-%dx%d", dims, levels),
		Measures: []Measure{{Name: "value", Kind: Sum}},
		// One int64 key per dimension, one measure, plus encoding overhead.
		RowBytes: units.DataSize(8*dims + 16),
	}
	for d := 0; d < dims; d++ {
		finest := 512 * (d + 1)
		if want := math.Pow(factor, float64(levels-2)); float64(finest) < want {
			// Guarantee every named level keeps a distinct cardinality
			// even for very deep hierarchies.
			finest = int(want) * (d + 1)
		}
		ls := make([]Level, 0, levels-1)
		card := finest
		for k := 0; k < levels-1; k++ {
			ls = append(ls, Level{Name: fmt.Sprintf("d%dl%d", d, k), Cardinality: card})
			card /= factor
			if card < 1 {
				card = 1
			}
		}
		s.Dimensions = append(s.Dimensions, NewDimension(fmt.Sprintf("dim%d", d), ls...))
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Sales constructs the paper's supply-chain sales schema at the given
// fact-table scale.
//
// The running example stores 11 calendar years (2000–2010) of sales. The
// hierarchy cardinalities (4018 days, 132 months, 11 years; 800 departments,
// 80 regions, 10 countries) match that setting; only the physical row count
// (and thus dataset size) varies with scale.
func Sales() *Schema {
	return &Schema{
		Name: "sales",
		Dimensions: []Dimension{
			NewDimension("time",
				Level{Name: "day", Cardinality: 4018},
				Level{Name: "month", Cardinality: 132},
				Level{Name: "year", Cardinality: 11},
			),
			NewDimension("geography",
				Level{Name: "department", Cardinality: 800},
				Level{Name: "region", Cardinality: 80},
				Level{Name: "country", Cardinality: 10},
			),
		},
		Measures: []Measure{{Name: "profit", Kind: Sum}},
		// day(4) + department(4) + profit(8) + row overhead ≈ 50 bytes when
		// serialized with dimension attributes denormalized as in Table 1.
		RowBytes: 50,
	}
}
