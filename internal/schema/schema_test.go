package schema

import (
	"strings"
	"testing"
)

func TestSalesValidates(t *testing.T) {
	s := Sales()
	if err := s.Validate(); err != nil {
		t.Fatalf("Sales schema invalid: %v", err)
	}
}

func TestSalesShape(t *testing.T) {
	s := Sales()
	if len(s.Dimensions) != 2 {
		t.Fatalf("dimensions = %d, want 2", len(s.Dimensions))
	}
	timeDim, idx, err := s.Dimension("time")
	if err != nil || idx != 0 {
		t.Fatalf("Dimension(time): %v, idx %d", err, idx)
	}
	if timeDim.NumLevels() != 4 {
		t.Errorf("time levels = %d, want 4 (day, month, year, all)", timeDim.NumLevels())
	}
	if timeDim.Finest().Name != "day" {
		t.Errorf("finest time level = %q, want day", timeDim.Finest().Name)
	}
	if timeDim.Levels[3].Name != AllLevel || timeDim.Levels[3].Cardinality != 1 {
		t.Errorf("top level = %+v, want ALL/1", timeDim.Levels[3])
	}
	geo, _, err := s.Dimension("geography")
	if err != nil {
		t.Fatal(err)
	}
	li, err := geo.LevelIndex("country")
	if err != nil || li != 2 {
		t.Errorf("LevelIndex(country) = %d, %v; want 2", li, err)
	}
	if _, err := geo.LevelIndex("continent"); err == nil {
		t.Error("unknown level accepted")
	}
	if _, _, err := s.Dimension("product"); err == nil {
		t.Error("unknown dimension accepted")
	}
}

func TestMeasureLookup(t *testing.T) {
	s := Sales()
	m, idx, err := s.Measure("profit")
	if err != nil || idx != 0 || m.Kind != Sum {
		t.Errorf("Measure(profit) = %+v, %d, %v", m, idx, err)
	}
	if _, _, err := s.Measure("revenue"); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Schema)
		want string
	}{
		{"unnamed", func(s *Schema) { s.Name = "" }, "unnamed"},
		{"no dims", func(s *Schema) { s.Dimensions = nil }, "no dimensions"},
		{"no measures", func(s *Schema) { s.Measures = nil }, "no measures"},
		{"bad rowbytes", func(s *Schema) { s.RowBytes = 0 }, "RowBytes"},
		{"zero cardinality", func(s *Schema) { s.Dimensions[0].Levels[0].Cardinality = 0 }, "cardinality"},
		{"increasing cardinality", func(s *Schema) { s.Dimensions[0].Levels[1].Cardinality = 10_000 }, "exceeds"},
		{"dup level", func(s *Schema) { s.Dimensions[1].Levels[0].Name = "day" }, "duplicate"},
		{"missing all", func(s *Schema) {
			s.Dimensions[0].Levels = s.Dimensions[0].Levels[:3]
		}, "ALL"},
		{"only all", func(s *Schema) {
			s.Dimensions[0].Levels = s.Dimensions[0].Levels[3:]
		}, "no levels"},
	}
	for _, c := range cases {
		s := Sales()
		c.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: invalid schema accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestMeasureKindString(t *testing.T) {
	for k, want := range map[MeasureKind]string{Sum: "sum", Count: "count", MinAgg: "min", MaxAgg: "max"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if MeasureKind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestMapName(t *testing.T) {
	if MapName("day", "month") != "day->month" {
		t.Errorf("MapName = %q", MapName("day", "month"))
	}
}

func TestNewDimensionAppendsAll(t *testing.T) {
	d := NewDimension("x", Level{Name: "leaf", Cardinality: 5})
	if len(d.Levels) != 2 || d.Levels[1].Name != AllLevel {
		t.Errorf("levels = %+v", d.Levels)
	}
}

func TestSynthetic(t *testing.T) {
	s, err := Synthetic(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Dimensions); got != 4 {
		t.Fatalf("dims = %d, want 4", got)
	}
	for _, d := range s.Dimensions {
		if got := d.NumLevels(); got != 4 {
			t.Fatalf("dimension %s has %d levels, want 4", d.Name, got)
		}
	}
	for _, bad := range [][2]int{{0, 4}, {4, 1}, {11, 4}, {4, 13}} {
		if _, err := Synthetic(bad[0], bad[1]); err == nil {
			t.Errorf("Synthetic(%d, %d) accepted", bad[0], bad[1])
		}
	}
	// The deepest allowed hierarchy must stay within integer range.
	deep, err := Synthetic(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c := deep.Dimensions[0].Finest().Cardinality; c < 1 {
		t.Fatalf("deep hierarchy finest cardinality %d overflowed", c)
	}
}
