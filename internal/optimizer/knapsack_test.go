package optimizer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteKnapsack maximizes value under the weight cap by enumeration.
func bruteKnapsack(values, weights []int64, cap int64) int64 {
	n := len(values)
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		var v, w int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= cap && v > best {
			best = v
		}
	}
	return best
}

func sumAt(vals []int64, idx []int) int64 {
	var s int64
	for _, i := range idx {
		s += vals[i]
	}
	return s
}

func TestKnapsack01Basic(t *testing.T) {
	values := []int64{60, 100, 120}
	weights := []int64{10, 20, 30}
	idx, err := Knapsack01(values, weights, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumAt(values, idx); got != 220 {
		t.Errorf("value = %d, want 220 (items 1,2)", got)
	}
	if got := sumAt(weights, idx); got > 50 {
		t.Errorf("weight = %d exceeds capacity", got)
	}
}

func TestKnapsack01Edges(t *testing.T) {
	if idx, err := Knapsack01(nil, nil, 10); err != nil || len(idx) != 0 {
		t.Errorf("empty = %v, %v", idx, err)
	}
	if idx, err := Knapsack01([]int64{5}, []int64{3}, -1); err != nil || len(idx) != 0 {
		t.Errorf("negative cap = %v, %v", idx, err)
	}
	if idx, err := Knapsack01([]int64{5}, []int64{0}, 0); err != nil || len(idx) != 1 {
		t.Errorf("zero-weight item = %v, %v", idx, err)
	}
	if _, err := Knapsack01([]int64{1}, []int64{1, 2}, 5); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Knapsack01([]int64{-1}, []int64{1}, 5); err == nil {
		t.Error("negative value accepted")
	}
	if _, err := Knapsack01([]int64{1}, []int64{-1}, 5); err == nil {
		t.Error("negative weight accepted")
	}
}

// Regression for the dead-sentinel bug: the zero-initialized DP is the
// "weight ≤ c" formulation, where every state is reachable. These
// instances each have a unique optimum, so the exact index set is pinned
// (not just the optimal value).
func TestKnapsack01PinnedSelections(t *testing.T) {
	cases := []struct {
		name     string
		values   []int64
		weights  []int64
		capacity int64
		want     []int
	}{
		{"classic", []int64{60, 100, 120}, []int64{10, 20, 30}, 50, []int{1, 2}},
		{"skip greedy trap", []int64{10, 40, 30, 50}, []int64{5, 4, 6, 3}, 10, []int{1, 3}},
		{"only light item fits", []int64{1, 2, 3}, []int64{4, 5, 1}, 1, []int{2}},
		{"zero-weight item at zero capacity", []int64{7, 3}, []int64{0, 1}, 0, []int{0}},
		{"nothing fits", []int64{5, 6}, []int64{9, 9}, 8, nil},
	}
	for _, c := range cases {
		idx, err := Knapsack01(c.values, c.weights, c.capacity)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(idx) != len(c.want) {
			t.Errorf("%s: selected %v, want %v", c.name, idx, c.want)
			continue
		}
		for i := range idx {
			if idx[i] != c.want[i] {
				t.Errorf("%s: selected %v, want %v", c.name, idx, c.want)
				break
			}
		}
		if got, want := sumAt(c.values, idx), bruteKnapsack(c.values, c.weights, c.capacity); got != want {
			t.Errorf("%s: value %d, brute force says %d", c.name, got, want)
		}
	}
}

// Property: the DP matches brute force on random small instances.
func TestKnapsack01MatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		values := make([]int64, n)
		weights := make([]int64, n)
		for i := range values {
			values[i] = int64(rng.Intn(100))
			weights[i] = int64(rng.Intn(50))
		}
		cap := int64(rng.Intn(120))
		idx, err := Knapsack01(values, weights, cap)
		if err != nil {
			return false
		}
		if sumAt(weights, idx) > cap {
			return false
		}
		return sumAt(values, idx) == bruteKnapsack(values, weights, cap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Scaled capacities stay feasible (round-up on weights) even when the DP
// table cannot hold the raw capacity.
func TestKnapsack01ScalingStaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	values := make([]int64, n)
	weights := make([]int64, n)
	for i := range values {
		values[i] = int64(rng.Intn(1000) + 1)
		weights[i] = int64(rng.Intn(1_000_000_000) + 1) // ~$1000 in micros
	}
	cap := int64(3_000_000_000)
	idx, err := Knapsack01(values, weights, cap)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumAt(weights, idx); got > cap {
		t.Errorf("scaled solution weight %d exceeds capacity %d", got, cap)
	}
	if len(idx) == 0 {
		t.Error("scaled knapsack selected nothing despite generous capacity")
	}
}

// bruteCover minimizes cost subject to gain ≥ need by enumeration.
func bruteCover(costs, gains []int64, need int64) (int64, bool) {
	n := len(costs)
	best := int64(-1)
	for mask := 0; mask < 1<<n; mask++ {
		var c, g int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				c += costs[i]
				g += gains[i]
			}
		}
		if g >= need && (best < 0 || c < best) {
			best = c
		}
	}
	return best, best >= 0
}

func TestMinCostCoverBasic(t *testing.T) {
	costs := []int64{10, 4, 7}
	gains := []int64{5, 3, 4}
	idx, ok, err := MinCostCover(costs, gains, 7)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got := sumAt(gains, idx); got < 7 {
		t.Errorf("gain = %d < need", got)
	}
	if got := sumAt(costs, idx); got != 11 {
		t.Errorf("cost = %d, want 11 (items 1,2)", got)
	}
}

func TestMinCostCoverEdges(t *testing.T) {
	if idx, ok, err := MinCostCover(nil, nil, 0); err != nil || !ok || len(idx) != 0 {
		t.Errorf("need 0 = %v %v %v", idx, ok, err)
	}
	if _, ok, err := MinCostCover([]int64{1}, []int64{2}, 10); err != nil || ok {
		t.Errorf("uncoverable need reported ok=%v err=%v", ok, err)
	}
	if _, _, err := MinCostCover([]int64{1}, []int64{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := MinCostCover([]int64{-1}, []int64{1}, 1); err == nil {
		t.Error("negative cost accepted")
	}
}

// Property: MinCostCover matches brute force on random small instances.
func TestMinCostCoverMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(9) + 1
		costs := make([]int64, n)
		gains := make([]int64, n)
		for i := range costs {
			costs[i] = int64(rng.Intn(100))
			gains[i] = int64(rng.Intn(40))
		}
		need := int64(rng.Intn(100))
		idx, ok, err := MinCostCover(costs, gains, need)
		if err != nil {
			return false
		}
		wantCost, wantOK := bruteCover(costs, gains, need)
		if ok != wantOK {
			return false
		}
		if !ok {
			return true
		}
		if sumAt(gains, idx) < need {
			return false
		}
		return sumAt(costs, idx) == wantCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// With scaling, covers remain true covers.
func TestMinCostCoverScalingStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	costs := make([]int64, n)
	gains := make([]int64, n)
	for i := range costs {
		costs[i] = int64(rng.Intn(100) + 1)
		gains[i] = int64(rng.Intn(2_000_000_000) + 1_000_000_000) // ~1h in ns
	}
	need := int64(8_000_000_000)
	idx, ok, err := MinCostCover(costs, gains, need)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got := sumAt(gains, idx); got < need {
		t.Errorf("scaled cover gain %d < need %d", got, need)
	}
}

func BenchmarkKnapsack01(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 16
	values := make([]int64, n)
	weights := make([]int64, n)
	for i := range values {
		values[i] = int64(rng.Intn(10_000) + 1)
		weights[i] = int64(rng.Intn(500_000) + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Knapsack01(values, weights, 2_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
