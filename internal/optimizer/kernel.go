package optimizer

import (
	"fmt"
	"sort"
	"time"

	"vmcloud/internal/lattice"
	"vmcloud/internal/obs"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// ComparisonKernel is the pricing-invariant half of an advisory problem:
// everything about (lattice, workload, candidate set) that no tariff can
// change. The lattice index, the candidate scalars (rows, sizes, lattice
// ids), the per-query answering lists with the exact cheapest-answering
// tie rule, and the duplicate-point groups of the deferred-maintenance
// accounting are all resolved here, exactly once. Cross-tariff studies —
// the paper's central exercise of re-pricing one view-selection problem
// under many cloud price structures — then bind the kernel to one tariff
// at a time via RepriceFor, which recomputes only the time and money
// scalars (O(candidates + queries + answering entries) of arithmetic, no
// lattice walks), instead of rebuilding the whole advisory stack per
// provider × instance × fleet cell.
//
// A kernel is immutable after construction and safe for concurrent use:
// many RepriceFor sessions (one per worker of a comparison fan-out) can
// share one kernel.
type ComparisonKernel struct {
	// Lat, W and Cands are the pinned problem. Cands is held as given;
	// candidate i of every bound session is Cands[i].
	Lat   *lattice.Lattice
	W     workload.Workload
	Cands []views.Candidate

	n  int // len(Cands)
	nq int // len(W.Queries)

	// Per-candidate scalars, indexed by candidate position.
	ids  []int
	rows []int64
	size []units.DataSize
	// group maps candidates sharing one lattice point to one serving
	// counter (deferred maintenance bills per point, not per duplicate);
	// groupMembers inverts it.
	group        []int
	groupMembers [][]int32

	baseRows int64
	baseSize units.DataSize

	// Per-query scalars.
	qFreq []int64

	// Answering lists in CSR layout: candidates that can answer query q
	// with strictly fewer rows than the base table are
	// ansCand[qOff[q]:qOff[q+1]], sorted by (rows, candidate index) — the
	// Evaluator's exact cheapest-answering tie order.
	qOff    []int32
	ansCand []int32
	// cand2q[i] lists the queries candidate i can answer (the "affected
	// queries" of an incremental move).
	cand2q [][]int32
}

// NewComparisonKernel pins the structure of an advisory problem. The
// candidate points and query points are validated against the lattice.
func NewComparisonKernel(l *lattice.Lattice, w workload.Workload, cands []views.Candidate) (*ComparisonKernel, error) {
	if l == nil {
		return nil, fmt.Errorf("optimizer: comparison kernel needs a lattice")
	}
	obs.KernelBuilds.Inc()
	n, nq := len(cands), len(w.Queries)
	k := &ComparisonKernel{
		Lat:    l,
		W:      w,
		Cands:  cands,
		n:      n,
		nq:     nq,
		ids:    make([]int, n),
		rows:   make([]int64, n),
		size:   make([]units.DataSize, n),
		group:  make([]int, n),
		qFreq:  make([]int64, nq),
		qOff:   make([]int32, nq+1),
		cand2q: make([][]int32, n),
	}
	groupOf := make(map[int]int, n)
	for i, c := range cands {
		id, err := l.ID(c.Point)
		if err != nil {
			return nil, fmt.Errorf("optimizer: candidate %d: %w", i, err)
		}
		k.ids[i] = id
		node := l.NodeByID(id)
		k.rows[i] = node.Rows
		k.size[i] = node.Size
		g, ok := groupOf[id]
		if !ok {
			g = len(groupOf)
			groupOf[id] = g
			k.groupMembers = append(k.groupMembers, nil)
		}
		k.group[i] = g
		k.groupMembers[g] = append(k.groupMembers[g], int32(i))
	}

	baseNode := l.NodeByID(0)
	k.baseRows = baseNode.Rows
	k.baseSize = baseNode.Size

	// Build the answering lists query by query, sorted by the tie rule.
	type ansRef struct {
		cand int32
		rows int64
	}
	var scratch []ansRef
	for q, query := range w.Queries {
		qid, err := l.ID(query.Point)
		if err != nil {
			return nil, fmt.Errorf("optimizer: query %d: %w", q, err)
		}
		k.qFreq[q] = int64(query.Frequency)
		scratch = scratch[:0]
		for i := 0; i < n; i++ {
			// Only candidates that strictly beat the base can ever be
			// assigned (CheapestAnswering replaces on fewer rows only).
			if k.rows[i] >= baseNode.Rows || !l.CanAnswerID(k.ids[i], qid) {
				continue
			}
			scratch = append(scratch, ansRef{cand: int32(i), rows: k.rows[i]})
			k.cand2q[i] = append(k.cand2q[i], int32(q))
		}
		sort.SliceStable(scratch, func(a, b int) bool {
			if scratch[a].rows != scratch[b].rows {
				return scratch[a].rows < scratch[b].rows
			}
			return scratch[a].cand < scratch[b].cand
		})
		for _, e := range scratch {
			k.ansCand = append(k.ansCand, e.cand)
		}
		k.qOff[q+1] = int32(len(k.ansCand))
	}
	return k, nil
}

// Len returns the pinned candidate count.
func (k *ComparisonKernel) Len() int { return k.n }

// sessionScalars are the tariff-dependent scalars one RepriceFor binding
// derives from the kernel: every duration the estimator would compute,
// per candidate and per query, against one concrete cluster.
type sessionScalars struct {
	// Per-candidate times on the bound cluster.
	maint   []time.Duration // MaintenanceTime (Formula 11 per view)
	mat     []time.Duration // MaterializationTime (Formula 7 per view)
	perRun  []time.Duration // maint / MaintenanceRuns (exact)
	candJob []time.Duration // TimeForJob(candidate size): one scan of the view
	// Per-query times.
	qBase []time.Duration // freq × TimeForJob(base size)
	// ansTerm parallels the kernel's ansCand CSR array:
	// freq × TimeForJob(candidate size) per answering entry.
	ansTerm []time.Duration

	baseJob  time.Duration // TimeForJob(base size), unweighted
	deferred bool
	runs     int64
}

// bindScalars prices the kernel's pinned structure on the evaluator's
// cluster — the whole tariff-dependent rebuild. The per-candidate terms
// replicate the estimator's formulas over the pinned sizes (one
// TimeForJob per distinct volume) instead of calling back into the
// estimator's per-point lattice lookups; the kernel equivalence property
// tests pin them bit-equal to Estimator.MaintenanceTime /
// MaterializationTime / QueryTime.
func (k *ComparisonKernel) bindScalars(ev *Evaluator) sessionScalars {
	// All duration scalars live in one arena allocation: a binding is
	// per-cell in comparison fan-outs, so its allocation count is part of
	// the per-tariff cost.
	arena := make([]time.Duration, 4*k.n+k.nq+len(k.ansCand))
	next := func(n int) []time.Duration {
		out := arena[:n:n]
		arena = arena[n:]
		return out
	}
	s := sessionScalars{
		maint:    next(k.n),
		mat:      next(k.n),
		perRun:   next(k.n),
		candJob:  next(k.n),
		qBase:    next(k.nq),
		ansTerm:  next(len(k.ansCand)),
		deferred: ev.Est.Policy == views.DeferredMaintenance,
		runs:     int64(ev.Est.MaintenanceRuns),
	}
	cl := ev.Est.Cl
	s.baseJob = cl.TimeForJob(k.baseSize)
	// Each maintenance run scans the arriving delta plus the view
	// (Formula 11); materialization is one base scan per view (Formula 7).
	delta := k.baseSize.MulFloat(ev.Est.UpdateRatio)
	for i := 0; i < k.n; i++ {
		perRunJob := cl.TimeForJob(delta + k.size[i])
		s.maint[i] = time.Duration(ev.Est.MaintenanceRuns) * perRunJob
		s.mat[i] = s.baseJob
		if s.runs > 0 {
			s.perRun[i] = s.maint[i] / time.Duration(s.runs)
		}
		s.candJob[i] = cl.TimeForJob(k.size[i])
	}
	for q := 0; q < k.nq; q++ {
		s.qBase[q] = time.Duration(k.qFreq[q]) * s.baseJob
		for idx := k.qOff[q]; idx < k.qOff[q+1]; idx++ {
			s.ansTerm[idx] = time.Duration(k.qFreq[q]) * s.candJob[k.ansCand[idx]]
		}
	}
	return s
}
