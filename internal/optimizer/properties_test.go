package optimizer

import (
	"testing"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
)

// MV3 selection is monotone in α under the raw tradeoff: increasing the
// weight on time can only ADD views (every view saves time; paying views
// enter once α values their savings enough; self-paying views are always
// in).
func TestMV3SelectionMonotoneInAlpha(t *testing.T) {
	ev, cands := fixture(t, 10)
	alphas := []float64{0, 0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1}
	var prev map[string]bool
	for _, alpha := range alphas {
		sel, err := ev.SolveMV3(cands, alpha, RawTradeoff)
		if err != nil {
			t.Fatal(err)
		}
		cur := map[string]bool{}
		for _, p := range sel.Points {
			cur[ev.Est.Lat.Name(p)] = true
		}
		if prev != nil {
			for name := range prev {
				if !cur[name] {
					t.Errorf("α=%g dropped view %s selected at a smaller α", alpha, name)
				}
			}
		}
		prev = cur
	}
}

// The exact evaluator is monotone: supersets of views never increase the
// workload time.
func TestEvaluateTimeMonotoneInViewSet(t *testing.T) {
	ev, cands := fixture(t, 10)
	var pts []lattice.Point
	prevTime := time.Duration(1<<62 - 1)
	for _, c := range cands {
		pts = append(pts, c.Point)
		tm, _, err := ev.Evaluate(pts)
		if err != nil {
			t.Fatal(err)
		}
		if tm > prevTime {
			t.Errorf("adding %v increased time to %v", ev.Est.Lat.Name(c.Point), tm)
		}
		prevTime = tm
	}
}

// MV1 budget monotonicity: a larger budget never yields a slower selection.
func TestMV1MonotoneInBudget(t *testing.T) {
	ev, cands := fixture(t, 10)
	_, baseBill, err := ev.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := time.Duration(1<<62 - 1)
	for _, extra := range []float64{0, 0.25, 0.5, 1, 2, 4} {
		budget := baseBill.Total().Add(money.FromDollars(extra))
		sel, err := ev.SolveMV1(cands, budget)
		if err != nil {
			t.Fatal(err)
		}
		if !sel.Feasible {
			t.Fatalf("budget %v infeasible", budget)
		}
		if sel.Time > prev+time.Second {
			t.Errorf("budget +$%.2f slowed the selection: %v after %v", extra, sel.Time, prev)
		}
		if sel.Time < prev {
			prev = sel.Time
		}
	}
}

// MV2 limit monotonicity: a tighter limit never yields a cheaper bill
// (among feasible selections).
func TestMV2MonotoneInLimit(t *testing.T) {
	ev, cands := fixture(t, 10)
	baseT := ev.Est.WorkloadTime(ev.W, nil)
	type point struct {
		frac float64
		cost float64
	}
	var pts []point
	for _, frac := range []float64{0.95, 0.8, 0.6, 0.45} {
		limit := time.Duration(float64(baseT) * frac)
		sel, err := ev.SolveMV2(cands, limit)
		if err != nil {
			t.Fatal(err)
		}
		if !sel.Feasible {
			continue
		}
		pts = append(pts, point{frac, sel.Bill.Total().Dollars()})
	}
	if len(pts) < 2 {
		t.Skip("not enough feasible limits to compare")
	}
	for i := 1; i < len(pts); i++ {
		// Allow a small tolerance: the DP scales gains, so equal-cost plans
		// can flip between near-identical view subsets.
		if pts[i].cost < pts[i-1].cost*0.99 {
			t.Errorf("tighter limit (%.2f×) got cheaper: $%.4f after $%.4f",
				pts[i].frac, pts[i].cost, pts[i-1].cost)
		}
	}
}

// The bill of any selection is internally consistent: total = parts.
func TestBillDecompositionConsistent(t *testing.T) {
	ev, cands := fixture(t, 5)
	sel, err := ev.SolveMV3(cands, 0.5, RawTradeoff)
	if err != nil {
		t.Fatal(err)
	}
	b := sel.Bill
	want := b.Compute.Processing.
		Add(b.Compute.Maintenance).
		Add(b.Compute.Materialization).
		Add(b.Storage).
		Add(b.Transfer)
	if b.Total() != want {
		t.Errorf("bill total %v != sum of parts %v", b.Total(), want)
	}
}

// Item cost deltas are CONSERVATIVE bounds on the exact single-view
// deltas: the assignment model credits each query to only its single best
// candidate, while the exact evaluator credits a lone view with every
// query it answers. So exact Δ ≤ linear Δ (up to billing rounding) — the
// knapsack never overpromises savings.
func TestItemDeltasAreConservative(t *testing.T) {
	ev, cands := fixture(t, 10)
	items, err := ev.BuildItems(cands)
	if err != nil {
		t.Fatal(err)
	}
	_, baseBill, err := ev.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		_, bill, err := ev.Evaluate([]lattice.Point{it.Cand.Point})
		if err != nil {
			t.Fatal(err)
		}
		exact := bill.Total().Sub(baseBill.Total()).Dollars()
		linear := it.CostDelta.Dollars()
		// Per-minute rounding envelope on a 5-instance fleet: a few cents.
		if exact > linear+0.10 {
			t.Errorf("view %v: exact Δ$%.4f exceeds linear bound Δ$%.4f",
				ev.Est.Lat.Name(it.Cand.Point), exact, linear)
		}
	}
}

// The exact-marginal greedy sees synergies the item knapsack cannot: it
// must match or beat the DP, and come close to the exhaustive oracle.
func TestExactGreedyClosesOracleGap(t *testing.T) {
	ev, cands := fixture(t, 10)
	if len(cands) > 8 {
		cands = cands[:8]
	}
	_, baseBill, err := ev.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := baseBill.Total().Add(money.FromDollars(1))

	dp, err := ev.SolveMV1(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := ev.SolveExactGreedyMV1(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !eg.Feasible || eg.Bill.Total() > budget {
		t.Fatalf("exact greedy violated the budget: %v > %v", eg.Bill.Total(), budget)
	}
	if eg.Time > dp.Time {
		t.Errorf("exact greedy (%v) worse than item knapsack (%v)", eg.Time, dp.Time)
	}
	oracle, err := ev.SolveExhaustive(cands,
		func(tm time.Duration, _ costmodel.Bill) float64 { return tm.Hours() },
		func(_ time.Duration, b costmodel.Bill) bool { return b.Total() <= budget },
	)
	if err != nil {
		t.Fatal(err)
	}
	baseT := ev.Est.WorkloadTime(ev.W, nil)
	oracleGain := float64(baseT - oracle.Time)
	egGain := float64(baseT - eg.Time)
	if oracleGain > 0 && egGain < 0.9*oracleGain {
		t.Errorf("exact greedy gain %v < 90%% of oracle gain %v",
			time.Duration(egGain), time.Duration(oracleGain))
	}
}

// Exact greedy under an infeasible budget returns the no-view selection.
func TestExactGreedyInfeasibleBudget(t *testing.T) {
	ev, cands := fixture(t, 3)
	sel, err := ev.SolveExactGreedyMV1(cands, money.FromDollars(0.0001))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Feasible || len(sel.Points) != 0 {
		t.Errorf("micro-budget selection: feasible=%v points=%d", sel.Feasible, len(sel.Points))
	}
}
