package optimizer

import (
	"math/rand"
	"testing"

	"vmcloud/internal/views"
)

// FuzzIncrementalMoves drives the delta engine with arbitrary move
// sequences over fuzzer-chosen instances and checks the admissibility
// invariant after every move: incremental Score == Evaluator.Evaluate of
// the resulting subset, exactly. The byte stream doubles as the move
// script: each byte picks the candidate to flip.
func FuzzIncrementalMoves(f *testing.F) {
	f.Add(int64(1), false, []byte{0, 1, 2, 1, 0})
	f.Add(int64(42), true, []byte{11, 3, 3, 7, 9, 11, 0, 250})
	f.Add(int64(-5), true, []byte{})
	f.Fuzz(func(t *testing.T, seed int64, deferredPolicy bool, moves []byte) {
		if len(moves) > 128 {
			moves = moves[:128]
		}
		policy := views.ImmediateMaintenance
		if deferredPolicy {
			policy = views.DeferredMaintenance
		}
		rng := rand.New(rand.NewSource(seed))
		ev, cands := incrementalFixture(t, rng, policy)
		inc, err := NewIncrementalEvaluator(ev, cands)
		if err != nil {
			t.Fatal(err)
		}
		sel := make([]bool, len(cands))
		for step, b := range moves {
			i := int(b) % len(cands)
			if sel[i] {
				inc.Drop(i)
			} else {
				inc.Add(i)
			}
			sel[i] = !sel[i]
			gotT, gotBill, err := inc.Score()
			if err != nil {
				t.Fatal(err)
			}
			wantT, wantBill, err := ev.Evaluate(selectedPoints(cands, sel))
			if err != nil {
				t.Fatal(err)
			}
			if gotT != wantT || gotBill != wantBill {
				t.Fatalf("step %d (flip %d) sel %v:\nincremental (%v, %+v)\nexact       (%v, %+v)",
					step, i, sel, gotT, gotBill, wantT, wantBill)
			}
		}
	})
}
