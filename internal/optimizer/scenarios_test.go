package optimizer

import (
	"testing"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// fixture reproduces the paper's experimental setting analytically:
// a 10 GB sales dataset on a 5-instance cluster, n-query workload run
// daily, exact (sub-hour) billing so small dollar differences register.
func fixture(t testing.TB, nQueries int) (*Evaluator, []views.Candidate) {
	t.Helper()
	l, err := lattice.New(schema.Sales(), 200_000_000) // ≈10 GB at 50 B/row
	if err != nil {
		t.Fatal(err)
	}
	prov := pricing.AWS2012()
	prov.Compute.Granularity = units.BillPerMinute
	cl, err := cluster.New(prov, "small", 5)
	if err != nil {
		t.Fatal(err)
	}
	cl.JobOverhead = 2 * time.Minute
	est := views.NewEstimator(l, cl)
	w, err := workload.Sales(l, nQueries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30 // daily
	}
	egress, err := w.ResultBytes(l)
	if err != nil {
		t.Fatal(err)
	}
	base := costmodel.Plan{
		Cluster:       cl,
		Months:        1,
		DatasetSize:   10 * units.GB,
		MonthlyEgress: egress,
	}
	ev, err := NewEvaluator(est, w, base)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := views.GenerateCandidates(l, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	return ev, cands
}

func TestNewEvaluatorErrors(t *testing.T) {
	ev, _ := fixture(t, 3)
	if _, err := NewEvaluator(nil, ev.W, ev.Base); err == nil {
		t.Error("nil estimator accepted")
	}
	if _, err := NewEvaluator(ev.Est, workload.Workload{}, ev.Base); err == nil {
		t.Error("empty workload accepted")
	}
	bad := ev.Base
	bad.Months = -1
	if _, err := NewEvaluator(ev.Est, ev.W, bad); err == nil {
		t.Error("bad plan accepted")
	}
}

func TestBuildItems(t *testing.T) {
	ev, cands := fixture(t, 10)
	items, err := ev.BuildItems(cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(cands) {
		t.Fatalf("items = %d, want %d", len(items), len(cands))
	}
	var anySaving bool
	var totalSaved time.Duration
	for _, it := range items {
		if it.TimeSaved < 0 {
			t.Errorf("item %v has negative saving", it.Cand.Point)
		}
		totalSaved += it.TimeSaved
		if it.TimeSaved > 0 {
			anySaving = true
		}
	}
	if !anySaving {
		t.Error("no item saves time")
	}
	// Assignment-based savings cannot exceed the true all-views saving.
	baseT := ev.Est.WorkloadTime(ev.W, nil)
	allT := ev.Est.WorkloadTime(ev.W, views.Points(cands))
	if totalSaved > baseT-allT {
		t.Errorf("sum of item savings %v exceeds exact all-view saving %v", totalSaved, baseT-allT)
	}
	if out, err := ev.BuildItems(nil); err != nil || out != nil {
		t.Errorf("BuildItems(nil) = %v, %v", out, err)
	}
}

func TestSolveMV1ImprovesTimeWithinBudget(t *testing.T) {
	ev, cands := fixture(t, 10)
	_, baseBill, err := ev.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	baseT := ev.Est.WorkloadTime(ev.W, nil)
	budget := baseBill.Total() // the paper's comparison: same budget as without views
	sel, err := ev.SolveMV1(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Feasible {
		t.Fatalf("selection infeasible at budget %v (bill %v)", budget, sel.Bill.Total())
	}
	if sel.Bill.Total() > budget {
		t.Errorf("bill %v exceeds budget %v", sel.Bill.Total(), budget)
	}
	if len(sel.Points) == 0 {
		t.Fatal("no views selected despite budget headroom")
	}
	if sel.Time >= baseT {
		t.Errorf("time %v not improved from %v", sel.Time, baseT)
	}
}

func TestSolveMV1InfeasibleBudget(t *testing.T) {
	ev, cands := fixture(t, 3)
	sel, err := ev.SolveMV1(cands, money.FromDollars(0.000001))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Feasible {
		t.Error("micro-budget reported feasible")
	}
	if len(sel.Points) != 0 {
		t.Error("views selected under infeasible budget")
	}
}

func TestSolveMV1RespectsTightBudget(t *testing.T) {
	ev, cands := fixture(t, 10)
	_, baseBill, _ := ev.Evaluate(nil)
	// A hair above baseline: can afford little.
	budget := baseBill.Total().Add(money.FromDollars(0.10))
	sel, err := ev.SolveMV1(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Feasible && sel.Bill.Total() > budget {
		t.Errorf("bill %v exceeds tight budget %v", sel.Bill.Total(), budget)
	}
}

func TestSolveMV1AgainstExhaustiveOracle(t *testing.T) {
	ev, cands := fixture(t, 10)
	if len(cands) > 8 {
		cands = cands[:8]
	}
	_, baseBill, _ := ev.Evaluate(nil)
	budget := baseBill.Total().Add(money.FromDollars(1))
	dp, err := ev.SolveMV1(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ev.SolveExhaustive(cands,
		func(tm time.Duration, _ costmodel.Bill) float64 { return tm.Hours() },
		func(_ time.Duration, b costmodel.Bill) bool { return b.Total() <= budget },
	)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.Feasible {
		t.Fatal("oracle found no feasible subset although no-views is feasible")
	}
	if dp.Time < oracle.Time {
		t.Errorf("knapsack time %v beats the exhaustive optimum %v — oracle bug", dp.Time, oracle.Time)
	}
	// The linearized knapsack should land within 25% of the true optimum's
	// improvement on this instance.
	baseT := ev.Est.WorkloadTime(ev.W, nil)
	oracleGain := float64(baseT - oracle.Time)
	dpGain := float64(baseT - dp.Time)
	if oracleGain > 0 && dpGain < 0.75*oracleGain {
		t.Errorf("knapsack gain %v < 75%% of oracle gain %v", time.Duration(dpGain), time.Duration(oracleGain))
	}
}

func TestSolveMV2MeetsTimeLimit(t *testing.T) {
	ev, cands := fixture(t, 10)
	baseT := ev.Est.WorkloadTime(ev.W, nil)
	limit := baseT / 2
	sel, err := ev.SolveMV2(cands, limit)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Feasible {
		t.Fatalf("limit %v not met (time %v) though views can halve the workload", limit, sel.Time)
	}
	if sel.Time > limit {
		t.Errorf("time %v exceeds limit %v", sel.Time, limit)
	}
}

func TestSolveMV2UnreachableLimit(t *testing.T) {
	ev, cands := fixture(t, 10)
	sel, err := ev.SolveMV2(cands, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Feasible {
		t.Error("1-second limit reported feasible")
	}
	if len(sel.Points) == 0 {
		t.Error("best-effort selection should still materialize helpful views")
	}
}

func TestSolveMV2AgainstExhaustiveOracle(t *testing.T) {
	ev, cands := fixture(t, 5)
	baseT := ev.Est.WorkloadTime(ev.W, nil)
	limit := baseT * 6 / 10
	dp, err := ev.SolveMV2(cands, limit)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ev.SolveExhaustive(cands,
		func(_ time.Duration, b costmodel.Bill) float64 { return b.Total().Dollars() },
		func(tm time.Duration, _ costmodel.Bill) bool { return tm <= limit },
	)
	if err != nil {
		t.Fatal(err)
	}
	if !dp.Feasible || !oracle.Feasible {
		t.Fatalf("feasibility: dp=%v oracle=%v", dp.Feasible, oracle.Feasible)
	}
	if dp.Bill.Total() < oracle.Bill.Total() {
		t.Errorf("dp bill %v beats oracle %v — oracle bug", dp.Bill.Total(), oracle.Bill.Total())
	}
	// Within 25% of the optimum cost.
	if float64(dp.Bill.Total()) > 1.25*float64(oracle.Bill.Total()) {
		t.Errorf("dp bill %v > 125%% of oracle %v", dp.Bill.Total(), oracle.Bill.Total())
	}
}

func TestSolveMV3AlphaExtremes(t *testing.T) {
	ev, cands := fixture(t, 10)
	// α=1: only time matters; every time-saving view should be taken.
	selT, err := ev.SolveMV3(cands, 1, RawTradeoff)
	if err != nil {
		t.Fatal(err)
	}
	items, _ := ev.BuildItems(cands)
	nSaving := 0
	for _, it := range items {
		if it.TimeSaved > 0 {
			nSaving++
		}
	}
	if len(selT.Points) != nSaving {
		t.Errorf("α=1 picked %d views, want all %d time-savers", len(selT.Points), nSaving)
	}
	// α=0: only cost matters; only self-paying views should be taken.
	selC, err := ev.SolveMV3(cands, 0, RawTradeoff)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range selC.Points {
		for _, it := range items {
			if it.Cand.Point.Equal(p) && it.CostDelta >= 0 {
				t.Errorf("α=0 picked non-self-paying view %v (Δ$=%v)", p, it.CostDelta)
			}
		}
	}
	if _, err := ev.SolveMV3(cands, 1.5, RawTradeoff); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestSolveMV3ImprovesObjective(t *testing.T) {
	ev, cands := fixture(t, 10)
	baseT, baseBill, _ := ev.Evaluate(nil)
	for _, mode := range []TradeoffMode{RawTradeoff, NormalizedTradeoff} {
		for _, alpha := range []float64{0.3, 0.65, 0.7} {
			sel, err := ev.SolveMV3(cands, alpha, mode)
			if err != nil {
				t.Fatal(err)
			}
			with := Objective(alpha, sel.Time, sel.Bill, mode, baseT, baseBill)
			without := Objective(alpha, baseT, baseBill, mode, baseT, baseBill)
			if with > without {
				t.Errorf("mode %v α=%g: objective %g worse than baseline %g", mode, alpha, with, without)
			}
		}
	}
}

func TestSolveExhaustiveGuards(t *testing.T) {
	ev, cands := fixture(t, 3)
	big := make([]views.Candidate, 21)
	for i := range big {
		big[i] = cands[0]
	}
	if _, err := ev.SolveExhaustive(big, func(time.Duration, costmodel.Bill) float64 { return 0 }, nil); err == nil {
		t.Error("21 candidates accepted")
	}
	if _, err := ev.SolveExhaustive(cands, nil, nil); err == nil {
		t.Error("nil objective accepted")
	}
}

func TestSolveGreedyMV1(t *testing.T) {
	ev, cands := fixture(t, 10)
	_, baseBill, _ := ev.Evaluate(nil)
	budget := baseBill.Total().Add(money.FromDollars(0.5))
	greedy, err := ev.SolveGreedyMV1(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !greedy.Feasible {
		t.Fatal("greedy infeasible with headroom")
	}
	if greedy.Bill.Total() > budget {
		t.Errorf("greedy bill %v exceeds budget", greedy.Bill.Total())
	}
	dp, err := ev.SolveMV1(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	// The DP should never be beaten badly by greedy; both must be feasible.
	if dp.Feasible && greedy.Time < dp.Time*9/10 {
		t.Errorf("greedy time %v much better than dp %v — dp regression", greedy.Time, dp.Time)
	}
}

func TestEvaluateConsistency(t *testing.T) {
	ev, cands := fixture(t, 5)
	pts := views.Points(cands[:2])
	t1, b1, err := ev.Evaluate(pts)
	if err != nil {
		t.Fatal(err)
	}
	t2, b2, err := ev.Evaluate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 || b1.Total() != b2.Total() {
		t.Error("Evaluate is not deterministic")
	}
	// More views never increase exact workload time.
	t0, _, _ := ev.Evaluate(nil)
	if t1 > t0 {
		t.Errorf("views increased time: %v > %v", t1, t0)
	}
}
