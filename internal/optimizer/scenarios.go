package optimizer

import (
	"fmt"
	"sort"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// Evaluator prices any subset of candidate views exactly: workload time via
// cheapest-answering routing and the full tiered/rounded bill via the cost
// model. It is the ground truth the knapsack approximations are checked
// against, and what final selections are re-priced with.
type Evaluator struct {
	Est *views.Estimator
	W   workload.Workload
	// Base is the plan template: cluster, months, dataset size, egress.
	// Its view-related fields are overwritten per evaluation.
	Base costmodel.Plan
}

// NewEvaluator validates and builds an evaluator.
func NewEvaluator(est *views.Estimator, w workload.Workload, base costmodel.Plan) (*Evaluator, error) {
	if est == nil || est.Lat == nil || est.Cl == nil {
		return nil, fmt.Errorf("optimizer: estimator with lattice and cluster required")
	}
	if err := w.Validate(est.Lat); err != nil {
		return nil, err
	}
	if base.Cluster == nil {
		base.Cluster = est.Cl
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	return &Evaluator{Est: est, W: w, Base: base}, nil
}

// Evaluate returns the exact monthly workload time and period bill for
// materializing exactly the given points.
func (ev *Evaluator) Evaluate(points []lattice.Point) (time.Duration, costmodel.Bill, error) {
	proc := ev.Est.WorkloadTime(ev.W, points)
	maint := ev.Est.MaintenanceTimeForWorkload(points, ev.W)
	mat := ev.Est.TotalMaterializationTime(points)
	size := ev.Est.ViewsSize(points)
	plan := ev.Base.WithViews(size, proc, maint, mat)
	bill, err := plan.Bill()
	if err != nil {
		return 0, costmodel.Bill{}, err
	}
	return proc, bill, nil
}

// Item is one candidate view with its linearized marginal effects, the
// knapsack weights of Section 5.2. TimeSaved uses a query-to-view
// assignment (each query credits only its single best candidate) so that
// item effects add up without double counting; CostDelta linearizes
// billing (exact hours, slab storage rate at the dataset volume) — the
// final selection is always re-priced exactly by the Evaluator.
type Item struct {
	Cand views.Candidate
	// TimeSaved is the monthly workload time this view saves (≥ 0).
	TimeSaved time.Duration
	// CostDelta is the period cost change if only this view is added:
	// storage + maintenance + amortized materialization − compute savings.
	// Negative means the view pays for itself.
	CostDelta money.Money
}

// BuildItems computes the knapsack items for a candidate set.
func (ev *Evaluator) BuildItems(cands []views.Candidate) ([]Item, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	l := ev.Est.Lat
	// Assignment: each query credits its best candidate (fewest rows among
	// answering candidates that beat the base).
	baseNode, err := l.Node(l.Base())
	if err != nil {
		return nil, err
	}
	assignedSaving := make([]time.Duration, len(cands))
	for _, q := range ev.W.Queries {
		best := -1
		bestRows := baseNode.Rows
		for i, c := range cands {
			if !l.CanAnswer(c.Point, q.Point) {
				continue
			}
			if c.Rows < bestRows {
				best, bestRows = i, c.Rows
			}
		}
		if best < 0 {
			continue
		}
		tBase := ev.Est.QueryTime(q.Point, nil)
		tView := ev.Est.QueryTime(q.Point, []lattice.Point{cands[best].Point})
		if tView < tBase {
			assignedSaving[best] += time.Duration(int64(q.Frequency)) * (tBase - tView)
		}
	}

	months := ev.Base.Months
	hourly := ev.Base.Cluster.HourlyRate() // $ per cluster-hour, exact
	storageRate := ev.Base.Cluster.Provider.Storage.Table.RateFor(ev.Base.DatasetSize)
	items := make([]Item, len(cands))
	for i, c := range cands {
		maint := ev.Est.MaintenanceTime(c.Point)
		mat := ev.Est.MaterializationTime(c.Point)
		cost := storageRate.MulFloat(c.Size.GBs() * months)
		cost = cost.Add(hourly.MulFloat(maint.Hours() * months))
		cost = cost.Add(hourly.MulFloat(mat.Hours()))
		cost = cost.Sub(hourly.MulFloat(assignedSaving[i].Hours() * months))
		items[i] = Item{Cand: c, TimeSaved: assignedSaving[i], CostDelta: cost}
	}
	return items, nil
}

// Selection is a solved scenario: the chosen views with their exact
// re-priced time and bill.
type Selection struct {
	// Points are the selected views.
	Points []lattice.Point
	// Time is the exact monthly workload processing time (TprocessingQ).
	Time time.Duration
	// Bill is the exact period bill.
	Bill costmodel.Bill
	// Feasible reports whether the scenario's constraint is met.
	Feasible bool
	// Strategy names the solver that produced the selection.
	Strategy string
	// Degraded marks a selection returned early because the solver's
	// deadline expired: still bit-valid and exactly priced, but the
	// search stopped at its best incumbent instead of running to
	// convergence. Budget exhaustion does NOT set this — only a
	// wall-clock deadline does, so degraded results are the only
	// timing-dependent ones.
	Degraded bool
}

func (ev *Evaluator) finish(points []lattice.Point, strategy string, feasible func(time.Duration, costmodel.Bill) bool) (Selection, error) {
	t, bill, err := ev.Evaluate(points)
	if err != nil {
		return Selection{}, err
	}
	sel := Selection{Points: points, Time: t, Bill: bill, Strategy: strategy}
	if feasible != nil {
		sel.Feasible = feasible(t, bill)
	} else {
		sel.Feasible = true
	}
	return sel, nil
}

// SolveMV1 implements scenario MV1 (Formula 13): minimize workload time
// subject to total cost ≤ budget, via 0/1 knapsack DP on the items.
// Views that pay for themselves (CostDelta ≤ 0) are always taken; the
// budget slack left by the no-view baseline is spent on the rest. If the
// linearized pick overshoots the exact budget, the lowest-density views
// are dropped until the exact bill fits.
func (ev *Evaluator) SolveMV1(cands []views.Candidate, budget money.Money) (Selection, error) {
	feasible := func(_ time.Duration, b costmodel.Bill) bool { return b.Total() <= budget }
	_, baseBill, err := ev.Evaluate(nil)
	if err != nil {
		return Selection{}, err
	}
	if baseBill.Total() > budget {
		// Even without views the budget does not cover the workload.
		return ev.finish(nil, "mv1-knapsack", feasible)
	}
	items, err := ev.BuildItems(cands)
	if err != nil {
		return Selection{}, err
	}
	slack := budget.Sub(baseBill.Total())
	var chosen []Item
	var payIdx []int
	for _, it := range items {
		if it.CostDelta <= 0 && it.TimeSaved > 0 {
			chosen = append(chosen, it)
			slack = slack.Add(it.CostDelta.Neg())
		}
	}
	var values, weights []int64
	for i, it := range items {
		if it.CostDelta > 0 && it.TimeSaved > 0 {
			payIdx = append(payIdx, i)
			values = append(values, int64(it.TimeSaved))
			weights = append(weights, it.CostDelta.Micros())
		}
	}
	picked, err := Knapsack01(values, weights, slack.Micros())
	if err != nil {
		return Selection{}, err
	}
	for _, k := range picked {
		chosen = append(chosen, items[payIdx[k]])
	}
	// Exact repair: drop the worst time-per-dollar views while over budget.
	sel, err := ev.finishItems(chosen, "mv1-knapsack", feasible)
	if err != nil {
		return Selection{}, err
	}
	for !sel.Feasible && len(chosen) > 0 {
		sort.Slice(chosen, func(a, b int) bool {
			return density(chosen[a]) < density(chosen[b])
		})
		chosen = chosen[1:]
		sel, err = ev.finishItems(chosen, "mv1-knapsack", feasible)
		if err != nil {
			return Selection{}, err
		}
	}
	return sel, nil
}

func density(it Item) float64 {
	if it.CostDelta <= 0 {
		return float64(it.TimeSaved) + 1e18 // free views sort last (never dropped first)
	}
	//mvlint:allow moneyfloat -- score-space repair ranking, not billing arithmetic; goldens pin these exact floats
	return float64(it.TimeSaved) / float64(it.CostDelta)
}

func (ev *Evaluator) finishItems(items []Item, strategy string, feasible func(time.Duration, costmodel.Bill) bool) (Selection, error) {
	pts := make([]lattice.Point, len(items))
	for i, it := range items {
		pts[i] = it.Cand.Point
	}
	return ev.finish(pts, strategy, feasible)
}

// SolveMV2 implements scenario MV2 (Formula 14): minimize total cost
// subject to workload time ≤ limit. Self-paying views are always taken;
// if the time limit is still exceeded, a min-cost-coverage DP buys the
// cheapest additional time savings.
func (ev *Evaluator) SolveMV2(cands []views.Candidate, limit time.Duration) (Selection, error) {
	feasible := func(t time.Duration, _ costmodel.Bill) bool { return t <= limit }
	items, err := ev.BuildItems(cands)
	if err != nil {
		return Selection{}, err
	}
	baseTime := ev.Est.WorkloadTime(ev.W, nil)

	var chosen []Item
	saved := time.Duration(0)
	for _, it := range items {
		if it.CostDelta <= 0 && it.TimeSaved > 0 {
			chosen = append(chosen, it)
			saved += it.TimeSaved
		}
	}
	need := baseTime - limit - saved
	if need > 0 {
		var costs, gains []int64
		var idx []int
		for i, it := range items {
			if it.CostDelta > 0 && it.TimeSaved > 0 {
				idx = append(idx, i)
				costs = append(costs, it.CostDelta.Micros())
				gains = append(gains, int64(it.TimeSaved))
			}
		}
		picked, ok, err := MinCostCover(costs, gains, int64(need))
		if err != nil {
			return Selection{}, err
		}
		if !ok {
			// Constraint unreachable: return the best effort (all
			// time-saving views) marked infeasible.
			for _, i := range idx {
				chosen = append(chosen, items[i])
			}
			return ev.finishItems(chosen, "mv2-knapsack", feasible)
		}
		for _, k := range picked {
			chosen = append(chosen, items[idx[k]])
		}
	}
	return ev.finishItems(chosen, "mv2-knapsack", feasible)
}

// TradeoffMode selects how MV3 mixes time and cost.
type TradeoffMode int

const (
	// RawTradeoff uses Formula 15 literally: α·T[h] + (1−α)·C[$].
	RawTradeoff TradeoffMode = iota
	// NormalizedTradeoff divides T and C by their no-view baselines first,
	// making α unit-free.
	NormalizedTradeoff
)

// SolveMV3 implements scenario MV3 (Formula 15): minimize
// α·TprocessingQ + (1−α)·C. With an additive objective and no constraint,
// the optimum over the linearized items is to take every view whose
// marginal objective change is negative.
func (ev *Evaluator) SolveMV3(cands []views.Candidate, alpha float64, mode TradeoffMode) (Selection, error) {
	if alpha < 0 || alpha > 1 {
		return Selection{}, fmt.Errorf("optimizer: alpha %g out of [0,1]", alpha)
	}
	items, err := ev.BuildItems(cands)
	if err != nil {
		return Selection{}, err
	}
	tScale, cScale := 1.0, 1.0
	if mode == NormalizedTradeoff {
		t0, b0, err := ev.Evaluate(nil)
		if err != nil {
			return Selection{}, err
		}
		if t0 > 0 {
			tScale = 1 / t0.Hours()
		}
		if b0.Total() > 0 {
			cScale = 1 / b0.Total().Dollars()
		}
	}
	var chosen []Item
	for _, it := range items {
		delta := alpha*(-it.TimeSaved.Hours())*tScale + (1-alpha)*it.CostDelta.Dollars()*cScale
		if delta < 0 {
			chosen = append(chosen, it)
		}
	}
	return ev.finishItems(chosen, "mv3-marginal", nil)
}

// Objective computes the MV3 objective value for a given time and bill.
func Objective(alpha float64, t time.Duration, bill costmodel.Bill, mode TradeoffMode, baseT time.Duration, baseBill costmodel.Bill) float64 {
	tv, cv := t.Hours(), bill.Total().Dollars()
	if mode == NormalizedTradeoff {
		if baseT > 0 {
			tv /= baseT.Hours()
		}
		if baseBill.Total() > 0 {
			cv /= baseBill.Total().Dollars()
		}
	}
	return alpha*tv + (1-alpha)*cv
}

// SolveExhaustive enumerates every subset of candidates (n ≤ 20), prices
// each exactly, and returns the best selection under the given objective
// among those satisfying the constraint. If no subset is feasible the
// best-objective infeasible subset is returned with Feasible=false.
// It is the oracle used to validate the knapsack solvers.
func (ev *Evaluator) SolveExhaustive(
	cands []views.Candidate,
	objective func(time.Duration, costmodel.Bill) float64,
	constraint func(time.Duration, costmodel.Bill) bool,
) (Selection, error) {
	if len(cands) > 20 {
		return Selection{}, fmt.Errorf("optimizer: exhaustive search over %d candidates refused (max 20)", len(cands))
	}
	if objective == nil {
		return Selection{}, fmt.Errorf("optimizer: objective required")
	}
	var (
		bestFeasible   *Selection
		bestInfeasible *Selection
		bestFeasObj    float64
		bestInfObj     float64
	)
	n := len(cands)
	pts := make([]lattice.Point, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		pts = pts[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				pts = append(pts, cands[i].Point)
			}
		}
		t, bill, err := ev.Evaluate(pts)
		if err != nil {
			return Selection{}, err
		}
		obj := objective(t, bill)
		ok := constraint == nil || constraint(t, bill)
		sel := Selection{
			Points:   append([]lattice.Point(nil), pts...),
			Time:     t,
			Bill:     bill,
			Feasible: ok,
			Strategy: "exhaustive",
		}
		if ok {
			if bestFeasible == nil || obj < bestFeasObj {
				s := sel
				bestFeasible, bestFeasObj = &s, obj
			}
		} else if bestInfeasible == nil || obj < bestInfObj {
			s := sel
			bestInfeasible, bestInfObj = &s, obj
		}
	}
	if bestFeasible != nil {
		return *bestFeasible, nil
	}
	return *bestInfeasible, nil
}

// SolveExactGreedyMV1 greedily grows the view set using the EXACT
// evaluator at every step: each round it adds the candidate with the best
// marginal time improvement whose exact bill still fits the budget. It
// costs O(n²) exact evaluations but, unlike the knapsack over linearized
// items, it sees view synergies (a view helping queries another selected
// view also helps, tier boundaries, billing rounding). In practice it
// closes most of the gap to the exhaustive oracle.
func (ev *Evaluator) SolveExactGreedyMV1(cands []views.Candidate, budget money.Money) (Selection, error) {
	feasible := func(_ time.Duration, b costmodel.Bill) bool { return b.Total() <= budget }
	cur, err := ev.finish(nil, "mv1-exact-greedy", feasible)
	if err != nil {
		return Selection{}, err
	}
	if !cur.Feasible {
		return cur, nil
	}
	remaining := append([]views.Candidate(nil), cands...)
	chosen := []lattice.Point{}
	for len(remaining) > 0 {
		bestIdx := -1
		var best Selection
		for i, c := range remaining {
			trial := append(append([]lattice.Point(nil), chosen...), c.Point)
			sel, err := ev.finish(trial, "mv1-exact-greedy", feasible)
			if err != nil {
				return Selection{}, err
			}
			if !sel.Feasible || sel.Time >= cur.Time {
				continue
			}
			if bestIdx == -1 || sel.Time < best.Time {
				bestIdx, best = i, sel
			}
		}
		if bestIdx == -1 {
			break
		}
		chosen = append(chosen, remaining[bestIdx].Point)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		cur = best
	}
	return cur, nil
}

// SolveGreedyMV1 is the heuristic baseline for MV1: repeatedly take the
// view with the best time-saved-per-dollar density that still fits the
// exact budget.
func (ev *Evaluator) SolveGreedyMV1(cands []views.Candidate, budget money.Money) (Selection, error) {
	feasible := func(_ time.Duration, b costmodel.Bill) bool { return b.Total() <= budget }
	items, err := ev.BuildItems(cands)
	if err != nil {
		return Selection{}, err
	}
	sort.Slice(items, func(a, b int) bool { return density(items[a]) > density(items[b]) })
	var chosen []Item
	cur, err := ev.finishItems(chosen, "mv1-greedy", feasible)
	if err != nil {
		return Selection{}, err
	}
	for _, it := range items {
		if it.TimeSaved <= 0 {
			continue
		}
		trial := append(append([]Item(nil), chosen...), it)
		sel, err := ev.finishItems(trial, "mv1-greedy", feasible)
		if err != nil {
			return Selection{}, err
		}
		if sel.Feasible && sel.Time <= cur.Time {
			chosen, cur = trial, sel
		}
	}
	return cur, nil
}
