package optimizer

import (
	"fmt"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/obs"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
)

// IncrementalEvaluator prices candidate subsets by delta evaluation: the
// candidate set and workload are pinned once (in a ComparisonKernel), and
// every Add/Drop move updates running aggregates in O(affected queries)
// instead of the Evaluator's O(|workload| × |selection|) full
// recomputation. Score() rebuilds the exact tiered bill from the
// aggregates via the same Plan.Bill the Evaluator uses, so an
// IncrementalEvaluator state is bit-equal — time, bill, size — to
// Evaluator.Evaluate of the same subset (the property tests in
// incremental_test.go enforce this on random lattices and move
// sequences).
//
// Invariants maintained across moves:
//
//   - assigned[q] is the candidate index whose view answers query q under
//     cheapest-answering routing (-1 = base table), with the Evaluator's
//     exact tie rule: fewest rows wins, ties keep the lowest candidate
//     index, and a view never beats the base without strictly fewer rows.
//   - proc = Σ_q freq_q × TimeForJob(rows(assigned[q]))   (Formula 9)
//   - sizeSum/matSum = Σ over selected views               (Formula 7, §4.3)
//   - maintSum matches the estimator's maintenance policy: immediate sums
//     Formula 11 over selected views; deferred caps each view's refresh
//     count at the executions it serves, tracked per point group.
//
// Full re-pricing still runs in exactly two places: Reset (pinning an
// arbitrary subset, used for search restarts) and the Bill arithmetic in
// Score (tier boundaries and billing rounding are global, so the exact
// bill is always recomputed from the aggregates — never linearized).
//
// The structural half (answering lists, groups, candidate scalars) lives
// in the shared ComparisonKernel; this type adds the tariff-dependent
// time scalars of one binding plus the mutable selection state, so one
// kernel can serve many evaluators — one per tariff — without re-walking
// the lattice.
type IncrementalEvaluator struct {
	ev *Evaluator
	k  *ComparisonKernel
	sessionScalars

	// Mutable state.
	selected []bool
	words    []uint64 // selection bitmap packed 64 per word (Words())
	assigned []int32  // per query: candidate index or -1 (base)
	curTerm  []time.Duration
	served   []int64 // per group: monthly executions routed to the group

	// Running aggregates.
	proc     time.Duration
	maintSum time.Duration
	matSum   time.Duration
	sizeSum  units.DataSize

	// moves counts Add/Drop calls over the engine's lifetime. A plain
	// field, not an atomic or a telemetry counter: the solvers own the
	// engine exclusively during a solve, and the search wrapper flushes
	// the delta to obs.IncrementalMoves once per solve, so the inner
	// loop's per-move cost stays a single increment.
	moves int64
}

// NewIncrementalEvaluator pins a candidate set against an evaluator: a
// one-shot ComparisonKernel build followed by Bind. Callers re-pricing
// the same problem under several tariffs should build the kernel once
// and Bind per tariff instead.
func NewIncrementalEvaluator(ev *Evaluator, cands []views.Candidate) (*IncrementalEvaluator, error) {
	if ev == nil || ev.Est == nil || ev.Est.Lat == nil {
		return nil, fmt.Errorf("optimizer: incremental evaluator needs a wired evaluator")
	}
	k, err := NewComparisonKernel(ev.Est.Lat, ev.W, cands)
	if err != nil {
		return nil, err
	}
	return k.Bind(ev)
}

// Bind derives a delta-evaluation engine for one tariff: the kernel's
// pinned structure plus this evaluator's time scalars. The evaluator
// must be wired over the kernel's lattice.
func (k *ComparisonKernel) Bind(ev *Evaluator) (*IncrementalEvaluator, error) {
	if ev == nil || ev.Est == nil || ev.Est.Lat == nil {
		return nil, fmt.Errorf("optimizer: incremental evaluator needs a wired evaluator")
	}
	if ev.Est.Lat != k.Lat {
		return nil, fmt.Errorf("optimizer: evaluator lattice differs from the kernel's")
	}
	obs.KernelRebinds.Inc()
	inc := &IncrementalEvaluator{
		ev:             ev,
		k:              k,
		sessionScalars: k.bindScalars(ev),
		selected:       make([]bool, k.n),
		words:          make([]uint64, (k.n+63)/64),
		assigned:       make([]int32, k.nq),
		curTerm:        make([]time.Duration, k.nq),
		served:         make([]int64, len(k.groupMembers)),
	}
	inc.resetEmpty()
	return inc, nil
}

// Evaluator returns the exact evaluator this engine is bound to.
func (inc *IncrementalEvaluator) Evaluator() *Evaluator { return inc.ev }

// Moves returns the lifetime Add/Drop move count. The search wrapper
// diffs it around a solve to flush the delta into obs.IncrementalMoves.
func (inc *IncrementalEvaluator) Moves() int64 { return inc.moves }

// PinnedTo reports whether this engine prices exactly the given
// evaluator and candidate set — the guard callers handing a pre-built
// engine to a solver (search.Options.Engine) are checked against, so a
// same-length but different candidate list cannot be silently priced as
// another one.
func (inc *IncrementalEvaluator) PinnedTo(ev *Evaluator, cands []views.Candidate) bool {
	if inc.ev != ev || len(cands) != inc.k.n {
		return false
	}
	for i, c := range cands {
		if c.Rows != inc.k.Cands[i].Rows || c.Size != inc.k.Cands[i].Size || !c.Point.Equal(inc.k.Cands[i].Point) {
			return false
		}
	}
	return true
}

// Len returns the pinned candidate count.
func (inc *IncrementalEvaluator) Len() int { return inc.k.n }

// Selected reports whether candidate i is in the current subset.
func (inc *IncrementalEvaluator) Selected(i int) bool { return inc.selected[i] }

// Words exposes the packed selection bitmap (64 candidates per uint64,
// candidate i at bit i%64 of word i/64). The slice is live — callers
// must copy it before mutating the evaluator further.
func (inc *IncrementalEvaluator) Words() []uint64 { return inc.words }

// resetEmpty pins the empty subset: every query runs on the base table.
func (inc *IncrementalEvaluator) resetEmpty() {
	for i := range inc.selected {
		inc.selected[i] = false
	}
	for w := range inc.words {
		inc.words[w] = 0
	}
	for g := range inc.served {
		inc.served[g] = 0
	}
	inc.proc = 0
	for q := range inc.assigned {
		inc.assigned[q] = -1
		inc.curTerm[q] = inc.qBase[q]
		inc.proc += inc.qBase[q]
	}
	inc.maintSum, inc.matSum, inc.sizeSum = 0, 0, 0
}

// Reset re-pins the evaluator to an arbitrary subset — the full
// re-pricing path (O(n + Σ answering-list lengths)), used when a search
// restarts from a new subset rather than stepping to a neighbor.
func (inc *IncrementalEvaluator) Reset(sel []bool) error {
	if len(sel) != inc.k.n {
		return fmt.Errorf("optimizer: reset with %d flags for %d candidates", len(sel), inc.k.n)
	}
	inc.resetEmpty()
	for i, on := range sel {
		if on {
			inc.Add(i)
		}
	}
	return nil
}

// Add materializes candidate i: aggregates grow by its scalars and only
// the queries i can answer are re-routed (they move to i exactly when i
// beats their current source under the tie rule).
//
//mvlint:hotpath
func (inc *IncrementalEvaluator) Add(i int) {
	if inc.selected[i] {
		return
	}
	inc.moves++
	inc.selected[i] = true
	inc.words[i>>6] |= 1 << (uint(i) & 63)
	inc.sizeSum += inc.k.size[i]
	inc.matSum += inc.mat[i]
	if !inc.deferred {
		inc.maintSum += inc.maint[i]
	} else if inc.runs > 0 {
		// A group sibling (duplicate point) may already be serving
		// queries; the new member is billed for the group's capped
		// refresh count from the moment it is selected.
		inc.maintSum += time.Duration(min64(inc.served[inc.k.group[i]], inc.runs)) * inc.perRun[i]
	}
	ri := inc.k.rows[i]
	for _, q32 := range inc.k.cand2q[i] {
		q := int(q32)
		cur := inc.assigned[q]
		if cur >= 0 {
			rc := inc.k.rows[cur]
			if ri > rc || (ri == rc && int32(i) > cur) {
				continue
			}
		}
		inc.route(q, int32(i))
	}
}

// Drop unmaterializes candidate i: only queries currently assigned to it
// are re-routed, to their cheapest remaining selected source (or base).
//
//mvlint:hotpath
func (inc *IncrementalEvaluator) Drop(i int) {
	if !inc.selected[i] {
		return
	}
	inc.moves++
	inc.selected[i] = false
	inc.words[i>>6] &^= 1 << (uint(i) & 63)
	inc.sizeSum -= inc.k.size[i]
	inc.matSum -= inc.mat[i]
	if !inc.deferred {
		inc.maintSum -= inc.maint[i]
	} else if inc.runs > 0 {
		// Shed this member's share of the group's capped refresh bill
		// before re-routing (the re-route below no longer counts i).
		inc.maintSum -= time.Duration(min64(inc.served[inc.k.group[i]], inc.runs)) * inc.perRun[i]
	}
	for _, q32 := range inc.k.cand2q[i] {
		q := int(q32)
		if inc.assigned[q] != int32(i) {
			continue
		}
		next := int32(-1)
		for idx := inc.k.qOff[q]; idx < inc.k.qOff[q+1]; idx++ {
			if c := inc.k.ansCand[idx]; inc.selected[c] {
				next = c
				break
			}
		}
		inc.route(q, next)
	}
}

// route reassigns query q to candidate to (-1 = base), updating the
// processing aggregate and the deferred-maintenance serving counters.
//
//mvlint:hotpath
func (inc *IncrementalEvaluator) route(q int, to int32) {
	from := inc.assigned[q]
	if inc.deferred && inc.runs > 0 {
		if from >= 0 {
			inc.adjustServed(int(from), -inc.k.qFreq[q])
		}
		if to >= 0 {
			inc.adjustServed(int(to), inc.k.qFreq[q])
		}
	}
	var term time.Duration
	if to < 0 {
		term = inc.qBase[q]
	} else {
		for idx := inc.k.qOff[q]; idx < inc.k.qOff[q+1]; idx++ {
			if inc.k.ansCand[idx] == to {
				term = inc.ansTerm[idx]
				break
			}
		}
	}
	inc.proc += term - inc.curTerm[q]
	inc.curTerm[q] = term
	inc.assigned[q] = to
}

// adjustServed shifts a point group's served count by delta and folds
// the capped-refresh change of every selected group member into the
// deferred maintenance aggregate. Groups almost always hold one
// candidate; duplicates of one point share a counter exactly like the
// Evaluator's per-point accounting.
//
//mvlint:hotpath
func (inc *IncrementalEvaluator) adjustServed(i int, delta int64) {
	g := inc.k.group[i]
	before := inc.served[g]
	after := before + delta
	inc.served[g] = after
	cb, ca := min64(before, inc.runs), min64(after, inc.runs)
	if cb == ca {
		return
	}
	// Capped refresh count changed: update every selected candidate in
	// the group (perRun is identical within a group).
	for _, j := range inc.k.groupMembers[g] {
		if inc.selected[j] {
			inc.maintSum += time.Duration(ca-cb) * inc.perRun[j]
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// maintenance returns TmaintenanceV for the current subset under the
// estimator's policy. In deferred mode a dropped-to-zero maintSum and
// runs<=0 mirror MaintenanceTimeForWorkload exactly.
//
//mvlint:hotpath
func (inc *IncrementalEvaluator) maintenance() time.Duration {
	if inc.deferred && inc.runs <= 0 {
		return 0
	}
	return inc.maintSum
}

// Score prices the current subset exactly: the running aggregates feed
// the same Plan.Bill the Evaluator uses (full tiered, rounded billing —
// no linearization), so the result is bit-equal to Evaluate of the same
// points.
//
//mvlint:hotpath
func (inc *IncrementalEvaluator) Score() (time.Duration, costmodel.Bill, error) {
	plan := inc.ev.Base.WithViews(inc.sizeSum, inc.proc, inc.maintenance(), inc.matSum)
	bill, err := plan.Bill()
	if err != nil {
		return 0, costmodel.Bill{}, err
	}
	return inc.proc, bill, nil
}
