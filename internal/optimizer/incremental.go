package optimizer

import (
	"fmt"
	"sort"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
)

// IncrementalEvaluator prices candidate subsets by delta evaluation: the
// candidate set and workload are pinned once, and every Add/Drop move
// updates running aggregates in O(affected queries) instead of the
// Evaluator's O(|workload| × |selection|) full recomputation. Score()
// rebuilds the exact tiered bill from the aggregates via the same
// Plan.Bill the Evaluator uses, so an IncrementalEvaluator state is
// bit-equal — time, bill, size — to Evaluator.Evaluate of the same
// subset (the property tests in incremental_test.go enforce this on
// random lattices and move sequences).
//
// Invariants maintained across moves:
//
//   - assigned[q] is the candidate index whose view answers query q under
//     cheapest-answering routing (-1 = base table), with the Evaluator's
//     exact tie rule: fewest rows wins, ties keep the lowest candidate
//     index, and a view never beats the base without strictly fewer rows.
//   - proc = Σ_q freq_q × TimeForJob(rows(assigned[q]))   (Formula 9)
//   - sizeSum/matSum = Σ over selected views               (Formula 7, §4.3)
//   - maintSum matches the estimator's maintenance policy: immediate sums
//     Formula 11 over selected views; deferred caps each view's refresh
//     count at the executions it serves, tracked per point group.
//
// Full re-pricing still runs in exactly two places: Reset (pinning an
// arbitrary subset, used for search restarts) and the Bill arithmetic in
// Score (tier boundaries and billing rounding are global, so the exact
// bill is always recomputed from the aggregates — never linearized).
type IncrementalEvaluator struct {
	ev *Evaluator
	n  int

	// Per-candidate scalars, indexed by candidate position.
	rows  []int64          // lattice scan rows of the candidate's cuboid
	size  []units.DataSize // stored size (lattice estimate, what Evaluate sums)
	maint []time.Duration  // MaintenanceTime (Formula 11 per view)
	mat   []time.Duration  // MaterializationTime (Formula 7 per view)
	// perRun is maint / MaintenanceRuns (exact: maint is built as
	// runs × perRun), used by deferred maintenance.
	perRun []time.Duration
	// group maps candidates sharing one lattice point to one served
	// counter, mirroring the Evaluator's per-point-name accounting;
	// groupMembers inverts it (almost always a single candidate).
	group        []int
	groupMembers [][]int32

	// Per-query precomputation.
	qFreq []int64
	qBase []time.Duration // freq × TimeForJob(base size)
	// qAns[q] lists the candidates that can answer q with strictly fewer
	// rows than the base, sorted by (rows, candidate index) — scan order
	// equals the Evaluator's cheapest-answering tie-break.
	qAns [][]ansEntry
	// cand2q[q-lists per candidate]: which queries each candidate can
	// answer (the "affected queries" of a move).
	cand2q [][]int32

	// Mutable state.
	selected []bool
	words    []uint64 // selection bitmap packed 64 per word (Words())
	assigned []int32  // per query: candidate index or -1 (base)
	curTerm  []time.Duration
	served   []int64 // per group: monthly executions routed to the group
	deferred bool
	runs     int64

	// Running aggregates.
	proc     time.Duration
	maintSum time.Duration
	matSum   time.Duration
	sizeSum  units.DataSize
}

// ansEntry is one answering candidate of a query with its precomputed
// frequency-weighted scan term.
type ansEntry struct {
	cand int32
	rows int64
	term time.Duration // freq × TimeForJob(candidate size)
}

// NewIncrementalEvaluator pins a candidate set against an evaluator. The
// candidate points are validated against the lattice; everything the
// per-move updates need is precomputed here, once.
func NewIncrementalEvaluator(ev *Evaluator, cands []views.Candidate) (*IncrementalEvaluator, error) {
	if ev == nil || ev.Est == nil || ev.Est.Lat == nil {
		return nil, fmt.Errorf("optimizer: incremental evaluator needs a wired evaluator")
	}
	l := ev.Est.Lat
	n := len(cands)
	inc := &IncrementalEvaluator{
		ev:       ev,
		n:        n,
		rows:     make([]int64, n),
		size:     make([]units.DataSize, n),
		maint:    make([]time.Duration, n),
		mat:      make([]time.Duration, n),
		perRun:   make([]time.Duration, n),
		group:    make([]int, n),
		selected: make([]bool, n),
		words:    make([]uint64, (n+63)/64),
		deferred: ev.Est.Policy == views.DeferredMaintenance,
		runs:     int64(ev.Est.MaintenanceRuns),
	}
	ids := make([]int, n)
	groupOf := make(map[int]int, n)
	for i, c := range cands {
		id, err := l.ID(c.Point)
		if err != nil {
			return nil, fmt.Errorf("optimizer: candidate %d: %w", i, err)
		}
		ids[i] = id
		node := l.NodeByID(id)
		inc.rows[i] = node.Rows
		inc.size[i] = node.Size
		inc.maint[i] = ev.Est.MaintenanceTime(c.Point)
		inc.mat[i] = ev.Est.MaterializationTime(c.Point)
		if inc.runs > 0 {
			inc.perRun[i] = inc.maint[i] / time.Duration(inc.runs)
		}
		g, ok := groupOf[id]
		if !ok {
			g = len(groupOf)
			groupOf[id] = g
			inc.groupMembers = append(inc.groupMembers, nil)
		}
		inc.group[i] = g
		inc.groupMembers[g] = append(inc.groupMembers[g], int32(i))
	}
	inc.served = make([]int64, len(groupOf))

	baseNode := l.NodeByID(0)
	nq := len(ev.W.Queries)
	inc.qFreq = make([]int64, nq)
	inc.qBase = make([]time.Duration, nq)
	inc.qAns = make([][]ansEntry, nq)
	inc.assigned = make([]int32, nq)
	inc.curTerm = make([]time.Duration, nq)
	inc.cand2q = make([][]int32, n)
	baseJob := ev.Est.Cl.TimeForJob(baseNode.Size)
	for q, query := range ev.W.Queries {
		qid, err := l.ID(query.Point)
		if err != nil {
			return nil, fmt.Errorf("optimizer: query %d: %w", q, err)
		}
		freq := int64(query.Frequency)
		inc.qFreq[q] = freq
		inc.qBase[q] = time.Duration(freq) * baseJob
		for i := 0; i < n; i++ {
			// Only candidates that strictly beat the base can ever be
			// assigned (CheapestAnswering replaces on fewer rows only).
			if inc.rows[i] >= baseNode.Rows || !l.CanAnswerID(ids[i], qid) {
				continue
			}
			inc.qAns[q] = append(inc.qAns[q], ansEntry{
				cand: int32(i),
				rows: inc.rows[i],
				term: time.Duration(freq) * ev.Est.Cl.TimeForJob(inc.size[i]),
			})
			inc.cand2q[i] = append(inc.cand2q[i], int32(q))
		}
		sort.SliceStable(inc.qAns[q], func(a, b int) bool {
			ea, eb := inc.qAns[q][a], inc.qAns[q][b]
			if ea.rows != eb.rows {
				return ea.rows < eb.rows
			}
			return ea.cand < eb.cand
		})
	}
	inc.resetEmpty()
	return inc, nil
}

// Len returns the pinned candidate count.
func (inc *IncrementalEvaluator) Len() int { return inc.n }

// Selected reports whether candidate i is in the current subset.
func (inc *IncrementalEvaluator) Selected(i int) bool { return inc.selected[i] }

// Words exposes the packed selection bitmap (64 candidates per uint64,
// candidate i at bit i%64 of word i/64). The slice is live — callers
// must copy it before mutating the evaluator further.
func (inc *IncrementalEvaluator) Words() []uint64 { return inc.words }

// resetEmpty pins the empty subset: every query runs on the base table.
func (inc *IncrementalEvaluator) resetEmpty() {
	for i := range inc.selected {
		inc.selected[i] = false
	}
	for w := range inc.words {
		inc.words[w] = 0
	}
	for g := range inc.served {
		inc.served[g] = 0
	}
	inc.proc = 0
	for q := range inc.assigned {
		inc.assigned[q] = -1
		inc.curTerm[q] = inc.qBase[q]
		inc.proc += inc.qBase[q]
	}
	inc.maintSum, inc.matSum, inc.sizeSum = 0, 0, 0
}

// Reset re-pins the evaluator to an arbitrary subset — the full
// re-pricing path (O(n + Σ answering-list lengths)), used when a search
// restarts from a new subset rather than stepping to a neighbor.
func (inc *IncrementalEvaluator) Reset(sel []bool) error {
	if len(sel) != inc.n {
		return fmt.Errorf("optimizer: reset with %d flags for %d candidates", len(sel), inc.n)
	}
	inc.resetEmpty()
	for i, on := range sel {
		if on {
			inc.Add(i)
		}
	}
	return nil
}

// Add materializes candidate i: aggregates grow by its scalars and only
// the queries i can answer are re-routed (they move to i exactly when i
// beats their current source under the tie rule).
func (inc *IncrementalEvaluator) Add(i int) {
	if inc.selected[i] {
		return
	}
	inc.selected[i] = true
	inc.words[i>>6] |= 1 << (uint(i) & 63)
	inc.sizeSum += inc.size[i]
	inc.matSum += inc.mat[i]
	if !inc.deferred {
		inc.maintSum += inc.maint[i]
	} else if inc.runs > 0 {
		// A group sibling (duplicate point) may already be serving
		// queries; the new member is billed for the group's capped
		// refresh count from the moment it is selected.
		inc.maintSum += time.Duration(min64(inc.served[inc.group[i]], inc.runs)) * inc.perRun[i]
	}
	ri := inc.rows[i]
	for _, q32 := range inc.cand2q[i] {
		q := int(q32)
		cur := inc.assigned[q]
		if cur >= 0 {
			rc := inc.rows[cur]
			if ri > rc || (ri == rc && int32(i) > cur) {
				continue
			}
		}
		inc.route(q, int32(i))
	}
}

// Drop unmaterializes candidate i: only queries currently assigned to it
// are re-routed, to their cheapest remaining selected source (or base).
func (inc *IncrementalEvaluator) Drop(i int) {
	if !inc.selected[i] {
		return
	}
	inc.selected[i] = false
	inc.words[i>>6] &^= 1 << (uint(i) & 63)
	inc.sizeSum -= inc.size[i]
	inc.matSum -= inc.mat[i]
	if !inc.deferred {
		inc.maintSum -= inc.maint[i]
	} else if inc.runs > 0 {
		// Shed this member's share of the group's capped refresh bill
		// before re-routing (the re-route below no longer counts i).
		inc.maintSum -= time.Duration(min64(inc.served[inc.group[i]], inc.runs)) * inc.perRun[i]
	}
	for _, q32 := range inc.cand2q[i] {
		q := int(q32)
		if inc.assigned[q] != int32(i) {
			continue
		}
		next := int32(-1)
		for _, e := range inc.qAns[q] {
			if inc.selected[e.cand] {
				next = e.cand
				break
			}
		}
		inc.route(q, next)
	}
}

// route reassigns query q to candidate to (-1 = base), updating the
// processing aggregate and the deferred-maintenance serving counters.
func (inc *IncrementalEvaluator) route(q int, to int32) {
	from := inc.assigned[q]
	if inc.deferred && inc.runs > 0 {
		if from >= 0 {
			inc.adjustServed(int(from), -inc.qFreq[q])
		}
		if to >= 0 {
			inc.adjustServed(int(to), inc.qFreq[q])
		}
	}
	var term time.Duration
	if to < 0 {
		term = inc.qBase[q]
	} else {
		for _, e := range inc.qAns[q] {
			if e.cand == to {
				term = e.term
				break
			}
		}
	}
	inc.proc += term - inc.curTerm[q]
	inc.curTerm[q] = term
	inc.assigned[q] = to
}

// adjustServed shifts a point group's served count by delta and folds
// the capped-refresh change of every selected group member into the
// deferred maintenance aggregate. Groups almost always hold one
// candidate; duplicates of one point share a counter exactly like the
// Evaluator's per-point accounting.
func (inc *IncrementalEvaluator) adjustServed(i int, delta int64) {
	g := inc.group[i]
	before := inc.served[g]
	after := before + delta
	inc.served[g] = after
	cb, ca := min64(before, inc.runs), min64(after, inc.runs)
	if cb == ca {
		return
	}
	// Capped refresh count changed: update every selected candidate in
	// the group (perRun is identical within a group).
	for _, j := range inc.groupMembers[g] {
		if inc.selected[j] {
			inc.maintSum += time.Duration(ca-cb) * inc.perRun[j]
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// maintenance returns TmaintenanceV for the current subset under the
// estimator's policy. In deferred mode a dropped-to-zero maintSum and
// runs<=0 mirror MaintenanceTimeForWorkload exactly.
func (inc *IncrementalEvaluator) maintenance() time.Duration {
	if inc.deferred && inc.runs <= 0 {
		return 0
	}
	return inc.maintSum
}

// Score prices the current subset exactly: the running aggregates feed
// the same Plan.Bill the Evaluator uses (full tiered, rounded billing —
// no linearization), so the result is bit-equal to Evaluate of the same
// points.
func (inc *IncrementalEvaluator) Score() (time.Duration, costmodel.Bill, error) {
	plan := inc.ev.Base.WithViews(inc.sizeSum, inc.proc, inc.maintenance(), inc.matSum)
	bill, err := plan.Bill()
	if err != nil {
		return 0, costmodel.Bill{}, err
	}
	return inc.proc, bill, nil
}
