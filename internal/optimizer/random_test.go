package optimizer

import (
	"testing"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// Randomized end-to-end check: for arbitrary workloads, the three solvers
// must always produce selections that (a) respect their constraints when
// they claim feasibility, (b) never do worse than the no-view baseline on
// their objective, and (c) price consistently.
func TestSolversOnRandomWorkloads(t *testing.T) {
	l, err := lattice.New(schema.Sales(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	prov := pricing.AWS2012()
	prov.Compute.Granularity = units.BillPerMinute
	cl, err := cluster.New(prov, "small", 3)
	if err != nil {
		t.Fatal(err)
	}
	cl.JobOverhead = time.Minute

	for seed := int64(0); seed < 12; seed++ {
		w, err := workload.Random(l, 6, 20, seed)
		if err != nil {
			t.Fatal(err)
		}
		est := views.NewEstimator(l, cl)
		base := costmodel.Plan{
			Cluster:     cl,
			Months:      1,
			DatasetSize: 3 * units.GB,
		}
		ev, err := NewEvaluator(est, w, base)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := views.GenerateCandidates(l, w, 6)
		if err != nil {
			t.Fatal(err)
		}
		baseT, baseBill, err := ev.Evaluate(nil)
		if err != nil {
			t.Fatal(err)
		}

		// MV1 with the baseline budget: always feasible, never slower.
		mv1, err := ev.SolveMV1(cands, baseBill.Total())
		if err != nil {
			t.Fatalf("seed %d: MV1: %v", seed, err)
		}
		if !mv1.Feasible {
			t.Errorf("seed %d: MV1 infeasible at its own baseline budget", seed)
		}
		if mv1.Bill.Total() > baseBill.Total() {
			t.Errorf("seed %d: MV1 bill %v over budget %v", seed, mv1.Bill.Total(), baseBill.Total())
		}
		if mv1.Time > baseT {
			t.Errorf("seed %d: MV1 slower than baseline", seed)
		}

		// MV2 with a generous limit: feasible, bill never above baseline
		// (the no-view plan is itself feasible, so the solver may at worst
		// return it).
		mv2, err := ev.SolveMV2(cands, baseT)
		if err != nil {
			t.Fatalf("seed %d: MV2: %v", seed, err)
		}
		if !mv2.Feasible {
			t.Errorf("seed %d: MV2 infeasible at the baseline time", seed)
		}
		if mv2.Time > baseT {
			t.Errorf("seed %d: MV2 time %v over limit %v", seed, mv2.Time, baseT)
		}
		if mv2.Bill.Total() > baseBill.Total() {
			t.Errorf("seed %d: MV2 bill %v above the feasible baseline %v",
				seed, mv2.Bill.Total(), baseBill.Total())
		}

		// MV3 at a few alphas: objective never worse than baseline.
		for _, alpha := range []float64{0, 0.5, 1} {
			mv3, err := ev.SolveMV3(cands, alpha, RawTradeoff)
			if err != nil {
				t.Fatalf("seed %d: MV3(%g): %v", seed, alpha, err)
			}
			with := Objective(alpha, mv3.Time, mv3.Bill, RawTradeoff, baseT, baseBill)
			without := Objective(alpha, baseT, baseBill, RawTradeoff, baseT, baseBill)
			if with > without+1e-9 {
				t.Errorf("seed %d: MV3(%g) objective %.6f worse than baseline %.6f",
					seed, alpha, with, without)
			}
		}
	}
}

// Deferred maintenance never prices above immediate, across random
// workloads and view sets.
func TestDeferredNeverAboveImmediate(t *testing.T) {
	l, err := lattice.New(schema.Sales(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pricing.AWS2012(), "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		w, err := workload.Random(l, 5, 10, seed)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := views.GenerateCandidates(l, w, 5)
		if err != nil {
			t.Fatal(err)
		}
		pts := views.Points(cands)
		imm := views.NewEstimator(l, cl)
		def := views.NewEstimator(l, cl)
		def.Policy = views.DeferredMaintenance
		a := imm.MaintenanceTimeForWorkload(pts, w)
		b := def.MaintenanceTimeForWorkload(pts, w)
		if b > a {
			t.Errorf("seed %d: deferred %v above immediate %v", seed, b, a)
		}
	}
}

func TestRandomWorkloadErrors(t *testing.T) {
	l, err := lattice.New(schema.Sales(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Random(l, 0, 5, 1); err == nil {
		t.Error("zero queries accepted")
	}
	if _, err := workload.Random(l, 3, 0, 1); err == nil {
		t.Error("zero maxFreq accepted")
	}
	w, err := workload.Random(l, 7, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(l); err != nil {
		t.Errorf("random workload invalid: %v", err)
	}
	// Deterministic per seed.
	w2, _ := workload.Random(l, 7, 9, 2)
	for i := range w.Queries {
		if !w.Queries[i].Point.Equal(w2.Queries[i].Point) || w.Queries[i].Frequency != w2.Queries[i].Frequency {
			t.Fatal("random workload not deterministic")
		}
	}
}
