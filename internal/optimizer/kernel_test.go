package optimizer

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// randomProvider derives a valid tariff variant deterministically from a
// seed: perturbed instance prices/ECUs, storage slab rates and billing
// granularity over the AWS fixture's shape — the "random catalog" the
// kernel equivalence properties sweep over.
func randomProvider(seed int64) pricing.Provider {
	rng := rand.New(rand.NewSource(seed))
	p := pricing.AWS2012().Clone()
	for name, it := range p.Compute.Instances {
		it.PricePerHour = it.PricePerHour.MulFloat(0.25 + 1.5*rng.Float64())
		it.ECU = it.ECU * (0.5 + rng.Float64())
		p.Compute.Instances[name] = it
	}
	for i := range p.Storage.Table.Tiers {
		p.Storage.Table.Tiers[i].PricePerGB = p.Storage.Table.Tiers[i].PricePerGB.MulFloat(0.5 + rng.Float64())
	}
	for i := range p.Transfer.Egress.Tiers {
		p.Transfer.Egress.Tiers[i].PricePerGB = p.Transfer.Egress.Tiers[i].PricePerGB.MulFloat(0.5 + rng.Float64())
	}
	switch rng.Intn(3) {
	case 0:
		p.Compute.Granularity = units.BillPerHour
	case 1:
		p.Compute.Granularity = units.BillPerMinute
	case 2:
		p.Compute.Granularity = units.BillPerSecond
	}
	return p
}

// TestKernelSessionMatchesEvaluator is the kernel's exactness anchor:
// for random workloads, tariffs, fleet sizes and both maintenance
// policies, a RepriceFor session must reproduce the Evaluator's scenario
// solvers bit for bit — selections, times, bills, items, baseline.
func TestKernelSessionMatchesEvaluator(t *testing.T) {
	l, err := lattice.New(schema.Sales(), 80_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		w, err := workload.Random(l, 3+rng.Intn(8), 30, seed)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := views.GenerateCandidates(l, w, 2+rng.Intn(7))
		if err != nil {
			t.Fatal(err)
		}
		kern, err := NewComparisonKernel(l, w, cands)
		if err != nil {
			t.Fatal(err)
		}
		egress, err := w.ResultBytes(l)
		if err != nil {
			t.Fatal(err)
		}
		for _, policy := range []views.MaintenancePolicy{views.ImmediateMaintenance, views.DeferredMaintenance} {
			for cell := 0; cell < 3; cell++ {
				prov := randomProvider(seed*10 + int64(cell))
				cl, err := cluster.New(prov, "small", 1+rng.Intn(8))
				if err != nil {
					t.Fatal(err)
				}
				cl.JobOverhead = 2 * time.Minute
				est := views.NewEstimator(l, cl)
				est.MaintenanceRuns = rng.Intn(6)
				est.UpdateRatio = 0.05 + 0.3*rng.Float64()
				est.Policy = policy
				base := costmodel.Plan{
					Cluster:       cl,
					Months:        0.5 + 2*rng.Float64(),
					DatasetSize:   l.NodeByID(0).Size,
					MonthlyEgress: egress,
				}
				ev, err := NewEvaluator(est, w, base)
				if err != nil {
					t.Fatal(err)
				}
				sess, err := kern.RepriceFor(ev)
				if err != nil {
					t.Fatal(err)
				}

				baseT, baseBill, err := ev.Evaluate(nil)
				if err != nil {
					t.Fatal(err)
				}
				gotT, gotBill, err := sess.Base()
				if err != nil {
					t.Fatal(err)
				}
				if gotT != baseT || gotBill != baseBill {
					t.Fatalf("seed %d cell %d policy %v: baseline diverged: (%v,%v) vs (%v,%v)",
						seed, cell, policy, gotT, gotBill, baseT, baseBill)
				}

				wantItems, err := ev.BuildItems(cands)
				if err != nil {
					t.Fatal(err)
				}
				if gotItems := sess.Items(); !reflect.DeepEqual(gotItems, wantItems) {
					t.Fatalf("seed %d cell %d policy %v: items diverged:\ngot  %+v\nwant %+v",
						seed, cell, policy, gotItems, wantItems)
				}

				budget := baseBill.Total().MulFloat(0.4 + 1.2*rng.Float64())
				wantMV1, err := ev.SolveMV1(cands, budget)
				if err != nil {
					t.Fatal(err)
				}
				gotMV1, err := sess.SolveMV1(budget)
				if err != nil {
					t.Fatal(err)
				}
				assertSelectionsEqual(t, "mv1", seed, cell, gotMV1, wantMV1)

				limit := time.Duration(float64(baseT) * (0.3 + rng.Float64()))
				wantMV2, err := ev.SolveMV2(cands, limit)
				if err != nil {
					t.Fatal(err)
				}
				gotMV2, err := sess.SolveMV2(limit)
				if err != nil {
					t.Fatal(err)
				}
				assertSelectionsEqual(t, "mv2", seed, cell, gotMV2, wantMV2)

				for _, mode := range []TradeoffMode{RawTradeoff, NormalizedTradeoff} {
					alpha := rng.Float64()
					wantMV3, err := ev.SolveMV3(cands, alpha, mode)
					if err != nil {
						t.Fatal(err)
					}
					gotMV3, err := sess.SolveMV3(alpha, mode)
					if err != nil {
						t.Fatal(err)
					}
					assertSelectionsEqual(t, "mv3", seed, cell, gotMV3, wantMV3)
				}
			}
		}
	}
}

func assertSelectionsEqual(t *testing.T, scenario string, seed int64, cell int, got, want Selection) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("seed %d cell %d: %s diverged:\ngot  %+v\nwant %+v", seed, cell, scenario, got, want)
	}
}

// TestRepriceForRejectsForeignEvaluator pins the wiring guard: a session
// cannot bind an evaluator built over a different lattice.
func TestRepriceForRejectsForeignEvaluator(t *testing.T) {
	l1, _ := lattice.New(schema.Sales(), 1_000_000)
	l2, _ := lattice.New(schema.Sales(), 2_000_000)
	w, err := workload.Sales(l1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := views.GenerateCandidates(l1, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := NewComparisonKernel(l1, w, cands)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pricing.AWS2012(), "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(views.NewEstimator(l2, cl), w, costmodel.Plan{Cluster: cl, Months: 1, DatasetSize: units.GB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kern.RepriceFor(ev); err == nil {
		t.Fatal("foreign evaluator accepted")
	}
}

// TestKernelSessionBudgetSweep mirrors the comparison engine's
// break-even usage: a sweep of MV1 budgets on one session must equal
// fresh Evaluator solves at every budget.
func TestKernelSessionBudgetSweep(t *testing.T) {
	l, err := lattice.New(schema.Sales(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Sales(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := views.GenerateCandidates(l, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := NewComparisonKernel(l, w, cands)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pricing.AWS2012(), "small", 5)
	if err != nil {
		t.Fatal(err)
	}
	cl.JobOverhead = 2 * time.Minute
	est := views.NewEstimator(l, cl)
	est.MaintenanceRuns = 4
	est.UpdateRatio = 0.2
	egress, err := w.ResultBytes(l)
	if err != nil {
		t.Fatal(err)
	}
	base := costmodel.Plan{Cluster: cl, Months: 1, DatasetSize: l.NodeByID(0).Size, MonthlyEgress: egress}
	ev, err := NewEvaluator(est, w, base)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := kern.RepriceFor(ev)
	if err != nil {
		t.Fatal(err)
	}
	for d := 5; d <= 60; d += 5 {
		budget := money.FromDollars(float64(d))
		want, err := ev.SolveMV1(cands, budget)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.SolveMV1(budget)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("budget %v diverged:\ngot  %+v\nwant %+v", budget, got, want)
		}
	}
}
