package optimizer

import (
	"math/rand"
	"testing"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// incrementalFixture builds a random synthetic instance: lattice,
// workload, candidate pool (HRU picks plus random extra nodes so the
// pool is not limited to "obviously good" views), and an evaluator.
func incrementalFixture(t testing.TB, rng *rand.Rand, policy views.MaintenancePolicy) (*Evaluator, []views.Candidate) {
	t.Helper()
	dims := 2 + rng.Intn(2)   // 2..3
	levels := 3 + rng.Intn(2) // 3..4
	sch, err := schema.Synthetic(dims, levels)
	if err != nil {
		t.Fatal(err)
	}
	factRows := int64(1_000_000 + rng.Intn(50_000_000))
	l, err := lattice.New(sch, factRows)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Random(l, 3+rng.Intn(12), 6, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pricing.AWS2012(), "small", 1+rng.Intn(5))
	if err != nil {
		t.Fatal(err)
	}
	est := views.NewEstimator(l, cl)
	est.MaintenanceRuns = rng.Intn(7) // includes 0: the degenerate no-refresh regime
	est.UpdateRatio = rng.Float64()
	est.Policy = policy
	egress, err := w.ResultBytes(l)
	if err != nil {
		t.Fatal(err)
	}
	base, err := l.Node(l.Base())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(est, w, costmodel.Plan{
		Cluster:       cl,
		Months:        1 + 5*rng.Float64(),
		DatasetSize:   base.Size,
		MonthlyEgress: egress,
	})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := views.GenerateCandidates(l, w, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Pad with random non-base nodes — including some the HRU would never
	// pick, and deliberate duplicates of already-chosen points.
	nodes := l.Nodes()
	for len(cands) < 12 {
		n := nodes[1+rng.Intn(len(nodes)-1)]
		cands = append(cands, views.Candidate{Point: n.Point, Rows: n.Rows, Size: n.Size})
	}
	if rng.Intn(2) == 0 && len(cands) > 0 {
		cands = append(cands, cands[rng.Intn(len(cands))]) // duplicate point
	}
	return ev, cands
}

// selectedPoints expands a bitmap into points in candidate order — the
// exact slice shape the search solver hands Evaluate.
func selectedPoints(cands []views.Candidate, sel []bool) []lattice.Point {
	var pts []lattice.Point
	for i, on := range sel {
		if on {
			pts = append(pts, cands[i].Point)
		}
	}
	return pts
}

// TestIncrementalMatchesEvaluateRandomWalk is the admissibility property
// of the delta engine: on random instances, after every Add/Drop of a
// random walk the incremental Score must equal Evaluator.Evaluate of the
// resulting subset EXACTLY — same time.Duration, same Bill (every money
// field), under both maintenance policies. Any deviation means the
// incremental engine optimizes a different function than the ground
// truth it claims to accelerate.
func TestIncrementalMatchesEvaluateRandomWalk(t *testing.T) {
	for _, policy := range []views.MaintenancePolicy{views.ImmediateMaintenance, views.DeferredMaintenance} {
		for trial := 0; trial < 12; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*int(policy) + trial)))
			ev, cands := incrementalFixture(t, rng, policy)
			inc, err := NewIncrementalEvaluator(ev, cands)
			if err != nil {
				t.Fatal(err)
			}
			sel := make([]bool, len(cands))
			check := func(step int) {
				gotT, gotBill, err := inc.Score()
				if err != nil {
					t.Fatal(err)
				}
				wantT, wantBill, err := ev.Evaluate(selectedPoints(cands, sel))
				if err != nil {
					t.Fatal(err)
				}
				if gotT != wantT || gotBill != wantBill {
					t.Fatalf("policy %v trial %d step %d sel %v:\nincremental (%v, %+v)\nexact       (%v, %+v)",
						policy, trial, step, sel, gotT, gotBill, wantT, wantBill)
				}
			}
			check(-1)
			for step := 0; step < 60; step++ {
				i := rng.Intn(len(cands))
				if sel[i] {
					inc.Drop(i)
					sel[i] = false
				} else {
					inc.Add(i)
					sel[i] = true
				}
				check(step)
			}
		}
	}
}

// TestIncrementalReset: re-pinning to an arbitrary subset must land in
// exactly the state a fresh walk to that subset reaches.
func TestIncrementalReset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ev, cands := incrementalFixture(t, rng, views.DeferredMaintenance)
	inc, err := NewIncrementalEvaluator(ev, cands)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		sel := make([]bool, len(cands))
		for i := range sel {
			sel[i] = rng.Intn(2) == 0
		}
		if err := inc.Reset(sel); err != nil {
			t.Fatal(err)
		}
		gotT, gotBill, err := inc.Score()
		if err != nil {
			t.Fatal(err)
		}
		wantT, wantBill, err := ev.Evaluate(selectedPoints(cands, sel))
		if err != nil {
			t.Fatal(err)
		}
		if gotT != wantT || gotBill != wantBill {
			t.Fatalf("trial %d sel %v: reset state (%v, %+v) != exact (%v, %+v)",
				trial, sel, gotT, gotBill, wantT, wantBill)
		}
	}
	if err := inc.Reset(make([]bool, 1)); err == nil {
		t.Error("wrong-arity reset accepted")
	}
}

// TestIncrementalWords: the packed bitmap tracks the selection and
// redundant moves are no-ops.
func TestIncrementalWords(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ev, cands := incrementalFixture(t, rng, views.ImmediateMaintenance)
	inc, err := NewIncrementalEvaluator(ev, cands)
	if err != nil {
		t.Fatal(err)
	}
	inc.Add(3)
	inc.Add(3) // no-op
	inc.Add(5)
	inc.Drop(5)
	inc.Drop(5) // no-op
	if !inc.Selected(3) || inc.Selected(5) {
		t.Fatalf("selection flags wrong: %v %v", inc.Selected(3), inc.Selected(5))
	}
	want := uint64(1) << 3
	if inc.Words()[0] != want {
		t.Fatalf("words[0] = %b, want %b", inc.Words()[0], want)
	}
	t1, b1, err := inc.Score()
	if err != nil {
		t.Fatal(err)
	}
	t2, b2, err := ev.Evaluate(selectedPoints(cands, []bool{false, false, false, true}))
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 || b1 != b2 {
		t.Fatalf("(%v,%+v) != (%v,%+v)", t1, b1, t2, b2)
	}
	if inc.Len() != len(cands) {
		t.Fatalf("Len = %d, want %d", inc.Len(), len(cands))
	}
}
