package optimizer

import (
	"fmt"
	"sort"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

// KernelSession is one tariff binding of a ComparisonKernel: the pinned
// structure re-priced for one provider × instance × fleet configuration.
// It exposes the Evaluator's scenario solvers (SolveMV1/MV2/MV3) with
// identical semantics — the selections, times and bills are bit-equal to
// the Evaluator's, pinned by TestKernelSessionMatchesEvaluator — but
// every exact subset evaluation runs over the kernel's flat arrays
// (integer row comparisons and precomputed durations) instead of
// per-point lattice walks, and the linearized knapsack items and the
// no-view baseline are computed once per session instead of once per
// solve. A comparison fan-out thus pays the structural cost once per
// problem and only the O(arithmetic) re-bill per tariff cell.
//
// A session is NOT safe for concurrent use (it owns scratch state and an
// incremental engine); fan-outs bind one session per worker cell.
type KernelSession struct {
	// Kern is the shared pricing-invariant structure.
	Kern *ComparisonKernel
	// Ev is the bound exact evaluator (cluster, plan template, tariff).
	Ev *Evaluator

	inc *IncrementalEvaluator

	// Lazily cached per-session values.
	items     []Item
	haveItems bool
	baseT     time.Duration
	baseBill  costmodel.Bill
	haveBase  bool

	// Scratch reused across solves (a session is single-threaded); the
	// break-even budget sweeps of the comparison engine call SolveMV1
	// once per budget, so per-solve slices would dominate the allocation
	// profile otherwise. Selections returned to callers always carry
	// freshly allocated Points — scratch never escapes.
	servedBuf []int64
	selBuf    []int32
	idxBuf    []int
	valBuf    []int64
	wtBuf     []int64
	bestCand  []int32
	bestRows  []int64
}

// RepriceFor binds the kernel to one tariff: the evaluator supplies the
// cluster, billing period and plan template of a single provider ×
// instance × fleet configuration; everything structural is reused from
// the kernel. This is the whole per-cell rebuild of a cross-tariff
// comparison.
func (k *ComparisonKernel) RepriceFor(ev *Evaluator) (*KernelSession, error) {
	inc, err := k.Bind(ev)
	if err != nil {
		return nil, err
	}
	return &KernelSession{
		Kern:      k,
		Ev:        ev,
		inc:       inc,
		servedBuf: make([]int64, len(k.groupMembers)),
		bestCand:  make([]int32, k.nq),
		bestRows:  make([]int64, k.nq),
	}, nil
}

// Engine returns the session's incremental delta-evaluation engine — the
// structure-sharing hook the metaheuristic search solvers accept via
// search.Options.Engine, so a search solve reuses the session's pinned
// answering lists instead of rebuilding them.
func (s *KernelSession) Engine() *IncrementalEvaluator { return s.inc }

// Base returns the exact no-view baseline (Evaluate(nil)), computed once
// per session.
func (s *KernelSession) Base() (time.Duration, costmodel.Bill, error) {
	if !s.haveBase {
		var proc time.Duration
		for q := 0; q < s.Kern.nq; q++ {
			proc += s.inc.qBase[q]
		}
		plan := s.Ev.Base.WithViews(0, proc, 0, 0)
		bill, err := plan.Bill()
		if err != nil {
			return 0, costmodel.Bill{}, err
		}
		s.baseT, s.baseBill, s.haveBase = proc, bill, true
	}
	return s.baseT, s.baseBill, nil
}

// evaluateSel prices the candidate subset sel (candidate indices, in
// selection order) exactly, mirroring Evaluator.Evaluate of the same
// points: cheapest-answering routing with the first-strictly-fewer-rows
// tie rule, policy-aware maintenance, and the full tiered bill.
//
//mvlint:hotpath
func (s *KernelSession) evaluateSel(sel []int32) (time.Duration, costmodel.Bill, error) {
	k, sc := s.Kern, &s.inc.sessionScalars
	var proc, maint, mat time.Duration
	var sizeSum units.DataSize
	deferred := sc.deferred && sc.runs > 0
	served := s.servedBuf
	if deferred {
		for g := range served {
			served[g] = 0
		}
	}
	// Route every query to its cheapest answering source. Candidates are
	// processed in selection order with a strict row comparison per
	// query, so the per-query winner is exactly CheapestAnswering's
	// first-strictly-fewer-rows-in-scan-order choice (the loop nesting is
	// swapped for locality; per query the candidate order is unchanged).
	bestCand, bestRows := s.bestCand, s.bestRows
	for q := 0; q < k.nq; q++ {
		bestCand[q] = -1
		bestRows[q] = k.baseRows
	}
	for _, ci := range sel {
		ri := k.rows[ci]
		for _, q := range k.cand2q[ci] {
			if ri < bestRows[q] {
				bestRows[q], bestCand[q] = ri, ci
			}
		}
	}
	for q := 0; q < k.nq; q++ {
		best := bestCand[q]
		if best < 0 {
			proc += sc.qBase[q]
			continue
		}
		proc += time.Duration(k.qFreq[q]) * sc.candJob[best]
		if deferred {
			served[k.group[best]] += k.qFreq[q]
		}
	}
	for _, ci := range sel {
		mat += sc.mat[ci]
		sizeSum += k.size[ci]
		if !sc.deferred {
			maint += sc.maint[ci]
		} else if sc.runs > 0 {
			maint += time.Duration(min64(served[k.group[ci]], sc.runs)) * sc.perRun[ci]
		}
	}
	plan := s.Ev.Base.WithViews(sizeSum, proc, maint, mat)
	bill, err := plan.Bill()
	if err != nil {
		return 0, costmodel.Bill{}, err
	}
	return proc, bill, nil
}

// selectionFor assembles a Selection for an already-priced subset
// (points in selection order, feasibility check) — mirroring the tail of
// Evaluator.finishItems.
func (s *KernelSession) selectionFor(sel []int32, t time.Duration, bill costmodel.Bill, strategy string, feasible func(time.Duration, costmodel.Bill) bool) Selection {
	pts := make([]lattice.Point, len(sel))
	for i, ci := range sel {
		pts[i] = s.Kern.Cands[ci].Point
	}
	out := Selection{Points: pts, Time: t, Bill: bill, Strategy: strategy}
	if feasible != nil {
		out.Feasible = feasible(t, bill)
	} else {
		out.Feasible = true
	}
	return out
}

// finishSel prices the subset and assembles its Selection, mirroring
// Evaluator.finishItems.
func (s *KernelSession) finishSel(sel []int32, strategy string, feasible func(time.Duration, costmodel.Bill) bool) (Selection, error) {
	t, bill, err := s.evaluateSel(sel)
	if err != nil {
		return Selection{}, err
	}
	return s.selectionFor(sel, t, bill, strategy, feasible), nil
}

// finishBaseline mirrors Evaluator.finish(nil, ...): the no-view
// selection with nil points.
func (s *KernelSession) finishBaseline(strategy string, feasible func(time.Duration, costmodel.Bill) bool) (Selection, error) {
	t, bill, err := s.Base()
	if err != nil {
		return Selection{}, err
	}
	out := Selection{Points: nil, Time: t, Bill: bill, Strategy: strategy}
	if feasible != nil {
		out.Feasible = feasible(t, bill)
	} else {
		out.Feasible = true
	}
	return out, nil
}

// Items returns the linearized knapsack items (Evaluator.BuildItems of
// the pinned candidates), computed once per session. The slice is shared
// — callers must not mutate it.
func (s *KernelSession) Items() []Item {
	if s.haveItems {
		return s.items
	}
	k, sc := s.Kern, &s.inc.sessionScalars
	if k.n == 0 {
		s.haveItems = true
		return nil
	}
	// Assignment: each query credits its best candidate — fewest rows
	// among the answering candidates that beat the base, lowest candidate
	// index on ties. The answering list is sorted by exactly that rule,
	// so the best candidate is its head.
	assignedSaving := make([]time.Duration, k.n)
	for q := 0; q < k.nq; q++ {
		if k.qOff[q] == k.qOff[q+1] {
			continue
		}
		best := k.ansCand[k.qOff[q]]
		if tView := sc.candJob[best]; tView < sc.baseJob {
			assignedSaving[best] += time.Duration(k.qFreq[q]) * (sc.baseJob - tView)
		}
	}
	months := s.Ev.Base.Months
	hourly := s.Ev.Base.Cluster.HourlyRate()
	storageRate := s.Ev.Base.Cluster.Provider.Storage.Table.RateFor(s.Ev.Base.DatasetSize)
	items := make([]Item, k.n)
	for i, c := range k.Cands {
		cost := storageRate.MulFloat(c.Size.GBs() * months)
		cost = cost.Add(hourly.MulFloat(sc.maint[i].Hours() * months))
		cost = cost.Add(hourly.MulFloat(sc.mat[i].Hours()))
		cost = cost.Sub(hourly.MulFloat(assignedSaving[i].Hours() * months))
		items[i] = Item{Cand: c, TimeSaved: assignedSaving[i], CostDelta: cost}
	}
	s.items, s.haveItems = items, true
	return items
}

// SolveMV1 solves scenario MV1 (Formula 13) exactly as
// Evaluator.SolveMV1 does — same items, same knapsack, same exact
// repair — with the baseline and items served from the session caches.
func (s *KernelSession) SolveMV1(budget money.Money) (Selection, error) {
	feasible := func(_ time.Duration, b costmodel.Bill) bool { return b.Total() <= budget }
	sel, t, bill, baselineOnly, err := s.solveMV1(budget)
	if err != nil {
		return Selection{}, err
	}
	if baselineOnly {
		// Even without views the budget does not cover the workload.
		return s.finishBaseline("mv1-knapsack", feasible)
	}
	return s.selectionFor(sel, t, bill, "mv1-knapsack", feasible), nil
}

// BudgetOutcome solves MV1 at the given budget and returns only the
// scalar outcome — workload time, total cost, feasibility. The pricing
// is identical to SolveMV1 (same items, knapsack, exact repair); only
// the point-list materialization is skipped, which is what lets a
// break-even budget sweep re-price dozens of budgets per cell without
// allocation churn.
func (s *KernelSession) BudgetOutcome(budget money.Money) (time.Duration, money.Money, bool, error) {
	_, t, bill, baselineOnly, err := s.solveMV1(budget)
	if err != nil {
		return 0, 0, false, err
	}
	if baselineOnly {
		bt, bb, err := s.Base()
		if err != nil {
			return 0, 0, false, err
		}
		return bt, bb.Total(), bb.Total() <= budget, nil
	}
	return t, bill.Total(), bill.Total() <= budget, nil
}

// solveMV1 is the shared MV1 core: the chosen subset with its exact
// price, or baselineOnly when even the no-view baseline busts the
// budget. The returned slice aliases session scratch.
func (s *KernelSession) solveMV1(budget money.Money) (sel []int32, t time.Duration, bill costmodel.Bill, baselineOnly bool, err error) {
	feasible := func(_ time.Duration, b costmodel.Bill) bool { return b.Total() <= budget }
	_, baseBill, err := s.Base()
	if err != nil {
		return nil, 0, costmodel.Bill{}, false, err
	}
	if baseBill.Total() > budget {
		return nil, 0, costmodel.Bill{}, true, nil
	}
	items := s.Items()
	slack := budget.Sub(baseBill.Total())
	chosen := s.selBuf[:0]
	payIdx := s.idxBuf[:0]
	for i, it := range items {
		if it.CostDelta <= 0 && it.TimeSaved > 0 {
			chosen = append(chosen, int32(i))
			slack = slack.Add(it.CostDelta.Neg())
		}
	}
	values, weights := s.valBuf[:0], s.wtBuf[:0]
	for i, it := range items {
		if it.CostDelta > 0 && it.TimeSaved > 0 {
			payIdx = append(payIdx, i)
			values = append(values, int64(it.TimeSaved))
			weights = append(weights, it.CostDelta.Micros())
		}
	}
	s.valBuf, s.wtBuf = values, weights
	picked, err := Knapsack01(values, weights, slack.Micros())
	if err != nil {
		return nil, 0, costmodel.Bill{}, false, err
	}
	for _, p := range picked {
		chosen = append(chosen, int32(payIdx[p]))
	}
	s.selBuf, s.idxBuf = chosen, payIdx
	// Exact repair: drop the worst time-per-dollar views while over
	// budget. Intermediate states are evaluated without materializing
	// their point lists — only the caller's final selection builds Points.
	t, bill, err = s.evaluateSel(chosen)
	if err != nil {
		return nil, 0, costmodel.Bill{}, false, err
	}
	for !feasible(t, bill) && len(chosen) > 0 {
		sort.Slice(chosen, func(a, b int) bool {
			return density(items[chosen[a]]) < density(items[chosen[b]])
		})
		chosen = chosen[1:]
		t, bill, err = s.evaluateSel(chosen)
		if err != nil {
			return nil, 0, costmodel.Bill{}, false, err
		}
	}
	return chosen, t, bill, false, nil
}

// SolveMV2 solves scenario MV2 (Formula 14) exactly as
// Evaluator.SolveMV2 does.
func (s *KernelSession) SolveMV2(limit time.Duration) (Selection, error) {
	feasible := func(t time.Duration, _ costmodel.Bill) bool { return t <= limit }
	items := s.Items()
	baseTime, _, err := s.Base()
	if err != nil {
		return Selection{}, err
	}

	chosen := s.selBuf[:0]
	saved := time.Duration(0)
	for i, it := range items {
		if it.CostDelta <= 0 && it.TimeSaved > 0 {
			chosen = append(chosen, int32(i))
			saved += it.TimeSaved
		}
	}
	need := baseTime - limit - saved
	if need > 0 {
		costs, gains := s.wtBuf[:0], s.valBuf[:0]
		idx := s.idxBuf[:0]
		for i, it := range items {
			if it.CostDelta > 0 && it.TimeSaved > 0 {
				idx = append(idx, i)
				costs = append(costs, it.CostDelta.Micros())
				gains = append(gains, int64(it.TimeSaved))
			}
		}
		s.wtBuf, s.valBuf, s.idxBuf = costs, gains, idx
		picked, ok, err := MinCostCover(costs, gains, int64(need))
		if err != nil {
			return Selection{}, err
		}
		if !ok {
			// Constraint unreachable: return the best effort (all
			// time-saving views) marked infeasible.
			for _, i := range idx {
				chosen = append(chosen, int32(i))
			}
			return s.finishSel(chosen, "mv2-knapsack", feasible)
		}
		for _, p := range picked {
			chosen = append(chosen, int32(idx[p]))
		}
	}
	s.selBuf = chosen
	return s.finishSel(chosen, "mv2-knapsack", feasible)
}

// SolveMV3 solves scenario MV3 (Formula 15) exactly as
// Evaluator.SolveMV3 does.
func (s *KernelSession) SolveMV3(alpha float64, mode TradeoffMode) (Selection, error) {
	if alpha < 0 || alpha > 1 {
		return Selection{}, fmt.Errorf("optimizer: alpha %g out of [0,1]", alpha)
	}
	items := s.Items()
	tScale, cScale := 1.0, 1.0
	if mode == NormalizedTradeoff {
		t0, b0, err := s.Base()
		if err != nil {
			return Selection{}, err
		}
		if t0 > 0 {
			tScale = 1 / t0.Hours()
		}
		if b0.Total() > 0 {
			cScale = 1 / b0.Total().Dollars()
		}
	}
	chosen := s.selBuf[:0]
	for i, it := range items {
		delta := alpha*(-it.TimeSaved.Hours())*tScale + (1-alpha)*it.CostDelta.Dollars()*cScale
		if delta < 0 {
			chosen = append(chosen, int32(i))
		}
	}
	s.selBuf = chosen
	return s.finishSel(chosen, "mv3-marginal", nil)
}
