// Package optimizer implements the paper's optimization process (Section
// 5): selecting the subset of candidate materialized views under the three
// objective scenarios MV1 (minimize workload time under a budget), MV2
// (minimize monetary cost under a response-time limit) and MV3 (minimize
// the weighted time/cost tradeoff), solved — as in the paper — as a 0/1
// knapsack via dynamic programming, with an exhaustive oracle and a greedy
// heuristic as baselines.
package optimizer

import (
	"fmt"
	"math"
	"sync"
)

// maxDPCells bounds the size of the dynamic-programming tables; larger
// capacities are scaled down (with conservative rounding) to fit.
const maxDPCells = 1 << 21

// dpScratch is the reusable backing of one DP solve: the value row and
// the flat keep matrix (n rows × (cap+1) columns). Tables are bounded by
// maxDPCells (≤ ~18 MB worst case, dropped by the GC when idle), so
// pooling them caps the solver's steady-state allocation at zero — the
// advisory hot paths (every MV1/MV2 solve, every budget of a break-even
// sweep) otherwise churn multi-megabyte tables per call, and re-clearing
// a warm table measures faster than faulting in fresh zeroed pages.
type dpScratch struct {
	dp   []int64
	keep []bool
}

var dpPool = sync.Pool{New: func() any { return &dpScratch{} }}

// grabScratch returns pooled scratch with dp sized to cells and filled
// with fill (each DP has its own empty-state sentinel, so the fill
// happens exactly once here), and keep sized (and cleared) to n×cells.
func grabScratch(n int, cells int64, fill int64) *dpScratch {
	need := int(cells)
	keepNeed := n * need
	s := dpPool.Get().(*dpScratch)
	if cap(s.dp) < need {
		s.dp = make([]int64, need)
	}
	s.dp = s.dp[:need]
	for i := range s.dp {
		s.dp[i] = fill
	}
	if cap(s.keep) < keepNeed {
		s.keep = make([]bool, keepNeed)
	}
	s.keep = s.keep[:keepNeed]
	for i := range s.keep {
		s.keep[i] = false
	}
	//mvlint:allow noretain -- grabScratch IS the pool's lending API; every caller pairs it with release()
	return s
}

func (s *dpScratch) release() { dpPool.Put(s) }

// Knapsack01 solves the 0/1 knapsack problem: choose a subset of items
// maximizing Σ values[i] subject to Σ weights[i] ≤ capacity. Values and
// weights must be non-negative. Returns the chosen indices in increasing
// order. When the capacity is large, weights are scaled down with
// round-up so the returned subset never exceeds the true capacity.
func Knapsack01(values, weights []int64, capacity int64) ([]int, error) {
	if len(values) != len(weights) {
		return nil, fmt.Errorf("optimizer: %d values vs %d weights", len(values), len(weights))
	}
	for i := range values {
		if values[i] < 0 || weights[i] < 0 {
			return nil, fmt.Errorf("optimizer: negative value/weight at item %d", i)
		}
	}
	if capacity < 0 {
		return nil, nil
	}
	n := len(values)
	if n == 0 {
		return nil, nil
	}
	// Scale weights so the DP table fits. Round weights UP so that a
	// selection feasible in scaled units is feasible in true units.
	scale := int64(1)
	if capacity+1 > int64(maxDPCells/max(n, 1)) {
		scale = (capacity + 1 + int64(maxDPCells/max(n, 1)) - 1) / int64(maxDPCells/max(n, 1))
	}
	scaledCap := capacity / scale
	w := make([]int64, n)
	for i := range weights {
		w[i] = (weights[i] + scale - 1) / scale
	}

	// dp[c] is the best value achievable with total scaled weight ≤ c.
	// Zero-initialization is correct because every state is reachable (the
	// empty selection has weight 0 ≤ c and value 0); no unreachable-state
	// sentinel is needed in this "at most c" formulation. keep is a flat
	// n×(scaledCap+1) matrix from the shared pool.
	cells := scaledCap + 1
	scr := grabScratch(n, cells, 0)
	defer scr.release()
	dp, keep := scr.dp, scr.keep
	for i := 0; i < n; i++ {
		row := keep[int64(i)*cells : int64(i+1)*cells]
		for c := scaledCap; c >= w[i]; c-- {
			if cand := dp[c-w[i]] + values[i]; cand > dp[c] {
				dp[c] = cand
				row[c] = true
			}
		}
	}
	// Trace back.
	var chosen []int
	c := scaledCap
	for i := n - 1; i >= 0; i-- {
		if keep[int64(i)*cells+c] {
			chosen = append(chosen, i)
			c -= w[i]
		}
	}
	reverse(chosen)
	return chosen, nil
}

// MinCostCover chooses a subset minimizing Σ costs[i] subject to
// Σ gains[i] ≥ need. Costs and gains must be non-negative. Returns the
// chosen indices and whether the need is coverable at all. Gains are
// scaled down with round-down, so the returned subset always truly covers
// the need.
func MinCostCover(costs, gains []int64, need int64) ([]int, bool, error) {
	if len(costs) != len(gains) {
		return nil, false, fmt.Errorf("optimizer: %d costs vs %d gains", len(costs), len(gains))
	}
	for i := range costs {
		if costs[i] < 0 || gains[i] < 0 {
			return nil, false, fmt.Errorf("optimizer: negative cost/gain at item %d", i)
		}
	}
	if need <= 0 {
		return nil, true, nil
	}
	n := len(costs)
	var totalGain int64
	for _, g := range gains {
		totalGain += g
	}
	if totalGain < need {
		return nil, false, nil
	}
	// Scale gains down (round DOWN) so a scaled cover is a true cover; the
	// need is scaled up correspondingly.
	scale := int64(1)
	if need+1 > int64(maxDPCells/max(n, 1)) {
		scale = (need + 1 + int64(maxDPCells/max(n, 1)) - 1) / int64(maxDPCells/max(n, 1))
	}
	g := make([]int64, n)
	var scaledTotal int64
	for i := range gains {
		g[i] = gains[i] / scale
		scaledTotal += g[i]
	}
	target := (need + scale - 1) / scale
	if scaledTotal < target {
		// Rounding destroyed feasibility; fall back to taking everything
		// (feasible in true units by the totalGain check above).
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, true, nil
	}

	const inf = math.MaxInt64 / 4
	// dp[s] = min cost to reach scaled gain ≥ s (s capped at target).
	// Tables come from the shared pool; keep is flat n×(target+1).
	cells := target + 1
	scr := grabScratch(n, cells, inf)
	defer scr.release()
	dp, keep := scr.dp, scr.keep
	dp[0] = 0
	for i := 0; i < n; i++ {
		row := keep[int64(i)*cells : int64(i+1)*cells]
		for s := target; s >= 1; s-- {
			from := s - g[i]
			if from < 0 {
				from = 0
			}
			if from == s {
				continue // zero-gain item never helps coverage
			}
			if dp[from] < inf && dp[from]+costs[i] < dp[s] {
				dp[s] = dp[from] + costs[i]
				row[s] = true
			}
		}
	}
	if dp[target] >= inf {
		return nil, false, nil
	}
	var chosen []int
	s := target
	for i := n - 1; i >= 0; i-- {
		if s > 0 && keep[int64(i)*cells+s] {
			chosen = append(chosen, i)
			s -= g[i]
			if s < 0 {
				s = 0
			}
		}
	}
	reverse(chosen)
	return chosen, true, nil
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
