package engine

import (
	"math/rand"
	"testing"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/storage"
)

// threeDimDataset proves the whole stack generalizes beyond the paper's
// 2-dimensional sales schema: time × geography × product, 3 levels + ALL
// each, hand-built rollup maps and random facts.
func threeDimDataset(t testing.TB, rows int) *storage.Dataset {
	t.Helper()
	s := &schema.Schema{
		Name: "retail3d",
		Dimensions: []schema.Dimension{
			schema.NewDimension("time",
				schema.Level{Name: "week", Cardinality: 52},
				schema.Level{Name: "quarter", Cardinality: 4},
			),
			schema.NewDimension("geo",
				schema.Level{Name: "store", Cardinality: 40},
				schema.Level{Name: "state", Cardinality: 8},
			),
			schema.NewDimension("product",
				schema.Level{Name: "sku", Cardinality: 100},
				schema.Level{Name: "category", Cardinality: 10},
			),
		},
		Measures: []schema.Measure{{Name: "revenue", Kind: schema.Sum}},
		RowBytes: 32,
	}
	w2q := make([]int32, 52)
	for i := range w2q {
		w2q[i] = int32(i / 13)
	}
	s2s := make([]int32, 40)
	for i := range s2s {
		s2s[i] = int32(i / 5)
	}
	k2c := make([]int32, 100)
	for i := range k2c {
		k2c[i] = int32(i / 10)
	}
	facts := storage.NewTable("facts", lattice.Point{0, 0, 0}, 1, rows)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < rows; i++ {
		if err := facts.Append(
			[]int32{int32(rng.Intn(52)), int32(rng.Intn(40)), int32(rng.Intn(100))},
			[]int64{int64(rng.Intn(1000) + 1)},
		); err != nil {
			t.Fatal(err)
		}
	}
	ds := &storage.Dataset{
		Schema: s,
		Facts:  facts,
		Maps: map[string][]int32{
			schema.MapName("week", "quarter"): w2q,
			schema.MapName("store", "state"):  s2s,
			schema.MapName("sku", "category"): k2c,
		},
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestThreeDimLatticeShape(t *testing.T) {
	ds := threeDimDataset(t, 100)
	l, err := lattice.New(ds.Schema, int64(ds.Facts.Rows()))
	if err != nil {
		t.Fatal(err)
	}
	if l.NumNodes() != 27 { // 3×3×3 levels incl. ALL
		t.Fatalf("nodes = %d, want 27", l.NumNodes())
	}
	apex, _ := l.Node(l.Apex())
	if apex.Rows != 1 {
		t.Errorf("apex rows = %d", apex.Rows)
	}
}

func TestThreeDimTotalInvariant(t *testing.T) {
	ds := threeDimDataset(t, 5000)
	ex, err := NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	want := totalProfit(ds.Facts)
	for _, n := range ex.Lat.Nodes() {
		res, err := Aggregate(ds, ds.Facts, n.Point, Options{})
		if err != nil {
			t.Fatalf("%v: %v", n.Point, err)
		}
		if got := totalProfit(res.Table); got != want {
			t.Errorf("cuboid %s total = %d, want %d", ex.Lat.Name(n.Point), got, want)
		}
	}
}

func TestThreeDimViewRouting(t *testing.T) {
	ds := threeDimDataset(t, 5000)
	ex, err := NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize week×state×category; it must answer quarter×state×ALL.
	mid, err := ex.Lat.PointOf("week", "state", "category")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Materialize(mid); err != nil {
		t.Fatal(err)
	}
	q, err := ex.Lat.PointOf("quarter", "state", "all")
	if err != nil {
		t.Fatal(err)
	}
	if src := ex.SourceFor(q); src.Name != "mv:week×state×category" {
		t.Errorf("routed to %s", src.Name)
	}
	fromView, err := ex.Answer(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Aggregate(ds, ds.Facts, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "3d rollup", direct.Table, fromView.Table)
}
