// Package engine executes aggregation queries over columnar tables: scan,
// optional dimension filters, hash group-by to any coarser lattice point,
// and measure re-aggregation.
//
// It is the single-node stand-in for the paper's Pig-on-Hadoop execution
// layer. Because it can aggregate *any* table whose grain is fine enough —
// not just the base fact table — the same code path both materializes views
// and answers queries from them (rollup), which is exactly the capability
// the paper's processing-cost model (Formula 9/10) prices.
//
// Measure semantics under re-aggregation: Sum sums, MinAgg takes the min,
// MaxAgg takes the max, and Count *sums stored counts* — a base fact table
// with a Count measure stores 1 per row, so counts roll up correctly from
// partially aggregated views.
package engine

import (
	"fmt"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/storage"
	"vmcloud/internal/units"
)

// Stats records the work performed by one aggregation, the currency the
// cluster simulator converts into cloud compute hours.
type Stats struct {
	// RowsScanned is the number of source rows read.
	RowsScanned int64
	// BytesScanned is the estimated volume read (rows × schema row width).
	BytesScanned units.DataSize
	// Groups is the number of output rows produced.
	Groups int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.RowsScanned += other.RowsScanned
	s.BytesScanned += other.BytesScanned
	s.Groups += other.Groups
}

// Result is an aggregation output: a table at the target point plus stats.
type Result struct {
	Table *storage.Table
	Stats Stats
}

// Filter restricts a scan to rows whose key, lifted to the given level of
// the given dimension, equals Code. Example: {Dim: 1, Level: 2, Code: 0}
// keeps only rows in country 0.
type Filter struct {
	Dim   int
	Level int
	Code  int32
}

// Options tunes an aggregation.
type Options struct {
	// Filters are conjunctive dimension filters applied during the scan.
	Filters []Filter
	// Name overrides the output table name.
	Name string
}

// Aggregate rolls table src up to the coarser point target, producing a new
// table. src must be at least as fine as target in every dimension.
// Output rows are sorted by composite key, so results are deterministic.
func Aggregate(ds *storage.Dataset, src *storage.Table, target lattice.Point, opts Options) (*Result, error) {
	if ds == nil || src == nil {
		return nil, fmt.Errorf("engine: nil dataset or source")
	}
	if len(target) != len(ds.Schema.Dimensions) {
		return nil, fmt.Errorf("engine: target %v has %d dims, schema has %d", target, len(target), len(ds.Schema.Dimensions))
	}
	if !src.Point.FinerOrEqual(target) {
		return nil, fmt.Errorf("engine: table %s at %v cannot answer point %v", src.Name, src.Point, target)
	}
	if len(src.Measures) != len(ds.Schema.Measures) {
		return nil, fmt.Errorf("engine: table %s has %d measures, schema has %d", src.Name, len(src.Measures), len(ds.Schema.Measures))
	}

	lifts, radices, err := buildLifts(ds, src, target)
	if err != nil {
		return nil, err
	}
	filters, err := buildFilters(ds, src, opts.Filters)
	if err != nil {
		return nil, err
	}

	name := opts.Name
	if name == "" {
		name = fmt.Sprintf("agg(%s)", src.Name)
	}

	kinds := make([]schema.MeasureKind, len(ds.Schema.Measures))
	for i, m := range ds.Schema.Measures {
		kinds[i] = m.Kind
	}

	// Scan into a flat slot table (see shardTable): one map probe per
	// row, zero per-group allocations.
	n := src.Rows()
	st := shardTable{idx: make(map[int64]int32)}
	st.scan(src, target, filters, lifts, radices, kinds, 0, n)

	out, err := st.emit(name, target, kinds, len(target))
	if err != nil {
		return nil, err
	}
	// Null out key columns at ALL levels: their codes are always 0 and the
	// convention is a nil column.
	for d := range target {
		if target[d] == len(ds.Schema.Dimensions[d].Levels)-1 {
			out.Keys[d] = nil
		}
	}
	return &Result{
		Table: out,
		Stats: Stats{
			RowsScanned:  int64(n),
			BytesScanned: ds.Schema.RowBytes.MulInt(int64(n)),
			Groups:       out.Rows(),
		},
	}, nil
}

// lifter maps a source-level key code to the target-level code.
type liftFn func(int32) int32

func buildLifts(ds *storage.Dataset, src *storage.Table, target lattice.Point) ([]liftFn, []int64, error) {
	lifts := make([]liftFn, len(target))
	radices := make([]int64, len(target))
	for d := range target {
		dim := ds.Schema.Dimensions[d]
		radices[d] = int64(dim.Levels[target[d]].Cardinality)
		if target[d] == len(dim.Levels)-1 {
			lifts[d] = nil // ALL level: constant 0
			continue
		}
		chain, err := ds.MapChain(d, src.Point[d], target[d])
		if err != nil {
			return nil, nil, err
		}
		if len(chain) == 0 {
			lifts[d] = func(k int32) int32 { return k }
			continue
		}
		c := chain
		lifts[d] = func(k int32) int32 {
			for _, m := range c {
				k = m[k]
			}
			return k
		}
	}
	return lifts, radices, nil
}

type boundFilter struct {
	dim  int
	code int32
	lift liftFn
}

func buildFilters(ds *storage.Dataset, src *storage.Table, fs []Filter) ([]boundFilter, error) {
	out := make([]boundFilter, 0, len(fs))
	for _, f := range fs {
		if f.Dim < 0 || f.Dim >= len(ds.Schema.Dimensions) {
			return nil, fmt.Errorf("engine: filter dimension %d out of range", f.Dim)
		}
		dim := ds.Schema.Dimensions[f.Dim]
		if f.Level < 0 || f.Level >= len(dim.Levels) {
			return nil, fmt.Errorf("engine: filter level %d out of range for %s", f.Level, dim.Name)
		}
		if f.Level == len(dim.Levels)-1 {
			if f.Code != 0 {
				return nil, fmt.Errorf("engine: filter on ALL level with non-zero code %d", f.Code)
			}
			continue // matches everything
		}
		if f.Level < src.Point[f.Dim] {
			return nil, fmt.Errorf("engine: filter level %s[%d] finer than table grain %d", dim.Name, f.Level, src.Point[f.Dim])
		}
		if int(f.Code) < 0 || int(f.Code) >= dim.Levels[f.Level].Cardinality {
			return nil, fmt.Errorf("engine: filter code %d out of range for %s level %d", f.Code, dim.Name, f.Level)
		}
		chain, err := ds.MapChain(f.Dim, src.Point[f.Dim], f.Level)
		if err != nil {
			return nil, err
		}
		lift := func(k int32) int32 {
			for _, m := range chain {
				k = m[k]
			}
			return k
		}
		out = append(out, boundFilter{dim: f.Dim, code: f.Code, lift: lift})
	}
	return out, nil
}

func identity(k schema.MeasureKind) int64 {
	switch k {
	case schema.MinAgg:
		return int64(^uint64(0) >> 1) // MaxInt64
	case schema.MaxAgg:
		return -int64(^uint64(0)>>1) - 1 // MinInt64
	default:
		return 0
	}
}

func combine(k schema.MeasureKind, acc, v int64) int64 {
	switch k {
	case schema.MinAgg:
		if v < acc {
			return v
		}
		return acc
	case schema.MaxAgg:
		if v > acc {
			return v
		}
		return acc
	default: // Sum and Count both sum stored values
		return acc + v
	}
}
