package engine

import (
	"testing"
	"testing/quick"

	"vmcloud/internal/lattice"
)

func TestAggregateParallelMatchesSequential(t *testing.T) {
	ds := salesDS(t, 30_000)
	ex, err := NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ex.Lat.Nodes() {
		seq, err := Aggregate(ds, ds.Facts, n.Point, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := AggregateParallel(ds, ds.Facts, n.Point, Options{}, workers)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", n.Point, workers, err)
			}
			assertTablesEqual(t, ex.Lat.Name(n.Point), seq.Table, par.Table)
			if par.Stats != seq.Stats {
				t.Errorf("%v workers=%d: stats %+v vs %+v", n.Point, workers, par.Stats, seq.Stats)
			}
		}
	}
}

func TestAggregateParallelWithFilters(t *testing.T) {
	ds := salesDS(t, 20_000)
	ex, _ := NewExecutor(ds)
	yearAll, _ := ex.Lat.PointOf("year", "all")
	opts := Options{Filters: []Filter{{Dim: 1, Level: 2, Code: 1}}}
	seq, err := Aggregate(ds, ds.Facts, yearAll, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AggregateParallel(ds, ds.Facts, yearAll, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "filtered parallel", seq.Table, par.Table)
}

// Property: any worker count produces the same grand total.
func TestAggregateParallelTotalProperty(t *testing.T) {
	ds := salesDS(t, 10_000)
	ex, _ := NewExecutor(ds)
	want := totalProfit(ds.Facts)
	apex := ex.Lat.Apex()
	f := func(w uint8) bool {
		workers := int(w%16) + 1
		res, err := AggregateParallel(ds, ds.Facts, apex, Options{}, workers)
		if err != nil {
			return false
		}
		return res.Table.Measures[0][0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAggregateParallelFallbacks(t *testing.T) {
	ds := salesDS(t, 100)
	ex, _ := NewExecutor(ds)
	apex := ex.Lat.Apex()
	// workers ≤ 1 delegates to the sequential path.
	res, err := AggregateParallel(ds, ds.Facts, apex, Options{}, 1)
	if err != nil || res.Table.Rows() != 1 {
		t.Errorf("workers=1: %v, %v", res, err)
	}
	// workers > rows clamps.
	if _, err := AggregateParallel(ds, ds.Facts, apex, Options{}, 10_000); err != nil {
		t.Errorf("workers>rows: %v", err)
	}
	// zero selects GOMAXPROCS.
	if _, err := AggregateParallel(ds, ds.Facts, apex, Options{}, 0); err != nil {
		t.Errorf("workers=0: %v", err)
	}
}

func TestAggregateParallelErrors(t *testing.T) {
	ds := salesDS(t, 100)
	if _, err := AggregateParallel(nil, ds.Facts, lattice.Point{0, 0}, Options{}, 2); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := AggregateParallel(ds, nil, lattice.Point{0, 0}, Options{}, 2); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := AggregateParallel(ds, ds.Facts, lattice.Point{0}, Options{}, 2); err == nil {
		t.Error("bad arity accepted")
	}
	ex, _ := NewExecutor(ds)
	yc, _ := ex.Lat.PointOf("year", "country")
	coarse, _ := Aggregate(ds, ds.Facts, yc, Options{})
	if _, err := AggregateParallel(ds, coarse.Table, lattice.Point{0, 0}, Options{}, 2); err == nil {
		t.Error("coarser source accepted")
	}
	if _, err := AggregateParallel(ds, ds.Facts, lattice.Point{0, 0}, Options{
		Filters: []Filter{{Dim: 9}},
	}, 2); err == nil {
		t.Error("bad filter accepted")
	}
}

func BenchmarkAggregateSequential100k(b *testing.B) {
	benchAggWorkers(b, 1)
}

func BenchmarkAggregateParallel4x100k(b *testing.B) {
	benchAggWorkers(b, 4)
}

func benchAggWorkers(b *testing.B, workers int) {
	b.Helper()
	ds := salesDS(b, 100_000)
	ex, err := NewExecutor(ds)
	if err != nil {
		b.Fatal(err)
	}
	monthRegion, _ := ex.Lat.PointOf("month", "region")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AggregateParallel(ds, ds.Facts, monthRegion, Options{}, workers); err != nil {
			b.Fatal(err)
		}
	}
}
