package engine

import (
	"testing"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/storage"
)

// multiMeasureDataset exercises all four measure kinds: a fact table with
// sum, count, min and max columns (count stores 1 per base row).
func multiMeasureDataset(t *testing.T) *storage.Dataset {
	t.Helper()
	s := &schema.Schema{
		Name: "multi",
		Dimensions: []schema.Dimension{
			schema.NewDimension("time",
				schema.Level{Name: "day", Cardinality: 4},
				schema.Level{Name: "month", Cardinality: 2},
			),
			schema.NewDimension("geo",
				schema.Level{Name: "city", Cardinality: 4},
				schema.Level{Name: "country", Cardinality: 2},
			),
		},
		Measures: []schema.Measure{
			{Name: "profit", Kind: schema.Sum},
			{Name: "sales", Kind: schema.Count},
			{Name: "lowest", Kind: schema.MinAgg},
			{Name: "highest", Kind: schema.MaxAgg},
		},
		RowBytes: 40,
	}
	facts := storage.NewTable("facts", lattice.Point{0, 0}, 4, 8)
	rows := []struct {
		day, city      int32
		profit, lo, hi int64
	}{
		{0, 0, 10, 10, 10},
		{0, 1, 20, 20, 20},
		{1, 0, 5, 5, 5},
		{2, 2, 40, 40, 40},
		{3, 3, 8, 8, 8},
		{3, 3, 12, 12, 12},
	}
	for _, r := range rows {
		if err := facts.Append([]int32{r.day, r.city}, []int64{r.profit, 1, r.lo, r.hi}); err != nil {
			t.Fatal(err)
		}
	}
	ds := &storage.Dataset{
		Schema: s,
		Facts:  facts,
		Maps: map[string][]int32{
			schema.MapName("day", "month"):    {0, 0, 1, 1},
			schema.MapName("city", "country"): {0, 0, 1, 1},
		},
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAllMeasureKindsAtApex(t *testing.T) {
	ds := multiMeasureDataset(t)
	apex := lattice.Point{2, 2}
	res, err := Aggregate(ds, ds.Facts, apex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() != 1 {
		t.Fatalf("apex rows = %d", res.Table.Rows())
	}
	if got := res.Table.Measures[0][0]; got != 95 {
		t.Errorf("sum = %d, want 95", got)
	}
	if got := res.Table.Measures[1][0]; got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got := res.Table.Measures[2][0]; got != 5 {
		t.Errorf("min = %d, want 5", got)
	}
	if got := res.Table.Measures[3][0]; got != 40 {
		t.Errorf("max = %d, want 40", got)
	}
}

// All measure kinds must survive two-step rollup (base → view → coarser)
// identically to the direct computation: sum of sums, sum of counts, min of
// mins, max of maxes.
func TestAllMeasureKindsRollupTwoStep(t *testing.T) {
	ds := multiMeasureDataset(t)
	mid := lattice.Point{0, 1} // day × country
	top := lattice.Point{1, 2} // month × ALL
	midRes, err := Aggregate(ds, ds.Facts, mid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Aggregate(ds, ds.Facts, top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaView, err := Aggregate(ds, midRes.Table, top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "multi-measure rollup", direct.Table, viaView.Table)
}

func TestCountMeasureCountsBaseRows(t *testing.T) {
	ds := multiMeasureDataset(t)
	monthAll := lattice.Point{1, 2}
	res, err := Aggregate(ds, ds.Facts, monthAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Month 0 holds days 0-1 (3 rows), month 1 holds days 2-3 (3 rows).
	var total int64
	for r := 0; r < res.Table.Rows(); r++ {
		total += res.Table.Measures[1][r]
	}
	if total != 6 {
		t.Errorf("counts sum to %d, want 6", total)
	}
}
