package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/storage"
)

// shardTable is one worker's private aggregation state: a composite-key
// index into flat, slot-major key/measure buffers. Appending a group
// costs amortized zero allocations, unlike a map of per-group objects.
type shardTable struct {
	idx  map[int64]int32 // composite key → slot
	ids  []int64         // composite key per slot, first-seen order
	keys []int32         // group keys, dims per slot
	vals []int64         // measure accumulators, measures per slot
}

// scan aggregates rows [lo, hi) of src into the table.
func (st *shardTable) scan(src *storage.Table, target lattice.Point, filters []boundFilter, lifts []liftFn, radices []int64, kinds []schema.MeasureKind, lo, hi int) {
	dims := len(target)
	nm := len(kinds)
	rowKeys := make([]int32, dims)
scan:
	for r := lo; r < hi; r++ {
		for _, f := range filters {
			if f.lift(src.Keys[f.dim][r]) != f.code {
				continue scan
			}
		}
		var composite int64
		for d := range target {
			var k int32
			if lifts[d] != nil {
				k = lifts[d](src.Keys[d][r])
			}
			rowKeys[d] = k
			composite = composite*radices[d] + int64(k)
		}
		slot, ok := st.idx[composite]
		if !ok {
			slot = int32(len(st.ids))
			st.idx[composite] = slot
			st.ids = append(st.ids, composite)
			st.keys = append(st.keys, rowKeys...)
			for _, kind := range kinds {
				st.vals = append(st.vals, identity(kind))
			}
		}
		base := int(slot) * nm
		for m, kind := range kinds {
			st.vals[base+m] = combine(kind, st.vals[base+m], src.Measures[m][r])
		}
	}
}

// emit materializes the table's groups as a storage table in composite
// key order (the deterministic output contract of Aggregate).
func (st *shardTable) emit(name string, target lattice.Point, kinds []schema.MeasureKind, dims int) (*storage.Table, error) {
	nm := len(kinds)
	order := make([]int32, len(st.ids))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return st.ids[order[i]] < st.ids[order[j]] })
	out := storage.NewTable(name, target, nm, len(st.ids))
	for _, slot := range order {
		if err := out.Append(st.keys[int(slot)*dims:(int(slot)+1)*dims], st.vals[int(slot)*nm:(int(slot)+1)*nm]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AggregateParallel is Aggregate with partitioned execution: the source
// rows are split into shards, each shard is aggregated by its own
// goroutine into a private hash table, and the partial tables are merged —
// the same plan the MapReduce runtime executes across "machines", applied
// to cores. Results are identical to Aggregate (measure kinds are
// associative and commutative); Stats count the same logical work.
// workers ≤ 0 selects GOMAXPROCS.
func AggregateParallel(ds *storage.Dataset, src *storage.Table, target lattice.Point, opts Options, workers int) (*Result, error) {
	if ds == nil || src == nil {
		return nil, fmt.Errorf("engine: nil dataset or source")
	}
	if len(target) != len(ds.Schema.Dimensions) {
		return nil, fmt.Errorf("engine: target %v has %d dims, schema has %d", target, len(target), len(ds.Schema.Dimensions))
	}
	if !src.Point.FinerOrEqual(target) {
		return nil, fmt.Errorf("engine: table %s at %v cannot answer point %v", src.Name, src.Point, target)
	}
	if len(src.Measures) != len(ds.Schema.Measures) {
		return nil, fmt.Errorf("engine: table %s has %d measures, schema has %d", src.Name, len(src.Measures), len(ds.Schema.Measures))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The scan is CPU-bound: workers beyond the core count cannot run
	// concurrently — they only add duplicate hash tables, duplicate group
	// discovery and merge work. Clamp, so an over-provisioned worker
	// count ties the sequential path on one core and the fan-out tracks
	// the hardware on many.
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	n := src.Rows()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return Aggregate(ds, src, target, opts)
	}

	filters, err := buildFilters(ds, src, opts.Filters)
	if err != nil {
		return nil, err
	}
	kinds := make([]schema.MeasureKind, len(ds.Schema.Measures))
	for i, m := range ds.Schema.Measures {
		kinds[i] = m.Kind
	}

	// Each worker aggregates its row range into a private flat slot
	// table: one map probe per row, group keys and measure accumulators
	// appended to chunked columnar buffers. No per-group allocations —
	// the old map[int64]*group design allocated three objects per
	// distinct group per shard, which is why the parallel path used to
	// lose to the sequential one on a single core.
	dims := len(target)
	nm := len(kinds)
	shards := make([]shardTable, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		lo := n * wkr / workers
		hi := n * (wkr + 1) / workers
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			// Per-goroutine lifts: the closures carry no mutable state, but
			// building them locally keeps the hot loop allocation-free.
			lifts, radices, err := buildLifts(ds, src, target)
			if err != nil {
				errs[wkr] = err
				return
			}
			st := shardTable{idx: make(map[int64]int32)}
			st.scan(src, target, filters, lifts, radices, kinds, lo, hi)
			shards[wkr] = st
		}(wkr, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Merge the shard tables into shard 0 (slot order is deterministic:
	// shards in worker order, slots in first-seen order).
	merged := &shards[0]
	if merged.idx == nil {
		merged.idx = make(map[int64]int32)
	}
	for s := 1; s < workers; s++ {
		st := &shards[s]
		for slot, id := range st.ids {
			dst, ok := merged.idx[id]
			if !ok {
				dst = int32(len(merged.ids))
				merged.idx[id] = dst
				merged.ids = append(merged.ids, id)
				merged.keys = append(merged.keys, st.keys[slot*dims:(slot+1)*dims]...)
				merged.vals = append(merged.vals, st.vals[slot*nm:(slot+1)*nm]...)
				continue
			}
			db := int(dst) * nm
			sb := slot * nm
			for m, kind := range kinds {
				merged.vals[db+m] = combine(kind, merged.vals[db+m], st.vals[sb+m])
			}
		}
	}

	name := opts.Name
	if name == "" {
		name = fmt.Sprintf("agg(%s)", src.Name)
	}
	out, err := merged.emit(name, target, kinds, dims)
	if err != nil {
		return nil, err
	}
	for d := range target {
		if target[d] == len(ds.Schema.Dimensions[d].Levels)-1 {
			out.Keys[d] = nil
		}
	}
	return &Result{
		Table: out,
		Stats: Stats{
			RowsScanned:  int64(n),
			BytesScanned: ds.Schema.RowBytes.MulInt(int64(n)),
			Groups:       out.Rows(),
		},
	}, nil
}
