package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/storage"
)

// AggregateParallel is Aggregate with partitioned execution: the source
// rows are split into shards, each shard is aggregated by its own
// goroutine into a private hash table, and the partial tables are merged —
// the same plan the MapReduce runtime executes across "machines", applied
// to cores. Results are identical to Aggregate (measure kinds are
// associative and commutative); Stats count the same logical work.
// workers ≤ 0 selects GOMAXPROCS.
func AggregateParallel(ds *storage.Dataset, src *storage.Table, target lattice.Point, opts Options, workers int) (*Result, error) {
	if ds == nil || src == nil {
		return nil, fmt.Errorf("engine: nil dataset or source")
	}
	if len(target) != len(ds.Schema.Dimensions) {
		return nil, fmt.Errorf("engine: target %v has %d dims, schema has %d", target, len(target), len(ds.Schema.Dimensions))
	}
	if !src.Point.FinerOrEqual(target) {
		return nil, fmt.Errorf("engine: table %s at %v cannot answer point %v", src.Name, src.Point, target)
	}
	if len(src.Measures) != len(ds.Schema.Measures) {
		return nil, fmt.Errorf("engine: table %s has %d measures, schema has %d", src.Name, len(src.Measures), len(ds.Schema.Measures))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := src.Rows()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return Aggregate(ds, src, target, opts)
	}

	filters, err := buildFilters(ds, src, opts.Filters)
	if err != nil {
		return nil, err
	}
	kinds := make([]schema.MeasureKind, len(ds.Schema.Measures))
	for i, m := range ds.Schema.Measures {
		kinds[i] = m.Kind
	}

	type group struct {
		keys []int32
		vals []int64
	}
	shards := make([]map[int64]*group, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		lo := n * wkr / workers
		hi := n * (wkr + 1) / workers
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			// Per-goroutine lifts: the closures carry no mutable state, but
			// building them locally keeps the hot loop allocation-free.
			lifts, radices, err := buildLifts(ds, src, target)
			if err != nil {
				errs[wkr] = err
				return
			}
			groups := make(map[int64]*group)
			rowKeys := make([]int32, len(target))
		scan:
			for r := lo; r < hi; r++ {
				for _, f := range filters {
					if f.lift(src.Keys[f.dim][r]) != f.code {
						continue scan
					}
				}
				var composite int64
				for d := range target {
					var k int32
					if lifts[d] != nil {
						k = lifts[d](src.Keys[d][r])
					}
					rowKeys[d] = k
					composite = composite*radices[d] + int64(k)
				}
				g, ok := groups[composite]
				if !ok {
					g = &group{keys: append([]int32(nil), rowKeys...), vals: make([]int64, len(kinds))}
					for m, kind := range kinds {
						g.vals[m] = identity(kind)
					}
					groups[composite] = g
				}
				for m, kind := range kinds {
					g.vals[m] = combine(kind, g.vals[m], src.Measures[m][r])
				}
			}
			shards[wkr] = groups
		}(wkr, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Merge shard tables.
	merged := shards[0]
	for _, shard := range shards[1:] {
		for id, g := range shard {
			dst, ok := merged[id]
			if !ok {
				merged[id] = g
				continue
			}
			for m, kind := range kinds {
				dst.vals[m] = combine(kind, dst.vals[m], g.vals[m])
			}
		}
	}

	name := opts.Name
	if name == "" {
		name = fmt.Sprintf("agg(%s)", src.Name)
	}
	ids := make([]int64, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := storage.NewTable(name, target, len(kinds), len(merged))
	for _, id := range ids {
		g := merged[id]
		if err := out.Append(g.keys, g.vals); err != nil {
			return nil, err
		}
	}
	for d := range target {
		if target[d] == len(ds.Schema.Dimensions[d].Levels)-1 {
			out.Keys[d] = nil
		}
	}
	return &Result{
		Table: out,
		Stats: Stats{
			RowsScanned:  int64(n),
			BytesScanned: ds.Schema.RowBytes.MulInt(int64(n)),
			Groups:       out.Rows(),
		},
	}, nil
}
