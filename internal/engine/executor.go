package engine

import (
	"fmt"
	"sort"

	"vmcloud/internal/lattice"
	"vmcloud/internal/storage"
)

// Executor owns a dataset, its lattice, and a set of materialized views,
// and routes each query to the cheapest table able to answer it (the
// smallest answering view, else the base fact table) — the processing model
// the paper's Formula 9 assumes.
type Executor struct {
	DS  *storage.Dataset
	Lat *lattice.Lattice

	views map[string]*storage.Table // keyed by lattice point name
	stats Stats                     // cumulative work across all calls
}

// NewExecutor builds an executor over the dataset.
func NewExecutor(ds *storage.Dataset) (*Executor, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	lat, err := lattice.New(ds.Schema, int64(ds.Facts.Rows()))
	if err != nil {
		return nil, err
	}
	return &Executor{DS: ds, Lat: lat, views: map[string]*storage.Table{}}, nil
}

// Materialize computes and retains the view at point p, sourcing from the
// cheapest already-materialized finer view (or the base table). Returns the
// materialization result. Re-materializing an existing view overwrites it.
func (e *Executor) Materialize(p lattice.Point) (*Result, error) {
	if p.Equal(e.Lat.Base()) {
		return nil, fmt.Errorf("engine: refusing to materialize the base cuboid")
	}
	src := e.cheapestSource(p)
	res, err := Aggregate(e.DS, src, p, Options{Name: "mv:" + e.Lat.Name(p)})
	if err != nil {
		return nil, err
	}
	e.views[e.Lat.Name(p)] = res.Table
	e.stats.Add(res.Stats)
	return res, nil
}

// Drop discards the view at p, if materialized.
func (e *Executor) Drop(p lattice.Point) {
	delete(e.views, e.Lat.Name(p))
}

// DropAll discards every materialized view.
func (e *Executor) DropAll() {
	e.views = map[string]*storage.Table{}
}

// Views returns the currently materialized points, sorted by name.
func (e *Executor) Views() []lattice.Point {
	names := make([]string, 0, len(e.views))
	for n := range e.views {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]lattice.Point, 0, len(names))
	for _, n := range names {
		out = append(out, e.views[n].Point)
	}
	return out
}

// View returns the materialized table at p, if present.
func (e *Executor) View(p lattice.Point) (*storage.Table, bool) {
	t, ok := e.views[e.Lat.Name(p)]
	return t, ok
}

// Answer evaluates the query at point q against the cheapest answering
// table.
func (e *Executor) Answer(q lattice.Point, opts Options) (*Result, error) {
	src := e.cheapestSource(q)
	if opts.Name == "" {
		opts.Name = "q:" + e.Lat.Name(q)
	}
	res, err := Aggregate(e.DS, src, q, opts)
	if err != nil {
		return nil, err
	}
	e.stats.Add(res.Stats)
	return res, nil
}

// cheapestSource returns the smallest table (by actual rows) able to answer
// point p; the base fact table always qualifies. A view exactly at p counts:
// answering from it is a plain scan.
func (e *Executor) cheapestSource(p lattice.Point) *storage.Table {
	best := e.DS.Facts
	for _, t := range e.views {
		if t.Point.FinerOrEqual(p) && t.Rows() < best.Rows() {
			best = t
		}
	}
	return best
}

// SourceFor exposes the routing decision: the table Answer would scan for a
// query at p.
func (e *Executor) SourceFor(p lattice.Point) *storage.Table { return e.cheapestSource(p) }

// CumulativeStats returns the total work performed by this executor across
// all Materialize and Answer calls.
func (e *Executor) CumulativeStats() Stats { return e.stats }

// ResetStats zeroes the cumulative work counters.
func (e *Executor) ResetStats() { e.stats = Stats{} }
