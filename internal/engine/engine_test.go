package engine

import (
	"testing"

	"vmcloud/internal/datagen"
	"vmcloud/internal/lattice"
	"vmcloud/internal/storage"
)

func salesDS(t testing.TB, rows int) *storage.Dataset {
	t.Helper()
	ds, err := datagen.GenerateSales(datagen.Config{Rows: rows, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func totalProfit(tb *storage.Table) int64 {
	var sum int64
	for _, v := range tb.Measures[0] {
		sum += v
	}
	return sum
}

func TestAggregateToApexMatchesDirectSum(t *testing.T) {
	ds := salesDS(t, 10_000)
	ex, err := NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Answer(ex.Lat.Apex(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() != 1 {
		t.Fatalf("apex rows = %d, want 1", res.Table.Rows())
	}
	if got, want := res.Table.Measures[0][0], totalProfit(ds.Facts); got != want {
		t.Errorf("apex total = %d, direct sum = %d", got, want)
	}
	// ALL-level key columns are nil by convention.
	if res.Table.Keys[0] != nil || res.Table.Keys[1] != nil {
		t.Error("apex key columns should be nil")
	}
}

// Total profit is invariant at every cuboid of the lattice.
func TestTotalProfitInvariantAcrossLattice(t *testing.T) {
	ds := salesDS(t, 20_000)
	ex, err := NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	want := totalProfit(ds.Facts)
	for _, n := range ex.Lat.Nodes() {
		res, err := Aggregate(ds, ds.Facts, n.Point, Options{})
		if err != nil {
			t.Fatalf("aggregate to %v: %v", ex.Lat.Name(n.Point), err)
		}
		if got := totalProfit(res.Table); got != want {
			t.Errorf("cuboid %s total = %d, want %d", ex.Lat.Name(n.Point), got, want)
		}
		if res.Stats.RowsScanned != int64(ds.Facts.Rows()) {
			t.Errorf("cuboid %s scanned %d rows, want %d", ex.Lat.Name(n.Point), res.Stats.RowsScanned, ds.Facts.Rows())
		}
		if res.Stats.Groups != res.Table.Rows() {
			t.Errorf("cuboid %s stats groups mismatch", ex.Lat.Name(n.Point))
		}
	}
}

// Rollup transitivity: base→target equals base→mid→target for every
// comparable pair.
func TestRollupFromViewEqualsDirect(t *testing.T) {
	ds := salesDS(t, 15_000)
	ex, err := NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	monthRegion, _ := ex.Lat.PointOf("month", "region")
	mid, err := Aggregate(ds, ds.Facts, monthRegion, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ex.Lat.Descendants(monthRegion) {
		direct, err := Aggregate(ds, ds.Facts, n.Point, Options{})
		if err != nil {
			t.Fatal(err)
		}
		viaView, err := Aggregate(ds, mid.Table, n.Point, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertTablesEqual(t, ex.Lat.Name(n.Point), direct.Table, viaView.Table)
	}
}

func assertTablesEqual(t *testing.T, label string, a, b *storage.Table) {
	t.Helper()
	if a.Rows() != b.Rows() {
		t.Fatalf("%s: rows %d vs %d", label, a.Rows(), b.Rows())
	}
	for r := 0; r < a.Rows(); r++ {
		for d := range a.Keys {
			av, bv := int32(0), int32(0)
			if a.Keys[d] != nil {
				av = a.Keys[d][r]
			}
			if b.Keys[d] != nil {
				bv = b.Keys[d][r]
			}
			if av != bv {
				t.Fatalf("%s: row %d dim %d key %d vs %d", label, r, d, av, bv)
			}
		}
		for m := range a.Measures {
			if a.Measures[m][r] != b.Measures[m][r] {
				t.Fatalf("%s: row %d measure %d: %d vs %d", label, r, m, a.Measures[m][r], b.Measures[m][r])
			}
		}
	}
}

func TestAggregateRejectsCoarserSource(t *testing.T) {
	ds := salesDS(t, 1000)
	ex, _ := NewExecutor(ds)
	yearCountry, _ := ex.Lat.PointOf("year", "country")
	monthCountry, _ := ex.Lat.PointOf("month", "country")
	coarse, err := Aggregate(ds, ds.Facts, yearCountry, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Aggregate(ds, coarse.Table, monthCountry, Options{}); err == nil {
		t.Error("aggregating a coarser table into a finer point was accepted")
	}
}

func TestAggregateArgumentErrors(t *testing.T) {
	ds := salesDS(t, 100)
	if _, err := Aggregate(nil, ds.Facts, lattice.Point{0, 0}, Options{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Aggregate(ds, nil, lattice.Point{0, 0}, Options{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Aggregate(ds, ds.Facts, lattice.Point{0}, Options{}); err == nil {
		t.Error("wrong-arity point accepted")
	}
}

func TestFilters(t *testing.T) {
	ds := salesDS(t, 20_000)
	ex, _ := NewExecutor(ds)
	yearAll, _ := ex.Lat.PointOf("year", "all")
	// Sum per year for country 0 + country 1 + ... = sum per year unfiltered.
	unfiltered, err := Aggregate(ds, ds.Facts, yearAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var totalFiltered int64
	nCountries := ds.Schema.Dimensions[1].Levels[2].Cardinality
	for c := 0; c < nCountries; c++ {
		res, err := Aggregate(ds, ds.Facts, yearAll, Options{
			Filters: []Filter{{Dim: 1, Level: 2, Code: int32(c)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		totalFiltered += totalProfit(res.Table)
	}
	if got, want := totalFiltered, totalProfit(unfiltered.Table); got != want {
		t.Errorf("partitioned totals = %d, want %d", got, want)
	}
}

func TestFilterOnAllLevelMatchesEverything(t *testing.T) {
	ds := salesDS(t, 5000)
	ex, _ := NewExecutor(ds)
	apex := ex.Lat.Apex()
	res, err := Aggregate(ds, ds.Facts, apex, Options{
		Filters: []Filter{{Dim: 0, Level: 3, Code: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := totalProfit(res.Table), totalProfit(ds.Facts); got != want {
		t.Errorf("filtered total = %d, want %d", got, want)
	}
	if _, err := Aggregate(ds, ds.Facts, apex, Options{
		Filters: []Filter{{Dim: 0, Level: 3, Code: 1}},
	}); err == nil {
		t.Error("non-zero ALL filter accepted")
	}
}

func TestFilterErrors(t *testing.T) {
	ds := salesDS(t, 100)
	ex, _ := NewExecutor(ds)
	apex := ex.Lat.Apex()
	bad := []Filter{
		{Dim: 9, Level: 0, Code: 0},
		{Dim: 0, Level: 9, Code: 0},
		{Dim: 1, Level: 2, Code: 99},
	}
	for i, f := range bad {
		if _, err := Aggregate(ds, ds.Facts, apex, Options{Filters: []Filter{f}}); err == nil {
			t.Errorf("bad filter %d accepted", i)
		}
	}
	// Filter finer than the source grain must be rejected.
	yearCountry, _ := ex.Lat.PointOf("year", "country")
	coarse, _ := Aggregate(ds, ds.Facts, yearCountry, Options{})
	if _, err := Aggregate(ds, coarse.Table, ex.Lat.Apex(), Options{
		Filters: []Filter{{Dim: 0, Level: 0, Code: 0}},
	}); err == nil {
		t.Error("filter finer than source grain accepted")
	}
}

func TestExecutorRoutesToCheapestView(t *testing.T) {
	ds := salesDS(t, 20_000)
	ex, err := NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	monthCountry, _ := ex.Lat.PointOf("month", "country")
	yearCountry, _ := ex.Lat.PointOf("year", "country")

	baseline, err := ex.Answer(yearCountry, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Materialize(monthCountry); err != nil {
		t.Fatal(err)
	}
	if src := ex.SourceFor(yearCountry); src.Name != "mv:month×country" {
		t.Errorf("routed to %s, want mv:month×country", src.Name)
	}
	fromView, err := ex.Answer(yearCountry, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "year×country", baseline.Table, fromView.Table)
	if fromView.Stats.RowsScanned >= baseline.Stats.RowsScanned {
		t.Errorf("view answer scanned %d rows, base scanned %d — view should be cheaper",
			fromView.Stats.RowsScanned, baseline.Stats.RowsScanned)
	}
}

func TestExecutorMaterializeFromFinerView(t *testing.T) {
	ds := salesDS(t, 10_000)
	ex, _ := NewExecutor(ds)
	monthCountry, _ := ex.Lat.PointOf("month", "country")
	yearCountry, _ := ex.Lat.PointOf("year", "country")
	if _, err := ex.Materialize(monthCountry); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Materialize(yearCountry)
	if err != nil {
		t.Fatal(err)
	}
	// Should have scanned the month×country view, not the base table.
	mc, _ := ex.View(monthCountry)
	if res.Stats.RowsScanned != int64(mc.Rows()) {
		t.Errorf("materialization scanned %d rows, want view's %d", res.Stats.RowsScanned, mc.Rows())
	}
	direct, _ := Aggregate(ds, ds.Facts, yearCountry, Options{})
	yc, _ := ex.View(yearCountry)
	assertTablesEqual(t, "year×country", direct.Table, yc)
}

func TestExecutorDropAndViews(t *testing.T) {
	ds := salesDS(t, 2000)
	ex, _ := NewExecutor(ds)
	monthCountry, _ := ex.Lat.PointOf("month", "country")
	if _, err := ex.Materialize(monthCountry); err != nil {
		t.Fatal(err)
	}
	if len(ex.Views()) != 1 {
		t.Fatalf("views = %v", ex.Views())
	}
	ex.Drop(monthCountry)
	if len(ex.Views()) != 0 {
		t.Error("drop did not remove view")
	}
	if _, err := ex.Materialize(monthCountry); err != nil {
		t.Fatal(err)
	}
	ex.DropAll()
	if len(ex.Views()) != 0 {
		t.Error("DropAll did not remove views")
	}
	if _, err := ex.Materialize(ex.Lat.Base()); err == nil {
		t.Error("materializing base accepted")
	}
}

func TestCumulativeStats(t *testing.T) {
	ds := salesDS(t, 3000)
	ex, _ := NewExecutor(ds)
	ex.ResetStats()
	apex := ex.Lat.Apex()
	if _, err := ex.Answer(apex, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ex.CumulativeStats().RowsScanned; got != 3000 {
		t.Errorf("cumulative rows = %d, want 3000", got)
	}
	if _, err := ex.Answer(apex, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ex.CumulativeStats().RowsScanned; got != 6000 {
		t.Errorf("cumulative rows = %d, want 6000", got)
	}
	ex.ResetStats()
	if got := ex.CumulativeStats(); got != (Stats{}) {
		t.Errorf("stats after reset = %+v", got)
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	ds := salesDS(t, 5000)
	ex, _ := NewExecutor(ds)
	yearCountry, _ := ex.Lat.PointOf("year", "country")
	a, err := Aggregate(ds, ds.Facts, yearCountry, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Aggregate(ds, ds.Facts, yearCountry, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "determinism", a.Table, b.Table)
	// Keys must be sorted by composite (year, country) order.
	for r := 1; r < a.Table.Rows(); r++ {
		py, pc := a.Table.Keys[0][r-1], a.Table.Keys[1][r-1]
		cy, cc := a.Table.Keys[0][r], a.Table.Keys[1][r]
		if cy < py || (cy == py && cc <= pc) {
			t.Fatalf("output not sorted at row %d: (%d,%d) after (%d,%d)", r, cy, cc, py, pc)
		}
	}
}

func BenchmarkAggregateBaseToYearCountry(b *testing.B) {
	ds := salesDS(b, 100_000)
	ex, err := NewExecutor(ds)
	if err != nil {
		b.Fatal(err)
	}
	yearCountry, _ := ex.Lat.PointOf("year", "country")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate(ds, ds.Facts, yearCountry, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateFromView(b *testing.B) {
	ds := salesDS(b, 100_000)
	ex, err := NewExecutor(ds)
	if err != nil {
		b.Fatal(err)
	}
	monthCountry, _ := ex.Lat.PointOf("month", "country")
	yearCountry, _ := ex.Lat.PointOf("year", "country")
	if _, err := ex.Materialize(monthCountry); err != nil {
		b.Fatal(err)
	}
	src, _ := ex.View(monthCountry)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate(ds, src, yearCountry, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
