// Package scaling explores the tradeoff the paper's introduction frames —
// "finding the best trade-off between raw scalability (i.e., increasing
// resources) and materialized views under budget constraints" — by
// sweeping fleet sizes and, for each fleet, comparing the no-view
// configuration against the view set the optimizer recommends.
//
// Scaling out cuts wall-clock time roughly linearly but leaves the billed
// instance-hours for scan work unchanged (the same bytes get scanned), and
// it multiplies the per-job overhead cost by the fleet size. Materialized
// views cut the bytes themselves. The sweep makes that asymmetry, and the
// crossover points, visible.
package scaling

import (
	"fmt"
	"time"

	"vmcloud/internal/core"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/money"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/workload"
)

// Option is one provisioning alternative.
type Option struct {
	// Instances is the fleet size.
	Instances int
	// WithViews reports whether the optimizer's view set is materialized.
	WithViews bool
	// Views counts the materialized views.
	Views int
	// Time is the monthly workload wall-clock time.
	Time time.Duration
	// Bill is the exact period bill.
	Bill costmodel.Bill
}

// Config parameterizes a sweep. Zero values inherit the defaults of
// core.Config.
type Config struct {
	// Base is the advisory configuration; its Instances field is ignored
	// (the sweep sets it).
	Base core.Config
	// FleetSizes are the instance counts to evaluate; defaults to
	// 1, 2, 4, 8, 16.
	FleetSizes []int
	// Alpha is the MV3 weight used to pick each fleet's view set;
	// defaults to 0.5.
	Alpha float64
}

// Sweep evaluates every fleet size with and without views. Results come in
// pairs: without-views first, then with-views, per fleet size.
func Sweep(cfg Config, w workload.Workload) ([]Option, error) {
	sizes := cfg.FleetSizes
	if len(sizes) == 0 {
		sizes = []int{1, 2, 4, 8, 16}
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	var out []Option
	for _, nb := range sizes {
		if nb <= 0 {
			return nil, fmt.Errorf("scaling: non-positive fleet size %d", nb)
		}
		c := cfg.Base
		c.Instances = nb
		c.Workload = w
		adv, err := core.New(c)
		if err != nil {
			return nil, err
		}
		baseT, baseBill, err := adv.Ev.Evaluate(nil)
		if err != nil {
			return nil, err
		}
		out = append(out, Option{Instances: nb, WithViews: false, Time: baseT, Bill: baseBill})

		sel, err := adv.Ev.SolveMV3(adv.Candidates, alpha, optimizer.NormalizedTradeoff)
		if err != nil {
			return nil, err
		}
		out = append(out, Option{
			Instances: nb,
			WithViews: true,
			Views:     len(sel.Points),
			Time:      sel.Time,
			Bill:      sel.Bill,
		})
	}
	return out, nil
}

// CheapestMeeting returns the lowest-bill option whose workload time meets
// the limit, and whether any option qualifies.
func CheapestMeeting(opts []Option, limit time.Duration) (Option, bool) {
	var best Option
	found := false
	for _, o := range opts {
		if o.Time > limit {
			continue
		}
		if !found || o.Bill.Total() < best.Bill.Total() {
			best, found = o, true
		}
	}
	return best, found
}

// FastestWithin returns the lowest-time option whose bill fits the budget,
// and whether any option qualifies.
func FastestWithin(opts []Option, budget money.Money) (Option, bool) {
	var best Option
	found := false
	for _, o := range opts {
		if o.Bill.Total() > budget {
			continue
		}
		if !found || o.Time < best.Time {
			best, found = o, true
		}
	}
	return best, found
}

// TypedOption extends Option with the instance type, for sweeps across
// both fleet size and configuration (the paper's future-work note on
// "multiple, variable instances", Section 4).
type TypedOption struct {
	Option
	InstanceType string
}

// SweepTypes evaluates every (instance type × fleet size) combination with
// and without views.
func SweepTypes(cfg Config, types []string, w workload.Workload) ([]TypedOption, error) {
	if len(types) == 0 {
		return nil, fmt.Errorf("scaling: no instance types given")
	}
	var out []TypedOption
	for _, ty := range types {
		c := cfg
		c.Base.InstanceType = ty
		opts, err := Sweep(c, w)
		if err != nil {
			return nil, fmt.Errorf("scaling: type %s: %w", ty, err)
		}
		for _, o := range opts {
			out = append(out, TypedOption{Option: o, InstanceType: ty})
		}
	}
	return out, nil
}

// CheapestTypedMeeting returns the lowest-bill typed option meeting the
// limit.
func CheapestTypedMeeting(opts []TypedOption, limit time.Duration) (TypedOption, bool) {
	var best TypedOption
	found := false
	for _, o := range opts {
		if o.Time > limit {
			continue
		}
		if !found || o.Bill.Total() < best.Bill.Total() {
			best, found = o, true
		}
	}
	return best, found
}

// Crossover locates the smallest fleet size at which the no-view
// configuration first meets the limit, alongside the smallest with-view
// fleet doing so — the "how much hardware do views replace" question.
func Crossover(opts []Option, limit time.Duration) (withoutViews, withViews int) {
	withoutViews, withViews = -1, -1
	for _, o := range opts {
		if o.Time > limit {
			continue
		}
		if o.WithViews {
			if withViews == -1 || o.Instances < withViews {
				withViews = o.Instances
			}
		} else if withoutViews == -1 || o.Instances < withoutViews {
			withoutViews = o.Instances
		}
	}
	return withoutViews, withViews
}
