package scaling

import (
	"testing"
	"time"

	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/schema"
	"vmcloud/internal/workload"
)

func salesWorkload(t *testing.T, n, freq int) workload.Workload {
	t.Helper()
	l, err := lattice.New(schema.Sales(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Sales(l, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = freq
	}
	return w
}

func TestSweepShape(t *testing.T) {
	w := salesWorkload(t, 10, 30)
	opts, err := Sweep(Config{FleetSizes: []int{2, 5, 10}}, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 6 {
		t.Fatalf("options = %d, want 6", len(opts))
	}
	// Pairs: (without, with) per fleet size.
	for i := 0; i < len(opts); i += 2 {
		without, with := opts[i], opts[i+1]
		if without.WithViews || !with.WithViews {
			t.Fatalf("pair %d mis-ordered", i/2)
		}
		if without.Instances != with.Instances {
			t.Fatalf("pair %d mixes fleet sizes", i/2)
		}
		// Views always reduce workload time on this workload.
		if with.Time >= without.Time {
			t.Errorf("fleet %d: views did not cut time (%v vs %v)", with.Instances, with.Time, without.Time)
		}
		if with.Views == 0 {
			t.Errorf("fleet %d: no views selected", with.Instances)
		}
	}
	// Scaling out cuts the no-view wall clock.
	if !(opts[0].Time > opts[2].Time && opts[2].Time > opts[4].Time) {
		t.Errorf("no-view times not decreasing with fleet size: %v %v %v",
			opts[0].Time, opts[2].Time, opts[4].Time)
	}
}

// The paper's claim in sweep form: a small fleet with views meets deadlines
// that a much larger fleet without views needs — and more cheaply.
func TestViewsBeatScaleOut(t *testing.T) {
	w := salesWorkload(t, 10, 30)
	opts, err := Sweep(Config{FleetSizes: []int{2, 5, 10, 20}}, w)
	if err != nil {
		t.Fatal(err)
	}
	// Find the no-view time of the 20-instance fleet.
	var bigFleetTime time.Duration
	for _, o := range opts {
		if o.Instances == 20 && !o.WithViews {
			bigFleetTime = o.Time
		}
	}
	if bigFleetTime == 0 {
		t.Fatal("missing 20-instance option")
	}
	// Some with-views option on a smaller fleet meets that time cheaper.
	best, ok := CheapestMeeting(opts, bigFleetTime)
	if !ok {
		t.Fatal("no option meets the big-fleet time")
	}
	if !best.WithViews {
		t.Errorf("cheapest option meeting %v is view-less: %+v", bigFleetTime, best)
	}
	if best.Instances >= 20 {
		t.Errorf("views did not replace hardware: still %d instances", best.Instances)
	}
	var bigFleetBill money.Money
	for _, o := range opts {
		if o.Instances == 20 && !o.WithViews {
			bigFleetBill = o.Bill.Total()
		}
	}
	if best.Bill.Total() >= bigFleetBill {
		t.Errorf("views not cheaper: %v vs %v", best.Bill.Total(), bigFleetBill)
	}
}

func TestCheapestMeetingAndFastestWithin(t *testing.T) {
	w := salesWorkload(t, 5, 30)
	opts, err := Sweep(Config{FleetSizes: []int{2, 8}}, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := CheapestMeeting(opts, time.Nanosecond); ok {
		t.Error("impossible limit met")
	}
	all, ok := CheapestMeeting(opts, 1000*time.Hour)
	if !ok {
		t.Fatal("generous limit unmet")
	}
	for _, o := range opts {
		if o.Bill.Total() < all.Bill.Total() {
			t.Errorf("CheapestMeeting missed cheaper option %+v", o)
		}
	}
	if _, ok := FastestWithin(opts, money.FromDollars(0.01)); ok {
		t.Error("impossible budget met")
	}
	fast, ok := FastestWithin(opts, money.FromDollars(10_000))
	if !ok {
		t.Fatal("generous budget unmet")
	}
	for _, o := range opts {
		if o.Time < fast.Time {
			t.Errorf("FastestWithin missed faster option %+v", o)
		}
	}
}

func TestCrossover(t *testing.T) {
	w := salesWorkload(t, 10, 30)
	opts, err := Sweep(Config{FleetSizes: []int{2, 5, 10, 20}}, w)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a limit met by the biggest no-view fleet.
	var limit time.Duration
	for _, o := range opts {
		if o.Instances == 20 && !o.WithViews {
			limit = o.Time + time.Minute
		}
	}
	without, with := Crossover(opts, limit)
	if without == -1 {
		t.Fatal("no no-view fleet meets its own time")
	}
	if with == -1 {
		t.Fatal("no with-view fleet meets the limit")
	}
	if with > without {
		t.Errorf("views need MORE hardware (%d) than scale-out (%d)?", with, without)
	}
	// Unreachable limit.
	w2, w3 := Crossover(opts, time.Nanosecond)
	if w2 != -1 || w3 != -1 {
		t.Error("nanosecond limit reported reachable")
	}
}

func TestSweepErrors(t *testing.T) {
	w := salesWorkload(t, 3, 1)
	if _, err := Sweep(Config{FleetSizes: []int{0}}, w); err == nil {
		t.Error("zero fleet size accepted")
	}
	if _, err := Sweep(Config{}, workload.Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestSweepDefaults(t *testing.T) {
	w := salesWorkload(t, 3, 30)
	opts, err := Sweep(Config{}, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 10 { // 5 default fleet sizes × 2
		t.Errorf("options = %d, want 10", len(opts))
	}
}
