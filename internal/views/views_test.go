package views

import (
	"testing"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/lattice"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/units"
	"vmcloud/internal/workload"
)

func salesSetup(t testing.TB) (*lattice.Lattice, *cluster.Cluster) {
	t.Helper()
	l, err := lattice.New(schema.Sales(), 200_000_000) // ≈ 10 GB at 50 B/row
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pricing.AWS2012(), "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	return l, cl
}

func TestGenerateCandidatesBasics(t *testing.T) {
	l, _ := salesSetup(t)
	w, err := workload.Sales(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := GenerateCandidates(l, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || len(cands) > 8 {
		t.Fatalf("candidates = %d", len(cands))
	}
	base := l.Base()
	seen := map[string]bool{}
	for _, c := range cands {
		if c.Point.Equal(base) {
			t.Error("base cuboid offered as candidate")
		}
		if c.Benefit <= 0 {
			t.Errorf("candidate %v has benefit %d", l.Name(c.Point), c.Benefit)
		}
		if c.Size <= 0 || c.Rows <= 0 {
			t.Errorf("candidate %v has no size/rows", l.Name(c.Point))
		}
		name := l.Name(c.Point)
		if seen[name] {
			t.Errorf("duplicate candidate %s", name)
		}
		seen[name] = true
	}
}

func TestGenerateCandidatesReduceWorkloadCost(t *testing.T) {
	l, cl := salesSetup(t)
	w, _ := workload.Sales(l, 10)
	cands, err := GenerateCandidates(l, w, 6)
	if err != nil {
		t.Fatal(err)
	}
	before := w.ScanTime(l, nil, cl.TimeFor)
	after := w.ScanTime(l, Points(cands), cl.TimeFor)
	if after >= before {
		t.Errorf("candidates did not reduce workload time: %v vs %v", after, before)
	}
	// 10 queries, 9 of which can be answered by non-base cuboids: a good
	// candidate set should cut time substantially.
	if after > before/2 {
		t.Errorf("candidates cut time only from %v to %v", before, after)
	}
}

// Monotonicity: each successive candidate never increases workload time.
func TestCandidatePrefixMonotone(t *testing.T) {
	l, cl := salesSetup(t)
	w, _ := workload.Sales(l, 10)
	cands, _ := GenerateCandidates(l, w, 8)
	prev := w.ScanTime(l, nil, cl.TimeFor)
	for i := 1; i <= len(cands); i++ {
		cur := w.ScanTime(l, Points(cands[:i]), cl.TimeFor)
		if cur > prev {
			t.Errorf("prefix %d increased time: %v > %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestGenerateCandidatesErrors(t *testing.T) {
	l, _ := salesSetup(t)
	w, _ := workload.Sales(l, 3)
	if _, err := GenerateCandidates(l, w, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := GenerateCandidates(l, workload.Workload{}, 3); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestGenerateCandidatesStopsWhenNoBenefit(t *testing.T) {
	l, _ := salesSetup(t)
	// A workload of only the base-grain query: no view can help.
	w := workload.Workload{Queries: []workload.Query{{
		Name: "base", Point: l.Base(), Frequency: 1,
	}}}
	cands, err := GenerateCandidates(l, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("got %d candidates for a base-only workload", len(cands))
	}
}

func TestEstimatorTimes(t *testing.T) {
	l, cl := salesSetup(t)
	e := NewEstimator(l, cl)
	yearCountry, _ := l.PointOf("year", "country")
	monthCountry, _ := l.PointOf("month", "country")

	// Materialization scans the base: ≈ 10 GB / 50 GBph = 0.2 h.
	mt := e.MaterializationTime(yearCountry)
	if mt < 11*time.Minute || mt > 13*time.Minute {
		t.Errorf("materialization time = %v, want ≈12m", mt)
	}
	if got := e.TotalMaterializationTime([]lattice.Point{yearCountry, monthCountry}); got != e.MaterializationTime(yearCountry)+e.MaterializationTime(monthCountry) {
		t.Errorf("total materialization != sum of parts: %v", got)
	}

	// Query from view is much faster than from base.
	qBase := e.QueryTime(yearCountry, nil)
	qView := e.QueryTime(yearCountry, []lattice.Point{monthCountry})
	if qView >= qBase {
		t.Errorf("query from view %v not faster than base %v", qView, qBase)
	}

	// Maintenance scales with the number of runs.
	e.MaintenanceRuns = 1
	m1 := e.MaintenanceTime(monthCountry)
	e.MaintenanceRuns = 4
	m4 := e.MaintenanceTime(monthCountry)
	if m4 != 4*m1 {
		t.Errorf("maintenance: 4 runs = %v, want 4×%v", m4, m1)
	}
	if e.MaintenanceTime(lattice.Point{99, 99}) != 0 {
		t.Error("invalid point should cost 0 maintenance")
	}
	if got := e.TotalMaintenanceTime([]lattice.Point{monthCountry, yearCountry}); got != e.MaintenanceTime(monthCountry)+e.MaintenanceTime(yearCountry) {
		t.Errorf("total maintenance != sum: %v", got)
	}
}

func TestEstimatorWorkloadTimeMatchesScanTime(t *testing.T) {
	l, cl := salesSetup(t)
	e := NewEstimator(l, cl)
	w, _ := workload.Sales(l, 5)
	mc, _ := l.PointOf("month", "country")
	mat := []lattice.Point{mc}
	if e.WorkloadTime(w, mat) != w.ScanTime(l, mat, cl.TimeFor) {
		t.Error("WorkloadTime disagrees with ScanTime")
	}
}

func TestViewsSizeAndHelpers(t *testing.T) {
	l, _ := salesSetup(t)
	e := NewEstimator(l, nil)
	yc, _ := l.PointOf("year", "country")
	mc, _ := l.PointOf("month", "country")
	n1, _ := l.Node(yc)
	n2, _ := l.Node(mc)
	if got := e.ViewsSize([]lattice.Point{yc, mc}); got != n1.Size+n2.Size {
		t.Errorf("ViewsSize = %v, want %v", got, n1.Size+n2.Size)
	}
	cands := []Candidate{
		{Point: mc, Size: n2.Size},
		{Point: yc, Size: n1.Size},
	}
	if TotalSize(cands) != n1.Size+n2.Size {
		t.Error("TotalSize wrong")
	}
	SortCandidatesBySize(cands)
	if cands[0].Size > cands[1].Size {
		t.Error("SortCandidatesBySize wrong")
	}
	pts := Points(cands)
	if len(pts) != 2 || !pts[0].Equal(cands[0].Point) {
		t.Error("Points wrong")
	}
}

func TestCandidateBenefitsAreNonIncreasing(t *testing.T) {
	// Greedy benefit-per-space: recorded benefits should broadly shrink as
	// the set grows (each new view has less left to improve). We assert
	// non-strict monotonicity of benefit-per-byte, the actual greedy key.
	l, _ := salesSetup(t)
	w, _ := workload.Sales(l, 10)
	cands, _ := GenerateCandidates(l, w, 8)
	for i := 1; i < len(cands); i++ {
		prev := float64(cands[i-1].Benefit) / float64(cands[i-1].Size)
		cur := float64(cands[i].Benefit) / float64(cands[i].Size)
		if cur > prev*1.0000001 {
			t.Errorf("benefit-per-byte increased at step %d: %g > %g", i, cur, prev)
		}
	}
}

func TestUnits(t *testing.T) {
	// Estimator with 10 GB base: check baseSize wiring via materialization.
	l, cl := salesSetup(t)
	e := NewEstimator(l, cl)
	base, _ := l.Node(l.Base())
	if base.Size < 9*units.GB || base.Size > 11*units.GB {
		t.Fatalf("base size = %v, want ≈10 GB", base.Size)
	}
	_ = e
}

func TestPipelinedMaterializationCheaper(t *testing.T) {
	l, cl := salesSetup(t)
	e := NewEstimator(l, cl)
	w, _ := workload.Sales(l, 10)
	cands, _ := GenerateCandidates(l, w, 8)
	pts := Points(cands)

	formula7 := e.TotalMaterializationTime(pts)
	pipelined := e.TotalMaterializationTimePipelined(pts)
	if pipelined > formula7 {
		t.Errorf("pipelined %v costs more than Formula 7's %v", pipelined, formula7)
	}
	// With 8 comparable sales views the saving must be substantial: only
	// the finest views pay a base scan.
	if pipelined > formula7/2 {
		t.Errorf("pipelined %v saved too little vs %v", pipelined, formula7)
	}
	// Single view: identical (nothing to reuse).
	one := []lattice.Point{pts[0]}
	if e.TotalMaterializationTimePipelined(one) != e.TotalMaterializationTime(one) {
		t.Error("single-view pipelined differs from Formula 7")
	}
	// Empty set costs nothing.
	if e.TotalMaterializationTimePipelined(nil) != 0 {
		t.Error("empty set should cost 0")
	}
}

func TestPipelinedMatchesExecutorSourcing(t *testing.T) {
	// The estimator's pipelined plan must mirror what the executor does:
	// materializing month×country then year×country scans the view, not
	// the base, for the second build.
	l, cl := salesSetup(t)
	e := NewEstimator(l, cl)
	mc, _ := l.PointOf("month", "country")
	yc, _ := l.PointOf("year", "country")
	mcNode, _ := l.Node(mc)
	baseNode, _ := l.Node(l.Base())

	got := e.TotalMaterializationTimePipelined([]lattice.Point{mc, yc})
	want := cl.TimeForJob(baseNode.Size) + cl.TimeForJob(mcNode.Size)
	if got != want {
		t.Errorf("pipelined = %v, want base-scan + view-scan = %v", got, want)
	}
}

func TestDeferredMaintenanceCapsAtQueryHits(t *testing.T) {
	l, cl := salesSetup(t)
	e := NewEstimator(l, cl)
	e.MaintenanceRuns = 30 // nightly
	w, _ := workload.Sales(l, 3)
	for i := range w.Queries {
		w.Queries[i].Frequency = 2 // each query twice a month
	}
	cands, _ := GenerateCandidates(l, w, 4)
	pts := Points(cands)

	immediate := e.MaintenanceTimeForWorkload(pts, w)
	if immediate != e.TotalMaintenanceTime(pts) {
		t.Error("immediate policy should equal Formula 11")
	}

	e.Policy = DeferredMaintenance
	deferred := e.MaintenanceTimeForWorkload(pts, w)
	if deferred >= immediate {
		t.Errorf("deferred %v not cheaper than immediate %v with sparse queries", deferred, immediate)
	}
	if deferred == 0 {
		t.Error("deferred maintenance should still pay for served views")
	}

	// A view serving no queries costs nothing under the deferred policy.
	apex := l.Apex()
	unused := []lattice.Point{apex}
	// Build a workload that never touches the apex view... base-grain only.
	baseOnly := workload.Workload{Queries: []workload.Query{{
		Name: "base", Point: l.Base(), Frequency: 10,
	}}}
	if got := e.MaintenanceTimeForWorkload(unused, baseOnly); got != 0 {
		t.Errorf("unused view maintenance = %v, want 0", got)
	}

	// With very frequent queries, deferred converges to immediate.
	for i := range w.Queries {
		w.Queries[i].Frequency = 1000
	}
	if got := e.MaintenanceTimeForWorkload(pts, w); got != immediate {
		t.Errorf("hot deferred = %v, want immediate %v", got, immediate)
	}

	e.MaintenanceRuns = 0
	if got := e.MaintenanceTimeForWorkload(pts, w); got != 0 {
		t.Errorf("zero-run maintenance = %v, want 0", got)
	}
}

// The candidate generator and estimator run unchanged on a 3-dimensional
// schema (time × geo × product) — nothing in the selection machinery is
// specific to the paper's 2-dimensional sales example.
func TestThreeDimCandidatesAndEstimation(t *testing.T) {
	s := &schema.Schema{
		Name: "retail3d",
		Dimensions: []schema.Dimension{
			schema.NewDimension("time",
				schema.Level{Name: "week", Cardinality: 52},
				schema.Level{Name: "quarter", Cardinality: 4},
			),
			schema.NewDimension("geo",
				schema.Level{Name: "store", Cardinality: 40},
				schema.Level{Name: "state", Cardinality: 8},
			),
			schema.NewDimension("product",
				schema.Level{Name: "sku", Cardinality: 100},
				schema.Level{Name: "category", Cardinality: 10},
			),
		},
		Measures: []schema.Measure{{Name: "revenue", Kind: schema.Sum}},
		RowBytes: 32,
	}
	l, err := lattice.New(s, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumNodes() != 27 {
		t.Fatalf("nodes = %d, want 27", l.NumNodes())
	}
	var w workload.Workload
	for _, names := range [][]string{
		{"quarter", "state", "category"},
		{"week", "state", "all"},
		{"quarter", "all", "category"},
		{"all", "state", "all"},
	} {
		p, err := l.PointOf(names...)
		if err != nil {
			t.Fatal(err)
		}
		w.Queries = append(w.Queries, workload.Query{Name: l.Name(p), Point: p, Frequency: 1})
	}
	cands, err := GenerateCandidates(l, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates on 3-dim schema")
	}
	cl, err := cluster.New(pricing.AWS2012(), "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(l, cl)
	before := est.WorkloadTime(w, nil)
	after := est.WorkloadTime(w, Points(cands))
	if after >= before {
		t.Errorf("3-dim candidates did not help: %v vs %v", after, before)
	}
	if est.ViewsSize(Points(cands)) <= 0 {
		t.Error("candidate sizes missing")
	}
}
