// Package views provides the materialized-view machinery the paper builds
// on: candidate generation (the "existing materialized view selection
// method [8]" of Section 2.3, implemented as HRU-style greedy
// benefit-per-unit-space selection over the cuboid lattice), analytical
// estimation of materialization / maintenance / query-processing times,
// and incremental view maintenance for insert batches.
package views

import (
	"fmt"
	"sort"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/lattice"
	"vmcloud/internal/units"
	"vmcloud/internal/workload"
)

// Candidate is a view the optimizer may decide to materialize.
type Candidate struct {
	// Point is the cuboid.
	Point lattice.Point
	// Rows and Size are the lattice estimates.
	Rows int64
	Size units.DataSize
	// Benefit is the HRU benefit (frequency-weighted rows saved across the
	// workload) recorded when the candidate was generated.
	Benefit int64
}

// GenerateCandidates runs greedy benefit-per-unit-space selection (Harinarayan,
// Rajaraman & Ullman's algorithm, the standard the paper's reference [8]
// builds on) and returns up to k candidate views, in selection order.
// Views with no positive benefit for the workload are never returned; the
// base cuboid is excluded (materializing it duplicates the fact table).
//
// The loop maintains the incremental assignment directly: curRows[q] is
// the scan size of query q's cheapest chosen source, so a round's
// benefit per node is Σ_q freq × max(0, curRows[q] − rows(v)) over the
// queries v can answer — one answerability-index probe per (node, query)
// instead of re-running CheapestAnswering against the whole chosen set
// per (node, query, round).
func GenerateCandidates(l *lattice.Lattice, w workload.Workload, k int) ([]Candidate, error) {
	if err := w.Validate(l); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("views: non-positive candidate budget %d", k)
	}
	// Per-query routing state: id and the rows of the current cheapest
	// chosen source (initially the base table).
	baseRows := l.NodeByID(0).Rows
	nq := len(w.Queries)
	qid := make([]int, nq)
	qfreq := make([]int64, nq)
	curRows := make([]int64, nq)
	for i, q := range w.Queries {
		id, err := l.ID(q.Point)
		if err != nil {
			return nil, err
		}
		qid[i] = id
		qfreq[i] = int64(q.Frequency)
		curRows[i] = baseRows
	}
	base := l.Base()
	var pool []lattice.Node
	var poolIDs []int
	for id, n := range l.Nodes() {
		if !n.Point.Equal(base) {
			pool = append(pool, n)
			poolIDs = append(poolIDs, id)
		}
	}
	var selected []Candidate
	for len(selected) < k {
		bestIdx := -1
		var bestBenefit int64
		var bestPerByte float64
		for i, n := range pool {
			if n.Point == nil {
				continue // already selected
			}
			var b int64
			for q := 0; q < nq; q++ {
				if n.Rows < curRows[q] && l.CanAnswerID(poolIDs[i], qid[q]) {
					b += qfreq[q] * (curRows[q] - n.Rows)
				}
			}
			if b <= 0 {
				continue
			}
			perByte := float64(b) / float64(n.Size)
			if bestIdx == -1 || perByte > bestPerByte {
				bestIdx, bestBenefit, bestPerByte = i, b, perByte
			}
		}
		if bestIdx == -1 {
			break // nothing beneficial left
		}
		n := pool[bestIdx]
		selected = append(selected, Candidate{
			Point:   n.Point,
			Rows:    n.Rows,
			Size:    n.Size,
			Benefit: bestBenefit,
		})
		for q := 0; q < nq; q++ {
			if n.Rows < curRows[q] && l.CanAnswerID(poolIDs[bestIdx], qid[q]) {
				curRows[q] = n.Rows
			}
		}
		pool[bestIdx].Point = nil
	}
	return selected, nil
}

// Points extracts the lattice points of a candidate list.
func Points(cands []Candidate) []lattice.Point {
	out := make([]lattice.Point, len(cands))
	for i, c := range cands {
		out[i] = c.Point
	}
	return out
}

// TotalSize sums candidate sizes.
func TotalSize(cands []Candidate) units.DataSize {
	var s units.DataSize
	for _, c := range cands {
		s += c.Size
	}
	return s
}

// MaintenancePolicy selects when views are refreshed.
type MaintenancePolicy int

const (
	// ImmediateMaintenance refreshes every view in every maintenance
	// window (the paper's model: querying by day, maintenance by night).
	ImmediateMaintenance MaintenancePolicy = iota
	// DeferredMaintenance refreshes a view lazily, just before a query
	// actually reads it (Zhou et al.'s lazy maintenance, the paper's
	// reference [27]): a view pays for at most as many refreshes as it
	// serves query executions in the period.
	DeferredMaintenance
)

// Estimator prices view operations in time on a concrete cluster, feeding
// the paper's computing-cost formulas (Section 4.2).
type Estimator struct {
	Lat *lattice.Lattice
	Cl  *cluster.Cluster
	// UpdateRatio is the fraction of the base volume arriving as fresh data
	// per maintenance run (drives incremental-maintenance cost).
	UpdateRatio float64
	// MaintenanceRuns is the number of maintenance windows per month (the
	// paper separates day-time querying from night-time maintenance).
	MaintenanceRuns int
	// Policy selects immediate (default) or deferred maintenance.
	Policy MaintenancePolicy
}

// NewEstimator builds an estimator with the defaults used by the
// experiments: 5% update ratio, 4 maintenance runs per month.
func NewEstimator(l *lattice.Lattice, cl *cluster.Cluster) *Estimator {
	return &Estimator{Lat: l, Cl: cl, UpdateRatio: 0.05, MaintenanceRuns: 4}
}

// baseSize returns the base cuboid's data volume.
func (e *Estimator) baseSize() units.DataSize {
	n, _ := e.Lat.Node(e.Lat.Base())
	return n.Size
}

// MaterializationTime estimates t_materialization(V_k): one job scanning
// the base table and writing the view (Formula 7's per-view term).
func (e *Estimator) MaterializationTime(p lattice.Point) time.Duration {
	return e.Cl.TimeForJob(e.baseSize())
}

// TotalMaterializationTime is Formula 7: the sum over the view set.
func (e *Estimator) TotalMaterializationTime(ps []lattice.Point) time.Duration {
	var total time.Duration
	for _, p := range ps {
		total += e.MaterializationTime(p)
	}
	return total
}

// TotalMaterializationTimePipelined estimates building the whole view set
// in one pass where each view is computed from the smallest finer view
// built before it (falling back to the base table) — the strategy
// engine.Executor.Materialize actually uses. Formula 7 charges every view
// a full base scan; pipelining is strictly cheaper whenever the set
// contains comparable views, an optimization the paper does not model.
func (e *Estimator) TotalMaterializationTimePipelined(ps []lattice.Point) time.Duration {
	// Build finest-first so coarser views can reuse finer ones.
	order := make([]lattice.Point, len(ps))
	copy(order, ps)
	sort.SliceStable(order, func(i, j int) bool {
		ni, erri := e.Lat.Node(order[i])
		nj, errj := e.Lat.Node(order[j])
		if erri != nil || errj != nil {
			return false
		}
		return ni.Rows > nj.Rows
	})
	var total time.Duration
	var built []lattice.Point
	for _, p := range order {
		_, src := e.Lat.CheapestAnswering(built, p)
		total += e.Cl.TimeForJob(src.Size)
		built = append(built, p)
	}
	return total
}

// MaintenanceTime estimates t_maintenance(V_k) per month: each run scans
// the arriving delta and merges it into the view (incremental maintenance,
// so cost scales with delta + view size, not with the base).
func (e *Estimator) MaintenanceTime(p lattice.Point) time.Duration {
	n, err := e.Lat.Node(p)
	if err != nil {
		return 0
	}
	delta := e.baseSize().MulFloat(e.UpdateRatio)
	perRun := e.Cl.TimeForJob(delta + n.Size)
	return time.Duration(e.MaintenanceRuns) * perRun
}

// TotalMaintenanceTime is Formula 11: the sum over the view set.
func (e *Estimator) TotalMaintenanceTime(ps []lattice.Point) time.Duration {
	var total time.Duration
	for _, p := range ps {
		total += e.MaintenanceTime(p)
	}
	return total
}

// MaintenanceTimeForWorkload prices maintenance under the estimator's
// policy. Immediate maintenance is workload-independent (Formula 11);
// deferred maintenance caps each view's refresh count at the number of
// query executions it actually serves under cheapest-answering routing.
func (e *Estimator) MaintenanceTimeForWorkload(ps []lattice.Point, w workload.Workload) time.Duration {
	if e.Policy == ImmediateMaintenance {
		return e.TotalMaintenanceTime(ps)
	}
	// Count monthly executions served per view.
	served := make(map[string]int, len(ps))
	for _, q := range w.Queries {
		src, _ := e.Lat.CheapestAnswering(ps, q.Point)
		if src.Equal(e.Lat.Base()) {
			continue
		}
		served[e.Lat.Name(src)] += q.Frequency
	}
	if e.MaintenanceRuns <= 0 {
		return 0
	}
	var total time.Duration
	for _, p := range ps {
		runs := e.MaintenanceRuns
		if hits := served[e.Lat.Name(p)]; hits < runs {
			runs = hits
		}
		if runs <= 0 {
			continue
		}
		perRun := e.MaintenanceTime(p) / time.Duration(e.MaintenanceRuns)
		total += time.Duration(runs) * perRun
	}
	return total
}

// QueryTime estimates t_iV: the scan of the cheapest source answering q
// among the materialized set (or the base table).
func (e *Estimator) QueryTime(q lattice.Point, materialized []lattice.Point) time.Duration {
	_, node := e.Lat.CheapestAnswering(materialized, q)
	return e.Cl.TimeForJob(node.Size)
}

// WorkloadTime is Formula 9: Σ t_iV over the workload (frequency-weighted),
// per month.
func (e *Estimator) WorkloadTime(w workload.Workload, materialized []lattice.Point) time.Duration {
	return w.ScanTime(e.Lat, materialized, e.Cl.TimeForJob)
}

// ViewsSize sums the estimated stored size of the given points (the
// duplicated data of Section 4.3).
func (e *Estimator) ViewsSize(ps []lattice.Point) units.DataSize {
	var total units.DataSize
	for _, p := range ps {
		if n, err := e.Lat.Node(p); err == nil {
			total += n.Size
		}
	}
	return total
}

// SortCandidatesBySize orders candidates by ascending size (stable), a
// useful presentation order for reports.
func SortCandidatesBySize(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Size < cands[j].Size })
}
