package views

import (
	"testing"

	"vmcloud/internal/lattice"
	"vmcloud/internal/schema"
	"vmcloud/internal/workload"
)

// naiveBenefit is the pre-index formulation: the frequency-weighted
// reduction in scanned rows if v joins the chosen set, computed by
// re-routing every query against the full set twice.
func naiveBenefit(l *lattice.Lattice, w workload.Workload, chosen []lattice.Point, v lattice.Node) int64 {
	var total int64
	withV := append(append([]lattice.Point(nil), chosen...), v.Point)
	for _, q := range w.Queries {
		_, before := l.CheapestAnswering(chosen, q.Point)
		_, after := l.CheapestAnswering(withV, q.Point)
		if after.Rows < before.Rows {
			total += int64(q.Frequency) * (before.Rows - after.Rows)
		}
	}
	return total
}

// naiveGenerate is the original HRU loop, kept verbatim as the oracle
// the incremental-assignment rewrite must match selection for selection.
func naiveGenerate(l *lattice.Lattice, w workload.Workload, k int) []Candidate {
	base := l.Base()
	var pool []lattice.Node
	for _, n := range l.Nodes() {
		if !n.Point.Equal(base) {
			pool = append(pool, n)
		}
	}
	var selected []Candidate
	chosen := make([]lattice.Point, 0, k)
	for len(selected) < k {
		bestIdx := -1
		var bestBenefit int64
		var bestPerByte float64
		for i, n := range pool {
			if n.Point == nil {
				continue
			}
			b := naiveBenefit(l, w, chosen, n)
			if b <= 0 {
				continue
			}
			perByte := float64(b) / float64(n.Size)
			if bestIdx == -1 || perByte > bestPerByte {
				bestIdx, bestBenefit, bestPerByte = i, b, perByte
			}
		}
		if bestIdx == -1 {
			break
		}
		n := pool[bestIdx]
		selected = append(selected, Candidate{Point: n.Point, Rows: n.Rows, Size: n.Size, Benefit: bestBenefit})
		chosen = append(chosen, n.Point)
		pool[bestIdx].Point = nil
	}
	return selected
}

// TestGenerateCandidatesMatchesNaiveHRU: the incremental-assignment HRU
// must reproduce the naive algorithm's selections exactly — same views,
// same order, same recorded benefits — on the paper's lattice and on
// synthetic ones with random workloads.
func TestGenerateCandidatesMatchesNaiveHRU(t *testing.T) {
	type instance struct {
		name     string
		dims     int
		levels   int
		factRows int64
		queries  int
		seed     int64
	}
	cases := []instance{
		{"synthetic-3x3", 3, 3, 5_000_000, 8, 1},
		{"synthetic-4x4", 4, 4, 1_000_000_000, 20, 1},
		{"synthetic-2x4", 2, 4, 40_000_000, 12, 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sch, err := schema.Synthetic(c.dims, c.levels)
			if err != nil {
				t.Fatal(err)
			}
			l, err := lattice.New(sch, c.factRows)
			if err != nil {
				t.Fatal(err)
			}
			w, err := workload.Random(l, c.queries, 8, c.seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 5, 32} {
				got, err := GenerateCandidates(l, w, k)
				if err != nil {
					t.Fatal(err)
				}
				want := naiveGenerate(l, w, k)
				if len(got) != len(want) {
					t.Fatalf("k=%d: %d candidates, naive HRU picked %d", k, len(got), len(want))
				}
				for i := range got {
					if !got[i].Point.Equal(want[i].Point) || got[i].Benefit != want[i].Benefit {
						t.Fatalf("k=%d candidate %d: got %v benefit %d, naive %v benefit %d",
							k, i, got[i].Point, got[i].Benefit, want[i].Point, want[i].Benefit)
					}
				}
			}
		})
	}

	// Paper's sales lattice with the full workload.
	l, err := lattice.New(schema.Sales(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Sales(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateCandidates(l, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveGenerate(l, w, 8)
	if len(got) != len(want) {
		t.Fatalf("sales: %d candidates vs naive %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Point.Equal(want[i].Point) || got[i].Benefit != want[i].Benefit {
			t.Fatalf("sales candidate %d: got %v/%d, naive %v/%d",
				i, got[i].Point, got[i].Benefit, want[i].Point, want[i].Benefit)
		}
	}
}

// BenchmarkGenerateCandidatesLarge measures HRU candidate generation on
// the 256-cuboid stress lattice — the round-robin the incremental
// assignment accelerates.
func BenchmarkGenerateCandidatesLarge(b *testing.B) {
	sch, err := schema.Synthetic(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lattice.New(sch, 1_000_000_000)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.Random(l, 20, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateCandidates(l, w, 32); err != nil {
			b.Fatal(err)
		}
	}
}
