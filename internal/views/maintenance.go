package views

import (
	"fmt"

	"vmcloud/internal/engine"
	"vmcloud/internal/schema"
	"vmcloud/internal/storage"
)

// ApplyInsertBatch performs incremental view maintenance: the batch (new
// fact rows at base grain) is aggregated once per materialized view and
// merged into it, then appended to the base table. This is the maintenance
// procedure whose cost Formula 11/12 models — each view pays for a delta
// scan plus a merge, not for full recomputation. The returned stats report
// the refresh work performed (delta scans plus merge reads).
func ApplyInsertBatch(ex *engine.Executor, batch *storage.Table) (engine.Stats, error) {
	var stats engine.Stats
	if ex == nil || batch == nil {
		return stats, fmt.Errorf("views: nil executor or batch")
	}
	if err := batch.Validate(); err != nil {
		return stats, err
	}
	if !batch.Point.Equal(ex.Lat.Base()) {
		return stats, fmt.Errorf("views: insert batch must be at base grain %v, got %v", ex.Lat.Base(), batch.Point)
	}
	if len(batch.Measures) != len(ex.DS.Schema.Measures) {
		return stats, fmt.Errorf("views: batch has %d measures, schema has %d", len(batch.Measures), len(ex.DS.Schema.Measures))
	}
	// Refresh every materialized view from the delta.
	for _, p := range ex.Views() {
		viewTable, ok := ex.View(p)
		if !ok {
			continue
		}
		agg, err := engine.Aggregate(ex.DS, batch, p, engine.Options{Name: "delta:" + ex.Lat.Name(p)})
		if err != nil {
			return stats, fmt.Errorf("views: aggregating delta for %s: %w", ex.Lat.Name(p), err)
		}
		stats.Add(agg.Stats)
		// The merge reads the existing view once (hash build).
		stats.Add(engine.Stats{
			RowsScanned:  int64(viewTable.Rows()),
			BytesScanned: ex.DS.Schema.RowBytes.MulInt(int64(viewTable.Rows())),
		})
		if err := mergeInto(ex.DS, viewTable, agg.Table); err != nil {
			return stats, fmt.Errorf("views: merging delta into %s: %w", ex.Lat.Name(p), err)
		}
	}
	// Append the delta to the base table.
	keys := make([]int32, len(batch.Keys))
	vals := make([]int64, len(batch.Measures))
	for r := 0; r < batch.Rows(); r++ {
		for d := range keys {
			keys[d] = batch.Keys[d][r]
		}
		for m := range vals {
			vals[m] = batch.Measures[m][r]
		}
		if err := ex.DS.Facts.Append(keys, vals); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// mergeInto folds delta (at the same lattice point as dst) into dst,
// combining measures per their schema kinds and appending unseen keys.
// The destination is re-sorted afterwards so results stay deterministic.
func mergeInto(ds *storage.Dataset, dst, delta *storage.Table) error {
	if !dst.Point.Equal(delta.Point) {
		return fmt.Errorf("views: merge grain mismatch: %v vs %v", dst.Point, delta.Point)
	}
	radices := make([]int64, len(dst.Point))
	for d, lv := range dst.Point {
		radices[d] = int64(ds.Schema.Dimensions[d].Levels[lv].Cardinality)
	}
	composite := func(t *storage.Table, r int) int64 {
		var key int64
		for d := range t.Keys {
			var k int32
			if t.Keys[d] != nil {
				k = t.Keys[d][r]
			}
			key = key*radices[d] + int64(k)
		}
		return key
	}
	index := make(map[int64]int, dst.Rows())
	for r := 0; r < dst.Rows(); r++ {
		index[composite(dst, r)] = r
	}
	kinds := ds.Schema.Measures
	keys := make([]int32, len(dst.Keys))
	vals := make([]int64, len(dst.Measures))
	for r := 0; r < delta.Rows(); r++ {
		key := composite(delta, r)
		if i, ok := index[key]; ok {
			for m := range dst.Measures {
				dst.Measures[m][i] = combineMeasure(kinds[m].Kind, dst.Measures[m][i], delta.Measures[m][r])
			}
			continue
		}
		for d := range keys {
			if delta.Keys[d] != nil {
				keys[d] = delta.Keys[d][r]
			} else {
				keys[d] = 0
			}
		}
		for m := range vals {
			vals[m] = delta.Measures[m][r]
		}
		// New group: the destination may carry nil key columns for ALL
		// levels; Append requires aligned columns, so rebuild them as
		// explicit zero columns first if needed.
		for d := range dst.Keys {
			if dst.Keys[d] == nil && dst.Point[d] != len(ds.Schema.Dimensions[d].Levels)-1 {
				return fmt.Errorf("views: destination %s key column %d unexpectedly nil", dst.Name, d)
			}
		}
		if err := appendAligned(dst, keys, vals); err != nil {
			return err
		}
		index[key] = dst.Rows() - 1
	}
	dst.SortByKeys()
	return nil
}

// appendAligned appends a row to a table that may have nil (ALL-level) key
// columns, keeping those columns nil.
func appendAligned(t *storage.Table, keys []int32, vals []int64) error {
	nilCols := make([]bool, len(t.Keys))
	for d := range t.Keys {
		nilCols[d] = t.Keys[d] == nil
		if nilCols[d] {
			// Temporarily give Append an aligned column of zeros.
			t.Keys[d] = make([]int32, t.Rows())
		}
	}
	err := t.Append(keys, vals)
	for d := range t.Keys {
		if nilCols[d] {
			t.Keys[d] = nil
		}
	}
	return err
}

func combineMeasure(k schema.MeasureKind, a, b int64) int64 {
	switch k {
	case schema.MinAgg:
		if b < a {
			return b
		}
		return a
	case schema.MaxAgg:
		if b > a {
			return b
		}
		return a
	default: // Sum, Count
		return a + b
	}
}
