package views

import (
	"math/rand"
	"testing"

	"vmcloud/internal/datagen"
	"vmcloud/internal/engine"
	"vmcloud/internal/lattice"
	"vmcloud/internal/storage"
)

func freshExecutor(t *testing.T, rows int) *engine.Executor {
	t.Helper()
	ds, err := datagen.GenerateSales(datagen.Config{Rows: rows, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := engine.NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// randomBatch builds an insert batch of new fact rows at base grain.
func randomBatch(ex *engine.Executor, n int, seed int64) *storage.Table {
	rng := rand.New(rand.NewSource(seed))
	days := ex.DS.Schema.Dimensions[0].Levels[0].Cardinality
	depts := ex.DS.Schema.Dimensions[1].Levels[0].Cardinality
	b := storage.NewTable("batch", lattice.Point{0, 0}, 1, n)
	for i := 0; i < n; i++ {
		_ = b.Append(
			[]int32{int32(rng.Intn(days)), int32(rng.Intn(depts))},
			[]int64{int64(rng.Intn(5000) + 1)},
		)
	}
	return b
}

// The central invariant: incremental refresh must equal rematerialization
// from scratch, for every materialized view.
func TestIncrementalRefreshEqualsRematerialization(t *testing.T) {
	ex := freshExecutor(t, 10_000)
	mc, _ := ex.Lat.PointOf("month", "country")
	yr, _ := ex.Lat.PointOf("year", "region")
	apex := ex.Lat.Apex()
	for _, p := range []lattice.Point{mc, yr, apex} {
		if _, err := ex.Materialize(p); err != nil {
			t.Fatal(err)
		}
	}

	batch := randomBatch(ex, 2_000, 99)
	stats, err := ApplyInsertBatch(ex, batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsScanned < int64(batch.Rows()) {
		t.Errorf("refresh stats report %d rows scanned, want at least the batch's %d",
			stats.RowsScanned, batch.Rows())
	}

	for _, p := range []lattice.Point{mc, yr, apex} {
		refreshed, _ := ex.View(p)
		// Rebuild from the (now updated) base.
		direct, err := engine.Aggregate(ex.DS, ex.DS.Facts, p, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if refreshed.Rows() != direct.Table.Rows() {
			t.Fatalf("%s: refreshed %d rows, direct %d", ex.Lat.Name(p), refreshed.Rows(), direct.Table.Rows())
		}
		for r := 0; r < refreshed.Rows(); r++ {
			for d := range refreshed.Keys {
				var rv, dv int32
				if refreshed.Keys[d] != nil {
					rv = refreshed.Keys[d][r]
				}
				if direct.Table.Keys[d] != nil {
					dv = direct.Table.Keys[d][r]
				}
				if rv != dv {
					t.Fatalf("%s row %d dim %d: %d vs %d", ex.Lat.Name(p), r, d, rv, dv)
				}
			}
			if refreshed.Measures[0][r] != direct.Table.Measures[0][r] {
				t.Fatalf("%s row %d: measure %d vs %d", ex.Lat.Name(p), r,
					refreshed.Measures[0][r], direct.Table.Measures[0][r])
			}
		}
	}
	// The base table grew by the batch.
	if ex.DS.Facts.Rows() != 12_000 {
		t.Errorf("facts rows = %d, want 12000", ex.DS.Facts.Rows())
	}
}

func TestApplyInsertBatchNewGroups(t *testing.T) {
	ex := freshExecutor(t, 500) // sparse: many groups missing
	mc, _ := ex.Lat.PointOf("month", "country")
	if _, err := ex.Materialize(mc); err != nil {
		t.Fatal(err)
	}
	before, _ := ex.View(mc)
	beforeRows := before.Rows()

	// A large batch certainly creates new (month, country) groups.
	batch := randomBatch(ex, 5_000, 123)
	if _, err := ApplyInsertBatch(ex, batch); err != nil {
		t.Fatal(err)
	}
	after, _ := ex.View(mc)
	if after.Rows() <= beforeRows {
		t.Errorf("view rows %d did not grow from %d", after.Rows(), beforeRows)
	}
	// And stays sorted.
	for r := 1; r < after.Rows(); r++ {
		prev := int64(after.Keys[0][r-1])*1000 + int64(after.Keys[1][r-1])
		cur := int64(after.Keys[0][r])*1000 + int64(after.Keys[1][r])
		if cur <= prev {
			t.Fatalf("view unsorted at row %d", r)
		}
	}
}

func TestApplyInsertBatchErrors(t *testing.T) {
	ex := freshExecutor(t, 100)
	if _, err := ApplyInsertBatch(nil, nil); err == nil {
		t.Error("nil args accepted")
	}
	if _, err := ApplyInsertBatch(ex, nil); err == nil {
		t.Error("nil batch accepted")
	}
	// Wrong grain.
	yc, _ := ex.Lat.PointOf("year", "country")
	bad := storage.NewTable("bad", yc, 1, 1)
	_ = bad.Append([]int32{0, 0}, []int64{1})
	if _, err := ApplyInsertBatch(ex, bad); err == nil {
		t.Error("non-base batch accepted")
	}
	// Wrong measures.
	bad2 := storage.NewTable("bad2", lattice.Point{0, 0}, 2, 1)
	_ = bad2.Append([]int32{0, 0}, []int64{1, 2})
	if _, err := ApplyInsertBatch(ex, bad2); err == nil {
		t.Error("measure-mismatched batch accepted")
	}
}

func TestApplyInsertBatchNoViews(t *testing.T) {
	ex := freshExecutor(t, 100)
	batch := randomBatch(ex, 50, 7)
	if _, err := ApplyInsertBatch(ex, batch); err != nil {
		t.Fatal(err)
	}
	if ex.DS.Facts.Rows() != 150 {
		t.Errorf("facts rows = %d, want 150", ex.DS.Facts.Rows())
	}
}

func TestRepeatedBatchesStayConsistent(t *testing.T) {
	ex := freshExecutor(t, 2_000)
	apex := ex.Lat.Apex()
	if _, err := ex.Materialize(apex); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ApplyInsertBatch(ex, randomBatch(ex, 300, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	view, _ := ex.View(apex)
	var want int64
	for _, v := range ex.DS.Facts.Measures[0] {
		want += v
	}
	if view.Measures[0][0] != want {
		t.Errorf("apex total after 5 batches = %d, want %d", view.Measures[0][0], want)
	}
}
