package search

import (
	"testing"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// fixture wires the paper's sales setting into an exact evaluator plus a
// candidate pool, the same construction core.New performs.
func fixture(t testing.TB, queries, candBudget int) (*optimizer.Evaluator, []views.Candidate) {
	t.Helper()
	l, err := lattice.New(schema.Sales(), 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(pricing.AWS2012(), "small", 5)
	if err != nil {
		t.Fatal(err)
	}
	est := views.NewEstimator(l, cl)
	est.MaintenanceRuns = 4
	est.UpdateRatio = 0.20
	w, err := workload.Sales(l, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		w.Queries[i].Frequency = 30
	}
	base, err := l.Node(l.Base())
	if err != nil {
		t.Fatal(err)
	}
	egress, err := w.ResultBytes(l)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := optimizer.NewEvaluator(est, w, costmodel.Plan{
		Cluster:       cl,
		Months:        1,
		DatasetSize:   base.Size,
		MonthlyEgress: egress,
	})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := views.GenerateCandidates(l, w, candBudget)
	if err != nil {
		t.Fatal(err)
	}
	return ev, cands
}

func samePoints(a, b []lattice.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestSolveDeterministicAcrossRuns(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	budget := money.FromDollars(25)
	for _, seed := range []int64{0, 1, 42} {
		a, err := SolveMV1(ev, cands, budget, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveMV1(ev, cands, budget, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !samePoints(a.Points, b.Points) || a.Time != b.Time || a.Bill.Total() != b.Bill.Total() {
			t.Fatalf("seed %d not deterministic: %v/%v vs %v/%v", seed, a.Points, a.Time, b.Points, b.Time)
		}
	}
}

func TestSolveMV1MatchesExhaustiveOracle(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	for _, dollars := range []float64{18, 25, 40} {
		budget := money.FromDollars(dollars)
		oracle, err := ev.SolveExhaustive(cands,
			func(tt time.Duration, _ costmodel.Bill) float64 { return tt.Hours() },
			func(_ time.Duration, b costmodel.Bill) bool { return b.Total() <= budget },
		)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveMV1(ev, cands, budget, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if got.Feasible != oracle.Feasible {
			t.Fatalf("budget $%g: feasible %v, oracle %v", dollars, got.Feasible, oracle.Feasible)
		}
		if oracle.Feasible && got.Time != oracle.Time {
			t.Errorf("budget $%g: search time %v, oracle %v", dollars, got.Time, oracle.Time)
		}
	}
}

func TestSolveMV2MatchesExhaustiveOracle(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	baseT, _, err := ev.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		limit := time.Duration(float64(baseT) * frac)
		oracle, err := ev.SolveExhaustive(cands,
			func(_ time.Duration, b costmodel.Bill) float64 { return b.Total().Dollars() },
			func(tt time.Duration, _ costmodel.Bill) bool { return tt <= limit },
		)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveMV2(ev, cands, limit, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got.Feasible != oracle.Feasible {
			t.Fatalf("limit %v: feasible %v, oracle %v", limit, got.Feasible, oracle.Feasible)
		}
		if oracle.Feasible && got.Bill.Total() != oracle.Bill.Total() {
			t.Errorf("limit %v: search bill %v, oracle %v", limit, got.Bill.Total(), oracle.Bill.Total())
		}
	}
}

func TestSolveMV3MatchesExhaustiveOracle(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	for _, alpha := range []float64{0, 0.35, 0.5, 0.8, 1} {
		oracle, err := ev.SolveExhaustive(cands,
			func(tt time.Duration, b costmodel.Bill) float64 {
				return optimizer.Objective(alpha, tt, b, optimizer.RawTradeoff, 0, costmodel.Bill{})
			},
			nil,
		)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveMV3(ev, cands, alpha, optimizer.RawTradeoff, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		gotObj := optimizer.Objective(alpha, got.Time, got.Bill, optimizer.RawTradeoff, 0, costmodel.Bill{})
		wantObj := optimizer.Objective(alpha, oracle.Time, oracle.Bill, optimizer.RawTradeoff, 0, costmodel.Bill{})
		if gotObj > wantObj+1e-9 {
			t.Errorf("alpha %g: search objective %g worse than oracle %g", alpha, gotObj, wantObj)
		}
	}
}

func TestSolveRespectsEvalBudget(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	for _, maxEvals := range []int{1, 10, 100} {
		sel, stats, err := SolveStats(ev, cands, BudgetObjective(money.FromDollars(25)), Options{Seed: 1, MaxEvals: maxEvals})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Evals > maxEvals {
			t.Fatalf("MaxEvals %d: consumed %d evaluations", maxEvals, stats.Evals)
		}
		// Whatever the budget, the result is exactly priced.
		tt, bill, err := ev.Evaluate(sel.Points)
		if err != nil {
			t.Fatal(err)
		}
		if tt != sel.Time || bill.Total() != sel.Bill.Total() {
			t.Fatalf("MaxEvals %d: selection not exactly priced: %v/%v vs %v/%v",
				maxEvals, sel.Time, sel.Bill.Total(), tt, bill.Total())
		}
	}
}

func TestSolveInfeasibleBudget(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	// A one-cent budget cannot cover even the no-view baseline.
	sel, err := SolveMV1(ev, cands, money.FromCents(1), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Feasible {
		t.Fatalf("one-cent budget reported feasible: %+v", sel)
	}
	if sel.Strategy != "mv1-search" {
		t.Fatalf("strategy = %q, want mv1-search", sel.Strategy)
	}
}

func TestSolveEmptyCandidates(t *testing.T) {
	ev, _ := fixture(t, 10, 8)
	sel, err := SolveMV1(ev, nil, money.FromDollars(25), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) != 0 {
		t.Fatalf("empty candidate pool selected %v", sel.Points)
	}
	baseT, baseBill, err := ev.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Time != baseT || sel.Bill.Total() != baseBill.Total() {
		t.Fatalf("empty pool not priced at baseline: %v/%v", sel.Time, sel.Bill.Total())
	}
}

func TestSolveOptionValidation(t *testing.T) {
	ev, cands := fixture(t, 3, 4)
	cases := []Options{
		{MaxEvals: -1},
		{Cooling: 1.5},
		{Cooling: -0.1},
		{AnnealMoves: -2},
	}
	for _, opts := range cases {
		if _, err := SolveMV1(ev, cands, money.FromDollars(25), opts); err == nil {
			t.Errorf("options %+v accepted", opts)
		}
	}
	if _, err := SolveMV3(ev, cands, 1.5, optimizer.RawTradeoff, Options{}); err == nil {
		t.Error("alpha 1.5 accepted")
	}
}

func TestParetoSweepDeterministicAndOrdered(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	a, err := ParetoSweep(ev, cands, 7, optimizer.NormalizedTradeoff, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParetoSweep(ev, cands, 7, optimizer.NormalizedTradeoff, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("sweep lengths %d/%d, want 7", len(a), len(b))
	}
	for i := range a {
		if a[i].Alpha != b[i].Alpha || !samePoints(a[i].Sel.Points, b[i].Sel.Points) {
			t.Fatalf("step %d differs across identical sweeps", i)
		}
	}
	if a[0].Alpha != 0 || a[6].Alpha != 1 {
		t.Fatalf("alpha range [%g,%g], want [0,1]", a[0].Alpha, a[6].Alpha)
	}
	if _, err := ParetoSweep(ev, cands, 1, optimizer.RawTradeoff, Options{}); err == nil {
		t.Error("1-step sweep accepted")
	}
}

func TestHillClimbSwapEscapesAddDropOptimum(t *testing.T) {
	// Structural check on the neighborhood: from the full set under a
	// tight budget, drops alone must find their way back to feasibility.
	ev, cands := fixture(t, 10, 8)
	s, err := newSolver(ev, cands, BudgetObjective(money.FromDollars(20)), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	full := make([]bool, len(cands))
	for i := range full {
		full[i] = true
	}
	_, e, err := s.hillClimb(full)
	if err != nil {
		t.Fatal(err)
	}
	if e.viol > 0 {
		base, err := s.evaluate(make([]bool, len(cands)))
		if err != nil {
			t.Fatal(err)
		}
		if base.viol == 0 {
			t.Fatalf("climb stuck infeasible (viol %g) though the empty set is feasible", e.viol)
		}
	}
}

// TestWarmStartNeverWorse pins the restart wrapper's ordering contract:
// caller-provided warm starts are priced before anything else, so even
// under a near-empty evaluation budget the solve can never return a
// selection worse than its warm start.
func TestWarmStartNeverWorse(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	budget := money.FromDollars(25)
	warm, err := ev.SolveMV1(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxEvals := range []int{2, 5, 50, 300} {
		sel, err := SolveMV1(ev, cands, budget, Options{
			Seed:     1,
			MaxEvals: maxEvals,
			Starts:   [][]lattice.Point{warm.Points},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sel.Feasible && warm.Feasible {
			t.Fatalf("MaxEvals %d: warm-started solve lost feasibility", maxEvals)
		}
		if sel.Feasible && sel.Time > warm.Time {
			t.Fatalf("MaxEvals %d: warm-started solve %v worse than its warm start %v",
				maxEvals, sel.Time, warm.Time)
		}
	}
}
