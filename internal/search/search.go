// Package search provides deterministic, seedable metaheuristic solvers
// for the view-selection problem on large cuboid lattices.
//
// The paper's knapsack formulation (Section 5.2) linearizes each view's
// effect on the bill and the workload time; on the 16-node sales lattice
// the approximation error is negligible, but once the candidate space
// grows (4–5 dimension schemas, hundreds–thousands of cuboids) the
// double-counting of shared query savings and the tier/rounding errors of
// CostDelta bite. The solvers here sidestep linearization entirely: every
// move is priced by the exact optimizer.Evaluator (cheapest-answering
// routing plus the full tiered, rounded bill), so what the search
// optimizes is exactly what the final selection is billed for.
//
// Three engines are provided, composed by the Solve restart wrapper:
//
//   - steepest-ascent hill climbing over add/drop/swap neighborhoods
//     (hillclimb.go),
//   - simulated annealing with a geometric cooling schedule (anneal.go),
//   - a multi-start restart wrapper seeding both from deterministic and
//     seeded-random subsets (this file).
//
// All randomness flows from Options.Seed through a single PRNG, so the
// same seed always reproduces the same selection — a property the serving
// layer's memoization relies on (the seed is part of the cache key).
package search

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/obs"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/views"
)

// Objective is what a solver minimizes: a scalar score plus a constraint
// violation measure. Feasible states (Violation == 0) always beat
// infeasible ones; among infeasible states smaller violations win, so the
// search is pulled back into the feasible region before it optimizes.
type Objective struct {
	// Name tags the produced Selection.Strategy ("mv1", "mv2", "mv3").
	Name string
	// Score is the value minimized among feasible states.
	Score func(t time.Duration, b costmodel.Bill) float64
	// Violation quantifies the constraint breach; 0 means feasible. Nil
	// means unconstrained.
	Violation func(t time.Duration, b costmodel.Bill) float64
}

// BudgetObjective is scenario MV1: minimize workload time subject to the
// exact period bill staying within budget.
func BudgetObjective(budget money.Money) Objective {
	return Objective{
		Name:  "mv1",
		Score: func(t time.Duration, _ costmodel.Bill) float64 { return t.Hours() },
		Violation: func(_ time.Duration, b costmodel.Bill) float64 {
			if over := b.Total().Sub(budget); over > 0 {
				return over.Dollars()
			}
			return 0
		},
	}
}

// DeadlineObjective is scenario MV2: minimize the exact bill subject to
// the monthly workload time staying within the limit.
func DeadlineObjective(limit time.Duration) Objective {
	return Objective{
		Name:  "mv2",
		Score: func(_ time.Duration, b costmodel.Bill) float64 { return b.Total().Dollars() },
		Violation: func(t time.Duration, _ costmodel.Bill) float64 {
			if t > limit {
				return (t - limit).Hours()
			}
			return 0
		},
	}
}

// TradeoffObjective is scenario MV3: minimize α·T + (1−α)·C
// (optimizer.Objective), unconstrained. baseT/baseBill feed the
// normalized mode and are ignored for RawTradeoff.
func TradeoffObjective(alpha float64, mode optimizer.TradeoffMode, baseT time.Duration, baseBill costmodel.Bill) Objective {
	return Objective{
		Name: "mv3",
		Score: func(t time.Duration, b costmodel.Bill) float64 {
			return optimizer.Objective(alpha, t, b, mode, baseT, baseBill)
		},
	}
}

// Defaults applied by Options.withDefaults.
const (
	// DefaultMaxEvals bounds exact evaluator calls per solve.
	DefaultMaxEvals = 4096
	// DefaultRestarts is the number of seeded-random restarts layered on
	// top of the deterministic starts.
	DefaultRestarts = 3
	// DefaultCooling is the geometric cooling rate.
	DefaultCooling = 0.92
	// DefaultAnnealMoves is the number of proposals per temperature step.
	DefaultAnnealMoves = 24
)

// Options tunes a solve. The zero value is a sensible deterministic
// default (seed 0).
type Options struct {
	// Seed drives every random choice; identical seeds reproduce
	// identical selections byte for byte.
	Seed int64
	// MaxEvals caps exact Evaluator calls across the whole solve —
	// every restart, climb and annealing pass shares the budget (cached
	// re-visits are free). 0 selects DefaultMaxEvals; negative is
	// rejected.
	MaxEvals int
	// Restarts is the number of seeded-random starting subsets tried in
	// addition to the deterministic starts (empty set, greedy-density
	// prefixes, caller-provided Starts). 0 selects DefaultRestarts;
	// negative means none.
	Restarts int
	// DisableAnneal skips the simulated-annealing diversification pass,
	// leaving pure multi-start hill climbing.
	DisableAnneal bool
	// Cooling is the geometric cooling rate in (0,1); 0 selects
	// DefaultCooling.
	Cooling float64
	// AnnealMoves is the number of proposals per temperature level; 0
	// selects DefaultAnnealMoves.
	AnnealMoves int
	// Starts are explicit warm-start subsets (points must be candidate
	// points; unknown points are ignored).
	Starts [][]lattice.Point
	// Ctx, when non-nil, bounds the solve by wall clock: once Ctx is
	// cancelled or past its deadline the delta-probe loop stops at the
	// next move and the solver returns its best incumbent so far, marked
	// Degraded. Starts (including caller warm starts) are always priced
	// before the first climb, so a degraded result is never worse than
	// the best warm start. Nil means no deadline — and, because only a
	// deadline can interrupt the pipeline mid-flight, nil also means the
	// result is a pure function of inputs and seed.
	Ctx context.Context
	// Engine optionally supplies a pre-built incremental evaluation
	// engine pinned to exactly this (evaluator, candidate set) — the
	// structure-sharing hook of the comparison kernel
	// (optimizer.KernelSession.Engine). When nil, a fresh engine is built
	// per solve, re-deriving the lattice answering lists from scratch.
	// Search state never leaks through a shared engine: every solve
	// re-pins its starting subsets via Reset, so results are identical
	// with and without it.
	Engine *optimizer.IncrementalEvaluator
}

func (o Options) withDefaults() (Options, error) {
	if o.MaxEvals < 0 {
		return o, fmt.Errorf("search: negative MaxEvals %d", o.MaxEvals)
	}
	if o.MaxEvals == 0 {
		o.MaxEvals = DefaultMaxEvals
	}
	if o.Restarts == 0 {
		o.Restarts = DefaultRestarts
	}
	if o.Restarts < 0 {
		o.Restarts = 0
	}
	if o.Cooling == 0 {
		o.Cooling = DefaultCooling
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		return o, fmt.Errorf("search: cooling rate %g out of (0,1)", o.Cooling)
	}
	if o.AnnealMoves == 0 {
		o.AnnealMoves = DefaultAnnealMoves
	}
	if o.AnnealMoves < 0 {
		return o, fmt.Errorf("search: negative AnnealMoves %d", o.AnnealMoves)
	}
	return o, nil
}

// errEvalBudget signals the evaluation budget ran dry; solvers treat it
// as "stop and keep the best found", never as a failure.
var errEvalBudget = errors.New("search: evaluation budget exhausted")

// errDeadline signals Options.Ctx expired mid-solve. Like errEvalBudget
// it means "stop and keep the best found", but unlike budget exhaustion
// it is timing-dependent, so it additionally marks the selection
// Degraded.
var errDeadline = errors.New("search: solve deadline reached")

// stopped reports whether err is one of the cooperative-stop sentinels
// (budget dry or deadline reached) — the "keep the incumbent" cases, as
// opposed to real failures.
func stopped(err error) bool {
	return errors.Is(err, errEvalBudget) || errors.Is(err, errDeadline)
}

// eval is one exactly-priced subset under the current objective.
type eval struct {
	t     time.Duration
	bill  costmodel.Bill
	score float64
	viol  float64
}

// better reports whether a strictly beats b: feasibility first, then
// violation magnitude, then score. Ties are never "better", so climbers
// require strict improvement and terminate.
func better(a, b eval) bool {
	aFeas, bFeas := a.viol == 0, b.viol == 0
	if aFeas != bFeas {
		return aFeas
	}
	if !aFeas && a.viol != b.viol {
		return a.viol < b.viol
	}
	return a.score < b.score
}

// cachedEval memoizes the exact evaluator output for one subset; the
// objective-dependent score/violation are recomputed per objective so a
// pareto sweep can share one cache across every α.
type cachedEval struct {
	t    time.Duration
	bill costmodel.Bill
}

// evalCache memoizes priced subsets under uint64-word selection keys.
// Pools of ≤ 64 candidates (every product surface today) key a plain
// map[uint64] — zero allocations on both hit and miss; wider pools pack
// the words into a string key.
type evalCache struct {
	small map[uint64]cachedEval
	big   map[string]cachedEval
	buf   []byte // scratch for big keys
}

func newEvalCache(nwords int) *evalCache {
	c := &evalCache{}
	if nwords <= 1 {
		c.small = make(map[uint64]cachedEval)
	} else {
		c.big = make(map[string]cachedEval)
		c.buf = make([]byte, 8*nwords)
	}
	return c
}

func (c *evalCache) len() int {
	if c.small != nil {
		return len(c.small)
	}
	return len(c.big)
}

// smallKey folds a ≤1-word selection (possibly with up to two flipped
// bits) into the uint64 key.
//
//mvlint:hotpath
func smallKey(words []uint64, flip1, flip2 int) uint64 {
	var k uint64
	if len(words) > 0 {
		k = words[0]
	}
	if flip1 >= 0 {
		k ^= 1 << uint(flip1)
	}
	if flip2 >= 0 {
		k ^= 1 << uint(flip2)
	}
	return k
}

//mvlint:hotpath
func (c *evalCache) bigKey(words []uint64, flip1, flip2 int) []byte {
	for w, word := range words {
		if flip1 >= 0 && flip1>>6 == w {
			word ^= 1 << (uint(flip1) & 63)
		}
		if flip2 >= 0 && flip2>>6 == w {
			word ^= 1 << (uint(flip2) & 63)
		}
		binary.LittleEndian.PutUint64(c.buf[8*w:], word)
	}
	return c.buf
}

// get looks up the subset `words` with candidates flip1/flip2 (-1 =
// none) toggled — neighbor states are keyed without touching the
// evaluation engine.
//
//mvlint:hotpath
func (c *evalCache) get(words []uint64, flip1, flip2 int) (cachedEval, bool) {
	if c.small != nil {
		ce, ok := c.small[smallKey(words, flip1, flip2)]
		return ce, ok
	}
	ce, ok := c.big[string(c.bigKey(words, flip1, flip2))]
	return ce, ok
}

// put stores the subset exactly as given (no flips).
//
//mvlint:hotpath
func (c *evalCache) put(words []uint64, ce cachedEval) {
	if c.small != nil {
		c.small[smallKey(words, -1, -1)] = ce
		return
	}
	c.big[string(c.bigKey(words, -1, -1))] = ce
}

// solver carries one search session: the pinned incremental evaluation
// engine, the candidate pool, the active objective, the shared
// evaluation cache and the PRNG. The engine holds the "current" subset;
// neighbors are priced by applying delta moves and undoing them, so a
// move costs O(affected queries) instead of a full workload × selection
// recomputation.
type solver struct {
	inc      *optimizer.IncrementalEvaluator
	cands    []views.Candidate
	obj      Objective
	opts     Options
	rng      *rand.Rand
	cache    *evalCache
	evals    int
	maxEvals int
	// done is Options.Ctx's done channel (nil when no deadline was set;
	// a receive on a nil channel blocks forever, so the non-blocking
	// probe in probeMove stays correct without a nil check).
	done <-chan struct{}
	// degraded latches once the deadline interrupts the pipeline; it
	// flows onto every selection this solver emits from then on.
	degraded bool
	// scratch buffers reused across move proposals.
	selBuf []int
	unsBuf []int
}

func newSolver(ev *optimizer.Evaluator, cands []views.Candidate, obj Objective, opts Options) (*solver, error) {
	if ev == nil {
		return nil, fmt.Errorf("search: nil evaluator")
	}
	if obj.Score == nil {
		return nil, fmt.Errorf("search: objective %q has no score", obj.Name)
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	inc := opts.Engine
	if inc != nil {
		if !inc.PinnedTo(ev, cands) {
			return nil, fmt.Errorf("search: Options.Engine is pinned to a different evaluator or candidate set")
		}
	} else {
		inc, err = optimizer.NewIncrementalEvaluator(ev, cands)
		if err != nil {
			return nil, err
		}
	}
	n := len(cands)
	s := &solver{
		inc:      inc,
		cands:    cands,
		obj:      obj,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		cache:    newEvalCache((n + 63) / 64),
		maxEvals: opts.MaxEvals,
		selBuf:   make([]int, 0, n),
		unsBuf:   make([]int, 0, n),
	}
	if opts.Ctx != nil {
		s.done = opts.Ctx.Done()
	}
	return s, nil
}

// pointKey renders a lattice point as a comparable map key. Level
// indices are varint-encoded, so arbitrarily deep hand-built hierarchies
// cannot alias.
func pointKey(p lattice.Point) string {
	b := make([]byte, 0, 2*len(p))
	for _, lv := range p {
		b = binary.AppendVarint(b, int64(lv))
	}
	return string(b)
}

// score applies the active objective to a cached exact evaluation.
func (s *solver) score(c cachedEval) eval {
	e := eval{t: c.t, bill: c.bill, score: s.obj.Score(c.t, c.bill)}
	if s.obj.Violation != nil {
		e.viol = s.obj.Violation(c.t, c.bill)
	}
	return e
}

// scoreState prices the engine's current subset, via the cache. Cache
// hits are free; misses consume one unit of the evaluation budget and
// re-bill from the engine's running aggregates. When the budget is
// exhausted it returns errEvalBudget.
//
//mvlint:hotpath
func (s *solver) scoreState() (eval, error) {
	words := s.inc.Words()
	if c, ok := s.cache.get(words, -1, -1); ok {
		return s.score(c), nil
	}
	if s.evals >= s.maxEvals {
		return eval{}, errEvalBudget
	}
	s.evals++
	t, bill, err := s.inc.Score()
	if err != nil {
		return eval{}, err
	}
	c := cachedEval{t: t, bill: bill}
	s.cache.put(words, c)
	return s.score(c), nil
}

// evaluate re-pins the engine to an arbitrary subset (the full
// re-pricing path — restarts only, never per move) and prices it.
func (s *solver) evaluate(sel []bool) (eval, error) {
	if err := s.inc.Reset(sel); err != nil {
		return eval{}, err
	}
	return s.scoreState()
}

// flip toggles candidate i in the engine.
//
//mvlint:hotpath
func (s *solver) flip(i int) {
	if s.inc.Selected(i) {
		s.inc.Drop(i)
	} else {
		s.inc.Add(i)
	}
}

// probeMove prices the neighbor reached by a flip of i (j < 0) or a
// swap dropping selected i for unselected j, leaving the engine in its
// current state. The neighbor key is derived by an XOR on the selection
// words, so cache hits never touch the engine at all.
//
//mvlint:hotpath
func (s *solver) probeMove(i, j int) (eval, error) {
	select {
	case <-s.done:
		// The deadline gate sits on move probes only — never on start
		// pricing (scoreState via evaluate) — so warm starts are always
		// priced and a degraded incumbent can never lose to its own warm
		// start. A nil done channel (no deadline) blocks forever and
		// falls through to default.
		return eval{}, errDeadline
	default:
	}
	if c, ok := s.cache.get(s.inc.Words(), i, j); ok {
		return s.score(c), nil
	}
	if s.evals >= s.maxEvals {
		return eval{}, errEvalBudget
	}
	s.evals++
	s.applyEngineMove(i, j)
	t, bill, err := s.inc.Score()
	if err == nil {
		s.cache.put(s.inc.Words(), cachedEval{t: t, bill: bill})
	}
	s.undoEngineMove(i, j)
	if err != nil {
		return eval{}, err
	}
	return s.score(cachedEval{t: t, bill: bill}), nil
}

// applyEngineMove commits a move to the engine: a flip of i (j < 0) or
// a swap dropping i for j — the engine-side mirror of applyMove.
//
//mvlint:hotpath
func (s *solver) applyEngineMove(i, j int) {
	if j < 0 {
		s.flip(i)
		return
	}
	s.inc.Drop(i)
	s.inc.Add(j)
}

// undoEngineMove reverts applyEngineMove.
//
//mvlint:hotpath
func (s *solver) undoEngineMove(i, j int) {
	if j < 0 {
		s.flip(i)
		return
	}
	s.inc.Drop(j)
	s.inc.Add(i)
}

// selection assembles the final optimizer.Selection for a state.
func (s *solver) selection(sel []bool, e eval) optimizer.Selection {
	pts := make([]lattice.Point, 0, len(sel))
	for i, on := range sel {
		if on {
			pts = append(pts, s.cands[i].Point.Clone())
		}
	}
	return optimizer.Selection{
		Points:   pts,
		Time:     e.t,
		Bill:     e.bill,
		Feasible: e.viol == 0,
		Strategy: s.obj.Name + "-search",
		Degraded: s.degraded,
	}
}

// starts builds the starting subsets for the restart wrapper:
// caller-provided warm starts first (so a tight evaluation budget prices
// them before anything else — a warm-started solve is then never worse
// than its warm start), then the empty set, greedy benefit-order
// prefixes (candidates arrive in HRU selection order, so prefixes are
// natural warm starts), then Restarts random subsets with inclusion
// probability drawn per restart.
func (s *solver) starts() [][]bool {
	n := len(s.cands)
	var out [][]bool
	add := func(sel []bool) { out = append(out, sel) }
	index := make(map[string]int, n)
	for i, c := range s.cands {
		index[pointKey(c.Point)] = i
	}
	for _, pts := range s.opts.Starts {
		sel := make([]bool, n)
		for _, p := range pts {
			if i, ok := index[pointKey(p)]; ok {
				sel[i] = true
			}
		}
		add(sel)
	}
	add(make([]bool, n)) // empty: the no-view baseline
	// Prefixes of the candidate order (HRU picks best-first): half and full.
	if n > 1 {
		half := make([]bool, n)
		for i := 0; i < (n+1)/2; i++ {
			half[i] = true
		}
		add(half)
	}
	if n > 0 {
		full := make([]bool, n)
		for i := range full {
			full[i] = true
		}
		add(full)
	}
	for r := 0; r < s.opts.Restarts; r++ {
		p := 0.15 + 0.7*s.rng.Float64()
		sel := make([]bool, n)
		for i := range sel {
			sel[i] = s.rng.Float64() < p
		}
		add(sel)
	}
	return out
}

// Solve runs the full metaheuristic pipeline — multi-start steepest
// hill climbing, optionally interleaved with simulated annealing — and
// returns the best exactly-priced selection found within the evaluation
// budget. Identical inputs and seeds return identical selections.
func Solve(ev *optimizer.Evaluator, cands []views.Candidate, obj Objective, opts Options) (optimizer.Selection, error) {
	s, err := newSolver(ev, cands, obj, opts)
	if err != nil {
		return optimizer.Selection{}, err
	}
	sel, _, err := s.solve(nil)
	return sel, err
}

// solve runs the pipeline on the solver's current objective and flushes
// the solver telemetry once per solve: the inner loops count evaluations
// and moves in plain solver-local fields, and only this wrapper pays the
// (sharded, contention-free) atomic adds — so a million-move anneal
// costs exactly two counter flushes.
func (s *solver) solve(extraStart []bool) (optimizer.Selection, []bool, error) {
	evals0 := s.evals
	moves0 := s.inc.Moves()
	sel, best, err := s.run(extraStart)
	obs.SearchEvals.Add(int64(s.evals - evals0))
	obs.IncrementalMoves.Add(s.inc.Moves() - moves0)
	return sel, best, err
}

// run is the pipeline body. extraStart, when non-nil, is tried as an
// additional warm start (used by the pareto sweep to chain α steps). It
// returns the best selection and its bitmap.
func (s *solver) run(extraStart []bool) (optimizer.Selection, []bool, error) {
	n := len(s.cands)
	bestSel := make([]bool, n)
	bestEval, err := s.evaluate(bestSel)
	if err != nil {
		// Even the empty set must price; a budget of zero evals is the
		// only way this is errEvalBudget, and then there is no answer.
		return optimizer.Selection{}, nil, err
	}
	starts := s.starts()
	if extraStart != nil {
		// Warm starts go first so a tight budget prices them before
		// anything else (see starts()).
		starts = append([][]bool{append([]bool(nil), extraStart...)}, starts...)
	}
	// Price every start before any climbing or annealing can drain the
	// budget: a warm start must never be lost to budget exhaustion in an
	// earlier start's pipeline (re-scoring a cached subset is free, so
	// this also lets a dry-budget sweep still return the best of its
	// cached warm starts).
	for _, start := range starts {
		e, err := s.evaluate(start)
		if err != nil {
			if errors.Is(err, errEvalBudget) {
				continue // unpriceable now; cached starts still scored above
			}
			return optimizer.Selection{}, nil, err
		}
		if better(e, bestEval) {
			copy(bestSel, start)
			bestEval = e
		}
	}
	// Per start: climb, diversify by annealing, then polish the annealed
	// state with a second climb (annealing ends wherever the temperature
	// died; a climb from there is nearly free thanks to the cache).
	stages := []func([]bool, eval) ([]bool, eval, error){
		func(cur []bool, _ eval) ([]bool, eval, error) { return s.hillClimb(cur) },
	}
	if !s.opts.DisableAnneal {
		stages = append(stages,
			func(cur []bool, e eval) ([]bool, eval, error) { return s.anneal(cur, e) },
			func(cur []bool, _ eval) ([]bool, eval, error) { return s.hillClimb(cur) },
		)
	}
	dry := false
	for _, start := range starts {
		cur, curEval := start, eval{}
		for _, stage := range stages {
			var err error
			cur, curEval, err = stage(cur, curEval)
			if err != nil && !stopped(err) {
				return optimizer.Selection{}, nil, err
			}
			if better(curEval, bestEval) {
				copy(bestSel, cur)
				bestEval = curEval
			}
			if stopped(err) {
				if errors.Is(err, errDeadline) {
					s.degraded = true
				}
				dry = true
				break
			}
		}
		if dry {
			break
		}
	}
	return s.selection(bestSel, bestEval), bestSel, nil
}

// Stats instruments a solve — exposed for tests and benchmarks via
// SolveStats.
type Stats struct {
	// Evals is the number of exact evaluator calls consumed.
	Evals int
	// CachedStates is the number of distinct subsets priced.
	CachedStates int
}

// SolveStats is Solve plus instrumentation: it also reports how much of
// the evaluation budget was consumed.
func SolveStats(ev *optimizer.Evaluator, cands []views.Candidate, obj Objective, opts Options) (optimizer.Selection, Stats, error) {
	s, err := newSolver(ev, cands, obj, opts)
	if err != nil {
		return optimizer.Selection{}, Stats{}, err
	}
	sel, _, err := s.solve(nil)
	return sel, Stats{Evals: s.evals, CachedStates: s.cache.len()}, err
}

// SolveMV1 solves scenario MV1 (fastest workload within the budget) by
// metaheuristic search against the exact evaluator.
func SolveMV1(ev *optimizer.Evaluator, cands []views.Candidate, budget money.Money, opts Options) (optimizer.Selection, error) {
	return Solve(ev, cands, BudgetObjective(budget), opts)
}

// SolveMV2 solves scenario MV2 (cheapest bill within the time limit).
func SolveMV2(ev *optimizer.Evaluator, cands []views.Candidate, limit time.Duration, opts Options) (optimizer.Selection, error) {
	return Solve(ev, cands, DeadlineObjective(limit), opts)
}

// SolveMV3 solves scenario MV3 (weighted time/cost tradeoff). The
// normalized mode prices the no-view baseline first (one extra exact
// evaluation, cached and shared with the search).
func SolveMV3(ev *optimizer.Evaluator, cands []views.Candidate, alpha float64, mode optimizer.TradeoffMode, opts Options) (optimizer.Selection, error) {
	if alpha < 0 || alpha > 1 {
		return optimizer.Selection{}, fmt.Errorf("search: alpha %g out of [0,1]", alpha)
	}
	var baseT time.Duration
	var baseBill costmodel.Bill
	if mode == optimizer.NormalizedTradeoff {
		var err error
		baseT, baseBill, err = ev.Evaluate(nil)
		if err != nil {
			return optimizer.Selection{}, err
		}
	}
	return Solve(ev, cands, TradeoffObjective(alpha, mode, baseT, baseBill), opts)
}
