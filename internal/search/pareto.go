package search

import (
	"fmt"
	"time"

	"vmcloud/internal/costmodel"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/views"
)

// AlphaSelection is one weighted-sum solve of a pareto sweep.
type AlphaSelection struct {
	Alpha float64
	Sel   optimizer.Selection
}

// ParetoSweep traces an approximate time/cost pareto front by sweeping
// the MV3 weight α over [0,1] in the given number of steps and solving
// each weighted-sum objective by metaheuristic search. All α steps share
// one exact-evaluation cache and one evaluation budget (Options.MaxEvals
// bounds the whole sweep, not each step), and each step warm-starts from
// the previous step's best state — adjacent α optima are usually near
// each other, so the sweep costs far less than independent solves.
// Dominance filtering is left to the caller: the sweep returns every α
// outcome, dominated or not.
func ParetoSweep(ev *optimizer.Evaluator, cands []views.Candidate, steps int, mode optimizer.TradeoffMode, opts Options) ([]AlphaSelection, error) {
	if steps < 2 {
		return nil, fmt.Errorf("search: need at least 2 sweep steps, got %d", steps)
	}
	var baseT time.Duration
	var baseBill costmodel.Bill
	if mode == optimizer.NormalizedTradeoff {
		var err error
		baseT, baseBill, err = ev.Evaluate(nil)
		if err != nil {
			return nil, err
		}
	}
	s, err := newSolver(ev, cands, TradeoffObjective(0, mode, baseT, baseBill), opts)
	if err != nil {
		return nil, err
	}
	out := make([]AlphaSelection, 0, steps)
	var warm []bool
	for i := 0; i < steps; i++ {
		alpha := float64(i) / float64(steps-1)
		s.obj = TradeoffObjective(alpha, mode, baseT, baseBill)
		sel, bits, err := s.solve(warm)
		if err != nil {
			return nil, err
		}
		warm = bits
		out = append(out, AlphaSelection{Alpha: alpha, Sel: sel})
	}
	return out, nil
}
