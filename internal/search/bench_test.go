package search

import (
	"testing"

	"vmcloud/internal/cluster"
	"vmcloud/internal/costmodel"
	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
	"vmcloud/internal/optimizer"
	"vmcloud/internal/pricing"
	"vmcloud/internal/schema"
	"vmcloud/internal/views"
	"vmcloud/internal/workload"
)

// largeFixture builds the 256-cuboid stress instance the benchmarks and
// the cmd/experiments -large scenario share.
func largeFixture(b testing.TB) (*optimizer.Evaluator, []views.Candidate, money.Money) {
	b.Helper()
	sch, err := schema.Synthetic(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lattice.New(sch, 1_000_000_000)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.Random(l, 20, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.New(pricing.AWS2012(), "small", 5)
	if err != nil {
		b.Fatal(err)
	}
	est := views.NewEstimator(l, cl)
	est.MaintenanceRuns = 6
	est.UpdateRatio = 0.50
	base, err := l.Node(l.Base())
	if err != nil {
		b.Fatal(err)
	}
	egress, err := w.ResultBytes(l)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := optimizer.NewEvaluator(est, w, costmodel.Plan{
		Cluster:       cl,
		Months:        1,
		DatasetSize:   base.Size,
		MonthlyEgress: egress,
	})
	if err != nil {
		b.Fatal(err)
	}
	cands, err := views.GenerateCandidates(l, w, 32)
	if err != nil {
		b.Fatal(err)
	}
	_, baseBill, err := ev.Evaluate(nil)
	if err != nil {
		b.Fatal(err)
	}
	return ev, cands, baseBill.Total().MulFloat(1.01)
}

// BenchmarkSearchMV1Large measures one full metaheuristic MV1 solve on
// the 256-cuboid lattice under the default evaluation budget.
func BenchmarkSearchMV1Large(b *testing.B) {
	ev, cands, budget := largeFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveMV1(ev, cands, budget, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKnapsackMV1Large is the linearized baseline on the same
// instance — what the search's wall-clock cost buys over.
func BenchmarkKnapsackMV1Large(b *testing.B) {
	ev, cands, budget := largeFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.SolveMV1(cands, budget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchMV1Sales measures the solver on the paper's 16-node
// lattice — the latency a wire request pays when it opts into search.
func BenchmarkSearchMV1Sales(b *testing.B) {
	ev, cands := fixture(b, 10, 8)
	budget := money.FromDollars(25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveMV1(ev, cands, budget, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
