package search

import (
	"context"
	"testing"
	"time"

	"vmcloud/internal/lattice"
	"vmcloud/internal/money"
)

// TestCancelledSolveReturnsPromptlyDegraded pins the degradation
// contract at its harshest point: a context that is already dead when
// the solve starts. The solver must still return a bit-valid, exactly
// priced selection — marked Degraded — and must do so promptly (the
// server grants a cancelled solve far less than a second of grace).
func TestCancelledSolveReturnsPromptlyDegraded(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, seed := range []int64{0, 7, 42} {
		start := time.Now()
		sel, err := SolveMV1(ev, cands, money.FromDollars(25), Options{Seed: seed, Ctx: ctx})
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sel.Degraded {
			t.Errorf("seed %d: cancelled solve not marked degraded", seed)
		}
		if elapsed > time.Second {
			t.Errorf("seed %d: cancelled solve took %v, want prompt return", seed, elapsed)
		}
		// The degraded incumbent is still exactly priced: re-evaluating
		// its points must reproduce its reported time and bill.
		tt, bill, err := ev.Evaluate(sel.Points)
		if err != nil {
			t.Fatalf("seed %d: degraded selection unpriceable: %v", seed, err)
		}
		if tt != sel.Time || bill.Total() != sel.Bill.Total() {
			t.Errorf("seed %d: degraded selection misreported: %v/%v, repriced %v/%v",
				seed, sel.Time, sel.Bill.Total(), tt, bill.Total())
		}
	}
}

// TestDegradedNeverWorseThanWarmStart is the quality half of the
// degradation ladder: starts — including caller warm starts — are
// always priced before the first climb, so even a solve whose deadline
// expired before it began can never return something worse than the
// best warm start it was handed. This is exactly the guarantee the
// server leans on when it warm-starts search from the knapsack
// solution: a degraded response is never worse than the knapsack.
func TestDegradedNeverWorseThanWarmStart(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	for _, dollars := range []float64{18, 25, 40} {
		budget := money.FromDollars(dollars)
		// A converged solve stands in for the warm start a real caller
		// would pass (the server passes the knapsack optimum).
		warm, err := SolveMV1(ev, cands, budget, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveMV1(ev, cands, budget, Options{
			Seed:   7,
			Ctx:    dead,
			Starts: [][]lattice.Point{warm.Points},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Degraded {
			t.Fatalf("budget $%g: dead-context solve not degraded", dollars)
		}
		if got.Feasible != warm.Feasible {
			t.Errorf("budget $%g: degraded feasible=%v, warm start feasible=%v",
				dollars, got.Feasible, warm.Feasible)
		}
		if warm.Feasible && got.Time > warm.Time {
			t.Errorf("budget $%g: degraded time %v worse than warm start %v",
				dollars, got.Time, warm.Time)
		}
	}
}

// TestMidSolveDeadlineKeepsDeterministicPrefix checks a deadline that
// expires mid-flight (not before the solve): the result is still valid
// and prompt, and a solve that was NOT interrupted stays byte-identical
// to a no-context solve — the deadline machinery must cost nothing when
// it never fires.
func TestMidSolveDeadlineKeepsDeterministicPrefix(t *testing.T) {
	ev, cands := fixture(t, 10, 8)
	budget := money.FromDollars(25)

	// Generous deadline: never fires, result must equal the ctx-free one.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	withCtx, err := SolveMV1(ev, cands, budget, Options{Seed: 7, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if withCtx.Degraded {
		t.Fatal("one-hour deadline marked a fast solve degraded")
	}
	without, err := SolveMV1(ev, cands, budget, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !samePoints(withCtx.Points, without.Points) || withCtx.Time != without.Time {
		t.Errorf("unexpired deadline changed the result: %v/%v vs %v/%v",
			withCtx.Points, withCtx.Time, without.Points, without.Time)
	}

	// A microscopic deadline expires somewhere mid-pipeline; wherever it
	// lands, the solve returns promptly with a priced incumbent.
	tiny, cancel2 := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel2()
	start := time.Now()
	sel, err := SolveMV1(ev, cands, budget, Options{Seed: 7, Ctx: tiny})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("mid-solve deadline took %v to unwind", elapsed)
	}
	if _, _, err := ev.Evaluate(sel.Points); err != nil {
		t.Errorf("interrupted solve returned unpriceable points: %v", err)
	}
}
