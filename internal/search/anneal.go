package search

import "math"

// annealEnergy scalarizes an eval for the Metropolis criterion: the
// score plus a violation penalty heavy enough that no feasible state is
// ever worse than an infeasible one within the same neighborhood scale.
// The penalty weight is derived per run from the start state's scale so
// the criterion behaves the same whether scores are hours or dollars.
func annealEnergy(e eval, penalty float64) float64 {
	return e.score + penalty*e.viol
}

// anneal runs simulated annealing with a geometric cooling schedule from
// the given start. Each temperature level proposes opts.AnnealMoves
// random add/drop/swap moves; improving moves are always accepted,
// worsening ones with probability exp(−Δ/T). Moves are applied to the
// incremental engine and undone on rejection, so a proposal costs
// O(affected queries). The initial temperature is calibrated from the
// observed energy deltas of a short warm-up walk, so the schedule adapts
// to the objective's units. Returns the best state seen (not the final
// one), wrapped in the stop sentinel if the budget ran dry or the solve
// deadline passed.
func (s *solver) anneal(start []bool, startEval eval) ([]bool, eval, error) {
	n := len(start)
	if n == 0 {
		return append([]bool(nil), start...), startEval, nil
	}
	penalty := 1000 * (math.Abs(startEval.score) + 1)

	cur := append([]bool(nil), start...)
	curEval := startEval
	best := append([]bool(nil), cur...)
	bestEval := curEval
	// Pin the engine at the start state (free: no evaluation is charged;
	// the annealed walk then advances it move by move).
	if err := s.inc.Reset(cur); err != nil {
		return best, eval{}, err
	}

	// Warm-up: sample a few random neighbors to calibrate T0 at the mean
	// absolute energy delta — acceptance of a typical uphill move starts
	// near exp(−1). Probes leave the engine untouched.
	var deltaSum float64
	deltas := 0
	for k := 0; k < 8; k++ {
		i, j := s.proposeMove(cur)
		if i < 0 {
			break
		}
		e, err := s.probeMove(i, j)
		if err != nil {
			if stopped(err) {
				return best, bestEval, err
			}
			return best, eval{}, err
		}
		deltaSum += math.Abs(annealEnergy(e, penalty) - annealEnergy(curEval, penalty))
		deltas++
	}
	temp := 1.0
	if deltas > 0 && deltaSum > 0 {
		temp = deltaSum / float64(deltas)
	}
	floor := temp * 1e-3

	for temp > floor {
		for m := 0; m < s.opts.AnnealMoves; m++ {
			i, j := s.proposeMove(cur)
			if i < 0 {
				return best, bestEval, nil
			}
			// Probe first: a rejected proposal (or a cache hit) then
			// never touches the engine; only accepted moves advance it.
			e, err := s.probeMove(i, j)
			if err != nil {
				if stopped(err) {
					return best, bestEval, err
				}
				return best, eval{}, err
			}
			delta := annealEnergy(e, penalty) - annealEnergy(curEval, penalty)
			if delta <= 0 || s.rng.Float64() < math.Exp(-delta/temp) {
				applyMove(cur, i, j)
				s.applyEngineMove(i, j)
				curEval = e
				if better(curEval, bestEval) {
					copy(best, cur)
					bestEval = curEval
				}
			}
		}
		temp *= s.opts.Cooling
	}
	return best, bestEval, nil
}

// proposeMove draws one random neighborhood move: (i, -1) flips bit i
// (add or drop), (i, j) swaps selected i for unselected j. Swap is only
// proposed when both sides exist. Returns (-1, -1) when the state has no
// neighbors (n == 0). The index partition lives in solver scratch
// buffers — proposals run tens of thousands of times per solve and must
// not allocate.
func (s *solver) proposeMove(sel []bool) (int, int) {
	n := len(sel)
	if n == 0 {
		return -1, -1
	}
	selected, unselected := s.selBuf[:0], s.unsBuf[:0]
	for i, on := range sel {
		if on {
			selected = append(selected, i)
		} else {
			unselected = append(unselected, i)
		}
	}
	s.selBuf, s.unsBuf = selected, unselected
	// One third swaps when possible, the rest flips.
	if len(selected) > 0 && len(unselected) > 0 && s.rng.Intn(3) == 0 {
		i := selected[s.rng.Intn(len(selected))]
		j := unselected[s.rng.Intn(len(unselected))]
		return i, j
	}
	return s.rng.Intn(n), -1
}
