package search

// hillClimb runs steepest-ascent local search from the given start: each
// round it prices every neighbor in the add/drop/swap neighborhood and
// moves to the strictly best improving one, stopping at a local optimum
// or when the evaluation budget runs dry / the solve deadline passes
// (returning the best state reached, wrapped in the stop sentinel).
//
// Neighborhoods:
//
//   - add: materialize one currently-unselected candidate,
//   - drop: unmaterialize one selected candidate,
//   - swap: drop one selected and add one unselected in a single move —
//     the move that lets a budget-tight state trade a view for a better
//     one without passing through an over-budget intermediate.
//
// Every neighbor is priced by delta moves against the incremental
// engine (cache hits don't even touch it: neighbor keys are XORs of the
// selection words), so a full scan costs O(neighbors × affected
// queries), not O(neighbors × workload × selection).
//
// The scan order is deterministic (ascending candidate index, adds/drops
// before swaps) and ties keep the earliest neighbor, so identical inputs
// always climb identical paths.
func (s *solver) hillClimb(start []bool) ([]bool, eval, error) {
	cur := append([]bool(nil), start...)
	curEval, err := s.evaluate(cur) // pins the engine at cur
	if err != nil {
		if stopped(err) {
			// Cannot even price the start; fall back to the empty set,
			// which solve() always prices first (cache hit).
			empty := make([]bool, len(cur))
			e, err2 := s.evaluate(empty)
			if err2 != nil {
				return empty, eval{}, err
			}
			return empty, e, err
		}
		return cur, eval{}, err
	}
	n := len(cur)
	for {
		bestI, bestJ := -1, -1
		bestEval := curEval
		improved := false
		consider := func(i, j int, e eval) {
			if better(e, bestEval) {
				bestI, bestJ, bestEval, improved = i, j, e, true
			}
		}
		scan := func() error {
			// Adds and drops: flip one bit.
			for i := 0; i < n; i++ {
				e, err := s.probeMove(i, -1)
				if err != nil {
					return err
				}
				consider(i, -1, e)
			}
			// Swaps: one selected out, one unselected in.
			for i := 0; i < n; i++ {
				if !cur[i] {
					continue
				}
				for j := 0; j < n; j++ {
					if cur[j] {
						continue
					}
					e, err := s.probeMove(i, j)
					if err != nil {
						return err
					}
					consider(i, j, e)
				}
			}
			return nil
		}
		if err := scan(); err != nil {
			if stopped(err) {
				// Apply the best move found so far, if any, then stop.
				if improved {
					applyMove(cur, bestI, bestJ)
					s.applyEngineMove(bestI, bestJ)
					curEval = bestEval
				}
				return cur, curEval, err
			}
			return cur, eval{}, err
		}
		if !improved {
			return cur, curEval, nil
		}
		applyMove(cur, bestI, bestJ)
		s.applyEngineMove(bestI, bestJ)
		curEval = bestEval
	}
}

// applyMove mutates sel: a flip of i (j < 0) or a swap i→out, j→in.
func applyMove(sel []bool, i, j int) {
	if j < 0 {
		sel[i] = !sel[i]
		return
	}
	sel[i], sel[j] = false, true
}
