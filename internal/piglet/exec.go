package piglet

import (
	"fmt"
	"sort"
	"strings"

	"vmcloud/internal/mapreduce"
)

// Runner executes parsed Piglet programs against a catalog of input
// relations, compiling each GROUP+FOREACH pair into one MapReduce job —
// the same shape the Pig 0.7 compiler produced for the paper's workload.
type Runner struct {
	Catalog Catalog
	MR      mapreduce.Config
}

// Output is one STOREd or DUMPed relation.
type Output struct {
	Name string
	Rel  *Relation
}

// RunResult carries all outputs plus the accumulated MapReduce counters.
type RunResult struct {
	Outputs  []Output
	Counters mapreduce.Counters
	// Jobs is the number of MapReduce jobs launched.
	Jobs int
}

// Output returns the named output relation, if present.
func (r *RunResult) Output(name string) (*Relation, bool) {
	for _, o := range r.Outputs {
		if o.Name == name {
			return o.Rel, true
		}
	}
	return nil, false
}

// evalRel is an environment entry: either a concrete relation or a pending
// (lazy) grouping awaiting its FOREACH.
type evalRel struct {
	rel     *Relation
	grouped *groupedRel
}

type groupedRel struct {
	input *Relation
	keys  []string
	all   bool
}

// Run evaluates the program. Statement order matters; aliases may be
// reassigned. Outputs appear in statement order.
func (rn *Runner) Run(prog *Program) (*RunResult, error) {
	if prog == nil || len(prog.Statements) == 0 {
		return nil, fmt.Errorf("piglet: empty program")
	}
	env := map[string]*evalRel{}
	res := &RunResult{}
	for _, st := range prog.Statements {
		switch s := st.(type) {
		case Assign:
			er, err := rn.eval(env, s.Expr, res)
			if err != nil {
				return nil, err
			}
			env[s.Alias] = er
		case Store:
			rel, err := concrete(env, s.Alias)
			if err != nil {
				return nil, err
			}
			res.Outputs = append(res.Outputs, Output{Name: s.Target, Rel: rel})
		case Dump:
			rel, err := concrete(env, s.Alias)
			if err != nil {
				return nil, err
			}
			res.Outputs = append(res.Outputs, Output{Name: s.Alias, Rel: rel})
		}
	}
	if len(res.Outputs) == 0 {
		return nil, fmt.Errorf("piglet: program has no STORE or DUMP statement")
	}
	return res, nil
}

func concrete(env map[string]*evalRel, alias string) (*Relation, error) {
	er, ok := env[alias]
	if !ok {
		return nil, fmt.Errorf("piglet: undefined alias %q", alias)
	}
	if er.grouped != nil {
		return nil, fmt.Errorf("piglet: alias %q is a bare GROUP; consume it with FOREACH ... GENERATE", alias)
	}
	return er.rel, nil
}

func (rn *Runner) eval(env map[string]*evalRel, e RelExpr, res *RunResult) (*evalRel, error) {
	switch x := e.(type) {
	case Load:
		src, ok := rn.Catalog[x.Source]
		if !ok {
			return nil, fmt.Errorf("piglet: LOAD: unknown source %q", x.Source)
		}
		if len(x.Columns) != len(src.Cols) {
			return nil, fmt.Errorf("piglet: LOAD %q declares %d columns, source has %d", x.Source, len(x.Columns), len(src.Cols))
		}
		// Rebind column names as declared; rows are shared (read-only).
		return &evalRel{rel: &Relation{Cols: x.Columns, Rows: src.Rows}}, nil

	case FilterExpr:
		in, err := concrete(env, x.Input)
		if err != nil {
			return nil, err
		}
		return rn.evalFilter(in, x.Preds)

	case GroupExpr:
		in, err := concrete(env, x.Input)
		if err != nil {
			return nil, err
		}
		if x.All {
			return &evalRel{grouped: &groupedRel{input: in, all: true}}, nil
		}
		for _, k := range x.Keys {
			if _, err := in.ColIndex(k); err != nil {
				return nil, fmt.Errorf("piglet: GROUP BY: %w", err)
			}
		}
		return &evalRel{grouped: &groupedRel{input: in, keys: x.Keys}}, nil

	case OrderExpr:
		in, err := concrete(env, x.Input)
		if err != nil {
			return nil, err
		}
		col, err := in.ColIndex(x.Col)
		if err != nil {
			return nil, fmt.Errorf("piglet: ORDER BY: %w", err)
		}
		out := &Relation{Cols: in.Cols, Rows: append([][]Value(nil), in.Rows...)}
		sort.SliceStable(out.Rows, func(a, b int) bool {
			va, vb := out.Rows[a][col], out.Rows[b][col]
			var less bool
			if va.IsInt && vb.IsInt {
				less = va.Int < vb.Int
			} else {
				less = va.String() < vb.String()
			}
			if x.Desc {
				return !less && va != vb
			}
			return less
		})
		return &evalRel{rel: out}, nil

	case LimitExpr:
		in, err := concrete(env, x.Input)
		if err != nil {
			return nil, err
		}
		n := x.N
		if n > int64(len(in.Rows)) {
			n = int64(len(in.Rows))
		}
		return &evalRel{rel: &Relation{Cols: in.Cols, Rows: in.Rows[:n]}}, nil

	case JoinExpr:
		rel, err := rn.evalJoin(env, x, res)
		if err != nil {
			return nil, err
		}
		return &evalRel{rel: rel}, nil

	case ForeachExpr:
		er, ok := env[x.Input]
		if !ok {
			return nil, fmt.Errorf("piglet: FOREACH: undefined alias %q", x.Input)
		}
		if er.grouped != nil {
			rel, err := rn.evalAggregate(er.grouped, x.Generates, res)
			if err != nil {
				return nil, err
			}
			return &evalRel{rel: rel}, nil
		}
		rel, err := rn.evalProjection(er.rel, x.Generates)
		if err != nil {
			return nil, err
		}
		return &evalRel{rel: rel}, nil

	default:
		return nil, fmt.Errorf("piglet: unsupported expression %T", e)
	}
}

func (rn *Runner) evalFilter(in *Relation, preds []Comparison) (*evalRel, error) {
	type boundPred struct {
		col int
		cmp Comparison
	}
	bound := make([]boundPred, len(preds))
	for i, p := range preds {
		c, err := in.ColIndex(p.Field)
		if err != nil {
			return nil, fmt.Errorf("piglet: FILTER: %w", err)
		}
		bound[i] = boundPred{col: c, cmp: p}
	}
	out := &Relation{Cols: in.Cols}
	for _, row := range in.Rows {
		ok := true
		for _, bp := range bound {
			match, err := matches(row[bp.col], bp.cmp)
			if err != nil {
				return nil, err
			}
			if !match {
				ok = false
				break
			}
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return &evalRel{rel: out}, nil
}

func matches(v Value, c Comparison) (bool, error) {
	var cmp int
	if c.IsInt {
		if !v.IsInt {
			return false, fmt.Errorf("piglet: comparing string column %q with integer literal", c.Field)
		}
		switch {
		case v.Int < c.IntVal:
			cmp = -1
		case v.Int > c.IntVal:
			cmp = 1
		}
	} else {
		if v.IsInt {
			return false, fmt.Errorf("piglet: comparing integer column %q with string literal", c.Field)
		}
		cmp = strings.Compare(v.Str, c.StrVal)
	}
	switch c.Op {
	case "==":
		return cmp == 0, nil
	case "!=":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("piglet: unknown operator %q", c.Op)
	}
}

func (rn *Runner) evalProjection(in *Relation, gens []Generate) (*Relation, error) {
	cols := make([]int, 0, len(gens))
	names := make([]string, 0, len(gens))
	for _, g := range gens {
		if g.Kind != GenColumn {
			return nil, fmt.Errorf("piglet: FOREACH over an ungrouped relation supports only column projection")
		}
		c, err := in.ColIndex(g.Column)
		if err != nil {
			return nil, fmt.Errorf("piglet: FOREACH: %w", err)
		}
		cols = append(cols, c)
		name := g.Column
		if g.As != "" {
			name = g.As
		}
		names = append(names, name)
	}
	out := &Relation{Cols: names, Rows: make([][]Value, len(in.Rows))}
	for r, row := range in.Rows {
		projected := make([]Value, len(cols))
		for i, c := range cols {
			projected[i] = row[c]
		}
		out.Rows[r] = projected
	}
	return out, nil
}

// aggPartial is the per-aggregate combiner state carried through the
// shuffle.
type aggPartial struct {
	Sum   int64
	Count int64
	Min   int64
	Max   int64
}

func newPartial(v int64) aggPartial {
	return aggPartial{Sum: v, Count: 1, Min: v, Max: v}
}

func mergePartial(a, b aggPartial) aggPartial {
	out := aggPartial{Sum: a.Sum + b.Sum, Count: a.Count + b.Count, Min: a.Min, Max: a.Max}
	if b.Min < out.Min {
		out.Min = b.Min
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}

func (p aggPartial) finalize(fn string) int64 {
	switch fn {
	case "SUM":
		return p.Sum
	case "COUNT":
		return p.Count
	case "MIN":
		return p.Min
	case "MAX":
		return p.Max
	case "AVG":
		if p.Count == 0 {
			return 0
		}
		return p.Sum / p.Count
	default:
		return 0
	}
}

// evalAggregate fuses GROUP + FOREACH-with-aggregates into one MapReduce
// job: map emits (encoded group key, per-agg partials), combiner merges
// partials, reduce finalizes.
func (rn *Runner) evalAggregate(g *groupedRel, gens []Generate, res *RunResult) (*Relation, error) {
	in := g.input
	keyCols := make([]int, len(g.keys))
	for i, k := range g.keys {
		c, err := in.ColIndex(k)
		if err != nil {
			return nil, err
		}
		keyCols[i] = c
	}

	type aggSpec struct {
		col  int
		fn   string
		name string
	}
	var (
		aggs      []aggSpec
		outCols   []string
		emitGroup = -1 // position of the group columns in output
	)
	for _, gen := range gens {
		switch gen.Kind {
		case GenGroup:
			if emitGroup >= 0 {
				return nil, fmt.Errorf("piglet: duplicate `group` in GENERATE")
			}
			emitGroup = len(outCols)
			if g.all {
				outCols = append(outCols, "group")
			} else {
				outCols = append(outCols, g.keys...)
			}
		case GenAgg:
			if gen.Rel != "" {
				// The qualifier must reference the grouped relation's alias;
				// column resolution below is what actually matters.
				_ = gen.Rel
			}
			c, err := in.ColIndex(gen.Column)
			if err != nil {
				return nil, fmt.Errorf("piglet: %s(): %w", gen.Func, err)
			}
			name := gen.As
			if name == "" {
				name = strings.ToLower(gen.Func) + "_" + gen.Column
			}
			aggs = append(aggs, aggSpec{col: c, fn: gen.Func, name: name})
			outCols = append(outCols, name)
		case GenColumn:
			return nil, fmt.Errorf("piglet: bare column %q in grouped FOREACH; use `group` or an aggregate", gen.Column)
		}
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("piglet: grouped FOREACH needs at least one aggregate")
	}

	mapper := func(row []Value, emit func(string, []aggPartial)) {
		key := "s:all"
		if !g.all {
			parts := make([]string, len(keyCols))
			for i, c := range keyCols {
				parts[i] = row[c].encode()
			}
			key = strings.Join(parts, "\x1f")
		}
		ps := make([]aggPartial, len(aggs))
		for i, a := range aggs {
			v := row[a.col]
			if !v.IsInt {
				panic(fmt.Sprintf("aggregate %s over non-numeric column %q", a.fn, in.Cols[a.col]))
			}
			ps[i] = newPartial(v.Int)
		}
		emit(key, ps)
	}
	combiner := func(a, b []aggPartial) []aggPartial {
		out := make([]aggPartial, len(a))
		for i := range a {
			out[i] = mergePartial(a[i], b[i])
		}
		return out
	}
	reducer := func(_ string, vs [][]aggPartial) []int64 {
		acc := vs[0]
		for _, v := range vs[1:] {
			acc = combiner(acc, v)
		}
		out := make([]int64, len(aggs))
		for i, a := range aggs {
			out[i] = acc[i].finalize(a.fn)
		}
		return out
	}

	results, counters, err := mapreduce.Run(rn.MR, in.Rows, mapper, combiner, reducer)
	if err != nil {
		return nil, err
	}
	res.Counters.InputRecords += counters.InputRecords
	res.Counters.MapOutputRecords += counters.MapOutputRecords
	res.Counters.ShuffledRecords += counters.ShuffledRecords
	res.Counters.DistinctKeys += counters.DistinctKeys
	res.Counters.OutputRecords += counters.OutputRecords
	res.Jobs++

	// Deterministic ordering: sort by encoded key.
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	nKeyCols := len(keyCols)
	if g.all {
		nKeyCols = 1
	}
	out := &Relation{Cols: outCols, Rows: make([][]Value, 0, len(keys))}
	for _, k := range keys {
		vals := results[k]
		row := make([]Value, 0, len(outCols))
		keyVals, err := decodeKey(k, nKeyCols)
		if err != nil {
			return nil, err
		}
		ai := 0
		for pos := 0; pos < len(outCols); {
			if pos == emitGroup {
				row = append(row, keyVals...)
				pos += len(keyVals)
				continue
			}
			row = append(row, IntV(vals[ai]))
			ai++
			pos++
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func decodeKey(k string, n int) ([]Value, error) {
	parts := strings.Split(k, "\x1f")
	if len(parts) != n {
		return nil, fmt.Errorf("piglet: key %q has %d parts, want %d", k, len(parts), n)
	}
	out := make([]Value, n)
	for i, p := range parts {
		v, err := decodeValue(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// RunScript parses and runs a script in one call.
func (rn *Runner) RunScript(src string) (*RunResult, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return rn.Run(prog)
}
