package piglet

import (
	"fmt"
	"strconv"
	"strings"

	"vmcloud/internal/schema"
	"vmcloud/internal/storage"
)

// Value is a Piglet cell: a string or an int64 (Pig's chararray/long).
type Value struct {
	Str   string
	Int   int64
	IsInt bool
}

// Str builds a string Value.
func Str(s string) Value { return Value{Str: s} }

// IntV builds an integer Value.
func IntV(n int64) Value { return Value{Int: n, IsInt: true} }

// String renders the cell.
func (v Value) String() string {
	if v.IsInt {
		return strconv.FormatInt(v.Int, 10)
	}
	return v.Str
}

// encode renders the value with a type tag for shuffle keys.
func (v Value) encode() string {
	if v.IsInt {
		return "i:" + strconv.FormatInt(v.Int, 10)
	}
	return "s:" + v.Str
}

func decodeValue(s string) (Value, error) {
	switch {
	case strings.HasPrefix(s, "i:"):
		n, err := strconv.ParseInt(s[2:], 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("piglet: bad encoded int %q", s)
		}
		return IntV(n), nil
	case strings.HasPrefix(s, "s:"):
		return Str(s[2:]), nil
	default:
		return Value{}, fmt.Errorf("piglet: bad encoded value %q", s)
	}
}

// Relation is a named-column rowset.
type Relation struct {
	Cols []string
	Rows [][]Value
}

// ColIndex finds a column by name.
func (r *Relation) ColIndex(name string) (int, error) {
	for i, c := range r.Cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("piglet: relation has no column %q (have %v)", name, r.Cols)
}

// String renders the relation as a small tab-separated listing.
func (r *Relation) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Cols, "\t"))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		sb.WriteString(strings.Join(parts, "\t"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Catalog maps LOAD source names to relations.
type Catalog map[string]*Relation

// DatasetRelation denormalizes a star-schema dataset into the flat rowset
// Pig scripts load — one row per fact with all hierarchy attributes spelled
// out, exactly like the paper's Table 1 (Year, Month, Day, Country, Region,
// Department, Profit).
func DatasetRelation(ds *storage.Dataset) (*Relation, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	d2m, ok := ds.Maps[schema.MapName("day", "month")]
	if !ok {
		return nil, fmt.Errorf("piglet: dataset lacks day->month map")
	}
	m2y := ds.Maps[schema.MapName("month", "year")]
	d2r := ds.Maps[schema.MapName("department", "region")]
	r2c := ds.Maps[schema.MapName("region", "country")]
	if m2y == nil || d2r == nil || r2c == nil {
		return nil, fmt.Errorf("piglet: dataset lacks sales hierarchy maps")
	}
	label := func(level string, code int32, fallbackPrefix string) Value {
		if names, ok := ds.Labels[level]; ok && int(code) < len(names) {
			return Str(names[code])
		}
		return Str(fmt.Sprintf("%s%d", fallbackPrefix, code))
	}
	rel := &Relation{
		Cols: []string{"day", "month", "year", "department", "region", "country", "profit"},
		Rows: make([][]Value, 0, ds.Facts.Rows()),
	}
	days := ds.Facts.Keys[0]
	depts := ds.Facts.Keys[1]
	profits := ds.Facts.Measures[0]
	for r := 0; r < ds.Facts.Rows(); r++ {
		day := days[r]
		month := d2m[day]
		year := m2y[month]
		dept := depts[r]
		region := d2r[dept]
		country := r2c[region]
		rel.Rows = append(rel.Rows, []Value{
			label("day", day, "day"),
			label("month", month, "month"),
			IntV(int64(2000 + year)),
			label("department", dept, "dept"),
			label("region", region, "region"),
			label("country", country, "country"),
			IntV(profits[r]),
		})
	}
	return rel, nil
}
