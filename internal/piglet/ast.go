package piglet

import (
	"fmt"
	"strings"
)

// Program is a parsed script: a sequence of statements.
type Program struct {
	Statements []Statement
}

// Statement is either an alias assignment or an output statement.
type Statement interface{ stmt() }

// Assign binds a relational expression to an alias: `x = LOAD ...;`.
type Assign struct {
	Alias string
	Expr  RelExpr
}

// Store marks a relation for output under a target name: `STORE x INTO 'y';`.
type Store struct {
	Alias  string
	Target string
}

// Dump marks a relation for output under its own alias: `DUMP x;`.
type Dump struct {
	Alias string
}

func (Assign) stmt() {}
func (Store) stmt()  {}
func (Dump) stmt()   {}

// RelExpr is a relational operator expression.
type RelExpr interface{ rel() }

// Load reads a named source with a declared column list.
type Load struct {
	Source  string
	Columns []string
}

// FilterExpr keeps rows satisfying all comparisons (AND semantics).
type FilterExpr struct {
	Input string
	Preds []Comparison
}

// GroupExpr groups a relation by one or more columns, or — with All set —
// collapses it into a single group (Pig's GROUP rel ALL, used for grand
// totals).
type GroupExpr struct {
	Input string
	Keys  []string
	All   bool
}

// ForeachExpr projects or aggregates. When its input is a GROUP alias the
// generates may include `group` and aggregate calls; over a plain relation
// only bare column projections are allowed.
type ForeachExpr struct {
	Input     string
	Generates []Generate
}

// OrderExpr sorts a relation by one column.
type OrderExpr struct {
	Input string
	Col   string
	Desc  bool
}

// LimitExpr keeps the first N rows of a relation.
type LimitExpr struct {
	Input string
	N     int64
}

// JoinExpr is an equi-join of two relations (Pig's reduce-side JOIN):
// `j = JOIN a BY x, b BY y;`. Output columns are alias-qualified
// ("a::x", "b::y", ...) as in Pig.
type JoinExpr struct {
	LeftRel  string
	LeftCol  string
	RightRel string
	RightCol string
}

func (Load) rel()        {}
func (FilterExpr) rel()  {}
func (GroupExpr) rel()   {}
func (ForeachExpr) rel() {}
func (OrderExpr) rel()   {}
func (LimitExpr) rel()   {}
func (JoinExpr) rel()    {}

// Generate is one output expression of a FOREACH.
type Generate struct {
	// Kind discriminates the payload.
	Kind GenKind
	// Column is the projected column (GenColumn) or aggregate input field
	// (GenAgg).
	Column string
	// Func is the aggregate function name for GenAgg (SUM, COUNT, MIN,
	// MAX, AVG).
	Func string
	// Rel optionally qualifies the aggregate field (`SUM(raw.profit)`).
	Rel string
	// As renames the output column.
	As string
}

// GenKind discriminates Generate payloads.
type GenKind int

const (
	// GenGroup emits the group key columns (`group`).
	GenGroup GenKind = iota
	// GenColumn projects a plain column.
	GenColumn
	// GenAgg computes an aggregate over the grouped rows.
	GenAgg
)

// Comparison is `field op literal`.
type Comparison struct {
	Field string
	Op    string // == != < <= > >=
	// StrVal/IntVal hold the literal; IsInt selects which.
	StrVal string
	IntVal int64
	IsInt  bool
}

// String renders the comparison roughly as written.
func (c Comparison) String() string {
	if c.IsInt {
		return fmt.Sprintf("%s %s %d", c.Field, c.Op, c.IntVal)
	}
	return fmt.Sprintf("%s %s '%s'", c.Field, c.Op, c.StrVal)
}

// String renders a parse-tree summary, useful in error messages and tests.
func (p *Program) String() string {
	var sb strings.Builder
	for _, s := range p.Statements {
		switch st := s.(type) {
		case Assign:
			fmt.Fprintf(&sb, "%s = %s;\n", st.Alias, relString(st.Expr))
		case Store:
			fmt.Fprintf(&sb, "STORE %s INTO '%s';\n", st.Alias, st.Target)
		case Dump:
			fmt.Fprintf(&sb, "DUMP %s;\n", st.Alias)
		}
	}
	return sb.String()
}

func relString(e RelExpr) string {
	switch r := e.(type) {
	case Load:
		return fmt.Sprintf("LOAD '%s' AS (%s)", r.Source, strings.Join(r.Columns, ", "))
	case FilterExpr:
		parts := make([]string, len(r.Preds))
		for i, p := range r.Preds {
			parts[i] = p.String()
		}
		return fmt.Sprintf("FILTER %s BY %s", r.Input, strings.Join(parts, " AND "))
	case GroupExpr:
		if r.All {
			return fmt.Sprintf("GROUP %s ALL", r.Input)
		}
		if len(r.Keys) == 1 {
			return fmt.Sprintf("GROUP %s BY %s", r.Input, r.Keys[0])
		}
		return fmt.Sprintf("GROUP %s BY (%s)", r.Input, strings.Join(r.Keys, ", "))
	case OrderExpr:
		dir := "ASC"
		if r.Desc {
			dir = "DESC"
		}
		return fmt.Sprintf("ORDER %s BY %s %s", r.Input, r.Col, dir)
	case LimitExpr:
		return fmt.Sprintf("LIMIT %s %d", r.Input, r.N)
	case JoinExpr:
		return fmt.Sprintf("JOIN %s BY %s, %s BY %s", r.LeftRel, r.LeftCol, r.RightRel, r.RightCol)
	case ForeachExpr:
		parts := make([]string, len(r.Generates))
		for i, g := range r.Generates {
			switch g.Kind {
			case GenGroup:
				parts[i] = "group"
			case GenColumn:
				parts[i] = g.Column
			case GenAgg:
				field := g.Column
				if g.Rel != "" {
					field = g.Rel + "." + g.Column
				}
				parts[i] = fmt.Sprintf("%s(%s)", g.Func, field)
			}
			if g.As != "" {
				parts[i] += " AS " + g.As
			}
		}
		return fmt.Sprintf("FOREACH %s GENERATE %s", r.Input, strings.Join(parts, ", "))
	default:
		return fmt.Sprintf("%T", e)
	}
}
