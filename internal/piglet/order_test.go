package piglet

import (
	"strings"
	"testing"
)

func TestOrderByAscending(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
srt = ORDER raw BY profit;
DUMP srt;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("srt")
	prev := int64(-1 << 62)
	for _, row := range rel.Rows {
		if row[2].Int < prev {
			t.Fatalf("not ascending:\n%s", rel)
		}
		prev = row[2].Int
	}
}

func TestOrderByDescendingAndLimit(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
grp = GROUP raw BY country;
tot = FOREACH grp GENERATE group, SUM(raw.profit) AS total;
srt = ORDER tot BY total DESC;
top = LIMIT srt 1;
DUMP top;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("top")
	if len(rel.Rows) != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", len(rel.Rows), rel)
	}
	// France: 75, Italy: 73 → top-1 is France.
	if rel.Rows[0][0].Str != "France" || rel.Rows[0][1].Int != 75 {
		t.Errorf("top row = %v", rel.Rows[0])
	}
}

func TestOrderByStringColumn(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
srt = ORDER raw BY country DESC;
DUMP srt;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("srt")
	if rel.Rows[0][1].Str != "Italy" {
		t.Errorf("first row = %v, want Italy first (DESC)", rel.Rows[0])
	}
	if rel.Rows[len(rel.Rows)-1][1].Str != "France" {
		t.Errorf("last row = %v", rel.Rows[len(rel.Rows)-1])
	}
}

func TestOrderStability(t *testing.T) {
	// Equal keys keep their input order (stable sort).
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
srt = ORDER raw BY year;
DUMP srt;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("srt")
	// Input order within year 2000: France(35), France(40), Italy(23).
	var y2000 []int64
	for _, row := range rel.Rows {
		if row[0].Int == 2000 {
			y2000 = append(y2000, row[2].Int)
		}
	}
	if len(y2000) != 3 || y2000[0] != 35 || y2000[1] != 40 || y2000[2] != 23 {
		t.Errorf("2000 rows = %v, want [35 40 23]", y2000)
	}
}

func TestLimitLargerThanRelation(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
top = LIMIT raw 100;
DUMP top;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("top")
	if len(rel.Rows) != 4 {
		t.Errorf("rows = %d, want all 4", len(rel.Rows))
	}
}

func TestLimitZero(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
top = LIMIT raw 0;
DUMP top;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("top")
	if len(rel.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(rel.Rows))
	}
}

func TestOrderLimitErrors(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"order unknown col", `r = LOAD 'sales' AS (y, c, p); s = ORDER r BY nope; DUMP s;`, "no column"},
		{"order on group", `r = LOAD 'sales' AS (y, c, p); g = GROUP r BY y; s = ORDER g BY y; DUMP s;`, "bare GROUP"},
		{"limit negative", `r = LOAD 'sales' AS (y, c, p); s = LIMIT r -1; DUMP s;`, "non-negative"},
		{"limit no count", `r = LOAD 'sales' AS (y, c, p); s = LIMIT r; DUMP s;`, "expected number"},
		{"order missing by", `r = LOAD 'sales' AS (y, c, p); s = ORDER r y; DUMP s;`, "expected BY"},
	}
	for _, c := range cases {
		_, err := rn.RunScript(c.src)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestOrderLimitRenderRoundTrip(t *testing.T) {
	src := `raw = LOAD 'sales' AS (year, country, profit);
srt = ORDER raw BY profit DESC;
up = ORDER raw BY profit ASC;
top = LIMIT srt 3;
DUMP top;
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p1.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, p1.String())
	}
	if p1.String() != p2.String() {
		t.Errorf("render unstable:\n%s\nvs\n%s", p1, p2)
	}
}

func TestGroupAll(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
g = GROUP raw ALL;
out = FOREACH g GENERATE group, SUM(raw.profit) AS total, COUNT(raw.profit) AS n;
DUMP out;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("out")
	if len(rel.Rows) != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", len(rel.Rows), rel)
	}
	row := rel.Rows[0]
	if row[0].Str != "all" {
		t.Errorf("group cell = %v, want all", row[0])
	}
	if row[1].Int != 148 { // 35+40+23+50
		t.Errorf("total = %d, want 148", row[1].Int)
	}
	if row[2].Int != 4 {
		t.Errorf("count = %d, want 4", row[2].Int)
	}
}

func TestGroupAllWithoutGroupColumn(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
g = GROUP raw ALL;
out = FOREACH g GENERATE SUM(raw.profit) AS total;
DUMP out;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("out")
	if len(rel.Rows) != 1 || len(rel.Cols) != 1 || rel.Rows[0][0].Int != 148 {
		t.Errorf("result:\n%s", rel)
	}
}

func TestGroupAllRenderRoundTrip(t *testing.T) {
	src := `raw = LOAD 'sales' AS (year, country, profit);
g = GROUP raw ALL;
out = FOREACH g GENERATE group, SUM(raw.profit) AS total;
DUMP out;
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p1.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, p1.String())
	}
	if p1.String() != p2.String() {
		t.Errorf("unstable render:\n%s", p1.String())
	}
}

// A multi-statement program compiling to several MapReduce jobs: the whole
// 3-query workload in one script, plus a joined enrichment — the shape of
// a real Pig analysis session.
func TestMultiJobProgram(t *testing.T) {
	rn := &Runner{Catalog: joinCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
geo = LOAD 'countries' AS (name, continent);

-- Q1: profit per year and country
g1 = GROUP raw BY (year, country);
q1 = FOREACH g1 GENERATE group, SUM(raw.profit) AS total;
STORE q1 INTO 'q1';

-- Q2: profit per country, top-1
g2 = GROUP raw BY country;
q2 = FOREACH g2 GENERATE group, SUM(raw.profit) AS total;
s2 = ORDER q2 BY total DESC;
t2 = LIMIT s2 1;
STORE t2 INTO 'q2_top';

-- Q3: grand total
g3 = GROUP raw ALL;
q3 = FOREACH g3 GENERATE SUM(raw.profit) AS total;
STORE q3 INTO 'q3';

-- enrichment join
j = JOIN raw BY country, geo BY name;
DUMP j;
`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 4 { // three aggregations + one join
		t.Errorf("jobs = %d, want 4", res.Jobs)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("outputs = %d, want 4", len(res.Outputs))
	}
	q3, _ := res.Output("q3")
	if q3.Rows[0][0].Int != 148 {
		t.Errorf("grand total = %d, want 148", q3.Rows[0][0].Int)
	}
	top, _ := res.Output("q2_top")
	if top.Rows[0][0].Str != "France" {
		t.Errorf("top country = %v", top.Rows[0])
	}
	q1, _ := res.Output("q1")
	if len(q1.Rows) != 3 {
		t.Errorf("q1 groups = %d, want 3", len(q1.Rows))
	}
}
