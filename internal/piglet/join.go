package piglet

import (
	"fmt"
	"sort"

	"vmcloud/internal/mapreduce"
)

// taggedRow carries a row through the join shuffle with its side marker —
// the classic reduce-side join encoding.
type taggedRow struct {
	left bool
	row  []Value
}

// joinedGroup accumulates both sides of one join key in the reducer.
type joinedGroup struct {
	lefts  [][]Value
	rights [][]Value
}

// evalJoin executes an equi-join as one MapReduce job: mappers tag rows
// with their side and emit them under the encoded join key; reducers build
// the per-key cross product.
func (rn *Runner) evalJoin(env map[string]*evalRel, x JoinExpr, res *RunResult) (*Relation, error) {
	left, err := concrete(env, x.LeftRel)
	if err != nil {
		return nil, err
	}
	right, err := concrete(env, x.RightRel)
	if err != nil {
		return nil, err
	}
	lc, err := left.ColIndex(x.LeftCol)
	if err != nil {
		return nil, fmt.Errorf("piglet: JOIN: %w", err)
	}
	rc, err := right.ColIndex(x.RightCol)
	if err != nil {
		return nil, fmt.Errorf("piglet: JOIN: %w", err)
	}

	inputs := make([]taggedRow, 0, len(left.Rows)+len(right.Rows))
	for _, row := range left.Rows {
		inputs = append(inputs, taggedRow{left: true, row: row})
	}
	for _, row := range right.Rows {
		inputs = append(inputs, taggedRow{left: false, row: row})
	}

	mapper := func(tr taggedRow, emit func(string, taggedRow)) {
		col := rc
		if tr.left {
			col = lc
		}
		emit(tr.row[col].encode(), tr)
	}
	reducer := func(_ string, vs []taggedRow) *joinedGroup {
		g := &joinedGroup{}
		for _, v := range vs {
			if v.left {
				g.lefts = append(g.lefts, v.row)
			} else {
				g.rights = append(g.rights, v.row)
			}
		}
		return g
	}
	groups, counters, err := mapreduce.Run(rn.MR, inputs, mapper, nil, reducer)
	if err != nil {
		return nil, err
	}
	res.Counters.InputRecords += counters.InputRecords
	res.Counters.MapOutputRecords += counters.MapOutputRecords
	res.Counters.ShuffledRecords += counters.ShuffledRecords
	res.Counters.DistinctKeys += counters.DistinctKeys
	res.Counters.OutputRecords += counters.OutputRecords
	res.Jobs++

	// Alias-qualified output columns, Pig style: a::col, b::col.
	out := &Relation{}
	for _, c := range left.Cols {
		out.Cols = append(out.Cols, x.LeftRel+"::"+c)
	}
	for _, c := range right.Cols {
		out.Cols = append(out.Cols, x.RightRel+"::"+c)
	}

	// Deterministic order: by join key, then input order within a key.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		for _, l := range g.lefts {
			for _, r := range g.rights {
				row := make([]Value, 0, len(l)+len(r))
				row = append(row, l...)
				row = append(row, r...)
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}
