package piglet

import (
	"strings"
	"testing"

	"vmcloud/internal/datagen"
	"vmcloud/internal/engine"
	"vmcloud/internal/mapreduce"
	"vmcloud/internal/storage"
)

func smallCatalog() Catalog {
	return Catalog{
		"sales": {
			Cols: []string{"year", "country", "profit"},
			Rows: [][]Value{
				{IntV(2000), Str("France"), IntV(35)},
				{IntV(2000), Str("France"), IntV(40)},
				{IntV(2000), Str("Italy"), IntV(23)},
				{IntV(1999), Str("Italy"), IntV(50)},
			},
		},
	}
}

func TestEndToEndSumPerYearCountry(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog(), MR: mapreduce.Config{Mappers: 2, Reducers: 2}}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
grp = GROUP raw BY (year, country);
out = FOREACH grp GENERATE group, SUM(raw.profit) AS total;
STORE out INTO 'q1';
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, ok := res.Output("q1")
	if !ok {
		t.Fatal("q1 missing from outputs")
	}
	if len(rel.Cols) != 3 || rel.Cols[2] != "total" {
		t.Fatalf("cols = %v", rel.Cols)
	}
	want := map[string]int64{
		"1999|Italy":  50,
		"2000|France": 75,
		"2000|Italy":  23,
	}
	if len(rel.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d:\n%s", len(rel.Rows), len(want), rel)
	}
	for _, row := range rel.Rows {
		key := row[0].String() + "|" + row[1].String()
		if row[2].Int != want[key] {
			t.Errorf("total[%s] = %d, want %d", key, row[2].Int, want[key])
		}
	}
	if res.Jobs != 1 {
		t.Errorf("jobs = %d, want 1", res.Jobs)
	}
	if res.Counters.InputRecords != 4 {
		t.Errorf("counters = %+v", res.Counters)
	}
}

func TestFilterThenAggregate(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
fr = FILTER raw BY country == 'France';
grp = GROUP fr BY year;
out = FOREACH grp GENERATE group, SUM(fr.profit), COUNT(fr.profit) AS n;
DUMP out;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("out")
	if len(rel.Rows) != 1 {
		t.Fatalf("rows:\n%s", rel)
	}
	row := rel.Rows[0]
	if row[0].Int != 2000 || row[1].Int != 75 || row[2].Int != 2 {
		t.Errorf("row = %v", row)
	}
	if rel.Cols[1] != "sum_profit" || rel.Cols[2] != "n" {
		t.Errorf("cols = %v", rel.Cols)
	}
}

func TestAllAggregates(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
grp = GROUP raw BY country;
out = FOREACH grp GENERATE group, SUM(raw.profit), MIN(raw.profit), MAX(raw.profit), AVG(raw.profit), COUNT(raw.profit);
DUMP out;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("out")
	byCountry := map[string][]int64{}
	for _, row := range rel.Rows {
		vals := make([]int64, 5)
		for i := 0; i < 5; i++ {
			vals[i] = row[i+1].Int
		}
		byCountry[row[0].Str] = vals
	}
	fr := byCountry["France"]
	if fr[0] != 75 || fr[1] != 35 || fr[2] != 40 || fr[3] != 37 || fr[4] != 2 {
		t.Errorf("France = %v (sum,min,max,avg,count)", fr)
	}
	it := byCountry["Italy"]
	if it[0] != 73 || it[1] != 23 || it[2] != 50 || it[3] != 36 || it[4] != 2 {
		t.Errorf("Italy = %v", it)
	}
}

func TestProjectionNoJob(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (year, country, profit);
p = FOREACH raw GENERATE country, profit AS p;
DUMP p;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("p")
	if len(rel.Cols) != 2 || rel.Cols[1] != "p" || len(rel.Rows) != 4 {
		t.Errorf("projection = %v\n%s", rel.Cols, rel)
	}
	if res.Jobs != 0 {
		t.Errorf("projection launched %d MR jobs, want 0", res.Jobs)
	}
}

func TestRuntimeErrors(t *testing.T) {
	rn := &Runner{Catalog: smallCatalog()}
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown source", `r = LOAD 'nope' AS (a); DUMP r;`, "unknown source"},
		{"column arity", `r = LOAD 'sales' AS (a, b); DUMP r;`, "declares 2 columns"},
		{"undefined alias", `r = LOAD 'sales' AS (y, c, p); DUMP zzz;`, "undefined alias"},
		{"dump bare group", `r = LOAD 'sales' AS (y, c, p); g = GROUP r BY y; DUMP g;`, "bare GROUP"},
		{"no outputs", `r = LOAD 'sales' AS (y, c, p);`, "no STORE or DUMP"},
		{"bad group key", `r = LOAD 'sales' AS (y, c, p); g = GROUP r BY nope; o = FOREACH g GENERATE group, SUM(p); DUMP o;`, "no column"},
		{"bad filter col", `r = LOAD 'sales' AS (y, c, p); f = FILTER r BY nope == 3; DUMP f;`, "no column"},
		{"type mismatch", `r = LOAD 'sales' AS (y, c, p); f = FILTER r BY c == 3; DUMP f;`, "string column"},
		{"type mismatch2", `r = LOAD 'sales' AS (y, c, p); f = FILTER r BY y == 'x'; DUMP f;`, "integer column"},
		{"agg without group", `r = LOAD 'sales' AS (y, c, p); g = GROUP r BY y; o = FOREACH g GENERATE group, c; DUMP o;`, "bare column"},
		{"no aggregate", `r = LOAD 'sales' AS (y, c, p); g = GROUP r BY y; o = FOREACH g GENERATE group; DUMP o;`, "at least one aggregate"},
		{"agg bad col", `r = LOAD 'sales' AS (y, c, p); g = GROUP r BY y; o = FOREACH g GENERATE group, SUM(zz); DUMP o;`, "no column"},
		{"agg non-numeric", `r = LOAD 'sales' AS (y, c, p); g = GROUP r BY y; o = FOREACH g GENERATE group, SUM(c); DUMP o;`, "non-numeric"},
		{"projection of agg", `r = LOAD 'sales' AS (y, c, p); o = FOREACH r GENERATE SUM(p); DUMP o;`, "only column projection"},
	}
	for _, c := range cases {
		_, err := rn.RunScript(c.src)
		if err == nil {
			t.Errorf("%s: run succeeded, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

// The headline integration test: the paper's Q1 ("sales per year and
// country") computed by Piglet-on-MapReduce must agree with the columnar
// engine's lattice rollup, on real generated data.
func TestPigletMatchesEngine(t *testing.T) {
	ds, err := datagen.GenerateSales(datagen.Config{Rows: 20_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := DatasetRelation(ds)
	if err != nil {
		t.Fatal(err)
	}
	rn := &Runner{Catalog: Catalog{"sales": rel}, MR: mapreduce.Config{Mappers: 4, Reducers: 4}}
	res, err := rn.RunScript(`
raw = LOAD 'sales' AS (day, month, year, department, region, country, profit);
grp = GROUP raw BY (year, country);
out = FOREACH grp GENERATE group, SUM(raw.profit) AS total;
STORE out INTO 'q1';
`)
	if err != nil {
		t.Fatal(err)
	}
	pig, _ := res.Output("q1")

	ex, err := engine.NewExecutor(ds)
	if err != nil {
		t.Fatal(err)
	}
	yearCountry, err := ex.Lat.PointOf("year", "country")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ex.Answer(yearCountry, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}

	engTotals := map[string]int64{}
	for r := 0; r < eng.Table.Rows(); r++ {
		y := eng.Table.Keys[0][r]
		c := eng.Table.Keys[1][r]
		key := ds.Labels["year"][y] + "|" + ds.Labels["country"][c]
		engTotals[key] = eng.Table.Measures[0][r]
	}
	if len(pig.Rows) != len(engTotals) {
		t.Fatalf("piglet rows = %d, engine rows = %d", len(pig.Rows), len(engTotals))
	}
	for _, row := range pig.Rows {
		key := row[0].String() + "|" + row[1].String()
		want, ok := engTotals[key]
		if !ok {
			t.Errorf("engine lacks group %s", key)
			continue
		}
		if row[2].Int != want {
			t.Errorf("group %s: piglet %d, engine %d", key, row[2].Int, want)
		}
	}
}

func TestDatasetRelationShape(t *testing.T) {
	ds, err := datagen.GenerateSales(datagen.Config{Rows: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := DatasetRelation(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 100 {
		t.Fatalf("rows = %d", len(rel.Rows))
	}
	if len(rel.Cols) != 7 {
		t.Fatalf("cols = %v", rel.Cols)
	}
	row := rel.Rows[0]
	if !row[6].IsInt || row[6].Int <= 0 {
		t.Errorf("profit cell = %+v", row[6])
	}
	if !row[2].IsInt || row[2].Int < 2000 || row[2].Int > 2010 {
		t.Errorf("year cell = %+v", row[2])
	}
	if row[5].IsInt {
		t.Errorf("country cell should be a string: %+v", row[5])
	}
	if _, err := DatasetRelation(&storage.Dataset{}); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestValueEncodeDecodeRoundTrip(t *testing.T) {
	for _, v := range []Value{Str("France"), Str(""), IntV(0), IntV(-42), IntV(2010)} {
		got, err := decodeValue(v.encode())
		if err != nil {
			t.Fatalf("decode(%q): %v", v.encode(), err)
		}
		if got != v {
			t.Errorf("round trip %+v → %+v", v, got)
		}
	}
	if _, err := decodeValue("x:bad"); err == nil {
		t.Error("bad tag accepted")
	}
	if _, err := decodeValue("i:notanumber"); err == nil {
		t.Error("bad int accepted")
	}
}
