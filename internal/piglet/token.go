// Package piglet implements a small Pig-Latin-like dataflow language — the
// stand-in for the Pig 0.7 scripts the paper's workload was written in.
// Scripts are parsed into logical plans and executed on the in-process
// MapReduce runtime (package mapreduce).
//
// Supported statements, mirroring the Pig subset the paper's ten
// aggregation queries need:
//
//	raw = LOAD 'sales' AS (day, month, year, department, region, country, profit);
//	fr  = FILTER raw BY country == 'France' AND profit > 100;
//	grp = GROUP fr BY (year, country);
//	out = FOREACH grp GENERATE group, SUM(fr.profit) AS total;
//	prj = FOREACH raw GENERATE year, profit;
//	all = GROUP raw ALL;
//	tot = FOREACH all GENERATE SUM(raw.profit);
//	j   = JOIN raw BY country, geo BY name;
//	srt = ORDER out BY total DESC;
//	top = LIMIT srt 5;
//	STORE out INTO 'result';
//	DUMP out;
package piglet

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString // 'single quoted'
	tokNumber
	tokEquals    // =
	tokSemicolon // ;
	tokComma     // ,
	tokLParen    // (
	tokRParen    // )
	tokDot       // .
	tokOp        // == != < <= > >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokEquals:
		return "'='"
	case tokSemicolon:
		return "';'"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokDot:
		return "'.'"
	case tokOp:
		return "comparison operator"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// keywords of the language; matched case-insensitively per Pig convention.
var keywords = map[string]bool{
	"LOAD": true, "AS": true, "GROUP": true, "BY": true,
	"FOREACH": true, "GENERATE": true, "FILTER": true,
	"STORE": true, "INTO": true, "DUMP": true, "AND": true,
	"ORDER": true, "DESC": true, "ASC": true, "LIMIT": true, "ALL": true,
	"JOIN": true,
}

// aggregate function names.
var aggFuncs = map[string]bool{
	"SUM": true, "COUNT": true, "MIN": true, "MAX": true, "AVG": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes a script.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("piglet: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// tokens lexes the whole input.
func (l *lexer) tokens() ([]token, error) {
	var out []token
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			out = append(out, token{kind: tokEOF, line: l.line, col: l.col})
			return out, nil
		}
		line, col := l.line, l.col
		r := l.peek()
		switch {
		case unicode.IsLetter(r) || r == '_':
			word := l.lexWord()
			up := strings.ToUpper(word)
			if keywords[up] {
				out = append(out, token{tokKeyword, up, line, col})
			} else {
				out = append(out, token{tokIdent, word, line, col})
			}
		case unicode.IsDigit(r) || (r == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
			out = append(out, token{tokNumber, l.lexNumber(), line, col})
		case r == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			out = append(out, token{tokString, s, line, col})
		case r == '=':
			l.advance()
			if l.peek() == '=' {
				l.advance()
				out = append(out, token{tokOp, "==", line, col})
			} else {
				out = append(out, token{tokEquals, "=", line, col})
			}
		case r == '!':
			l.advance()
			if l.peek() != '=' {
				return nil, l.errorf("expected '=' after '!'")
			}
			l.advance()
			out = append(out, token{tokOp, "!=", line, col})
		case r == '<' || r == '>':
			l.advance()
			op := string(r)
			if l.peek() == '=' {
				l.advance()
				op += "="
			}
			out = append(out, token{tokOp, op, line, col})
		case r == ';':
			l.advance()
			out = append(out, token{tokSemicolon, ";", line, col})
		case r == ',':
			l.advance()
			out = append(out, token{tokComma, ",", line, col})
		case r == '(':
			l.advance()
			out = append(out, token{tokLParen, "(", line, col})
		case r == ')':
			l.advance()
			out = append(out, token{tokRParen, ")", line, col})
		case r == '.':
			l.advance()
			out = append(out, token{tokDot, ".", line, col})
		default:
			return nil, l.errorf("unexpected character %q", r)
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsSpace(r) {
			l.advance()
			continue
		}
		// "--" line comments, Pig style.
		if r == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		return
	}
}

func (l *lexer) lexWord() string {
	start := l.pos
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			l.advance()
		} else {
			break
		}
	}
	return string(l.src[start:l.pos])
}

func (l *lexer) lexNumber() string {
	start := l.pos
	if l.peek() == '-' {
		l.advance()
	}
	for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
		l.advance()
	}
	return string(l.src[start:l.pos])
}

func (l *lexer) lexString() (string, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return "", l.errorf("unterminated string")
		}
		r := l.advance()
		if r == '\'' {
			return sb.String(), nil
		}
		if r == '\\' && l.pos < len(l.src) {
			sb.WriteRune(l.advance())
			continue
		}
		sb.WriteRune(r)
	}
}
