package piglet

import (
	"strings"
	"testing"
)

func TestParseFullScript(t *testing.T) {
	src := `
-- the paper's Q1: sales per year and country
raw = LOAD 'sales' AS (day, month, year, department, region, country, profit);
grp = GROUP raw BY (year, country);
out = FOREACH grp GENERATE group, SUM(raw.profit) AS total;
STORE out INTO 'q1';
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Statements) != 4 {
		t.Fatalf("statements = %d, want 4", len(prog.Statements))
	}
	load := prog.Statements[0].(Assign).Expr.(Load)
	if load.Source != "sales" || len(load.Columns) != 7 {
		t.Errorf("load = %+v", load)
	}
	grp := prog.Statements[1].(Assign).Expr.(GroupExpr)
	if grp.Input != "raw" || len(grp.Keys) != 2 || grp.Keys[0] != "year" || grp.Keys[1] != "country" {
		t.Errorf("group = %+v", grp)
	}
	fe := prog.Statements[2].(Assign).Expr.(ForeachExpr)
	if len(fe.Generates) != 2 {
		t.Fatalf("generates = %+v", fe.Generates)
	}
	if fe.Generates[0].Kind != GenGroup {
		t.Errorf("first generate = %+v, want group", fe.Generates[0])
	}
	agg := fe.Generates[1]
	if agg.Kind != GenAgg || agg.Func != "SUM" || agg.Rel != "raw" || agg.Column != "profit" || agg.As != "total" {
		t.Errorf("agg = %+v", agg)
	}
	store := prog.Statements[3].(Store)
	if store.Alias != "out" || store.Target != "q1" {
		t.Errorf("store = %+v", store)
	}
}

func TestParseFilterPredicates(t *testing.T) {
	src := `raw = LOAD 's' AS (country, year, profit);
fr = FILTER raw BY country == 'France' AND year >= 2005 AND profit != 0;
DUMP fr;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fe := prog.Statements[1].(Assign).Expr.(FilterExpr)
	if len(fe.Preds) != 3 {
		t.Fatalf("preds = %+v", fe.Preds)
	}
	if fe.Preds[0].Field != "country" || fe.Preds[0].Op != "==" || fe.Preds[0].StrVal != "France" || fe.Preds[0].IsInt {
		t.Errorf("pred0 = %+v", fe.Preds[0])
	}
	if fe.Preds[1].Op != ">=" || !fe.Preds[1].IsInt || fe.Preds[1].IntVal != 2005 {
		t.Errorf("pred1 = %+v", fe.Preds[1])
	}
	if fe.Preds[2].Op != "!=" || fe.Preds[2].IntVal != 0 {
		t.Errorf("pred2 = %+v", fe.Preds[2])
	}
}

func TestParseSingleGroupKeyAndDump(t *testing.T) {
	prog, err := Parse(`r = LOAD 's' AS (a, b);
g = GROUP r BY a;
o = FOREACH g GENERATE group, COUNT(b);
DUMP o;`)
	if err != nil {
		t.Fatal(err)
	}
	grp := prog.Statements[1].(Assign).Expr.(GroupExpr)
	if len(grp.Keys) != 1 || grp.Keys[0] != "a" {
		t.Errorf("group = %+v", grp)
	}
	if _, ok := prog.Statements[3].(Dump); !ok {
		t.Error("DUMP not parsed")
	}
}

func TestParseProjection(t *testing.T) {
	prog, err := Parse(`r = LOAD 's' AS (a, b, c);
p = FOREACH r GENERATE a, c AS renamed;
DUMP p;`)
	if err != nil {
		t.Fatal(err)
	}
	fe := prog.Statements[1].(Assign).Expr.(ForeachExpr)
	if fe.Generates[0].Kind != GenColumn || fe.Generates[0].Column != "a" {
		t.Errorf("gen0 = %+v", fe.Generates[0])
	}
	if fe.Generates[1].As != "renamed" {
		t.Errorf("gen1 = %+v", fe.Generates[1])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`r = load 's' as (a);
g = group r by a;
o = foreach g generate group, sum(a);
dump o;`); err != nil {
		t.Errorf("lower-case keywords rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "empty script"},
		{"comment only", "-- nothing\n", "empty script"},
		{"missing semicolon", "r = LOAD 's' AS (a)", "expected ';'"},
		{"missing as", "r = LOAD 's' (a);", "expected AS"},
		{"bad load source", "r = LOAD sales AS (a);", "expected string"},
		{"bad start", "LOAD 's' AS (a);", "expected statement"},
		{"bare expr", "= LOAD 's' AS (a);", "expected statement"},
		{"missing into", "r = LOAD 's' AS (a); STORE r 'x';", "expected INTO"},
		{"missing pred literal", "r = LOAD 's' AS (a); f = FILTER r BY a == ;", "expected literal"},
		{"bad op", "r = LOAD 's' AS (a); f = FILTER r BY a ! 3;", "expected '='"},
		{"unterminated string", "r = LOAD 'sales AS (a);", "unterminated string"},
		{"unknown rune", "r = LOAD 's' AS (a); @", "unexpected character"},
		{"missing generate", "r = LOAD 's' AS (a); g = GROUP r BY a; o = FOREACH g;", "expected GENERATE"},
		{"unclosed agg", "r = LOAD 's' AS (a); g = GROUP r BY a; o = FOREACH g GENERATE SUM(a;", "expected ')'"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: parse succeeded, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestProgramStringRoundTripsThroughParser(t *testing.T) {
	src := `raw = LOAD 'sales' AS (year, country, profit);
fr = FILTER raw BY country == 'France' AND profit > 5;
grp = GROUP fr BY (year, country);
out = FOREACH grp GENERATE group, SUM(fr.profit) AS total, AVG(fr.profit);
STORE out INTO 'result';
DUMP fr;
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := p1.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered program failed: %v\n%s", err, rendered)
	}
	if p1.String() != p2.String() {
		t.Errorf("render not stable:\n%s\nvs\n%s", p1.String(), p2.String())
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := Parse("r = LOAD 's' AS (a);\nr2 = BADKW x;\n")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should carry line 2 position: %v", err)
	}
}

func TestNegativeNumberLiteral(t *testing.T) {
	prog, err := Parse(`r = LOAD 's' AS (a); f = FILTER r BY a > -5; DUMP f;`)
	if err != nil {
		t.Fatal(err)
	}
	fe := prog.Statements[1].(Assign).Expr.(FilterExpr)
	if fe.Preds[0].IntVal != -5 {
		t.Errorf("literal = %+v", fe.Preds[0])
	}
}
