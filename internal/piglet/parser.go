package piglet

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse lexes and parses a Piglet script into a Program.
func Parse(src string) (*Program, error) {
	toks, err := newLexer(src).tokens()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF) {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Statements = append(prog.Statements, st)
	}
	if len(prog.Statements) == 0 {
		return nil, fmt.Errorf("piglet: empty script")
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == kw
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("piglet: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind) (token, error) {
	if !p.at(k) {
		return token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.atKeyword("STORE"):
		p.next()
		alias, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("INTO"); err != nil {
			return nil, err
		}
		target, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemicolon); err != nil {
			return nil, err
		}
		return Store{Alias: alias.text, Target: target.text}, nil

	case p.atKeyword("DUMP"):
		p.next()
		alias, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemicolon); err != nil {
			return nil, err
		}
		return Dump{Alias: alias.text}, nil

	case p.at(tokIdent):
		alias := p.next()
		if _, err := p.expect(tokEquals); err != nil {
			return nil, err
		}
		expr, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemicolon); err != nil {
			return nil, err
		}
		return Assign{Alias: alias.text, Expr: expr}, nil

	default:
		return nil, p.errorf("expected statement, found %s", p.cur())
	}
}

func (p *parser) relExpr() (RelExpr, error) {
	switch {
	case p.atKeyword("LOAD"):
		return p.loadExpr()
	case p.atKeyword("FILTER"):
		return p.filterExpr()
	case p.atKeyword("GROUP"):
		return p.groupExpr()
	case p.atKeyword("FOREACH"):
		return p.foreachExpr()
	case p.atKeyword("ORDER"):
		return p.orderExpr()
	case p.atKeyword("LIMIT"):
		return p.limitExpr()
	case p.atKeyword("JOIN"):
		return p.joinExpr()
	default:
		return nil, p.errorf("expected LOAD, FILTER, GROUP, FOREACH, ORDER, LIMIT or JOIN, found %s", p.cur())
	}
}

func (p *parser) loadExpr() (RelExpr, error) {
	p.next() // LOAD
	src, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c.text)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return Load{Source: src.text, Columns: cols}, nil
}

func (p *parser) filterExpr() (RelExpr, error) {
	p.next() // FILTER
	input, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	var preds []Comparison
	for {
		c, err := p.comparison()
		if err != nil {
			return nil, err
		}
		preds = append(preds, c)
		if p.atKeyword("AND") {
			p.next()
			continue
		}
		break
	}
	return FilterExpr{Input: input.text, Preds: preds}, nil
}

func (p *parser) comparison() (Comparison, error) {
	field, err := p.expect(tokIdent)
	if err != nil {
		return Comparison{}, err
	}
	op, err := p.expect(tokOp)
	if err != nil {
		return Comparison{}, err
	}
	switch p.cur().kind {
	case tokString:
		v := p.next()
		return Comparison{Field: field.text, Op: op.text, StrVal: v.text}, nil
	case tokNumber:
		v := p.next()
		n, err := strconv.ParseInt(v.text, 10, 64)
		if err != nil {
			return Comparison{}, p.errorf("bad number %q: %v", v.text, err)
		}
		return Comparison{Field: field.text, Op: op.text, IntVal: n, IsInt: true}, nil
	default:
		return Comparison{}, p.errorf("expected literal after %s, found %s", op.text, p.cur())
	}
}

func (p *parser) groupExpr() (RelExpr, error) {
	p.next() // GROUP
	input, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if p.atKeyword("ALL") {
		p.next()
		return GroupExpr{Input: input.text, All: true}, nil
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	var keys []string
	if p.at(tokLParen) {
		p.next()
		for {
			k, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			keys = append(keys, k.text)
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	} else {
		k, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k.text)
	}
	return GroupExpr{Input: input.text, Keys: keys}, nil
}

func (p *parser) orderExpr() (RelExpr, error) {
	p.next() // ORDER
	input, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	col, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	out := OrderExpr{Input: input.text, Col: col.text}
	if p.atKeyword("DESC") {
		p.next()
		out.Desc = true
	} else if p.atKeyword("ASC") {
		p.next()
	}
	return out, nil
}

func (p *parser) limitExpr() (RelExpr, error) {
	p.next() // LIMIT
	input, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	n, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseInt(n.text, 10, 64)
	if err != nil || v < 0 {
		return nil, p.errorf("LIMIT wants a non-negative count, got %q", n.text)
	}
	return LimitExpr{Input: input.text, N: v}, nil
}

func (p *parser) joinExpr() (RelExpr, error) {
	p.next() // JOIN
	left, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	leftCol, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	right, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	rightCol, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	return JoinExpr{
		LeftRel: left.text, LeftCol: leftCol.text,
		RightRel: right.text, RightCol: rightCol.text,
	}, nil
}

func (p *parser) foreachExpr() (RelExpr, error) {
	p.next() // FOREACH
	input, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("GENERATE"); err != nil {
		return nil, err
	}
	var gens []Generate
	for {
		g, err := p.generate()
		if err != nil {
			return nil, err
		}
		gens = append(gens, g)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	return ForeachExpr{Input: input.text, Generates: gens}, nil
}

func (p *parser) generate() (Generate, error) {
	// `group` is also the GROUP keyword; in GENERATE position it means the
	// grouping key tuple.
	if p.atKeyword("GROUP") {
		p.next()
		g := Generate{Kind: GenGroup}
		if p.atKeyword("AS") {
			p.next()
			name, err := p.expect(tokIdent)
			if err != nil {
				return Generate{}, err
			}
			g.As = name.text
		}
		return g, nil
	}
	id, err := p.expect(tokIdent)
	if err != nil {
		return Generate{}, err
	}
	var g Generate
	up := strings.ToUpper(id.text)
	switch {
	case aggFuncs[up]:
		if _, err := p.expect(tokLParen); err != nil {
			return Generate{}, err
		}
		first, err := p.expect(tokIdent)
		if err != nil {
			return Generate{}, err
		}
		g = Generate{Kind: GenAgg, Func: up, Column: first.text}
		if p.at(tokDot) {
			p.next()
			field, err := p.expect(tokIdent)
			if err != nil {
				return Generate{}, err
			}
			g.Rel = first.text
			g.Column = field.text
		}
		if _, err := p.expect(tokRParen); err != nil {
			return Generate{}, err
		}
	default:
		g = Generate{Kind: GenColumn, Column: id.text}
	}
	if p.atKeyword("AS") {
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return Generate{}, err
		}
		g.As = name.text
	}
	return g, nil
}
