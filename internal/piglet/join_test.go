package piglet

import (
	"strings"
	"testing"

	"vmcloud/internal/mapreduce"
)

func joinCatalog() Catalog {
	c := smallCatalog()
	c["countries"] = &Relation{
		Cols: []string{"name", "continent"},
		Rows: [][]Value{
			{Str("France"), Str("Europe")},
			{Str("Italy"), Str("Europe")},
			{Str("Japan"), Str("Asia")},
		},
	}
	return c
}

func TestJoinBasic(t *testing.T) {
	rn := &Runner{Catalog: joinCatalog(), MR: mapreduce.Config{Mappers: 2, Reducers: 2}}
	res, err := rn.RunScript(`
sales = LOAD 'sales' AS (year, country, profit);
geo = LOAD 'countries' AS (name, continent);
j = JOIN sales BY country, geo BY name;
DUMP j;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("j")
	wantCols := []string{"sales::year", "sales::country", "sales::profit", "geo::name", "geo::continent"}
	if len(rel.Cols) != len(wantCols) {
		t.Fatalf("cols = %v", rel.Cols)
	}
	for i, c := range wantCols {
		if rel.Cols[i] != c {
			t.Fatalf("col %d = %q, want %q", i, rel.Cols[i], c)
		}
	}
	// 4 sales rows all match (France×2, Italy×2); Japan matches nothing.
	if len(rel.Rows) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(rel.Rows), rel)
	}
	for _, row := range rel.Rows {
		if row[1].Str != row[3].Str {
			t.Errorf("join key mismatch in row %v", row)
		}
		if row[4].Str != "Europe" {
			t.Errorf("continent = %q", row[4].Str)
		}
	}
	if res.Jobs != 1 {
		t.Errorf("jobs = %d, want 1", res.Jobs)
	}
}

func TestJoinThenGroup(t *testing.T) {
	rn := &Runner{Catalog: joinCatalog()}
	res, err := rn.RunScript(`
sales = LOAD 'sales' AS (year, country, profit);
geo = LOAD 'countries' AS (name, continent);
j = JOIN sales BY country, geo BY name;
g = GROUP j BY geo__continent;
DUMP g;
`)
	// Qualified names contain "::" which is not an identifier; grouping by
	// them requires a projection first. Expect a clear column error.
	if err == nil {
		_ = res
		t.Fatal("grouping by unprojected qualified column should fail")
	}
	if !strings.Contains(err.Error(), "no column") {
		t.Errorf("error = %v", err)
	}
}

func TestJoinCrossProduct(t *testing.T) {
	c := Catalog{
		"a": {Cols: []string{"k", "v"}, Rows: [][]Value{
			{IntV(1), Str("a1")}, {IntV(1), Str("a2")},
		}},
		"b": {Cols: []string{"k", "w"}, Rows: [][]Value{
			{IntV(1), Str("b1")}, {IntV(1), Str("b2")}, {IntV(2), Str("b3")},
		}},
	}
	rn := &Runner{Catalog: c}
	res, err := rn.RunScript(`
x = LOAD 'a' AS (k, v);
y = LOAD 'b' AS (k, w);
j = JOIN x BY k, y BY k;
DUMP j;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("j")
	// Key 1: 2 × 2 = 4 joined rows; key 2 has no left side.
	if len(rel.Rows) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(rel.Rows), rel)
	}
}

func TestJoinErrors(t *testing.T) {
	rn := &Runner{Catalog: joinCatalog()}
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"left col", `s = LOAD 'sales' AS (y, c, p); g = LOAD 'countries' AS (n, k); j = JOIN s BY nope, g BY n; DUMP j;`, "no column"},
		{"right col", `s = LOAD 'sales' AS (y, c, p); g = LOAD 'countries' AS (n, k); j = JOIN s BY c, g BY nope; DUMP j;`, "no column"},
		{"left rel", `g = LOAD 'countries' AS (n, k); j = JOIN zz BY c, g BY n; DUMP j;`, "undefined alias"},
		{"syntax comma", `s = LOAD 'sales' AS (y, c, p); j = JOIN s BY c s BY c; DUMP j;`, "expected ','"},
		{"syntax by", `s = LOAD 'sales' AS (y, c, p); j = JOIN s c, s BY c; DUMP j;`, "expected BY"},
	}
	for _, cse := range cases {
		_, err := rn.RunScript(cse.src)
		if err == nil {
			t.Errorf("%s: accepted", cse.name)
			continue
		}
		if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("%s: error %q does not contain %q", cse.name, err, cse.want)
		}
	}
}

func TestJoinRenderRoundTrip(t *testing.T) {
	src := `s = LOAD 'sales' AS (year, country, profit);
g = LOAD 'countries' AS (name, continent);
j = JOIN s BY country, g BY name;
DUMP j;
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p1.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, p1.String())
	}
	if p1.String() != p2.String() {
		t.Errorf("unstable render:\n%s", p1.String())
	}
}

func TestJoinIntTypedKeys(t *testing.T) {
	// String "1" and int 1 must NOT join (typed key encoding).
	c := Catalog{
		"a": {Cols: []string{"k"}, Rows: [][]Value{{IntV(1)}}},
		"b": {Cols: []string{"k"}, Rows: [][]Value{{Str("1")}}},
	}
	rn := &Runner{Catalog: c}
	res, err := rn.RunScript(`
x = LOAD 'a' AS (k);
y = LOAD 'b' AS (k);
j = JOIN x BY k, y BY k;
DUMP j;
`)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := res.Output("j")
	if len(rel.Rows) != 0 {
		t.Errorf("typed keys joined across types:\n%s", rel)
	}
}
