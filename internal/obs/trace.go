package obs

import (
	"strconv"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of a cold solve, in pipeline order.
type Phase int

const (
	// PhaseLattice: building the search lattice from the workload
	// (lattice.New, workload validation, result-size estimation).
	PhaseLattice Phase = iota
	// PhaseCandidates: enumerating candidate views over the lattice.
	PhaseCandidates
	// PhaseKernel: building the tariff-independent comparison kernel.
	PhaseKernel
	// PhaseBind: binding the kernel to a concrete provider tariff.
	PhaseBind
	// PhaseSolve: the knapsack/search solve itself (all scenarios).
	PhaseSolve
	// PhaseEncode: JSON-encoding the response body.
	PhaseEncode
	// PhaseTotal: wall time of the whole cold solve, recorded by the
	// serving layer around everything above.
	PhaseTotal
	// NumPhases is the arena size; keep it last.
	NumPhases
)

// phaseNames are the stable wire names used in the X-Solve-Phases
// header, the per-phase histogram label, and slow-request logs.
var phaseNames = [NumPhases]string{
	PhaseLattice:    "lattice",
	PhaseCandidates: "candidates",
	PhaseKernel:     "kernel",
	PhaseBind:       "bind",
	PhaseSolve:      "solve",
	PhaseEncode:     "encode",
	PhaseTotal:      "total",
}

// String returns the phase's wire name.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Trace is a per-solve span recorder: a fixed arena of per-phase
// duration accumulators. It is deliberately not a general tracer —
// phases are a closed enum, recording is an atomic add into the arena
// (no interface boxing, no slices growing, no locks), and the atomics
// make it safe for compare's parallel per-cell fan-out, where many
// worker goroutines bind and solve concurrently under one trace.
//
// All methods are nil-safe: a nil *Trace records nothing, so the
// solver packages thread it unconditionally and only the serving layer
// decides whether tracing is on. The timer helpers keep the
// determinism-scoped packages (core, optimizer, search, compare) from
// calling time.Now themselves: obs owns the clock.
type Trace struct {
	durs [NumPhases]atomic.Int64
}

// NewTrace returns an empty trace arena.
func NewTrace() *Trace { return &Trace{} }

// StartTimer begins a phase measurement. On a nil trace it returns the
// zero time, which the matching ObserveSince treats as "not recording".
//
//mvlint:hotpath
func (t *Trace) StartTimer() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince accumulates the time elapsed since t0 (a StartTimer
// result) into phase p. No-op on a nil trace or zero t0.
//
//mvlint:hotpath
func (t *Trace) ObserveSince(p Phase, t0 time.Time) {
	if t == nil || t0.IsZero() {
		return
	}
	t.durs[p].Add(int64(time.Since(t0)))
}

// Observe accumulates an already-measured duration into phase p.
//
//mvlint:hotpath
func (t *Trace) Observe(p Phase, d time.Duration) {
	if t == nil {
		return
	}
	t.durs[p].Add(int64(d))
}

// Duration reads the accumulated time for phase p.
func (t *Trace) Duration(p Phase) time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.durs[p].Load())
}

// AppendHeader renders the trace as the compact `X-Solve-Phases` header
// value: `lattice=52µs;candidates=110µs;...;total=3.2ms`, skipping
// phases that recorded nothing.
func (t *Trace) AppendHeader(b []byte) []byte {
	if t == nil {
		return b
	}
	first := true
	for p := Phase(0); p < NumPhases; p++ {
		d := time.Duration(t.durs[p].Load())
		if d == 0 {
			continue
		}
		if !first {
			b = append(b, ';')
		}
		first = false
		b = append(b, phaseNames[p]...)
		b = append(b, '=')
		b = append(b, d.String()...)
	}
	return b
}

// String renders the same form as AppendHeader.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	return string(t.AppendHeader(nil))
}

// AppendJSON renders the trace as a JSON object of phase -> seconds,
// for structured slow-request logs. Skips empty phases.
func (t *Trace) AppendJSON(b []byte) []byte {
	b = append(b, '{')
	if t != nil {
		first := true
		for p := Phase(0); p < NumPhases; p++ {
			d := time.Duration(t.durs[p].Load())
			if d == 0 {
				continue
			}
			if !first {
				b = append(b, ',')
			}
			first = false
			b = append(b, '"')
			b = append(b, phaseNames[p]...)
			b = append(b, `":`...)
			b = strconv.AppendFloat(b, d.Seconds(), 'g', -1, 64)
		}
	}
	return append(b, '}')
}
