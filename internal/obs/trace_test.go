package obs_test

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"vmcloud/internal/obs"
)

// TestTraceNilSafe: every method must no-op on a nil *Trace — the
// solver packages thread the trace unconditionally, and the cache-hit
// path never builds one.
func TestTraceNilSafe(t *testing.T) {
	var tr *obs.Trace
	t0 := tr.StartTimer()
	if !t0.IsZero() {
		t.Error("nil StartTimer returned a live timestamp")
	}
	tr.ObserveSince(obs.PhaseSolve, t0)
	tr.Observe(obs.PhaseSolve, time.Second)
	if tr.Duration(obs.PhaseSolve) != 0 {
		t.Error("nil trace recorded a duration")
	}
	if tr.String() != "" {
		t.Errorf("nil String = %q", tr.String())
	}
	if got := string(tr.AppendJSON(nil)); got != "{}" {
		t.Errorf("nil AppendJSON = %q", got)
	}
}

// TestTraceAccumulates: repeated observations into one phase add up
// (compare's parallel fan-out records many binds under one trace).
func TestTraceAccumulates(t *testing.T) {
	tr := obs.NewTrace()
	tr.Observe(obs.PhaseBind, 10*time.Millisecond)
	tr.Observe(obs.PhaseBind, 5*time.Millisecond)
	if got := tr.Duration(obs.PhaseBind); got != 15*time.Millisecond {
		t.Errorf("Duration = %v, want 15ms", got)
	}
	// A zero t0 (from a nil StartTimer upstream) records nothing.
	tr.ObserveSince(obs.PhaseSolve, time.Time{})
	if tr.Duration(obs.PhaseSolve) != 0 {
		t.Error("zero t0 recorded a duration")
	}
}

// TestTraceHeader pins the X-Solve-Phases wire form: semicolon-joined
// name=duration pairs in pipeline order, empty phases skipped.
func TestTraceHeader(t *testing.T) {
	tr := obs.NewTrace()
	tr.Observe(obs.PhaseLattice, 52*time.Microsecond)
	tr.Observe(obs.PhaseSolve, 3*time.Millisecond)
	tr.Observe(obs.PhaseTotal, 4*time.Millisecond)
	got := tr.String()
	want := "lattice=52µs;solve=3ms;total=4ms"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if empty := obs.NewTrace().String(); empty != "" {
		t.Errorf("empty trace String = %q", empty)
	}
}

// TestTraceJSON: the slow-log fragment must be valid JSON with phase
// names as keys and seconds as values.
func TestTraceJSON(t *testing.T) {
	tr := obs.NewTrace()
	tr.Observe(obs.PhaseKernel, 250*time.Millisecond)
	tr.Observe(obs.PhaseEncode, 1*time.Millisecond)
	var m map[string]float64
	if err := json.Unmarshal(tr.AppendJSON(nil), &m); err != nil {
		t.Fatalf("AppendJSON produced invalid JSON: %v", err)
	}
	if m["kernel"] != 0.25 || m["encode"] != 0.001 {
		t.Errorf("decoded %v", m)
	}
	if len(m) != 2 {
		t.Errorf("want 2 phases, got %v", m)
	}
}

// TestPhaseNames: the wire names are a stable contract (dashboards and
// the per-phase histogram labels depend on them).
func TestPhaseNames(t *testing.T) {
	want := map[obs.Phase]string{
		obs.PhaseLattice:    "lattice",
		obs.PhaseCandidates: "candidates",
		obs.PhaseKernel:     "kernel",
		obs.PhaseBind:       "bind",
		obs.PhaseSolve:      "solve",
		obs.PhaseEncode:     "encode",
		obs.PhaseTotal:      "total",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), name)
		}
	}
	if obs.Phase(-1).String() != "unknown" || obs.NumPhases.String() != "unknown" {
		t.Error("out-of-range phases must stringify as unknown")
	}
}

// TestTraceConcurrent: concurrent observers on one trace (compare's
// per-cell workers) must not lose durations; -race covers the memory
// model, the sum covers the arithmetic.
func TestTraceConcurrent(t *testing.T) {
	tr := obs.NewTrace()
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Observe(obs.PhaseBind, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := tr.Duration(obs.PhaseBind); got != goroutines*perG*time.Microsecond {
		t.Errorf("Duration = %v, want %v", got, goroutines*perG*time.Microsecond)
	}
}
