package obs

// Solver-side instruments. These live on the Default registry because
// the optimizer/search packages have no server instance to hang series
// off — a process has one solver engine, however many servers wrap it.
//
// The counters are deliberately coarse-grained: NewComparisonKernel and
// Bind increment once per build/rebind (cheap relative to the work they
// count), while the inner-loop quantities — incremental-evaluator moves
// and search evaluations — are accumulated in plain solver-local fields
// and flushed here once per solve, so the gated search benchmarks never
// pay a per-move atomic.
var (
	// KernelBuilds counts tariff-independent comparison-kernel
	// constructions (one per distinct workload shape).
	KernelBuilds = Default.Counter("mvcloud_solver_kernel_builds_total",
		"Comparison kernel constructions (one per distinct workload shape).")

	// KernelRebinds counts tariff bindings of an existing kernel
	// (Bind/RepriceFor), the structure-sharing fast path.
	KernelRebinds = Default.Counter("mvcloud_solver_kernel_rebinds_total",
		"Tariff bindings of an existing comparison kernel (RepriceFor fast path).")

	// IncrementalMoves counts incremental-evaluator Add/Drop moves,
	// flushed once per search solve.
	IncrementalMoves = Default.Counter("mvcloud_solver_incremental_moves_total",
		"Incremental evaluator Add/Drop moves across all search solves.")

	// SearchEvals counts objective evaluations across all search solves,
	// flushed once per solve.
	SearchEvals = Default.Counter("mvcloud_solver_search_evals_total",
		"Objective evaluations across all local-search solves.")
)
