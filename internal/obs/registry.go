// Package obs is the repo's stdlib-only telemetry kernel: sharded atomic
// counters, gauges and fixed-bucket latency histograms with label series
// preallocated at registration, a Prometheus-text exposition writer, and
// a per-phase span recorder for solve tracing.
//
// The design constraint is the serving layer's zero-alloc cache-hit
// contract (internal/server TestCacheHitAllocBudget): every fast-path
// instrument — Counter.Add/Inc, Gauge.Add/Set, Histogram.Observe,
// Trace.Observe — is an atomic operation on a series resolved once at
// registration time. No maps, no label rendering, no interface boxing,
// no fmt on the record path; all of that happens at registration or at
// exposition. The fast paths are marked //mvlint:hotpath, so the
// hotpath analyzer fails the build if a future change sneaks a closure,
// defer, fmt call or string concatenation into an instrument.
//
// A Registry is an independent metric namespace; servers own one per
// instance so tests can build many servers without series collisions.
// Default is the process-wide registry for solver-side instruments
// (kernel builds/rebinds, incremental-evaluator moves, search
// evaluations) that have no server instance to hang off.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// metricKind discriminates how a series renders.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered (family, labels) instrument.
type series struct {
	// labels is the pre-rendered, escaped `k="v",k2="v2"` interior of
	// the label braces; empty for an unlabeled series.
	labels  string
	counter *Counter
	gauge   *Gauge
	// fn, when non-nil, supplies the value at exposition time (callback
	// counter/gauge for values owned elsewhere, e.g. cache byte counts).
	fn   func() float64
	hist *Histogram
}

// family is one metric name: its HELP/TYPE metadata plus every series.
type family struct {
	name string
	help string
	kind metricKind
	s    []*series
}

// Registry is a set of metric families. Registration (Counter, Gauge,
// Histogram, ...) is cheap but locks; the returned instruments are the
// lock-free handles the hot paths hold on to. WritePrometheus renders
// the whole registry in deterministic order.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Default is the process-wide registry: solver-side counters with no
// server instance to belong to register here, and every server's
// /metrics endpoint appends it after its own registry.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds one series under name, creating or extending the
// family. Mixing kinds under one name, duplicating an exact
// (name, labels) series, or passing an odd label list is a programming
// error and panics at startup.
func (r *Registry) register(name, help string, kind metricKind, s *series, labels []string) *series {
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	for _, prev := range f.s {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.s = append(f.s, s)
	return s
}

// Counter registers (or extends) a counter family and returns the
// series' lock-free handle. labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{counter: c}, labels)
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — for monotonic values owned elsewhere (the stats
// mutex, a cache's eviction count).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindCounter, &series{fn: fn}, labels)
}

// Gauge registers a gauge series and returns its lock-free handle.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, &series{gauge: g}, labels)
	return g
}

// GaugeFunc registers a gauge series whose value is read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGauge, &series{fn: fn}, labels)
}

// Histogram registers a fixed-bucket duration histogram series and
// returns its lock-free handle. bounds must be strictly ascending; the
// +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []time.Duration, labels ...string) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, kindHistogram, &series{hist: h}, labels)
	return h
}

// renderLabels renders alternating key, value pairs into the escaped
// `k="v",k2="v2"` interior, sorted by key so a series' identity does not
// depend on argument order.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label list (want key, value pairs)")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b []byte
	for i, p := range pairs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, p.k...)
		b = append(b, '=', '"')
		b = appendEscapedLabel(b, p.v)
		b = append(b, '"')
	}
	return string(b)
}

// appendEscapedLabel escapes a label value per the Prometheus text
// format: backslash, double quote and newline.
func appendEscapedLabel(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, v[i])
		}
	}
	return b
}

// appendEscapedHelp escapes HELP text: backslash and newline (quotes are
// legal in help).
func appendEscapedHelp(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, v[i])
		}
	}
	return b
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// label signature, one HELP and TYPE line per family, histograms in
// cumulative `le` form with the +Inf bucket, `_sum` and `_count`.
// Rendering takes the registration lock but reads the instruments with
// the same atomics the hot paths write, so exposition never blocks an
// increment.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf []byte
	var countsBuf []int64
	for _, name := range names {
		f := r.families[name]
		sers := make([]*series, len(f.s))
		copy(sers, f.s)
		sort.Slice(sers, func(i, j int) bool { return sers[i].labels < sers[j].labels })

		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.String()...)
		buf = append(buf, '\n')
		for _, s := range sers {
			switch f.kind {
			case kindHistogram:
				buf, countsBuf = appendHistogram(buf, countsBuf, f.name, s)
			default:
				buf = appendSample(buf, f.name, "", s.labels, sampleValue(s))
			}
		}
	}
	r.mu.Unlock()
	_, err := w.Write(buf)
	return err
}

func sampleValue(s *series) float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// appendSample renders `name[suffix]{labels[,extra]} value\n`. extra, if
// non-empty, is a pre-rendered label pair appended after the series
// labels (the histogram `le`).
func appendSample(buf []byte, name, suffix, labels string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = appendFloat(buf, v)
	return append(buf, '\n')
}

// appendBucket renders one cumulative histogram bucket line.
func appendBucket(buf []byte, name, labels, le string, cum int64) []byte {
	buf = append(buf, name...)
	buf = append(buf, "_bucket{"...)
	if labels != "" {
		buf = append(buf, labels...)
		buf = append(buf, ',')
	}
	buf = append(buf, `le="`...)
	buf = append(buf, le...)
	buf = append(buf, `"} `...)
	buf = strconv.AppendInt(buf, cum, 10)
	return append(buf, '\n')
}

func appendHistogram(buf []byte, countsBuf []int64, name string, s *series) ([]byte, []int64) {
	h := s.hist
	countsBuf = h.snapshot(countsBuf)
	var cum int64
	for i, bound := range h.bounds {
		cum += countsBuf[i]
		buf = appendBucket(buf, name, s.labels, formatLE(bound), cum)
	}
	cum += countsBuf[len(h.bounds)]
	buf = appendBucket(buf, name, s.labels, "+Inf", cum)
	buf = appendSample(buf, name, "_sum", s.labels, time.Duration(h.sum.Load()).Seconds())
	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	if s.labels != "" {
		buf = append(buf, '{')
		buf = append(buf, s.labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, cum, 10)
	return append(buf, '\n'), countsBuf
}

// formatLE renders a bucket bound in seconds with minimal digits, so
// `le` values are stable, exact strings (10µs -> "1e-05").
func formatLE(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
