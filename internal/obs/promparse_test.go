package obs_test

import (
	"math"
	"strings"
	"testing"

	"vmcloud/internal/obs"
)

// TestParseText covers the sample grammar: bare samples, labeled
// samples, escapes inside label values, and the special float spellings.
func TestParseText(t *testing.T) {
	payload := strings.Join([]string{
		`# HELP x_total help text`,
		`# TYPE x_total counter`,
		`x_total 3`,
		`x_labeled_total{a="1",path="p\\q\"r\ns"} 2.5`,
		``,
		`x_inf +Inf`,
		`x_neg -Inf`,
		`x_nan NaN`,
	}, "\n")
	samples, err := obs.ParseText([]byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("parsed %d samples, want 5", len(samples))
	}
	if samples[0].Name != "x_total" || samples[0].Value != 3 {
		t.Errorf("sample 0 = %+v", samples[0])
	}
	if got := samples[1].Label("path"); got != "p\\q\"r\ns" {
		t.Errorf("unescaped label = %q", got)
	}
	if !math.IsInf(samples[2].Value, 1) || !math.IsInf(samples[3].Value, -1) || !math.IsNaN(samples[4].Value) {
		t.Errorf("special values parsed wrong: %+v", samples[2:])
	}
}

// TestParseTextErrors: each malformed line class is rejected with a
// diagnosable error, never silently skipped.
func TestParseTextErrors(t *testing.T) {
	cases := []struct {
		name, payload, want string
	}{
		{"no separator", `lonelyname`, "no value separator"},
		{"bad metric name", `1bad 3`, "invalid metric name"},
		{"unterminated braces", `x{a="1" 3`, "unterminated label braces"},
		{"bad label name", `x{1a="1"} 3`, "invalid label name"},
		{"unquoted value", `x{a=1} 3`, "unquoted label value"},
		{"bad escape", `x{a="\t"} 3`, `bad escape`},
		{"duplicate label", `x{a="1",a="2"} 3`, "duplicate label"},
		{"missing comma", `x{a="1"b="2"} 3`, "expected ','"},
		{"bad value", `x{a="1"} notanumber`, "bad value"},
		{"extra fields", `x 1 2 3`, "exactly one value field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := obs.ParseText([]byte(tc.payload))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestValidateText pins the format invariants the CI step relies on:
// TYPE coverage, counter non-negativity, and the histogram contract
// (ascending cumulative buckets, +Inf == _count, _sum/_count present).
func TestValidateText(t *testing.T) {
	valid := strings.Join([]string{
		`# TYPE h_seconds histogram`,
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_sum 2.5`,
		`h_seconds_count 5`,
		`# TYPE c_total counter`,
		`c_total 0`,
	}, "\n")
	if _, err := obs.ValidateText([]byte(valid)); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}

	cases := []struct {
		name, payload, want string
	}{
		{"missing TYPE", "orphan_total 1", "no TYPE line"},
		{"malformed TYPE", "# TYPE only_three\nx 1", "malformed TYPE"},
		{"unknown type", "# TYPE x summary\nx 1", "unknown type"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x counter\nx 1", "duplicate TYPE"},
		{"negative counter", "# TYPE x counter\nx -1", "negative value"},
		{"bare histogram sample", "# TYPE h histogram\nh 1", "bare sample"},
		{"bucket missing le", "# TYPE h histogram\nh_bucket 1", "missing le label"},
		{"non-ascending le", strings.Join([]string{
			`# TYPE h histogram`,
			`h_bucket{le="1"} 1`,
			`h_bucket{le="0.5"} 2`,
			`h_bucket{le="+Inf"} 2`,
			`h_sum 1`,
			`h_count 2`,
		}, "\n"), "not ascending"},
		{"non-cumulative buckets", strings.Join([]string{
			`# TYPE h histogram`,
			`h_bucket{le="0.5"} 3`,
			`h_bucket{le="1"} 2`,
			`h_bucket{le="+Inf"} 3`,
			`h_sum 1`,
			`h_count 3`,
		}, "\n"), "not cumulative"},
		{"missing +Inf", strings.Join([]string{
			`# TYPE h histogram`,
			`h_bucket{le="1"} 1`,
			`h_sum 1`,
			`h_count 1`,
		}, "\n"), "missing +Inf"},
		{"missing sum", strings.Join([]string{
			`# TYPE h histogram`,
			`h_bucket{le="+Inf"} 1`,
			`h_count 1`,
		}, "\n"), "missing _sum or _count"},
		{"inf != count", strings.Join([]string{
			`# TYPE h histogram`,
			`h_bucket{le="+Inf"} 4`,
			`h_sum 1`,
			`h_count 5`,
		}, "\n"), "!= _count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := obs.ValidateText([]byte(tc.payload))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestValidateTextScalarSuffixes: a scalar family whose own name ends in
// _count or _sum must not be mistaken for histogram fragments.
func TestValidateTextScalarSuffixes(t *testing.T) {
	payload := strings.Join([]string{
		`# TYPE jobs_count gauge`,
		`jobs_count 3`,
		`# TYPE paid_sum counter`,
		`paid_sum 12`,
	}, "\n")
	if _, err := obs.ValidateText([]byte(payload)); err != nil {
		t.Errorf("scalar _count/_sum family rejected: %v", err)
	}
}

// TestValidateTextPerSeries: histogram invariants hold per label
// signature — two endpoints' series must be validated independently.
func TestValidateTextPerSeries(t *testing.T) {
	payload := strings.Join([]string{
		`# TYPE h_seconds histogram`,
		`h_seconds_bucket{ep="a",le="1"} 1`,
		`h_seconds_bucket{ep="a",le="+Inf"} 2`,
		`h_seconds_sum{ep="a"} 1`,
		`h_seconds_count{ep="a"} 2`,
		`h_seconds_bucket{ep="b",le="1"} 5`,
		`h_seconds_bucket{ep="b",le="+Inf"} 5`,
		`h_seconds_sum{ep="b"} 2`,
		`h_seconds_count{ep="b"} 5`,
	}, "\n")
	if _, err := obs.ValidateText([]byte(payload)); err != nil {
		t.Fatalf("independent series rejected: %v", err)
	}
	// Break only series b; the error must name it.
	broken := strings.Replace(payload, `h_seconds_count{ep="b"} 5`, `h_seconds_count{ep="b"} 6`, 1)
	_, err := obs.ValidateText([]byte(broken))
	if err == nil || !strings.Contains(err.Error(), "ep=b") {
		t.Errorf("error = %v, want it to name series ep=b", err)
	}
}
