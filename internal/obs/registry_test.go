package obs_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"vmcloud/internal/obs"
)

func render(t *testing.T, r *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestWritePrometheusScalars pins the scalar exposition shape: one HELP
// and one TYPE line per family, families sorted by name, series sorted
// by label signature, label keys sorted within a series.
func TestWritePrometheusScalars(t *testing.T) {
	r := obs.NewRegistry()
	b := r.Counter("test_requests_total", "requests served", "outcome", "hit", "endpoint", "advise")
	a := r.Counter("test_requests_total", "requests served", "endpoint", "advise", "outcome", "error")
	g := r.Gauge("test_inflight", "in-flight requests")
	r.GaugeFunc("test_cache_bytes", "resident bytes", func() float64 { return 42 })
	r.CounterFunc("test_evictions_total", "evictions", func() float64 { return 7 })
	a.Inc()
	b.Add(3)
	g.Set(5)

	got := render(t, r)
	want := strings.Join([]string{
		`# HELP test_cache_bytes resident bytes`,
		`# TYPE test_cache_bytes gauge`,
		`test_cache_bytes 42`,
		`# HELP test_evictions_total evictions`,
		`# TYPE test_evictions_total counter`,
		`test_evictions_total 7`,
		`# HELP test_inflight in-flight requests`,
		`# TYPE test_inflight gauge`,
		`test_inflight 5`,
		`# HELP test_requests_total requests served`,
		`# TYPE test_requests_total counter`,
		`test_requests_total{endpoint="advise",outcome="error"} 1`,
		`test_requests_total{endpoint="advise",outcome="hit"} 3`,
		``,
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, err := obs.ValidateText([]byte(got)); err != nil {
		t.Errorf("ValidateText rejected own render: %v", err)
	}
	// Deterministic: a second render is byte-identical.
	if again := render(t, r); again != got {
		t.Error("two renders of an unchanged registry differ")
	}
}

// TestLabelEscaping: backslash, quote and newline in a label value must
// render escaped, and the parser must recover the original value.
func TestLabelEscaping(t *testing.T) {
	r := obs.NewRegistry()
	raw := "a\\b\"c\nd"
	r.Counter("test_escaped_total", "escaping fixture", "path", raw).Inc()
	got := render(t, r)
	if !strings.Contains(got, `path="a\\b\"c\nd"`) {
		t.Errorf("label not escaped: %s", got)
	}
	samples, err := obs.ValidateText([]byte(got))
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range samples {
		if s.Name == "test_escaped_total" {
			found = true
			if s.Label("path") != raw {
				t.Errorf("round-tripped label = %q, want %q", s.Label("path"), raw)
			}
		}
	}
	if !found {
		t.Error("escaped series missing from parse")
	}
}

// TestHistogramExposition pins the cumulative `le` form: bucket counts
// accumulate, the +Inf bucket equals _count, and _sum is in seconds.
func TestHistogramExposition(t *testing.T) {
	r := obs.NewRegistry()
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	h := r.Histogram("test_latency_seconds", "latency", bounds, "endpoint", "advise")
	for _, d := range []time.Duration{
		500 * time.Microsecond, // <= 1ms
		5 * time.Millisecond,   // <= 10ms
		5 * time.Millisecond,   // <= 10ms
		50 * time.Millisecond,  // <= 100ms
		2 * time.Second,        // +Inf
	} {
		h.Observe(d)
	}
	got := render(t, r)
	for _, line := range []string{
		`test_latency_seconds_bucket{endpoint="advise",le="0.001"} 1`,
		`test_latency_seconds_bucket{endpoint="advise",le="0.01"} 3`,
		`test_latency_seconds_bucket{endpoint="advise",le="0.1"} 4`,
		`test_latency_seconds_bucket{endpoint="advise",le="+Inf"} 5`,
		`test_latency_seconds_sum{endpoint="advise"} 2.0605`,
		`test_latency_seconds_count{endpoint="advise"} 5`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, got)
		}
	}
	if _, err := obs.ValidateText([]byte(got)); err != nil {
		t.Errorf("ValidateText rejected histogram render: %v", err)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if want := 2*time.Second + 60*time.Millisecond + 500*time.Microsecond; h.Sum() != want {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
}

// TestDefLatencyBucketsExposition: the default layout renders exact,
// minimal-digit le strings (a drifting format would orphan dashboards).
func TestDefLatencyBucketsExposition(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("test_def_seconds", "default buckets", obs.DefLatencyBuckets)
	h.Observe(3 * time.Microsecond)
	got := render(t, r)
	for _, le := range []string{`le="1e-05"`, `le="0.00025"`, `le="1"`, `le="10"`, `le="+Inf"`} {
		if !strings.Contains(got, le) {
			t.Errorf("default buckets missing %s in:\n%s", le, got)
		}
	}
	if _, err := obs.ValidateText([]byte(got)); err != nil {
		t.Error(err)
	}
}

// TestRegistrationPanics: the misuse classes are programming errors that
// must fail loudly at startup, not corrupt exposition at runtime.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := obs.NewRegistry()
	r.Counter("test_kind_total", "fixture")
	mustPanic("kind mix", func() { r.Gauge("test_kind_total", "fixture") })
	r.Counter("test_dup_total", "fixture", "a", "b")
	mustPanic("duplicate series", func() { r.Counter("test_dup_total", "fixture", "a", "b") })
	mustPanic("odd labels", func() { r.Counter("test_odd_total", "fixture", "a") })
	mustPanic("descending bounds", func() {
		r.Histogram("test_desc_seconds", "fixture", []time.Duration{time.Second, time.Millisecond})
	})
}

// TestCounterConcurrency hammers one counter from many goroutines while
// a reader polls Value — the -race CI step turns any unsynchronized
// access into a failure, and the final sum proves no increment is lost
// across the shards.
func TestCounterConcurrency(t *testing.T) {
	const goroutines = 16
	const perG = 10000
	c := obs.NewRegistry().Counter("test_stress_total", "stress fixture")
	done := make(chan struct{})
	go func() { // concurrent reader: Value must tolerate in-flight adds
		for {
			select {
			case <-done:
				return
			default:
				c.Value()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("Value = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramConcurrency: concurrent observers and an exposition
// reader; the count must equal the number of observations.
func TestHistogramConcurrency(t *testing.T) {
	const goroutines = 8
	const perG = 5000
	r := obs.NewRegistry()
	h := r.Histogram("test_stress_seconds", "stress fixture", obs.DefLatencyBuckets)
	done := make(chan struct{}, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
			done <- struct{}{}
		}(g)
	}
	var buf bytes.Buffer
	for i := 0; i < 50; i++ { // exposition concurrent with observation
		buf.Reset()
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("Count = %d, want %d", got, goroutines*perG)
	}
	if _, err := obs.ValidateText([]byte(render(t, r))); err != nil {
		t.Error(err)
	}
}

// TestGauge: Set/Add/Value semantics, including negative excursions.
func TestGauge(t *testing.T) {
	g := obs.NewRegistry().Gauge("test_gauge", "fixture")
	g.Set(10)
	g.Add(-3)
	g.Add(1)
	if got := g.Value(); got != 8 {
		t.Errorf("Value = %d, want 8", got)
	}
}
