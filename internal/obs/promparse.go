package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a small parser
// and validator for Prometheus text format 0.0.4. It exists for two
// consumers — the server's metrics-format tests (CI validates every
// /metrics render) and the load harness, which scrapes the server-side
// latency histograms after a run and embeds them in LOAD_<date>.json.

// Sample is one parsed sample line.
type Sample struct {
	// Name is the sample name as written, including any _bucket/_sum/
	// _count suffix.
	Name string
	// Labels holds the parsed label pairs (unescaped values).
	Labels map[string]string
	// Value is the sample value; histogram bucket `le` bounds stay in
	// Labels.
	Value float64
}

// Label returns the value of a label, or "" if absent.
func (s Sample) Label(k string) string { return s.Labels[k] }

// ParseText parses a Prometheus text-format payload into samples,
// ignoring comments and blank lines. It is strict about line shape
// (name, optional label braces, value) but does not cross-check
// families; use ValidateText for the format invariants.
func ParseText(b []byte) ([]Sample, error) {
	var out []Sample
	for lineNo, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++ // skip escaped char
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label braces in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp is legal in the format; we never emit one, so
	// take the first field as the value and reject extra fields.
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return s, fmt.Errorf("want exactly one value field in %q, got %d", line, len(fields))
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(f, 64)
}

func parseLabels(interior string, into map[string]string) error {
	i := 0
	for i < len(interior) {
		eq := strings.IndexByte(interior[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label pair without '=' in %q", interior)
		}
		key := interior[i : i+eq]
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(interior) || interior[i] != '"' {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		i++
		var val []byte
		for {
			if i >= len(interior) {
				return fmt.Errorf("unterminated label value for %q", key)
			}
			c := interior[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(interior) {
					return fmt.Errorf("dangling escape in label %q", key)
				}
				switch interior[i+1] {
				case '\\':
					val = append(val, '\\')
				case '"':
					val = append(val, '"')
				case 'n':
					val = append(val, '\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %q", interior[i+1], key)
				}
				i += 2
				continue
			}
			val = append(val, c)
			i++
		}
		if _, dup := into[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		into[key] = string(val)
		if i < len(interior) {
			if interior[i] != ',' {
				return fmt.Errorf("expected ',' between labels, got %q", interior[i:])
			}
			i++
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// seriesKey identifies one series within a family by its non-le labels.
func seriesKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// baseName strips a histogram sample suffix, returning the family name.
func baseName(name string) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf
		}
	}
	return name, ""
}

// ValidateText checks a payload against the exposition-format contract:
// every line parses; every sample family has a preceding # TYPE; sample
// names match their family's type (histogram samples use _bucket/_sum/
// _count, scalar families use the bare name); histogram bucket counts
// are cumulative and non-decreasing in `le` order; every histogram
// series has a +Inf bucket, a _sum and a _count; and +Inf == _count.
// Returns the parsed samples on success.
func ValidateText(b []byte) ([]Sample, error) {
	types := map[string]string{}
	for lineNo, line := range strings.Split(string(b), "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "# TYPE ") {
			continue
		}
		fields := strings.Fields(trimmed)
		if len(fields) != 4 {
			return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo+1, trimmed)
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram":
		default:
			return nil, fmt.Errorf("line %d: unknown type %q", lineNo+1, typ)
		}
		if _, dup := types[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo+1, name)
		}
		types[name] = typ
	}

	samples, err := ParseText(b)
	if err != nil {
		return nil, err
	}

	// Histogram bookkeeping per (family, series).
	type histSeries struct {
		buckets []struct {
			le  float64
			cum float64
		}
		sum, count       float64
		hasSum, hasCount bool
		hasInf           bool
		inf              float64
	}
	hists := map[string]map[string]*histSeries{}

	for _, s := range samples {
		base, suffix := baseName(s.Name)
		typ, typed := types[s.Name]
		baseTyp, baseTyped := types[base]
		switch {
		case typed && (typ == "counter" || typ == "gauge"):
			// A scalar family whose name happens to end in _count/_sum is
			// fine: its own TYPE line wins over the histogram suffix rule.
			if s.Value < 0 && typ == "counter" {
				return nil, fmt.Errorf("counter %s has negative value %g", s.Name, s.Value)
			}
		case baseTyped && baseTyp == "histogram" && suffix != "":
			m := hists[base]
			if m == nil {
				m = map[string]*histSeries{}
				hists[base] = m
			}
			key := seriesKey(s.Labels)
			hs := m[key]
			if hs == nil {
				hs = &histSeries{}
				m[key] = hs
			}
			switch suffix {
			case "_bucket":
				le := s.Label("le")
				if le == "" {
					return nil, fmt.Errorf("histogram bucket %s missing le label", s.Name)
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return nil, fmt.Errorf("histogram %s: bad le %q", base, le)
					}
				} else {
					hs.hasInf = true
					hs.inf = s.Value
				}
				hs.buckets = append(hs.buckets, struct{ le, cum float64 }{bound, s.Value})
			case "_sum":
				hs.sum, hs.hasSum = s.Value, true
			case "_count":
				hs.count, hs.hasCount = s.Value, true
			}
		case typed && typ == "histogram":
			return nil, fmt.Errorf("histogram family %q has bare sample (want _bucket/_sum/_count)", s.Name)
		default:
			return nil, fmt.Errorf("sample %q has no TYPE line", s.Name)
		}
	}

	for base, m := range hists {
		for key, hs := range m {
			if !hs.hasInf {
				return nil, fmt.Errorf("histogram %s{%s} missing +Inf bucket", base, key)
			}
			if !hs.hasSum || !hs.hasCount {
				return nil, fmt.Errorf("histogram %s{%s} missing _sum or _count", base, key)
			}
			for i := 1; i < len(hs.buckets); i++ {
				if hs.buckets[i].le <= hs.buckets[i-1].le {
					return nil, fmt.Errorf("histogram %s{%s}: le bounds not ascending", base, key)
				}
				if hs.buckets[i].cum < hs.buckets[i-1].cum {
					return nil, fmt.Errorf("histogram %s{%s}: bucket counts not cumulative at le=%g", base, key, hs.buckets[i].le)
				}
			}
			if hs.inf != hs.count {
				return nil, fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", base, key, hs.inf, hs.count)
			}
		}
	}
	return samples, nil
}
