package obs

import (
	"sync/atomic"
	"time"
)

// DefLatencyBuckets is the default latency histogram layout: roughly
// 1-2.5-5 per decade from 10µs (an in-process cache hit costs a few µs)
// to 10s (a worst-case cold sweep under the 30s request timeout).
// Observations above the last bound land in the implicit +Inf bucket.
var DefLatencyBuckets = []time.Duration{
	10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. The bucket layout is
// frozen at registration; observing is a short linear scan over the
// bounds plus two atomic adds — no locks, no allocation — so a histogram
// can record the cache-hit path without breaking its alloc budget.
// Buckets hold per-bucket (non-cumulative) counts; the Prometheus
// exposition accumulates them into the cumulative `le` form.
type Histogram struct {
	// bounds are the inclusive upper bounds, ascending, excluding the
	// implicit +Inf bucket.
	bounds []time.Duration
	// counts[i] is the number of observations in (bounds[i-1], bounds[i]];
	// counts[len(bounds)] is the +Inf bucket.
	counts []atomic.Int64
	// sum is the total observed duration in nanoseconds.
	sum atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration. Negative durations (clock weirdness)
// count as zero.
//
//mvlint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// Count is the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum is the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]): the smallest bucket bound whose cumulative count reaches
// q·total. Returns 0 when the histogram is empty; observations in the
// +Inf bucket report the largest finite bound (the histogram cannot
// resolve beyond it). The estimate is conservative by up to one bucket
// width — exactly what a hedging delay wants, since hedging a little
// late only costs latency while hedging early costs duplicated work.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	need := int64(q*float64(total) + 0.5)
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= need {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot reads the per-bucket counts (not cumulative). Not a
// consistent cut across concurrent observers — fine for exposition.
func (h *Histogram) snapshot(buf []int64) []int64 {
	buf = buf[:0]
	for i := range h.counts {
		buf = append(buf, h.counts[i].Load())
	}
	return buf
}
