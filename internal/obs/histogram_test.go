package obs

import (
	"testing"
	"time"
)

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]time.Duration{
		10 * time.Millisecond, 100 * time.Millisecond, time.Second,
	})

	if got := h.Quantile(0.95); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}

	// 90 fast, 9 medium, 1 slow: p50 lands in the first bucket, p95 in
	// the second, p100 in the third.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50 * time.Millisecond)
	}
	h.Observe(500 * time.Millisecond)

	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 10 * time.Millisecond},
		{0.5, 10 * time.Millisecond},
		{0.9, 10 * time.Millisecond},
		{0.95, 100 * time.Millisecond},
		{1, time.Second},
		{-1, 10 * time.Millisecond}, // clamped
		{2, time.Second},            // clamped
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileInfBucket(t *testing.T) {
	h := newHistogram([]time.Duration{10 * time.Millisecond, 100 * time.Millisecond})
	// All observations beyond the last bound: the histogram cannot
	// resolve past it, so every quantile reports the largest finite
	// bound rather than pretending precision it doesn't have.
	for i := 0; i < 5; i++ {
		h.Observe(time.Second)
	}
	if got := h.Quantile(0.5); got != 100*time.Millisecond {
		t.Fatalf("Quantile(0.5) with +Inf mass = %v, want 100ms", got)
	}
}
