package obs

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the shard count of a Counter. Power of two so the
// shard pick is a mask, sized so a handful of busy cores rarely collide.
const counterShards = 16

// counterShard is one cache-line-padded slot of a sharded counter. The
// padding keeps two shards from sharing a line, so concurrent writers
// on different shards never invalidate each other's caches.
type counterShard struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. Increments are
// a single atomic add on one of counterShards cache-line-padded slots —
// no locks, no allocation — so a counter can sit on the zero-alloc
// cache-hit path or inside a solver's inner loop. Reads sum the shards
// and are not a consistent snapshot across concurrent writers (fine for
// telemetry; each individual add is never lost).
type Counter struct {
	shards [counterShards]counterShard
}

// shardIndex disperses goroutines across shards using the address of a
// stack slot: distinct goroutines run on distinct stacks, so the high
// bits differ, while one goroutine keeps hitting the same (cache-warm)
// shard. The pointer is consumed immediately as an integer, so the probe
// never escapes and the pick costs a shift and a mask.
//
//mvlint:hotpath
func shardIndex() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe))>>11) & (counterShards - 1)
}

// Add increments the counter by n (n must be non-negative; counters are
// monotonic by contract).
//
//mvlint:hotpath
func (c *Counter) Add(n int64) {
	c.shards[shardIndex()].n.Add(n)
}

// Inc increments the counter by one.
//
//mvlint:hotpath
func (c *Counter) Inc() {
	c.shards[shardIndex()].n.Add(1)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is an instantaneous integer value (in-flight requests, queue
// depths). A single atomic is enough: gauges move at request rate, not
// inner-loop rate.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//mvlint:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrement).
//
//mvlint:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }
