package pricing

import (
	"fmt"
	"sort"
	"time"

	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

// InstanceType describes a rentable compute configuration (one row of the
// paper's Table 2), together with the capacity attributes the cluster
// simulator needs.
type InstanceType struct {
	// Name identifies the configuration, e.g. "small".
	Name string
	// PricePerHour is the rental price per (started) hour.
	PricePerHour money.Money
	// RAM is the instance memory.
	RAM units.DataSize
	// ECU is the relative compute power in EC2 Compute Units; the cluster
	// simulator scales scan throughput linearly with ECU.
	ECU float64
	// LocalStorage is the instance-attached disk.
	LocalStorage units.DataSize
}

// ComputeTariff prices instance rental: a set of instance types and the
// billing rounding the provider applies ("every started hour is charged").
type ComputeTariff struct {
	Granularity units.BillingGranularity
	Instances   map[string]InstanceType
}

// Instance looks up an instance type by name.
func (c ComputeTariff) Instance(name string) (InstanceType, error) {
	it, ok := c.Instances[name]
	if !ok {
		return InstanceType{}, fmt.Errorf("pricing: unknown instance type %q (have %v)", name, c.InstanceNames())
	}
	return it, nil
}

// InstanceNames returns the sorted list of instance type names.
func (c ComputeTariff) InstanceNames() []string {
	names := make([]string, 0, len(c.Instances))
	for n := range c.Instances {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HourCost charges one instance of the given type for a run of duration d,
// applying the tariff's billing granularity: price × billable-hours.
func (c ComputeTariff) HourCost(it InstanceType, d time.Duration) money.Money {
	return it.PricePerHour.MulFloat(c.Granularity.BillableHours(d))
}

// StorageTariff prices data at rest in $/GB/month tiers (Table 4).
type StorageTariff struct {
	Table TierTable
}

// MonthlyCost returns the charge for holding size for one month.
func (s StorageTariff) MonthlyCost(size units.DataSize) money.Money {
	return s.Table.Cost(size)
}

// CostFor returns the charge for holding size for the given number of
// months. Formula 5 semantics: the per-month charge is computed from the
// interval's constant volume, then scaled by the interval length.
func (s StorageTariff) CostFor(size units.DataSize, months float64) money.Money {
	if months <= 0 {
		return 0
	}
	return s.MonthlyCost(size).MulFloat(months)
}

// TransferTariff prices data movement (Table 3). Ingress was free on 2012
// AWS; egress is tiered per GB.
type TransferTariff struct {
	// IngressFree marks inbound transfer as free of charge.
	IngressFree bool
	// IngressPerGB is the inbound rate when IngressFree is false.
	IngressPerGB money.Money
	// Egress is the tiered outbound table (typically graduated with a free
	// first bracket).
	Egress TierTable
}

// EgressCost returns the charge for transferring size out of the cloud.
func (t TransferTariff) EgressCost(size units.DataSize) money.Money {
	return t.Egress.Cost(size)
}

// IngressCost returns the charge for transferring size into the cloud.
func (t TransferTariff) IngressCost(size units.DataSize) money.Money {
	if t.IngressFree || size <= 0 {
		return 0
	}
	return t.IngressPerGB.MulFloat(size.GBs())
}

// Provider bundles the three billed dimensions of a cloud service provider.
type Provider struct {
	Name     string
	Compute  ComputeTariff
	Storage  StorageTariff
	Transfer TransferTariff
}

// Clone returns a deep copy of the provider: mutating the copy's instance
// map or tier slices cannot affect the receiver. This is what lets the
// built-in catalog be constructed once and handed out safely.
func (p Provider) Clone() Provider {
	out := p
	if p.Compute.Instances != nil {
		m := make(map[string]InstanceType, len(p.Compute.Instances))
		for k, v := range p.Compute.Instances {
			m[k] = v
		}
		out.Compute.Instances = m
	}
	out.Storage.Table.Tiers = append([]Tier(nil), p.Storage.Table.Tiers...)
	out.Transfer.Egress.Tiers = append([]Tier(nil), p.Transfer.Egress.Tiers...)
	return out
}

// Validate checks all tier tables and instance definitions.
func (p Provider) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("pricing: provider has no name")
	}
	if len(p.Compute.Instances) == 0 {
		return fmt.Errorf("pricing: provider %s has no instance types", p.Name)
	}
	for name, it := range p.Compute.Instances {
		if it.Name != name {
			return fmt.Errorf("pricing: provider %s instance key %q does not match name %q", p.Name, name, it.Name)
		}
		if it.PricePerHour < 0 {
			return fmt.Errorf("pricing: provider %s instance %s has negative price", p.Name, name)
		}
		if it.ECU <= 0 {
			return fmt.Errorf("pricing: provider %s instance %s has non-positive ECU", p.Name, name)
		}
	}
	if err := p.Storage.Table.Validate(); err != nil {
		return fmt.Errorf("pricing: provider %s storage: %w", p.Name, err)
	}
	if err := p.Transfer.Egress.Validate(); err != nil {
		return fmt.Errorf("pricing: provider %s egress: %w", p.Name, err)
	}
	return nil
}
