package pricing

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

func TestProviderJSONRoundTrip(t *testing.T) {
	for name, p := range Catalog() {
		data, err := MarshalProvider(p)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		got, err := UnmarshalProvider(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v\n%s", name, err, data)
		}
		if got.Name != p.Name {
			t.Errorf("%s: name %q", name, got.Name)
		}
		if got.Compute.Granularity != p.Compute.Granularity {
			t.Errorf("%s: granularity %v vs %v", name, got.Compute.Granularity, p.Compute.Granularity)
		}
		if len(got.Compute.Instances) != len(p.Compute.Instances) {
			t.Errorf("%s: instance count %d vs %d", name, len(got.Compute.Instances), len(p.Compute.Instances))
		}
		// Behavioural equality: same prices for probe volumes/durations.
		for _, in := range p.Compute.InstanceNames() {
			a, _ := p.Compute.Instance(in)
			b, err := got.Compute.Instance(in)
			if err != nil {
				t.Fatalf("%s: lost instance %s", name, in)
			}
			if p.Compute.HourCost(a, 90*time.Minute) != got.Compute.HourCost(b, 90*time.Minute) {
				t.Errorf("%s/%s: hour cost changed", name, in)
			}
		}
		for _, size := range []units.DataSize{units.GB, 500 * units.GB, 3 * units.TB, 60 * units.TB} {
			if p.Storage.MonthlyCost(size) != got.Storage.MonthlyCost(size) {
				t.Errorf("%s: storage cost changed at %v", name, size)
			}
			if p.Transfer.EgressCost(size) != got.Transfer.EgressCost(size) {
				t.Errorf("%s: egress cost changed at %v", name, size)
			}
			if p.Transfer.IngressCost(size) != got.Transfer.IngressCost(size) {
				t.Errorf("%s: ingress cost changed at %v", name, size)
			}
		}
	}
}

func TestUnmarshalHandAuthored(t *testing.T) {
	src := `{
  "name": "handmade",
  "compute": {
    "granularity": "per-second",
    "instances": [
      {"name": "tiny", "price_per_hour": "$0.05", "ecu": 0.5, "ram": "1GB"}
    ]
  },
  "storage": {
    "mode": "slab",
    "tiers": [
      {"up_to": "1TB", "price_per_gb": "$0.20"},
      {"price_per_gb": "$0.15"}
    ]
  },
  "transfer": {
    "ingress_free": true,
    "egress": {
      "mode": "graduated",
      "tiers": [{"price_per_gb": "$0.10"}]
    }
  }
}`
	p, err := UnmarshalProvider([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "handmade" {
		t.Errorf("name = %q", p.Name)
	}
	it, err := p.Compute.Instance("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if it.PricePerHour != money.FromDollars(0.05) || it.RAM != units.GB {
		t.Errorf("instance = %+v", it)
	}
	if p.Storage.Table.Mode != Slab || len(p.Storage.Table.Tiers) != 2 {
		t.Errorf("storage = %+v", p.Storage.Table)
	}
	if got := p.Storage.MonthlyCost(2 * units.TB); got != money.FromDollars(0.15).MulFloat(2048) {
		t.Errorf("slab cost = %v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"garbage", "{", "parse provider"},
		{"bad granularity", `{"name":"x","compute":{"granularity":"fortnightly","instances":[{"name":"a","price_per_hour":"$1","ecu":1}]},"storage":{"tiers":[{"price_per_gb":"$1"}]},"transfer":{"egress":{"tiers":[{"price_per_gb":"$1"}]}}}`, "granularity"},
		{"bad price", `{"name":"x","compute":{"instances":[{"name":"a","price_per_hour":"oops","ecu":1}]},"storage":{"tiers":[{"price_per_gb":"$1"}]},"transfer":{"egress":{"tiers":[{"price_per_gb":"$1"}]}}}`, "instance a"},
		{"bad size", `{"name":"x","compute":{"instances":[{"name":"a","price_per_hour":"$1","ecu":1,"ram":"huge"}]},"storage":{"tiers":[{"price_per_gb":"$1"}]},"transfer":{"egress":{"tiers":[{"price_per_gb":"$1"}]}}}`, "instance a"},
		{"bad mode", `{"name":"x","compute":{"instances":[{"name":"a","price_per_hour":"$1","ecu":1}]},"storage":{"mode":"mystery","tiers":[{"price_per_gb":"$1"}]},"transfer":{"egress":{"tiers":[{"price_per_gb":"$1"}]}}}`, "tier mode"},
		{"invalid provider", `{"name":"","compute":{"instances":[{"name":"a","price_per_hour":"$1","ecu":1}]},"storage":{"tiers":[{"price_per_gb":"$1"}]},"transfer":{"egress":{"tiers":[{"price_per_gb":"$1"}]}}}`, "no name"},
		{"bad ingress", `{"name":"x","compute":{"instances":[{"name":"a","price_per_hour":"$1","ecu":1}]},"storage":{"tiers":[{"price_per_gb":"$1"}]},"transfer":{"ingress_per_gb":"NaN","egress":{"tiers":[{"price_per_gb":"$1"}]}}}`, "ingress"},
	}
	for _, c := range cases {
		_, err := UnmarshalProvider([]byte(c.src))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	if _, err := MarshalProvider(Provider{}); err == nil {
		t.Error("invalid provider marshalled")
	}
}

func TestSaveLoadProviderFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "aws.json")
	if err := SaveProviderFile(AWS2012(), path); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProviderFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "aws-2012" {
		t.Errorf("loaded name = %q", p.Name)
	}
	if _, err := LoadProviderFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}
