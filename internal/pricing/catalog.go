package pricing

import (
	"fmt"
	"sort"
	"sync"

	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

// AWS2012 returns the provider fixture reproducing the paper's Tables 2
// (EC2 compute), 3 (bandwidth) and 4 (S3 storage) exactly.
func AWS2012() Provider {
	return Provider{
		Name: "aws-2012",
		Compute: ComputeTariff{
			Granularity: units.BillPerHour,
			Instances: map[string]InstanceType{
				"micro": {
					Name:         "micro",
					PricePerHour: money.MustParse("$0.03"),
					RAM:          613 * units.MB,
					ECU:          0.25,
					LocalStorage: 0,
				},
				"small": {
					Name:         "small",
					PricePerHour: money.MustParse("$0.12"),
					RAM:          units.FromGB(1.7),
					ECU:          1,
					LocalStorage: 160 * units.GB,
				},
				"large": {
					Name:         "large",
					PricePerHour: money.MustParse("$0.48"),
					RAM:          units.FromGB(7.5),
					ECU:          4,
					LocalStorage: 850 * units.GB,
				},
				"xlarge": {
					Name:         "xlarge",
					PricePerHour: money.MustParse("$0.96"),
					RAM:          15 * units.GB,
					ECU:          8,
					LocalStorage: 1690 * units.GB,
				},
			},
		},
		// Table 4: first 1 TB $0.14/GB/month, next 49 TB $0.125, next 450 TB
		// $0.11. Slab mode matches Formula 5's cs(DS)·s(DS) and Example 3.
		Storage: StorageTariff{
			Table: TierTable{
				Mode: Slab,
				Tiers: []Tier{
					{UpTo: 1 * units.TB, PricePerGB: money.MustParse("$0.14")},
					{UpTo: 50 * units.TB, PricePerGB: money.MustParse("$0.125")},
					{UpTo: 500 * units.TB, PricePerGB: money.MustParse("$0.11")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.095")},
				},
			},
		},
		// Table 3: input free; output first GB free, up to 10 TB $0.12/GB,
		// next 40 TB $0.09, next 100 TB $0.07. Graduated mode matches
		// Example 1's (10−1)×0.12.
		Transfer: TransferTariff{
			IngressFree: true,
			Egress: TierTable{
				Mode: Graduated,
				Tiers: []Tier{
					{UpTo: 1 * units.GB, PricePerGB: 0},
					{UpTo: 10 * units.TB, PricePerGB: money.MustParse("$0.12")},
					{UpTo: 50 * units.TB, PricePerGB: money.MustParse("$0.09")},
					{UpTo: 150 * units.TB, PricePerGB: money.MustParse("$0.07")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.05")},
				},
			},
		},
	}
}

// StratusCloud returns a synthetic alternative provider with cheaper storage
// but pricier compute and per-minute billing — used by the multi-CSP
// comparison the paper lists as future work (§8).
func StratusCloud() Provider {
	return Provider{
		Name: "stratus",
		Compute: ComputeTariff{
			Granularity: units.BillPerMinute,
			Instances: map[string]InstanceType{
				"micro": {Name: "micro", PricePerHour: money.MustParse("$0.04"), RAM: units.GB, ECU: 0.3},
				"small": {Name: "small", PricePerHour: money.MustParse("$0.15"), RAM: 2 * units.GB, ECU: 1.1, LocalStorage: 100 * units.GB},
				"large": {Name: "large", PricePerHour: money.MustParse("$0.55"), RAM: 8 * units.GB, ECU: 4.4, LocalStorage: 500 * units.GB},
			},
		},
		Storage: StorageTariff{
			Table: TierTable{
				Mode: Slab,
				Tiers: []Tier{
					{UpTo: 5 * units.TB, PricePerGB: money.MustParse("$0.10")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.08")},
				},
			},
		},
		Transfer: TransferTariff{
			IngressFree: true,
			Egress: TierTable{
				Mode: Graduated,
				Tiers: []Tier{
					{UpTo: 5 * units.GB, PricePerGB: 0},
					{UpTo: 0, PricePerGB: money.MustParse("$0.15")},
				},
			},
		},
	}
}

// NimbusCompute returns a synthetic compute-optimised provider: cheap
// per-second-billed instances, expensive storage and egress.
func NimbusCompute() Provider {
	return Provider{
		Name: "nimbus",
		Compute: ComputeTariff{
			Granularity: units.BillPerSecond,
			Instances: map[string]InstanceType{
				"small":  {Name: "small", PricePerHour: money.MustParse("$0.09"), RAM: 2 * units.GB, ECU: 1.2, LocalStorage: 80 * units.GB},
				"large":  {Name: "large", PricePerHour: money.MustParse("$0.36"), RAM: 8 * units.GB, ECU: 4.8, LocalStorage: 400 * units.GB},
				"xlarge": {Name: "xlarge", PricePerHour: money.MustParse("$0.72"), RAM: 16 * units.GB, ECU: 9.6, LocalStorage: 800 * units.GB},
			},
		},
		Storage: StorageTariff{
			Table: TierTable{
				Mode: Slab,
				Tiers: []Tier{
					{UpTo: 1 * units.TB, PricePerGB: money.MustParse("$0.18")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.16")},
				},
			},
		},
		Transfer: TransferTariff{
			IngressFree:  false,
			IngressPerGB: money.MustParse("$0.01"),
			Egress: TierTable{
				Mode: Graduated,
				Tiers: []Tier{
					{UpTo: 0, PricePerGB: money.MustParse("$0.18")},
				},
			},
		},
	}
}

// CumulusStore returns a synthetic storage-centric provider ("cumulus")
// whose storage table is GRADUATED — each bracket charged marginally,
// unlike the slab storage of every other fixture — so cross-provider
// comparisons exercise both storage semantics.
func CumulusStore() Provider {
	return Provider{
		Name: "cumulus",
		Compute: ComputeTariff{
			Granularity: units.BillPerMinute,
			Instances: map[string]InstanceType{
				"micro":  {Name: "micro", PricePerHour: money.MustParse("$0.035"), RAM: units.GB, ECU: 0.28},
				"small":  {Name: "small", PricePerHour: money.MustParse("$0.11"), RAM: 2 * units.GB, ECU: 0.95, LocalStorage: 120 * units.GB},
				"large":  {Name: "large", PricePerHour: money.MustParse("$0.43"), RAM: 8 * units.GB, ECU: 3.9, LocalStorage: 600 * units.GB},
				"xlarge": {Name: "xlarge", PricePerHour: money.MustParse("$0.84"), RAM: 16 * units.GB, ECU: 7.8, LocalStorage: 1200 * units.GB},
			},
		},
		Storage: StorageTariff{
			Table: TierTable{
				Mode: Graduated,
				Tiers: []Tier{
					{UpTo: 512 * units.GB, PricePerGB: money.MustParse("$0.16")},
					{UpTo: 10 * units.TB, PricePerGB: money.MustParse("$0.12")},
					{UpTo: 100 * units.TB, PricePerGB: money.MustParse("$0.09")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.07")},
				},
			},
		},
		Transfer: TransferTariff{
			IngressFree: true,
			Egress: TierTable{
				Mode: Graduated,
				Tiers: []Tier{
					{UpTo: 10 * units.GB, PricePerGB: 0},
					{UpTo: 20 * units.TB, PricePerGB: money.MustParse("$0.10")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.06")},
				},
			},
		},
	}
}

// MeridianGrid returns a synthetic provider ("meridian") with per-minute
// billing, the catalog's cheapest slab storage, paid ingress and — unique
// among the fixtures — SLAB egress: the whole monthly egress volume is
// charged at the rate of the bracket it lands in.
func MeridianGrid() Provider {
	return Provider{
		Name: "meridian",
		Compute: ComputeTariff{
			Granularity: units.BillPerMinute,
			Instances: map[string]InstanceType{
				"small":  {Name: "small", PricePerHour: money.MustParse("$0.14"), RAM: units.FromGB(1.5), ECU: 1.0, LocalStorage: 120 * units.GB},
				"large":  {Name: "large", PricePerHour: money.MustParse("$0.50"), RAM: 6 * units.GB, ECU: 4.2, LocalStorage: 640 * units.GB},
				"xlarge": {Name: "xlarge", PricePerHour: money.MustParse("$1.00"), RAM: 12 * units.GB, ECU: 8.4, LocalStorage: 1280 * units.GB},
			},
		},
		Storage: StorageTariff{
			Table: TierTable{
				Mode: Slab,
				Tiers: []Tier{
					{UpTo: 2 * units.TB, PricePerGB: money.MustParse("$0.09")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.075")},
				},
			},
		},
		Transfer: TransferTariff{
			IngressFree:  false,
			IngressPerGB: money.MustParse("$0.005"),
			Egress: TierTable{
				Mode: Slab,
				Tiers: []Tier{
					{UpTo: 1 * units.TB, PricePerGB: money.MustParse("$0.13")},
					{UpTo: 20 * units.TB, PricePerGB: money.MustParse("$0.10")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.08")},
				},
			},
		},
	}
}

// builtins is the immutable, built-once catalog state; the exported
// accessors hand out clones so callers can never corrupt the fixtures.
type builtins struct {
	providers map[string]Provider
	names     []string // sorted
}

var loadBuiltins = sync.OnceValue(func() builtins {
	ps := []Provider{AWS2012(), StratusCloud(), NimbusCompute(), CumulusStore(), MeridianGrid()}
	b := builtins{providers: make(map[string]Provider, len(ps))}
	for _, p := range ps {
		b.providers[p.Name] = p
		b.names = append(b.names, p.Name)
	}
	sort.Strings(b.names)
	return b
})

// Catalog returns all built-in providers keyed by name. The fixtures are
// constructed once per process; each call returns fresh deep copies, so
// callers may mutate the result freely.
func Catalog() map[string]Provider {
	b := loadBuiltins()
	out := make(map[string]Provider, len(b.providers))
	for n, p := range b.providers {
		out[n] = p.Clone()
	}
	return out
}

// ProviderNames returns the sorted names of the built-in catalog.
func ProviderNames() []string {
	return append([]string(nil), loadBuiltins().names...)
}

// Lookup returns a deep copy of a built-in provider by name.
func Lookup(name string) (Provider, error) {
	p, ok := loadBuiltins().providers[name]
	if !ok {
		return Provider{}, fmt.Errorf("pricing: unknown provider %q (have %v)", name, ProviderNames())
	}
	return p.Clone(), nil
}

// Exists reports whether a built-in provider of that name exists — the
// allocation-free validation companion to Lookup.
func Exists(name string) bool {
	_, ok := loadBuiltins().providers[name]
	return ok
}
