package pricing

import (
	"fmt"
	"sort"

	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

// AWS2012 returns the provider fixture reproducing the paper's Tables 2
// (EC2 compute), 3 (bandwidth) and 4 (S3 storage) exactly.
func AWS2012() Provider {
	return Provider{
		Name: "aws-2012",
		Compute: ComputeTariff{
			Granularity: units.BillPerHour,
			Instances: map[string]InstanceType{
				"micro": {
					Name:         "micro",
					PricePerHour: money.MustParse("$0.03"),
					RAM:          613 * units.MB,
					ECU:          0.25,
					LocalStorage: 0,
				},
				"small": {
					Name:         "small",
					PricePerHour: money.MustParse("$0.12"),
					RAM:          units.FromGB(1.7),
					ECU:          1,
					LocalStorage: 160 * units.GB,
				},
				"large": {
					Name:         "large",
					PricePerHour: money.MustParse("$0.48"),
					RAM:          units.FromGB(7.5),
					ECU:          4,
					LocalStorage: 850 * units.GB,
				},
				"xlarge": {
					Name:         "xlarge",
					PricePerHour: money.MustParse("$0.96"),
					RAM:          15 * units.GB,
					ECU:          8,
					LocalStorage: 1690 * units.GB,
				},
			},
		},
		// Table 4: first 1 TB $0.14/GB/month, next 49 TB $0.125, next 450 TB
		// $0.11. Slab mode matches Formula 5's cs(DS)·s(DS) and Example 3.
		Storage: StorageTariff{
			Table: TierTable{
				Mode: Slab,
				Tiers: []Tier{
					{UpTo: 1 * units.TB, PricePerGB: money.MustParse("$0.14")},
					{UpTo: 50 * units.TB, PricePerGB: money.MustParse("$0.125")},
					{UpTo: 500 * units.TB, PricePerGB: money.MustParse("$0.11")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.095")},
				},
			},
		},
		// Table 3: input free; output first GB free, up to 10 TB $0.12/GB,
		// next 40 TB $0.09, next 100 TB $0.07. Graduated mode matches
		// Example 1's (10−1)×0.12.
		Transfer: TransferTariff{
			IngressFree: true,
			Egress: TierTable{
				Mode: Graduated,
				Tiers: []Tier{
					{UpTo: 1 * units.GB, PricePerGB: 0},
					{UpTo: 10 * units.TB, PricePerGB: money.MustParse("$0.12")},
					{UpTo: 50 * units.TB, PricePerGB: money.MustParse("$0.09")},
					{UpTo: 150 * units.TB, PricePerGB: money.MustParse("$0.07")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.05")},
				},
			},
		},
	}
}

// StratusCloud returns a synthetic alternative provider with cheaper storage
// but pricier compute and per-minute billing — used by the multi-CSP
// comparison the paper lists as future work (§8).
func StratusCloud() Provider {
	return Provider{
		Name: "stratus",
		Compute: ComputeTariff{
			Granularity: units.BillPerMinute,
			Instances: map[string]InstanceType{
				"micro": {Name: "micro", PricePerHour: money.MustParse("$0.04"), RAM: units.GB, ECU: 0.3},
				"small": {Name: "small", PricePerHour: money.MustParse("$0.15"), RAM: 2 * units.GB, ECU: 1.1, LocalStorage: 100 * units.GB},
				"large": {Name: "large", PricePerHour: money.MustParse("$0.55"), RAM: 8 * units.GB, ECU: 4.4, LocalStorage: 500 * units.GB},
			},
		},
		Storage: StorageTariff{
			Table: TierTable{
				Mode: Slab,
				Tiers: []Tier{
					{UpTo: 5 * units.TB, PricePerGB: money.MustParse("$0.10")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.08")},
				},
			},
		},
		Transfer: TransferTariff{
			IngressFree: true,
			Egress: TierTable{
				Mode: Graduated,
				Tiers: []Tier{
					{UpTo: 5 * units.GB, PricePerGB: 0},
					{UpTo: 0, PricePerGB: money.MustParse("$0.15")},
				},
			},
		},
	}
}

// NimbusCompute returns a synthetic compute-optimised provider: cheap
// per-second-billed instances, expensive storage and egress.
func NimbusCompute() Provider {
	return Provider{
		Name: "nimbus",
		Compute: ComputeTariff{
			Granularity: units.BillPerSecond,
			Instances: map[string]InstanceType{
				"small":  {Name: "small", PricePerHour: money.MustParse("$0.09"), RAM: 2 * units.GB, ECU: 1.2, LocalStorage: 80 * units.GB},
				"large":  {Name: "large", PricePerHour: money.MustParse("$0.36"), RAM: 8 * units.GB, ECU: 4.8, LocalStorage: 400 * units.GB},
				"xlarge": {Name: "xlarge", PricePerHour: money.MustParse("$0.72"), RAM: 16 * units.GB, ECU: 9.6, LocalStorage: 800 * units.GB},
			},
		},
		Storage: StorageTariff{
			Table: TierTable{
				Mode: Slab,
				Tiers: []Tier{
					{UpTo: 1 * units.TB, PricePerGB: money.MustParse("$0.18")},
					{UpTo: 0, PricePerGB: money.MustParse("$0.16")},
				},
			},
		},
		Transfer: TransferTariff{
			IngressFree:  false,
			IngressPerGB: money.MustParse("$0.01"),
			Egress: TierTable{
				Mode: Graduated,
				Tiers: []Tier{
					{UpTo: 0, PricePerGB: money.MustParse("$0.18")},
				},
			},
		},
	}
}

// Catalog returns all built-in providers keyed by name.
func Catalog() map[string]Provider {
	ps := []Provider{AWS2012(), StratusCloud(), NimbusCompute()}
	out := make(map[string]Provider, len(ps))
	for _, p := range ps {
		out[p.Name] = p
	}
	return out
}

// ProviderNames returns the sorted names of the built-in catalog.
func ProviderNames() []string {
	c := Catalog()
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns a built-in provider by name.
func Lookup(name string) (Provider, error) {
	p, ok := Catalog()[name]
	if !ok {
		return Provider{}, fmt.Errorf("pricing: unknown provider %q (have %v)", name, ProviderNames())
	}
	return p, nil
}
