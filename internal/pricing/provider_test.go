package pricing

import (
	"testing"
	"time"

	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

// Table 2 prices, verbatim.
func TestAWS2012ComputePrices(t *testing.T) {
	aws := AWS2012()
	want := map[string]string{
		"micro":  "$0.03",
		"small":  "$0.12",
		"large":  "$0.48",
		"xlarge": "$0.96",
	}
	for name, price := range want {
		it, err := aws.Compute.Instance(name)
		if err != nil {
			t.Fatalf("Instance(%q): %v", name, err)
		}
		if it.PricePerHour != money.MustParse(price) {
			t.Errorf("%s price = %v, want %s", name, it.PricePerHour, price)
		}
	}
	if _, err := aws.Compute.Instance("mega"); err == nil {
		t.Error("unknown instance accepted")
	}
}

// Paper Example 2: one small instance for 50 h costs RoundUp(50)·$0.12 = $6;
// two instances cost $12 (computed by the caller as 2×HourCost).
func TestHourCostExample2(t *testing.T) {
	aws := AWS2012()
	small, _ := aws.Compute.Instance("small")
	got := aws.Compute.HourCost(small, 50*time.Hour)
	if want := money.FromDollars(6); got != want {
		t.Errorf("HourCost(small, 50h) = %v, want %v", got, want)
	}
	// Every started hour is charged.
	got = aws.Compute.HourCost(small, 50*time.Hour+time.Minute)
	if want := money.FromDollars(0.12).MulInt(51); got != want {
		t.Errorf("HourCost(small, 50h01m) = %v, want %v", got, want)
	}
}

func TestStorageTariffCostFor(t *testing.T) {
	aws := AWS2012()
	// Example 9: 550 GB for 12 months at $0.14 = $924.
	got := aws.Storage.CostFor(550*units.GB, 12)
	if want := money.FromDollars(924); got != want {
		t.Errorf("CostFor(550GB, 12mo) = %v, want %v", got, want)
	}
	if aws.Storage.CostFor(550*units.GB, 0) != 0 {
		t.Error("zero months should cost zero")
	}
	if aws.Storage.CostFor(550*units.GB, -3) != 0 {
		t.Error("negative months should cost zero")
	}
}

func TestTransferTariff(t *testing.T) {
	aws := AWS2012()
	if aws.Transfer.IngressCost(500*units.GB) != 0 {
		t.Error("AWS ingress should be free")
	}
	if got, want := aws.Transfer.EgressCost(10*units.GB), money.FromDollars(1.08); got != want {
		t.Errorf("EgressCost(10GB) = %v, want %v", got, want)
	}
	nimbus := NimbusCompute()
	if got, want := nimbus.Transfer.IngressCost(100*units.GB), money.FromDollars(1); got != want {
		t.Errorf("nimbus ingress(100GB) = %v, want %v", got, want)
	}
	if nimbus.Transfer.IngressCost(-units.GB) != 0 {
		t.Error("negative ingress should cost zero")
	}
}

func TestCatalogValidates(t *testing.T) {
	for name, p := range Catalog() {
		if err := p.Validate(); err != nil {
			t.Errorf("provider %s invalid: %v", name, err)
		}
	}
}

func TestLookup(t *testing.T) {
	p, err := Lookup("aws-2012")
	if err != nil || p.Name != "aws-2012" {
		t.Errorf("Lookup(aws-2012) = %v, %v", p.Name, err)
	}
	if _, err := Lookup("nonexistent"); err == nil {
		t.Error("unknown provider accepted")
	}
	names := ProviderNames()
	if len(names) != 5 {
		t.Errorf("ProviderNames = %v, want 5 entries", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("ProviderNames not sorted: %v", names)
		}
	}
}

// The catalog is built once and handed out as deep copies: mutating a
// looked-up provider must not leak into later lookups.
func TestCatalogReturnsIsolatedCopies(t *testing.T) {
	p1, err := Lookup("aws-2012")
	if err != nil {
		t.Fatal(err)
	}
	small := p1.Compute.Instances["small"]
	small.PricePerHour = money.MustParse("$99.99")
	p1.Compute.Instances["small"] = small
	p1.Storage.Table.Tiers[0].PricePerGB = money.MustParse("$99.99")
	p1.Transfer.Egress.Tiers[0].PricePerGB = money.MustParse("$99.99")

	p2, err := Lookup("aws-2012")
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Compute.Instances["small"].PricePerHour; got != money.MustParse("$0.12") {
		t.Errorf("instance mutation leaked into the catalog: %v", got)
	}
	if got := p2.Storage.Table.Tiers[0].PricePerGB; got != money.MustParse("$0.14") {
		t.Errorf("storage tier mutation leaked into the catalog: %v", got)
	}
	if got := p2.Transfer.Egress.Tiers[0].PricePerGB; got != 0 {
		t.Errorf("egress tier mutation leaked into the catalog: %v", got)
	}

	c := Catalog()
	delete(c, "aws-2012")
	if _, err := Lookup("aws-2012"); err != nil {
		t.Errorf("deleting from a Catalog() copy broke Lookup: %v", err)
	}
}

// The new fixtures exercise tariff shapes the original three do not:
// cumulus prices storage marginally (graduated), meridian prices egress
// as a slab and charges ingress.
func TestNewFixtureTierShapes(t *testing.T) {
	cu := CumulusStore()
	if cu.Storage.Table.Mode != Graduated {
		t.Fatalf("cumulus storage mode = %v, want graduated", cu.Storage.Table.Mode)
	}
	// 1 TB graduated: 512 GB at $0.16 + 512 GB at $0.12 = $143.36, where a
	// slab table would bill the whole volume at a single rate.
	got := cu.Storage.MonthlyCost(units.TB)
	if want := money.FromDollars(0.16).MulInt(512).Add(money.FromDollars(0.12).MulInt(512)); got != want {
		t.Errorf("cumulus 1TB storage = %v, want %v", got, want)
	}

	me := MeridianGrid()
	if me.Transfer.Egress.Mode != Slab {
		t.Fatalf("meridian egress mode = %v, want slab", me.Transfer.Egress.Mode)
	}
	// Slab egress: 2 TB lands in the 20 TB bracket, all 2048 GB at $0.10.
	got = me.Transfer.EgressCost(2 * units.TB)
	if want := money.FromDollars(0.10).MulInt(2048); got != want {
		t.Errorf("meridian 2TB egress = %v, want %v", got, want)
	}
	if got := me.Transfer.IngressCost(100 * units.GB); got != money.FromDollars(0.5) {
		t.Errorf("meridian ingress(100GB) = %v, want $0.50", got)
	}
	if me.Compute.Granularity != units.BillPerMinute {
		t.Errorf("meridian granularity = %v, want per-minute", me.Compute.Granularity)
	}
}

// The catalog accessors must not rebuild fixtures per call; this pins the
// cheap-copy path (run with -bench to quantify the win over the previous
// rebuild-everything implementation).
func BenchmarkLookup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lookup("aws-2012"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCatalog(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := Catalog(); len(c) == 0 {
			b.Fatal("empty catalog")
		}
	}
}

func BenchmarkProviderNames(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if n := ProviderNames(); len(n) == 0 {
			b.Fatal("no names")
		}
	}
}

func TestProviderValidateRejectsBadConfigs(t *testing.T) {
	good := AWS2012()

	p := good
	p.Name = ""
	if err := p.Validate(); err == nil {
		t.Error("unnamed provider accepted")
	}

	p = AWS2012()
	p.Compute.Instances = nil
	if err := p.Validate(); err == nil {
		t.Error("provider without instances accepted")
	}

	p = AWS2012()
	p.Compute.Instances = map[string]InstanceType{
		"small": {Name: "mismatch", PricePerHour: money.Dollar, ECU: 1},
	}
	if err := p.Validate(); err == nil {
		t.Error("mismatched instance key accepted")
	}

	p = AWS2012()
	p.Compute.Instances = map[string]InstanceType{
		"small": {Name: "small", PricePerHour: -money.Dollar, ECU: 1},
	}
	if err := p.Validate(); err == nil {
		t.Error("negative instance price accepted")
	}

	p = AWS2012()
	p.Compute.Instances = map[string]InstanceType{
		"small": {Name: "small", PricePerHour: money.Dollar, ECU: 0},
	}
	if err := p.Validate(); err == nil {
		t.Error("zero-ECU instance accepted")
	}

	p = AWS2012()
	p.Storage.Table.Tiers = nil
	if err := p.Validate(); err == nil {
		t.Error("empty storage table accepted")
	}

	p = AWS2012()
	p.Transfer.Egress.Tiers = []Tier{{UpTo: 0, PricePerGB: 1}, {UpTo: units.GB, PricePerGB: 1}}
	if err := p.Validate(); err == nil {
		t.Error("bad egress table accepted")
	}
}

func TestInstanceNamesSorted(t *testing.T) {
	names := AWS2012().Compute.InstanceNames()
	want := []string{"large", "micro", "small", "xlarge"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("got %v, want %v", names, want)
		}
	}
}

func TestGranularitiesDiffer(t *testing.T) {
	// Stratus bills per minute: 90 minutes cost 1.5 h.
	st := StratusCloud()
	small, _ := st.Compute.Instance("small")
	got := st.Compute.HourCost(small, 90*time.Minute)
	if want := money.FromDollars(0.15).MulFloat(1.5); got != want {
		t.Errorf("stratus 90m = %v, want %v", got, want)
	}
	// Nimbus bills per second.
	nb := NimbusCompute()
	nsmall, _ := nb.Compute.Instance("small")
	got = nb.Compute.HourCost(nsmall, 30*time.Minute)
	if want := money.FromDollars(0.09).MulFloat(0.5); got != want {
		t.Errorf("nimbus 30m = %v, want %v", got, want)
	}
}
