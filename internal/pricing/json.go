package pricing

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

// The JSON wire format uses human-readable figures ("$0.12", "1TB") so
// operators can author tariff files by hand; see testdata examples in the
// package tests.

type providerJSON struct {
	Name     string        `json:"name"`
	Compute  computeJSON   `json:"compute"`
	Storage  tierTableJSON `json:"storage"`
	Transfer transferJSON  `json:"transfer"`
}

type computeJSON struct {
	// Granularity is "per-hour", "per-minute", "per-second" or "exact".
	Granularity string         `json:"granularity"`
	Instances   []instanceJSON `json:"instances"`
}

type instanceJSON struct {
	Name         string  `json:"name"`
	PricePerHour string  `json:"price_per_hour"`
	RAM          string  `json:"ram,omitempty"`
	ECU          float64 `json:"ecu"`
	LocalStorage string  `json:"local_storage,omitempty"`
}

type tierTableJSON struct {
	// Mode is "slab" or "graduated".
	Mode  string     `json:"mode"`
	Tiers []tierJSON `json:"tiers"`
}

type tierJSON struct {
	// UpTo is a size like "1TB"; empty means unbounded (last tier).
	UpTo       string `json:"up_to,omitempty"`
	PricePerGB string `json:"price_per_gb"`
}

type transferJSON struct {
	IngressFree  bool          `json:"ingress_free"`
	IngressPerGB string        `json:"ingress_per_gb,omitempty"`
	Egress       tierTableJSON `json:"egress"`
}

// MarshalProvider renders a provider as indented JSON.
func MarshalProvider(p Provider) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pj := providerJSON{Name: p.Name}
	pj.Compute.Granularity = p.Compute.Granularity.String()
	for _, name := range p.Compute.InstanceNames() {
		it := p.Compute.Instances[name]
		ij := instanceJSON{Name: it.Name, PricePerHour: it.PricePerHour.String(), ECU: it.ECU}
		if it.RAM != 0 {
			ij.RAM = it.RAM.String()
		}
		if it.LocalStorage != 0 {
			ij.LocalStorage = it.LocalStorage.String()
		}
		pj.Compute.Instances = append(pj.Compute.Instances, ij)
	}
	pj.Storage = tierTableToJSON(p.Storage.Table)
	pj.Transfer.IngressFree = p.Transfer.IngressFree
	if p.Transfer.IngressPerGB != 0 {
		pj.Transfer.IngressPerGB = p.Transfer.IngressPerGB.String()
	}
	pj.Transfer.Egress = tierTableToJSON(p.Transfer.Egress)
	return json.MarshalIndent(pj, "", "  ")
}

func tierTableToJSON(t TierTable) tierTableJSON {
	tj := tierTableJSON{Mode: t.Mode.String()}
	for _, tier := range t.Tiers {
		j := tierJSON{PricePerGB: tier.PricePerGB.String()}
		if tier.UpTo != 0 {
			j.UpTo = tier.UpTo.String()
		}
		tj.Tiers = append(tj.Tiers, j)
	}
	return tj
}

// UnmarshalProvider parses a provider from JSON and validates it.
func UnmarshalProvider(data []byte) (Provider, error) {
	var pj providerJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return Provider{}, fmt.Errorf("pricing: parse provider: %w", err)
	}
	p := Provider{Name: pj.Name}
	g, err := parseGranularity(pj.Compute.Granularity)
	if err != nil {
		return Provider{}, err
	}
	p.Compute.Granularity = g
	p.Compute.Instances = make(map[string]InstanceType, len(pj.Compute.Instances))
	for _, ij := range pj.Compute.Instances {
		it := InstanceType{Name: ij.Name, ECU: ij.ECU}
		if it.PricePerHour, err = money.Parse(ij.PricePerHour); err != nil {
			return Provider{}, fmt.Errorf("pricing: instance %s: %w", ij.Name, err)
		}
		if ij.RAM != "" {
			if it.RAM, err = units.ParseDataSize(ij.RAM); err != nil {
				return Provider{}, fmt.Errorf("pricing: instance %s: %w", ij.Name, err)
			}
		}
		if ij.LocalStorage != "" {
			if it.LocalStorage, err = units.ParseDataSize(ij.LocalStorage); err != nil {
				return Provider{}, fmt.Errorf("pricing: instance %s: %w", ij.Name, err)
			}
		}
		p.Compute.Instances[ij.Name] = it
	}
	if p.Storage.Table, err = tierTableFromJSON(pj.Storage); err != nil {
		return Provider{}, fmt.Errorf("pricing: storage: %w", err)
	}
	p.Transfer.IngressFree = pj.Transfer.IngressFree
	if pj.Transfer.IngressPerGB != "" {
		if p.Transfer.IngressPerGB, err = money.Parse(pj.Transfer.IngressPerGB); err != nil {
			return Provider{}, fmt.Errorf("pricing: ingress: %w", err)
		}
	}
	if p.Transfer.Egress, err = tierTableFromJSON(pj.Transfer.Egress); err != nil {
		return Provider{}, fmt.Errorf("pricing: egress: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Provider{}, err
	}
	return p, nil
}

func tierTableFromJSON(tj tierTableJSON) (TierTable, error) {
	var mode TierMode
	switch tj.Mode {
	case "slab":
		mode = Slab
	case "graduated", "":
		mode = Graduated
	default:
		return TierTable{}, fmt.Errorf("unknown tier mode %q", tj.Mode)
	}
	t := TierTable{Mode: mode}
	for _, j := range tj.Tiers {
		tier := Tier{}
		var err error
		if j.UpTo != "" {
			if tier.UpTo, err = units.ParseDataSize(j.UpTo); err != nil {
				return TierTable{}, err
			}
		}
		if tier.PricePerGB, err = money.Parse(j.PricePerGB); err != nil {
			return TierTable{}, err
		}
		t.Tiers = append(t.Tiers, tier)
	}
	return t, nil
}

func parseGranularity(s string) (units.BillingGranularity, error) {
	switch s {
	case "per-hour", "":
		return units.BillPerHour, nil
	case "per-minute":
		return units.BillPerMinute, nil
	case "per-second":
		return units.BillPerSecond, nil
	case "exact":
		return units.BillExact, nil
	default:
		return 0, fmt.Errorf("pricing: unknown billing granularity %q", s)
	}
}

// SaveProviderFile writes a provider to a JSON file.
func SaveProviderFile(p Provider, path string) error {
	data, err := MarshalProvider(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadProviderFile reads a provider from a JSON file.
func LoadProviderFile(path string) (Provider, error) {
	f, err := os.Open(path)
	if err != nil {
		return Provider{}, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return Provider{}, err
	}
	return UnmarshalProvider(data)
}
