// Package pricing models cloud service provider tariffs: per-instance-hour
// compute prices, volume-tiered storage rates, and volume-tiered data
// transfer rates, as billed by 2012-era AWS (the paper's Tables 2, 3, 4).
//
// Two tier-evaluation semantics coexist in the paper and are both provided:
//
//   - Graduated (marginal) pricing charges each bracket's rate only on the
//     volume falling inside that bracket. The paper's bandwidth Example 1
//     uses it: the first GB is free and the next 9 GB cost $0.12 each.
//   - Slab (bracket-of-total) pricing picks a single rate from the bracket
//     the *total* volume falls into and applies it to the whole volume.
//     The paper's storage Formula 5 — cs(DS)·s(DS) — and its Example 3 use
//     it: 2.5 TB is charged entirely at the second-tier rate.
package pricing

import (
	"fmt"

	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

// TierMode selects how a TierTable converts a volume into a charge.
type TierMode int

const (
	// Graduated charges each bracket marginally (bandwidth semantics).
	Graduated TierMode = iota
	// Slab charges the whole volume at the rate of the bracket that the
	// total volume falls into (the paper's storage semantics).
	Slab
)

// String implements fmt.Stringer.
func (m TierMode) String() string {
	switch m {
	case Graduated:
		return "graduated"
	case Slab:
		return "slab"
	default:
		return fmt.Sprintf("TierMode(%d)", int(m))
	}
}

// Tier is one pricing bracket: volumes up to UpTo (cumulative) are priced at
// PricePerGB. The final tier of a table uses UpTo == 0 meaning "unbounded".
type Tier struct {
	// UpTo is the inclusive cumulative upper bound of the bracket;
	// zero means unbounded (must be the last tier).
	UpTo units.DataSize
	// PricePerGB is the rate applied to volume in this bracket.
	PricePerGB money.Money
}

// TierTable is an ordered list of pricing brackets with an evaluation mode.
type TierTable struct {
	Mode  TierMode
	Tiers []Tier
}

// Validate checks structural invariants: at least one tier, strictly
// increasing bounds, unbounded tier only in last position, no negative
// prices.
func (t TierTable) Validate() error {
	if len(t.Tiers) == 0 {
		return fmt.Errorf("pricing: tier table has no tiers")
	}
	var prev units.DataSize
	for i, tier := range t.Tiers {
		if tier.PricePerGB < 0 {
			return fmt.Errorf("pricing: tier %d has negative price %v", i, tier.PricePerGB)
		}
		last := i == len(t.Tiers)-1
		if tier.UpTo == 0 {
			if !last {
				return fmt.Errorf("pricing: unbounded tier %d is not last", i)
			}
			continue
		}
		if tier.UpTo <= prev {
			return fmt.Errorf("pricing: tier %d bound %v not above previous bound %v", i, tier.UpTo, prev)
		}
		prev = tier.UpTo
	}
	return nil
}

// Cost returns the charge for the given volume under the table's mode.
// Volumes larger than the last bounded tier are charged at the last tier's
// rate (matching the "..." rows of the paper's tables). Non-positive volumes
// cost nothing.
func (t TierTable) Cost(size units.DataSize) money.Money {
	if size <= 0 || len(t.Tiers) == 0 {
		return 0
	}
	switch t.Mode {
	case Slab:
		return t.RateFor(size).MulFloat(size.GBs())
	default:
		return t.graduatedCost(size)
	}
}

// RateFor returns the single per-GB rate of the bracket the total volume
// falls into (slab semantics — the paper's cs(DS) function).
func (t TierTable) RateFor(size units.DataSize) money.Money {
	if len(t.Tiers) == 0 {
		return 0
	}
	for _, tier := range t.Tiers {
		if tier.UpTo == 0 || size <= tier.UpTo {
			return tier.PricePerGB
		}
	}
	return t.Tiers[len(t.Tiers)-1].PricePerGB
}

func (t TierTable) graduatedCost(size units.DataSize) money.Money {
	var total money.Money
	var prev units.DataSize
	remaining := size
	for _, tier := range t.Tiers {
		var width units.DataSize
		if tier.UpTo == 0 {
			width = remaining
		} else {
			width = tier.UpTo - prev
			if width > remaining {
				width = remaining
			}
			prev = tier.UpTo
		}
		if width > 0 {
			total = total.Add(tier.PricePerGB.MulFloat(width.GBs()))
			remaining -= width
		}
		if remaining <= 0 {
			return total
		}
	}
	// Volume beyond the last bounded tier: charge at the last rate.
	if remaining > 0 {
		last := t.Tiers[len(t.Tiers)-1]
		total = total.Add(last.PricePerGB.MulFloat(remaining.GBs()))
	}
	return total
}

// Flat builds a single-tier table charging rate per GB for any volume.
func Flat(mode TierMode, ratePerGB money.Money) TierTable {
	return TierTable{Mode: mode, Tiers: []Tier{{UpTo: 0, PricePerGB: ratePerGB}}}
}
