package pricing

import (
	"testing"
	"testing/quick"

	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

func awsStorage() TierTable { return AWS2012().Storage.Table }
func awsEgress() TierTable  { return AWS2012().Transfer.Egress }

// Paper Example 1: 10 GB egress with the first GB free costs (10−1)·$0.12 = $1.08.
func TestGraduatedEgressExample1(t *testing.T) {
	got := awsEgress().Cost(10 * units.GB)
	if want := money.FromDollars(1.08); got != want {
		t.Errorf("egress(10GB) = %v, want %v", got, want)
	}
}

func TestGraduatedEgressBoundaries(t *testing.T) {
	eg := awsEgress()
	cases := []struct {
		size units.DataSize
		want money.Money
	}{
		{0, 0},
		{-units.GB, 0},
		{units.GB, 0}, // entirely in the free bracket
		{2 * units.GB, money.FromDollars(0.12)},
		{10 * units.TB, money.FromDollars(0.12).MulFloat(10*1024 - 1)},
		// 1 GB free + (10T−1G)@0.12 + 1T@0.09
		{11 * units.TB, money.FromDollars(0.12).MulFloat(10*1024 - 1).Add(money.FromDollars(0.09).MulFloat(1024))},
	}
	for _, c := range cases {
		if got := eg.Cost(c.size); got != c.want {
			t.Errorf("egress(%v) = %v, want %v", c.size, got, c.want)
		}
	}
}

// Paper Example 9 charges 550 GB at the first-tier rate $0.14.
func TestSlabStorageFirstTier(t *testing.T) {
	st := awsStorage()
	got := st.Cost(550 * units.GB)
	if want := money.FromDollars(0.14).MulFloat(550); got != want {
		t.Errorf("storage(550GB) = %v, want %v", got, want)
	}
}

// Paper Example 3 charges 2560 GB (2.5 TB) entirely at the second-tier rate
// $0.125 — slab semantics.
func TestSlabStorageSecondTier(t *testing.T) {
	st := awsStorage()
	got := st.Cost(2560 * units.GB)
	if want := money.FromDollars(0.125).MulFloat(2560); got != want {
		t.Errorf("storage(2560GB) = %v, want %v", got, want)
	}
}

func TestSlabRateFor(t *testing.T) {
	st := awsStorage()
	cases := []struct {
		size units.DataSize
		want money.Money
	}{
		{units.GB, money.FromDollars(0.14)},
		{units.TB, money.FromDollars(0.14)}, // boundary inclusive
		{units.TB + 1, money.FromDollars(0.125)},
		{50 * units.TB, money.FromDollars(0.125)},
		{100 * units.TB, money.FromDollars(0.11)},
		{900 * units.TB, money.FromDollars(0.095)}, // unbounded tail
	}
	for _, c := range cases {
		if got := st.RateFor(c.size); got != c.want {
			t.Errorf("RateFor(%v) = %v, want %v", c.size, got, c.want)
		}
	}
}

func TestGraduatedBeyondLastBoundedTier(t *testing.T) {
	tt := TierTable{Mode: Graduated, Tiers: []Tier{
		{UpTo: 10 * units.GB, PricePerGB: money.FromDollars(1)},
	}}
	// 15 GB: 10 @ $1 + 5 charged at the last (only) rate.
	if got, want := tt.Cost(15*units.GB), money.FromDollars(15); got != want {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

func TestFlat(t *testing.T) {
	tt := Flat(Graduated, money.FromDollars(0.5))
	if got := tt.Cost(4 * units.GB); got != money.FromDollars(2) {
		t.Errorf("flat cost = %v, want $2", got)
	}
	if err := tt.Validate(); err != nil {
		t.Errorf("flat table invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []TierTable{
		{},
		{Tiers: []Tier{{UpTo: 0, PricePerGB: 1}, {UpTo: units.GB, PricePerGB: 1}}},            // unbounded not last
		{Tiers: []Tier{{UpTo: 2 * units.GB, PricePerGB: 1}, {UpTo: units.GB, PricePerGB: 1}}}, // decreasing
		{Tiers: []Tier{{UpTo: units.GB, PricePerGB: -1}}},                                     // negative price
		{Tiers: []Tier{{UpTo: units.GB, PricePerGB: 1}, {UpTo: units.GB, PricePerGB: 1}}},     // equal bounds
	}
	for i, tt := range bad {
		if err := tt.Validate(); err == nil {
			t.Errorf("case %d: invalid table accepted", i)
		}
	}
	if err := awsStorage().Validate(); err != nil {
		t.Errorf("AWS storage table rejected: %v", err)
	}
	if err := awsEgress().Validate(); err != nil {
		t.Errorf("AWS egress table rejected: %v", err)
	}
}

// Property: graduated cost is monotone non-decreasing in volume.
func TestGraduatedMonotone(t *testing.T) {
	eg := awsEgress()
	f := func(a, b uint32) bool {
		x := units.DataSize(a) * units.MB
		y := units.DataSize(b) * units.MB
		if x > y {
			x, y = y, x
		}
		return eg.Cost(x) <= eg.Cost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: graduated never charges more than the top-rate flat price and,
// with a free first bracket, never more than rate×size in any case.
func TestGraduatedBounded(t *testing.T) {
	eg := awsEgress()
	top := money.FromDollars(0.12)
	f := func(a uint32) bool {
		size := units.DataSize(a) * units.MB
		return eg.Cost(size) <= top.MulFloat(size.GBs()).Add(money.Cent)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: slab cost equals rate(size)·size exactly.
func TestSlabDefinition(t *testing.T) {
	st := awsStorage()
	f := func(a uint32) bool {
		size := units.DataSize(a) * units.MB
		return st.Cost(size) == st.RateFor(size).MulFloat(size.GBs())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTierModeString(t *testing.T) {
	if Graduated.String() != "graduated" || Slab.String() != "slab" {
		t.Error("TierMode.String wrong")
	}
	if TierMode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}
