package costmodel

import (
	"fmt"
	"strings"

	"vmcloud/internal/money"
)

// LineItem is one row of an itemized invoice.
type LineItem struct {
	// Section groups items ("Compute", "Storage", "Transfer").
	Section string
	// Description explains the charge.
	Description string
	// Amount is the charge.
	Amount money.Money
}

// Invoice is an itemized rendering of a Bill, in the style of a cloud
// provider's monthly statement.
type Invoice struct {
	Items []LineItem
	// GrandTotal is the bill total (Formula 1).
	GrandTotal money.Money
}

// Itemize decomposes a bill into invoice line items using the plan's
// parameters for the descriptions. Zero-amount items are omitted.
func Itemize(p Plan, b Bill) Invoice {
	var inv Invoice
	add := func(section, desc string, amount money.Money) {
		if amount == 0 {
			return
		}
		inv.Items = append(inv.Items, LineItem{Section: section, Description: desc, Amount: amount})
	}
	nb := 0
	instance := "instance"
	if p.Cluster != nil {
		nb = p.Cluster.NbInstances
		instance = p.Cluster.Instance.Name
	}
	add("Compute", fmt.Sprintf("query processing: %.2f h/month × %d×%s × %.2g month(s)",
		p.MonthlyProcessing.Hours(), nb, instance, p.Months), b.Compute.Processing)
	add("Compute", fmt.Sprintf("view maintenance: %.2f h/month × %d×%s × %.2g month(s)",
		p.MonthlyMaintenance.Hours(), nb, instance, p.Months), b.Compute.Maintenance)
	add("Compute", fmt.Sprintf("view materialization (one-off): %.2f h × %d×%s",
		p.Materialization.Hours(), nb, instance), b.Compute.Materialization)
	add("Storage", fmt.Sprintf("data at rest: %v dataset + %v views × %.2g month(s)",
		p.DatasetSize, p.ViewsSize, p.Months), b.Storage)
	add("Transfer", fmt.Sprintf("query-result egress: %v/month × %.2g month(s)",
		p.MonthlyEgress, p.Months), b.Transfer)
	inv.GrandTotal = b.Total()
	return inv
}

// String renders the invoice as aligned text.
func (inv Invoice) String() string {
	var sb strings.Builder
	width := 0
	for _, it := range inv.Items {
		if n := len(it.Section) + 2 + len(it.Description); n > width {
			width = n
		}
	}
	for _, it := range inv.Items {
		label := it.Section + ": " + it.Description
		fmt.Fprintf(&sb, "%-*s  %12s\n", width, label, it.Amount)
	}
	fmt.Fprintf(&sb, "%-*s  %12s\n", width, "TOTAL", inv.GrandTotal)
	return sb.String()
}
