package costmodel

import (
	"strings"
	"testing"
	"time"

	"vmcloud/internal/money"
	"vmcloud/internal/units"
)

func TestItemizeRunningExample(t *testing.T) {
	p := Plan{
		Cluster:           awsTwoSmalls(t),
		Months:            1,
		DatasetSize:       500 * units.GB,
		MonthlyProcessing: 50 * time.Hour,
		MonthlyEgress:     10 * units.GB,
	}
	p = p.WithViews(50*units.GB, 40*time.Hour, 5*time.Hour, 1*time.Hour)
	b, err := p.Bill()
	if err != nil {
		t.Fatal(err)
	}
	inv := Itemize(p, b)
	if inv.GrandTotal != b.Total() {
		t.Errorf("grand total %v != bill total %v", inv.GrandTotal, b.Total())
	}
	// All five line items present (processing, maintenance,
	// materialization, storage, transfer).
	if len(inv.Items) != 5 {
		t.Fatalf("items = %d, want 5:\n%s", len(inv.Items), inv)
	}
	// Line items sum to the grand total.
	var sum money.Money
	for _, it := range inv.Items {
		sum = sum.Add(it.Amount)
	}
	if sum != inv.GrandTotal {
		t.Errorf("items sum %v != total %v", sum, inv.GrandTotal)
	}
	out := inv.String()
	for _, frag := range []string{"query processing", "view maintenance", "materialization", "data at rest", "egress", "TOTAL", "$9.60", "$1.20", "$0.24", "$77.00", "$1.08"} {
		if !strings.Contains(out, frag) {
			t.Errorf("invoice missing %q:\n%s", frag, out)
		}
	}
}

func TestItemizeOmitsZeroLines(t *testing.T) {
	p := Plan{
		Cluster:     awsTwoSmalls(t),
		Months:      1,
		DatasetSize: 100 * units.GB,
	}
	b, err := p.Bill()
	if err != nil {
		t.Fatal(err)
	}
	inv := Itemize(p, b)
	if len(inv.Items) != 1 {
		t.Fatalf("items = %d, want only storage:\n%s", len(inv.Items), inv)
	}
	if inv.Items[0].Section != "Storage" {
		t.Errorf("remaining item = %+v", inv.Items[0])
	}
}

func TestItemizeNilCluster(t *testing.T) {
	// Itemize must not panic on a plan without a cluster (e.g. when called
	// on hand-built bills).
	inv := Itemize(Plan{MonthlyProcessing: time.Hour}, Bill{
		Compute: Breakdown{Processing: money.Dollar},
	})
	if len(inv.Items) != 1 || inv.GrandTotal != money.Dollar {
		t.Errorf("invoice = %+v", inv)
	}
}
