package costmodel

import (
	"strings"
	"testing"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/simtime"
	"vmcloud/internal/units"
)

func awsTwoSmalls(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(pricing.AWS2012(), "small", 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Paper Example 1: Ct = (10−1) GB × $0.12 = $1.08.
func TestTransferCostExample1(t *testing.T) {
	got := TransferCost(pricing.AWS2012(), 10*units.GB)
	if want := money.FromDollars(1.08); got != want {
		t.Errorf("Ct = %v, want %v", got, want)
	}
}

// Paper Example 3: 512 GB for 7 months at $0.14 plus 2560 GB for 5 months
// at $0.125 = $2101.76. (The paper prints $2131.76 — an arithmetic typo;
// its own formula and numbers give 501.76 + 1600 = 2101.76.)
func TestStorageCostExample3(t *testing.T) {
	tl := simtime.Timeline{
		Initial: 512 * units.GB,
		Horizon: 12,
		Events:  []simtime.Event{{At: 7, Delta: 2048 * units.GB}},
	}
	got, err := StorageCost(pricing.AWS2012(), tl)
	if err != nil {
		t.Fatal(err)
	}
	if want := money.FromDollars(2101.76); got != want {
		t.Errorf("Cs = %v, want %v", got, want)
	}
}

// Paper Example 9: (500+50) GB × 12 months × $0.14 = $924.
func TestStorageCostExample9(t *testing.T) {
	tl := simtime.Timeline{Initial: 550 * units.GB, Horizon: 12}
	got, err := StorageCost(pricing.AWS2012(), tl)
	if err != nil {
		t.Fatal(err)
	}
	if want := money.FromDollars(924); got != want {
		t.Errorf("Cs = %v, want %v", got, want)
	}
}

func TestStorageCostPropagatesTimelineErrors(t *testing.T) {
	tl := simtime.Timeline{Initial: -units.GB, Horizon: 1}
	if _, err := StorageCost(pricing.AWS2012(), tl); err == nil {
		t.Error("bad timeline accepted")
	}
}

// The running example without views: Example 2 (Cc = $12), a year of
// storage, one 10 GB result per month.
func TestPlanBillWithoutViews(t *testing.T) {
	p := Plan{
		Cluster:           awsTwoSmalls(t),
		Months:            1,
		DatasetSize:       500 * units.GB,
		MonthlyProcessing: 50 * time.Hour,
		MonthlyEgress:     10 * units.GB,
	}
	b, err := p.Bill()
	if err != nil {
		t.Fatal(err)
	}
	if b.Compute.Processing != money.FromDollars(12) {
		t.Errorf("CprocessingQ = %v, want $12", b.Compute.Processing)
	}
	if b.Compute.Maintenance != 0 || b.Compute.Materialization != 0 {
		t.Errorf("view costs nonzero without views: %+v", b.Compute)
	}
	if b.Storage != money.FromDollars(70) { // 500 × 0.14
		t.Errorf("Cs = %v, want $70", b.Storage)
	}
	if b.Transfer != money.FromDollars(1.08) {
		t.Errorf("Ct = %v, want $1.08", b.Transfer)
	}
	if b.Total() != money.FromDollars(83.08) {
		t.Errorf("C = %v, want $83.08", b.Total())
	}
}

// The running example with views: Examples 4 (mat $0.24), 6 (proc $9.6),
// 8 (maint $1.2), 9-style storage at one month.
func TestPlanBillWithViews(t *testing.T) {
	base := Plan{
		Cluster:           awsTwoSmalls(t),
		Months:            1,
		DatasetSize:       500 * units.GB,
		MonthlyProcessing: 50 * time.Hour,
		MonthlyEgress:     10 * units.GB,
	}
	p := base.WithViews(50*units.GB, 40*time.Hour, 5*time.Hour, 1*time.Hour)
	b, err := p.Bill()
	if err != nil {
		t.Fatal(err)
	}
	if b.Compute.Processing != money.FromDollars(9.6) {
		t.Errorf("CprocessingQ = %v, want $9.60", b.Compute.Processing)
	}
	if b.Compute.Maintenance != money.FromDollars(1.2) {
		t.Errorf("CmaintenanceV = %v, want $1.20", b.Compute.Maintenance)
	}
	if b.Compute.Materialization != money.FromDollars(0.24) {
		t.Errorf("CmaterializationV = %v, want $0.24", b.Compute.Materialization)
	}
	if got, want := b.Compute.Total(), money.FromDollars(11.04); got != want {
		t.Errorf("Cc = %v, want %v (Formula 6)", got, want)
	}
	if b.Storage != money.FromDollars(77) { // 550 × 0.14
		t.Errorf("Cs = %v, want $77", b.Storage)
	}
	// Formula 1.
	want := money.Sum(b.Compute.Total(), b.Storage, b.Transfer)
	if b.Total() != want {
		t.Errorf("Total = %v, want %v", b.Total(), want)
	}
}

func TestMaterializationBilledOnce(t *testing.T) {
	p := Plan{
		Cluster:         awsTwoSmalls(t),
		Months:          12,
		DatasetSize:     units.GB,
		Materialization: time.Hour,
	}
	b, err := p.Bill()
	if err != nil {
		t.Fatal(err)
	}
	// 1 h × $0.12 × 2 instances, NOT ×12 months.
	if b.Compute.Materialization != money.FromDollars(0.24) {
		t.Errorf("materialization = %v, want $0.24 once", b.Compute.Materialization)
	}
}

func TestMonthlyQuantitiesScaleWithMonths(t *testing.T) {
	p := Plan{
		Cluster:           awsTwoSmalls(t),
		Months:            3,
		DatasetSize:       100 * units.GB,
		MonthlyProcessing: 10 * time.Hour,
		MonthlyEgress:     5 * units.GB,
	}
	b, err := p.Bill()
	if err != nil {
		t.Fatal(err)
	}
	if b.Compute.Processing != money.FromDollars(2.4).MulInt(3) {
		t.Errorf("processing = %v, want 3 × $2.40", b.Compute.Processing)
	}
	if b.Storage != money.FromDollars(0.14).MulFloat(100).MulInt(3) {
		t.Errorf("storage = %v", b.Storage)
	}
	if b.Transfer != money.FromDollars(0.12).MulFloat(4).MulInt(3) {
		t.Errorf("transfer = %v", b.Transfer)
	}
}

func TestPlanWithInserts(t *testing.T) {
	p := Plan{
		Cluster:     awsTwoSmalls(t),
		Months:      12,
		DatasetSize: 512 * units.GB,
		Inserts:     []simtime.Event{{At: 7, Delta: 2048 * units.GB}},
	}
	b, err := p.Bill()
	if err != nil {
		t.Fatal(err)
	}
	if b.Storage != money.FromDollars(2101.76) {
		t.Errorf("storage with inserts = %v, want $2101.76", b.Storage)
	}
}

func TestPlanValidate(t *testing.T) {
	good := Plan{Cluster: awsTwoSmalls(t), Months: 1, DatasetSize: units.GB}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Plan{
		{Months: 1},                         // no cluster
		{Cluster: good.Cluster, Months: -1}, // negative period
		{Cluster: good.Cluster, Months: 1, DatasetSize: -units.GB},
		{Cluster: good.Cluster, Months: 1, MonthlyProcessing: -time.Hour},
		{Cluster: good.Cluster, Months: 1, MonthlyEgress: -units.GB},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid plan accepted", i)
		}
		if _, err := p.Bill(); err == nil {
			t.Errorf("case %d: invalid plan billed", i)
		}
	}
}

func TestZeroMonthsBillsOnlyMaterialization(t *testing.T) {
	p := Plan{
		Cluster:           awsTwoSmalls(t),
		Months:            0,
		DatasetSize:       100 * units.GB,
		MonthlyProcessing: 10 * time.Hour,
		Materialization:   2 * time.Hour,
	}
	b, err := p.Bill()
	if err != nil {
		t.Fatal(err)
	}
	if b.Compute.Processing != 0 || b.Storage != 0 || b.Transfer != 0 {
		t.Errorf("zero-month plan billed recurring costs: %v", b)
	}
	if b.Compute.Materialization != money.FromDollars(0.48) {
		t.Errorf("materialization = %v", b.Compute.Materialization)
	}
}

func TestBillString(t *testing.T) {
	b := Bill{
		Compute:  Breakdown{Processing: money.FromDollars(9.6), Maintenance: money.FromDollars(1.2), Materialization: money.FromDollars(0.24)},
		Storage:  money.FromDollars(77),
		Transfer: money.FromDollars(1.08),
	}
	s := b.String()
	for _, frag := range []string{"$9.60", "$1.20", "$0.24", "$77.00", "$1.08", "$89.12"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Bill.String() = %q missing %q", s, frag)
		}
	}
}
