// Package costmodel implements the paper's cost models verbatim:
//
//   - Formula 1: C = Cc + Cs + Ct
//   - Formulas 2–3: data transfer cost (free ingress, tiered egress)
//   - Formula 4: computing cost of a query workload on rented instances
//   - Formula 5: interval-based tiered storage cost
//   - Formula 6: Cc = CprocessingQ + CmaintenanceV + CmaterializationV
//   - Formulas 7–8: view materialization time and cost
//   - Formulas 9–10: query processing time and cost with views
//   - Formulas 11–12: view maintenance time and cost
//
// The Plan type gathers one configuration's parameters (dataset size, view
// set size, monthly processing/maintenance hours, one-off materialization
// hours, monthly egress, insert events) and prices it into a Bill.
package costmodel

import (
	"fmt"
	"time"

	"vmcloud/internal/cluster"
	"vmcloud/internal/money"
	"vmcloud/internal/pricing"
	"vmcloud/internal/simtime"
	"vmcloud/internal/units"
)

// TransferCost prices one month's query-result egress (Formula 3: the
// tiered rate applies to the monthly transferred volume; inputs are free
// under the paper's Amazon-like model).
func TransferCost(p pricing.Provider, monthlyEgress units.DataSize) money.Money {
	return p.Transfer.EgressCost(monthlyEgress)
}

// StorageCost prices a storage timeline (Formula 5): for each constant-size
// interval, the slab rate cs(DS) of the interval's volume times the volume
// times the interval length in months.
func StorageCost(p pricing.Provider, tl simtime.Timeline) (money.Money, error) {
	// Fast path for the dominant case — no volume-change events, one
	// constant interval [0, Horizon). The evaluation engine re-prices a
	// bill per search move, and slicing a single-interval timeline
	// through Intervals costs sort and slice allocations for nothing.
	// Invalid timelines fall through so error behavior is unchanged.
	if len(tl.Events) == 0 && tl.Horizon >= 0 && tl.Initial >= 0 {
		if tl.Horizon == 0 {
			return 0, nil
		}
		return p.Storage.CostFor(tl.Initial, float64(tl.Horizon)), nil
	}
	ivs, err := tl.Intervals()
	if err != nil {
		return 0, err
	}
	var total money.Money
	for _, iv := range ivs {
		total = total.Add(p.Storage.CostFor(iv.Size, float64(iv.Length())))
	}
	return total, nil
}

// Breakdown decomposes the computing cost per Formula 6.
type Breakdown struct {
	// Processing is CprocessingQ (Formula 10), over the whole period.
	Processing money.Money
	// Maintenance is CmaintenanceV (Formula 12), over the whole period.
	Maintenance money.Money
	// Materialization is CmaterializationV (Formula 8), paid once.
	Materialization money.Money
}

// Total is Formula 6.
func (b Breakdown) Total() money.Money {
	return money.Sum(b.Processing, b.Maintenance, b.Materialization)
}

// Bill is a fully priced configuration.
type Bill struct {
	// Compute is Cc decomposed (Formula 6).
	Compute Breakdown
	// Storage is Cs (Formula 5).
	Storage money.Money
	// Transfer is Ct (Formula 3).
	Transfer money.Money
}

// Total is Formula 1: C = Cc + Cs + Ct.
func (b Bill) Total() money.Money {
	return money.Sum(b.Compute.Total(), b.Storage, b.Transfer)
}

// String renders the bill compactly.
func (b Bill) String() string {
	return fmt.Sprintf("total %v (compute %v [proc %v, maint %v, mat %v], storage %v, transfer %v)",
		b.Total(), b.Compute.Total(), b.Compute.Processing, b.Compute.Maintenance,
		b.Compute.Materialization, b.Storage, b.Transfer)
}

// Plan is one priceable configuration: a cluster, a billing period, data
// volumes and the time components of the paper's formulas.
type Plan struct {
	// Cluster supplies instance pricing and fleet size (c(IC) and nbIC).
	Cluster *cluster.Cluster
	// Months is the billing period ts (≥ 0). Monthly quantities scale by it.
	Months float64
	// DatasetSize is s(DS), the base data at rest.
	DatasetSize units.DataSize
	// ViewsSize is the duplicated data added by materialized views
	// (Section 4.3); stored for the whole period alongside the dataset.
	ViewsSize units.DataSize
	// MonthlyProcessing is TprocessingQ per month (Formula 9).
	MonthlyProcessing time.Duration
	// MonthlyMaintenance is TmaintenanceV per month (Formula 11).
	MonthlyMaintenance time.Duration
	// Materialization is TmaterializationV, spent once at period start
	// (Formula 7).
	Materialization time.Duration
	// MonthlyEgress is Σ s(Ri) per month (Formula 3).
	MonthlyEgress units.DataSize
	// Inserts are volume-change events over the period (Formula 5's
	// intervals); sizes add to DatasetSize+ViewsSize.
	Inserts []simtime.Event
}

// Validate checks the plan's parameters.
func (p Plan) Validate() error {
	if p.Cluster == nil {
		return fmt.Errorf("costmodel: plan has no cluster")
	}
	if p.Months < 0 {
		return fmt.Errorf("costmodel: negative billing period %g", p.Months)
	}
	if p.DatasetSize < 0 || p.ViewsSize < 0 || p.MonthlyEgress < 0 {
		return fmt.Errorf("costmodel: negative data volume in plan")
	}
	if p.MonthlyProcessing < 0 || p.MonthlyMaintenance < 0 || p.Materialization < 0 {
		return fmt.Errorf("costmodel: negative time component in plan")
	}
	return nil
}

// wholeMonths returns the number of monthly billing cycles: fractional
// periods bill the fraction.
func (p Plan) monthsFactor() float64 { return p.Months }

// Bill prices the plan (Formulas 1–12).
func (p Plan) Bill() (Bill, error) {
	if err := p.Validate(); err != nil {
		return Bill{}, err
	}
	var b Bill

	// Compute (Formula 6): each monthly quantity is billed per month at
	// the provider's rounding (Example 2 rounds the monthly total up), the
	// one-off materialization once.
	b.Compute.Processing = p.Cluster.ComputeCost(p.MonthlyProcessing).MulFloat(p.monthsFactor())
	b.Compute.Maintenance = p.Cluster.ComputeCost(p.MonthlyMaintenance).MulFloat(p.monthsFactor())
	b.Compute.Materialization = p.Cluster.ComputeCost(p.Materialization)

	// Storage (Formula 5): dataset + views at rest for the whole period,
	// plus insert events.
	tl := simtime.Timeline{
		Initial: p.DatasetSize + p.ViewsSize,
		Horizon: simtime.Months(p.Months),
		Events:  p.Inserts,
	}
	var err error
	b.Storage, err = StorageCost(p.Cluster.Provider, tl)
	if err != nil {
		return Bill{}, err
	}

	// Transfer (Formula 3): monthly egress priced at the tiered rate, per
	// month.
	b.Transfer = TransferCost(p.Cluster.Provider, p.MonthlyEgress).MulFloat(p.monthsFactor())
	return b, nil
}

// WithViews returns a copy of the plan updated for a selected view set:
// view storage, processing/maintenance/materialization times.
func (p Plan) WithViews(viewsSize units.DataSize, processing, maintenance, materialization time.Duration) Plan {
	q := p
	q.ViewsSize = viewsSize
	q.MonthlyProcessing = processing
	q.MonthlyMaintenance = maintenance
	q.Materialization = materialization
	return q
}
