package lattice

import (
	"reflect"
	"testing"

	"vmcloud/internal/schema"
)

// TestLargeLatticeConstruction stress-tests lattice construction on the
// 4-dimension × 4-level synthetic schema (256 cuboids): node count,
// partial-order sanity, and statistic monotonicity — the invariants the
// search benchmarks lean on.
func TestLargeLatticeConstruction(t *testing.T) {
	s, err := schema.Synthetic(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	const factRows = 1_000_000_000
	l, err := New(s, factRows)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NumNodes(); got != 256 {
		t.Fatalf("NumNodes = %d, want 4^4 = 256", got)
	}

	base, apex := l.Base(), l.Apex()
	baseNode, err := l.Node(base)
	if err != nil {
		t.Fatal(err)
	}
	if baseNode.Rows != factRows {
		t.Errorf("base rows = %d, want the raw fact count %d", baseNode.Rows, factRows)
	}
	apexNode, err := l.Node(apex)
	if err != nil {
		t.Fatal(err)
	}
	if apexNode.Groups != 1 {
		t.Errorf("apex groups = %d, want 1 (grand total)", apexNode.Groups)
	}

	for _, n := range l.Nodes() {
		// The base answers everything; everything answers the apex.
		if !l.CanAnswer(base, n.Point) {
			t.Fatalf("base cannot answer %v", n.Point)
		}
		if !l.CanAnswer(n.Point, apex) {
			t.Fatalf("%v cannot answer the apex", n.Point)
		}
		// Statistics are positive and internally consistent.
		if n.Rows < 1 || n.Groups < 1 || n.Size <= 0 || n.ResultSize <= 0 {
			t.Fatalf("%v has degenerate stats: %+v", n.Point, n)
		}
		if n.Groups > n.Rows {
			t.Fatalf("%v groups %d exceed rows %d", n.Point, n.Groups, n.Rows)
		}
		// Coarsening in any one dimension can only shrink the group count,
		// and the strict order Children/Parents/Ancestors must agree.
		for _, child := range l.Children(n.Point) {
			if child.Groups > n.Groups {
				t.Fatalf("coarser %v has more groups (%d) than %v (%d)",
					child.Point, child.Groups, n.Point, n.Groups)
			}
			if !l.CanAnswer(n.Point, child.Point) {
				t.Fatalf("%v cannot answer its own child %v", n.Point, child.Point)
			}
			if l.CanAnswer(child.Point, n.Point) {
				t.Fatalf("strictly coarser %v claims to answer %v", child.Point, n.Point)
			}
		}
	}

	// Ancestors ∪ Descendants ∪ incomparable ∪ self partitions the
	// lattice: probe a few interior points exhaustively.
	for _, probe := range []Point{{1, 1, 1, 1}, {0, 3, 2, 1}, {2, 0, 0, 3}} {
		anc := l.Ancestors(probe)
		desc := l.Descendants(probe)
		for _, a := range anc {
			for _, d := range desc {
				if a.Point.Equal(d.Point) {
					t.Fatalf("%v is both ancestor and descendant of %v", a.Point, probe)
				}
			}
		}
		comparable := len(anc) + len(desc) + 1
		if comparable > l.NumNodes() {
			t.Fatalf("probe %v: %d comparable nodes in a %d-node lattice", probe, comparable, l.NumNodes())
		}
	}
}

// TestLargeLatticeDeterministic pins construction determinism: two
// builds of the same schema and scale must agree node for node (points,
// order and statistics) — the property candidate generation, memoized
// serving and seeded search all quietly rely on.
func TestLargeLatticeDeterministic(t *testing.T) {
	build := func() *Lattice {
		s, err := schema.Synthetic(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		l, err := New(s, 1_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	a, b := build(), build()
	na, nb := a.Nodes(), b.Nodes()
	if len(na) != len(nb) {
		t.Fatalf("node counts differ: %d vs %d", len(na), len(nb))
	}
	for i := range na {
		if !reflect.DeepEqual(na[i], nb[i]) {
			t.Fatalf("node %d differs across builds: %+v vs %+v", i, na[i], nb[i])
		}
	}
	// Points come out in encoded-id order with the base first and the
	// apex last.
	if !na[0].Point.Equal(a.Base()) || !na[len(na)-1].Point.Equal(a.Apex()) {
		t.Fatalf("node order broken: first %v, last %v", na[0].Point, na[len(na)-1].Point)
	}
}
