// Package lattice models the cuboid lattice induced by a star schema's
// dimension hierarchies: every combination of one level per dimension is a
// potential materialized view, partially ordered by "can be answered from".
//
// For the paper's sales schema (time: day/month/year/ALL × geography:
// department/region/country/ALL) the lattice has 16 nodes; the base cuboid
// (day × department) is the fact table itself and the apex (ALL × ALL) is
// the grand total.
package lattice

import (
	"fmt"
	"math"
	"strings"

	"vmcloud/internal/schema"
	"vmcloud/internal/units"
)

// Point identifies a cuboid: Point[i] is the level index of dimension i
// (0 = finest, NumLevels-1 = ALL).
type Point []int

// Equal reports whether p and q name the same cuboid.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// FinerOrEqual reports whether p is at least as fine as q in every
// dimension — i.e. the cuboid at p can answer any query at q.
func (p Point) FinerOrEqual(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] > q[i] {
			return false
		}
	}
	return true
}

// Node is one cuboid with its estimated statistics.
type Node struct {
	Point Point
	// Rows is the number of rows scanned when this cuboid is the query
	// source: distinct groups for materialized views, the raw fact count
	// for the base cuboid (stored un-aggregated).
	Rows int64
	// Size is the estimated stored size (Rows × row width).
	Size units.DataSize
	// Groups is the number of distinct group keys — the row count of a
	// query RESULT at this cuboid. Equal to Rows except at the base.
	Groups int64
	// ResultSize is the estimated size of a query result at this cuboid
	// (Groups × row width) — the s(Ri) of the transfer cost model.
	ResultSize units.DataSize
}

// Lattice is the full cuboid lattice of a schema at a given fact-table
// row count.
type Lattice struct {
	Schema   *schema.Schema
	FactRows int64
	nodes    []Node // indexed by encoded point id
	radices  []int  // levels per dimension
	// Answerability index (index.go): desc[i] is the bitset of node ids
	// strictly coarser than i, anc[i] of ids strictly finer.
	desc []bitset
	anc  []bitset
}

// New builds the lattice for the schema assuming factRows base rows.
// Cuboid row counts are estimated with Cardenas' formula
// d·(1−(1−1/d)^n) — the expected number of distinct values hit when n rows
// draw uniformly from d possible group keys — capped at both d and n.
func New(s *schema.Schema, factRows int64) (*Lattice, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if factRows <= 0 {
		return nil, fmt.Errorf("lattice: non-positive fact rows %d", factRows)
	}
	l := &Lattice{Schema: s, FactRows: factRows}
	l.radices = make([]int, len(s.Dimensions))
	total := 1
	for i, d := range s.Dimensions {
		l.radices[i] = d.NumLevels()
		total *= d.NumLevels()
	}
	l.nodes = make([]Node, total)
	pt := make(Point, len(s.Dimensions))
	base := true
	for id := 0; id < total; id++ {
		l.decode(id, pt)
		keys := int64(1)
		for i, lv := range pt {
			keys = mulCap(keys, int64(s.Dimensions[i].Levels[lv].Cardinality))
		}
		groups := cardenas(keys, factRows)
		rows := groups
		// The base cuboid is the fact table itself, stored un-aggregated:
		// scanning it touches every fact row, not just distinct keys.
		if base {
			rows = factRows
			base = false
		}
		l.nodes[id] = Node{
			Point:      pt.Clone(),
			Rows:       rows,
			Size:       s.RowBytes.MulInt(rows),
			Groups:     groups,
			ResultSize: s.RowBytes.MulInt(groups),
		}
	}
	l.buildIndex()
	return l, nil
}

func mulCap(a, b int64) int64 {
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// cardenas estimates the distinct group count for n rows over d keys.
func cardenas(d, n int64) int64 {
	if d <= 0 || n <= 0 {
		return 0
	}
	if d == 1 {
		return 1
	}
	df := float64(d)
	// d·(1−(1−1/d)^n), computed in log space for stability.
	est := df * (1 - math.Exp(float64(n)*math.Log1p(-1/df)))
	r := int64(math.Round(est))
	if r < 1 {
		r = 1
	}
	if r > d {
		r = d
	}
	if r > n {
		r = n
	}
	return r
}

// encode maps a point to its dense node id (mixed radix).
func (l *Lattice) encode(p Point) int {
	id := 0
	for i, lv := range p {
		id = id*l.radices[i] + lv
	}
	return id
}

func (l *Lattice) decode(id int, out Point) {
	for i := len(l.radices) - 1; i >= 0; i-- {
		out[i] = id % l.radices[i]
		id /= l.radices[i]
	}
}

// NumNodes returns the number of cuboids in the lattice.
func (l *Lattice) NumNodes() int { return len(l.nodes) }

// Nodes returns all cuboids in encoded-id order (base first, apex last).
func (l *Lattice) Nodes() []Node { return l.nodes }

// Node returns the cuboid at p.
func (l *Lattice) Node(p Point) (Node, error) {
	if err := l.checkPoint(p); err != nil {
		return Node{}, err
	}
	return l.nodes[l.encode(p)], nil
}

func (l *Lattice) checkPoint(p Point) error {
	if len(p) != len(l.radices) {
		return fmt.Errorf("lattice: point %v has %d dims, schema has %d", p, len(p), len(l.radices))
	}
	for i, lv := range p {
		if lv < 0 || lv >= l.radices[i] {
			return fmt.Errorf("lattice: point %v level %d out of range [0,%d)", p, lv, l.radices[i])
		}
	}
	return nil
}

// Base returns the finest cuboid (the fact table grain).
func (l *Lattice) Base() Point { return make(Point, len(l.radices)) }

// Apex returns the coarsest cuboid (ALL in every dimension).
func (l *Lattice) Apex() Point {
	p := make(Point, len(l.radices))
	for i, r := range l.radices {
		p[i] = r - 1
	}
	return p
}

// PointOf builds a Point from per-dimension level names, e.g.
// PointOf("year", "country").
func (l *Lattice) PointOf(levelNames ...string) (Point, error) {
	if len(levelNames) != len(l.Schema.Dimensions) {
		return nil, fmt.Errorf("lattice: want %d level names, got %d", len(l.Schema.Dimensions), len(levelNames))
	}
	p := make(Point, len(levelNames))
	for i, name := range levelNames {
		idx, err := l.Schema.Dimensions[i].LevelIndex(name)
		if err != nil {
			return nil, err
		}
		p[i] = idx
	}
	return p, nil
}

// Name renders a point as "year×country".
func (l *Lattice) Name(p Point) string {
	parts := make([]string, len(p))
	for i, lv := range p {
		parts[i] = l.Schema.Dimensions[i].Levels[lv].Name
	}
	return strings.Join(parts, "×")
}

// CanAnswer reports whether a cuboid materialized at view can answer a
// query at query — i.e. view is finer-or-equal in every dimension.
func (l *Lattice) CanAnswer(view, query Point) bool {
	return view.FinerOrEqual(query)
}

// Ancestors returns all cuboids strictly finer than p (candidates to answer
// p besides p itself), base first. With the precomputed index this is a
// bit scan over anc[id], not an N-point partial-order sweep.
func (l *Lattice) Ancestors(p Point) []Node {
	id, err := l.ID(p)
	if err != nil || l.anc == nil {
		return l.relatedSlow(p, func(n Node) bool {
			return n.Point.FinerOrEqual(p) && !n.Point.Equal(p)
		})
	}
	return l.nodesAt(l.anc[id])
}

// Descendants returns all cuboids strictly coarser than p (queries p can
// answer besides itself).
func (l *Lattice) Descendants(p Point) []Node {
	id, err := l.ID(p)
	if err != nil || l.desc == nil {
		return l.relatedSlow(p, func(n Node) bool {
			return p.FinerOrEqual(n.Point) && !n.Point.Equal(p)
		})
	}
	return l.nodesAt(l.desc[id])
}

// nodesAt materializes the nodes of a bitset in ascending id order.
func (l *Lattice) nodesAt(b bitset) []Node {
	var out []Node
	for _, id := range b.appendIDs(nil) {
		out = append(out, l.nodes[id])
	}
	return out
}

// relatedSlow is the pre-index fallback for points that do not validate
// against the lattice (wrong arity or out-of-range levels): such points
// historically matched by pairwise comparison, never by id.
func (l *Lattice) relatedSlow(p Point, keep func(Node) bool) []Node {
	var out []Node
	for _, n := range l.nodes {
		if keep(n) {
			out = append(out, n)
		}
	}
	return out
}

// Children returns the direct coarser neighbours of p (one level up in
// exactly one dimension).
func (l *Lattice) Children(p Point) []Node {
	var out []Node
	for i := range p {
		if p[i]+1 < l.radices[i] {
			q := p.Clone()
			q[i]++
			out = append(out, l.nodes[l.encode(q)])
		}
	}
	return out
}

// Parents returns the direct finer neighbours of p (one level down in
// exactly one dimension).
func (l *Lattice) Parents(p Point) []Node {
	var out []Node
	for i := range p {
		if p[i] > 0 {
			q := p.Clone()
			q[i]--
			out = append(out, l.nodes[l.encode(q)])
		}
	}
	return out
}

// CheapestAnswering returns, among the given materialized points plus the
// base cuboid, the one with the fewest rows that can answer the query.
// It reflects the paper's processing model: a query runs against its
// smallest answering view, or the base table when none applies.
func (l *Lattice) CheapestAnswering(materialized []Point, query Point) (Point, Node) {
	qid, err := l.ID(query)
	if err != nil {
		return l.cheapestAnsweringSlow(materialized, query)
	}
	best := l.Base()
	bestNode := l.nodes[0] // base encodes to id 0
	for _, v := range materialized {
		vid, err := l.ID(v)
		if err != nil || !l.CanAnswerID(vid, qid) {
			continue
		}
		if n := l.nodes[vid]; n.Rows < bestNode.Rows {
			best, bestNode = v, n
		}
	}
	return best, bestNode
}

// cheapestAnsweringSlow preserves the pre-index behavior for queries
// that do not validate: answerability falls back to the pairwise
// partial-order test.
func (l *Lattice) cheapestAnsweringSlow(materialized []Point, query Point) (Point, Node) {
	best := l.Base()
	bestNode := l.nodes[l.encode(best)]
	for _, v := range materialized {
		if !l.CanAnswer(v, query) {
			continue
		}
		n := l.nodes[l.encode(v)]
		if n.Rows < bestNode.Rows {
			best, bestNode = v, n
		}
	}
	return best, bestNode
}
