package lattice

import (
	"testing"
	"testing/quick"

	"vmcloud/internal/schema"
)

func mustLattice(t *testing.T, rows int64) *Lattice {
	t.Helper()
	l, err := New(schema.Sales(), rows)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewSales(t *testing.T) {
	l := mustLattice(t, 1_000_000)
	if l.NumNodes() != 16 {
		t.Fatalf("NumNodes = %d, want 16", l.NumNodes())
	}
	base, err := l.Node(l.Base())
	if err != nil {
		t.Fatal(err)
	}
	if base.Rows > 1_000_000 {
		t.Errorf("base rows %d exceed fact rows", base.Rows)
	}
	apex, err := l.Node(l.Apex())
	if err != nil {
		t.Fatal(err)
	}
	if apex.Rows != 1 {
		t.Errorf("apex rows = %d, want 1", apex.Rows)
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(schema.Sales(), 0); err == nil {
		t.Error("zero rows accepted")
	}
	bad := schema.Sales()
	bad.Measures = nil
	if _, err := New(bad, 100); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestPointOfAndName(t *testing.T) {
	l := mustLattice(t, 1000)
	p, err := l.PointOf("year", "country")
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 2 || p[1] != 2 {
		t.Errorf("PointOf(year,country) = %v", p)
	}
	if got := l.Name(p); got != "year×country" {
		t.Errorf("Name = %q", got)
	}
	if _, err := l.PointOf("year"); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := l.PointOf("decade", "country"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestFinerOrEqual(t *testing.T) {
	l := mustLattice(t, 1000)
	dayDept := l.Base()
	yearCountry, _ := l.PointOf("year", "country")
	monthCountry, _ := l.PointOf("month", "country")
	yearRegion, _ := l.PointOf("year", "region")

	if !dayDept.FinerOrEqual(yearCountry) {
		t.Error("base should answer everything")
	}
	if !monthCountry.FinerOrEqual(yearCountry) {
		t.Error("month×country should answer year×country")
	}
	if monthCountry.FinerOrEqual(yearRegion) {
		t.Error("month×country cannot answer year×region (region finer than country)")
	}
	if !yearCountry.FinerOrEqual(yearCountry) {
		t.Error("reflexivity violated")
	}
	if (Point{0}).FinerOrEqual(Point{0, 0}) {
		t.Error("dimension mismatch should be false")
	}
}

func TestCanAnswerMatchesFinerOrEqual(t *testing.T) {
	l := mustLattice(t, 1000)
	for _, a := range l.Nodes() {
		for _, b := range l.Nodes() {
			if l.CanAnswer(a.Point, b.Point) != a.Point.FinerOrEqual(b.Point) {
				t.Fatalf("CanAnswer(%v,%v) inconsistent", a.Point, b.Point)
			}
		}
	}
}

// Partial-order axioms over the whole 16-node lattice.
func TestPartialOrderAxioms(t *testing.T) {
	l := mustLattice(t, 1000)
	nodes := l.Nodes()
	for _, a := range nodes {
		if !a.Point.FinerOrEqual(a.Point) {
			t.Fatalf("not reflexive at %v", a.Point)
		}
		for _, b := range nodes {
			if a.Point.FinerOrEqual(b.Point) && b.Point.FinerOrEqual(a.Point) && !a.Point.Equal(b.Point) {
				t.Fatalf("not antisymmetric at %v,%v", a.Point, b.Point)
			}
			for _, c := range nodes {
				if a.Point.FinerOrEqual(b.Point) && b.Point.FinerOrEqual(c.Point) && !a.Point.FinerOrEqual(c.Point) {
					t.Fatalf("not transitive at %v,%v,%v", a.Point, b.Point, c.Point)
				}
			}
		}
	}
}

func TestRowMonotonicity(t *testing.T) {
	// A finer cuboid never has fewer rows than a coarser one it answers.
	l := mustLattice(t, 5_000_000)
	for _, a := range l.Nodes() {
		for _, b := range l.Nodes() {
			if a.Point.FinerOrEqual(b.Point) && a.Rows < b.Rows {
				t.Errorf("finer %v has %d rows < coarser %v with %d",
					l.Name(a.Point), a.Rows, l.Name(b.Point), b.Rows)
			}
		}
	}
}

func TestAncestorsDescendants(t *testing.T) {
	l := mustLattice(t, 1000)
	yearCountry, _ := l.PointOf("year", "country")
	anc := l.Ancestors(yearCountry)
	// Finer-or-equal points: time ∈ {day,month,year} × geo ∈ {dept,region,country}
	// = 9, minus the point itself = 8.
	if len(anc) != 8 {
		t.Errorf("ancestors = %d, want 8", len(anc))
	}
	desc := l.Descendants(yearCountry)
	// Coarser: time ∈ {year,all} × geo ∈ {country,all} = 4, minus itself = 3.
	if len(desc) != 3 {
		t.Errorf("descendants = %d, want 3", len(desc))
	}
	if len(l.Ancestors(l.Base())) != 0 {
		t.Error("base has ancestors")
	}
	if len(l.Descendants(l.Apex())) != 0 {
		t.Error("apex has descendants")
	}
}

func TestParentsChildren(t *testing.T) {
	l := mustLattice(t, 1000)
	if got := len(l.Children(l.Base())); got != 2 {
		t.Errorf("base children = %d, want 2", got)
	}
	if got := len(l.Parents(l.Base())); got != 0 {
		t.Errorf("base parents = %d, want 0", got)
	}
	if got := len(l.Parents(l.Apex())); got != 2 {
		t.Errorf("apex parents = %d, want 2", got)
	}
	if got := len(l.Children(l.Apex())); got != 0 {
		t.Errorf("apex children = %d, want 0", got)
	}
}

func TestCheapestAnswering(t *testing.T) {
	l := mustLattice(t, 10_000_000)
	yearCountry, _ := l.PointOf("year", "country")
	monthCountry, _ := l.PointOf("month", "country")
	dayRegion, _ := l.PointOf("day", "region")

	// No materialized views: falls back to base.
	p, n := l.CheapestAnswering(nil, yearCountry)
	if !p.Equal(l.Base()) {
		t.Errorf("fallback = %v, want base", p)
	}
	if n.Rows <= 0 {
		t.Error("node rows not populated")
	}

	// month×country answers year×country and is far smaller than base.
	p, n = l.CheapestAnswering([]Point{monthCountry, dayRegion}, yearCountry)
	if !p.Equal(monthCountry) {
		t.Errorf("cheapest = %v, want month×country", l.Name(p))
	}
	mc, _ := l.Node(monthCountry)
	if n.Rows != mc.Rows {
		t.Errorf("rows = %d, want %d", n.Rows, mc.Rows)
	}

	// A view that cannot answer is ignored: year×department is coarser than
	// month on the time dimension, so it cannot answer month×country.
	yearDept, _ := l.PointOf("year", "department")
	p, _ = l.CheapestAnswering([]Point{yearDept}, monthCountry)
	if !p.Equal(l.Base()) {
		t.Errorf("non-answering view used: %v", l.Name(p))
	}
}

func TestCardenas(t *testing.T) {
	cases := []struct {
		d, n, want int64
	}{
		{10, 0, 0},
		{0, 10, 0},
		{100, 10, 10}, // d ≥ n → n
		{1, 1000, 1},  // single key
	}
	for _, c := range cases {
		if got := cardenas(c.d, c.n); got != c.want {
			t.Errorf("cardenas(%d,%d) = %d, want %d", c.d, c.n, got, c.want)
		}
	}
	// Saturation: many rows over few keys approaches d.
	if got := cardenas(132, 1_000_000); got != 132 {
		t.Errorf("cardenas(132, 1e6) = %d, want 132", got)
	}
	// Sparse: stays within (0, min(d,n)] and below d.
	got := cardenas(1_000_000, 1000)
	if got <= 0 || got > 1000 {
		t.Errorf("cardenas(1e6, 1e3) = %d out of range", got)
	}
}

// Property: Cardenas estimate is monotone in n and bounded by min(d, n).
func TestCardenasProperties(t *testing.T) {
	f := func(d16, n16 uint16) bool {
		d, n := int64(d16)+1, int64(n16)+1
		r := cardenas(d, n)
		if r < 1 || r > d || r > n {
			return false
		}
		return cardenas(d, n+100) >= r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeErrors(t *testing.T) {
	l := mustLattice(t, 1000)
	if _, err := l.Node(Point{0}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := l.Node(Point{99, 0}); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := mustLattice(t, 1000)
	pt := make(Point, 2)
	for id := 0; id < l.NumNodes(); id++ {
		l.decode(id, pt)
		if got := l.encode(pt); got != id {
			t.Fatalf("encode(decode(%d)) = %d", id, got)
		}
	}
}

func TestSizeScalesWithRows(t *testing.T) {
	l := mustLattice(t, 1000)
	for _, n := range l.Nodes() {
		if n.Size != l.Schema.RowBytes.MulInt(n.Rows) {
			t.Errorf("node %v size %v != rows %d × rowbytes", l.Name(n.Point), n.Size, n.Rows)
		}
	}
}
