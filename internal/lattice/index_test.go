package lattice

import (
	"testing"

	"vmcloud/internal/schema"
)

// TestIndexMatchesPartialOrder cross-checks every pair of nodes: the
// precomputed bitset index must agree exactly with the FinerOrEqual
// partial order it replaces.
func TestIndexMatchesPartialOrder(t *testing.T) {
	for _, build := range []func() (*Lattice, error){
		func() (*Lattice, error) { return New(schema.Sales(), 10_000_000) },
		func() (*Lattice, error) {
			s, err := schema.Synthetic(3, 4)
			if err != nil {
				return nil, err
			}
			return New(s, 50_000_000)
		},
	} {
		l, err := build()
		if err != nil {
			t.Fatal(err)
		}
		n := l.NumNodes()
		for i := 0; i < n; i++ {
			pi := l.nodes[i].Point
			for j := 0; j < n; j++ {
				pj := l.nodes[j].Point
				want := pi.FinerOrEqual(pj)
				if got := l.CanAnswerID(i, j); got != want {
					t.Fatalf("%s: CanAnswerID(%v→%v) = %v, partial order says %v", l.Schema.Name, pi, pj, got, want)
				}
			}
		}
	}
}

// TestOverCapLatticeSkipsIndex: lattices beyond MaxIndexNodes must not
// pay the O(N²)-bit index, and every id-based query must keep answering
// correctly through the partial-order fallback.
func TestOverCapLatticeSkipsIndex(t *testing.T) {
	s, err := schema.Synthetic(14, 2) // 2^14 = 16384 nodes > MaxIndexNodes
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(s, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumNodes() <= MaxIndexNodes {
		t.Fatalf("fixture too small: %d nodes", l.NumNodes())
	}
	if l.desc != nil || l.anc != nil {
		t.Fatal("over-cap lattice built the bitset index")
	}
	// Spot-check id answerability and enumeration against the partial
	// order on a deterministic sample.
	ids := []int{0, 1, 77, 4097, l.NumNodes() - 2, l.NumNodes() - 1}
	for _, i := range ids {
		for _, j := range ids {
			want := l.nodes[i].Point.FinerOrEqual(l.nodes[j].Point)
			if got := l.CanAnswerID(i, j); got != want {
				t.Fatalf("CanAnswerID(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	apex := l.NumNodes() - 1
	if got := len(l.AncestorIDs(apex, nil)); got != l.NumNodes()-1 {
		t.Errorf("apex ancestors = %d, want %d", got, l.NumNodes()-1)
	}
	if got := len(l.DescendantIDs(0, nil)); got != l.NumNodes()-1 {
		t.Errorf("base descendants = %d, want %d", got, l.NumNodes()-1)
	}
	if got := len(l.Ancestors(l.Apex())); got != l.NumNodes()-1 {
		t.Errorf("Ancestors(apex) = %d nodes, want %d", got, l.NumNodes()-1)
	}
}

// TestIDRoundTrip: ID must agree with Nodes() order and reject invalid
// points.
func TestIDRoundTrip(t *testing.T) {
	l, err := New(schema.Sales(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range l.Nodes() {
		got, err := l.ID(n.Point)
		if err != nil {
			t.Fatal(err)
		}
		if got != id {
			t.Fatalf("ID(%v) = %d, want %d", n.Point, got, id)
		}
		if !l.NodeByID(id).Point.Equal(n.Point) {
			t.Fatalf("NodeByID(%d) = %v, want %v", id, l.NodeByID(id).Point, n.Point)
		}
	}
	if _, err := l.ID(Point{0}); err == nil {
		t.Error("short point accepted")
	}
	if _, err := l.ID(Point{0, 99}); err == nil {
		t.Error("out-of-range level accepted")
	}
}

// TestAncestorDescendantIDs checks the id enumeration against the
// node-returning API, including order (ascending id, base first).
func TestAncestorDescendantIDs(t *testing.T) {
	l, err := New(schema.Sales(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range l.Nodes() {
		anc := l.AncestorIDs(id, nil)
		wantAnc := l.Ancestors(n.Point)
		if len(anc) != len(wantAnc) {
			t.Fatalf("AncestorIDs(%v): %d ids vs %d nodes", n.Point, len(anc), len(wantAnc))
		}
		for k, aid := range anc {
			if !l.NodeByID(aid).Point.Equal(wantAnc[k].Point) {
				t.Fatalf("AncestorIDs(%v)[%d] = %v, want %v", n.Point, k, l.NodeByID(aid).Point, wantAnc[k].Point)
			}
		}
		desc := l.DescendantIDs(id, nil)
		wantDesc := l.Descendants(n.Point)
		if len(desc) != len(wantDesc) {
			t.Fatalf("DescendantIDs(%v): %d ids vs %d nodes", n.Point, len(desc), len(wantDesc))
		}
		for k, did := range desc {
			if !l.NodeByID(did).Point.Equal(wantDesc[k].Point) {
				t.Fatalf("DescendantIDs(%v)[%d] = %v, want %v", n.Point, k, l.NodeByID(did).Point, wantDesc[k].Point)
			}
		}
	}
}
