package lattice

import "math/bits"

// The answerability index: per-node ancestor/descendant bitsets over
// dense node ids, precomputed once at construction. Answerability tests
// ("can the cuboid at view id v answer a query at id q?") become a
// single word probe, and ancestor/descendant enumeration becomes a bit
// scan — no per-call FinerOrEqual loops or point re-encoding. The
// incremental evaluation engine (internal/optimizer) and the HRU
// candidate generator (internal/views) are built on these ids.

// bitset is a fixed-width set of node ids packed into 64-bit words.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// appendIDs appends the set members in ascending order.
func (b bitset) appendIDs(out []int) []int {
	for w, word := range b {
		base := w << 6
		for word != 0 {
			out = append(out, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return out
}

// MaxIndexNodes caps the answerability index: the bitsets cost
// N²/4 bytes across the lattice (plus the pair walk to fill them), which
// is ~16 MB at 8192 nodes and a memory blow-up well before the schema
// layer's 2²⁰-node cap. Larger lattices skip the index and fall back to
// O(dims) point comparisons — still far cheaper than the pre-index
// per-call encode-and-scan paths.
const MaxIndexNodes = 1 << 13

// buildIndex fills desc/anc: desc[i] holds the ids strictly coarser than
// i (the queries i can answer besides itself), anc[i] the ids strictly
// finer (the cuboids that can answer i besides itself). Enumeration is
// output-sized: for each node only its actual descendants are walked via
// mixed-radix strides, not all N² pairs.
func (l *Lattice) buildIndex() {
	n := len(l.nodes)
	if n > MaxIndexNodes {
		return // desc/anc stay nil; id queries use the partial order
	}
	dims := len(l.radices)
	strides := make([]int, dims)
	s := 1
	for i := dims - 1; i >= 0; i-- {
		strides[i] = s
		s *= l.radices[i]
	}
	l.desc = make([]bitset, n)
	l.anc = make([]bitset, n)
	for id := 0; id < n; id++ {
		l.desc[id] = newBitset(n)
		l.anc[id] = newBitset(n)
	}
	pt := make(Point, dims)
	var rec func(origin, dim, cur int)
	rec = func(origin, dim, cur int) {
		if dim == dims {
			if cur != origin {
				l.desc[origin].set(cur)
				l.anc[cur].set(origin)
			}
			return
		}
		for lv := pt[dim]; lv < l.radices[dim]; lv++ {
			rec(origin, dim+1, cur+(lv-pt[dim])*strides[dim])
		}
	}
	for id := 0; id < n; id++ {
		l.decode(id, pt)
		rec(id, 0, id)
	}
}

// ID returns the dense node id of p (0 = base, NumNodes()-1 = apex),
// validating the point. Ids are stable for the lattice's lifetime and
// index Nodes() directly.
func (l *Lattice) ID(p Point) (int, error) {
	if err := l.checkPoint(p); err != nil {
		return 0, err
	}
	return l.encode(p), nil
}

// NodeByID returns the cuboid at a dense id. It panics on an id outside
// [0, NumNodes()) — ids come from ID or the index itself, so an invalid
// one is a programming error, not an input error.
func (l *Lattice) NodeByID(id int) Node { return l.nodes[id] }

// CanAnswerID reports whether the cuboid at id view can answer a query
// at id query — one word probe against the precomputed index (an
// O(dims) point comparison on lattices too large to index).
func (l *Lattice) CanAnswerID(view, query int) bool {
	if l.desc == nil {
		return l.nodes[view].Point.FinerOrEqual(l.nodes[query].Point)
	}
	return view == query || l.desc[view].has(query)
}

// AncestorIDs appends to out the ids strictly finer than id, ascending
// (base first). Pass a reused slice to avoid allocation.
func (l *Lattice) AncestorIDs(id int, out []int) []int {
	if l.anc == nil {
		return l.relatedIDsSlow(id, out, func(n Node) bool {
			return n.Point.FinerOrEqual(l.nodes[id].Point)
		})
	}
	return l.anc[id].appendIDs(out)
}

// DescendantIDs appends to out the ids strictly coarser than id,
// ascending. Pass a reused slice to avoid allocation.
func (l *Lattice) DescendantIDs(id int, out []int) []int {
	if l.desc == nil {
		p := l.nodes[id].Point
		return l.relatedIDsSlow(id, out, func(n Node) bool {
			return p.FinerOrEqual(n.Point)
		})
	}
	return l.desc[id].appendIDs(out)
}

// relatedIDsSlow enumerates related ids by partial-order comparison for
// unindexed (over-cap) lattices.
func (l *Lattice) relatedIDsSlow(id int, out []int, keep func(Node) bool) []int {
	for j, n := range l.nodes {
		if j != id && keep(n) {
			out = append(out, j)
		}
	}
	return out
}
