package money

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromDollars(t *testing.T) {
	cases := []struct {
		in   float64
		want Money
	}{
		{0, 0},
		{0.12, 120_000},
		{1.08, 1_080_000},
		{-2.5, -2_500_000},
		{0.0000004, 0}, // below micro-dollar resolution rounds to zero
		{0.0000005, 1}, // rounds half away from zero
		{2131.76, 2_131_760_000},
	}
	for _, c := range cases {
		if got := FromDollars(c.in); got != c.want {
			t.Errorf("FromDollars(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Money
		want string
	}{
		{0, "$0.00"},
		{Dollar, "$1.00"},
		{12 * Cent, "$0.12"},
		{FromDollars(1.08), "$1.08"},
		{FromDollars(-2131.76), "-$2131.76"},
		{FromDollars(0.000001), "$0.000001"},
		{FromDollars(9.6), "$9.60"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		want    Money
		wantErr bool
	}{
		{"$1.08", FromDollars(1.08), false},
		{"1.08", FromDollars(1.08), false},
		{"-$0.12", FromDollars(-0.12), false},
		{"$-0.12", FromDollars(-0.12), false},
		{"$.5", FromDollars(0.5), false},
		{"  $2.40 ", FromDollars(2.4), false},
		{"$0.0000004", 0, true}, // 7 fractional digits
		{"", 0, true},
		{"$", 0, true},
		{"abc", 0, true},
		{"$1.2.3", 0, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("Parse(%q) expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q) unexpected error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	f := func(u int32) bool {
		m := Money(u) * 10 // arbitrary amounts, micro precision
		got, err := Parse(m.String())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSaturates(t *testing.T) {
	if got := MaxMoney.Add(Dollar); got != MaxMoney {
		t.Errorf("MaxMoney+$1 = %d, want saturation at MaxMoney", got)
	}
	if got := MinMoney.Add(-Dollar); got != MinMoney {
		t.Errorf("MinMoney-$1 = %d, want saturation at MinMoney", got)
	}
	if got := Dollar.Add(2 * Dollar); got != 3*Dollar {
		t.Errorf("$1+$2 = %v, want $3", got)
	}
}

func TestMulIntSaturates(t *testing.T) {
	if got := MaxMoney.MulInt(2); got != MaxMoney {
		t.Errorf("MaxMoney*2 = %d, want MaxMoney", got)
	}
	if got := MaxMoney.MulInt(-2); got != MinMoney {
		t.Errorf("MaxMoney*-2 = %d, want MinMoney", got)
	}
	if got := FromDollars(0.12).MulInt(50); got != FromDollars(6) {
		t.Errorf("$0.12*50 = %v, want $6", got)
	}
}

func TestMulFloat(t *testing.T) {
	// Storage example from the paper: $0.14/GB * 550 GB = $77.
	if got := FromDollars(0.14).MulFloat(550); got != FromDollars(77) {
		t.Errorf("$0.14*550 = %v, want $77", got)
	}
	// Rounds half away from zero at micro-dollar resolution.
	if got := Money(1).MulFloat(0.5); got != 1 {
		t.Errorf("1u*0.5 = %d, want 1", got)
	}
	if got := Money(-1).MulFloat(0.5); got != -1 {
		t.Errorf("-1u*0.5 = %d, want -1", got)
	}
	if got := MaxMoney.MulFloat(2); got != MaxMoney {
		t.Errorf("MaxMoney*2.0 = %d, want MaxMoney", got)
	}
}

func TestDivInt(t *testing.T) {
	cases := []struct {
		m    Money
		n    int64
		want Money
	}{
		{FromDollars(10), 2, FromDollars(5)},
		{Money(3), 2, Money(2)},   // 1.5 micros rounds away from zero
		{Money(-3), 2, Money(-2)}, // symmetric
		{Money(1), 3, Money(0)},
	}
	for _, c := range cases {
		if got := c.m.DivInt(c.n); got != c.want {
			t.Errorf("(%d).DivInt(%d) = %d, want %d", c.m, c.n, got, c.want)
		}
	}
}

func TestDivIntPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DivInt(0) did not panic")
		}
	}()
	Dollar.DivInt(0)
}

func TestCmpMinMax(t *testing.T) {
	if Dollar.Cmp(Cent) != 1 || Cent.Cmp(Dollar) != -1 || Dollar.Cmp(Dollar) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if Min(Dollar, Cent) != Cent || Max(Dollar, Cent) != Dollar {
		t.Error("Min/Max wrong")
	}
}

func TestSum(t *testing.T) {
	if got := Sum(FromDollars(50), FromDollars(12)); got != FromDollars(62) {
		t.Errorf("Sum = %v, want $62", got)
	}
	if got := Sum(); got != 0 {
		t.Errorf("Sum() = %v, want $0", got)
	}
}

// Property: Add is commutative and associative away from saturation bounds.
func TestAddProperties(t *testing.T) {
	comm := func(a, b int32) bool {
		x, y := Money(a), Money(b)
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	assoc := func(a, b, c int32) bool {
		x, y, z := Money(a), Money(b), Money(c)
		return x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("associativity: %v", err)
	}
}

// Property: Sub is the inverse of Add away from bounds.
func TestSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Money(a), Money(b)
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MulInt distributes over Add away from bounds.
func TestMulIntDistributes(t *testing.T) {
	f := func(a, b int16, n int16) bool {
		x, y, k := Money(a), Money(b), int64(n)
		return x.Add(y).MulInt(k) == x.MulInt(k).Add(y.MulInt(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbsNeg(t *testing.T) {
	if FromDollars(-3).Abs() != FromDollars(3) {
		t.Error("Abs(-3) != 3")
	}
	if FromDollars(3).Neg() != FromDollars(-3) {
		t.Error("Neg(3) != -3")
	}
	if !Money(0).IsZero() || Money(1).IsZero() {
		t.Error("IsZero wrong")
	}
	if !Money(-1).IsNegative() || Money(1).IsNegative() {
		t.Error("IsNegative wrong")
	}
}

func TestDollarsRoundTripSmall(t *testing.T) {
	// Float round-trip is exact for amounts under ~$9e9 at micro resolution.
	f := func(c int32) bool {
		m := Money(c) * Cent
		return FromDollars(m.Dollars()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverflowBoundaries(t *testing.T) {
	if MaxMoney.Dollars() <= 0 || math.IsInf(MaxMoney.Dollars(), 0) {
		t.Error("MaxMoney.Dollars() not finite positive")
	}
	if got := Money(math.MaxInt64).Add(Money(math.MaxInt64)); got != MaxMoney {
		t.Error("double max should saturate")
	}
}
