package money

import (
	"encoding/json"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, m := range []Money{0, Cent, Dollar, MustParse("$1.08"), MustParse("-$2131.76"), Microdollar} {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var got Money
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if got != m {
			t.Errorf("round trip %v → %s → %v", m, b, got)
		}
	}
}

func TestUnmarshalForms(t *testing.T) {
	cases := []struct {
		in   string
		want Money
	}{
		{`"$1.08"`, MustParse("$1.08")},
		{`"1.08"`, MustParse("$1.08")},
		{`25`, 25 * Dollar},
		{`0.12`, MustParse("$0.12")},
		{`-3`, -3 * Dollar},
	}
	for _, c := range cases {
		var got Money
		if err := json.Unmarshal([]byte(c.in), &got); err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{`"not-money"`, `true`, `{"a":1}`, `"$1.2345678"`} {
		var got Money
		if err := json.Unmarshal([]byte(bad), &got); err == nil {
			t.Errorf("%s: accepted as %v", bad, got)
		}
	}
}

func TestJSONInsideStruct(t *testing.T) {
	type bill struct {
		Total Money `json:"total"`
	}
	b, err := json.Marshal(bill{Total: MustParse("$0.12")})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"total":"$0.12"}` {
		t.Errorf("marshal = %s", b)
	}
	var got bill
	if err := json.Unmarshal([]byte(`{"total":25}`), &got); err != nil {
		t.Fatal(err)
	}
	if got.Total != 25*Dollar {
		t.Errorf("total = %v", got.Total)
	}
}
