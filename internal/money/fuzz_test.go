package money

import (
	"strings"
	"testing"
)

// FuzzParse checks that Parse never panics, and that anything it accepts
// round-trips through String within micro-dollar resolution.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"$1.08", "-$2131.76", "0.12", "$", "", "abc", "$1.2.3",
		"$0.000001", "9223372036854", "-", "$-0.5", "  $2.40 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(m.String())
		if err != nil {
			t.Fatalf("Parse(%q)=%v but its rendering %q does not re-parse: %v", s, m, m.String(), err)
		}
		if back != m {
			t.Fatalf("round trip %q → %v → %q → %v", s, m, m.String(), back)
		}
	})
}

// FuzzDataFlow ensures arithmetic on parsed values stays saturating, never
// panicking, for arbitrary inputs.
func FuzzDataFlow(f *testing.F) {
	f.Add("$5.00", "$3.00", int64(7))
	f.Add("-$5.00", "$0.01", int64(-2))
	f.Fuzz(func(t *testing.T, a, b string, n int64) {
		ma, errA := Parse(a)
		mb, errB := Parse(b)
		if errA != nil || errB != nil {
			return
		}
		_ = ma.Add(mb)
		_ = ma.Sub(mb)
		_ = ma.MulInt(n)
		if n != 0 {
			_ = ma.DivInt(n)
		}
		if !strings.HasPrefix(ma.Abs().String(), "-") == ma.Abs().IsNegative() {
			t.Fatal("Abs sign inconsistent")
		}
	})
}
