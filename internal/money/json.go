package money

import (
	"encoding/json"
	"fmt"
)

// Money marshals as its display string ("$1.08") so JSON payloads stay
// human-readable and exact; it unmarshals from either that string form
// (with or without the "$") or a bare JSON number of dollars, so
// hand-written request bodies can say "budget": 25.

// MarshalJSON renders the amount as a quoted dollar string.
func (m Money) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON parses a dollar string ("$1.08", "1.08") or a JSON number
// of dollars.
func (m *Money) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := Parse(s)
		if err != nil {
			return err
		}
		*m = v
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("money: cannot unmarshal %s", data)
	}
	*m = FromDollars(f)
	return nil
}
