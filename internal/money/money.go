// Package money provides exact fixed-point currency arithmetic for cloud
// billing computations.
//
// Cloud tariffs mix very small unit prices (e.g. $0.0000004 per request)
// with large monthly bills; binary floating point accumulates drift that is
// unacceptable when reproducing a provider's invoice to the cent. All
// amounts are therefore stored as signed 64-bit integers in micro-dollars
// (1e-6 USD), which represents every price appearing in the paper's tariff
// tables exactly and supports bills up to ±9.2 trillion dollars.
package money

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Money is a monetary amount in micro-dollars (1e-6 USD).
// The zero value is $0.
type Money int64

// Common amounts.
const (
	Microdollar Money = 1
	Millidollar Money = 1_000
	Cent        Money = 10_000
	Dollar      Money = 1_000_000
)

// MaxMoney and MinMoney bound the representable range.
const (
	MaxMoney Money = math.MaxInt64
	MinMoney Money = math.MinInt64
)

// ErrOverflow is returned (or carried by panics in checked helpers) when an
// arithmetic operation exceeds the representable range.
var ErrOverflow = errors.New("money: arithmetic overflow")

// FromDollars converts a float dollar amount to Money, rounding half away
// from zero to the nearest micro-dollar.
func FromDollars(d float64) Money {
	return Money(math.Round(d * 1e6))
}

// FromCents converts an integer number of cents to Money.
func FromCents(c int64) Money { return Money(c) * Cent }

// FromMicros builds a Money from a raw micro-dollar count.
func FromMicros(u int64) Money { return Money(u) }

// Micros returns the raw micro-dollar count.
func (m Money) Micros() int64 { return int64(m) }

// Dollars returns the amount as a float64 number of dollars.
// Intended for display and plotting only; never feed the result back into
// billing arithmetic.
func (m Money) Dollars() float64 { return float64(m) / 1e6 }

// IsZero reports whether the amount is exactly $0.
func (m Money) IsZero() bool { return m == 0 }

// IsNegative reports whether the amount is below $0.
func (m Money) IsNegative() bool { return m < 0 }

// Neg returns -m.
func (m Money) Neg() Money { return -m }

// Abs returns the absolute value of m.
func (m Money) Abs() Money {
	if m < 0 {
		return -m
	}
	return m
}

// Add returns m + o, saturating at the range bounds on overflow.
func (m Money) Add(o Money) Money {
	s := m + o
	// Overflow iff operands share a sign and the sum's sign differs.
	if (m > 0 && o > 0 && s < 0) || (m < 0 && o < 0 && s > 0) {
		if m > 0 {
			return MaxMoney
		}
		return MinMoney
	}
	return s
}

// Sub returns m - o, saturating on overflow.
func (m Money) Sub(o Money) Money { return m.Add(-o) }

// MulInt returns m * n, saturating on overflow.
func (m Money) MulInt(n int64) Money {
	if m == 0 || n == 0 {
		return 0
	}
	r := int64(m) * n
	if r/n != int64(m) {
		if (m > 0) == (n > 0) {
			return MaxMoney
		}
		return MinMoney
	}
	return Money(r)
}

// MulFloat returns m * f rounded half away from zero to the nearest
// micro-dollar. Use for fractional quantities such as GB-months.
func (m Money) MulFloat(f float64) Money {
	r := math.Round(float64(m) * f)
	if r >= math.MaxInt64 {
		return MaxMoney
	}
	if r <= math.MinInt64 {
		return MinMoney
	}
	return Money(r)
}

// DivInt returns m / n rounded half away from zero.
// It panics if n == 0.
func (m Money) DivInt(n int64) Money {
	if n == 0 {
		panic("money: division by zero")
	}
	q := int64(m) / n
	rem := int64(m) % n
	// Round half away from zero.
	if rem != 0 {
		if abs64(rem)*2 >= abs64(n) {
			if (m > 0) == (n > 0) {
				q++
			} else {
				q--
			}
		}
	}
	return Money(q)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Cmp compares m and o, returning -1, 0 or +1.
func (m Money) Cmp(o Money) int {
	switch {
	case m < o:
		return -1
	case m > o:
		return 1
	default:
		return 0
	}
}

// Min returns the smaller of a and b.
func Min(a, b Money) Money {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Money) Money {
	if a > b {
		return a
	}
	return b
}

// Sum adds a sequence of amounts, saturating on overflow.
func Sum(ms ...Money) Money {
	var total Money
	for _, m := range ms {
		total = total.Add(m)
	}
	return total
}

// String renders the amount as dollars, e.g. "$0.12", "-$2131.76".
// At least two decimals are shown; trailing sub-cent digits are trimmed.
func (m Money) String() string {
	neg := m < 0
	u := int64(m)
	if neg {
		u = -u
	}
	whole := u / 1e6
	frac := u % 1e6
	s := fmt.Sprintf("%06d", frac)
	// Trim trailing zeros but keep at least two decimals.
	for len(s) > 2 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	sign := ""
	if neg {
		sign = "-"
	}
	return fmt.Sprintf("%s$%d.%s", sign, whole, s)
}

// Parse parses strings like "$1.08", "1.08", "-$0.0000004" into Money.
// At most six fractional digits are accepted.
func Parse(s string) (Money, error) {
	orig := s
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	s = strings.TrimPrefix(s, "$")
	if strings.HasPrefix(s, "-") { // "$-1.08"
		neg = !neg
		s = s[1:]
	}
	if s == "" {
		return 0, fmt.Errorf("money: cannot parse %q", orig)
	}
	wholeStr, fracStr, hasFrac := strings.Cut(s, ".")
	if wholeStr == "" {
		wholeStr = "0"
	}
	whole, err := strconv.ParseInt(wholeStr, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("money: cannot parse %q: %v", orig, err)
	}
	var frac int64
	if hasFrac {
		if len(fracStr) > 6 {
			return 0, fmt.Errorf("money: %q has more than 6 fractional digits", orig)
		}
		padded := fracStr + strings.Repeat("0", 6-len(fracStr))
		frac, err = strconv.ParseInt(padded, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("money: cannot parse %q: %v", orig, err)
		}
	}
	if whole > math.MaxInt64/1_000_000-1 {
		return 0, ErrOverflow
	}
	v := Money(whole*1e6 + frac)
	if neg {
		v = -v
	}
	return v, nil
}

// MustParse is like Parse but panics on error. Intended for static tariff
// tables in fixtures and tests.
func MustParse(s string) Money {
	m, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return m
}
