package shard

import (
	"fmt"
	"testing"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("advise\x00{\"budget\":%d,\"scenario\":\"mv%d\"}", i, i%3+1)
	}
	return keys
}

func TestRingValidation(t *testing.T) {
	if _, err := New(1, nil); err == nil {
		t.Fatal("empty worker set accepted")
	}
	if _, err := New(1, []string{"a", ""}); err == nil {
		t.Fatal("empty worker id accepted")
	}
	if _, err := New(1, []string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate worker id accepted")
	}
}

func TestRingDeterministicAcrossOrderAndInstances(t *testing.T) {
	a, err := New(42, []string{"w0", "w1", "w2", "w3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(42, []string{"w3", "w1", "w0", "w2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sampleKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner disagrees for %q: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingSeedSensitivity(t *testing.T) {
	a, _ := New(1, []string{"w0", "w1", "w2", "w3"})
	b, _ := New(2, []string{"w0", "w1", "w2", "w3"})
	diff := 0
	keys := sampleKeys(1000)
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			diff++
		}
	}
	// With 4 workers, independent seeds should disagree on ~3/4 of keys.
	if diff < len(keys)/2 {
		t.Fatalf("seeds 1 and 2 agree on %d/%d keys; placement not seed-sensitive", len(keys)-diff, len(keys))
	}
}

func TestRingOwnerBytesMatchesOwner(t *testing.T) {
	r, _ := New(7, []string{"w0", "w1", "w2"})
	for _, k := range sampleKeys(500) {
		if r.Owner(k) != r.OwnerBytes([]byte(k)) {
			t.Fatalf("Owner and OwnerBytes disagree for %q", k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	const n = 8
	workers := make([]string, n)
	for i := range workers {
		workers[i] = fmt.Sprintf("worker-%d", i)
	}
	r, _ := New(123, workers)
	counts := make(map[string]int, n)
	keys := sampleKeys(10_000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	// Every worker should own within 2x of the fair share in either
	// direction — a loose bound that still catches a broken mixer.
	fair := len(keys) / n
	for w, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("%s owns %d keys (fair share %d)", w, c, fair)
		}
	}
}

// TestRingRemapBound is the acceptance-criterion property: removing one
// of N workers remaps at most 2/N of a 10k-key sample. Rendezvous
// hashing makes this exact — only keys owned by the removed worker move
// — so the pinned bound has 2x headroom over the ~1/N expectation.
func TestRingRemapBound(t *testing.T) {
	keys := sampleKeys(10_000)
	for _, n := range []int{2, 3, 4, 8, 16} {
		workers := make([]string, n)
		for i := range workers {
			workers[i] = fmt.Sprintf("worker-%d", i)
		}
		full, err := New(99, workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, victim := range workers {
			reduced, err := full.Without(victim)
			if err != nil {
				t.Fatal(err)
			}
			remapped := 0
			for _, k := range keys {
				before := full.Owner(k)
				after := reduced.Owner(k)
				if before != after {
					remapped++
					if before != victim {
						t.Fatalf("n=%d: key moved from surviving worker %s to %s", n, before, after)
					}
				}
			}
			if limit := 2 * len(keys) / n; remapped > limit {
				t.Errorf("n=%d victim=%s: %d/%d keys remapped, limit %d", n, victim, remapped, len(keys), limit)
			}
		}
	}
}

func TestRingPreferOrder(t *testing.T) {
	workers := []string{"w0", "w1", "w2", "w3", "w4"}
	r, _ := New(5, workers)
	var buf []string
	for _, k := range sampleKeys(500) {
		buf = r.Prefer(k, buf)
		if len(buf) != len(workers) {
			t.Fatalf("Prefer returned %d workers, want %d", len(buf), len(workers))
		}
		if buf[0] != r.Owner(k) {
			t.Fatalf("Prefer[0]=%s but Owner=%s", buf[0], r.Owner(k))
		}
		seen := make(map[string]bool, len(buf))
		for _, w := range buf {
			if seen[w] {
				t.Fatalf("Prefer repeated worker %s", w)
			}
			seen[w] = true
		}
		// The failover successor must match the owner after the primary
		// is removed — this is what keeps two frontends converging on
		// the same successor cache.
		reduced, _ := r.Without(buf[0])
		if got := reduced.Owner(k); got != buf[1] {
			t.Fatalf("Prefer[1]=%s but post-removal owner=%s", buf[1], got)
		}
	}
}

func TestRingWithoutUnknown(t *testing.T) {
	r, _ := New(1, []string{"a", "b"})
	if _, err := r.Without("zzz"); err == nil {
		t.Fatal("Without(unknown) succeeded")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	workers := make([]string, 16)
	for i := range workers {
		workers[i] = fmt.Sprintf("worker-%d", i)
	}
	r, _ := New(1, workers)
	key := "advise\x00{\"budget\":25,\"scenario\":\"mv1\"}"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(key)
	}
}
