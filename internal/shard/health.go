package shard

import (
	"sort"
	"sync"
	"time"
)

// HealthConfig tunes the failure detector. Zero values take defaults.
type HealthConfig struct {
	// FailThreshold is the consecutive-failure count that ejects a
	// worker (default 3).
	FailThreshold int
	// EjectLatency ejects a worker whose latency EWMA exceeds it — a
	// node that answers, but so slowly it drags the fleet (0 disables).
	EjectLatency time.Duration
	// EWMAAlpha is the smoothing factor for the latency EWMA in (0,1];
	// default 0.3 (new samples weigh 30%).
	EWMAAlpha float64
	// Cooldown is how long an ejected worker stays out before it may be
	// probed half-open (default 2s).
	Cooldown time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// workerState is one worker's detector state.
type workerState struct {
	consecFails int
	ewma        time.Duration // 0 until the first success
	ejected     bool
	ejectedAt   time.Time
	// probing marks a half-open worker with its single probe slot
	// taken: exactly one request tests a cooling-down worker; everyone
	// else keeps failing over until the probe reports back.
	probing bool
}

// Tracker is the frontend's per-worker failure detector: consecutive
// request failures or a latency EWMA over the ceiling eject a worker;
// after a cooldown it turns half-open and a single probe request
// decides between recovery and another cooldown round.
//
// The Tracker never reads the clock — callers pass `now` — so detector
// transitions are a pure function of the reported event sequence and
// tests drive it with a synthetic clock.
type Tracker struct {
	cfg HealthConfig

	mu sync.Mutex
	ws map[string]*workerState
}

// NewTracker builds a detector for the worker set. All workers start
// healthy.
func NewTracker(cfg HealthConfig, workers []string) *Tracker {
	t := &Tracker{cfg: cfg.withDefaults(), ws: make(map[string]*workerState, len(workers))}
	for _, w := range workers {
		t.ws[w] = &workerState{}
	}
	return t
}

func (t *Tracker) state(worker string) *workerState {
	s := t.ws[worker]
	if s == nil {
		s = &workerState{}
		t.ws[worker] = s
	}
	return s
}

// ReportSuccess records a successful request (or health probe) with its
// observed latency. A success resets the failure streak and, for an
// ejected worker, closes the breaker — unless the latency EWMA is still
// over the ceiling, in which case the worker stays out (slow is a
// failure mode, not a recovery).
func (t *Tracker) ReportSuccess(worker string, latency time.Duration, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(worker)
	s.consecFails = 0
	if s.ewma == 0 {
		s.ewma = latency
	} else {
		a := t.cfg.EWMAAlpha
		s.ewma = time.Duration(a*float64(latency) + (1-a)*float64(s.ewma))
	}
	if t.cfg.EjectLatency > 0 && s.ewma > t.cfg.EjectLatency {
		if !s.ejected {
			s.ejected = true
			s.ejectedAt = now
		} else {
			// Still too slow: restart the cooldown so the next probe
			// waits a full window.
			s.ejectedAt = now
		}
		s.probing = false
		return
	}
	s.ejected = false
	s.probing = false
}

// ReportFailure records a failed request or probe. Reaching the
// consecutive-failure threshold ejects the worker; a failed half-open
// probe restarts the cooldown.
func (t *Tracker) ReportFailure(worker string, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(worker)
	s.consecFails++
	if s.probing {
		// The half-open probe failed: back to fully open, fresh cooldown.
		s.probing = false
		s.ejectedAt = now
		return
	}
	if !s.ejected && s.consecFails >= t.cfg.FailThreshold {
		s.ejected = true
		s.ejectedAt = now
	}
}

// Usable reports whether the frontend may route a request to worker
// right now. A healthy worker is always usable. An ejected worker is
// unusable until its cooldown elapses; then the first Usable call takes
// the single half-open probe slot (returning true), and subsequent
// calls return false until ReportSuccess or ReportFailure settles the
// probe.
func (t *Tracker) Usable(worker string, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state(worker)
	if !s.ejected {
		return true
	}
	if s.probing {
		return false
	}
	if now.Sub(s.ejectedAt) >= t.cfg.Cooldown {
		s.probing = true
		return true
	}
	return false
}

// Ejected reports whether worker is currently ejected (half-open
// counts as ejected until a probe succeeds).
func (t *Tracker) Ejected(worker string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state(worker).ejected
}

// Cooldown is the configured ejection cooldown — frontends surface it
// as Retry-After when every candidate for a key is down.
func (t *Tracker) Cooldown() time.Duration { return t.cfg.Cooldown }

// WorkerHealth is one worker's externally visible detector state.
type WorkerHealth struct {
	Worker      string        `json:"worker"`
	Ejected     bool          `json:"ejected"`
	Probing     bool          `json:"probing,omitempty"`
	ConsecFails int           `json:"consec_fails,omitempty"`
	EWMA        time.Duration `json:"ewma_ns,omitempty"`
}

// Snapshot returns every tracked worker's state, sorted by worker ID
// for deterministic rendering in /v1/stats. The map range only fills a
// keyed slot per worker (order-insensitive); the ordering comes from
// the sorted key pass.
func (t *Tracker) Snapshot() []WorkerHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]WorkerHealth, len(t.ws))
	i := 0
	for w := range t.ws {
		out[i] = WorkerHealth{Worker: w}
		i++
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	for i := range out {
		s := t.ws[out[i].Worker]
		out[i].Ejected, out[i].Probing = s.ejected, s.probing
		out[i].ConsecFails, out[i].EWMA = s.consecFails, s.ewma
	}
	return out
}
