// Package shard is the cluster-mode placement and failure-detection
// kernel: a rendezvous (highest-random-weight) hash ring assigning
// canonical cache keys to workers, and a health tracker deciding which
// workers a frontend may route to.
//
// Rendezvous hashing was chosen over a token ring because its remap
// property is exact rather than probabilistic: a key's owner changes
// only when its owner leaves the worker set, so losing one of N workers
// remaps exactly the ~1/N of the keyspace that worker owned — every
// other worker's LRU, kernel sessions and pools stay hot for "their"
// problems. The ring is deterministic and seedable: two frontends built
// with the same seed and worker set route every key identically, which
// is what lets a fleet of stateless frontends share a worker tier
// without coordination.
//
// The package is in mvlint's determinism scope: nothing here reads the
// clock or global randomness. The health tracker takes explicit `now`
// timestamps from its caller, so its state transitions are pure
// functions of the reported events.
package shard

import (
	"fmt"
	"sort"
)

// Ring assigns keys to a fixed worker set by rendezvous hashing. A Ring
// is immutable after New: membership changes build a new Ring (they are
// rare next to routing decisions, and immutability keeps Owner safe for
// concurrent use with zero locking).
type Ring struct {
	seed uint64
	// workers is the sorted member list; wh[i] is the precomputed
	// per-worker hash mixed into every key score.
	workers []string
	wh      []uint64
}

// New builds a ring over the worker IDs. IDs must be non-empty and
// distinct; order does not matter (the ring sorts them, so two
// frontends given the same set in different orders agree).
func New(seed int64, workers []string) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("shard: empty worker set")
	}
	sorted := make([]string, len(workers))
	copy(sorted, workers)
	sort.Strings(sorted)
	r := &Ring{seed: uint64(seed), workers: sorted, wh: make([]uint64, len(sorted))}
	for i, w := range sorted {
		if w == "" {
			return nil, fmt.Errorf("shard: empty worker id")
		}
		if i > 0 && sorted[i-1] == w {
			return nil, fmt.Errorf("shard: duplicate worker id %q", w)
		}
		r.wh[i] = hashString(r.seed, w)
	}
	return r, nil
}

// Without builds the ring that remains after removing worker id —
// membership-change helper for failover tests and rebalancing.
func (r *Ring) Without(id string) (*Ring, error) {
	rest := make([]string, 0, len(r.workers))
	for _, w := range r.workers {
		if w != id {
			rest = append(rest, w)
		}
	}
	if len(rest) == len(r.workers) {
		return nil, fmt.Errorf("shard: worker %q not in ring", id)
	}
	return New(int64(r.seed), rest)
}

// Workers returns the sorted member list (shared, read-only).
func (r *Ring) Workers() []string { return r.workers }

// Len is the member count.
func (r *Ring) Len() int { return len(r.workers) }

// fnv1aOffset/fnv1aPrime are the 64-bit FNV-1a parameters.
const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

// hashString is FNV-1a over s, seeded.
func hashString(seed uint64, s string) uint64 {
	h := fnv1aOffset ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnv1aPrime
	}
	return h
}

// mix finishes a (worker, key) score from the two hashes. The
// final avalanche (splitmix64's finalizer) decorrelates scores across
// workers, so per-key preference orders are uniform.
func mix(wh, kh uint64) uint64 {
	x := wh ^ kh
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the worker with the highest score for key — the key's
// home, where its cache entry, kernel session and pools live. Ties
// (astronomically unlikely at 64 bits) break toward the
// lexicographically smaller worker, so the answer is total.
//
//mvlint:hotpath
func (r *Ring) Owner(key string) string {
	kh := hashString(r.seed, key)
	best := 0
	bestScore := mix(r.wh[0], kh)
	for i := 1; i < len(r.wh); i++ {
		if s := mix(r.wh[i], kh); s > bestScore {
			best, bestScore = i, s
		}
	}
	return r.workers[best]
}

// OwnerBytes is Owner for a byte-slice key (hot paths that hold the
// canonical key in a pooled buffer probe without building a string).
//
//mvlint:hotpath
func (r *Ring) OwnerBytes(key []byte) string {
	kh := fnv1aOffset ^ r.seed
	for i := 0; i < len(key); i++ {
		kh ^= uint64(key[i])
		kh *= fnv1aPrime
	}
	best := 0
	bestScore := mix(r.wh[0], kh)
	for i := 1; i < len(r.wh); i++ {
		if s := mix(r.wh[i], kh); s > bestScore {
			best, bestScore = i, s
		}
	}
	return r.workers[best]
}

// Prefer appends every worker to buf in descending score order for key:
// buf[0] is the owner, buf[1] the first failover successor, and so on.
// The preference order is stable across frontends (same seed, same
// set), so two frontends failing over for one key converge on the same
// successor — the successor's cache warms instead of scattering.
func (r *Ring) Prefer(key string, buf []string) []string {
	kh := hashString(r.seed, key)
	type scored struct {
		i int
		s uint64
	}
	sc := make([]scored, len(r.wh))
	for i := range r.wh {
		sc[i] = scored{i, mix(r.wh[i], kh)}
	}
	sort.Slice(sc, func(a, b int) bool {
		if sc[a].s != sc[b].s {
			return sc[a].s > sc[b].s
		}
		return sc[a].i < sc[b].i
	})
	buf = buf[:0]
	for _, s := range sc {
		buf = append(buf, r.workers[s.i])
	}
	return buf
}
