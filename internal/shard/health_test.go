package shard

import (
	"testing"
	"time"
)

// clock is a synthetic time source for driving the tracker.
type clock struct{ t time.Time }

func newClock() *clock { return &clock{t: time.Unix(1_700_000_000, 0)} }

func (c *clock) now() time.Time                    { return c.t }
func (c *clock) advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

func TestTrackerEjectsOnConsecutiveFailures(t *testing.T) {
	c := newClock()
	tr := NewTracker(HealthConfig{FailThreshold: 3, Cooldown: 2 * time.Second}, []string{"w0"})

	tr.ReportFailure("w0", c.now())
	tr.ReportFailure("w0", c.now())
	if !tr.Usable("w0", c.now()) {
		t.Fatal("ejected before threshold")
	}
	tr.ReportFailure("w0", c.now())
	if tr.Usable("w0", c.now()) {
		t.Fatal("usable after 3 consecutive failures")
	}
	if !tr.Ejected("w0") {
		t.Fatal("Ejected() false after ejection")
	}
}

func TestTrackerSuccessResetsStreak(t *testing.T) {
	c := newClock()
	tr := NewTracker(HealthConfig{FailThreshold: 3}, []string{"w0"})
	tr.ReportFailure("w0", c.now())
	tr.ReportFailure("w0", c.now())
	tr.ReportSuccess("w0", time.Millisecond, c.now())
	tr.ReportFailure("w0", c.now())
	tr.ReportFailure("w0", c.now())
	if !tr.Usable("w0", c.now()) {
		t.Fatal("streak not reset by success")
	}
}

func TestTrackerHalfOpenSingleProbe(t *testing.T) {
	c := newClock()
	tr := NewTracker(HealthConfig{FailThreshold: 1, Cooldown: 2 * time.Second}, []string{"w0"})
	tr.ReportFailure("w0", c.now())
	if tr.Usable("w0", c.now()) {
		t.Fatal("usable while cooling down")
	}
	c.advance(time.Second)
	if tr.Usable("w0", c.now()) {
		t.Fatal("usable before cooldown elapsed")
	}
	c.advance(time.Second)
	// First caller after the cooldown gets the probe slot...
	if !tr.Usable("w0", c.now()) {
		t.Fatal("no half-open probe slot after cooldown")
	}
	// ...and everyone else keeps failing over until the probe settles.
	if tr.Usable("w0", c.now()) {
		t.Fatal("second caller also got the probe slot")
	}

	// A failed probe restarts the cooldown.
	tr.ReportFailure("w0", c.now())
	if tr.Usable("w0", c.now()) {
		t.Fatal("usable right after failed probe")
	}
	c.advance(2 * time.Second)
	if !tr.Usable("w0", c.now()) {
		t.Fatal("no new probe slot after second cooldown")
	}
	// A successful probe closes the breaker for everyone.
	tr.ReportSuccess("w0", time.Millisecond, c.now())
	if !tr.Usable("w0", c.now()) || !tr.Usable("w0", c.now()) {
		t.Fatal("not fully usable after successful probe")
	}
	if tr.Ejected("w0") {
		t.Fatal("still ejected after recovery")
	}
}

func TestTrackerLatencyEWMAEjection(t *testing.T) {
	c := newClock()
	tr := NewTracker(HealthConfig{
		FailThreshold: 100, // only latency can eject here
		EjectLatency:  100 * time.Millisecond,
		EWMAAlpha:     0.5,
		Cooldown:      time.Second,
	}, []string{"w0"})

	tr.ReportSuccess("w0", 10*time.Millisecond, c.now())
	if !tr.Usable("w0", c.now()) {
		t.Fatal("fast worker ejected")
	}
	// Repeated slow responses pull the EWMA over the ceiling.
	for i := 0; i < 10; i++ {
		tr.ReportSuccess("w0", 500*time.Millisecond, c.now())
	}
	if tr.Usable("w0", c.now()) {
		t.Fatal("slow worker not ejected despite EWMA over ceiling")
	}

	// The half-open probe succeeding fast drags the EWMA back down and
	// eventually recovers the worker.
	for i := 0; i < 20; i++ {
		c.advance(time.Second)
		if tr.Usable("w0", c.now()) {
			tr.ReportSuccess("w0", time.Millisecond, c.now())
		}
		if !tr.Ejected("w0") {
			break
		}
	}
	if tr.Ejected("w0") {
		t.Fatal("slow worker never recovered after fast probes")
	}
}

func TestTrackerUnknownWorkerStartsHealthy(t *testing.T) {
	c := newClock()
	tr := NewTracker(HealthConfig{}, nil)
	if !tr.Usable("late-joiner", c.now()) {
		t.Fatal("unknown worker not usable")
	}
}

func TestTrackerSnapshotSorted(t *testing.T) {
	c := newClock()
	tr := NewTracker(HealthConfig{FailThreshold: 1}, []string{"w2", "w0", "w1"})
	tr.ReportFailure("w1", c.now())
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d workers, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Worker >= snap[i].Worker {
			t.Fatal("snapshot not sorted by worker")
		}
	}
	if !snap[1].Ejected || snap[0].Ejected || snap[2].Ejected {
		t.Fatalf("snapshot ejection flags wrong: %+v", snap)
	}
}
