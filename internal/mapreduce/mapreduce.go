// Package mapreduce is a small in-process MapReduce runtime: parallel
// mappers, optional combiners, hash-partitioned shuffle, parallel reducers
// and job counters. It stands in for the Hadoop 0.20 cluster the paper ran
// its Pig Latin workload on — same programming model, same execution
// phases, scaled to goroutines instead of VMs.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

// Mapper transforms one input record into zero or more key/value pairs via
// the emit callback.
type Mapper[I any, K comparable, V any] func(input I, emit func(K, V))

// Combiner merges two values for the same key map-side, cutting shuffle
// volume. It must be associative and commutative.
type Combiner[V any] func(a, b V) V

// Reducer folds all values of one key into a single output value.
type Reducer[K comparable, V any, O any] func(key K, values []V) O

// Counters reports the work a job performed, mirroring Hadoop's built-in
// counters.
type Counters struct {
	// InputRecords is the number of records fed to mappers.
	InputRecords int64
	// MapOutputRecords counts pairs emitted by mappers (pre-combine).
	MapOutputRecords int64
	// ShuffledRecords counts pairs crossing the shuffle (post-combine).
	ShuffledRecords int64
	// DistinctKeys is the number of reduce groups.
	DistinctKeys int64
	// OutputRecords is the number of reducer outputs.
	OutputRecords int64
}

// Config sizes the runtime.
type Config struct {
	// Mappers is the number of parallel map tasks; 0 selects GOMAXPROCS.
	Mappers int
	// Reducers is the number of parallel reduce partitions; 0 selects
	// GOMAXPROCS.
	Reducers int
}

func (c Config) normalized() Config {
	n := runtime.GOMAXPROCS(0)
	if c.Mappers <= 0 {
		c.Mappers = n
	}
	if c.Reducers <= 0 {
		c.Reducers = n
	}
	return c
}

// Run executes a full map/combine/shuffle/reduce job over inputs and
// returns the reduce outputs keyed by reduce key. A nil combiner disables
// map-side combining. Mapper or reducer panics are recovered and reported
// as errors.
func Run[I any, K comparable, V any, O any](
	cfg Config,
	inputs []I,
	mapper Mapper[I, K, V],
	combiner Combiner[V],
	reducer Reducer[K, V, O],
) (map[K]O, Counters, error) {
	if mapper == nil || reducer == nil {
		return nil, Counters{}, fmt.Errorf("mapreduce: mapper and reducer are required")
	}
	cfg = cfg.normalized()
	var counters Counters
	counters.InputRecords = int64(len(inputs))

	// ---- Map phase -------------------------------------------------------
	// Each map task owns its output buffer so no locking is needed until
	// the shuffle. Without a combiner, emissions land in one flat
	// append-only pair buffer (amortized zero allocations per record);
	// with one, the task keeps a single combined value per key (map[K]V —
	// never a per-key slice). Records are NOT partitioned at emit time:
	// partitioning hashes only the distinct keys during the shuffle, so
	// the per-record cost of the map side is one buffer append or one map
	// update, with no per-emit hashing or interface boxing.
	type pair struct {
		k K
		v V
	}
	type mapOut struct {
		pairs    []pair  // combiner == nil
		combined map[K]V // combiner != nil
		emitted  int64
	}
	nm := cfg.Mappers
	if nm > len(inputs) && len(inputs) > 0 {
		nm = len(inputs)
	}
	if nm == 0 {
		nm = 1
	}
	sets := make([]mapOut, nm)
	var wg sync.WaitGroup
	errCh := make(chan error, nm+cfg.Reducers)
	for t := 0; t < nm; t++ {
		if combiner != nil {
			sets[t].combined = make(map[K]V)
		}
		lo := len(inputs) * t / nm
		hi := len(inputs) * (t + 1) / nm
		wg.Add(1)
		go func(set *mapOut, shard []I) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("mapreduce: map task panicked: %v", r)
				}
			}()
			emit := func(k K, v V) {
				set.emitted++
				if combiner != nil {
					if prev, ok := set.combined[k]; ok {
						set.combined[k] = combiner(prev, v)
					} else {
						set.combined[k] = v
					}
					return
				}
				set.pairs = append(set.pairs, pair{k, v})
			}
			for _, in := range shard {
				mapper(in, emit)
			}
		}(&sets[t], inputs[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, counters, err
	default:
	}
	for t := range sets {
		counters.MapOutputRecords += sets[t].emitted
	}

	// ---- Shuffle: group all records by key, then partition keys ----------
	// Sort-free grouping without per-key slice churn: assign each distinct
	// key a dense group id and count its values, carve one flat value
	// buffer, fill each group's contiguous range, then assign whole groups
	// to reduce partitions (one hash per distinct key, not per record).
	// Value order per key is (map task, emit order) — the same merge order
	// as the per-key append shuffle this replaces.
	var total, hint int
	for t := range sets {
		if combiner != nil {
			// Distinct keys are at least the largest per-task combined
			// map — a far better index size hint than the record count.
			total += len(sets[t].combined)
			if len(sets[t].combined) > hint {
				hint = len(sets[t].combined)
			}
		} else {
			total += len(sets[t].pairs)
		}
	}
	counters.ShuffledRecords = int64(total)
	idx := make(map[K]int, hint)
	var counts []int
	var keys []K
	for t := range sets {
		if combiner != nil {
			for k := range sets[t].combined {
				if g, ok := idx[k]; ok {
					counts[g]++
				} else {
					idx[k] = len(counts)
					counts = append(counts, 1)
					keys = append(keys, k)
				}
			}
		} else {
			for i := range sets[t].pairs {
				k := sets[t].pairs[i].k
				if g, ok := idx[k]; ok {
					counts[g]++
				} else {
					idx[k] = len(counts)
					counts = append(counts, 1)
					keys = append(keys, k)
				}
			}
		}
	}
	values := make([]V, total)
	starts := make([]int, len(counts)+1)
	for i, c := range counts {
		starts[i+1] = starts[i] + c
	}
	fill := append([]int(nil), starts[:len(counts)]...)
	for t := range sets {
		if combiner != nil {
			for k, v := range sets[t].combined {
				gi := idx[k]
				values[fill[gi]] = v
				fill[gi]++
			}
		} else {
			for i := range sets[t].pairs {
				pr := &sets[t].pairs[i]
				gi := idx[pr.k]
				values[fill[gi]] = pr.v
				fill[gi]++
			}
		}
	}
	parts := make([][]int, cfg.Reducers)
	for gi, k := range keys {
		p := partition(k, cfg.Reducers)
		parts[p] = append(parts[p], gi)
	}

	// ---- Reduce phase ----------------------------------------------------
	outs := make([]map[K]O, cfg.Reducers)
	for p := 0; p < cfg.Reducers; p++ {
		outs[p] = make(map[K]O, len(parts[p]))
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("mapreduce: reduce task panicked: %v", r)
				}
			}()
			for _, gi := range parts[p] {
				k := keys[gi]
				outs[p][k] = reducer(k, values[starts[gi]:starts[gi+1]])
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, counters, err
	default:
	}

	distinct := 0
	for p := range outs {
		distinct += len(outs[p])
	}
	result := make(map[K]O, distinct)
	for p := range outs {
		for k, o := range outs[p] {
			result[k] = o
			counters.OutputRecords++
		}
	}
	counters.DistinctKeys = counters.OutputRecords
	return result, counters, nil
}

// partition assigns a key to a reduce partition — stable within and
// across runs for any comparable key type. Common scalar and string keys
// hash allocation-free (inline FNV-1a over their bytes); other key
// shapes (structs, arrays) fall back to hashing the fmt rendering.
func partition[K comparable](k K, n int) int {
	if n <= 1 {
		return 0
	}
	return int(keyHash(k) % uint32(n))
}

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnvString(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * fnvPrime32
	}
	return h
}

func fnvUint64(v uint64) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < 8; i++ {
		h = (h ^ uint32(v&0xff)) * fnvPrime32
		v >>= 8
	}
	return h
}

func keyHash[K comparable](k K) uint32 {
	switch v := any(k).(type) {
	case string:
		return fnvString(v)
	case int:
		return fnvUint64(uint64(v))
	case int8:
		return fnvUint64(uint64(v))
	case int16:
		return fnvUint64(uint64(v))
	case int32:
		return fnvUint64(uint64(v))
	case int64:
		return fnvUint64(uint64(v))
	case uint:
		return fnvUint64(uint64(v))
	case uint8:
		return fnvUint64(uint64(v))
	case uint16:
		return fnvUint64(uint64(v))
	case uint32:
		return fnvUint64(uint64(v))
	case uint64:
		return fnvUint64(v)
	case uintptr:
		return fnvUint64(uint64(v))
	default:
		h := fnv.New32a()
		fmt.Fprintf(h, "%v", v)
		return h.Sum32()
	}
}
