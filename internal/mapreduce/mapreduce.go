// Package mapreduce is a small in-process MapReduce runtime: parallel
// mappers, optional combiners, hash-partitioned shuffle, parallel reducers
// and job counters. It stands in for the Hadoop 0.20 cluster the paper ran
// its Pig Latin workload on — same programming model, same execution
// phases, scaled to goroutines instead of VMs.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

// Mapper transforms one input record into zero or more key/value pairs via
// the emit callback.
type Mapper[I any, K comparable, V any] func(input I, emit func(K, V))

// Combiner merges two values for the same key map-side, cutting shuffle
// volume. It must be associative and commutative.
type Combiner[V any] func(a, b V) V

// Reducer folds all values of one key into a single output value.
type Reducer[K comparable, V any, O any] func(key K, values []V) O

// Counters reports the work a job performed, mirroring Hadoop's built-in
// counters.
type Counters struct {
	// InputRecords is the number of records fed to mappers.
	InputRecords int64
	// MapOutputRecords counts pairs emitted by mappers (pre-combine).
	MapOutputRecords int64
	// ShuffledRecords counts pairs crossing the shuffle (post-combine).
	ShuffledRecords int64
	// DistinctKeys is the number of reduce groups.
	DistinctKeys int64
	// OutputRecords is the number of reducer outputs.
	OutputRecords int64
}

// Config sizes the runtime.
type Config struct {
	// Mappers is the number of parallel map tasks; 0 selects GOMAXPROCS.
	Mappers int
	// Reducers is the number of parallel reduce partitions; 0 selects
	// GOMAXPROCS.
	Reducers int
}

func (c Config) normalized() Config {
	n := runtime.GOMAXPROCS(0)
	if c.Mappers <= 0 {
		c.Mappers = n
	}
	if c.Reducers <= 0 {
		c.Reducers = n
	}
	return c
}

// Run executes a full map/combine/shuffle/reduce job over inputs and
// returns the reduce outputs keyed by reduce key. A nil combiner disables
// map-side combining. Mapper or reducer panics are recovered and reported
// as errors.
func Run[I any, K comparable, V any, O any](
	cfg Config,
	inputs []I,
	mapper Mapper[I, K, V],
	combiner Combiner[V],
	reducer Reducer[K, V, O],
) (map[K]O, Counters, error) {
	if mapper == nil || reducer == nil {
		return nil, Counters{}, fmt.Errorf("mapreduce: mapper and reducer are required")
	}
	cfg = cfg.normalized()
	var counters Counters
	counters.InputRecords = int64(len(inputs))

	// ---- Map phase -------------------------------------------------------
	// Each map task owns one partition set (one map per reduce partition) so
	// no locking is needed until merge.
	type partitionSet struct {
		parts   []map[K][]V
		emitted int64
	}
	nm := cfg.Mappers
	if nm > len(inputs) && len(inputs) > 0 {
		nm = len(inputs)
	}
	if nm == 0 {
		nm = 1
	}
	sets := make([]partitionSet, nm)
	var wg sync.WaitGroup
	errCh := make(chan error, nm+cfg.Reducers)
	for t := 0; t < nm; t++ {
		sets[t].parts = make([]map[K][]V, cfg.Reducers)
		for p := range sets[t].parts {
			sets[t].parts[p] = make(map[K][]V)
		}
		lo := len(inputs) * t / nm
		hi := len(inputs) * (t + 1) / nm
		wg.Add(1)
		go func(set *partitionSet, shard []I) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("mapreduce: map task panicked: %v", r)
				}
			}()
			emit := func(k K, v V) {
				set.emitted++
				p := partition(k, cfg.Reducers)
				bucket := set.parts[p]
				if combiner != nil {
					if prev, ok := bucket[k]; ok {
						bucket[k] = []V{combiner(prev[0], v)}
						return
					}
					bucket[k] = []V{v}
					return
				}
				bucket[k] = append(bucket[k], v)
			}
			for _, in := range shard {
				mapper(in, emit)
			}
		}(&sets[t], inputs[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, counters, err
	default:
	}
	for t := range sets {
		counters.MapOutputRecords += sets[t].emitted
	}

	// ---- Shuffle: merge map-side partitions per reducer ------------------
	merged := make([]map[K][]V, cfg.Reducers)
	for p := 0; p < cfg.Reducers; p++ {
		merged[p] = make(map[K][]V)
		for t := range sets {
			for k, vs := range sets[t].parts[p] {
				merged[p][k] = append(merged[p][k], vs...)
				counters.ShuffledRecords += int64(len(vs))
			}
		}
	}

	// ---- Reduce phase ----------------------------------------------------
	outs := make([]map[K]O, cfg.Reducers)
	for p := 0; p < cfg.Reducers; p++ {
		outs[p] = make(map[K]O, len(merged[p]))
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("mapreduce: reduce task panicked: %v", r)
				}
			}()
			for k, vs := range merged[p] {
				outs[p][k] = reducer(k, vs)
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, counters, err
	default:
	}

	result := make(map[K]O)
	for p := range outs {
		for k, o := range outs[p] {
			result[k] = o
			counters.OutputRecords++
		}
	}
	counters.DistinctKeys = counters.OutputRecords
	return result, counters, nil
}

// partition assigns a key to a reduce partition by FNV hash of its
// fmt-rendered form — stable across runs for any comparable key type.
func partition[K comparable](k K, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%v", k)
	return int(h.Sum32() % uint32(n))
}
