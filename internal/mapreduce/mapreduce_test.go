package mapreduce

import (
	"strings"
	"testing"
	"testing/quick"
)

func sumReducer(_ string, vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}

func TestWordCount(t *testing.T) {
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	mapper := func(line string, emit func(string, int64)) {
		for _, w := range strings.Fields(line) {
			emit(w, 1)
		}
	}
	out, counters, err := Run(Config{Mappers: 2, Reducers: 3}, lines, mapper, nil, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 2, "dog": 2}
	want["lazy"] = 1
	if len(out) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(out), len(want), out)
	}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, out[k], v)
		}
	}
	if counters.InputRecords != 3 {
		t.Errorf("InputRecords = %d, want 3", counters.InputRecords)
	}
	if counters.MapOutputRecords != 10 {
		t.Errorf("MapOutputRecords = %d, want 10", counters.MapOutputRecords)
	}
	if counters.OutputRecords != int64(len(want)) {
		t.Errorf("OutputRecords = %d, want %d", counters.OutputRecords, len(want))
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	inputs := make([]int, 10_000)
	mapper := func(_ int, emit func(string, int64)) { emit("k", 1) }
	add := func(a, b int64) int64 { return a + b }

	_, noComb, err := Run(Config{Mappers: 4, Reducers: 2}, inputs, mapper, nil, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	out, withComb, err := Run(Config{Mappers: 4, Reducers: 2}, inputs, mapper, add, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	if out["k"] != 10_000 {
		t.Errorf("combined sum = %d, want 10000", out["k"])
	}
	if withComb.ShuffledRecords >= noComb.ShuffledRecords {
		t.Errorf("combiner did not reduce shuffle: %d vs %d", withComb.ShuffledRecords, noComb.ShuffledRecords)
	}
	if withComb.ShuffledRecords > 4 {
		t.Errorf("with combiner, shuffle should be ≤ one record per map task: %d", withComb.ShuffledRecords)
	}
}

// Property: MapReduce sum over random int slices equals the sequential sum,
// for any mapper/reducer parallelism.
func TestSumEquivalenceProperty(t *testing.T) {
	f := func(vals []int32, m, r uint8) bool {
		inputs := make([]int64, len(vals))
		var want int64
		for i, v := range vals {
			inputs[i] = int64(v)
			want += int64(v)
		}
		mapper := func(v int64, emit func(int, int64)) { emit(0, v) }
		out, _, err := Run(Config{Mappers: int(m%8) + 1, Reducers: int(r%8) + 1},
			inputs, mapper, func(a, b int64) int64 { return a + b },
			func(_ int, vs []int64) int64 {
				var s int64
				for _, v := range vs {
					s += v
				}
				return s
			})
		if err != nil {
			return false
		}
		if len(inputs) == 0 {
			return len(out) == 0
		}
		return out[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyInput(t *testing.T) {
	out, counters, err := Run(Config{}, nil,
		func(int, func(string, int64)) {}, nil, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || counters.InputRecords != 0 {
		t.Errorf("empty input produced %v, %+v", out, counters)
	}
}

func TestNilFuncsRejected(t *testing.T) {
	if _, _, err := Run[int, string, int64, int64](Config{}, []int{1}, nil, nil, nil); err == nil {
		t.Error("nil mapper accepted")
	}
	if _, _, err := Run(Config{}, []int{1},
		func(int, func(string, int64)) {}, nil, Reducer[string, int64, int64](nil)); err == nil {
		t.Error("nil reducer accepted")
	}
}

func TestMapperPanicRecovered(t *testing.T) {
	_, _, err := Run(Config{Mappers: 2, Reducers: 2}, []int{1, 2, 3},
		func(v int, emit func(string, int64)) {
			if v == 2 {
				panic("boom")
			}
			emit("k", 1)
		}, nil, sumReducer)
	if err == nil || !strings.Contains(err.Error(), "map task panicked") {
		t.Errorf("err = %v, want map panic report", err)
	}
}

func TestReducerPanicRecovered(t *testing.T) {
	_, _, err := Run(Config{Mappers: 1, Reducers: 1}, []int{1},
		func(v int, emit func(string, int64)) { emit("k", 1) },
		nil,
		func(string, []int64) int64 { panic("reduce boom") })
	if err == nil || !strings.Contains(err.Error(), "reduce task panicked") {
		t.Errorf("err = %v, want reduce panic report", err)
	}
}

func TestManyMoreMappersThanInputs(t *testing.T) {
	out, _, err := Run(Config{Mappers: 64, Reducers: 64}, []int{5},
		func(v int, emit func(string, int64)) { emit("only", int64(v)) },
		nil, sumReducer)
	if err != nil {
		t.Fatal(err)
	}
	if out["only"] != 5 {
		t.Errorf("out = %v", out)
	}
}

func TestPartitionStableAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		for _, k := range []string{"a", "b", "year=2000", ""} {
			p1 := partition(k, n)
			p2 := partition(k, n)
			if p1 != p2 {
				t.Errorf("partition(%q,%d) unstable", k, n)
			}
			if p1 < 0 || p1 >= n {
				t.Errorf("partition(%q,%d) = %d out of range", k, n, p1)
			}
		}
	}
	if partition("x", 0) != 0 {
		t.Error("n≤1 should map to 0")
	}
}

func TestStructKeys(t *testing.T) {
	type yearCountry struct {
		Year    int
		Country string
	}
	type row struct {
		yc     yearCountry
		profit int64
	}
	rows := []row{
		{yearCountry{2000, "FR"}, 10},
		{yearCountry{2000, "FR"}, 20},
		{yearCountry{2001, "IT"}, 5},
	}
	out, _, err := Run(Config{Mappers: 2, Reducers: 2}, rows,
		func(r row, emit func(yearCountry, int64)) { emit(r.yc, r.profit) },
		func(a, b int64) int64 { return a + b },
		func(_ yearCountry, vs []int64) int64 {
			var s int64
			for _, v := range vs {
				s += v
			}
			return s
		})
	if err != nil {
		t.Fatal(err)
	}
	if out[yearCountry{2000, "FR"}] != 30 || out[yearCountry{2001, "IT"}] != 5 {
		t.Errorf("out = %v", out)
	}
}

// TestShuffleHeavyAllocBudget pins the shuffle's allocation behavior:
// the flat-buffer grouping runs the heavy combiner workload in under a
// thousand allocations; the per-key map churn it replaced took ~140k.
// The generous bound absorbs scheduler noise while still failing loudly
// if per-record allocation ever creeps back in.
func TestShuffleHeavyAllocBudget(t *testing.T) {
	inputs := make([]int, 50_000)
	for i := range inputs {
		inputs[i] = i
	}
	mapper := func(v int, emit func(int, int64)) { emit(v%1000, 1) }
	add := func(a, b int64) int64 { return a + b }
	red := func(_ int, vs []int64) int64 {
		var s int64
		for _, v := range vs {
			s += v
		}
		return s
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := Run(Config{Mappers: 4, Reducers: 4}, inputs, mapper, add, red); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 5000
	if allocs > budget {
		t.Errorf("shuffle-heavy Run allocated %.0f objects/run, budget %d", allocs, budget)
	}
}

func BenchmarkShuffleHeavy(b *testing.B) {
	inputs := make([]int, 50_000)
	for i := range inputs {
		inputs[i] = i
	}
	mapper := func(v int, emit func(int, int64)) { emit(v%1000, 1) }
	add := func(a, b int64) int64 { return a + b }
	red := func(_ int, vs []int64) int64 {
		var s int64
		for _, v := range vs {
			s += v
		}
		return s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(Config{Mappers: 4, Reducers: 4}, inputs, mapper, add, red); err != nil {
			b.Fatal(err)
		}
	}
}
