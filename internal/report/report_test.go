package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Prices", "instance", "price")
	tb.AddRow("small", "$0.12")
	tb.AddRow("extra large", "$0.96")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Prices" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "instance") || !strings.Contains(lines[1], "price") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "|-") {
		t.Errorf("separator = %q", lines[2])
	}
	// Column alignment: all rows the same width.
	for _, l := range lines[1:] {
		if len([]rune(l)) != len([]rune(lines[1])) {
			t.Errorf("misaligned line %q", l)
		}
	}
	if !strings.Contains(out, "extra large") {
		t.Error("row content missing")
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestTableMixedCellTypes(t *testing.T) {
	tb := NewTable("", "n", "ok", "ratio")
	tb.AddRow(42, true, 0.5)
	out := tb.String()
	for _, frag := range []string{"42", "true", "0.5"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in %q", frag, out)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	if !strings.Contains(tb.String(), "only") {
		t.Error("short row dropped")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "name", "note")
	tb.AddRow("plain", "hello")
	tb.AddRow("comma", "a,b")
	tb.AddRow("quote", `say "hi"`)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "name,note\nplain,hello\ncomma,\"a,b\"\nquote,\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Times", "h")
	c.Add("without", 2.0)
	c.Add("with", 0.5)
	c.Add("zero", 0)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Times" {
		t.Errorf("title = %q", lines[0])
	}
	// The larger value gets the longer bar.
	withBar := strings.Count(lines[2], "█")
	withoutBar := strings.Count(lines[1], "█")
	if withoutBar <= withBar {
		t.Errorf("bar lengths: without=%d with=%d", withoutBar, withBar)
	}
	// Non-zero values always render at least one block.
	if withBar < 1 {
		t.Error("small value lost its bar")
	}
	if strings.Count(lines[3], "█") != 0 {
		t.Error("zero value rendered a bar")
	}
	if !strings.Contains(lines[1], "2.000h") {
		t.Errorf("value suffix missing: %q", lines[1])
	}
}

func TestBarChartDefaults(t *testing.T) {
	c := &BarChart{}
	c.Add("x", 1)
	if !strings.Contains(c.String(), "█") {
		t.Error("zero-width default did not fall back to 40")
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.25) != "25.0%" {
		t.Errorf("Percent = %q", Percent(0.25))
	}
	if Percent(-0.031) != "-3.1%" {
		t.Errorf("Percent = %q", Percent(-0.031))
	}
}

func TestPad(t *testing.T) {
	if pad("ab", 4) != "ab  " || pad("abcd", 2) != "abcd" {
		t.Error("pad wrong")
	}
}
