package report

import (
	"encoding/json"
	"testing"
)

func TestTableJSON(t *testing.T) {
	tbl := NewTable("prices", "item", "cost")
	tbl.AddRow("small", "$0.12")
	tbl.AddRow("large", 4)
	b, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"title":"prices","headers":["item","cost"],"rows":[["small","$0.12"],["large","4"]]}`
	if string(b) != want {
		t.Errorf("marshal = %s\nwant      %s", b, want)
	}
	if got := tbl.Rows(); len(got) != 2 || got[1][1] != "4" {
		t.Errorf("Rows() = %v", got)
	}
}

func TestTableJSONEmpty(t *testing.T) {
	b, err := json.Marshal(NewTable("", "h"))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"headers":["h"],"rows":[]}`
	if string(b) != want {
		t.Errorf("marshal = %s, want %s", b, want)
	}
}
