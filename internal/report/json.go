package report

import "encoding/json"

// tableJSON is the wire form of a Table: the already-formatted cells, so
// API consumers can display a table without reimplementing the renderer.
type tableJSON struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Rows returns the formatted cell rows accumulated by AddRow.
func (t *Table) Rows() [][]string { return t.rows }

// MarshalJSON renders the table as {title, headers, rows} with the cells
// already %v-formatted.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{Title: t.Title, Headers: t.Headers, Rows: rows})
}
